module aipow

go 1.23
