module aipow

go 1.24
