package aipow

import (
	"aipow/internal/control"
	"aipow/internal/core"
	"aipow/internal/metrics"
	"aipow/internal/obs"
)

// This file surfaces the observability plane: Prometheus text exposition,
// the sampled decision-trace ring, and the defense event log. See the
// "Observability" section of the package documentation.

// ObserveSpec is a pipeline spec's observability section: the decision
// trace sample rate and ring size ("observe trace(sample=1024,
// ring=256)"). Hot-swappable — applying a changed section replaces the
// ring without a pipeline rebuild.
type ObserveSpec = control.ObserveSpec

// TraceRing is a lock-free ring of sampled serving-path decision traces.
// The unsampled path costs one atomic increment and one branch.
type TraceRing = obs.TraceRing

// TraceSample is one exported decision trace: client hash, score,
// confidence, chosen difficulty, adapt rung, redemption credit, and
// per-stage nanosecond timings.
type TraceSample = obs.TraceSample

// NewTraceRing returns a trace ring sampling 1 in sample decisions into
// ring slots; both round up to powers of two.
func NewTraceRing(sample, ring int) *TraceRing { return obs.NewTraceRing(sample, ring) }

// DefaultTraceSample and DefaultTraceRingSize are the sampling defaults
// an `observe trace` spec line gets when it omits the parameters.
const (
	DefaultTraceSample   = obs.DefaultTraceSample
	DefaultTraceRingSize = obs.DefaultTraceRingSize
)

// DefenseEvent is one defense state transition: an adapt escalation, a
// spec apply or rollback, a cluster membership change, an evidence flush
// stall.
type DefenseEvent = obs.Event

// Defense event kinds (DefenseEvent.Kind).
const (
	EventAdaptEscalate   = obs.EventAdaptEscalate
	EventAdaptDeescalate = obs.EventAdaptDeescalate
	EventSpecApply       = obs.EventSpecApply
	EventSpecRollback    = obs.EventSpecRollback
	EventPeerJoin        = obs.EventPeerJoin
	EventPeerStale       = obs.EventPeerStale
	EventFlushStall      = obs.EventFlushStall
)

// EventSink consumes defense events; EventLog.Append is the usual sink.
type EventSink = obs.Sink

// EventLog is a bounded concurrent ring of defense events, the backing
// store for GET /events.
type EventLog = obs.EventLog

// NewEventLog returns an event log retaining the last capacity events
// (a few hundred by default when capacity ≤ 0).
func NewEventLog(capacity int) *EventLog { return obs.NewEventLog(capacity) }

// WithObserveTrace installs a sampled decision-trace ring on a framework
// built directly with New (spec-driven pipelines use `observe trace`).
func WithObserveTrace(t *TraceRing) Option { return core.WithObserveTrace(t) }

// WithEventSink registers the framework's defense event sink (evidence
// flush stalls; control-plane layers attach richer emitters).
func WithEventSink(s EventSink) Option { return core.WithEventSink(s) }

// SetTrace replaces (or with nil, removes) the decision-trace ring as
// part of a Swap.
func SetTrace(t *TraceRing) SwapOption { return core.SetTrace(t) }

// WithRegistryEvents attaches a defense event sink to every pipeline the
// registry builds: adapt transitions, spec applies and rollbacks, cluster
// membership changes, and evidence stalls all land in it, stamped with
// the pipeline name.
func WithRegistryEvents(sink EventSink) ComponentRegistryOption {
	return control.WithRegistryEvents(sink)
}

// Exposition assembles Prometheus text-format (version 0.0.4) metric
// families; Gatekeeper.ExpositionInto fills one per scrape.
type Exposition = metrics.Exposition

// MetricLabel is one exposition label pair.
type MetricLabel = metrics.Label

// NewExposition returns an empty exposition.
func NewExposition() *Exposition { return metrics.NewExposition() }

// ValidateExposition checks Prometheus text-format output: family
// structure (HELP/TYPE before samples), metric and label name syntax,
// histogram bucket monotonicity, and +Inf/_count agreement. The CI obs
// job runs scraped /metrics bodies through it.
func ValidateExposition(data []byte) error { return metrics.ValidateExposition(data) }
