package aipow_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"aipow"
)

// TestPublicParallelSolver exercises the multi-core solver through the
// facade against a framework-issued challenge.
func TestPublicParallelSolver(t *testing.T) {
	issuer, err := aipow.NewIssuer(testKey)
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := aipow.NewVerifier(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := issuer.Issue("client", 10)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := aipow.NewParallelSolver(aipow.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	sol, stats, err := ps.Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts == 0 {
		t.Fatal("no attempts recorded")
	}
	if err := verifier.Verify(sol, "client"); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestPublicSessionTokens exercises the amortized-solving extension end to
// end through the facade.
func TestPublicSessionTokens(t *testing.T) {
	model, store, _, _ := trainedModel(t)
	fw, err := aipow.New(
		aipow.WithKey(testKey),
		aipow.WithScorer(model),
		aipow.WithPolicy(aipow.Policy1()),
		aipow.WithSource(store),
	)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := aipow.NewHTTPMiddleware(fw,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = io.WriteString(w, "ok")
		}),
		aipow.WithSessionTokens(testKey, time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(protected)
	defer srv.Close()

	solves := 0
	client := &http.Client{Transport: aipow.NewHTTPTransport(
		aipow.WithSolveObserver(func(aipow.SolveStats) { solves++ }),
	)}
	for i := 0; i < 4; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
	if solves != 1 {
		t.Fatalf("solves = %d over 4 requests, want 1 (token amortization)", solves)
	}
}

// TestPublicSimulatedClock drives a framework's challenge TTL through the
// facade's simulated clock: a solution is redeemable before the clock
// advances past the TTL and expired after, with no wall time involved.
func TestPublicSimulatedClock(t *testing.T) {
	clock := aipow.NewSimulatedClock(time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC))
	store, err := aipow.NewMapStore(map[string]float64{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := aipow.New(
		aipow.WithKey(testKey),
		aipow.WithScorer(scorerFunc(func(map[string]float64) (float64, error) { return 0, nil })),
		aipow.WithPolicy(aipow.Policy1()),
		aipow.WithSource(store),
		aipow.WithClock(clock.Now),
		aipow.WithTTL(30*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fw.Decide(aipow.RequestContext{IP: "203.0.113.7"})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := aipow.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(29 * time.Second)
	if err := fw.Verify(sol, "203.0.113.7"); err != nil {
		t.Fatalf("verify within TTL: %v", err)
	}
	dec2, err := fw.Decide(aipow.RequestContext{IP: "203.0.113.7"})
	if err != nil {
		t.Fatal(err)
	}
	sol2, _, err := aipow.NewSolver().Solve(context.Background(), dec2.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	if err := fw.Verify(sol2, "203.0.113.7"); err == nil {
		t.Fatal("verify after simulated TTL expiry should fail")
	}
}

// scorerFunc adapts a function to aipow.Scorer.
type scorerFunc func(map[string]float64) (float64, error)

func (f scorerFunc) Score(attrs map[string]float64) (float64, error) { return f(attrs) }

// TestPublicSolverNonceLimit exercises bounded-work solving through the
// facade (the rational-attacker knob).
func TestPublicSolverNonceLimit(t *testing.T) {
	issuer, err := aipow.NewIssuer(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := issuer.Issue("client", 30)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = aipow.NewSolver(aipow.WithNonceLimit(500)).Solve(context.Background(), ch)
	if err == nil {
		t.Fatal("expected nonce exhaustion")
	}
}
