package aipow

import (
	"aipow/internal/cluster"
	"aipow/internal/control"
)

// This file surfaces the distributed defense plane: multi-node
// deployments exchange compact state frames — rotating Bloom filters
// over redeemed-token tags, CRDT-merged reputation digests, and
// monotone serving counters — so every fleet node defends with
// cluster-wide knowledge. See the "Distributed defense plane" section
// of the package documentation and the `cluster` statement in SPEC.md.

// ClusterSpec is a pipeline spec's cluster section: peer frame URLs,
// the exchange interval, and the replay-filter geometry. A nil section
// means a standalone node — cluster code is never on the request path.
type ClusterSpec = control.ClusterSpec

// ClusterNode is one fleet member's exchange endpoint, owned by a
// pipeline built from a spec with a cluster section
// (Pipeline.ClusterNode). Mount Handler() on a peer-facing listener so
// other nodes can fetch this node's frames.
type ClusterNode = cluster.Node

// ClusterNodeStats is a snapshot of one node's exchange counters.
type ClusterNodeStats = cluster.Stats

// WithRegistryNodeID sets the origin name this registry's cluster
// nodes gossip under. Every node in a fleet needs a distinct ID
// (default "local"); powserver defaults it to the hostname.
func WithRegistryNodeID(id string) ComponentRegistryOption {
	return control.WithRegistryNodeID(id)
}
