package aipow

import (
	"time"

	"aipow/internal/control"
	"aipow/internal/core"
	"aipow/internal/feedback"
	"aipow/internal/policy"
)

// This file surfaces the runtime control plane: declarative deployment
// specs, the component registry compiling them into runnable pipelines,
// atomic hot-swapping against live traffic, and the gatekeeper routing
// request classes onto per-route pipelines. See the "Runtime control
// plane" section of the package documentation and SPEC.md for the spec
// grammar.

// PipelineSpec declares one runnable pipeline: scorer, policy, source,
// TTL, difficulty cap, bypass threshold, and limits.
type PipelineSpec = control.PipelineSpec

// DeploymentSpec is the full control-plane document: named pipelines plus
// routes mapping request classes (path prefixes, tenant keys) onto them.
type DeploymentSpec = control.DeploymentSpec

// RouteSpec maps one path prefix or tenant key onto a pipeline.
type RouteSpec = control.RouteSpec

// SpecDuration is the duration type deployment specs use; it marshals as
// "30s"-style strings in JSON.
type SpecDuration = control.Duration

// ParseDeployment parses a deployment spec, in the text DSL or JSON form
// (see SPEC.md for the grammar).
func ParseDeployment(src string) (*DeploymentSpec, error) {
	return control.ParseDeployment(src)
}

// ScorerFactory builds an AI model from a component spec's parameters.
type ScorerFactory = control.ScorerFactory

// SourceFactory builds an attribute source over the registry's shared
// behavior tracker.
type SourceFactory = control.SourceFactory

// ComponentRegistry resolves the component names pipeline specs use and
// owns the shared state every built pipeline rides on: one HMAC key, one
// behavior tracker, one clock.
type ComponentRegistry = control.Registry

// ComponentRegistryOption configures NewComponentRegistry.
type ComponentRegistryOption = control.RegistryOption

// NewComponentRegistry returns a component registry. Register deployment
// scorers (e.g. a trained reputation model) with RegisterScorer and
// richer sources with RegisterSource; "tracker" (the live behavior
// tracker alone) is pre-registered.
func NewComponentRegistry(key []byte, opts ...ComponentRegistryOption) (*ComponentRegistry, error) {
	return control.NewRegistry(key, opts...)
}

// WithSharedTracker sets the registry's shared behavior tracker (default:
// a fresh tracker with default sizing).
func WithSharedTracker(t *Tracker) ComponentRegistryOption {
	return control.WithRegistryTracker(t)
}

// WithRegistryClock injects the clock every built pipeline uses.
func WithRegistryClock(now func() time.Time) ComponentRegistryOption {
	return control.WithRegistryClock(now)
}

// WithRegistryPolicies replaces the registry's policy registry.
func WithRegistryPolicies(p *PolicyRegistry) ComponentRegistryOption {
	return control.WithRegistryPolicies(p)
}

// Pipeline is a runnable, hot-reconfigurable serving pipeline compiled
// from a PipelineSpec: Framework() serves, Apply installs a revised spec
// atomically against live traffic.
type Pipeline = control.Pipeline

// Gatekeeper routes request classes onto named pipelines sharing one
// tracker and one key; Apply reconfigures the whole deployment
// declaratively (hot-swapping pipelines where possible) with an atomic
// route-table switch.
type Gatekeeper = control.Gatekeeper

// NewGatekeeper compiles a deployment spec into a running gatekeeper.
func NewGatekeeper(reg *ComponentRegistry, dep *DeploymentSpec) (*Gatekeeper, error) {
	return control.NewGatekeeper(reg, dep)
}

// AdaptSpec is a pipeline spec's closed-loop adaptive-defense section:
// signal-plane shape (capacity, hard-difficulty threshold, window),
// optional load-shift, and the escalation ladder in the declarative rule
// grammar ("escalate(when=verify_fail_rate>0.3, policy=policy2,
// hold=30s)"). See the "Adaptive feedback" section of the package
// documentation and SPEC.md.
type AdaptSpec = control.AdaptSpec

// FeedbackController is the deterministic-steppable controller closing
// the defense loop over one pipeline: Pipeline.Controller exposes it,
// Gatekeeper.StepControllers drives every attached one.
type FeedbackController = feedback.Controller

// AdaptSignalNames lists the signal names adapt rule conditions can
// reference (rate, load, verify_fail_rate, hard_solve_frac, …).
func AdaptSignalNames() []string { return feedback.SignalNames() }

// ParseAdaptRule validates one escalation rule
// ("escalate(when=<cond>, policy=<spec>[, hold=<dur>][, after=<n>][, unless=<cond>])")
// without building a controller — useful for config linting.
func ParseAdaptRule(spec string) error {
	_, err := feedback.ParseRule(spec)
	return err
}

// SpecHistoryEntry is one applied deployment generation in the
// gatekeeper's bounded rollback history (Gatekeeper.History /
// Gatekeeper.Rollback).
type SpecHistoryEntry = control.SpecHistoryEntry

// SwapOption describes one change for Framework.Swap. Fields not
// mentioned keep their current values.
type SwapOption = core.SwapOption

// SetScorer replaces the AI model on the next snapshot.
func SetScorer(s Scorer) SwapOption { return core.SetScorer(s) }

// SetPolicy replaces the score→difficulty policy on the next snapshot.
func SetPolicy(p Policy) SwapOption { return core.SetPolicy(p) }

// SetSource replaces the attribute source on the next snapshot.
func SetSource(s AttributeSource) SwapOption { return core.SetSource(s) }

// SetFailClosedScore replaces the score assumed on scorer failure.
func SetFailClosedScore(v float64) SwapOption { return core.SetFailClosedScore(v) }

// SetBypassBelow replaces the bypass threshold (negative disables).
func SetBypassBelow(v float64) SwapOption { return core.SetBypassBelow(v) }

// MinScore is the bottom of the reputation scale (most trustworthy).
const MinScore = policy.MinScore
