package aipow

import (
	"aipow/internal/puzzle"
)

// Challenge is one issued PoW puzzle: seed, timestamp, TTL, difficulty,
// client binding, backend parameters (Version2), and HMAC tag. It
// round-trips through MarshalText as a header-safe token.
type Challenge = puzzle.Challenge

// Solution pairs a challenge with the nonce that solves it.
type Solution = puzzle.Solution

// Backend is one proof-of-work puzzle function: it pins the wire format
// its challenges travel in, the meaning of a difficulty level, and the
// cost model (work and memory per attempt) that lets policies and
// simulations price attackers. Implementations are provided by this
// package — Hashcash, NewHashcash, NewBalloon, ParseBackendSpec — and the
// interface is sealed; it cannot be implemented outside.
type Backend = puzzle.Backend

// BackendID is a backend's stable one-byte wire identifier.
type BackendID = puzzle.BackendID

// Wire identifiers of the built-in backends.
const (
	// BackendHashcash is the CPU-bound SHA-256 leading-zeros puzzle
	// (the paper's construction, Version1 wire format).
	BackendHashcash = puzzle.BackendHashcash

	// BackendBalloon is the memory-hard balloon-hashing puzzle
	// (Version2 wire format).
	BackendBalloon = puzzle.BackendBalloon
)

// Challenge wire-format versions.
const (
	// Version1 is the original hashcash-only token format. Tokens
	// issued before backends existed verify unchanged.
	Version1 = puzzle.Version1

	// Version2 is the backend-carrying token format: the backend ID
	// and its cost parameters ride under the HMAC, so a v2 challenge
	// rewritten as v1 (or vice versa) fails authentication.
	Version2 = puzzle.Version2
)

// Hashcash returns the default CPU-bound backend (SHA-256 leading zeros,
// Version1 wire format) — what every Framework and Issuer uses unless
// WithPuzzleBackend says otherwise.
func Hashcash() Backend { return puzzle.Hashcash() }

// NewHashcash returns a hashcash backend whose difficulty cap is bits.
func NewHashcash(bits int) (Backend, error) { return puzzle.NewHashcash(bits) }

// NewBalloon returns a memory-hard balloon-hashing backend: each attempt
// fills space 32-byte blocks and mixes them for rounds passes, so an
// attempt costs real memory bandwidth that parallel hardware discounts
// far less than it discounts raw SHA-256. Zero space or rounds select
// the defaults (256 blocks, 2 rounds).
func NewBalloon(space, rounds int) (Backend, error) { return puzzle.NewBalloon(space, rounds) }

// ParseBackendSpec parses a backend spec string — "hashcash(bits=22)",
// "balloon(space=256, time=2)", or bare "hashcash"/"balloon" for the
// defaults. The empty string is the default hashcash backend. This is the
// same grammar the control plane's per-pipeline "puzzle" line uses.
func ParseBackendSpec(spec string) (Backend, error) { return puzzle.ParseBackendSpec(spec) }

// Solver performs the client-side search for any backend: it reads the
// challenge's version and backend ID and runs the matching attempt loop,
// so one solver handles v1 hashcash and v2 balloon tokens alike.
type Solver = puzzle.Solver

// SolverOption configures NewSolver.
type SolverOption = puzzle.SolverOption

// SolveStats reports the work one solve performed.
type SolveStats = puzzle.SolveStats

// NewSolver returns a puzzle solver. Use WithNonceLimit to bound the work
// a client is willing to spend, WithExtendedNonce to search beyond 32
// bits, WithSolverWorkers to parallelize the search.
func NewSolver(opts ...SolverOption) *Solver { return puzzle.NewSolver(opts...) }

// WithNonceLimit caps solve attempts before giving up.
func WithNonceLimit(limit uint64) SolverOption { return puzzle.WithNonceLimit(limit) }

// WithExtendedNonce allows 64-bit nonces for difficulties above ~26.
func WithExtendedNonce() SolverOption { return puzzle.WithExtendedNonce() }

// WithSolverWorkers splits the nonce search across n goroutines for a
// near-linear wall-clock speedup at high difficulties. n < 1 selects
// runtime.NumCPU().
func WithSolverWorkers(n int) SolverOption { return puzzle.WithSolverWorkers(n) }

// ParallelSolver searches the nonce space with multiple goroutines.
//
// Deprecated: NewSolver with WithSolverWorkers covers the same ground
// with one option set; ParallelSolver remains as a thin wrapper.
type ParallelSolver = puzzle.ParallelSolver

// ParallelOption configures NewParallelSolver.
//
// Deprecated: use SolverOption with NewSolver.
type ParallelOption = puzzle.ParallelOption

// NewParallelSolver returns a multi-goroutine solver (default
// runtime.NumCPU() workers).
//
// Deprecated: use NewSolver(WithSolverWorkers(n)).
func NewParallelSolver(opts ...ParallelOption) (*ParallelSolver, error) {
	return puzzle.NewParallelSolver(opts...)
}

// WithWorkers sets the parallel solver's goroutine count.
//
// Deprecated: use WithSolverWorkers with NewSolver.
func WithWorkers(n int) ParallelOption { return puzzle.WithWorkers(n) }

// Standalone issuance/verification, for deployments that split the issuer
// and verifier across processes. Most callers should use Framework, which
// wires these internally.
type (
	// Issuer generates authenticated challenges.
	Issuer = puzzle.Issuer

	// Verifier checks solutions.
	Verifier = puzzle.Verifier

	// IssuerOption configures NewIssuer.
	IssuerOption = puzzle.IssuerOption

	// VerifierOption configures NewVerifier.
	VerifierOption = puzzle.VerifierOption
)

// NewIssuer returns a standalone challenge issuer.
func NewIssuer(key []byte, opts ...IssuerOption) (*Issuer, error) {
	return puzzle.NewIssuer(key, opts...)
}

// NewVerifier returns a standalone solution verifier.
func NewVerifier(key []byte, opts ...VerifierOption) (*Verifier, error) {
	return puzzle.NewVerifier(key, opts...)
}

// WithIssuerBackend makes a standalone issuer issue b's challenges
// (default hashcash).
func WithIssuerBackend(b Backend) IssuerOption { return puzzle.WithIssuerBackend(b) }

// WithVerifierBackend makes a standalone verifier accept only b's
// challenges (default hashcash). A verifier rejects every other backend's
// tokens with ErrBadVersion — solutions never redeem across backends.
func WithVerifierBackend(b Backend) VerifierOption { return puzzle.WithVerifierBackend(b) }

// Verification failure sentinels, for errors.Is branching.
var (
	// ErrVerify is wrapped by every verification failure.
	ErrVerify = puzzle.ErrVerify

	// ErrExpired reports a solution past its challenge TTL.
	ErrExpired = puzzle.ErrExpired

	// ErrReplayed reports a challenge redeemed twice.
	ErrReplayed = puzzle.ErrReplayed

	// ErrBindingMismatch reports a solution presented by the wrong client.
	ErrBindingMismatch = puzzle.ErrBindingMismatch

	// ErrWrongSolution reports a nonce that does not meet the difficulty.
	ErrWrongSolution = puzzle.ErrWrongSolution

	// ErrNonceExhausted reports an exhausted solver search budget.
	ErrNonceExhausted = puzzle.ErrNonceExhausted

	// ErrBadVersion reports a token whose wire version or backend does
	// not match the verifier — including downgrade attempts (a v2
	// balloon challenge re-encoded as v1 hashcash, or vice versa).
	ErrBadVersion = puzzle.ErrBadVersion

	// ErrUnknownBackend reports a backend name or ID this build does
	// not provide (ParseBackendSpec, token decoding).
	ErrUnknownBackend = puzzle.ErrUnknownBackend
)
