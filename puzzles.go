package aipow

import (
	"aipow/internal/puzzle"
)

// Challenge is one issued PoW puzzle: seed, timestamp, TTL, difficulty,
// client binding, and HMAC tag. It round-trips through MarshalText as a
// header-safe token.
type Challenge = puzzle.Challenge

// Solution pairs a challenge with the nonce that solves it.
type Solution = puzzle.Solution

// Solver performs the client-side nonce search.
type Solver = puzzle.Solver

// SolverOption configures NewSolver.
type SolverOption = puzzle.SolverOption

// SolveStats reports the work one solve performed.
type SolveStats = puzzle.SolveStats

// NewSolver returns a puzzle solver. Use WithNonceLimit to bound the work
// a client is willing to spend, WithExtendedNonce to search beyond 32 bits.
func NewSolver(opts ...SolverOption) *Solver { return puzzle.NewSolver(opts...) }

// WithNonceLimit caps solve attempts before giving up.
func WithNonceLimit(limit uint64) SolverOption { return puzzle.WithNonceLimit(limit) }

// WithExtendedNonce allows 64-bit nonces for difficulties above ~26.
func WithExtendedNonce() SolverOption { return puzzle.WithExtendedNonce() }

// ParallelSolver searches the nonce space with multiple goroutines for a
// near-linear wall-clock speedup at high difficulties.
type ParallelSolver = puzzle.ParallelSolver

// ParallelOption configures NewParallelSolver.
type ParallelOption = puzzle.ParallelOption

// NewParallelSolver returns a multi-goroutine solver (default
// runtime.NumCPU() workers).
func NewParallelSolver(opts ...ParallelOption) (*ParallelSolver, error) {
	return puzzle.NewParallelSolver(opts...)
}

// WithWorkers sets the parallel solver's goroutine count.
func WithWorkers(n int) ParallelOption { return puzzle.WithWorkers(n) }

// Standalone issuance/verification, for deployments that split the issuer
// and verifier across processes. Most callers should use Framework, which
// wires these internally.
type (
	// Issuer generates authenticated challenges.
	Issuer = puzzle.Issuer

	// Verifier checks solutions.
	Verifier = puzzle.Verifier

	// IssuerOption configures NewIssuer.
	IssuerOption = puzzle.IssuerOption

	// VerifierOption configures NewVerifier.
	VerifierOption = puzzle.VerifierOption
)

// NewIssuer returns a standalone challenge issuer.
func NewIssuer(key []byte, opts ...IssuerOption) (*Issuer, error) {
	return puzzle.NewIssuer(key, opts...)
}

// NewVerifier returns a standalone solution verifier.
func NewVerifier(key []byte, opts ...VerifierOption) (*Verifier, error) {
	return puzzle.NewVerifier(key, opts...)
}

// Verification failure sentinels, for errors.Is branching.
var (
	// ErrVerify is wrapped by every verification failure.
	ErrVerify = puzzle.ErrVerify

	// ErrExpired reports a solution past its challenge TTL.
	ErrExpired = puzzle.ErrExpired

	// ErrReplayed reports a challenge redeemed twice.
	ErrReplayed = puzzle.ErrReplayed

	// ErrBindingMismatch reports a solution presented by the wrong client.
	ErrBindingMismatch = puzzle.ErrBindingMismatch

	// ErrWrongSolution reports a nonce that does not meet the difficulty.
	ErrWrongSolution = puzzle.ErrWrongSolution

	// ErrNonceExhausted reports an exhausted solver search budget.
	ErrNonceExhausted = puzzle.ErrNonceExhausted
)
