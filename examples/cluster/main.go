// Command cluster demonstrates the distributed defense plane: two fleet
// nodes serving the same pipeline exchange state frames, so a token
// solved and redeemed on one node cannot be replayed against the other,
// and both defend with fleet-wide knowledge.
//
// The two "nodes" run in one process here, talking over real HTTP —
// exactly what a multi-machine deployment does with powserver's
// -cluster-listen flag (see the "Distributed defense plane" sections of
// the package docs and SPEC.md).
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"aipow"
)

// demoScorer scores the "threat" attribute directly.
type demoScorer struct{}

func (demoScorer) Score(attrs map[string]float64) (float64, error) {
	return attrs["threat"], nil
}

// newNode builds one fleet member: its own registry (distinct origin
// name, shared root key — challenge signatures must verify fleet-wide)
// and a gatekeeper compiled from the spec text.
func newNode(origin, spec string) *aipow.Gatekeeper {
	registry, err := aipow.NewComponentRegistry(
		[]byte("cluster-demo-root-key-32-bytes!!"),
		aipow.WithRegistryNodeID(origin),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.RegisterScorer("demo", func(map[string]float64) (aipow.Scorer, error) {
		return demoScorer{}, nil
	}); err != nil {
		log.Fatal(err)
	}
	store, err := aipow.NewMapStore(map[string]float64{"threat": 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.RegisterSource("store", func(map[string]float64, *aipow.Tracker) (aipow.AttributeSource, error) {
		return store, nil
	}); err != nil {
		log.Fatal(err)
	}
	dep, err := aipow.ParseDeployment(spec)
	if err != nil {
		log.Fatal(err)
	}
	gk, err := aipow.NewGatekeeper(registry, dep)
	if err != nil {
		log.Fatal(err)
	}
	return gk
}

func main() {
	log.SetFlags(0)

	// Node A: a bare `cluster` statement — it exports frames but pulls
	// from nobody yet. powserver would mount this handler on its
	// -cluster-listen address; here an httptest server plays that role.
	gkA := newNode("node-a", `
pipeline edge
  scorer demo
  source store
  policy policy1
  max-difficulty 8
  cluster
`)
	defer gkA.Close()
	pipeA, _ := gkA.Pipeline("edge")
	srvA := httptest.NewServer(pipeA.ClusterNode().Handler())
	defer srvA.Close()

	// Node B names A as its peer and pulls every 50ms. Partial views are
	// fine — frames relay peer sections, so knowledge spreads
	// transitively over rings and sparse meshes.
	gkB := newNode("node-b", fmt.Sprintf(`
pipeline edge
  scorer demo
  source store
  policy policy1
  max-difficulty 8
  cluster peers(%s) exchange(50ms)
`, srvA.URL))
	defer gkB.Close()

	// A client solves an honest challenge on node A and redeems it there.
	const ip = "203.0.113.7"
	fwA, fwB := gkA.Route("/", ""), gkB.Route("/", "")
	dec, err := fwA.Decide(aipow.RequestContext{IP: ip})
	if err != nil {
		log.Fatal(err)
	}
	sol, stats, err := aipow.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		log.Fatal(err)
	}
	if err := fwA.Verify(sol, ip); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node A: difficulty %d solved in %d hashes, redeemed\n",
		dec.Difficulty, stats.Attempts)

	// Give B one exchange round to absorb A's redeemed-tag filter, then
	// replay the already-redeemed solution against B. The signature
	// checks out — same pipeline key fleet-wide — but the gossiped Bloom
	// ring catches the tag and the verifier fails closed.
	time.Sleep(300 * time.Millisecond)
	if err := fwB.Verify(sol, ip); err != nil {
		fmt.Printf("node B: cross-node replay correctly refused: %v\n", err)
	} else {
		log.Fatal("node B redeemed a replayed token — the fleet filter failed")
	}

	fleet := make(map[string]float64)
	gkB.StatsInto(fleet)
	fmt.Printf("node B fleet stats: peers=%v exchanges=%v filter_hits=%v\n",
		fleet["edge.cluster.peers"], fleet["edge.cluster.exchanges"], fleet["edge.cluster.filter_hits"])
}
