// Command puzzle-backends demonstrates the two-route backend deployment:
// a cheap CPU-bound hashcash pipeline for ordinary browsing and a
// memory-hard balloon pipeline for the abuse-prone signup route, in one
// deployment sharing one client-side solver. It then shows the downgrade
// protection: a balloon challenge re-encoded as a cheap hashcash token is
// rejected, so an attacker cannot swap memory-hard work for SHA-256 that
// GPU rigs discount by three orders of magnitude.
//
// Run with:
//
//	go run ./examples/puzzle-backends
package main

import (
	"context"
	"fmt"
	"log"

	"aipow"
)

// spec routes ordinary traffic onto hashcash and signups onto balloon
// hashing. The backend is per-pipeline issuance state, like ttl: changing
// a puzzle line later rebuilds that pipeline (Gatekeeper.Apply does it
// automatically); everything else about the deployment is ordinary.
const spec = `
pipeline web
  scorer demo
  policy policy1
  source store

pipeline signup
  scorer demo
  policy policy1
  source store
  puzzle balloon(space=64, time=2)
  max-difficulty 8

route /        web
route /signup  signup
`

// demoScorer scores the "threat" attribute directly.
type demoScorer struct{}

func (demoScorer) Score(attrs map[string]float64) (float64, error) {
	return attrs["threat"], nil
}

func main() {
	log.SetFlags(0)

	registry, err := aipow.NewComponentRegistry([]byte("puzzle-backends-demo-key-32bytes"))
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.RegisterScorer("demo", func(params map[string]float64) (aipow.Scorer, error) {
		return demoScorer{}, nil
	}); err != nil {
		log.Fatal(err)
	}
	store, err := aipow.NewMapStore(map[string]float64{"threat": 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.RegisterSource("store", func(params map[string]float64, _ *aipow.Tracker) (aipow.AttributeSource, error) {
		return store, nil
	}); err != nil {
		log.Fatal(err)
	}

	dep, err := aipow.ParseDeployment(spec)
	if err != nil {
		log.Fatal(err)
	}
	gk, err := aipow.NewGatekeeper(registry, dep)
	if err != nil {
		log.Fatal(err)
	}

	// One solver serves both routes: it dispatches on each token's wire
	// version and backend ID, so the client needs no configuration.
	solver := aipow.NewSolver()
	const ip = "203.0.113.7"

	solveRoute := func(path string) aipow.Solution {
		fw := gk.Route(path, "")
		dec, err := fw.Decide(aipow.RequestContext{IP: ip})
		if err != nil {
			log.Fatal(err)
		}
		sol, stats, err := solver.Solve(context.Background(), dec.Challenge)
		if err != nil {
			log.Fatal(err)
		}
		if err := fw.Verify(sol, ip); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s v%d %-20s difficulty %2d  solved in %d attempts\n",
			path, dec.Challenge.Version, backendName(dec.Challenge), dec.Difficulty, stats.Attempts)
		return sol
	}

	fmt.Println("one solver, two backends:")
	solveRoute("/")
	balloonSol := solveRoute("/signup")

	// The downgrade attack: re-encode the signup route's Version2 balloon
	// challenge as a cheap Version1 hashcash token and really solve that.
	// The two wire formats authenticate in disjoint HMAC domains and the
	// verifier pins its backend, so the forgery is rejected fail-closed.
	down := balloonSol.Challenge
	down.Version = aipow.Version1
	down.Backend, down.Space, down.Rounds = 0, 0, 0
	cheap, _, err := solver.Solve(context.Background(), down)
	if err != nil {
		log.Fatal(err)
	}
	err = gk.Route("/signup", "").Verify(cheap, ip)
	fmt.Printf("\ndowngraded balloon→hashcash token on /signup: %v\n", err)
}

func backendName(ch aipow.Challenge) string {
	if ch.Version >= aipow.Version2 {
		return fmt.Sprintf("backend=%s(space=%d, time=%d)", ch.Backend, ch.Space, ch.Rounds)
	}
	return "backend=hashcash"
}
