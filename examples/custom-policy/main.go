// Command custom-policy shows the "policy driven" half of the framework:
// every way an administrator can express a score→difficulty strategy —
// the paper's built-ins, the registry's spec strings, the text rule DSL,
// composition wrappers, and a hand-written Policy implementation.
//
// Run with:
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"aipow"
)

// maintenancePolicy is a fully custom Policy: during a maintenance window
// it treats everyone as untrusted. Anything with Name and Difficulty
// methods plugs into the framework.
type maintenancePolicy struct {
	inner       aipow.Policy
	maintenance *atomic.Bool
}

func (m maintenancePolicy) Name() string { return "maintenance(" + m.inner.Name() + ")" }

func (m maintenancePolicy) Difficulty(score float64) int {
	if m.maintenance.Load() {
		return m.inner.Difficulty(10) // worst-case treatment for all
	}
	return m.inner.Difficulty(score)
}

func main() {
	log.SetFlags(0)

	// 1. The paper's three policies.
	p3, err := aipow.Policy3(aipow.WithEpsilon(2.5), aipow.WithPolicySeed(42))
	if err != nil {
		log.Fatalf("policy3: %v", err)
	}
	policies := []aipow.Policy{aipow.Policy1(), aipow.Policy2(), p3}

	// 2. Registry spec strings — how a config file names policies.
	reg := aipow.NewPolicyRegistry()
	for _, spec := range []string{"exponential(base=1,factor=0.4)", "fixed(difficulty=8)"} {
		p, err := reg.New(spec)
		if err != nil {
			log.Fatalf("spec %q: %v", spec, err)
		}
		policies = append(policies, p)
	}

	// 3. The rule DSL — tiers with an exemption band, first match wins.
	tiers, err := aipow.ParsePolicyRules(`
# Escalation tiers for the edge gateway.
name edge-tiers
when score <  2 use 1
when score >= 8 use 14
when score >= 5 use 8
default 3
`)
	if err != nil {
		log.Fatalf("parse rules: %v", err)
	}
	policies = append(policies, tiers)

	// 4. Composition: clamp a third-party policy, harden under load.
	clamped, err := aipow.ClampPolicy(aipow.Policy2(), 5, 12)
	if err != nil {
		log.Fatalf("clamp: %v", err)
	}
	serverLoad := 0.85 // pretend the server is busy
	adaptive, err := aipow.NewLoadAdaptivePolicy(aipow.Policy1(), func() float64 { return serverLoad }, 6)
	if err != nil {
		log.Fatalf("load adaptive: %v", err)
	}
	policies = append(policies, clamped, adaptive)

	// 5. A hand-written policy type.
	var inMaintenance atomic.Bool
	inMaintenance.Store(true)
	policies = append(policies, maintenancePolicy{inner: aipow.Policy1(), maintenance: &inMaintenance})

	// Print the difficulty table every policy induces across the score
	// scale — the shape of the paper's Figure 2 before latency enters.
	fmt.Printf("%-28s", "policy \\ score")
	for r := 0; r <= 10; r++ {
		fmt.Printf("%4d", r)
	}
	fmt.Println()
	for _, p := range policies {
		fmt.Printf("%-28s", p.Name())
		for r := 0; r <= 10; r++ {
			fmt.Printf("%4d", p.Difficulty(float64(r)))
		}
		fmt.Println()
	}
}
