// Command control-plane demonstrates the runtime control plane: compile a
// declarative deployment spec into per-route pipelines, serve decisions
// through the gatekeeper, then — mid-"attack" — hot-swap the policy and
// watch the asking price rise without rebuilding anything.
//
// Run with:
//
//	go run ./examples/control-plane
package main

import (
	"fmt"
	"log"

	"aipow"
)

// spec is a two-pipeline deployment in the text DSL: a lenient pipeline
// for the web frontend and an inline-rules pipeline for the API, with
// path-prefix and tenant routes. See SPEC.md for the grammar.
const spec = `
pipeline web
  scorer demo
  policy policy1
  source store
  bypass-below 1

pipeline api
  scorer demo
  source store
  when score >= 8 use 14
  when score < 2 use 2
  default 6
  max-difficulty 18

route /      web
route /api/  api
tenant gold  api
`

// demoScorer scores the "threat" attribute directly.
type demoScorer struct{}

func (demoScorer) Score(attrs map[string]float64) (float64, error) {
	return attrs["threat"], nil
}

func main() {
	log.SetFlags(0)

	// 1. The component registry: deployment-specific components become
	// spec-addressable names. The registry owns the shared HMAC key and
	// behavior tracker every pipeline rides on.
	registry, err := aipow.NewComponentRegistry([]byte("control-plane-demo-key-32-bytes!"))
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.RegisterScorer("demo", func(params map[string]float64) (aipow.Scorer, error) {
		return demoScorer{}, nil
	}); err != nil {
		log.Fatal(err)
	}
	store, err := aipow.NewMapStore(map[string]float64{"threat": 5})
	if err != nil {
		log.Fatal(err)
	}
	store.Put("203.0.113.7", map[string]float64{"threat": 0.5}) // known-good
	store.Put("198.51.100.66", map[string]float64{"threat": 9}) // known-bad
	if err := registry.RegisterSource("store", func(params map[string]float64, _ *aipow.Tracker) (aipow.AttributeSource, error) {
		return store, nil
	}); err != nil {
		log.Fatal(err)
	}

	// 2. Compile the declarative spec and stand up the gatekeeper.
	dep, err := aipow.ParseDeployment(spec)
	if err != nil {
		log.Fatal(err)
	}
	gk, err := aipow.NewGatekeeper(registry, dep)
	if err != nil {
		log.Fatal(err)
	}

	decide := func(path, tenant, ip string) {
		fw := gk.Route(path, tenant)
		dec, err := fw.Decide(aipow.RequestContext{IP: ip})
		if err != nil {
			log.Fatal(err)
		}
		if dec.Bypassed {
			fmt.Printf("  %-10s tenant=%-5q %-15s → bypass (score %.1f)\n", path, tenant, ip, dec.Score)
			return
		}
		fmt.Printf("  %-10s tenant=%-5q %-15s → difficulty %2d (score %.1f, policy %s)\n",
			path, tenant, ip, dec.Difficulty, dec.Score, fw.PolicyName())
	}

	fmt.Println("initial deployment:")
	decide("/", "", "203.0.113.7")         // web, trusted → bypass
	decide("/", "", "198.51.100.66")       // web, bad → policy1 prices gently
	decide("/api/v1", "", "198.51.100.66") // api rules price harder
	decide("/", "gold", "198.51.100.66")   // tenant route beats the path

	// 3. The attack intensifies: hot-swap web onto policy2 — same spec
	// except the policy line — with zero interruption to serving. The
	// gatekeeper hot-swaps in place because only swappable fields change.
	webSpec, _ := dep.Pipeline("web")
	webSpec.Policy = "policy2"
	web, _ := gk.Pipeline("web")
	if err := web.Apply(webSpec); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after hot-swapping web onto policy2 (no restart, no rebuild):")
	decide("/", "", "203.0.113.7")
	decide("/", "", "198.51.100.66")

	// 4. Direct framework-level swaps work too, for wiring the control
	// plane to alerting: one atomic snapshot install per change.
	if err := web.Framework().Swap(aipow.SetBypassBelow(-1)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after disabling the trusted-client bypass:")
	decide("/", "", "203.0.113.7")
}
