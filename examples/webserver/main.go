// Command webserver protects a small HTTP API with the framework's
// middleware and then demonstrates the protocol against itself with an
// auto-solving client: a bare request is challenged with 428, a client
// using the PoW transport passes transparently.
//
// Run a self-contained demo (starts, exercises, exits):
//
//	go run ./examples/webserver
//
// Or keep the server up for manual poking:
//
//	go run ./examples/webserver -listen :8080
//	curl -i http://localhost:8080/api/data        # observe the 428
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"aipow"
)

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "", "stay up listening on this address instead of running the self-demo")
	flag.Parse()

	fw, err := buildFramework()
	if err != nil {
		log.Fatalf("build framework: %v", err)
	}

	api := http.NewServeMux()
	api.HandleFunc("/api/data", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"data":"the protected payload","at":%q}`, time.Now().Format(time.RFC3339))
	})
	protected, err := aipow.NewHTTPMiddleware(fw, api)
	if err != nil {
		log.Fatalf("wrap middleware: %v", err)
	}

	if *listen != "" {
		log.Printf("serving protected API on %s (try: curl -i http://%s/api/data)", *listen, *listen)
		server := &http.Server{Addr: *listen, Handler: protected, ReadHeaderTimeout: 5 * time.Second}
		log.Fatal(server.ListenAndServe())
	}

	// Self-demo: bind an ephemeral port, hit it both ways, exit.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	server := &http.Server{Handler: protected, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := server.Serve(ln); err != http.ErrServerClosed {
			log.Printf("serve: %v", err)
		}
	}()
	defer server.Close()
	url := fmt.Sprintf("http://%s/api/data", ln.Addr())

	// 1. A bare client is challenged.
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("bare request: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("bare client    -> HTTP %d, difficulty %s\n",
		resp.StatusCode, resp.Header.Get("X-PoW-Difficulty"))

	// 2. A client with the PoW transport sails through.
	client := &http.Client{Transport: aipow.NewHTTPTransport(
		aipow.WithSolveObserver(func(s aipow.SolveStats) {
			fmt.Printf("solving client -> solved in %v (%d hashes)\n",
				s.Elapsed.Round(time.Microsecond), s.Attempts)
		}),
	)}
	resp, err = client.Get(url)
	if err != nil {
		log.Fatalf("solving request: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatalf("read body: %v", err)
	}
	fmt.Printf("solving client -> HTTP %d, body %s\n", resp.StatusCode, body)
}

// buildFramework trains a model on the synthetic feed and wires the
// framework with live behavioral tracking layered over the static store.
func buildFramework() (*aipow.Framework, error) {
	feed, err := aipow.GenerateDataset(aipow.DefaultDatasetConfig())
	if err != nil {
		return nil, err
	}
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(feed))
	if err != nil {
		return nil, err
	}
	var fallback map[string]float64
	for _, s := range feed {
		if !s.Malicious {
			fallback = s.Attrs
			break
		}
	}
	store, err := aipow.NewMapStore(fallback)
	if err != nil {
		return nil, err
	}
	for _, s := range feed {
		store.Put(s.IP, s.Attrs)
	}
	tracker, err := aipow.NewTracker()
	if err != nil {
		return nil, err
	}
	combined, err := aipow.NewCombinedSource(store, tracker)
	if err != nil {
		return nil, err
	}
	return aipow.New(
		aipow.WithKey([]byte("change-me-please-32-bytes-secret")),
		aipow.WithScorer(model),
		aipow.WithPolicy(aipow.Policy1()),
		aipow.WithSource(combined),
		aipow.WithTracker(tracker),
	)
}
