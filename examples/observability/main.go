// Command observability walks the observability plane end to end: a
// spec-built pipeline with sampled decision tracing, the defense event
// log wired through the registry, and a Prometheus text-format scrape
// rendered from the gatekeeper — the same three surfaces powserver
// serves at GET /metrics, GET /trace, and GET /events on its admin
// listener.
//
// Run with:
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"aipow"
)

// spec declares one pipeline with an observe section: every decision is
// traced (sample=1 — a debugging posture; production specs use the
// 1-in-1024 default) into a 16-slot ring. See SPEC.md for the grammar.
const spec = `
pipeline web
  scorer demo
  policy policy2
  observe trace(sample=1, ring=16)
`

// respec is the hot-swap move: the same pipeline retuned to production
// sampling. Applying it replaces the trace ring atomically — no
// pipeline rebuild, in-flight challenges untouched.
const respec = `
pipeline web
  scorer demo
  policy policy2
  observe trace(sample=1024, ring=256)
`

// demoScorer distrusts clients with request history (the default
// tracker source feeds it live behavioral attributes), so the trace
// shows a spread of scores and difficulties.
type demoScorer struct{}

func (demoScorer) Score(attrs map[string]float64) (float64, error) {
	return min(2+attrs["live_total_requests"], 10), nil
}

func main() {
	log.SetFlags(0)

	// 1. The defense event log: a bounded ring every control-plane layer
	// appends state transitions into. WithRegistryEvents wires it through
	// each pipeline the registry builds — adapt escalations, spec applies
	// and rollbacks, cluster membership changes, evidence stalls.
	events := aipow.NewEventLog(0)
	registry, err := aipow.NewComponentRegistry(
		[]byte("observability-demo-key-32-bytes!"),
		aipow.WithRegistryEvents(events.Append),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.RegisterScorer("demo", func(params map[string]float64) (aipow.Scorer, error) {
		return demoScorer{}, nil
	}); err != nil {
		log.Fatal(err)
	}

	dep, err := aipow.ParseDeployment(spec)
	if err != nil {
		log.Fatal(err)
	}
	gk, err := aipow.NewGatekeeper(registry, dep)
	if err != nil {
		log.Fatal(err)
	}
	defer gk.Close()

	// 2. Serve traffic. The observe section samples each decision into
	// the ring; the latency histograms under the scrape count regardless.
	fw := gk.Route("/", "")
	for i := 0; i < 8; i++ {
		ip := fmt.Sprintf("198.51.100.%d", i%3+1) // three clients, growing history
		if err := fw.Observe(aipow.RequestInfo{IP: ip, Path: "/login"}); err != nil {
			log.Fatal(err)
		}
		if _, err := fw.Decide(aipow.RequestContext{IP: ip}); err != nil {
			log.Fatal(err)
		}
	}

	// 3. The scrape: exactly what powserver's GET /metrics renders —
	// Prometheus text format (version 0.0.4), every series labeled
	// {pipeline, node}. ValidateExposition is the CI-side check.
	e := aipow.NewExposition()
	gk.ExpositionInto(e, "example-node")
	var scrape strings.Builder
	if _, err := e.WriteTo(&scrape); err != nil {
		log.Fatal(err)
	}
	if err := aipow.ValidateExposition([]byte(scrape.String())); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== GET /metrics (validated, excerpt) ==")
	for _, line := range strings.Split(scrape.String(), "\n") {
		if strings.Contains(line, "aipow_issued") || strings.Contains(line, "trace_sampled") {
			fmt.Println(line)
		}
	}

	// 4. The trace ring: per-decision records — client hash, score,
	// confidence, difficulty, per-stage timings — as GET /trace serves
	// them (bearer-protected in powserver: traces carry per-client detail).
	fmt.Println("\n== GET /trace ==")
	for pipeline, samples := range gk.TraceSnapshots() {
		for _, s := range samples[:3] {
			fmt.Printf("%s: client=%s score=%.1f difficulty=%d total=%dns\n",
				pipeline, s.Client, s.Score, s.Difficulty, s.TotalNs)
		}
		fmt.Printf("%s: … %d samples in the ring\n", pipeline, len(samples))
	}

	// 5. Hot-swap the observe section: the ring is replaced atomically,
	// and the apply lands in the event log beside everything else that
	// changed defense state.
	redep, err := aipow.ParseDeployment(respec)
	if err != nil {
		log.Fatal(err)
	}
	if err := gk.Apply(redep); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== GET /events ==")
	for _, ev := range events.Snapshot() {
		fmt.Printf("#%d %s pipeline=%s detail=%q\n", ev.Seq, ev.Kind, ev.Pipeline, ev.Detail)
	}

	os.Exit(0)
}
