// Command ddos-mitigation demonstrates the paper's throttling claim with
// real HTTP and real hashing: a protected server faces a fleet of
// closed-loop bot goroutines (flagged malicious in the intelligence feed)
// beside a handful of benign clients, first under the adaptive framework
// and then under a fixed-difficulty baseline. The adaptive run serves
// benign traffic at interactive latency while bots burn CPU; the fixed
// baseline cannot tell them apart.
//
// Run with:
//
//	go run ./examples/ddos-mitigation
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aipow"
)

const (
	demoDuration = 3 * time.Second
	benignCount  = 4
	botCount     = 16
	// Real Go solvers hash in the MH/s range, so we push bot difficulty
	// high enough (score+9 policy) that solving visibly throttles them.
	adaptivePolicySpec = "linear(base=9,slope=1)"
	fixedPolicySpec    = "fixed(difficulty=12)"
)

func main() {
	log.SetFlags(0)

	feed, err := aipow.GenerateDataset(aipow.DefaultDatasetConfig())
	if err != nil {
		log.Fatalf("generate feed: %v", err)
	}
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(feed))
	if err != nil {
		log.Fatalf("train model: %v", err)
	}

	// Assign feed identities: benign clients get benign sample attributes,
	// bots get malicious ones. The middleware trusts X-Demo-IP so the
	// in-process clients can present those identities.
	var benign, malicious []aipow.DatasetSample
	for _, s := range feed {
		if s.Malicious {
			malicious = append(malicious, s)
		} else {
			benign = append(benign, s)
		}
	}
	store, err := aipow.NewMapStore(benign[0].Attrs)
	if err != nil {
		log.Fatalf("build store: %v", err)
	}
	benignIPs := make([]string, benignCount)
	botIPs := make([]string, botCount)
	for i := range benignIPs {
		s := benign[i%len(benign)]
		benignIPs[i] = fmt.Sprintf("ben-%d-%s", i, s.IP)
		store.Put(benignIPs[i], s.Attrs)
	}
	for i := range botIPs {
		s := malicious[i%len(malicious)]
		botIPs[i] = fmt.Sprintf("bot-%d-%s", i, s.IP)
		store.Put(botIPs[i], s.Attrs)
	}

	// Show what each class will be asked to solve.
	benScore, err := model.Score(store.Attributes(benignIPs[0], time.Now()))
	if err != nil {
		log.Fatalf("score: %v", err)
	}
	botScore, err := model.Score(store.Attributes(botIPs[0], time.Now()))
	if err != nil {
		log.Fatalf("score: %v", err)
	}
	fmt.Printf("example scores: benign %.1f, bot %.1f (scale 0-10)\n\n", benScore, botScore)

	reg := aipow.NewPolicyRegistry()
	for _, spec := range []string{adaptivePolicySpec, fixedPolicySpec} {
		pol, err := reg.New(spec)
		if err != nil {
			log.Fatalf("policy %q: %v", spec, err)
		}
		fmt.Printf("=== defense: %s ===\n", pol.Name())
		runScenario(model, store, pol, benignIPs, botIPs)
		fmt.Println()
	}
	fmt.Println("note: every client hashes inside this one process, so heavy bot solving")
	fmt.Println("also queues benign work on the shared CPUs; in a real attack each bot")
	fmt.Println("burns its own CPU. The per-client bot request rate is the honest signal:")
	fmt.Println("the adaptive defense cuts it by an order of magnitude.")
}

// runScenario stands up a protected server and hammers it for the demo
// duration, printing per-class outcomes.
func runScenario(model *aipow.ReputationModel, store *aipow.MapStore, pol aipow.Policy,
	benignIPs, botIPs []string) {
	fw, err := aipow.New(
		aipow.WithKey([]byte("change-me-please-32-bytes-secret")),
		aipow.WithScorer(model),
		aipow.WithPolicy(pol),
		aipow.WithSource(store),
	)
	if err != nil {
		log.Fatalf("assemble framework: %v", err)
	}
	var servedPayloads atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		servedPayloads.Add(1)
		_, _ = io.WriteString(w, "payload")
	})
	protected, err := aipow.NewHTTPMiddleware(fw, handler, aipow.WithTrustedIPHeader("X-Demo-IP"))
	if err != nil {
		log.Fatalf("wrap middleware: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	server := &http.Server{Handler: protected, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()
	url := fmt.Sprintf("http://%s/", ln.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), demoDuration)
	defer cancel()

	type classResult struct {
		served  int64
		latency []time.Duration
		mu      sync.Mutex
	}
	var benRes, botRes classResult
	var wg sync.WaitGroup

	runClient := func(ip string, res *classResult, think time.Duration) {
		defer wg.Done()
		client := &http.Client{Transport: aipow.NewHTTPTransport()}
		for ctx.Err() == nil {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return
			}
			req.Header.Set("X-Demo-IP", ip)
			start := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				return // context expired mid-solve
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				res.mu.Lock()
				res.served++
				res.latency = append(res.latency, time.Since(start))
				res.mu.Unlock()
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(think):
			}
		}
	}
	for _, ip := range benignIPs {
		wg.Add(1)
		go runClient(ip, &benRes, 200*time.Millisecond) // humans pause
	}
	for _, ip := range botIPs {
		wg.Add(1)
		go runClient(ip, &botRes, 0) // bots hammer
	}
	wg.Wait()

	report := func(name string, res *classResult, n int) {
		res.mu.Lock()
		defer res.mu.Unlock()
		med := time.Duration(0)
		if len(res.latency) > 0 {
			sort.Slice(res.latency, func(i, j int) bool { return res.latency[i] < res.latency[j] })
			med = res.latency[len(res.latency)/2]
		}
		perClient := float64(res.served) / float64(n) / demoDuration.Seconds()
		fmt.Printf("%-7s %3d clients: served %5d (%.1f req/s per client), median latency %v\n",
			name, n, res.served, perClient, med.Round(time.Microsecond))
	}
	report("benign", &benRes, len(benignIPs))
	report("bots", &botRes, len(botIPs))
}
