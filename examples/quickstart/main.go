// Command quickstart walks the framework's full pipeline end to end:
// synthesize an IP intelligence feed, train the DAbR-style reputation
// model, assemble the framework with the paper's Policy 2, then issue,
// solve, and verify challenges for a trustworthy and an untrustworthy
// client.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"aipow"
)

func main() {
	log.SetFlags(0)

	// 1. IP intelligence. Real deployments load a Talos-style feed; here
	// we synthesize one (the calibrated config reproduces DAbR's ~80%
	// scoring accuracy).
	feedCfg := aipow.DefaultDatasetConfig()
	feedCfg.N = 4000
	feed, err := aipow.GenerateDataset(feedCfg)
	if err != nil {
		log.Fatalf("generate feed: %v", err)
	}

	// 2. Train the AI model on the feed.
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(feed), aipow.WithTrainSeed(1))
	if err != nil {
		log.Fatalf("train model: %v", err)
	}

	// 3. Attribute store: per-IP attributes the model scores at request
	// time. Unknown IPs fall back to a neutral benign-ish profile.
	var goodIP, badIP string
	var fallback map[string]float64
	for _, s := range feed {
		if !s.Malicious && fallback == nil {
			fallback = s.Attrs
		}
		if !s.Malicious && goodIP == "" {
			goodIP = s.IP
		}
		if s.Malicious && badIP == "" {
			badIP = s.IP
		}
	}
	store, err := aipow.NewMapStore(fallback)
	if err != nil {
		log.Fatalf("build store: %v", err)
	}
	for _, s := range feed {
		store.Put(s.IP, s.Attrs)
	}

	// 4. Assemble the framework with the paper's Policy 2 (difficulty =
	// score + 5).
	fw, err := aipow.New(
		aipow.WithKey([]byte("change-me-please-32-bytes-secret")),
		aipow.WithScorer(model),
		aipow.WithPolicy(aipow.Policy2()),
		aipow.WithSource(store),
		aipow.WithTTL(2*time.Minute),
	)
	if err != nil {
		log.Fatalf("assemble framework: %v", err)
	}

	// 5. Handle one request from each client.
	solver := aipow.NewSolver()
	for _, ip := range []string{goodIP, badIP} {
		dec, err := fw.Decide(aipow.RequestContext{IP: ip})
		if err != nil {
			log.Fatalf("decide: %v", err)
		}
		start := time.Now()
		sol, stats, err := solver.Solve(context.Background(), dec.Challenge)
		if err != nil {
			log.Fatalf("solve: %v", err)
		}
		if err := fw.Verify(sol, ip); err != nil {
			log.Fatalf("verify: %v", err)
		}
		fmt.Printf("client %-15s  score %5.2f  difficulty %2d  solved in %8v (%d hashes)\n",
			ip, dec.Score, dec.Difficulty, time.Since(start).Round(time.Microsecond), stats.Attempts)
	}

	fmt.Println("\nBoth solutions verified; replaying one is rejected:")
	dec, err := fw.Decide(aipow.RequestContext{IP: goodIP})
	if err != nil {
		log.Fatalf("decide: %v", err)
	}
	sol, _, err := solver.Solve(context.Background(), dec.Challenge)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	if err := fw.Verify(sol, goodIP); err != nil {
		log.Fatalf("first verify: %v", err)
	}
	if err := fw.Verify(sol, goodIP); err != nil {
		fmt.Printf("second redemption correctly refused: %v\n", err)
	}
}
