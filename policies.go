package aipow

import (
	"aipow/internal/policy"
)

// Policy maps a reputation score in [0, 10] to a puzzle difficulty.
type Policy = policy.Policy

// Policy1 returns the paper's Policy 1: difficulty = score + 1, the gentle
// linear mapping whose latency "does not grow significantly" with score.
func Policy1() Policy { return policy.Policy1() }

// Policy2 returns the paper's Policy 2: difficulty = score + 5, whose
// latency grows to ≈900 ms for the worst reputation scores.
func Policy2() Policy { return policy.Policy2() }

// Policy3 returns the paper's Policy 3: the difficulty is drawn uniformly
// from an ε-wide interval around score+1, compensating for the AI model's
// scoring error.
func Policy3(opts ...ErrorRangeOption) (Policy, error) { return policy.Policy3(opts...) }

// ErrorRangeOption configures Policy3.
type ErrorRangeOption = policy.ErrorRangeOption

// WithEpsilon sets Policy3's scoring-error allowance (default 2.5).
func WithEpsilon(eps float64) ErrorRangeOption { return policy.WithEpsilon(eps) }

// WithPolicySeed makes Policy3's draws deterministic.
func WithPolicySeed(seed uint64) ErrorRangeOption { return policy.WithSeed(seed) }

// NewFixedPolicy returns the classic non-adaptive policy: one difficulty
// for every client.
func NewFixedPolicy(d int) (Policy, error) { return policy.NewFixed(d) }

// NewLinearPolicy returns difficulty = base + round(slope × score).
func NewLinearPolicy(base int, slope float64) (Policy, error) {
	return policy.NewLinear(base, slope)
}

// NewExponentialPolicy returns difficulty = base + round(2^(factor×score) − 1).
func NewExponentialPolicy(base int, factor float64) (Policy, error) {
	return policy.NewExponential(base, factor)
}

// StepRule is one threshold of a step policy: scores at or above MinScore
// get Difficulty.
type StepRule = policy.StepRule

// NewStepPolicy returns a threshold-table policy.
func NewStepPolicy(name string, defaultDifficulty int, rules ...StepRule) (Policy, error) {
	return policy.NewStep(name, defaultDifficulty, rules...)
}

// ParsePolicyRules compiles the policy rule DSL:
//
//	name edge-tiers
//	when score >= 8 use 14
//	when score >= 5 use 8
//	default 3
func ParsePolicyRules(src string) (Policy, error) { return policy.ParseRules(src) }

// ClampPolicy restricts an inner policy's output to [lo, hi].
func ClampPolicy(inner Policy, lo, hi int) (Policy, error) {
	return policy.NewClamp(inner, lo, hi)
}

// ConfidenceAwarePolicy is the optional Policy extension consuming
// scoring verdicts: the framework calls ConfidentDifficulty(score,
// confidence) when both the scorer and the policy support verdicts.
type ConfidenceAwarePolicy = policy.ConfidenceAware

// NewConfidenceShapedPolicy wraps inner in confidence shaping: scores
// above anchor are shaded toward it in proportion to lost confidence,
// bounded by floor (the enforced fraction at zero confidence). The
// spec-addressable form is "shape(inner=policy2, anchor=5, floor=0.5)".
func NewConfidenceShapedPolicy(inner Policy, anchor, floor float64) (Policy, error) {
	return policy.NewConfidenceShaped(inner, anchor, floor)
}

// LoadFunc reports instantaneous server load in [0, 1] for adaptive
// policies.
type LoadFunc = policy.LoadFunc

// NewLoadAdaptivePolicy shifts an inner policy's difficulty up by as much
// as maxShift at full load.
func NewLoadAdaptivePolicy(inner Policy, load LoadFunc, maxShift int) (Policy, error) {
	return policy.NewLoadAdaptive(inner, load, maxShift)
}

// PolicyRegistry resolves specification strings like "policy2" or
// "policy3(epsilon=3)" into policies.
type PolicyRegistry = policy.Registry

// NewPolicyRegistry returns a registry with the built-in policies
// registered: policy1, policy2, policy3, fixed, linear, exponential.
func NewPolicyRegistry() *PolicyRegistry { return policy.NewRegistry() }
