package aipow

import (
	"net/http"
	"time"

	"aipow/internal/httpmw"
)

// HTTP protocol constants, mirrored from the middleware package.
const (
	// HeaderChallenge carries the challenge token on a 428 response.
	HeaderChallenge = httpmw.HeaderChallenge

	// HeaderSolution carries the solution token on the retried request.
	HeaderSolution = httpmw.HeaderSolution

	// StatusChallenge is 428 Precondition Required.
	StatusChallenge = httpmw.StatusChallenge
)

// HTTPMiddlewareOption configures NewHTTPMiddleware.
type HTTPMiddlewareOption = httpmw.MiddlewareOption

// WithTrustedIPHeader takes the client IP from a proxy-set header instead
// of the socket address. Only safe behind a trusted proxy.
func WithTrustedIPHeader(name string) HTTPMiddlewareOption {
	return httpmw.WithTrustedIPHeader(name)
}

// WithSessionTokens enables amortized solving: one successful puzzle buys
// an X-PoW-Token valid for ttl; token-bearing requests skip puzzles until
// it expires. The transport honors tokens automatically.
func WithSessionTokens(key []byte, ttl time.Duration) HTTPMiddlewareOption {
	return httpmw.WithSessionTokens(key, ttl)
}

// NewHTTPMiddleware wraps next with the PoW challenge protocol driven by
// the framework: unchallenged requests receive 428 + X-PoW-Challenge;
// requests carrying a valid X-PoW-Solution reach next.
func NewHTTPMiddleware(fw *Framework, next http.Handler, opts ...HTTPMiddlewareOption) (http.Handler, error) {
	return httpmw.NewMiddleware(fw, next, opts...)
}

// HTTPTransportOption configures NewHTTPTransport.
type HTTPTransportOption = httpmw.TransportOption

// WithTransportSolver sets the puzzle solver the transport uses.
func WithTransportSolver(s *Solver) HTTPTransportOption { return httpmw.WithSolver(s) }

// WithSolveObserver receives the stats of every completed solve.
func WithSolveObserver(fn func(SolveStats)) HTTPTransportOption {
	return httpmw.WithSolveObserver(fn)
}

// NewHTTPTransport returns an http.RoundTripper that answers PoW
// challenges transparently. Use it as any client's Transport:
//
//	client := &http.Client{Transport: aipow.NewHTTPTransport()}
func NewHTTPTransport(opts ...HTTPTransportOption) http.RoundTripper {
	return httpmw.NewTransport(opts...)
}
