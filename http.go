package aipow

import (
	"net/http"
	"time"

	"aipow/internal/httpmw"
)

// HTTP protocol constants, mirrored from the middleware package.
const (
	// HeaderChallenge carries the challenge token on a 428 response.
	HeaderChallenge = httpmw.HeaderChallenge

	// HeaderSolution carries the solution token on the retried request.
	HeaderSolution = httpmw.HeaderSolution

	// StatusChallenge is 428 Precondition Required.
	StatusChallenge = httpmw.StatusChallenge

	// HeaderProxyIP carries the client IP an authenticated proxy is
	// acting for on a signed batch request.
	HeaderProxyIP = httpmw.HeaderProxyIP

	// HeaderProxyTimestamp is the proxy signature's signing time.
	HeaderProxyTimestamp = httpmw.HeaderProxyTimestamp

	// HeaderProxySignature authenticates the proxy's (IP, timestamp)
	// pair; see ProxyAuth.
	HeaderProxySignature = httpmw.HeaderProxySignature
)

// HTTPMiddlewareOption configures NewHTTPMiddleware.
type HTTPMiddlewareOption = httpmw.MiddlewareOption

// WithTrustedIPHeader takes the client IP from a proxy-set header instead
// of the socket address. Only safe behind a trusted proxy.
func WithTrustedIPHeader(name string) HTTPMiddlewareOption {
	return httpmw.WithTrustedIPHeader(name)
}

// WithSessionTokens enables amortized solving: one successful puzzle buys
// an X-PoW-Token valid for ttl; token-bearing requests skip puzzles until
// it expires. The transport honors tokens automatically.
func WithSessionTokens(key []byte, ttl time.Duration) HTTPMiddlewareOption {
	return httpmw.WithSessionTokens(key, ttl)
}

// WithTenantHeader names the header whose value selects the tenant's
// pipeline in a routed middleware (only safe behind a trusted proxy that
// controls the header).
func WithTenantHeader(name string) HTTPMiddlewareOption {
	return httpmw.WithTenantHeader(name)
}

// NewHTTPMiddleware wraps next with the PoW challenge protocol driven by
// the framework: unchallenged requests receive 428 + X-PoW-Challenge;
// requests carrying a valid X-PoW-Solution reach next.
func NewHTTPMiddleware(fw *Framework, next http.Handler, opts ...HTTPMiddlewareOption) (http.Handler, error) {
	return httpmw.NewMiddleware(fw, next, opts...)
}

// HTTPRouter selects the framework serving one request class; the
// control plane's Gatekeeper implements it.
type HTTPRouter = httpmw.Router

// NewRoutedHTTPMiddleware wraps next with the PoW challenge protocol,
// selecting the serving pipeline per request through router — typically
// a Gatekeeper, so path prefixes and (with WithTenantHeader) tenant keys
// map onto independently tuned, hot-swappable pipelines.
func NewRoutedHTTPMiddleware(router HTTPRouter, next http.Handler, opts ...HTTPMiddlewareOption) (http.Handler, error) {
	return httpmw.NewRoutedMiddleware(router, next, opts...)
}

// HTTPBatchRequest is one item of a batch decide/verify call.
type HTTPBatchRequest = httpmw.BatchRequest

// HTTPBatchResult is the per-item outcome of a batch call.
type HTTPBatchResult = httpmw.BatchResult

// HTTPBatchOption configures the batch handler.
type HTTPBatchOption = httpmw.BatchOption

// WithBatchLimit bounds the items one batch call may carry (default
// httpmw.DefaultBatchLimit).
func WithBatchLimit(n int) HTTPBatchOption { return httpmw.WithBatchLimit(n) }

// NewHTTPBatchHandler serves batch decide/verify calls against one
// framework: one POST carries many requests and the framework's batch
// entry points amortize the fixed costs across them. The handler trusts
// the caller-supplied client IPs — expose it only to trusted proxies.
func NewHTTPBatchHandler(fw *Framework, opts ...HTTPBatchOption) (http.Handler, error) {
	return httpmw.NewBatchHandler(fw, opts...)
}

// NewRoutedHTTPBatchHandler is NewHTTPBatchHandler with per-item pipeline
// routing through router (typically a Gatekeeper).
func NewRoutedHTTPBatchHandler(router HTTPRouter, opts ...HTTPBatchOption) (http.Handler, error) {
	return httpmw.NewRoutedBatchHandler(router, opts...)
}

// ProxyAuth signs and verifies the batch proxy-authentication headers:
// an upstream proxy proves fleet membership per request by signing the
// client IP it fronts plus a timestamp with a key derived from the
// deployment's root key, so POST /batch does not require sharing the
// admin bearer token with the proxy tier.
type ProxyAuth = httpmw.ProxyAuth

// ProxyAuthOption configures NewProxyAuth.
type ProxyAuthOption = httpmw.ProxyAuthOption

// NewProxyAuth builds a proxy-header signer/verifier over a derived key
// (see DeriveProxyAuthKey).
func NewProxyAuth(key []byte, opts ...ProxyAuthOption) (*ProxyAuth, error) {
	return httpmw.NewProxyAuth(key, opts...)
}

// WithProxyAuthSkew sets the tolerated signed-timestamp skew (default
// httpmw.DefaultProxyAuthSkew).
func WithProxyAuthSkew(skew time.Duration) ProxyAuthOption {
	return httpmw.WithProxyAuthSkew(skew)
}

// DeriveProxyAuthKey derives the proxy-auth signing key from a
// deployment's root HMAC key; both the proxy tier and every verifying
// node derive the same key without the root key ever traveling.
func DeriveProxyAuthKey(root []byte) []byte {
	return httpmw.DeriveProxyAuthKey(root)
}

// HTTPTransportOption configures NewHTTPTransport.
type HTTPTransportOption = httpmw.TransportOption

// WithTransportSolver sets the puzzle solver the transport uses.
func WithTransportSolver(s *Solver) HTTPTransportOption { return httpmw.WithSolver(s) }

// WithSolveObserver receives the stats of every completed solve.
func WithSolveObserver(fn func(SolveStats)) HTTPTransportOption {
	return httpmw.WithSolveObserver(fn)
}

// NewHTTPTransport returns an http.RoundTripper that answers PoW
// challenges transparently. Use it as any client's Transport:
//
//	client := &http.Client{Transport: aipow.NewHTTPTransport()}
func NewHTTPTransport(opts ...HTTPTransportOption) http.RoundTripper {
	return httpmw.NewTransport(opts...)
}
