// Package aipow is a policy-driven, AI-assisted Proof-of-Work (PoW)
// framework for defending servers against untrustworthy traffic, as
// proposed in:
//
//	T. Chakraborty, S. Mitra, S. Mittal, M. Young.
//	"A Policy Driven AI-Assisted PoW Framework." DSN 2022
//	(supplemental volume), arXiv:2203.10698.
//
// Classic PoW defenses make every client solve the same puzzle. This
// framework instead scores each incoming request's trustworthiness with an
// AI model over IP traffic features (a DAbR-style reputation scorer), maps
// the score to a puzzle difficulty through an administrator-chosen policy,
// and issues an HMAC-authenticated hashcash-style challenge bound to the
// client. Trustworthy clients sail through with trivial puzzles;
// untrustworthy ones pay seconds of compute per request — latency that
// throttles malicious traffic while the server spends microseconds
// verifying.
//
// # Architecture
//
// Five swappable components, assembled by New:
//
//   - Scorer — the AI model: reputation.Model (DAbR centroids), KNN, or
//     any func from attributes to a [0,10] score (10 = least trusted).
//   - Policy — score → difficulty: the paper's Policy1/Policy2/Policy3,
//     step tables, exponential curves, a text rule DSL, load-adaptive
//     wrappers.
//   - Source — per-IP attributes: static feed snapshots, live behavioral
//     tracking, or both combined.
//   - Issuer/Verifier — challenge generation and O(1) verification with
//     replay protection (managed internally by the Framework).
//
// # Quick start
//
//	fw, err := aipow.New(
//	    aipow.WithKey(secretKey),
//	    aipow.WithScorer(model),           // trained reputation model
//	    aipow.WithPolicy(aipow.Policy2()), // paper's Policy 2
//	    aipow.WithSource(store),           // per-IP attributes
//	)
//	...
//	dec, err := fw.Decide(aipow.RequestContext{IP: clientIP})
//	// send dec.Challenge to the client; later:
//	err = fw.Verify(solution, clientIP)
//
// For HTTP servers, NewHTTPMiddleware wraps any http.Handler with the full
// challenge protocol, and NewHTTPTransport makes any http.Client solve
// challenges transparently.
//
// # Runtime control plane
//
// The paper's operating model is that administrators tune defense by
// swapping policies, not redeploying code. The control plane makes the
// whole pipeline work that way, live:
//
//   - Declarative specs. A deployment spec (text DSL or JSON — see
//     SPEC.md) names each pipeline's scorer, policy (registry syntax or
//     inline rule-DSL lines), source, TTL, difficulty cap, bypass
//     threshold, and limits, plus the routes mapping request classes
//     onto pipelines. ParseDeployment compiles the document; a
//     ComponentRegistry resolves the component names (register scorers
//     and sources with RegisterScorer/RegisterSource) and owns the
//     shared HMAC key and behavior tracker.
//
//   - Atomic hot-swap. A Framework's swappable configuration — scorer,
//     policy, source, fail-closed score, bypass threshold — lives in an
//     immutable snapshot behind an atomic pointer. Decide loads the
//     snapshot once per request; Framework.Swap (and the SwapPolicy /
//     SwapScorer conveniences, or spec-level Pipeline.Apply) installs a
//     new snapshot RCU-style. Swapping mid-attack costs the serving path
//     nothing: Decide stays 0 allocs/op at an unchanged ns/op while a
//     background goroutine applies swaps in a loop (the gated
//     DecideUnderSwap benchmark), and requests in flight finish on the
//     configuration they loaded — never a torn mix. The issuer/verifier
//     (key, TTL, replay cache) and tracker persist across swaps, so
//     in-flight challenges stay redeemable and behavioral history stays
//     warm.
//
//   - Per-route pipelines. A Gatekeeper compiles a multi-pipeline
//     deployment and routes each request — by longest path prefix, or by
//     tenant key via WithTenantHeader — onto its pipeline, all sharing
//     one behavior tracker while each signs challenges with its own
//     name-derived key (a cheap solve on a lenient route cannot be
//     redeemed on a stricter one). NewRoutedHTTPMiddleware plugs it into any
//     http.Handler; Gatekeeper.Apply reconfigures the whole deployment
//     declaratively (hot-swapping pipelines where only swappable fields
//     changed, rebuilding where limits changed) with an atomic
//     route-table switch. cmd/powserver boots from -spec, re-applies the
//     file on SIGHUP, and exposes POST /apply, GET /spec, and GET /stats
//     on the -admin listener.
//
// The attacksim suite's policy-flip scenario regression-tests the
// operator move the paper implies (policy1 → policy2 mid-pulse):
// attacker difficulty must rise after the swap while legitimate median
// latency stays bounded, deterministically.
//
// # Adaptive feedback
//
// The paper's policies react to observed behavior and load; the feedback
// subsystem closes that loop without an operator in it. A pipeline spec
// may carry an `adapt` section (AdaptSpec; `adapt …` lines in the text
// DSL) declaring an escalation ladder in the shared component-spec
// syntax:
//
//	adapt capacity 400
//	adapt escalate(when=rate>60, policy=policy2, hold=10s, after=2)
//
// Two halves make the loop:
//
//   - Signal plane. Each controller step polls the pipeline's cumulative
//     atomic counters — no locks, allocations, or extra work on the
//     Decide/Verify hot path (the gated DecideUnderAdapt benchmark pins
//     0 allocs/op with the loop running) — and derives windowed
//     estimates: an EWMA request rate, load (rate over declared
//     capacity, also feeding load-shifted policies — the spec-addressable
//     form of NewLoadAdaptivePolicy), verify-failure ratio, the
//     per-pipeline difficulty distribution with quantiles, and
//     hard_solve_frac, a false-positive proxy: the fraction of hard
//     challenges that get solved. Misscored legitimate clients dutifully
//     solve expensive puzzles; rational bots walk away — so a volume
//     spike whose hard puzzles keep getting solved is a flash crowd, not
//     an attack, and a rule can gate on it ("unless=hard_solve_frac>0.35").
//
//   - Controller. Rules form a ladder: the controller escalates to the
//     highest level whose condition has held for its activation delay
//     (after), installing that level's policy through the same RCU
//     hot-swap path /apply uses, and de-escalates one level per step
//     only after the level's condition has been false for its hold time
//     — hysteresis that keeps a pulsing attacker from flapping the
//     policy. Operator applies always win: a changed spec resets the
//     controller to base, and the gatekeeper's bounded spec history
//     (GET /spec/history, POST /rollback) is the safety net under the
//     autonomous loop.
//
// powserver runs the loop under -adapt (controller state appears under
// the adapt.* keys of GET /stats); the attacksim suite's adaptive
// scenarios gate the behavior in CI — attack-onset escalation within a
// declared tick bound, post-attack de-escalation, FP-gated
// non-escalation of a benign flash crowd, a flap-guard bound on swap
// counts, a verify_fail_rate-triggered rung against a real-crypto
// forged-solution flood, and a three-rung production ladder —
// deterministically, byte-identical across reruns.
//
// # Scoring verdicts & redemption
//
// A reputation score alone says how malicious a client looks; it cannot
// say how sure the model is, and the DAbR scorer's ~15% benign false
// positives used to pay the worst-case difficulty for as long as the
// feed misjudged them. The scoring contract is therefore a calibrated
// verdict, and good behavior feeds back into it:
//
//   - Verdicts. Scorers implementing VerdictScorer return
//     Verdict{Score, Confidence}: the reputation model calibrates
//     confidence from cluster margin (relative distance between the
//     malicious and benign training regions — false positives live in
//     the overlap, where the margin collapses) and decision-boundary
//     separation; the kNN scorer uses neighbourhood unanimity. Plain
//     scorers, the map compatibility path, and fail-closed
//     substitutions all score at confidence 1 — exactly the pre-verdict
//     behavior.
//
//   - Shaping. NewConfidenceShapedPolicy (spec form
//     "shape(inner=policy2, anchor=5, floor=0.5)", usable anywhere a
//     policy spec is — including adapt escalation rungs) charges full
//     difficulty only when score and confidence are both high: scores
//     above the anchor are shaded toward it in proportion to lost
//     confidence, bounded by the floor (at the defaults, at most 2.5
//     difficulty levels — Policy 3's ε, spent directionally and
//     deterministically instead of as a uniform random draw). Scores at
//     or below the anchor never move: uncertainty about a good client
//     cannot raise its price. The framework computes the verdict only
//     when the active policy consumes it, so plain deployments pay
//     nothing.
//
//   - Redemption. Framework.Verify writes verification outcomes back
//     into the behavior tracker as evidence: solved difficulties accrue
//     into a half-life-decayed solve credit, failures extend a fail
//     streak. NewRedemptionScorer wraps the static model and attenuates
//     its score (bounded, saturating in credit) for IPs whose evidence
//     says they keep paying and behaving — modest rate and spacing, no
//     4xx history, no failed verifications. A misscored benign client
//     earns its way out of the false-positive tail in a handful of
//     solves; an attacker can only buy the same discount by paying the
//     full toll continuously at a gentle rate, and any live suspicion
//     (flooding, probing, forging) cancels it. Live rate-based scoring
//     layers outside the wrapper, so a currently-flooding client keeps
//     its behavioral price regardless of credit.
//
// The fp-redemption simulation scenario gates the outcome in CI: a
// misscored benign population's mean difficulty and per-request cost
// must fall after sustained verified solves, while the canonical attack
// scenarios' mean work_ratio floors — raised to at least twice their
// pre-redemption values — pin that attackers gained nothing. The gated
// DecideWithEvidence benchmark holds the whole loop (Observe + verdict
// Decide + Verify with evidence write-back) at 0 allocs/op.
//
// # Puzzle backends
//
// A difficulty level is only as meaningful as the function it prices, and
// hashcash's SHA-256 search is exactly what GPU mining hardware is built
// for: a discounted attacker solves the same bits thousands of times
// cheaper than the phone-class clients the policy was calibrated against.
// The puzzle layer is therefore built around a Backend — the puzzle
// function, its wire format, its difficulty semantics, and a cost model
// (work and memory per attempt) that policies and simulations price
// attackers with:
//
//   - Hashcash (the default, Hashcash / NewHashcash) is the paper's
//     CPU-bound construction, carried bit-for-bit in the original
//     Version1 token format: tokens issued before backends existed keep
//     verifying, and the Decide/Issue/Verify hot path is unchanged —
//     0 allocs/op at the same ns/op.
//   - Balloon (NewBalloon) is self-contained memory-hard balloon
//     hashing in the Version2 format: each attempt fills a space-block
//     buffer and mixes it with data-dependent reads, so attempts cost
//     memory bandwidth — the resource parallel silicon discounts least.
//
// Select a backend per framework with WithPuzzleBackend, per pipeline
// with the spec line "puzzle balloon(space=256, time=2)" (see SPEC.md),
// or parse the shared grammar with ParseBackendSpec. The two wire
// formats authenticate in disjoint HMAC domains and the verifier pins
// its backend, so a Version2 balloon challenge re-encoded as a cheap
// Version1 hashcash token is rejected (ErrBadVersion) and solutions
// never redeem across backends or routes — downgrade attacks fail
// closed. One Solver serves both: it dispatches on the token's version
// and backend ID (WithSolverWorkers parallelizes either search), so
// clients follow a backend change with no configuration. The backend is
// issuance state like ttl: changing it rebuilds the pipeline rather
// than hot-swapping. The attacksim suite gates the economics — a
// GPU-discounted botnet collapses the hashcash work asymmetry
// (gpu-botnet-hashcash), the balloon backend restores it under the same
// policy (gpu-botnet-balloon), and cross-backend-replay pins the
// downgrade rejection with real crypto.
//
// # Performance
//
// The serving hot path (Decide and Verify) is allocation-free and
// lock-striped, sized for millions of concurrent clients:
//
//   - Vector fast path. Scorers that implement VectorScorer publish an
//     AttributeSchema (their attribute names interned to vector slots);
//     sources that implement VectorSource fill flat []float64 vectors in
//     that layout instead of building a map per request. The framework
//     wires the fast path automatically at New time when both sides
//     support it, pooling the scratch vectors; a source that cannot cover
//     the full schema for a request makes that request fall back to the
//     map-based path, which reports the missing attribute (and the
//     framework fails closed). The map-based Scorer/AttributeSource
//     interfaces remain fully supported as the compatibility path.
//   - Sharded tracker. The behavior tracker stripes its per-IP state
//     across power-of-two shards (FNV-1a on the IP), each with its own
//     mutex, entries map, and LRU list, so concurrent Observe/Attributes
//     calls do not serialize on one lock. WithTrackerShards overrides the
//     auto-sizing.
//   - Pooled crypto state. Challenge issuance and verification reuse
//     keyed HMAC instances and encode buffers from pools: zero
//     allocations per Issue and per Verify in steady state. The replay
//     cache sweeps expired seeds incrementally to bound lock hold times.
//   - Pre-resolved counters. The framework's six stat counters are
//     resolved to atomic counters once at New time, never through the
//     registry's map on the request path.
//
// Benchmarks cover each stage (BenchmarkAsymmetry*) and the parallel
// serving shape (BenchmarkDecideParallel, BenchmarkVerifyParallel):
//
//	go test -bench=. -benchmem
//
// and `go run ./cmd/benchdump` writes the hot-path numbers to
// BENCH_hotpath.json for regression tracking across changes (compare runs
// with benchstat; -runs N keeps the fastest of N repeats). In CI,
// `benchdump -compare BENCH_hotpath.json -max-regress 20%` fails the
// build when a gated benchmark allocates at all or slows down beyond the
// tolerance — or when a within-run ratio gate fails: the full
// evidence-carrying stack (DecideWithEvidence) beyond 2x plain Decide,
// the traced path (DecideTraced) beyond 5% of plain Decide, or the
// batch path (DecideBatch) not beating the single-op evidence path per
// request.
//
// # Capacity & memory
//
// Tracking a million clients is a memory-layout problem before it is an
// algorithmic one. The behavior tracker therefore stores per-IP state in
// per-shard slab arenas: each entry is one fixed-size record in a
// []entrySlot backing array, addressed by uint32 index. The sliding
// request/failure windows are inline float32 rings (the tracker only
// ever adds 1, exact in float32 far beyond any per-bucket count), the
// LRU is intrusive prev/next indices threaded through the records, the
// first four distinct paths sit in an inline open-addressed table, and
// evicted slots recycle through an intrusive freelist. The only
// per-entry heap allocation left is the IP string itself, shared with
// the shard index map's key.
//
// Measured at one million tracked IPs (the capacity section of
// `go run ./cmd/benchdump`, go1.24, linux/amd64): the slab layout
// holds 653 bytes and 1.0 GC-visible heap objects per tracked IP, down
// from 1237 bytes and 11.0 objects per IP for the previous
// pointer-per-entry layout — 47% less memory and 11× fewer objects for
// the garbage collector to trace on every cycle. cmd/benchdump measures
// this on every run and its -compare gate fails CI when bytes/IP
// exceeds a fixed ceiling (750) or regresses against the baseline
// dump; eviction churn at full capacity and the delta-versus-full
// frame-encode ratio (see the distributed defense plane) are gated the
// same way.
//
// # Batch serving & evidence buffering
//
// Front-line proxies and load balancers rarely hold one request at a
// time; they drain accept queues. The batch entry points let such
// callers amortize the per-request fixed costs — snapshot load, clock
// read, scratch checkout — across a whole queue drain:
//
//   - Framework.DecideBatch scores and prices a slice of
//     RequestContexts against one configuration snapshot and one
//     timestamp, appending into a caller-owned []Decision (zero
//     allocations in steady state, like Decide). ObserveBatch and
//     VerifyBatch batch the evidence half the same way. Batching
//     changes cost, never outcomes: each item's decision is identical
//     to what the single-op call would have produced, a property the
//     simulation engine gates byte-for-byte (attacksim -batch drives
//     the whole adversarial suite through the batch path and CI
//     compares the reports, including under a multi-core GOMAXPROCS).
//   - NewHTTPBatchHandler / NewRoutedHTTPBatchHandler expose the same
//     front door over HTTP: one POST /batch body carries many items
//     (decide requests and solution redemptions, mixed), each item is
//     routed to its pipeline, and results return in request order.
//     Because the handler trusts caller-supplied client IPs, powserver
//     mounts it on the admin listener behind the bearer token, not on
//     the public mux.
//   - Evidence write-back buffering (WithEvidenceBuffer, spec line
//     "evidence-buffer <size> <interval>") moves tracker writes off the
//     Verify hot path: events queue in per-shard buffers and apply in
//     batches — when a shard's queue reaches the size limit, or when
//     the framework's flush loop fires each interval. Buffered events
//     carry capture-time timestamps, so applied state is bit-identical
//     to synchronous writes; only visibility latency changes, bounded
//     by the interval. Framework.Close stops the flush loop and drains
//     the buffers (Gatekeeper.Close and pipeline rebuilds do this for
//     spec-built pipelines); after Close, writes degrade to synchronous.
//   - Snapshot-cached redemption reads (WithSummaryStaleness): the
//     tracker caches each IP's computed behavior summary — the vector
//     the redemption scorer and live sources read — keyed on the
//     entry's evidence generation, serving it while younger than the
//     staleness bound. Observations alone do not invalidate (that is
//     exactly the tolerated staleness); every applied verification
//     outcome bumps the generation, so redemption-relevant changes are
//     visible immediately.
//
// Together these close the evidence-path gap: the gated
// DecideWithEvidence benchmark (the full Observe + verdict Decide +
// Verify + write-back loop) runs within 2x plain Decide, and
// DecideBatch under it, all at 0 allocs/op.
//
// # Distributed defense plane
//
// A single node defends with what it alone has seen. The cluster plane
// makes a fleet defend with what the *fleet* has seen — without a
// coordinator, a quorum, or any network call on the serving path. A
// pipeline whose spec carries a cluster statement
//
//	pipeline edge
//	  scorer dabr
//	  policy policy1
//	  cluster peers(http://10.0.0.2:9100/cluster/edge) exchange(1s)
//
// owns a ClusterNode that periodically pulls compact state frames from
// its peers and merges three planes of fleet knowledge:
//
//   - Replay suppression. Redeemed-token tags enter a time-bucketed
//     rotating Bloom ring that gossips fleet-wide, so a token solved
//     honestly on one node redeems exactly once anywhere: replaying it
//     against a different node hits the merged filter and is rejected
//     (fail-closed), at a declared worst-case false-positive rate and
//     bounded memory. The serving-path check is a pure in-memory probe
//     at 0 allocs/op.
//   - Reputation gossip. Behavior-tracker digests — evidence credit and
//     fail counters as monotone or decayed sums — merge CRDT-style:
//     commutative, associative, idempotent (property-tested), so merge
//     order, duplicated delivery, and relay topology cannot change the
//     result. An attacker burned on one node is expensive everywhere.
//   - Fleet feedback. Peer serving counters fold into a summed feedback
//     source, so adapt ladders escalate on cluster-wide rate. A botnet
//     striping across K nodes keeps every per-node rate under the
//     threshold; only the fleet sum crosses it.
//
// Peers are a partial view: frames carry relayed peer sections, so
// gossip converges transitively over rings and sparse meshes at the
// cost of one exchange interval per hop — bounded staleness, declared
// in the spec. powserver serves frames at GET /cluster/<pipeline> via
// -cluster-listen; standalone deployments (no cluster statement) are
// byte-for-byte unaffected.
//
// Evidence gossip scales by shipping deltas: every evidence change
// stamps a monotone per-tracker sequence, and a puller presents its last
// watermark to receive only the rows that changed since — at steady
// state a frame carries the churn of one exchange interval, not the
// whole tracked population. A `delta(every=K)` clause in the cluster
// statement turns this on, with every Kth pull forced to a full frame as
// anti-entropy; dirty-log overflow or an unknown watermark also degrade
// to a full frame, so a consumer can never silently miss rows, and the
// merged CRDT state is byte-identical either way (pinned by the sim
// suite running clustered scenarios in both modes). The sim suite's cluster quartet pins the
// semantics: the striping pair (fleet feedback detects what per-node
// feedback provably cannot), cross-node replay redeeming zero times,
// and a ring topology trading one relay hop of detection latency.
//
// # Observability
//
// A defense that escalates, swaps policies, and gossips fleet state on
// its own needs to be watchable in production without taxing the path
// it watches. The observability plane covers four layers, all
// dependency-free:
//
//   - Prometheus exposition. Gatekeeper.ExpositionInto renders every
//     pipeline's counters, serving-path latency histograms, trace and
//     adapt state, and cluster figures as Prometheus text format
//     (version 0.0.4) via the hand-rolled Exposition encoder, labeled
//     {pipeline, node}. powserver serves it at GET /metrics on the
//     admin listener (unauthenticated — aggregate data, scrapers rarely
//     carry tokens) and -pprof additionally mounts net/http/pprof.
//     ValidateExposition checks scraped output — family structure,
//     name syntax, histogram bucket monotonicity — and the CI obs job
//     runs live scrapes through it, twice, asserting monotonicity.
//   - Serving-path latency histograms. Every Framework carries
//     allocation-free atomic log-bucketed histograms over the Decide
//     and Verify stages (AtomicHistogram: power-of-two buckets, lock-free
//     Observe, snapshot reads). Always on — the gated hot-path
//     benchmarks hold 0 allocs/op with them counting.
//   - Sampled decision tracing. The spec line "observe
//     trace(sample=1024, ring=256)" — hot-swappable, like a policy —
//     samples one decision in N into a lock-free TraceRing of
//     fixed-size TraceSamples: client hash, score, confidence, chosen
//     difficulty, adapt rung, redemption credit, per-stage nanosecond
//     timings. The unsampled path costs one atomic increment and one
//     branch (the gated DecideTraced benchmark pins the whole thing
//     within 5% of plain Decide at 0 allocs/op). GET /trace exports
//     the rings as JSON, behind the admin bearer token.
//   - Defense event log. State transitions that matter during an
//     incident — adapt escalations and de-escalations with the signal
//     readings that tripped them, spec applies and rollbacks, cluster
//     peer joins and stalenesses, evidence flush stalls — append to a
//     bounded EventLog (WithRegistryEvents wires it through every
//     layer), exported at GET /events and mirrored into simulation
//     reports, where the adapt-event-log scenario asserts the exact
//     escalate → hold → de-escalate sequence deterministically.
//
// # Simulation & scenario regression
//
// The paper's central claim is economic asymmetry: legitimate clients pay
// near-zero compute while attackers pay super-linearly. internal/sim pins
// that claim down empirically with a deterministic adversarial scenario
// engine that drives a real Framework — concurrently, over the sharded
// vector fast path — with declaratively-defined traffic mixes:
//
//	sim.Scenario{
//	    Phases: []sim.Phase{            // a timeline of named windows
//	        {Name: "warmup", Duration: 30 * time.Second},
//	        {Name: "strike", Duration: 30 * time.Second,
//	            RateScale: map[string]float64{"bots": 40}},  // 40x surge
//	    },
//	    Populations: []sim.Population{  // concurrent client groups
//	        {Name: "users", Legit: true, Clients: 100, Rate: 0.3,
//	            Behavior: sim.BehaviorSolve, Feed: sim.FeedBenign, ...},
//	        {Name: "bots", Clients: 200, Rate: 0.2,
//	            Behavior: sim.BehaviorSolve, Feed: sim.FeedUnknown,
//	            IPPool: 4000, RotateEvery: 10 * time.Second, ...},
//	    },
//	    Invariants: []sim.Invariant{    // the asymmetry bounds CI gates on
//	        sim.AtLeast(sim.MetricWorkRatioP50, "", "", 12),
//	        sim.AtMost(sim.MetricLatencyP90, "users", "", 800),
//	    },
//	}
//
// Time is simulated (NewSimulatedClock plugs into WithClock), every random
// draw is position-seeded, and per-worker results merge in fixed order, so
// equal seeds produce byte-identical reports regardless of GOMAXPROCS.
// Solving is modeled as the real solver's geometric process; RealSolve
// scenarios additionally perform genuine nonce searches redeemed through
// Verify.
//
// The canonical scenario suite (steady state, flash crowd, pulsing
// botnet, rotating-IP botnet, slow-and-low probing, reputation-poisoning
// warmup, challenge dodging, mid-campaign policy flip, real-crypto smoke,
// the adaptive-feedback ladder, the redemption pair, the puzzle-backend
// trio, the K-node cluster quartet, and the defense event-log sequence
// check) runs via:
//
//	go run ./cmd/attacksim -json          # writes SIM_scenarios.json
//	go run ./cmd/attacksim -json -quick   # CI scale
//
// Each scenario's report carries per-population, per-phase outcomes
// (served fraction, goodput, difficulty and latency histograms, modeled
// hash cost) plus every invariant's measured value and verdict; the
// process exits non-zero on any violation, which is the CI gate. The same
// suite runs in `go test ./internal/sim` as a scenario-table regression
// test. For queueing-collapse comparisons across defenses (adaptive vs.
// fixed vs. no-PoW), see `powexp attack` on the netsim event loop.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package aipow
