package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter, safe for concurrent use.
// The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge holds an instantaneous value, safe for concurrent use.
// The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Registry is a named collection of counters and gauges, safe for
// concurrent use. It exists so a simulation or server can expose a flat
// snapshot of everything it measured.
// The zero value is ready to use.
//
// Lookups of already-registered metrics take only a read lock, so hot
// paths that cannot pre-resolve a *Counter at construction time still
// avoid serializing on one mutex.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok = r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok = r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns all registered metric values keyed by name, with counter
// values converted to float64. Keys are unique because counters and gauges
// share one namespace only if the caller reuses names; gauge values win ties.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	n := len(r.counters) + len(r.gauges)
	r.mu.RUnlock()
	out := make(map[string]float64, n)
	r.SnapshotInto(out)
	return out
}

// SnapshotInto writes all registered metric values into dst, overwriting
// same-named keys but leaving other keys alone. Pollers reuse one map
// across calls instead of allocating a fresh one per scrape.
func (r *Registry) SnapshotInto(dst map[string]float64) {
	r.SnapshotPrefixInto("", dst)
}

// SnapshotPrefixInto is SnapshotInto with every key prefixed — the
// namespacing a multi-registry poller (one registry per pipeline) needs
// without building an intermediate map per registry.
func (r *Registry) SnapshotPrefixInto(prefix string, dst map[string]float64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		dst[prefix+name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		dst[prefix+name] = g.Value()
	}
}

// Names reports all registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		if _, dup := r.counters[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func floatBits(f float64) uint64 {
	return mathFloat64bits(f)
}

func bitsFloat(b uint64) float64 {
	return mathFloat64frombits(b)
}
