package metrics

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// EWMA is an exponentially weighted moving average with deterministic,
// caller-driven stepping: each Observe folds one sample in with the
// configured weight, so equal sample sequences always produce equal
// values — no wall-clock dependence, which is what lets the simulation
// engine drive it on a virtual clock and byte-compare reports.
//
// Writes are expected from one stepping goroutine (a feedback controller's
// tick); Value is safe to call concurrently from any goroutine (stats
// scrapes, load functions) — the state is a single atomic word.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64
	warm  atomic.Bool
}

// NewEWMA returns an average weighting each new sample by alpha in (0, 1];
// the first observation seeds the average directly.
func NewEWMA(alpha float64) (*EWMA, error) {
	if math.IsNaN(alpha) || alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("metrics: EWMA alpha %v outside (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds one sample into the average. NaN samples are ignored so a
// transient undefined rate cannot poison the estimate permanently.
func (e *EWMA) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if !e.warm.Load() {
		e.bits.Store(floatBits(v))
		e.warm.Store(true)
		return
	}
	cur := bitsFloat(e.bits.Load())
	e.bits.Store(floatBits(cur + e.alpha*(v-cur)))
}

// Value reports the current average (0 before the first observation).
func (e *EWMA) Value() float64 {
	if !e.warm.Load() {
		return 0
	}
	return bitsFloat(e.bits.Load())
}

// Reset discards all observations.
func (e *EWMA) Reset() {
	e.warm.Store(false)
	e.bits.Store(0)
}

// Window is a fixed-capacity ring buffer of float64 samples — the
// windowed-series primitive the feedback signal plane builds its
// sliding-window estimators on. Once full, each Push rotates the oldest
// sample out, so aggregates always cover the most recent Cap samples.
//
// Window is safe for concurrent use; quantiles sort into a scratch buffer
// owned by the window, so steady-state operation does not allocate.
type Window struct {
	mu      sync.Mutex
	buf     []float64
	scratch []float64
	next    int // ring write position
	n       int // samples held, ≤ len(buf)
}

// NewWindow returns a window holding the most recent capacity samples.
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("metrics: window capacity %d < 1", capacity)
	}
	return &Window{
		buf:     make([]float64, capacity),
		scratch: make([]float64, 0, capacity),
	}, nil
}

// Push appends one sample, rotating the oldest out when full.
func (w *Window) Push(v float64) {
	w.mu.Lock()
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// Len reports how many samples the window currently holds.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Cap reports the window's capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Sum reports the sum over the held samples (0 when empty). The ring is
// walked oldest-first so the float accumulation order is deterministic.
func (w *Window) Sum() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var sum float64
	for i := 0; i < w.n; i++ {
		sum += w.at(i)
	}
	return sum
}

// Mean reports the mean over the held samples (0 when empty).
func (w *Window) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < w.n; i++ {
		sum += w.at(i)
	}
	return sum / float64(w.n)
}

// Max reports the maximum held sample (0 when empty).
func (w *Window) Max() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	m := math.Inf(-1)
	for i := 0; i < w.n; i++ {
		if v := w.at(i); v > m {
			m = v
		}
	}
	return m
}

// Quantile reports the q-th quantile (0 ≤ q ≤ 1) of the held samples by
// nearest-rank over a sorted copy, 0 when empty. The sort runs in the
// window's scratch buffer (insertion sort: windows are tens of samples),
// so no allocation happens after construction.
func (w *Window) Quantile(q float64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 || math.IsNaN(q) {
		return 0
	}
	w.scratch = w.scratch[:0]
	for i := 0; i < w.n; i++ {
		w.scratch = append(w.scratch, w.at(i))
	}
	for i := 1; i < len(w.scratch); i++ {
		for j := i; j > 0 && w.scratch[j] < w.scratch[j-1]; j-- {
			w.scratch[j], w.scratch[j-1] = w.scratch[j-1], w.scratch[j]
		}
	}
	if q <= 0 {
		return w.scratch[0]
	}
	if q >= 1 {
		return w.scratch[len(w.scratch)-1]
	}
	idx := int(math.Ceil(q*float64(w.n))) - 1
	if idx < 0 {
		idx = 0
	}
	return w.scratch[idx]
}

// at reads the i-th oldest held sample; callers hold w.mu.
func (w *Window) at(i int) float64 {
	start := w.next - w.n
	if start < 0 {
		start += len(w.buf)
	}
	return w.buf[(start+i)%len(w.buf)]
}
