package metrics

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("Policies", "policy", "latency_ms")
	tb.AddRow("policy1", 31.0)
	tb.AddRow("policy2", 871.25)
	out := tb.String()
	if !strings.Contains(out, "Policies") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "policy1") || !strings.Contains(out, "871.250") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
		}
	}
}

func TestTableIntegerFloatsRenderCompact(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(31.0)
	if !strings.Contains(tb.String(), "31.0") {
		t.Fatalf("whole float should render as 31.0:\n%s", tb.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x", 1.5)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1.500\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableNumRowsAndTitle(t *testing.T) {
	tb := NewTable("fig2", "a")
	if tb.Title() != "fig2" {
		t.Fatalf("Title() = %q", tb.Title())
	}
	tb.AddRow("r")
	tb.AddRow("s")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows() = %d, want 2", tb.NumRows())
	}
}
