package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks that data is a well-formed Prometheus text
// exposition (v0.0.4) and returns the first violation found. It is the
// golden gate behind GET /metrics: CI scrapes the endpoint and runs the
// output through this before trusting any dashboard built on it.
//
// Enforced per family: HELP (if present) precedes TYPE, TYPE precedes
// samples, and all of a family's lines form one contiguous block — no
// interleaving and no duplicate metadata. Enforced per line: names match
// [a-zA-Z_:][a-zA-Z0-9_:]*, label names match [a-zA-Z_][a-zA-Z0-9_]*,
// label values use only the \\, \", and \n escapes, and values parse as
// floats (with +Inf/-Inf/NaN spellings). Enforced per histogram series:
// cumulative buckets are monotone non-decreasing, a +Inf bucket exists,
// and it equals the series' _count.
func ValidateExposition(data []byte) error {
	type famState struct {
		hasHelp bool
		typ     string // "" until TYPE seen
		samples int
		closed  bool // a later family has started samples
	}
	fams := make(map[string]*famState)
	// Histogram series accounting, keyed by family then by the label set
	// minus le.
	type histSeries struct {
		buckets []float64 // in emission order
		les     []string
		hasInf  bool
		infVal  float64
		count   float64
		hasCnt  bool
	}
	hists := make(map[string]map[string]*histSeries)

	open := "" // family currently emitting samples
	closeOpen := func(next string) {
		if open != "" && open != next {
			if f := fams[open]; f != nil {
				f.closed = true
			}
		}
		open = next
	}

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				continue // arbitrary comment: legal, ignored
			}
			keyword, name := fields[1], fields[2]
			switch keyword {
			case "HELP":
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
				}
				f := fams[name]
				if f == nil {
					f = &famState{}
					fams[name] = f
				}
				if f.hasHelp {
					return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				if f.typ != "" || f.samples > 0 || f.closed {
					return fmt.Errorf("line %d: HELP for %q after its TYPE or samples", lineNo, name)
				}
				f.hasHelp = true
				closeOpen("")
			case "TYPE":
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE for %q missing type", lineNo, name)
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q for %q", lineNo, typ, name)
				}
				f := fams[name]
				if f == nil {
					f = &famState{}
					fams[name] = f
				}
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if f.samples > 0 || f.closed {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				f.typ = typ
				closeOpen("")
			default:
				continue // plain comment
			}
			continue
		}

		name, labels, rawLe, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		// Resolve histogram component samples to their base family.
		fam := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name {
				if f := fams[base]; f != nil && f.typ == TypeHistogram {
					fam, suffix = base, s
				}
				break
			}
		}
		f := fams[fam]
		if f == nil || f.typ == "" {
			return fmt.Errorf("line %d: sample for %q before its TYPE", lineNo, fam)
		}
		if f.closed {
			return fmt.Errorf("line %d: samples for %q interleaved with another family", lineNo, fam)
		}
		closeOpen(fam)
		f.samples++

		if f.typ != TypeHistogram {
			continue
		}
		switch suffix {
		case "_bucket", "_sum", "_count":
		default:
			return fmt.Errorf("line %d: histogram %q sample without _bucket/_sum/_count suffix", lineNo, fam)
		}
		series := hists[fam]
		if series == nil {
			series = make(map[string]*histSeries)
			hists[fam] = series
		}
		key := labelKey(labels)
		hs := series[key]
		if hs == nil {
			hs = &histSeries{}
			series[key] = hs
		}
		switch suffix {
		case "_bucket":
			if rawLe == "" {
				return fmt.Errorf("line %d: %s_bucket without le label", lineNo, fam)
			}
			if rawLe == "+Inf" {
				hs.hasInf = true
				hs.infVal = value
			}
			hs.les = append(hs.les, rawLe)
			hs.buckets = append(hs.buckets, value)
		case "_count":
			hs.count = value
			hs.hasCnt = true
		}
	}

	// Histogram series invariants, in deterministic order for stable
	// error messages.
	famNames := make([]string, 0, len(hists))
	for fam := range hists {
		famNames = append(famNames, fam)
	}
	sort.Strings(famNames)
	for _, fam := range famNames {
		keys := make([]string, 0, len(hists[fam]))
		for k := range hists[fam] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			hs := hists[fam][k]
			for i := 1; i < len(hs.buckets); i++ {
				if hs.buckets[i] < hs.buckets[i-1] {
					return fmt.Errorf("histogram %s{%s}: bucket le=%s count %g < preceding le=%s count %g (not cumulative)",
						fam, k, hs.les[i], hs.buckets[i], hs.les[i-1], hs.buckets[i-1])
				}
			}
			if !hs.hasInf {
				return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", fam, k)
			}
			if hs.les[len(hs.les)-1] != "+Inf" {
				return fmt.Errorf("histogram %s{%s}: le=\"+Inf\" bucket is not last", fam, k)
			}
			if !hs.hasCnt {
				return fmt.Errorf("histogram %s{%s}: missing _count", fam, k)
			}
			if hs.infVal != hs.count {
				return fmt.Errorf("histogram %s{%s}: le=\"+Inf\" bucket %g != _count %g", fam, k, hs.infVal, hs.count)
			}
		}
	}
	return nil
}

// parseSampleLine parses `name{labels} value` (labels optional), returning
// the metric name, the non-le labels, the raw le value if present, and the
// parsed sample value.
func parseSampleLine(line string) (name string, labels []Label, rawLe string, value float64, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, escaped := false, false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			if escaped {
				escaped = false
				continue
			}
			switch {
			case inQuote && c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, "", 0, fmt.Errorf("unterminated label block")
		}
		labels, rawLe, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, "", 0, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	// An optional timestamp may follow the value; the emitter never writes
	// one, but accept it for completeness.
	valTok := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valTok = rest[:sp]
		ts := strings.TrimSpace(rest[sp+1:])
		if ts != "" {
			if _, terr := strconv.ParseInt(ts, 10, 64); terr != nil {
				return "", nil, "", 0, fmt.Errorf("invalid timestamp %q", ts)
			}
		}
	}
	value, err = parseSampleValue(valTok)
	if err != nil {
		return "", nil, "", 0, err
	}
	return name, labels, rawLe, value, nil
}

// parseLabels parses the inside of a {…} block, validating names and
// escapes, and splits off the le label for histogram accounting.
func parseLabels(s string) (labels []Label, rawLe string, err error) {
	i := 0
	for i < len(s) {
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return nil, "", fmt.Errorf("label pair %q missing '='", s[start:])
		}
		lname := s[start:i]
		if !validLabelName(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", lname)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %q: trailing backslash", lname)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %q: invalid escape \\%c", lname, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, "", fmt.Errorf("label %q: unterminated value", lname)
		}
		if lname == "le" {
			rawLe = val.String()
			if _, verr := parseSampleValue(rawLe); verr != nil {
				return nil, "", fmt.Errorf("le label %q is not a float", rawLe)
			}
		} else {
			labels = append(labels, Label{Name: lname, Value: val.String()})
		}
		if i < len(s) {
			if s[i] != ',' {
				return nil, "", fmt.Errorf("unexpected %q after label %q", s[i], lname)
			}
			i++
		}
	}
	return labels, rawLe, nil
}

// parseSampleValue parses a sample value, accepting the format's special
// spellings.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "Nan":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", s)
	}
	return v, nil
}

// labelKey renders a sorted canonical key for a label set, so histogram
// series with the same labels in any order aggregate together.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c == ':':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
