package metrics

import (
	"math"
	"testing"
	"time"
)

func ts(sec int) time.Time {
	return time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

func TestTimeSeriesAppendAndSpan(t *testing.T) {
	var s TimeSeries
	if s.Span() != 0 {
		t.Fatal("empty span should be 0")
	}
	s.Append(ts(0), 1)
	s.Append(ts(10), 2)
	if got := s.Span(); got != 10*time.Second {
		t.Fatalf("Span() = %v, want 10s", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", s.Len())
	}
}

func TestTimeSeriesClampsOutOfOrder(t *testing.T) {
	var s TimeSeries
	s.Append(ts(10), 1)
	s.Append(ts(5), 1) // earlier than previous: clamped
	pts := s.Points()
	if !pts[1].At.Equal(pts[0].At) {
		t.Fatalf("out-of-order append not clamped: %v vs %v", pts[1].At, pts[0].At)
	}
}

func TestTimeSeriesResample(t *testing.T) {
	var s TimeSeries
	for sec, v := range map[int]float64{0: 1, 1: 2, 5: 3, 11: 4} {
		_ = sec
		_ = v
	}
	// Deterministic insertion order (maps iterate randomly).
	s.Append(ts(0), 1)
	s.Append(ts(1), 2)
	s.Append(ts(5), 3)
	s.Append(ts(11), 4)
	buckets := s.Resample(5 * time.Second)
	if len(buckets) != 3 {
		t.Fatalf("got %d buckets, want 3", len(buckets))
	}
	wants := []float64{3, 3, 4}
	for i, w := range wants {
		if buckets[i].Value != w {
			t.Errorf("bucket[%d] = %v, want %v", i, buckets[i].Value, w)
		}
	}
}

func TestTimeSeriesResampleDegenerate(t *testing.T) {
	var s TimeSeries
	if got := s.Resample(time.Second); got != nil {
		t.Fatal("resample of empty series should be nil")
	}
	s.Append(ts(0), 1)
	if got := s.Resample(0); got != nil {
		t.Fatal("resample with step 0 should be nil")
	}
}

func TestTimeSeriesRate(t *testing.T) {
	var s TimeSeries
	if got := s.Rate(); !math.IsNaN(got) {
		t.Fatalf("Rate() on empty = %v, want NaN", got)
	}
	s.Append(ts(0), 5)
	s.Append(ts(10), 5)
	if got := s.Rate(); got != 1 {
		t.Fatalf("Rate() = %v, want 1 (10 events / 10s)", got)
	}
}

func TestTimeSeriesPointsCopy(t *testing.T) {
	var s TimeSeries
	s.Append(ts(0), 1)
	pts := s.Points()
	pts[0].Value = 99
	if s.Points()[0].Value != 1 {
		t.Fatal("Points() must return a copy")
	}
}
