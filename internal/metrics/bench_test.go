package metrics

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkSummaryObserve(b *testing.B) {
	s := NewSummary(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i))
	}
}

func BenchmarkSummaryPercentile(b *testing.B) {
	s := NewSummary(10000)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		s.Observe(rng.Float64() * 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Percentile(95)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewLatencyHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) + 0.5)
	}
}
