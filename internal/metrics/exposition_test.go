package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func expositionString(t *testing.T, e *Exposition) string {
	t.Helper()
	var b strings.Builder
	if _, err := e.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestExpositionGolden(t *testing.T) {
	e := NewExposition()
	e.Add(TypeCounter, "pow.decide_total", "counter pow.decide_total", 42, Label{"pipeline", "edge"})
	e.Add(TypeCounter, "pow.decide_total", "counter pow.decide_total", 7, Label{"pipeline", "api"})
	e.Add(TypeGauge, "pow.adapt_level", "gauge pow.adapt_level", 2, Label{"pipeline", "edge"})

	want := strings.Join([]string{
		`# HELP pow_adapt_level gauge pow.adapt_level`,
		`# TYPE pow_adapt_level gauge`,
		`pow_adapt_level{pipeline="edge"} 2`,
		`# HELP pow_decide_total counter pow.decide_total`,
		`# TYPE pow_decide_total counter`,
		`pow_decide_total{pipeline="edge"} 42`,
		`pow_decide_total{pipeline="api"} 7`,
		``,
	}, "\n")
	got := expositionString(t, e)
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition([]byte(got)); err != nil {
		t.Errorf("golden output fails validation: %v", err)
	}
}

func TestExpositionHistogramGolden(t *testing.T) {
	h := NewHistogram(1, 2, 3) // bounds 1,2,4,8 + overflow
	for _, v := range []float64{0.5, 1.5, 3, 3, 10, 100} {
		h.Observe(v)
	}
	e := NewExposition()
	h.ExpositionInto(e, "lat_ms", "latency", Label{"pipeline", "edge"})
	want := strings.Join([]string{
		`# HELP lat_ms latency`,
		`# TYPE lat_ms histogram`,
		`lat_ms_bucket{pipeline="edge",le="1"} 1`,
		`lat_ms_bucket{pipeline="edge",le="2"} 2`,
		`lat_ms_bucket{pipeline="edge",le="4"} 4`,
		`lat_ms_bucket{pipeline="edge",le="8"} 4`,
		`lat_ms_bucket{pipeline="edge",le="+Inf"} 6`,
		`lat_ms_sum{pipeline="edge"} 118`,
		`lat_ms_count{pipeline="edge"} 6`,
		``,
	}, "\n")
	got := expositionString(t, e)
	if got != want {
		t.Errorf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition([]byte(got)); err != nil {
		t.Errorf("histogram golden fails validation: %v", err)
	}
}

func TestExpositionEscaping(t *testing.T) {
	e := NewExposition()
	e.Add(TypeGauge, "g", "help with \\ and\nnewline", 1, Label{"path", "a\\b\"c\nd"})
	got := expositionString(t, e)
	if !strings.Contains(got, `# HELP g help with \\ and\nnewline`) {
		t.Errorf("HELP not escaped:\n%s", got)
	}
	if !strings.Contains(got, `g{path="a\\b\"c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", got)
	}
	if err := ValidateExposition([]byte(got)); err != nil {
		t.Errorf("escaped output fails validation: %v", err)
	}
}

func TestExpositionRegistryInto(t *testing.T) {
	r := &Registry{}
	r.Counter("decide.ok").Add(5)
	r.Gauge("adapt.level").Set(3)
	e := NewExposition()
	r.ExpositionInto(e, "pow_", Label{"pipeline", "edge"}, Label{"node", "n1"})
	got := expositionString(t, e)
	for _, want := range []string{
		`pow_decide_ok{pipeline="edge",node="n1"} 5`,
		`pow_adapt_level{pipeline="edge",node="n1"} 3`,
		`# TYPE pow_decide_ok counter`,
		`# TYPE pow_adapt_level gauge`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	if err := ValidateExposition([]byte(got)); err != nil {
		t.Errorf("registry exposition fails validation: %v", err)
	}
}

func TestExpositionTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge family conflict")
		}
	}()
	e := NewExposition()
	e.Add(TypeCounter, "m", "h", 1)
	e.Add(TypeGauge, "m", "h", 2)
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"pow.decide.total": "pow_decide_total",
		"already_fine:ok":  "already_fine:ok",
		"9starts_digit":    "_9starts_digit",
		"has-dash and sp":  "has_dash_and_sp",
		"":                 "_",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "m 1\n",
		"duplicate TYPE":     "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"HELP after TYPE":    "# TYPE m counter\n# HELP m h\nm 1\n",
		"interleaved families": strings.Join([]string{
			"# TYPE a counter", "# TYPE b counter", "a 1", "b 1", "a 2", "",
		}, "\n"),
		"bad metric name":    "# TYPE 1m counter\n1m 1\n",
		"bad label name":     "# TYPE m counter\nm{1x=\"v\"} 1\n",
		"bad escape":         "# TYPE m counter\nm{l=\"a\\t\"} 1\n",
		"unterminated label": "# TYPE m counter\nm{l=\"v} 1\n",
		"bad value":          "# TYPE m counter\nm{l=\"v\"} zebra\n",
		"non-monotone buckets": strings.Join([]string{
			"# TYPE h histogram",
			`h_bucket{le="1"} 5`,
			`h_bucket{le="2"} 3`,
			`h_bucket{le="+Inf"} 5`,
			"h_sum 1", "h_count 5", "",
		}, "\n"),
		"missing +Inf": strings.Join([]string{
			"# TYPE h histogram",
			`h_bucket{le="1"} 5`,
			"h_sum 1", "h_count 5", "",
		}, "\n"),
		"+Inf != count": strings.Join([]string{
			"# TYPE h histogram",
			`h_bucket{le="1"} 5`,
			`h_bucket{le="+Inf"} 5`,
			"h_sum 1", "h_count 7", "",
		}, "\n"),
		"bucket without le": strings.Join([]string{
			"# TYPE h histogram",
			`h_bucket{x="1"} 5`,
			`h_bucket{le="+Inf"} 5`,
			"h_sum 1", "h_count 5", "",
		}, "\n"),
	}
	for name, input := range cases {
		if err := ValidateExposition([]byte(input)); err == nil {
			t.Errorf("%s: expected validation error, got nil\ninput:\n%s", name, input)
		}
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	ok := strings.Join([]string{
		"# plain comment",
		"# HELP a helpful text with spaces",
		"# TYPE a counter",
		"a 1",
		`a{l="v"} 2.5e3`,
		"# TYPE untyped_metric untyped",
		"untyped_metric 3 1712345678",
		"nan_ok_without_meta_is_invalid_tho", // deliberately absent
		"",
	}, "\n")
	// Remove the deliberately invalid line for the accept case.
	ok = strings.Replace(ok, "nan_ok_without_meta_is_invalid_tho\n", "", 1)
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestAtomicHistogramMatchesPlain(t *testing.T) {
	a := NewAtomicHistogram(0.1, 1.26, 60)
	p := NewHistogram(0.1, 1.26, 60)
	vals := []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 100, 1000, 1e6}
	for _, v := range vals {
		a.Observe(v)
		p.Observe(v)
	}
	as, ps := a.Snapshot(), p.Snapshot()
	if as.Count != ps.Count || math.Abs(as.Sum-ps.Sum) > 1e-9 || as.P50 != ps.P50 || as.P99 != ps.P99 {
		t.Errorf("atomic snapshot %+v != plain %+v", as, ps)
	}
	if len(as.Buckets) != len(ps.Buckets) {
		t.Fatalf("bucket layouts differ: %d vs %d", len(as.Buckets), len(ps.Buckets))
	}
	for i := range as.Buckets {
		if as.Buckets[i] != ps.Buckets[i] {
			t.Errorf("bucket %d: atomic %+v != plain %+v", i, as.Buckets[i], ps.Buckets[i])
		}
	}
}

// TestAtomicHistogramConcurrent pins the Observe/Snapshot contract under
// -race: concurrent observers against a snapshotting reader, with exact
// count and sum reconciliation afterwards.
func TestAtomicHistogramConcurrent(t *testing.T) {
	h := NewAtomicLatencyHistogram()
	const (
		writers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() { // reader: snapshots must stay internally consistent
		for {
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
			}
			s := h.Snapshot()
			var n uint64
			for _, b := range s.Buckets {
				n += b.Count
			}
			// materialize reads buckets before total, and Observe bumps
			// total first, so this holds even mid-write.
			if n > s.Count {
				readerDone <- fmt.Errorf("bucket total %d exceeds count %d", n, s.Count)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%100) * 0.01)
				h.ObserveDuration(time.Duration(i%50) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-readerDone; err != nil {
		t.Error(err)
	}
	const total = writers * perW * 2
	if h.Count() != total {
		t.Errorf("Count = %d, want %d", h.Count(), total)
	}
	var wantSum float64
	for i := 0; i < perW; i++ {
		wantSum += float64(i%100) * 0.01
		wantSum += float64(time.Duration(i%50)*time.Microsecond) / float64(time.Millisecond)
	}
	wantSum *= writers
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum+1e-9 {
		t.Errorf("Sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestAtomicHistogramUnderflowAndShape(t *testing.T) {
	h := NewAtomicHistogram(1, 2, 4)
	h.Observe(-5)
	h.Observe(math.NaN())
	h.Observe(0.5)
	h.Observe(1e12) // overflow bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4", s.Count)
	}
	e := NewExposition()
	h.ExpositionInto(e, "h", "h")
	out := expositionString(t, e)
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Errorf("underflow/NaN exposition invalid: %v\n%s", err, out)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on degenerate shape")
		}
	}()
	NewAtomicHistogram(0, 1, 0)
}

func TestRegistrySnapshotPrefixInto(t *testing.T) {
	r := &Registry{}
	r.Counter("decide.ok").Add(3)
	r.Counter("verify.ok").Add(4)
	r.Gauge("adapt.level").Set(2)
	dst := map[string]float64{"existing": 1}
	r.SnapshotPrefixInto("p1.", dst)
	want := map[string]float64{
		"existing": 1, "p1.decide.ok": 3, "p1.verify.ok": 4, "p1.adapt.level": 2,
	}
	if len(dst) != len(want) {
		t.Fatalf("dst = %v, want %v", dst, want)
	}
	for k, v := range want {
		if dst[k] != v {
			t.Errorf("dst[%q] = %v, want %v", k, dst[k], v)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	r := &Registry{}
	r.Counter("b.counter")
	r.Gauge("a.gauge")
	r.Counter("shared")
	r.Gauge("shared")
	got := r.Names()
	want := []string{"a.gauge", "b.counter", "shared"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
