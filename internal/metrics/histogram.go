package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Histogram is a log-bucketed histogram for positive values (typically
// latencies in milliseconds). Buckets grow geometrically from Start by
// Factor, so wide dynamic ranges (microseconds to seconds) fit in a few
// dozen buckets with bounded relative error.
//
// Use NewHistogram to construct one; the zero value is not usable.
// Histogram is not safe for concurrent use.
type Histogram struct {
	start  float64
	factor float64
	counts []uint64
	under  uint64 // observations below start
	total  uint64
	sum    float64
}

// NewHistogram returns a histogram whose first bucket covers [start,
// start*factor) and which has n geometric buckets; values >= the last bound
// land in the final overflow bucket. It panics if the shape parameters are
// degenerate, since that is a programming error, not an input error.
func NewHistogram(start, factor float64, n int) *Histogram {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid histogram shape start=%v factor=%v n=%d", start, factor, n))
	}
	return &Histogram{start: start, factor: factor, counts: make([]uint64, n+1)}
}

// NewLatencyHistogram returns a histogram tuned for request latencies in
// milliseconds: 0.1 ms to ~100 s with ~26% relative bucket error.
func NewLatencyHistogram() *Histogram { return NewHistogram(0.1, 1.26, 60) }

// Observe records one value. Non-positive and NaN values are counted in the
// underflow bucket so totals still reconcile.
func (h *Histogram) Observe(v float64) {
	h.total++
	if !math.IsNaN(v) {
		h.sum += v
	}
	if math.IsNaN(v) || v < h.start {
		h.under++
		return
	}
	idx := int(math.Floor(math.Log(v/h.start) / math.Log(h.factor)))
	if idx >= len(h.counts)-1 {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count reports the total number of observations, including underflow.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the mean of all observed values (underflow included), or NaN
// when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Quantile estimates the q-th quantile (0 < q < 1) from bucket midpoints.
// The estimate carries the bucket's relative error. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if h.under >= target {
		return h.start / 2
	}
	cum := h.under
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			lo := h.start * math.Pow(h.factor, float64(i))
			return lo * math.Sqrt(h.factor) // geometric bucket midpoint
		}
	}
	return h.start * math.Pow(h.factor, float64(len(h.counts)))
}

// BucketBound reports the lower bound of bucket i.
func (h *Histogram) BucketBound(i int) float64 {
	return h.start * math.Pow(h.factor, float64(i))
}

// Render draws a proportional ASCII bar chart of the non-empty buckets,
// useful for quick inspection in experiment logs.
func (h *Histogram) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var peak uint64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	if h.under > peak {
		peak = h.under
	}
	if peak == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	bar := func(label string, c uint64) {
		n := int(float64(c) / float64(peak) * float64(width))
		fmt.Fprintf(&b, "%14s | %-*s %d\n", label, width, strings.Repeat("#", n), c)
	}
	if h.under > 0 {
		bar(fmt.Sprintf("<%.3g", h.start), h.under)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		bar(fmt.Sprintf(">=%.3g", h.BucketBound(i)), c)
	}
	return b.String()
}

// Merge folds other's observations into h. Both histograms must share the
// same bucket layout (start, factor, bucket count); Merge panics otherwise,
// since mixing layouts silently would corrupt every later quantile.
//
// Merging is how concurrent collectors stay deterministic: each worker
// records into a private histogram and the owner merges them in a fixed
// order, so the float sum accumulates in the same order on every run.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if h.start != other.start || h.factor != other.factor || len(h.counts) != len(other.counts) {
		panic(fmt.Sprintf("metrics: merging mismatched histogram layouts (%v/%v/%d vs %v/%v/%d)",
			h.start, h.factor, len(h.counts), other.start, other.factor, len(other.counts)))
	}
	h.under += other.under
	h.total += other.total
	h.sum += other.sum
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// HistogramBucket is one non-empty bucket of a snapshot: the bucket's lower
// bound and its observation count.
type HistogramBucket struct {
	// Lo is the bucket's inclusive lower bound (the underflow bucket
	// reports 0).
	Lo float64 `json:"lo"`

	// Count is the number of observations in the bucket.
	Count uint64 `json:"count"`
}

// HistogramSnapshot is an immutable, JSON-marshalable export of a
// histogram's state: shape, sparse non-empty buckets, and the derived
// summary statistics reports care about. Marshaling a snapshot of the same
// observations always yields identical bytes, which is what lets simulation
// reports be compared with cmp/diff across runs.
type HistogramSnapshot struct {
	// Start and Factor echo the bucket layout, so a snapshot is
	// self-describing.
	Start  float64 `json:"start"`
	Factor float64 `json:"factor"`

	// Count is the total number of observations, Sum their total value.
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`

	// Mean, P50, P90 and P99 are the derived statistics (0 when empty).
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`

	// Buckets lists the non-empty buckets in ascending bound order; the
	// underflow bucket, when non-empty, leads with Lo 0.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot exports the histogram's current state. Quantile estimates carry
// the bucket relative error, like Quantile. NaN-free: an empty histogram
// snapshots with zero statistics so the result always marshals to JSON.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Start: h.start, Factor: h.factor, Count: h.total, Sum: h.sum}
	if h.under > 0 {
		s.Buckets = append(s.Buckets, HistogramBucket{Lo: 0, Count: h.under})
	}
	for i, c := range h.counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Lo: h.BucketBound(i), Count: c})
		}
	}
	if h.total == 0 {
		return s
	}
	s.Mean = h.Mean()
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	return s
}

// Reset clears all recorded observations, retaining the bucket layout.
func (h *Histogram) Reset() {
	h.under, h.total, h.sum = 0, 0, 0
	for i := range h.counts {
		h.counts[i] = 0
	}
}
