package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Histogram is a log-bucketed histogram for positive values (typically
// latencies in milliseconds). Buckets grow geometrically from Start by
// Factor, so wide dynamic ranges (microseconds to seconds) fit in a few
// dozen buckets with bounded relative error.
//
// Use NewHistogram to construct one; the zero value is not usable.
// Histogram is not safe for concurrent use.
type Histogram struct {
	start  float64
	factor float64
	counts []uint64
	under  uint64 // observations below start
	total  uint64
	sum    float64
}

// NewHistogram returns a histogram whose first bucket covers [start,
// start*factor) and which has n geometric buckets; values >= the last bound
// land in the final overflow bucket. It panics if the shape parameters are
// degenerate, since that is a programming error, not an input error.
func NewHistogram(start, factor float64, n int) *Histogram {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid histogram shape start=%v factor=%v n=%d", start, factor, n))
	}
	return &Histogram{start: start, factor: factor, counts: make([]uint64, n+1)}
}

// NewLatencyHistogram returns a histogram tuned for request latencies in
// milliseconds: 0.1 ms to ~100 s with ~26% relative bucket error.
func NewLatencyHistogram() *Histogram { return NewHistogram(0.1, 1.26, 60) }

// Observe records one value. Non-positive and NaN values are counted in the
// underflow bucket so totals still reconcile.
func (h *Histogram) Observe(v float64) {
	h.total++
	if !math.IsNaN(v) {
		h.sum += v
	}
	if math.IsNaN(v) || v < h.start {
		h.under++
		return
	}
	idx := int(math.Floor(math.Log(v/h.start) / math.Log(h.factor)))
	if idx >= len(h.counts)-1 {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count reports the total number of observations, including underflow.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the mean of all observed values (underflow included), or NaN
// when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Quantile estimates the q-th quantile (0 < q < 1) from bucket midpoints.
// The estimate carries the bucket's relative error. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if h.under >= target {
		return h.start / 2
	}
	cum := h.under
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			lo := h.start * math.Pow(h.factor, float64(i))
			return lo * math.Sqrt(h.factor) // geometric bucket midpoint
		}
	}
	return h.start * math.Pow(h.factor, float64(len(h.counts)))
}

// BucketBound reports the lower bound of bucket i.
func (h *Histogram) BucketBound(i int) float64 {
	return h.start * math.Pow(h.factor, float64(i))
}

// Render draws a proportional ASCII bar chart of the non-empty buckets,
// useful for quick inspection in experiment logs.
func (h *Histogram) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var peak uint64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	if h.under > peak {
		peak = h.under
	}
	if peak == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	bar := func(label string, c uint64) {
		n := int(float64(c) / float64(peak) * float64(width))
		fmt.Fprintf(&b, "%14s | %-*s %d\n", label, width, strings.Repeat("#", n), c)
	}
	if h.under > 0 {
		bar(fmt.Sprintf("<%.3g", h.start), h.under)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		bar(fmt.Sprintf(">=%.3g", h.BucketBound(i)), c)
	}
	return b.String()
}

// Reset clears all recorded observations, retaining the bucket layout.
func (h *Histogram) Reset() {
	h.under, h.total, h.sum = 0, 0, 0
	for i := range h.counts {
		h.counts[i] = 0
	}
}
