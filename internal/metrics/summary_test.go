package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if got := s.Count(); got != 0 {
		t.Fatalf("Count() = %d, want 0", got)
	}
	for name, v := range map[string]float64{
		"Mean":   s.Mean(),
		"Median": s.Median(),
		"Min":    s.Min(),
		"Max":    s.Max(),
		"Stddev": s.Stddev(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s on empty summary = %v, want NaN", name, v)
		}
	}
	if got := s.String(); got != "summary{empty}" {
		t.Errorf("String() = %q", got)
	}
}

func TestSummaryBasicStats(t *testing.T) {
	tests := []struct {
		name    string
		samples []float64
		median  float64
		mean    float64
		min     float64
		max     float64
	}{
		{"single", []float64{5}, 5, 5, 5, 5},
		{"odd", []float64{3, 1, 2}, 2, 2, 1, 3},
		{"even_interpolates", []float64{1, 2, 3, 4}, 2.5, 2.5, 1, 4},
		{"duplicates", []float64{7, 7, 7, 7}, 7, 7, 7, 7},
		{"negative", []float64{-5, 5}, 0, 0, -5, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var s Summary
			for _, v := range tt.samples {
				s.Observe(v)
			}
			if got := s.Median(); got != tt.median {
				t.Errorf("Median() = %v, want %v", got, tt.median)
			}
			if got := s.Mean(); got != tt.mean {
				t.Errorf("Mean() = %v, want %v", got, tt.mean)
			}
			if got := s.Min(); got != tt.min {
				t.Errorf("Min() = %v, want %v", got, tt.min)
			}
			if got := s.Max(); got != tt.max {
				t.Errorf("Max() = %v, want %v", got, tt.max)
			}
		})
	}
}

func TestSummaryPercentileInterpolation(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {25, 25.75}, {95, 95.05},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := s.Percentile(-1); !math.IsNaN(got) {
		t.Errorf("Percentile(-1) = %v, want NaN", got)
	}
	if got := s.Percentile(101); !math.IsNaN(got) {
		t.Errorf("Percentile(101) = %v, want NaN", got)
	}
}

func TestSummaryIgnoresNaN(t *testing.T) {
	var s Summary
	s.Observe(math.NaN())
	s.Observe(1)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count() = %d, want 1 (NaN must be dropped)", got)
	}
}

func TestSummaryObserveDuration(t *testing.T) {
	var s Summary
	s.ObserveDuration(250 * time.Millisecond)
	if got := s.Median(); got != 250 {
		t.Fatalf("Median() = %v ms, want 250", got)
	}
}

func TestSummaryVariance(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	want := 32.0 / 7.0
	if got := s.Variance(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance() = %v, want %v", got, want)
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	s.Observe(1)
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("Reset did not clear samples")
	}
}

// Property: for any sample set, min ≤ p25 ≤ median ≤ p75 ≤ max, and the mean
// lies within [min, max].
func TestSummaryOrderProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		for _, v := range raw {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				continue
			}
			s.Observe(v)
		}
		if s.Count() == 0 {
			return true
		}
		mn, p25, med, p75, mx := s.Min(), s.Percentile(25), s.Median(), s.Percentile(75), s.Max()
		if !(mn <= p25 && p25 <= med && med <= p75 && p75 <= mx) {
			return false
		}
		mean := s.Mean()
		return mean >= mn && mean <= mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Samples() returns a sorted copy whose mutation cannot corrupt
// the summary.
func TestSummarySamplesCopyProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var s Summary
	for i := 0; i < 100; i++ {
		s.Observe(rng.Float64() * 1000)
	}
	cp := s.Samples()
	for i := 1; i < len(cp); i++ {
		if cp[i-1] > cp[i] {
			t.Fatal("Samples() not sorted")
		}
	}
	before := s.Median()
	for i := range cp {
		cp[i] = -1
	}
	if got := s.Median(); got != before {
		t.Fatal("mutating Samples() copy changed the summary")
	}
}
