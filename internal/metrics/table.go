package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// mathFloat64bits/mathFloat64frombits are tiny indirections over math so the
// atomic Gauge code reads clearly; they exist in this file to keep counter.go
// free of the math import.
func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Table is a simple column-aligned results table. Experiments use it to
// print the same rows the paper's tables and figures report.
// The zero value is not usable; construct with NewTable.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	h := make([]string, len(headers))
	copy(h, headers)
	return &Table{title: title, headers: h}
}

// AddRow appends a row. Cells are formatted with %v; float64 cells are
// rendered with three significant decimals, the precision the paper plots.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if v == math.Trunc(v) && math.Abs(v) < 1e9 {
				row[i] = fmt.Sprintf("%.1f", v)
			} else {
				row[i] = fmt.Sprintf("%.3f", v)
			}
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Title reports the table's title.
func (t *Table) Title() string { return t.title }

// Render writes the table as aligned ASCII art.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes the table (headers first) as RFC 4180 CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: flush csv: %w", err)
	}
	return nil
}
