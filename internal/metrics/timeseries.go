package metrics

import (
	"math"
	"time"
)

// Point is one time-stamped observation in a TimeSeries.
type Point struct {
	At    time.Time
	Value float64
}

// TimeSeries is an append-only sequence of time-stamped values, used by the
// attack experiments to track goodput and queue depth over simulated time.
// Appends must be in non-decreasing time order; out-of-order appends are
// clamped to the last timestamp so downstream resampling stays monotone.
//
// The zero value is ready to use. TimeSeries is not safe for concurrent use.
type TimeSeries struct {
	points []Point
}

// Append records value v at time at.
func (ts *TimeSeries) Append(at time.Time, v float64) {
	if n := len(ts.points); n > 0 && at.Before(ts.points[n-1].At) {
		at = ts.points[n-1].At
	}
	ts.points = append(ts.points, Point{At: at, Value: v})
}

// Len reports the number of points.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns a copy of the recorded points in time order.
func (ts *TimeSeries) Points() []Point {
	out := make([]Point, len(ts.points))
	copy(out, ts.points)
	return out
}

// Span reports the duration between the first and last point, or zero when
// fewer than two points exist.
func (ts *TimeSeries) Span() time.Duration {
	if len(ts.points) < 2 {
		return 0
	}
	return ts.points[len(ts.points)-1].At.Sub(ts.points[0].At)
}

// Resample buckets the series into fixed windows of width step starting at
// the first point, reporting the per-window sum. Empty windows report zero.
// It returns nil when the series is empty or step is non-positive.
func (ts *TimeSeries) Resample(step time.Duration) []Point {
	if len(ts.points) == 0 || step <= 0 {
		return nil
	}
	start := ts.points[0].At
	nWindows := int(ts.points[len(ts.points)-1].At.Sub(start)/step) + 1
	out := make([]Point, nWindows)
	for i := range out {
		out[i] = Point{At: start.Add(time.Duration(i) * step)}
	}
	for _, p := range ts.points {
		idx := int(p.At.Sub(start) / step)
		if idx >= nWindows {
			idx = nWindows - 1
		}
		out[idx].Value += p.Value
	}
	return out
}

// Rate reports the average of point values per second across the series
// span, treating each point's value as a count. Returns NaN when the span
// is zero.
func (ts *TimeSeries) Rate() float64 {
	span := ts.Span().Seconds()
	if span <= 0 {
		return math.NaN()
	}
	var sum float64
	for _, p := range ts.points {
		sum += p.Value
	}
	return sum / span
}
