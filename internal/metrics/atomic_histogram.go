package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// AtomicHistogram is the concurrency-safe sibling of Histogram: the same
// log-bucketed geometry, but with atomic bucket counters and a CAS-looped
// float sum, so serving paths can observe into one shared histogram from
// many goroutines without locks and without allocating. Use it anywhere a
// Histogram would be reachable from concurrent request paths; keep plain
// Histogram for single-goroutine collectors (the simulation's worker-
// private outcome histograms) where deterministic float summation
// matters.
//
// Observe is wait-free on the bucket counters; only the sum uses a CAS
// retry loop, which under contention costs retries but never blocks.
// Snapshot is not a point-in-time cut — counters are read individually —
// so totals may be off by in-flight observations; for a monitoring
// export that is the accepted contract (Prometheus scrapes have the same
// property).
type AtomicHistogram struct {
	start        float64
	factor       float64
	invLogFactor float64 // 1 / ln(factor), precomputed off the hot path
	counts       []atomic.Uint64
	under        atomic.Uint64
	total        atomic.Uint64
	sumBits      atomic.Uint64 // float64 bits, CAS-updated
}

// NewAtomicHistogram returns an atomic histogram with the same shape
// semantics as NewHistogram: first bucket [start, start*factor), n
// geometric buckets, final bucket catching overflow. Panics on a
// degenerate shape, like NewHistogram.
func NewAtomicHistogram(start, factor float64, n int) *AtomicHistogram {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid histogram shape start=%v factor=%v n=%d", start, factor, n))
	}
	return &AtomicHistogram{
		start:        start,
		factor:       factor,
		invLogFactor: 1 / math.Log(factor),
		counts:       make([]atomic.Uint64, n+1),
	}
}

// NewAtomicLatencyHistogram returns an atomic histogram tuned for
// serving-path latencies in milliseconds: 500 ns to ~5.5 s across 40
// geometric buckets (50% relative bucket width — coarse enough to stay
// small, fine enough to separate a 2 µs decide from a 30 µs one).
func NewAtomicLatencyHistogram() *AtomicHistogram {
	return NewAtomicHistogram(0.0005, 1.5, 40)
}

// Observe records one value. Non-positive and NaN values land in the
// underflow bucket so totals still reconcile. Safe for concurrent use;
// never allocates.
func (h *AtomicHistogram) Observe(v float64) {
	h.total.Add(1)
	if !math.IsNaN(v) {
		for {
			old := h.sumBits.Load()
			if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
				break
			}
		}
	}
	if math.IsNaN(v) || v < h.start {
		h.under.Add(1)
		return
	}
	idx := int(math.Floor(math.Log(v/h.start) * h.invLogFactor))
	if idx >= len(h.counts)-1 {
		idx = len(h.counts) - 1
	}
	h.counts[idx].Add(1)
}

// ObserveDuration records a duration in milliseconds.
func (h *AtomicHistogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count reports the total number of observations, including underflow.
func (h *AtomicHistogram) Count() uint64 { return h.total.Load() }

// Sum reports the running sum of observed values.
func (h *AtomicHistogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// materialize copies the atomic state into a plain Histogram, from which
// every derived statistic (quantiles, snapshot, exposition) follows. The
// copy is not a consistent cut, but bucket counters are read before the
// total — and Observe increments the total first — so the materialized
// buckets never sum past the materialized count: exported cumulative
// series stay internally consistent under concurrent observation.
func (h *AtomicHistogram) materialize() *Histogram {
	p := &Histogram{
		start:  h.start,
		factor: h.factor,
		counts: make([]uint64, len(h.counts)),
	}
	p.under = h.under.Load()
	for i := range h.counts {
		p.counts[i] = h.counts[i].Load()
	}
	p.sum = h.Sum()
	p.total = h.total.Load()
	return p
}

// Snapshot exports the histogram's current state in the shared
// HistogramSnapshot form.
func (h *AtomicHistogram) Snapshot() HistogramSnapshot { return h.materialize().Snapshot() }

// Quantile estimates the q-th quantile, like Histogram.Quantile.
func (h *AtomicHistogram) Quantile(q float64) float64 { return h.materialize().Quantile(q) }
