package metrics

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"time"
)

func TestNewHistogramPanicsOnBadShape(t *testing.T) {
	tests := []struct {
		name          string
		start, factor float64
		n             int
	}{
		{"zero_start", 0, 2, 4},
		{"negative_start", -1, 2, 4},
		{"factor_one", 1, 1, 4},
		{"no_buckets", 1, 2, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewHistogram(tt.start, tt.factor, tt.n)
		})
	}
}

func TestHistogramCountAndMean(t *testing.T) {
	h := NewHistogram(1, 2, 10)
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("Count() = %d, want 4", got)
	}
	if got := h.Mean(); got != 3.75 {
		t.Fatalf("Mean() = %v, want 3.75", got)
	}
}

func TestHistogramUnderflowAndOverflow(t *testing.T) {
	h := NewHistogram(1, 2, 3) // buckets: [1,2) [2,4) [4,8) [8,inf)
	h.Observe(0.5)             // underflow
	h.Observe(math.NaN())      // underflow, excluded from sum
	h.Observe(100)             // overflow bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("Count() = %d, want 3", got)
	}
	if got := h.under; got != 2 {
		t.Fatalf("underflow = %d, want 2", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewPCG(7, 9))
	var exact Summary
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*1.0 + 3.0) // lognormal latencies ~20ms
		h.Observe(v)
		exact.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := exact.Percentile(q * 100)
		if rel := math.Abs(got-want) / want; rel > 0.30 {
			t.Errorf("Quantile(%v) = %v, exact %v, rel err %.2f > 0.30", q, got, want, rel)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("Quantile on empty = %v, want NaN", got)
	}
	h.Observe(0.1) // all mass in underflow
	if got := h.Quantile(0.5); got != 0.5 {
		t.Errorf("underflow quantile = %v, want start/2 = 0.5", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveDuration(50 * time.Millisecond)
	if got := h.Mean(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Mean after ObserveDuration = %v, want 50", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	if got := h.Render(20); got != "(empty histogram)\n" {
		t.Fatalf("empty render = %q", got)
	}
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(3)
	out := h.Render(20)
	if !strings.Contains(out, "<1") || !strings.Contains(out, ">=2") {
		t.Fatalf("render missing buckets:\n%s", out)
	}
}

func TestHistogramMerge(t *testing.T) {
	whole := NewHistogram(1, 2, 6)
	a := NewHistogram(1, 2, 6)
	b := NewHistogram(1, 2, 6)
	values := []float64{0.5, 1, 3, 3, 9, 40, 200}
	for i, v := range values {
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.under != whole.under || a.sum != whole.sum {
		t.Fatalf("merged totals = (%d,%d,%v), want (%d,%d,%v)",
			a.Count(), a.under, a.sum, whole.Count(), whole.under, whole.sum)
	}
	for i := range whole.counts {
		if a.counts[i] != whole.counts[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, a.counts[i], whole.counts[i])
		}
	}
	a.Merge(nil) // no-op
	if a.Count() != whole.Count() {
		t.Fatal("Merge(nil) changed state")
	}
}

func TestHistogramMergePanicsOnLayoutMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched layouts")
		}
	}()
	NewHistogram(1, 2, 6).Merge(NewHistogram(1, 2, 7))
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	empty := h.Snapshot()
	if empty.Count != 0 || len(empty.Buckets) != 0 || empty.Mean != 0 || empty.P99 != 0 {
		t.Fatalf("empty snapshot not zeroed: %+v", empty)
	}

	h.Observe(0.5) // underflow
	h.Observe(3)
	h.Observe(3)
	h.Observe(100) // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("snapshot count = %d, want 4", s.Count)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("snapshot buckets = %+v, want 3 entries", s.Buckets)
	}
	if s.Buckets[0].Lo != 0 || s.Buckets[0].Count != 1 {
		t.Fatalf("underflow bucket = %+v", s.Buckets[0])
	}
	if s.Buckets[1].Lo != 2 || s.Buckets[1].Count != 2 {
		t.Fatalf("value bucket = %+v", s.Buckets[1])
	}
	if s.Mean != h.Mean() || s.P50 != h.Quantile(0.5) || s.P99 != h.Quantile(0.99) {
		t.Fatal("snapshot statistics disagree with histogram accessors")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	h.Observe(3)
	h.Reset()
	if h.Count() != 0 || !math.IsNaN(h.Mean()) {
		t.Fatal("Reset did not clear state")
	}
}
