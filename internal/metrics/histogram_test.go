package metrics

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"time"
)

func TestNewHistogramPanicsOnBadShape(t *testing.T) {
	tests := []struct {
		name          string
		start, factor float64
		n             int
	}{
		{"zero_start", 0, 2, 4},
		{"negative_start", -1, 2, 4},
		{"factor_one", 1, 1, 4},
		{"no_buckets", 1, 2, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewHistogram(tt.start, tt.factor, tt.n)
		})
	}
}

func TestHistogramCountAndMean(t *testing.T) {
	h := NewHistogram(1, 2, 10)
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("Count() = %d, want 4", got)
	}
	if got := h.Mean(); got != 3.75 {
		t.Fatalf("Mean() = %v, want 3.75", got)
	}
}

func TestHistogramUnderflowAndOverflow(t *testing.T) {
	h := NewHistogram(1, 2, 3) // buckets: [1,2) [2,4) [4,8) [8,inf)
	h.Observe(0.5)             // underflow
	h.Observe(math.NaN())      // underflow, excluded from sum
	h.Observe(100)             // overflow bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("Count() = %d, want 3", got)
	}
	if got := h.under; got != 2 {
		t.Fatalf("underflow = %d, want 2", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewPCG(7, 9))
	var exact Summary
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*1.0 + 3.0) // lognormal latencies ~20ms
		h.Observe(v)
		exact.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := exact.Percentile(q * 100)
		if rel := math.Abs(got-want) / want; rel > 0.30 {
			t.Errorf("Quantile(%v) = %v, exact %v, rel err %.2f > 0.30", q, got, want, rel)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("Quantile on empty = %v, want NaN", got)
	}
	h.Observe(0.1) // all mass in underflow
	if got := h.Quantile(0.5); got != 0.5 {
		t.Errorf("underflow quantile = %v, want start/2 = 0.5", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveDuration(50 * time.Millisecond)
	if got := h.Mean(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Mean after ObserveDuration = %v, want 50", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	if got := h.Render(20); got != "(empty histogram)\n" {
		t.Fatalf("empty render = %q", got)
	}
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(3)
	out := h.Render(20)
	if !strings.Contains(out, "<1") || !strings.Contains(out, ">=2") {
		t.Fatalf("render missing buckets:\n%s", out)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	h.Observe(3)
	h.Reset()
	if h.Count() != 0 || !math.IsNaN(h.Mean()) {
		t.Fatal("Reset did not clear state")
	}
}
