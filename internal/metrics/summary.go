// Package metrics provides the measurement substrate used by the framework
// and by the experiment harness: exact sample summaries (median, arbitrary
// percentiles), log-bucketed histograms, counters, time series, and renderers
// that produce the ASCII tables and CSV files the experiments report.
//
// All types are safe for single-goroutine use; the ones documented as
// concurrency-safe (Counter, Gauge, Registry) may be shared across
// goroutines.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates float64 observations and answers exact order
// statistics over them. It keeps every sample, so it is intended for
// experiment-scale data (thousands to low millions of points), not for
// unbounded production telemetry — use Histogram for that.
//
// The zero value is ready to use. Summary is not safe for concurrent use.
type Summary struct {
	samples []float64
	sorted  bool
}

// NewSummary returns a Summary pre-allocated for n observations.
func NewSummary(n int) *Summary {
	return &Summary{samples: make([]float64, 0, n)}
}

// Observe records one sample. NaN samples are ignored so that downstream
// statistics stay well defined.
func (s *Summary) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.samples = append(s.samples, v)
	s.sorted = false
}

// ObserveDuration records a duration sample in milliseconds, the unit the
// paper's figures use.
func (s *Summary) ObserveDuration(d time.Duration) {
	s.Observe(float64(d) / float64(time.Millisecond))
}

// Count reports the number of recorded samples.
func (s *Summary) Count() int { return len(s.samples) }

// Sum reports the sum of all samples.
func (s *Summary) Sum() float64 {
	var sum float64
	for _, v := range s.samples {
		sum += v
	}
	return sum
}

// Mean reports the arithmetic mean, or NaN if no samples were recorded.
// It is computed incrementally so it stays finite (within [Min, Max]) even
// when the plain sum of the samples would overflow.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return math.NaN()
	}
	var mean float64
	for i, v := range s.samples {
		// mean*(i/(i+1)) + v/(i+1) keeps every intermediate ≤ MaxFloat64,
		// unlike the textbook mean += (v-mean)/(i+1), whose difference can
		// overflow when samples straddle ±MaxFloat64/2.
		n := float64(i + 1)
		mean = mean*(float64(i)/n) + v/n
	}
	return mean
}

// Min reports the smallest sample, or NaN if no samples were recorded.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.samples[0]
}

// Max reports the largest sample, or NaN if no samples were recorded.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.samples[len(s.samples)-1]
}

// Median reports the 50th percentile. See Percentile for the interpolation
// rule.
func (s *Summary) Median() float64 { return s.Percentile(50) }

// Percentile reports the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks, matching numpy's default method so
// the numbers line up with the plotting scripts people actually use.
// It returns NaN when the summary is empty or p is out of range.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.samples) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	s.sort()
	if len(s.samples) == 1 {
		return s.samples[0]
	}
	rank := p / 100 * float64(len(s.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.samples[lo]
	}
	frac := rank - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Variance reports the unbiased sample variance, or NaN with fewer than two
// samples.
func (s *Summary) Variance() float64 {
	n := len(s.samples)
	if n < 2 {
		return math.NaN()
	}
	mean := s.Mean()
	var acc float64
	for _, v := range s.samples {
		d := v - mean
		acc += d * d
	}
	return acc / float64(n-1)
}

// Stddev reports the unbiased sample standard deviation, or NaN with fewer
// than two samples.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Samples returns a copy of the recorded samples in insertion order is not
// guaranteed; the slice is sorted ascending. Mutating the returned slice
// does not affect the Summary.
func (s *Summary) Samples() []float64 {
	s.sort()
	out := make([]float64, len(s.samples))
	copy(out, s.samples)
	return out
}

// Reset discards all samples, retaining capacity.
func (s *Summary) Reset() {
	s.samples = s.samples[:0]
	s.sorted = false
}

// String renders a compact one-line digest, useful in logs and test output.
func (s *Summary) String() string {
	if len(s.samples) == 0 {
		return "summary{empty}"
	}
	return fmt.Sprintf("summary{n=%d min=%.3g p50=%.3g p95=%.3g max=%.3g mean=%.3g}",
		s.Count(), s.Min(), s.Median(), s.Percentile(95), s.Max(), s.Mean())
}

func (s *Summary) sort() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}
