package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestEWMADecayTable(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value() != 0 {
		t.Fatalf("fresh EWMA reads %v, want 0", e.Value())
	}
	// First sample seeds directly; then the alpha-0.5 decay walk.
	table := []struct{ in, want float64 }{
		{100, 100}, {100, 100}, {200, 150}, {200, 175}, {200, 187.5}, {0, 93.75},
	}
	for i, row := range table {
		e.Observe(row.in)
		if got := e.Value(); got != row.want {
			t.Fatalf("step %d: value = %v, want %v", i, got, row.want)
		}
	}
	e.Observe(math.NaN())
	if got := e.Value(); got != 93.75 {
		t.Fatalf("NaN sample changed the average to %v", got)
	}
	e.Reset()
	if e.Value() != 0 {
		t.Fatalf("reset EWMA reads %v", e.Value())
	}
	e.Observe(7)
	if e.Value() != 7 {
		t.Fatalf("post-reset seed = %v, want 7", e.Value())
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5, math.NaN()} {
		if _, err := NewEWMA(alpha); err == nil {
			t.Fatalf("NewEWMA(%v) unexpectedly succeeded", alpha)
		}
	}
}

func TestWindowRotation(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 0 || w.Sum() != 0 || w.Mean() != 0 || w.Max() != 0 || w.Quantile(0.5) != 0 {
		t.Fatalf("empty window not all-zero")
	}
	w.Push(1)
	w.Push(2)
	if w.Len() != 2 || w.Sum() != 3 || w.Mean() != 1.5 {
		t.Fatalf("partial window: len %d sum %v mean %v", w.Len(), w.Sum(), w.Mean())
	}
	w.Push(3)
	w.Push(10) // rotates the 1 out
	if w.Len() != 3 || w.Sum() != 15 || w.Max() != 10 {
		t.Fatalf("rotated window: len %d sum %v max %v", w.Len(), w.Sum(), w.Max())
	}
	w.Push(20)
	w.Push(30) // only {10, 20, 30} remain
	if w.Sum() != 60 || w.Mean() != 20 {
		t.Fatalf("fully rotated window: sum %v mean %v", w.Sum(), w.Mean())
	}
}

func TestWindowQuantileBounds(t *testing.T) {
	w, err := NewWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 10} {
		w.Push(v)
	}
	table := []struct{ q, want float64 }{
		{0, 1}, {0.1, 1}, {0.5, 5}, {0.9, 9}, {0.91, 10}, {1, 10},
	}
	for _, row := range table {
		if got := w.Quantile(row.q); got != row.want {
			t.Fatalf("q=%v: got %v, want %v", row.q, got, row.want)
		}
	}
	// Quantiles over the rotated window only see the newest samples.
	for i := 0; i < 10; i++ {
		w.Push(100)
	}
	if got := w.Quantile(0.5); got != 100 {
		t.Fatalf("rotated q50 = %v, want 100", got)
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Fatal("NewWindow(0) unexpectedly succeeded")
	}
}

// TestWindowConcurrentObservers hammers a window and an EWMA with
// concurrent writers and a reader under -race.
func TestWindowConcurrentObservers(t *testing.T) {
	w, err := NewWindow(16)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEWMA(0.2)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				w.Push(float64(g * i % 97))
				e.Observe(float64(i % 31))
			}
		}(g)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = w.Sum()
			_ = w.Quantile(0.9)
			_ = w.Max()
			_ = e.Value()
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
}
