package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a hand-rolled encoder for the Prometheus text exposition
// format, version 0.0.4 — the format every Prometheus-compatible scraper
// speaks. The module has zero dependencies and keeps it that way: the
// format is three line shapes (# HELP, # TYPE, samples), and emitting it
// directly is smaller than any client library.

// Label is one exposition label pair. Values are escaped on write; names
// must match the Prometheus label-name charset and are sanitized like
// metric names.
type Label struct {
	Name  string
	Value string
}

// Metric family types in the exposition format.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// expoSample is one rendered sample line body (everything after the
// family name).
type expoSample struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string // pre-rendered "{k=\"v\",…}" or ""
	value  string
}

// expoFamily is one metric family: its metadata plus samples in add
// order.
type expoFamily struct {
	typ     string
	help    string
	samples []expoSample
}

// Exposition accumulates metric families and renders them in the text
// exposition format: families sorted by name, each emitted as one
// contiguous block of # HELP, # TYPE, and its samples — the grouping the
// format requires. Collect from as many sources as needed (per-pipeline
// registries and histograms, each contributing the same family under
// different labels), then WriteTo once.
//
// An Exposition is not safe for concurrent use; build one per scrape.
type Exposition struct {
	families map[string]*expoFamily
}

// NewExposition returns an empty collector.
func NewExposition() *Exposition {
	return &Exposition{families: make(map[string]*expoFamily)}
}

// family resolves (or creates) the named family. The first registration
// of a name fixes its type and help; later adds under a different type
// are a programming error worth failing loudly over.
func (e *Exposition) family(name, typ, help string) *expoFamily {
	f, ok := e.families[name]
	if !ok {
		f = &expoFamily{typ: typ, help: help}
		e.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: exposition family %q registered as both %s and %s", name, f.typ, typ))
	}
	return f
}

// Add records one counter or gauge sample under the (sanitized) family
// name. The same family may be added repeatedly with different label
// sets — one per pipeline, say.
func (e *Exposition) Add(typ, name, help string, value float64, labels ...Label) {
	f := e.family(SanitizeMetricName(name), typ, help)
	f.samples = append(f.samples, expoSample{labels: renderLabels(labels, "", ""), value: formatValue(value)})
}

// AddHistogram records a full histogram family — cumulative _bucket
// series, _sum, and _count — from a snapshot-independent description:
// bounds[i] is the inclusive upper bound of cumulative[i], and an
// implicit +Inf bucket equal to count closes the series.
func (e *Exposition) AddHistogram(name, help string, bounds []float64, cumulative []uint64, sum float64, count uint64, labels ...Label) {
	f := e.family(SanitizeMetricName(name), TypeHistogram, help)
	for i, le := range bounds {
		f.samples = append(f.samples, expoSample{
			suffix: "_bucket",
			labels: renderLabels(labels, "le", formatValue(le)),
			value:  strconv.FormatUint(cumulative[i], 10),
		})
	}
	f.samples = append(f.samples,
		expoSample{suffix: "_bucket", labels: renderLabels(labels, "le", "+Inf"), value: strconv.FormatUint(count, 10)},
		expoSample{suffix: "_sum", labels: renderLabels(labels, "", ""), value: formatValue(sum)},
		expoSample{suffix: "_count", labels: renderLabels(labels, "", ""), value: strconv.FormatUint(count, 10)},
	)
}

// WriteTo renders every family, sorted by name, in the v0.0.4 text
// format.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	names := make([]string, 0, len(e.families))
	for name := range e.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := e.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.typ)
		for _, s := range f.samples {
			fmt.Fprintf(&b, "%s%s%s %s\n", name, s.suffix, s.labels, s.value)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ExpositionInto contributes every counter and gauge of the registry to e
// under prefix+name, all carrying the given labels. Counter/gauge names
// with registry-style dots ("adapt.rate_p90") sanitize to underscores.
func (r *Registry) ExpositionInto(e *Exposition, prefix string, labels ...Label) {
	r.mu.RLock()
	type kv struct {
		name string
		val  float64
		typ  string
	}
	rows := make([]kv, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		rows = append(rows, kv{name, float64(c.Value()), TypeCounter})
	}
	for name, g := range r.gauges {
		rows = append(rows, kv{name, g.Value(), TypeGauge})
	}
	r.mu.RUnlock()
	// Stable sample order inside each family across scrapes.
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, row := range rows {
		e.Add(row.typ, prefix+row.name, row.typ+" "+row.name, row.val, labels...)
	}
}

// expoSeries derives the cumulative exposition form of the histogram:
// upper bounds and the cumulative count at each. The first bound is the
// histogram's start (covering the underflow bucket), then one bound per
// geometric bucket except the final overflow bucket, which the implicit
// +Inf bucket covers.
func (h *Histogram) expoSeries() (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, 0, len(h.counts))
	cumulative = make([]uint64, 0, len(h.counts))
	cum := h.under
	bounds = append(bounds, h.start)
	cumulative = append(cumulative, cum)
	for i := 0; i < len(h.counts)-1; i++ {
		cum += h.counts[i]
		bounds = append(bounds, h.BucketBound(i+1))
		cumulative = append(cumulative, cum)
	}
	return bounds, cumulative
}

// ExpositionInto contributes the histogram as one labeled sample set of
// the named family. Not safe against concurrent Observe — Histogram
// itself is not; use AtomicHistogram on shared paths.
func (h *Histogram) ExpositionInto(e *Exposition, name, help string, labels ...Label) {
	bounds, cumulative := h.expoSeries()
	e.AddHistogram(name, help, bounds, cumulative, h.sum, h.total, labels...)
}

// ExpositionInto contributes the atomic histogram as one labeled sample
// set of the named family. Safe for concurrent use.
func (h *AtomicHistogram) ExpositionInto(e *Exposition, name, help string, labels ...Label) {
	h.materialize().ExpositionInto(e, name, help, labels...)
}

// SanitizeMetricName maps an internal metric name onto the exposition
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*: dots and other invalid runes
// become underscores, and a leading digit gains an underscore prefix.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil {
			b = append(make([]byte, 0, len(name)+1), name[:i]...)
		}
		b = append(b, '_')
		if c >= '0' && c <= '9' { // leading digit: keep it after the underscore
			b = append(b, c)
		}
	}
	if b == nil {
		return name
	}
	return string(b)
}

// renderLabels renders a label set (plus one optional extra pair, used
// for histogram le labels) as {k="v",…}, escaping values. Label names are
// sanitized with the metric-name rules minus the colon.
func renderLabels(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	write := func(name, value string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strings.ReplaceAll(SanitizeMetricName(name), ":", "_"))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(value))
		b.WriteByte('"')
	}
	for _, l := range labels {
		write(l.Name, l.Value)
	}
	if extraName != "" {
		write(extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: shortest round-trip float form,
// with the format's spellings for infinities and NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value: backslash, quote, newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
