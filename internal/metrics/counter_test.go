package metrics

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value() = %d, want %d", got, workers*per)
	}
}

func TestCounterAdd(t *testing.T) {
	var c Counter
	c.Add(41)
	c.Inc()
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
}

func TestGaugeSetAndValue(t *testing.T) {
	var g Gauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero gauge = %v, want 0", got)
	}
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("Value() = %v, want 3.25", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("Value() = %v, want -1", got)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	var r Registry
	a := r.Counter("requests")
	b := r.Counter("requests")
	if a != b {
		t.Fatal("Counter returned different instances for the same name")
	}
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Fatalf("shared counter value = %d, want 1", got)
	}
	g1 := r.Gauge("load")
	g2 := r.Gauge("load")
	if g1 != g2 {
		t.Fatal("Gauge returned different instances for the same name")
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	var r Registry
	r.Counter("served").Add(5)
	r.Gauge("score").Set(7.5)
	snap := r.Snapshot()
	if snap["served"] != 5 || snap["score"] != 7.5 {
		t.Fatalf("Snapshot() = %v", snap)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "score" || names[1] != "served" {
		t.Fatalf("Names() = %v, want [score served]", names)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("hits").Inc()
				r.Gauge("last").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 1600 {
		t.Fatalf("hits = %d, want 1600", got)
	}
}
