package features

import (
	"container/list"
	cryptorand "crypto/rand"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Behavioral attribute names produced by Tracker.Attributes. They carry a
// "live_" prefix so they never collide with static feed attributes when
// merged.
const (
	AttrRequestRate   = "live_req_per_sec"
	AttrFailRatio     = "live_fail_ratio"
	AttrDistinctPaths = "live_distinct_paths"
	AttrPathEntropy   = "live_path_entropy"
	AttrInterArrival  = "live_inter_arrival_ms"
	AttrTotalRequests = "live_total_requests"

	// AttrSolveCredit is the IP's verified-solve evidence: the sum of the
	// difficulties of challenges it solved and redeemed through Verify,
	// decayed exponentially with the tracker's evidence half-life. It is
	// what lets a misscored legitimate client *earn* a better effective
	// score (reputation.Decay reads it) instead of sitting in the
	// false-positive tail for the whole tracker window.
	AttrSolveCredit = "live_solve_credit"

	// AttrFailStreak counts consecutive failed verifications (bad nonce,
	// tampered challenge, replay) since the IP's last successful solve —
	// direct protocol-abuse evidence that cancels redemption.
	AttrFailStreak = "live_fail_streak"

	// AttrFailRatioTotal is the failed fraction of *all* requests observed
	// for the IP (entry lifetime), where AttrFailRatio covers only the
	// sliding window. Redemption gates on the lifetime ratio: a
	// slow-and-low prober fits whole clean spells inside a short window,
	// but its lifetime ratio converges on its true failure rate within a
	// handful of requests and stays there.
	AttrFailRatioTotal = "live_fail_ratio_total"
)

// behaviorAttrCount is the number of behavioral attributes the tracker
// produces; behaviorAttrNames fixes their order for the vector fast path.
const behaviorAttrCount = 9

var behaviorAttrNames = [behaviorAttrCount]string{
	AttrRequestRate,
	AttrFailRatio,
	AttrDistinctPaths,
	AttrPathEntropy,
	AttrInterArrival,
	AttrTotalRequests,
	AttrSolveCredit,
	AttrFailStreak,
	AttrFailRatioTotal,
}

// DefaultEvidenceHalfLife is the solve-credit decay half-life when
// WithEvidenceHalfLife is not given: long enough that a client solving a
// puzzle a minute sustains its credit, short enough that redemption earned
// during one visit does not outlive the behavioral window by an order of
// magnitude.
const DefaultEvidenceHalfLife = 5 * time.Minute

// RequestInfo is the normalized description of one incoming request, the
// unit the tracker observes.
type RequestInfo struct {
	// IP identifies the client (the tracker's key).
	IP string

	// Path is the requested resource path.
	Path string

	// At is the arrival time.
	At time.Time

	// Failed marks requests the server answered with a client-error status
	// (failed auth, malformed input) — a strong abuse signal.
	Failed bool
}

// Tracker maintains bounded per-IP behavioral state and summarizes it as
// attributes for the scorer. Memory is bounded two ways: at most capacity
// IPs (LRU-evicted) and at most maxPaths distinct paths tracked per IP.
//
// State is lock-striped across a power-of-two number of shards, each with
// its own mutex, entries map, and LRU list; an IP's shard is chosen by
// FNV-1a hash, so concurrent Observe/Attributes calls for different
// clients do not serialize on one lock. The capacity bound is exact:
// capacity is distributed across the shards (per-shard quotas differ by at
// most one entry) and each shard LRU-evicts beyond its own quota, so the
// total never exceeds capacity — though eviction order is per-shard LRU,
// not global.
//
// Tracker is safe for concurrent use.
type Tracker struct {
	shards    []trackerShard
	shardMask uint32
	// shardSeed keys the shard hash per tracker, so an attacker cannot
	// precompute IPs that collide into a victim's shard and flush its
	// behavioral history with only quota-many addresses.
	shardSeed uint32

	capacity  int
	span      time.Duration
	buckets   int
	maxPaths  int
	shardsOpt int
	halfLife  time.Duration // solve-credit decay half-life
	staleness time.Duration // summary cache tolerance (0 = always fresh)

	// wb is the per-shard write-back buffer plane (one buffer per lock
	// stripe, same index as shards), used by the *Buffered record paths.
	wb []wbShard

	// layouts caches the behavioral attrs' slots per schema seen on the
	// vector fast path (keyed by schema pointer identity). The slice is
	// immutable once published — lookups are one atomic load plus a scan
	// of at most maxTrackerLayouts entries — and layoutMu serializes the
	// copy-on-write slow path that appends a newly resolved schema. This
	// is what lets multiple pipelines (each with its own scorer schema)
	// share one tracker without rebuilding layouts on the request path.
	layouts  atomic.Pointer[[]*trackerLayout]
	layoutMu sync.Mutex
}

// maxTrackerLayouts bounds how many schemas' layouts one tracker retains
// (oldest evicted first), so a tracker outliving many retrained scorers
// (each publishing a fresh schema pointer) cannot accrete dead layouts.
// It is sized well above any realistic count of concurrently-live
// schemas on one tracker: a deployment would need more than this many
// pipelines with *distinct* scorer schemas before the FIFO starts
// evicting a live schema (which degrades to a per-request mutex+rebuild
// on the overflowing schemas, not an error).
const maxTrackerLayouts = 16

// trackerShard is one lock stripe, padded so neighboring shards' mutexes
// do not share a cache line under contention.
type trackerShard struct {
	mu      sync.Mutex
	entries map[string]*ipEntry
	lru     *list.List // front = most recently used
	cap     int        // this shard's share of the tracker capacity
	_       [32]byte
}

// trackerLayout maps the tracker's behavioral attributes onto one schema's
// slots: idx[i] is the slot of behaviorAttrNames[i] (-1 when absent), and
// mask is the coverage the tracker contributes.
type trackerLayout struct {
	schema *Schema
	idx    [behaviorAttrCount]int
	mask   uint64
}

// ipEntry is the tracked state for one client IP.
type ipEntry struct {
	ip           string
	lruElem      *list.Element
	requests     *Window
	failures     *Window
	paths        map[string]uint64 // per-path hit counts, capped at maxPaths keys
	overflowHits uint64            // hits on paths beyond the cap, pooled
	lastSeen     time.Time
	interArrival float64 // EWMA, milliseconds
	total        uint64
	totalFailed  uint64

	// Verification evidence (RecordVerify): half-life-decayed sum of
	// solved difficulties, the decay reference time, and the consecutive
	// failed-verification streak.
	solveCredit float64
	creditAt    time.Time
	failStreak  uint64

	// Summary cache (WithSummaryStaleness): the last computed behavior
	// summary, the time it was computed, and the evidence generation it
	// reflects. A summarize call may serve the cached value while it is
	// younger than the tracker's staleness bound and no verification
	// evidence has landed since (evGen unchanged) — observations alone do
	// not invalidate, that is exactly the tolerated staleness. evGen is
	// bumped by every applied verification outcome so redemption-relevant
	// changes are visible immediately.
	evGen    uint64
	sumGen   uint64
	sumAt    time.Time
	sumValid bool
	sum      behaviorSummary
}

// TrackerOption customizes a Tracker.
type TrackerOption func(*Tracker)

// WithCapacity bounds the number of tracked IPs (default 65536).
func WithCapacity(n int) TrackerOption {
	return func(t *Tracker) { t.capacity = n }
}

// WithWindow sets the sliding-window span and bucket count used for rates
// (default 60 s across 12 buckets).
func WithWindow(span time.Duration, buckets int) TrackerOption {
	return func(t *Tracker) { t.span, t.buckets = span, buckets }
}

// WithMaxPaths bounds the distinct paths remembered per IP (default 64).
func WithMaxPaths(n int) TrackerOption {
	return func(t *Tracker) { t.maxPaths = n }
}

// WithEvidenceHalfLife sets the decay half-life of the verified-solve
// credit (AttrSolveCredit, default DefaultEvidenceHalfLife): after one
// half-life without fresh solves an IP's accumulated credit is halved.
func WithEvidenceHalfLife(d time.Duration) TrackerOption {
	return func(t *Tracker) { t.halfLife = d }
}

// WithSummaryStaleness lets summarize serve a cached behavior summary up
// to d old, provided no verification evidence landed since it was computed
// (evidence invalidates immediately; plain observations do not). The
// half-life and window math tolerate sub-millisecond staleness — the decay
// factor across 1 ms of a 5 m half-life is 1-2.3e-6 — so a steady-state
// scoring path can skip the window sums, path-entropy, and Exp2 work on
// cache hits. Zero (the default) disables the cache: every summary is
// computed fresh at the caller's clock.
func WithSummaryStaleness(d time.Duration) TrackerOption {
	return func(t *Tracker) { t.staleness = d }
}

// WithShards sets the lock-stripe count, rounded up to a power of two and
// clamped to both 1<<14 and the tracker capacity (so over-sharding can
// never loosen the memory bound). Zero (the default) auto-sizes from
// GOMAXPROCS, keeping at least 8 entries of capacity per shard so small
// trackers stay single-shard with exact global LRU semantics.
func WithShards(n int) TrackerOption {
	return func(t *Tracker) { t.shardsOpt = n }
}

// NewTracker returns a Tracker with the given options applied.
func NewTracker(opts ...TrackerOption) (*Tracker, error) {
	t := &Tracker{
		capacity: 65536,
		span:     time.Minute,
		buckets:  12,
		maxPaths: 64,
		halfLife: DefaultEvidenceHalfLife,
	}
	for _, opt := range opts {
		opt(t)
	}
	if t.capacity < 1 {
		return nil, fmt.Errorf("features: tracker capacity must be positive, got %d", t.capacity)
	}
	if t.span <= 0 || t.buckets < 1 {
		return nil, fmt.Errorf("features: invalid window %v/%d", t.span, t.buckets)
	}
	if t.halfLife <= 0 {
		return nil, fmt.Errorf("features: evidence half-life must be positive, got %v", t.halfLife)
	}
	if t.maxPaths < 1 {
		return nil, fmt.Errorf("features: max paths must be positive, got %d", t.maxPaths)
	}
	if t.shardsOpt < 0 {
		return nil, fmt.Errorf("features: shard count must be non-negative, got %d", t.shardsOpt)
	}
	if t.staleness < 0 {
		return nil, fmt.Errorf("features: summary staleness must be non-negative, got %v", t.staleness)
	}
	shards := t.shardsOpt
	if shards == 0 {
		shards = defaultShardCount(t.capacity)
	}
	// Clamp before rounding: ceilPow2 would overflow on absurd requests.
	if shards > 1<<14 {
		shards = 1 << 14
	}
	shards = ceilPow2(shards)
	// More shards than capacity would hand every shard a quota of one and
	// inflate the bound to `shards` entries; clamp down instead.
	for shards > t.capacity {
		shards >>= 1
	}
	t.shardMask = uint32(shards - 1)
	var seed [4]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("features: seed shard hash: %w", err)
	}
	t.shardSeed = uint32(seed[0]) | uint32(seed[1])<<8 | uint32(seed[2])<<16 | uint32(seed[3])<<24
	t.shards = make([]trackerShard, shards)
	// Distribute capacity exactly: the first capacity%shards shards hold
	// one extra entry, so quotas sum to capacity for any configuration.
	base, extra := t.capacity/shards, t.capacity%shards
	for i := range t.shards {
		t.shards[i].entries = make(map[string]*ipEntry)
		t.shards[i].lru = list.New()
		t.shards[i].cap = base
		if i < extra {
			t.shards[i].cap++
		}
	}
	t.wb = make([]wbShard, shards)
	return t, nil
}

// defaultShardCount picks a stripe count for auto mode: enough stripes to
// spread GOMAXPROCS-way contention, but never so many that a shard holds
// fewer than 8 entries.
func defaultShardCount(capacity int) int {
	n := ceilPow2(runtime.GOMAXPROCS(0) * 4)
	if n > 256 {
		n = 256
	}
	for n > 1 && capacity/n < 8 {
		n >>= 1
	}
	return n
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIdx picks the lock-stripe index for ip by FNV-1a hash, keyed with
// the per-tracker seed. The write-back buffer plane shares the index, so a
// buffered event's flush touches exactly the shard that owns its entry.
func (t *Tracker) shardIdx(ip string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32) ^ t.shardSeed
	for i := 0; i < len(ip); i++ {
		h ^= uint32(ip[i])
		h *= prime32
	}
	return h & t.shardMask
}

// shard picks the lock stripe for ip.
func (t *Tracker) shard(ip string) *trackerShard {
	return &t.shards[t.shardIdx(ip)]
}

// Shards reports the lock-stripe count in use.
func (t *Tracker) Shards() int { return len(t.shards) }

// Capacity reports the tracked-IP bound.
func (t *Tracker) Capacity() int { return t.capacity }

// EvidenceHalfLife reports the solve-credit decay half-life.
func (t *Tracker) EvidenceHalfLife() time.Duration { return t.halfLife }

// SummaryStaleness reports the summary-cache staleness bound (zero:
// caching disabled).
func (t *Tracker) SummaryStaleness() time.Duration { return t.staleness }

// Observe folds one request into the tracker.
func (t *Tracker) Observe(req RequestInfo) error {
	if req.IP == "" {
		return fmt.Errorf("features: request without IP")
	}
	sh := t.shard(req.IP)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	e, err := t.entryLocked(sh, req.IP)
	if err != nil {
		return err
	}
	t.observeLocked(e, req.Path, req.At, req.Failed)
	return nil
}

// observeLocked folds one request into an entry. Callers hold the entry's
// shard lock.
func (t *Tracker) observeLocked(e *ipEntry, path string, at time.Time, failed bool) {
	if !e.lastSeen.IsZero() {
		gapMS := float64(at.Sub(e.lastSeen)) / float64(time.Millisecond)
		if gapMS < 0 {
			gapMS = 0
		}
		const alpha = 0.3 // EWMA smoothing: favors recent behavior
		if e.total <= 1 {
			e.interArrival = gapMS
		} else {
			e.interArrival = alpha*gapMS + (1-alpha)*e.interArrival
		}
	}
	e.lastSeen = at
	e.total++
	e.requests.Add(at, 1)
	if failed {
		e.failures.Add(at, 1)
		e.totalFailed++
	}
	if _, known := e.paths[path]; known || len(e.paths) < t.maxPaths {
		e.paths[path]++
	} else {
		e.overflowHits++
	}
}

// entryLocked returns the shard's entry for ip, creating (and, beyond the
// shard quota, LRU-evicting) as needed, and refreshes its LRU position.
// Callers hold sh.mu.
func (t *Tracker) entryLocked(sh *trackerShard, ip string) (*ipEntry, error) {
	if e, ok := sh.entries[ip]; ok {
		sh.lru.MoveToFront(e.lruElem)
		return e, nil
	}
	reqW, err := NewWindow(t.span, t.buckets)
	if err != nil {
		return nil, err
	}
	failW, err := NewWindow(t.span, t.buckets)
	if err != nil {
		return nil, err
	}
	e := &ipEntry{
		ip:       ip,
		requests: reqW,
		failures: failW,
		paths:    make(map[string]uint64, 8),
	}
	e.lruElem = sh.lru.PushFront(e)
	sh.entries[ip] = e
	for len(sh.entries) > sh.cap {
		sh.evictLocked()
	}
	return e, nil
}

// RecordVerify folds one verification outcome into the IP's evidence
// state: a successful solve at the given difficulty adds that difficulty
// to the half-life-decayed solve credit and clears the failure streak; a
// failed verification extends the streak. The core framework calls this
// from Verify, so evidence accrues wherever solutions are actually
// redeemed; the simulation engine records modeled verifications through
// the same path. Allocation-free for already-tracked IPs.
func (t *Tracker) RecordVerify(ip string, difficulty int, ok bool, at time.Time) {
	if ip == "" {
		return
	}
	sh := t.shard(ip)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, err := t.entryLocked(sh, ip)
	if err != nil {
		return // unreachable: window config was validated at construction
	}
	t.recordVerifyLocked(e, difficulty, ok, at)
}

// recordVerifyLocked folds one verification outcome into an entry and bumps
// its evidence generation (invalidating any cached summary — redemption
// changes are visible immediately). Callers hold the entry's shard lock.
func (t *Tracker) recordVerifyLocked(e *ipEntry, difficulty int, ok bool, at time.Time) {
	e.solveCredit = decayCredit(e.solveCredit, e.creditAt, at, t.halfLife)
	e.creditAt = at
	if ok {
		e.solveCredit += float64(difficulty)
		e.failStreak = 0
	} else {
		e.failStreak++
	}
	e.evGen++
}

// decayCredit applies the exponential half-life decay from the credit's
// reference time to now. Non-monotonic clocks decay nothing rather than
// inflating credit.
func decayCredit(credit float64, from, now time.Time, halfLife time.Duration) float64 {
	if credit == 0 || from.IsZero() {
		return credit
	}
	dt := now.Sub(from)
	if dt <= 0 {
		return credit
	}
	return credit * math.Exp2(-float64(dt)/float64(halfLife))
}

// behaviorSummary is the tracker's attribute values for one IP, in
// behaviorAttrNames order.
type behaviorSummary [behaviorAttrCount]float64

// summarize computes an IP's behavioral attributes under its shard lock.
// Unknown IPs report ok=false (all-zero behavior).
func (t *Tracker) summarize(ip string, now time.Time) (behaviorSummary, bool) {
	var s behaviorSummary
	sh := t.shard(ip)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[ip]
	if !ok {
		return s, false
	}
	return t.summarizeLocked(e, now), true
}

// summarizeLocked computes (or, within the staleness bound, serves the
// cached) behavior summary for an entry. Callers hold the entry's shard
// lock. A cache hit requires an unchanged evidence generation and an age in
// [0, staleness]; negative ages (a clock stepping backwards) recompute, the
// conservative choice.
func (t *Tracker) summarizeLocked(e *ipEntry, now time.Time) behaviorSummary {
	if t.staleness > 0 && e.sumValid && e.sumGen == e.evGen {
		if age := now.Sub(e.sumAt); age >= 0 && age <= t.staleness {
			return e.sum
		}
	}
	var s behaviorSummary
	reqs := e.requests.Sum(now)
	s[0] = e.requests.Rate(now)
	if reqs > 0 {
		s[1] = e.failures.Sum(now) / reqs
	}
	s[2] = float64(len(e.paths))
	s[3] = e.pathEntropy()
	s[4] = e.interArrival
	s[5] = float64(e.total)
	s[6] = decayCredit(e.solveCredit, e.creditAt, now, t.halfLife)
	s[7] = float64(e.failStreak)
	if e.total > 0 {
		s[8] = float64(e.totalFailed) / float64(e.total)
	}
	if t.staleness > 0 {
		e.sum, e.sumAt, e.sumGen, e.sumValid = s, now, e.evGen, true
	}
	return s
}

// Attributes summarizes the IP's tracked behavior at time now. Unknown IPs
// return all-zero attributes: no observed behavior, no suspicion from this
// source.
func (t *Tracker) Attributes(ip string, now time.Time) map[string]float64 {
	s, _ := t.summarize(ip, now)
	attrs := make(map[string]float64, behaviorAttrCount)
	for i, name := range behaviorAttrNames {
		attrs[name] = s[i]
	}
	return attrs
}

// AttributesVector implements VectorSource: the behavioral values are
// written at their schema slots (zeros for unknown IPs, matching
// Attributes) without allocating.
func (t *Tracker) AttributesVector(dst []float64, schema *Schema, ip string, now time.Time) uint64 {
	l := t.layoutFor(schema)
	if l.mask == 0 {
		return 0
	}
	s, _ := t.summarize(ip, now)
	for i, j := range l.idx {
		if j >= 0 {
			dst[j] = s[i]
		}
	}
	return l.mask
}

var _ VectorSource = (*Tracker)(nil)

// layoutFor resolves (and caches) the behavioral attributes' slots in
// schema. The fast path is one atomic load and a pointer scan; a schema
// seen for the first time takes the mutex, re-checks, and publishes a new
// bounded slice copy-on-write, so trackers shared by several pipelines
// (one schema each) never rebuild layouts on the request path.
func (t *Tracker) layoutFor(schema *Schema) *trackerLayout {
	if ls := t.layouts.Load(); ls != nil {
		for _, l := range *ls {
			if l.schema == schema {
				return l
			}
		}
	}
	t.layoutMu.Lock()
	defer t.layoutMu.Unlock()
	cur := t.layouts.Load()
	var prev []*trackerLayout
	if cur != nil {
		prev = *cur
		for _, l := range prev {
			if l.schema == schema { // lost the race to another resolver
				return l
			}
		}
	}
	l := &trackerLayout{schema: schema}
	for i, name := range behaviorAttrNames {
		j, ok := schema.Index(name)
		if !ok {
			l.idx[i] = -1
			continue
		}
		l.idx[i] = j
		l.mask |= 1 << uint(j)
	}
	for len(prev) >= maxTrackerLayouts {
		prev = prev[1:] // FIFO: evict the oldest-resolved schema
	}
	next := make([]*trackerLayout, 0, len(prev)+1)
	next = append(next, prev...)
	next = append(next, l)
	t.layouts.Store(&next)
	return l
}

// pathEntropy is the Shannon entropy (bits) of the per-path hit
// distribution: near 0 for single-endpoint hammering, high for crawlers
// spraying across many paths. Overflow hits pool into one pseudo-path, so
// the cap cannot be abused to zero the signal.
func (e *ipEntry) pathEntropy() float64 {
	total := e.overflowHits
	for _, n := range e.paths {
		total += n
	}
	if total == 0 {
		return 0
	}
	var h float64
	acc := func(n uint64) {
		if n == 0 {
			return
		}
		p := float64(n) / float64(total)
		h -= p * math.Log2(p)
	}
	for _, n := range e.paths {
		acc(n)
	}
	acc(e.overflowHits)
	return h
}

// Tracked reports how many IPs currently have state, summed across shards.
func (t *Tracker) Tracked() int {
	total := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		total += len(sh.entries)
		sh.mu.Unlock()
	}
	return total
}

// evictLocked drops the shard's least-recently-used IP.
func (sh *trackerShard) evictLocked() {
	back := sh.lru.Back()
	if back == nil {
		return
	}
	e := back.Value.(*ipEntry)
	sh.lru.Remove(back)
	delete(sh.entries, e.ip)
}
