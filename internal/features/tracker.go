package features

import (
	cryptorand "crypto/rand"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Behavioral attribute names produced by Tracker.Attributes. They carry a
// "live_" prefix so they never collide with static feed attributes when
// merged.
const (
	AttrRequestRate   = "live_req_per_sec"
	AttrFailRatio     = "live_fail_ratio"
	AttrDistinctPaths = "live_distinct_paths"
	AttrPathEntropy   = "live_path_entropy"
	AttrInterArrival  = "live_inter_arrival_ms"
	AttrTotalRequests = "live_total_requests"

	// AttrSolveCredit is the IP's verified-solve evidence: the sum of the
	// difficulties of challenges it solved and redeemed through Verify,
	// decayed exponentially with the tracker's evidence half-life. It is
	// what lets a misscored legitimate client *earn* a better effective
	// score (reputation.Decay reads it) instead of sitting in the
	// false-positive tail for the whole tracker window.
	AttrSolveCredit = "live_solve_credit"

	// AttrFailStreak counts consecutive failed verifications (bad nonce,
	// tampered challenge, replay) since the IP's last successful solve —
	// direct protocol-abuse evidence that cancels redemption.
	AttrFailStreak = "live_fail_streak"

	// AttrFailRatioTotal is the failed fraction of *all* requests observed
	// for the IP (entry lifetime), where AttrFailRatio covers only the
	// sliding window. Redemption gates on the lifetime ratio: a
	// slow-and-low prober fits whole clean spells inside a short window,
	// but its lifetime ratio converges on its true failure rate within a
	// handful of requests and stays there.
	AttrFailRatioTotal = "live_fail_ratio_total"
)

// behaviorAttrCount is the number of behavioral attributes the tracker
// produces; behaviorAttrNames fixes their order for the vector fast path.
const behaviorAttrCount = 9

var behaviorAttrNames = [behaviorAttrCount]string{
	AttrRequestRate,
	AttrFailRatio,
	AttrDistinctPaths,
	AttrPathEntropy,
	AttrInterArrival,
	AttrTotalRequests,
	AttrSolveCredit,
	AttrFailStreak,
	AttrFailRatioTotal,
}

// DefaultEvidenceHalfLife is the solve-credit decay half-life when
// WithEvidenceHalfLife is not given: long enough that a client solving a
// puzzle a minute sustains its credit, short enough that redemption earned
// during one visit does not outlive the behavioral window by an order of
// magnitude.
const DefaultEvidenceHalfLife = 5 * time.Minute

// RequestInfo is the normalized description of one incoming request, the
// unit the tracker observes.
type RequestInfo struct {
	// IP identifies the client (the tracker's key).
	IP string

	// Path is the requested resource path.
	Path string

	// At is the arrival time.
	At time.Time

	// Failed marks requests the server answered with a client-error status
	// (failed auth, malformed input) — a strong abuse signal.
	Failed bool
}

// Slab-layout capacity constants. Per-IP state lives in fixed-size records
// inside per-shard backing arrays (no per-entry heap objects beyond the IP
// string itself), which fixes both sizes at compile time.
const (
	// maxSlotBuckets is the inline ring capacity of the two sliding
	// windows in a slot, and therefore the largest bucket count a Tracker
	// accepts (WithWindow). It equals the default bucket count.
	maxSlotBuckets = 12

	// inlinePaths is the open-addressed per-path table inlined in a slot.
	// An IP's first inlinePaths distinct paths are tracked inline; further
	// distinct paths (up to maxPaths) spill to a small per-entry slice —
	// rare in practice, since most clients touch a handful of endpoints.
	inlinePaths = 4

	// noSlot is the nil slab index (freelist end, empty LRU list).
	noSlot = ^uint32(0)
)

// Tracker maintains bounded per-IP behavioral state and summarizes it as
// attributes for the scorer. Memory is bounded two ways: at most capacity
// IPs (LRU-evicted) and at most maxPaths distinct paths tracked per IP.
//
// State is lock-striped across a power-of-two number of shards, each with
// its own mutex, index map, and slab arena; an IP's shard is chosen by
// FNV-1a hash, so concurrent Observe/Attributes calls for different
// clients do not serialize on one lock. The capacity bound is exact:
// capacity is distributed across the shards (per-shard quotas differ by at
// most one entry) and each shard LRU-evicts beyond its own quota, so the
// total never exceeds capacity — though eviction order is per-shard LRU,
// not global.
//
// Entries are fixed-size records (entrySlot) in a per-shard []entrySlot
// slab addressed by uint32 index: the two ring windows are inline arrays,
// the LRU is intrusive prev/next indices, and evicted slots recycle
// through a freelist. The only per-entry heap allocation is the IP string
// (shared with the index map key), which is what keeps a million tracked
// clients at ~1 GC-visible object each instead of ~11.
//
// Tracker is safe for concurrent use.
type Tracker struct {
	shards    []trackerShard
	shardMask uint32
	// shardSeed keys the shard hash per tracker, so an attacker cannot
	// precompute IPs that collide into a victim's shard and flush its
	// behavioral history with only quota-many addresses.
	shardSeed uint32

	capacity  int
	span      time.Duration
	buckets   int
	bucketNS  int64 // span/buckets in nanoseconds (window epoch unit)
	maxPaths  int
	shardsOpt int
	halfLife  time.Duration // solve-credit decay half-life
	staleness time.Duration // summary cache tolerance (0 = always fresh)

	// deltaSeq is the tracker-global change sequence behind delta evidence
	// export: every exported-field mutation (request counters, solve
	// credit) takes the next value under its shard lock and stamps it on
	// the entry, so ExportEvidenceSince can hand consumers a watermark
	// that is safe against concurrent writers (a change numbered at or
	// below a loaded watermark is already visible to a scan that takes the
	// shard locks afterward).
	deltaSeq atomic.Uint64

	// wb is the per-shard write-back buffer plane (one buffer per lock
	// stripe, same index as shards), used by the *Buffered record paths.
	wb []wbShard

	// layouts caches the behavioral attrs' slots per schema seen on the
	// vector fast path (keyed by schema pointer identity). The slice is
	// immutable once published — lookups are one atomic load plus a scan
	// of at most maxTrackerLayouts entries — and layoutMu serializes the
	// copy-on-write slow path that appends a newly resolved schema. This
	// is what lets multiple pipelines (each with its own scorer schema)
	// share one tracker without rebuilding layouts on the request path.
	layouts  atomic.Pointer[[]*trackerLayout]
	layoutMu sync.Mutex
}

// maxTrackerLayouts bounds how many schemas' layouts one tracker retains
// (oldest evicted first), so a tracker outliving many retrained scorers
// (each publishing a fresh schema pointer) cannot accrete dead layouts.
// It is sized well above any realistic count of concurrently-live
// schemas on one tracker: a deployment would need more than this many
// pipelines with *distinct* scorer schemas before the FIFO starts
// evicting a live schema (which degrades to a per-request mutex+rebuild
// on the overflowing schemas, not an error).
const maxTrackerLayouts = 16

// trackerShard is one lock stripe, padded so neighboring shards' mutexes
// do not share a cache line under contention.
type trackerShard struct {
	mu               sync.Mutex
	index            map[string]uint32 // IP → slab index
	slots            []entrySlot       // slab arena, grows by doubling up to cap
	free             uint32            // freelist head (chained via lruNext), noSlot = empty
	lruHead, lruTail uint32            // intrusive LRU: head = most recently used
	cap              int               // this shard's share of the tracker capacity
	evictions        uint64            // lifetime LRU evictions (occupancy gauge)

	// dirty is the shard's delta-export log: the slab indices whose
	// exported evidence fields changed, deduplicated via entrySlot.dirtyPos
	// (each live slot appears at most once; evicted slots leave a noSlot
	// tombstone). When the log would exceed dirtyLimit it is cleared and
	// dirtyLost records the last sequence whose dirt was forgotten —
	// consumers whose watermark predates it must take a full export.
	dirty      []uint32
	dirtyLimit int
	dirtyLost  uint64
	_          [32]byte
}

// trackerLayout maps the tracker's behavioral attributes onto one schema's
// slots: idx[i] is the slot of behaviorAttrNames[i] (-1 when absent), and
// mask is the coverage the tracker contributes.
type trackerLayout struct {
	schema *Schema
	idx    [behaviorAttrCount]int
	mask   uint64
}

// pathSpillEnt is one spilled per-path counter (beyond the inline table).
type pathSpillEnt struct {
	hash uint64
	hits uint64
}

// entrySlot is the tracked state for one client IP, laid out as one
// fixed-size slab record. Window counts are float32 — the tracker only
// ever adds 1 per request, and float32 holds integers exactly below 2^24,
// far beyond any per-bucket request count — and every timestamp is an
// int64 unix-nanosecond (0 = unset), so the record holds no pointers
// except the IP string and the rare path-spill slice.
type entrySlot struct {
	ip string

	// Intrusive LRU links (slab indices). lruNext doubles as the freelist
	// chain while the slot is free.
	lruPrev, lruNext uint32

	// Sliding windows, inlined: requests and failures share the epoch
	// scheme of Window but live in fixed arrays sized maxSlotBuckets (the
	// tracker's bucket count uses a prefix of them).
	reqCounts  [maxSlotBuckets]float32
	failCounts [maxSlotBuckets]float32
	reqStamps  [maxSlotBuckets]int64
	failStamps [maxSlotBuckets]int64

	// Per-path hit counts keyed by 64-bit FNV-1a path hash: the first
	// inlinePaths distinct paths inline (hits==0 marks a vacant cell; a
	// tracked path always has at least one hit), later distinct paths in
	// the insertion-ordered spill slice. Hashing merges colliding paths
	// into one counter — at ≤ maxPaths (default 64) distinct paths per IP
	// the 64-bit collision odds are ~1e-16, far below any behavioral
	// signal. overflowHits pools hits beyond the maxPaths cap.
	pathHash     [inlinePaths]uint64
	pathHits     [inlinePaths]uint64
	pathSpill    []pathSpillEnt
	pathCount    int32 // distinct paths tracked (inline + spill)
	seen         bool  // at least one Observe folded in (gates the EWMA gap)
	sumValid     bool
	overflowHits uint64

	lastSeenNS   int64
	interArrival float64 // EWMA, milliseconds
	total        uint64
	totalFailed  uint64

	// Verification evidence (RecordVerify): half-life-decayed sum of
	// solved difficulties, the decay reference time, and the consecutive
	// failed-verification streak.
	solveCredit float64
	creditAtNS  int64
	failStreak  uint64

	// evGen is the entry's evidence generation: the tracker-global delta
	// sequence stamped by every applied verification outcome (and every
	// evidence merge that changed state). It is monotone per entry, so the
	// summary cache uses it unchanged for invalidation; observations alone
	// do not bump it — that is exactly the tolerated staleness.
	evGen uint64

	// expSeq is the delta sequence of the last change to any exported
	// evidence field (total, totalFailed, solveCredit, creditAt) — unlike
	// evGen it advances on observations too, since lifetime counters are
	// gossiped. dirtyPos is this slot's position+1 in the shard dirty log
	// (0 = not logged).
	expSeq   uint64
	dirtyPos int32

	// Summary cache (WithSummaryStaleness): the last computed behavior
	// summary, the time it was computed, and the evidence generation it
	// reflects. A summarize call may serve the cached value while it is
	// younger than the tracker's staleness bound and no verification
	// evidence has landed since (evGen unchanged).
	sumGen  uint64
	sumAtNS int64
	sum     behaviorSummary
}

// timeNS converts a timestamp to the slab representation: unix
// nanoseconds, with the zero time mapping to 0 (unset).
func timeNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// nsTime is the inverse of timeNS.
func nsTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// TrackerOption customizes a Tracker.
type TrackerOption func(*Tracker)

// WithCapacity bounds the number of tracked IPs (default 65536).
func WithCapacity(n int) TrackerOption {
	return func(t *Tracker) { t.capacity = n }
}

// WithWindow sets the sliding-window span and bucket count used for rates
// (default 60 s across 12 buckets; at most maxSlotBuckets buckets — the
// rings are inlined in the slab record at compile-time size).
func WithWindow(span time.Duration, buckets int) TrackerOption {
	return func(t *Tracker) { t.span, t.buckets = span, buckets }
}

// WithMaxPaths bounds the distinct paths remembered per IP (default 64).
func WithMaxPaths(n int) TrackerOption {
	return func(t *Tracker) { t.maxPaths = n }
}

// WithEvidenceHalfLife sets the decay half-life of the verified-solve
// credit (AttrSolveCredit, default DefaultEvidenceHalfLife): after one
// half-life without fresh solves an IP's accumulated credit is halved.
func WithEvidenceHalfLife(d time.Duration) TrackerOption {
	return func(t *Tracker) { t.halfLife = d }
}

// WithSummaryStaleness lets summarize serve a cached behavior summary up
// to d old, provided no verification evidence landed since it was computed
// (evidence invalidates immediately; plain observations do not). The
// half-life and window math tolerate sub-millisecond staleness — the decay
// factor across 1 ms of a 5 m half-life is 1-2.3e-6 — so a steady-state
// scoring path can skip the window sums, path-entropy, and Exp2 work on
// cache hits. Zero (the default) disables the cache: every summary is
// computed fresh at the caller's clock.
func WithSummaryStaleness(d time.Duration) TrackerOption {
	return func(t *Tracker) { t.staleness = d }
}

// WithShards sets the lock-stripe count, rounded up to a power of two and
// clamped to both 1<<14 and the tracker capacity (so over-sharding can
// never loosen the memory bound). Zero (the default) auto-sizes from
// GOMAXPROCS, keeping at least 8 entries of capacity per shard so small
// trackers stay single-shard with exact global LRU semantics.
func WithShards(n int) TrackerOption {
	return func(t *Tracker) { t.shardsOpt = n }
}

// NewTracker returns a Tracker with the given options applied.
func NewTracker(opts ...TrackerOption) (*Tracker, error) {
	t := &Tracker{
		capacity: 65536,
		span:     time.Minute,
		buckets:  12,
		maxPaths: 64,
		halfLife: DefaultEvidenceHalfLife,
	}
	for _, opt := range opts {
		opt(t)
	}
	if t.capacity < 1 {
		return nil, fmt.Errorf("features: tracker capacity must be positive, got %d", t.capacity)
	}
	if t.span <= 0 || t.buckets < 1 {
		return nil, fmt.Errorf("features: invalid window %v/%d", t.span, t.buckets)
	}
	if t.buckets > maxSlotBuckets {
		return nil, fmt.Errorf("features: window buckets %d exceeds the inline ring capacity %d", t.buckets, maxSlotBuckets)
	}
	if t.halfLife <= 0 {
		return nil, fmt.Errorf("features: evidence half-life must be positive, got %v", t.halfLife)
	}
	if t.maxPaths < 1 {
		return nil, fmt.Errorf("features: max paths must be positive, got %d", t.maxPaths)
	}
	if t.shardsOpt < 0 {
		return nil, fmt.Errorf("features: shard count must be non-negative, got %d", t.shardsOpt)
	}
	if t.staleness < 0 {
		return nil, fmt.Errorf("features: summary staleness must be non-negative, got %v", t.staleness)
	}
	t.bucketNS = int64(t.span / time.Duration(t.buckets))
	shards := t.shardsOpt
	if shards == 0 {
		shards = defaultShardCount(t.capacity)
	}
	// Clamp before rounding: ceilPow2 would overflow on absurd requests.
	if shards > 1<<14 {
		shards = 1 << 14
	}
	shards = ceilPow2(shards)
	// More shards than capacity would hand every shard a quota of one and
	// inflate the bound to `shards` entries; clamp down instead.
	for shards > t.capacity {
		shards >>= 1
	}
	t.shardMask = uint32(shards - 1)
	var seed [4]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("features: seed shard hash: %w", err)
	}
	t.shardSeed = uint32(seed[0]) | uint32(seed[1])<<8 | uint32(seed[2])<<16 | uint32(seed[3])<<24
	t.shards = make([]trackerShard, shards)
	// Distribute capacity exactly: the first capacity%shards shards hold
	// one extra entry, so quotas sum to capacity for any configuration.
	base, extra := t.capacity/shards, t.capacity%shards
	for i := range t.shards {
		sh := &t.shards[i]
		sh.index = make(map[string]uint32)
		sh.free = noSlot
		sh.lruHead, sh.lruTail = noSlot, noSlot
		sh.cap = base
		if i < extra {
			sh.cap++
		}
		// Bound the dirty log well below the quota: at steady state delta
		// consumers drain dirt every exchange interval, so the log tracks
		// the churn of one interval, not the shard population. Overflow
		// falls back to a full export, never loses data.
		sh.dirtyLimit = sh.cap
		if sh.dirtyLimit > 1024 {
			sh.dirtyLimit = 1024
		}
		if sh.dirtyLimit < 16 {
			sh.dirtyLimit = 16
		}
	}
	t.wb = make([]wbShard, shards)
	return t, nil
}

// defaultShardCount picks a stripe count for auto mode: enough stripes to
// spread GOMAXPROCS-way contention, but never so many that a shard holds
// fewer than 8 entries.
func defaultShardCount(capacity int) int {
	n := ceilPow2(runtime.GOMAXPROCS(0) * 4)
	if n > 256 {
		n = 256
	}
	for n > 1 && capacity/n < 8 {
		n >>= 1
	}
	return n
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIdx picks the lock-stripe index for ip by FNV-1a hash, keyed with
// the per-tracker seed. The write-back buffer plane shares the index, so a
// buffered event's flush touches exactly the shard that owns its entry.
func (t *Tracker) shardIdx(ip string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32) ^ t.shardSeed
	for i := 0; i < len(ip); i++ {
		h ^= uint32(ip[i])
		h *= prime32
	}
	return h & t.shardMask
}

// pathHash64 is the unseeded 64-bit FNV-1a the inline path table keys on.
func pathHash64(path string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= prime64
	}
	return h
}

// shard picks the lock stripe for ip.
func (t *Tracker) shard(ip string) *trackerShard {
	return &t.shards[t.shardIdx(ip)]
}

// Shards reports the lock-stripe count in use.
func (t *Tracker) Shards() int { return len(t.shards) }

// Capacity reports the tracked-IP bound.
func (t *Tracker) Capacity() int { return t.capacity }

// EvidenceHalfLife reports the solve-credit decay half-life.
func (t *Tracker) EvidenceHalfLife() time.Duration { return t.halfLife }

// SummaryStaleness reports the summary-cache staleness bound (zero:
// caching disabled).
func (t *Tracker) SummaryStaleness() time.Duration { return t.staleness }

// Observe folds one request into the tracker.
func (t *Tracker) Observe(req RequestInfo) error {
	if req.IP == "" {
		return fmt.Errorf("features: request without IP")
	}
	sh := t.shard(req.IP)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	idx := t.entryLocked(sh, req.IP)
	t.observeLocked(sh, idx, req.Path, req.At, req.Failed)
	return nil
}

// winAdd records one hit in an inline window ring: n is the live bucket
// count (a prefix of the fixed arrays), bucketNS the epoch unit.
func winAdd(counts *[maxSlotBuckets]float32, stamps *[maxSlotBuckets]int64, n int, bucketNS, atNS int64) {
	e := atNS / bucketNS
	slot := int(((e % int64(n)) + int64(n)) % int64(n))
	if stamps[slot] != e {
		counts[slot] = 0
		stamps[slot] = e
	}
	counts[slot]++
}

// winSum totals the inline ring's buckets inside the window ending at
// nowNS, mirroring Window.Sum.
func winSum(counts *[maxSlotBuckets]float32, stamps *[maxSlotBuckets]int64, n int, bucketNS, nowNS int64) float64 {
	newest := nowNS / bucketNS
	oldest := newest - int64(n) + 1
	var total float64
	for i := 0; i < n; i++ {
		if e := stamps[i]; e >= oldest && e <= newest {
			total += float64(counts[i])
		}
	}
	return total
}

// markDirtyLocked stamps the next tracker-global delta sequence on the
// slot's exported-state generation and records it in the shard's dirty
// log. The sequence is allocated under the shard lock — that ordering is
// what makes ExportEvidenceSince's watermark sound (see deltaSeq). Returns
// the allocated sequence so evidence paths can reuse it for evGen.
func (t *Tracker) markDirtyLocked(sh *trackerShard, idx uint32) uint64 {
	seq := t.deltaSeq.Add(1)
	s := &sh.slots[idx]
	s.expSeq = seq
	if s.dirtyPos == 0 {
		if len(sh.dirty) >= sh.dirtyLimit {
			sh.compactDirtyLocked()
		}
		sh.dirty = append(sh.dirty, idx)
		s.dirtyPos = int32(len(sh.dirty))
	}
	return seq
}

// compactDirtyLocked shrinks a full dirty log: eviction tombstones go
// first, and if that is not enough the stalest half (smallest expSeq) is
// forgotten, advancing dirtyLost to the newest forgotten sequence so only
// consumers further behind than that lose their delta path. Data is never
// lost — such consumers fall back to a full export. Callers hold sh.mu.
func (sh *trackerShard) compactDirtyLocked() {
	live := sh.dirty[:0]
	for _, di := range sh.dirty {
		if di != noSlot {
			live = append(live, di)
		}
	}
	sh.dirty = live
	if len(sh.dirty) >= sh.dirtyLimit {
		sort.Slice(sh.dirty, func(i, j int) bool {
			return sh.slots[sh.dirty[i]].expSeq < sh.slots[sh.dirty[j]].expSeq
		})
		drop := len(sh.dirty) / 2
		for _, di := range sh.dirty[:drop] {
			s := &sh.slots[di]
			if s.expSeq > sh.dirtyLost {
				sh.dirtyLost = s.expSeq
			}
			s.dirtyPos = 0
		}
		copy(sh.dirty, sh.dirty[drop:])
		sh.dirty = sh.dirty[:len(sh.dirty)-drop]
	}
	for pos, di := range sh.dirty {
		sh.slots[di].dirtyPos = int32(pos + 1)
	}
}

// observeLocked folds one request into the slot at idx. Callers hold the
// shard lock.
func (t *Tracker) observeLocked(sh *trackerShard, idx uint32, path string, at time.Time, failed bool) {
	atNS := at.UnixNano()
	t.markDirtyLocked(sh, idx) // total (and maybe totalFailed) change below
	e := &sh.slots[idx]
	if e.seen {
		gapMS := float64(atNS-e.lastSeenNS) / float64(time.Millisecond)
		if gapMS < 0 {
			gapMS = 0
		}
		const alpha = 0.3 // EWMA smoothing: favors recent behavior
		if e.total <= 1 {
			e.interArrival = gapMS
		} else {
			e.interArrival = alpha*gapMS + (1-alpha)*e.interArrival
		}
	}
	e.seen = true
	e.lastSeenNS = atNS
	e.total++
	winAdd(&e.reqCounts, &e.reqStamps, t.buckets, t.bucketNS, atNS)
	if failed {
		winAdd(&e.failCounts, &e.failStamps, t.buckets, t.bucketNS, atNS)
		e.totalFailed++
	}
	t.pathHitLocked(e, path)
}

// pathHitLocked counts one hit on path: known paths increment, new paths
// enter the inline table (or the spill slice) until maxPaths distinct
// paths are tracked, and hits beyond the cap pool into overflowHits.
func (t *Tracker) pathHitLocked(e *entrySlot, path string) {
	h := pathHash64(path)
	for i := 0; i < inlinePaths; i++ {
		if e.pathHits[i] != 0 && e.pathHash[i] == h {
			e.pathHits[i]++
			return
		}
	}
	for i := range e.pathSpill {
		if e.pathSpill[i].hash == h {
			e.pathSpill[i].hits++
			return
		}
	}
	if int(e.pathCount) >= t.maxPaths {
		e.overflowHits++
		return
	}
	e.pathCount++
	for i := 0; i < inlinePaths; i++ {
		if e.pathHits[i] == 0 {
			e.pathHash[i], e.pathHits[i] = h, 1
			return
		}
	}
	e.pathSpill = append(e.pathSpill, pathSpillEnt{hash: h, hits: 1})
}

// entryLocked returns the slab index of the shard's entry for ip, creating
// (and, at the shard quota, LRU-evicting) as needed, and refreshes its LRU
// position. Callers hold sh.mu. Slot pointers are invalidated by slab
// growth, so callers re-derive &sh.slots[idx] after any entryLocked call.
func (t *Tracker) entryLocked(sh *trackerShard, ip string) uint32 {
	if idx, ok := sh.index[ip]; ok {
		sh.moveToFrontLocked(idx)
		return idx
	}
	if len(sh.index) >= sh.cap {
		sh.evictLocked()
	}
	idx := sh.allocSlotLocked()
	s := &sh.slots[idx]
	s.ip = ip
	sh.index[ip] = idx
	sh.pushFrontLocked(idx)
	return idx
}

// allocSlotLocked hands out a free slab slot: freelist first, then arena
// growth (doubling, capped at the shard quota so the slab never
// over-allocates past the memory bound).
func (sh *trackerShard) allocSlotLocked() uint32 {
	if sh.free != noSlot {
		idx := sh.free
		sh.free = sh.slots[idx].lruNext
		sh.slots[idx].lruNext = noSlot
		return idx
	}
	if len(sh.slots) == cap(sh.slots) {
		newCap := cap(sh.slots) * 2
		if newCap == 0 {
			newCap = 8
		}
		if newCap > sh.cap {
			newCap = sh.cap
		}
		if newCap < len(sh.slots)+1 {
			newCap = len(sh.slots) + 1
		}
		grown := make([]entrySlot, len(sh.slots), newCap)
		copy(grown, sh.slots)
		sh.slots = grown
	}
	sh.slots = append(sh.slots, entrySlot{})
	return uint32(len(sh.slots) - 1)
}

// pushFrontLocked links idx at the LRU front (most recently used).
func (sh *trackerShard) pushFrontLocked(idx uint32) {
	s := &sh.slots[idx]
	s.lruPrev = noSlot
	s.lruNext = sh.lruHead
	if sh.lruHead != noSlot {
		sh.slots[sh.lruHead].lruPrev = idx
	} else {
		sh.lruTail = idx
	}
	sh.lruHead = idx
}

// unlinkLocked removes idx from the LRU list.
func (sh *trackerShard) unlinkLocked(idx uint32) {
	s := &sh.slots[idx]
	if s.lruPrev != noSlot {
		sh.slots[s.lruPrev].lruNext = s.lruNext
	} else {
		sh.lruHead = s.lruNext
	}
	if s.lruNext != noSlot {
		sh.slots[s.lruNext].lruPrev = s.lruPrev
	} else {
		sh.lruTail = s.lruPrev
	}
}

// moveToFrontLocked refreshes idx's LRU position.
func (sh *trackerShard) moveToFrontLocked(idx uint32) {
	if sh.lruHead == idx {
		return
	}
	sh.unlinkLocked(idx)
	sh.pushFrontLocked(idx)
}

// RecordVerify folds one verification outcome into the IP's evidence
// state: a successful solve at the given difficulty adds that difficulty
// to the half-life-decayed solve credit and clears the failure streak; a
// failed verification extends the streak. The core framework calls this
// from Verify, so evidence accrues wherever solutions are actually
// redeemed; the simulation engine records modeled verifications through
// the same path. Allocation-free for already-tracked IPs.
func (t *Tracker) RecordVerify(ip string, difficulty int, ok bool, at time.Time) {
	if ip == "" {
		return
	}
	sh := t.shard(ip)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx := t.entryLocked(sh, ip)
	t.recordVerifyLocked(sh, idx, difficulty, ok, at)
}

// recordVerifyLocked folds one verification outcome into the slot at idx
// and bumps its evidence generation (invalidating any cached summary —
// redemption changes are visible immediately). Callers hold the shard
// lock.
func (t *Tracker) recordVerifyLocked(sh *trackerShard, idx uint32, difficulty int, ok bool, at time.Time) {
	seq := t.markDirtyLocked(sh, idx) // credit and its reference time change
	e := &sh.slots[idx]
	e.solveCredit = decayCreditNS(e.solveCredit, e.creditAtNS, timeNS(at), t.halfLife)
	e.creditAtNS = timeNS(at)
	if ok {
		e.solveCredit += float64(difficulty)
		e.failStreak = 0
	} else {
		e.failStreak++
	}
	e.evGen = seq
}

// decayCredit applies the exponential half-life decay from the credit's
// reference time to now. Non-monotonic clocks decay nothing rather than
// inflating credit.
func decayCredit(credit float64, from, now time.Time, halfLife time.Duration) float64 {
	return decayCreditNS(credit, timeNS(from), timeNS(now), halfLife)
}

// decayCreditNS is decayCredit over slab timestamps (unix nanos, 0 =
// unset).
func decayCreditNS(credit float64, fromNS, nowNS int64, halfLife time.Duration) float64 {
	if credit == 0 || fromNS == 0 {
		return credit
	}
	dt := nowNS - fromNS
	if dt <= 0 {
		return credit
	}
	return credit * math.Exp2(-float64(dt)/float64(halfLife))
}

// behaviorSummary is the tracker's attribute values for one IP, in
// behaviorAttrNames order.
type behaviorSummary [behaviorAttrCount]float64

// summarize computes an IP's behavioral attributes under its shard lock.
// Unknown IPs report ok=false (all-zero behavior).
func (t *Tracker) summarize(ip string, now time.Time) (behaviorSummary, bool) {
	var s behaviorSummary
	sh := t.shard(ip)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.index[ip]
	if !ok {
		return s, false
	}
	return t.summarizeLocked(&sh.slots[idx], now), true
}

// summarizeLocked computes (or, within the staleness bound, serves the
// cached) behavior summary for a slot. Callers hold the shard lock. A
// cache hit requires an unchanged evidence generation and an age in
// [0, staleness]; negative ages (a clock stepping backwards) recompute,
// the conservative choice.
func (t *Tracker) summarizeLocked(e *entrySlot, now time.Time) behaviorSummary {
	nowNS := now.UnixNano()
	if t.staleness > 0 && e.sumValid && e.sumGen == e.evGen {
		if age := nowNS - e.sumAtNS; age >= 0 && age <= int64(t.staleness) {
			return e.sum
		}
	}
	var s behaviorSummary
	reqs := winSum(&e.reqCounts, &e.reqStamps, t.buckets, t.bucketNS, nowNS)
	s[0] = reqs / t.span.Seconds()
	if reqs > 0 {
		s[1] = winSum(&e.failCounts, &e.failStamps, t.buckets, t.bucketNS, nowNS) / reqs
	}
	s[2] = float64(e.pathCount)
	s[3] = e.pathEntropy()
	s[4] = e.interArrival
	s[5] = float64(e.total)
	s[6] = decayCreditNS(e.solveCredit, e.creditAtNS, nowNS, t.halfLife)
	s[7] = float64(e.failStreak)
	if e.total > 0 {
		s[8] = float64(e.totalFailed) / float64(e.total)
	}
	if t.staleness > 0 {
		e.sum, e.sumAtNS, e.sumGen, e.sumValid = s, nowNS, e.evGen, true
	}
	return s
}

// Attributes summarizes the IP's tracked behavior at time now. Unknown IPs
// return all-zero attributes: no observed behavior, no suspicion from this
// source.
func (t *Tracker) Attributes(ip string, now time.Time) map[string]float64 {
	s, _ := t.summarize(ip, now)
	attrs := make(map[string]float64, behaviorAttrCount)
	for i, name := range behaviorAttrNames {
		attrs[name] = s[i]
	}
	return attrs
}

// AttributesVector implements VectorSource: the behavioral values are
// written at their schema slots (zeros for unknown IPs, matching
// Attributes) without allocating.
func (t *Tracker) AttributesVector(dst []float64, schema *Schema, ip string, now time.Time) uint64 {
	l := t.layoutFor(schema)
	if l.mask == 0 {
		return 0
	}
	s, _ := t.summarize(ip, now)
	for i, j := range l.idx {
		if j >= 0 {
			dst[j] = s[i]
		}
	}
	return l.mask
}

var _ VectorSource = (*Tracker)(nil)

// layoutFor resolves (and caches) the behavioral attributes' slots in
// schema. The fast path is one atomic load and a pointer scan; a schema
// seen for the first time takes the mutex, re-checks, and publishes a new
// bounded slice copy-on-write, so trackers shared by several pipelines
// (one schema each) never rebuild layouts on the request path.
func (t *Tracker) layoutFor(schema *Schema) *trackerLayout {
	if ls := t.layouts.Load(); ls != nil {
		for _, l := range *ls {
			if l.schema == schema {
				return l
			}
		}
	}
	t.layoutMu.Lock()
	defer t.layoutMu.Unlock()
	cur := t.layouts.Load()
	var prev []*trackerLayout
	if cur != nil {
		prev = *cur
		for _, l := range prev {
			if l.schema == schema { // lost the race to another resolver
				return l
			}
		}
	}
	l := &trackerLayout{schema: schema}
	for i, name := range behaviorAttrNames {
		j, ok := schema.Index(name)
		if !ok {
			l.idx[i] = -1
			continue
		}
		l.idx[i] = j
		l.mask |= 1 << uint(j)
	}
	for len(prev) >= maxTrackerLayouts {
		prev = prev[1:] // FIFO: evict the oldest-resolved schema
	}
	next := make([]*trackerLayout, 0, len(prev)+1)
	next = append(next, prev...)
	next = append(next, l)
	t.layouts.Store(&next)
	return l
}

// pathEntropy is the Shannon entropy (bits) of the per-path hit
// distribution: near 0 for single-endpoint hammering, high for crawlers
// spraying across many paths. Overflow hits pool into one pseudo-path, so
// the cap cannot be abused to zero the signal. Accumulation runs in fixed
// order (inline table, spill slice, overflow), so the value is
// deterministic for a given event trace.
func (e *entrySlot) pathEntropy() float64 {
	total := e.overflowHits
	for i := 0; i < inlinePaths; i++ {
		total += e.pathHits[i]
	}
	for i := range e.pathSpill {
		total += e.pathSpill[i].hits
	}
	if total == 0 {
		return 0
	}
	var h float64
	acc := func(n uint64) {
		if n == 0 {
			return
		}
		p := float64(n) / float64(total)
		h -= p * math.Log2(p)
	}
	for i := 0; i < inlinePaths; i++ {
		acc(e.pathHits[i])
	}
	for i := range e.pathSpill {
		acc(e.pathSpill[i].hits)
	}
	acc(e.overflowHits)
	return h
}

// Tracked reports how many IPs currently have state, summed across shards.
func (t *Tracker) Tracked() int {
	total := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		total += len(sh.index)
		sh.mu.Unlock()
	}
	return total
}

// TrackerStats is a point-in-time occupancy snapshot: how full the
// tracker is, how much slab the shards have actually committed, and how
// much LRU churn it has absorbed.
type TrackerStats struct {
	// Entries is the number of IPs currently tracked.
	Entries int

	// Capacity is the configured tracked-IP bound.
	Capacity int

	// Slots is the total slab slots allocated across shards (high-water
	// occupancy; slots are recycled, never returned to the allocator).
	Slots int

	// Evictions counts lifetime LRU evictions across shards.
	Evictions uint64
}

// Utilization reports live entries per allocated slab slot in [0, 1]
// (1 when nothing has been allocated yet).
func (s TrackerStats) Utilization() float64 {
	if s.Slots == 0 {
		return 1
	}
	return float64(s.Entries) / float64(s.Slots)
}

// StatsSnapshot sums the occupancy gauges across shards.
func (t *Tracker) StatsSnapshot() TrackerStats {
	st := TrackerStats{Capacity: t.capacity}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.index)
		st.Slots += len(sh.slots)
		st.Evictions += sh.evictions
		sh.mu.Unlock()
	}
	return st
}

// evictLocked drops the shard's least-recently-used IP and recycles its
// slot through the freelist. Callers hold sh.mu.
func (sh *trackerShard) evictLocked() {
	idx := sh.lruTail
	if idx == noSlot {
		return
	}
	sh.unlinkLocked(idx)
	s := &sh.slots[idx]
	delete(sh.index, s.ip)
	if s.dirtyPos > 0 {
		// Tombstone the dirty-log cell: the row is gone, and full exports
		// would not include it either, so delta consumers just stop
		// hearing about it (the CRDT state they already merged stands).
		sh.dirty[s.dirtyPos-1] = noSlot
	}
	*s = entrySlot{} // clear state and drop the ip string / spill slice
	s.lruNext = sh.free
	sh.free = idx
	sh.evictions++
}
