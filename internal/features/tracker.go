package features

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"time"
)

// Behavioral attribute names produced by Tracker.Attributes. They carry a
// "live_" prefix so they never collide with static feed attributes when
// merged.
const (
	AttrRequestRate   = "live_req_per_sec"
	AttrFailRatio     = "live_fail_ratio"
	AttrDistinctPaths = "live_distinct_paths"
	AttrPathEntropy   = "live_path_entropy"
	AttrInterArrival  = "live_inter_arrival_ms"
	AttrTotalRequests = "live_total_requests"
)

// RequestInfo is the normalized description of one incoming request, the
// unit the tracker observes.
type RequestInfo struct {
	// IP identifies the client (the tracker's key).
	IP string

	// Path is the requested resource path.
	Path string

	// At is the arrival time.
	At time.Time

	// Failed marks requests the server answered with a client-error status
	// (failed auth, malformed input) — a strong abuse signal.
	Failed bool
}

// Tracker maintains bounded per-IP behavioral state and summarizes it as
// attributes for the scorer. Memory is bounded two ways: at most capacity
// IPs (LRU-evicted) and at most maxPaths distinct paths tracked per IP.
//
// Tracker is safe for concurrent use.
type Tracker struct {
	mu       sync.Mutex
	entries  map[string]*ipEntry
	lru      *list.List // front = most recently used
	capacity int
	span     time.Duration
	buckets  int
	maxPaths int
}

// ipEntry is the tracked state for one client IP.
type ipEntry struct {
	ip           string
	lruElem      *list.Element
	requests     *Window
	failures     *Window
	paths        map[string]uint64 // per-path hit counts, capped at maxPaths keys
	overflowHits uint64            // hits on paths beyond the cap, pooled
	lastSeen     time.Time
	interArrival float64 // EWMA, milliseconds
	total        uint64
}

// TrackerOption customizes a Tracker.
type TrackerOption func(*Tracker)

// WithCapacity bounds the number of tracked IPs (default 65536).
func WithCapacity(n int) TrackerOption {
	return func(t *Tracker) { t.capacity = n }
}

// WithWindow sets the sliding-window span and bucket count used for rates
// (default 60 s across 12 buckets).
func WithWindow(span time.Duration, buckets int) TrackerOption {
	return func(t *Tracker) { t.span, t.buckets = span, buckets }
}

// WithMaxPaths bounds the distinct paths remembered per IP (default 64).
func WithMaxPaths(n int) TrackerOption {
	return func(t *Tracker) { t.maxPaths = n }
}

// NewTracker returns a Tracker with the given options applied.
func NewTracker(opts ...TrackerOption) (*Tracker, error) {
	t := &Tracker{
		entries:  make(map[string]*ipEntry),
		lru:      list.New(),
		capacity: 65536,
		span:     time.Minute,
		buckets:  12,
		maxPaths: 64,
	}
	for _, opt := range opts {
		opt(t)
	}
	if t.capacity < 1 {
		return nil, fmt.Errorf("features: tracker capacity must be positive, got %d", t.capacity)
	}
	if t.span <= 0 || t.buckets < 1 {
		return nil, fmt.Errorf("features: invalid window %v/%d", t.span, t.buckets)
	}
	if t.maxPaths < 1 {
		return nil, fmt.Errorf("features: max paths must be positive, got %d", t.maxPaths)
	}
	return t, nil
}

// Observe folds one request into the tracker.
func (t *Tracker) Observe(req RequestInfo) error {
	if req.IP == "" {
		return fmt.Errorf("features: request without IP")
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	e, ok := t.entries[req.IP]
	if !ok {
		reqW, err := NewWindow(t.span, t.buckets)
		if err != nil {
			return err
		}
		failW, err := NewWindow(t.span, t.buckets)
		if err != nil {
			return err
		}
		e = &ipEntry{
			ip:       req.IP,
			requests: reqW,
			failures: failW,
			paths:    make(map[string]uint64, 8),
		}
		e.lruElem = t.lru.PushFront(e)
		t.entries[req.IP] = e
		for len(t.entries) > t.capacity {
			t.evictLocked()
		}
	} else {
		t.lru.MoveToFront(e.lruElem)
	}

	if !e.lastSeen.IsZero() {
		gapMS := float64(req.At.Sub(e.lastSeen)) / float64(time.Millisecond)
		if gapMS < 0 {
			gapMS = 0
		}
		const alpha = 0.3 // EWMA smoothing: favors recent behavior
		if e.total <= 1 {
			e.interArrival = gapMS
		} else {
			e.interArrival = alpha*gapMS + (1-alpha)*e.interArrival
		}
	}
	e.lastSeen = req.At
	e.total++
	e.requests.Add(req.At, 1)
	if req.Failed {
		e.failures.Add(req.At, 1)
	}
	if _, known := e.paths[req.Path]; known || len(e.paths) < t.maxPaths {
		e.paths[req.Path]++
	} else {
		e.overflowHits++
	}
	return nil
}

// Attributes summarizes the IP's tracked behavior at time now. Unknown IPs
// return all-zero attributes: no observed behavior, no suspicion from this
// source.
func (t *Tracker) Attributes(ip string, now time.Time) map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()

	attrs := map[string]float64{
		AttrRequestRate:   0,
		AttrFailRatio:     0,
		AttrDistinctPaths: 0,
		AttrPathEntropy:   0,
		AttrInterArrival:  0,
		AttrTotalRequests: 0,
	}
	e, ok := t.entries[ip]
	if !ok {
		return attrs
	}
	reqs := e.requests.Sum(now)
	attrs[AttrRequestRate] = e.requests.Rate(now)
	if reqs > 0 {
		attrs[AttrFailRatio] = e.failures.Sum(now) / reqs
	}
	attrs[AttrDistinctPaths] = float64(len(e.paths))
	attrs[AttrPathEntropy] = e.pathEntropy()
	attrs[AttrInterArrival] = e.interArrival
	attrs[AttrTotalRequests] = float64(e.total)
	return attrs
}

// pathEntropy is the Shannon entropy (bits) of the per-path hit
// distribution: near 0 for single-endpoint hammering, high for crawlers
// spraying across many paths. Overflow hits pool into one pseudo-path, so
// the cap cannot be abused to zero the signal.
func (e *ipEntry) pathEntropy() float64 {
	total := e.overflowHits
	for _, n := range e.paths {
		total += n
	}
	if total == 0 {
		return 0
	}
	var h float64
	acc := func(n uint64) {
		if n == 0 {
			return
		}
		p := float64(n) / float64(total)
		h -= p * math.Log2(p)
	}
	for _, n := range e.paths {
		acc(n)
	}
	acc(e.overflowHits)
	return h
}

// Tracked reports how many IPs currently have state.
func (t *Tracker) Tracked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// evictLocked drops the least-recently-used IP.
func (t *Tracker) evictLocked() {
	back := t.lru.Back()
	if back == nil {
		return
	}
	e := back.Value.(*ipEntry)
	t.lru.Remove(back)
	delete(t.entries, e.ip)
}
