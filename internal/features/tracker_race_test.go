package features

import (
	"fmt"
	"sync"
	"testing"
)

// TestTrackerShardedConcurrent hammers the sharded tracker with mixed
// Observe / Attributes / AttributesVector traffic from many goroutines —
// enough distinct IPs to force eviction in every shard — and asserts the
// capacity bound holds across shards. Run with -race to exercise the
// lock striping.
func TestTrackerShardedConcurrent(t *testing.T) {
	const (
		capacity = 512
		shards   = 8
		workers  = 16
		perWork  = 2000
	)
	tr, err := NewTracker(WithCapacity(capacity), WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Shards(); got != shards {
		t.Fatalf("Shards() = %d, want %d", got, shards)
	}
	schema, err := NewSchema(behaviorAttrNames[:]...)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := schema.NewVector()
			for i := 0; i < perWork; i++ {
				// Far more distinct IPs than capacity, so shards evict
				// continuously while other goroutines read.
				ip := fmt.Sprintf("10.%d.%d.%d", w, i%64, i%251)
				_ = tr.Observe(RequestInfo{
					IP:     ip,
					Path:   fmt.Sprintf("/p%d", i%16),
					At:     at(i),
					Failed: i%7 == 0,
				})
				if i%3 == 0 {
					_ = tr.Attributes(ip, at(i))
				} else {
					clear(dst)
					if mask := tr.AttributesVector(dst, schema, ip, at(i)); mask != schema.FullMask() {
						t.Errorf("tracker coverage mask = %b, want full %b", mask, schema.FullMask())
						return
					}
				}
				if i%100 == 0 && tr.Tracked() > capacity {
					t.Errorf("Tracked() = %d exceeds capacity %d mid-flood", tr.Tracked(), capacity)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Per-shard quotas sum exactly to capacity, so the global bound holds
	// for any shard configuration.
	if got := tr.Tracked(); got > capacity {
		t.Fatalf("Tracked() = %d, want ≤ capacity %d", got, capacity)
	}
	if got := tr.Tracked(); got == 0 {
		t.Fatal("tracker empty after flood")
	}
}

// TestTrackerShardAutoSizing checks that tiny trackers stay single-shard
// (exact global LRU) and that explicit shard counts round to powers of
// two.
func TestTrackerShardAutoSizing(t *testing.T) {
	small, err := NewTracker(WithCapacity(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := small.Shards(); got != 1 {
		t.Errorf("capacity-3 tracker has %d shards, want 1", got)
	}
	rounded, err := NewTracker(WithShards(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := rounded.Shards(); got != 8 {
		t.Errorf("WithShards(5) → %d shards, want 8", got)
	}
	if _, err := NewTracker(WithShards(-1)); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestTrackerVectorMatchesAttributes asserts the vector fast path and the
// map path summarize identically.
func TestTrackerVectorMatchesAttributes(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	ip := "203.0.113.7"
	for i := 0; i < 40; i++ {
		_ = tr.Observe(RequestInfo{IP: ip, Path: fmt.Sprintf("/p%d", i%5), At: at(i), Failed: i%4 == 0})
	}
	now := at(41)

	schema, err := NewSchema(append([]string{"static_attr"}, behaviorAttrNames[:]...)...)
	if err != nil {
		t.Fatal(err)
	}
	dst := schema.NewVector()
	mask := tr.AttributesVector(dst, schema, ip, now)

	attrs := tr.Attributes(ip, now)
	for name, want := range attrs {
		j, ok := schema.Index(name)
		if !ok {
			t.Fatalf("schema missing %q", name)
		}
		if mask&(1<<uint(j)) == 0 {
			t.Errorf("mask does not cover %q", name)
		}
		if dst[j] != want {
			t.Errorf("vector[%q] = %v, map path %v", name, dst[j], want)
		}
	}
	if j, _ := schema.Index("static_attr"); mask&(1<<uint(j)) != 0 {
		t.Error("tracker claimed coverage of a static attribute")
	}

	// Unknown IP: zeros written at behavioral slots even over a dirty dst.
	for i := range dst {
		dst[i] = 99
	}
	tr.AttributesVector(dst, schema, "198.18.0.1", now)
	if j, _ := schema.Index(AttrTotalRequests); dst[j] != 0 {
		t.Error("unknown IP did not zero its behavioral slots")
	}
}
