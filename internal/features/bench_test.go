package features

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkTrackerObserve(b *testing.B) {
	tr, err := NewTracker()
	if err != nil {
		b.Fatal(err)
	}
	start := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Observe(RequestInfo{
			IP:   fmt.Sprintf("10.0.%d.%d", i%256, (i/256)%256),
			Path: "/api",
			At:   start.Add(time.Duration(i) * time.Millisecond),
		})
	}
}

func BenchmarkTrackerAttributes(b *testing.B) {
	tr, err := NewTracker()
	if err != nil {
		b.Fatal(err)
	}
	start := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		_ = tr.Observe(RequestInfo{IP: "10.0.0.1", Path: fmt.Sprintf("/p%d", i%8),
			At: start.Add(time.Duration(i) * time.Millisecond)})
	}
	at := start.Add(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Attributes("10.0.0.1", at)
	}
}

// BenchmarkTrackerObserveParallel hammers Observe from all Ps with
// per-goroutine IP ranges; with lock striping the shards absorb the
// contention that a single mutex would serialize.
func BenchmarkTrackerObserveParallel(b *testing.B) {
	tr, err := NewTracker()
	if err != nil {
		b.Fatal(err)
	}
	start := time.Unix(0, 0)
	var worker int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := atomic.AddInt64(&worker, 1)
		i := 0
		for pb.Next() {
			i++
			_ = tr.Observe(RequestInfo{
				IP:   fmt.Sprintf("10.%d.%d.%d", w, i%256, (i/256)%256),
				Path: "/api",
				At:   start.Add(time.Duration(i) * time.Millisecond),
			})
		}
	})
}

// BenchmarkTrackerAttributesParallel reads summaries from all Ps across a
// spread of IPs.
func BenchmarkTrackerAttributesParallel(b *testing.B) {
	tr, err := NewTracker()
	if err != nil {
		b.Fatal(err)
	}
	start := time.Unix(0, 0)
	ips := make([]string, 64)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.0.0.%d", i)
		for j := 0; j < 16; j++ {
			_ = tr.Observe(RequestInfo{IP: ips[i], Path: "/api",
				At: start.Add(time.Duration(j) * time.Millisecond)})
		}
	}
	at := start.Add(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_ = tr.Attributes(ips[i%len(ips)], at)
			i++
		}
	})
}

// BenchmarkTrackerAttributesVector measures the interned fast path: same
// summary, no map.
func BenchmarkTrackerAttributesVector(b *testing.B) {
	tr, err := NewTracker()
	if err != nil {
		b.Fatal(err)
	}
	start := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		_ = tr.Observe(RequestInfo{IP: "10.0.0.1", Path: fmt.Sprintf("/p%d", i%8),
			At: start.Add(time.Duration(i) * time.Millisecond)})
	}
	schema, err := NewSchema(behaviorAttrNames[:]...)
	if err != nil {
		b.Fatal(err)
	}
	dst := schema.NewVector()
	at := start.Add(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.AttributesVector(dst, schema, "10.0.0.1", at)
	}
}

func BenchmarkMapStoreVectorLookup(b *testing.B) {
	s, err := NewMapStore(map[string]float64{"x": 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		s.Put(fmt.Sprintf("10.0.%d.%d", i%256, i/256), map[string]float64{"x": float64(i)})
	}
	schema, err := NewSchema("x")
	if err != nil {
		b.Fatal(err)
	}
	dst := schema.NewVector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.AttributesVector(dst, schema, "10.0.7.9", time.Time{})
	}
}

func BenchmarkMapStoreLookup(b *testing.B) {
	s, err := NewMapStore(map[string]float64{"x": 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		s.Put(fmt.Sprintf("10.0.%d.%d", i%256, i/256), map[string]float64{"x": float64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Attributes("10.0.7.9", time.Time{})
	}
}
