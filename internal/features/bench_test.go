package features

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkTrackerObserve(b *testing.B) {
	tr, err := NewTracker()
	if err != nil {
		b.Fatal(err)
	}
	start := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Observe(RequestInfo{
			IP:   fmt.Sprintf("10.0.%d.%d", i%256, (i/256)%256),
			Path: "/api",
			At:   start.Add(time.Duration(i) * time.Millisecond),
		})
	}
}

func BenchmarkTrackerAttributes(b *testing.B) {
	tr, err := NewTracker()
	if err != nil {
		b.Fatal(err)
	}
	start := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		_ = tr.Observe(RequestInfo{IP: "10.0.0.1", Path: fmt.Sprintf("/p%d", i%8),
			At: start.Add(time.Duration(i) * time.Millisecond)})
	}
	at := start.Add(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Attributes("10.0.0.1", at)
	}
}

func BenchmarkMapStoreLookup(b *testing.B) {
	s, err := NewMapStore(map[string]float64{"x": 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		s.Put(fmt.Sprintf("10.0.%d.%d", i%256, i/256), map[string]float64{"x": float64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Attributes("10.0.7.9", time.Time{})
	}
}
