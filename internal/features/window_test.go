package features

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func at(sec int) time.Time {
	return time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

func TestNewWindowValidation(t *testing.T) {
	if _, err := NewWindow(0, 4); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := NewWindow(time.Minute, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestWindowSumWithinSpan(t *testing.T) {
	w, err := NewWindow(60*time.Second, 6)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(at(0), 1)
	w.Add(at(10), 2)
	w.Add(at(20), 3)
	if got := w.Sum(at(20)); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := w.Rate(at(20)); got != 0.1 {
		t.Fatalf("Rate = %v, want 0.1", got)
	}
}

func TestWindowExpiresOldBuckets(t *testing.T) {
	w, err := NewWindow(60*time.Second, 6)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(at(0), 5)
	w.Add(at(45), 1)
	// At t=90 the covered buckets start at t=40 (the 60 s span quantizes to
	// whole 10 s buckets), so the t=0 event is out and the t=45 one is in.
	if got := w.Sum(at(90)); got != 1 {
		t.Fatalf("Sum after expiry = %v, want 1", got)
	}
	// Far in the future everything is gone.
	if got := w.Sum(at(1000)); got != 0 {
		t.Fatalf("Sum far future = %v, want 0", got)
	}
}

func TestWindowBucketReuseClearsStaleCounts(t *testing.T) {
	w, err := NewWindow(6*time.Second, 6) // 1s buckets
	if err != nil {
		t.Fatal(err)
	}
	w.Add(at(0), 100)
	// t=6 maps to the same ring slot as t=0 (6 mod 6 buckets); the stale
	// count must be cleared, not accumulated into.
	w.Add(at(6), 1)
	// Window ending at t=6 covers buckets [1..6]: only the t=6 value remains.
	if got := w.Sum(at(6)); got != 1 {
		t.Fatalf("Sum = %v, want 1 (stale slot leaked)", got)
	}
}

func TestWindowReset(t *testing.T) {
	w, err := NewWindow(time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(at(0), 3)
	w.Reset()
	if got := w.Sum(at(0)); got != 0 {
		t.Fatalf("Sum after reset = %v, want 0", got)
	}
}

func TestWindowSpanAccessor(t *testing.T) {
	w, err := NewWindow(42*time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Span() != 42*time.Second {
		t.Fatalf("Span() = %v", w.Span())
	}
}

// Property (conservation): for events all within one span of "now", the
// window sum equals the plain sum.
func TestWindowConservationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		w, err := NewWindow(60*time.Second, 60)
		if err != nil {
			return false
		}
		now := at(120)
		var want float64
		rng := rand.New(rand.NewPCG(uint64(len(raw)), 7))
		for _, v := range raw {
			// Offsets in [61s, 120s]: safely inside the window ending at 120s
			// even after bucket quantization.
			off := 61 + rng.IntN(60)
			w.Add(at(off), float64(v))
			want += float64(v)
		}
		return w.Sum(now) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
