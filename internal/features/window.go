// Package features turns raw request streams into the per-IP attribute
// vectors the AI model scores. It provides a bucketed sliding window, a
// bounded per-IP behavior tracker, and attribute stores that merge static
// (Talos-like) attributes with live behavioral ones — the "IP traffic based
// features" the paper's AI subsystem consumes.
package features

import (
	"fmt"
	"time"
)

// Window is a fixed-duration sliding-window accumulator backed by a ring
// of time buckets. Adding a value assigns it to the bucket covering its
// timestamp; querying sums the buckets that are still inside the window,
// lazily zeroing buckets that have rotated out. Timestamps must be
// non-decreasing within ~one window span for exact results, which request
// streams satisfy.
//
// Window is not safe for concurrent use; Tracker serializes access.
type Window struct {
	span    time.Duration
	bucket  time.Duration
	counts  []float64
	stamps  []int64 // bucket epoch each slot currently holds
	lastAdd time.Time
}

// NewWindow returns a sliding window covering span with the given number
// of buckets. More buckets cost memory but reduce quantization error at
// the trailing edge.
func NewWindow(span time.Duration, buckets int) (*Window, error) {
	if span <= 0 {
		return nil, fmt.Errorf("features: window span must be positive, got %v", span)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("features: window needs at least one bucket, got %d", buckets)
	}
	return &Window{
		span:   span,
		bucket: span / time.Duration(buckets),
		counts: make([]float64, buckets),
		stamps: make([]int64, buckets),
	}, nil
}

// epoch maps a timestamp to its global bucket index.
func (w *Window) epoch(at time.Time) int64 {
	return at.UnixNano() / int64(w.bucket)
}

// Add records v at time at.
func (w *Window) Add(at time.Time, v float64) {
	e := w.epoch(at)
	slot := int(((e % int64(len(w.counts))) + int64(len(w.counts))) % int64(len(w.counts)))
	if w.stamps[slot] != e {
		w.counts[slot] = 0
		w.stamps[slot] = e
	}
	w.counts[slot] += v
	if at.After(w.lastAdd) {
		w.lastAdd = at
	}
}

// Sum reports the total of values whose buckets are inside the window
// ending at now.
func (w *Window) Sum(now time.Time) float64 {
	newest := w.epoch(now)
	oldest := newest - int64(len(w.counts)) + 1
	var total float64
	for slot, e := range w.stamps {
		if e >= oldest && e <= newest {
			total += w.counts[slot]
		}
	}
	return total
}

// Rate reports Sum divided by the window span in seconds.
func (w *Window) Rate(now time.Time) float64 {
	return w.Sum(now) / w.span.Seconds()
}

// Span reports the window's configured duration.
func (w *Window) Span() time.Duration { return w.span }

// Reset zeroes the window.
func (w *Window) Reset() {
	for i := range w.counts {
		w.counts[i] = 0
		w.stamps[i] = 0
	}
	w.lastAdd = time.Time{}
}
