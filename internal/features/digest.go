package features

import (
	"sort"
	"time"
)

// EvidenceRow is one IP's compact verification-evidence digest, the unit
// the cluster plane gossips between nodes. Every field is chosen so rows
// merge as a state-based CRDT: Total and Failed are monotone counters
// (merged by max), and the solve credit is a decayed sum carried together
// with its decay reference time (merged by normalized max — see MergeRows).
// Merge order and duplication therefore cannot matter, which is what lets
// peers exchange digests on any topology, at any cadence, with relays and
// re-deliveries, and still converge.
type EvidenceRow struct {
	// IP identifies the client the evidence is about.
	IP string

	// Total and Failed are lifetime request counters (the fail-ratio
	// numerator and denominator). Monotone per origin, merged by max.
	Total  uint64
	Failed uint64

	// SolveCredit is the half-life-decayed verified-solve credit as of
	// CreditAt. The pair is a decayed-sum register: comparisons between
	// rows always normalize both credits to the later reference time
	// before taking the max, so merging a row with a later-decayed copy
	// of itself yields the decayed value — stale gossip can never
	// resurrect evidence that has since decayed away.
	SolveCredit float64
	CreditAt    time.Time
}

// MergeRows merges two evidence rows for the same IP under the given
// credit half-life. The operation is commutative, associative, and
// idempotent (the CRDT merge laws, pinned by property tests in the
// cluster package):
//
//   - counters merge by max — valid because each origin's counters are
//     monotone, and re-merging a relayed copy is a no-op;
//   - solve credit merges by normalized max: both credits are decayed to
//     the later of the two reference times and the larger survives. For
//     any set of rows the merged credit is the pointwise max of each
//     row's credit decayed to the latest reference time, which no
//     ordering or duplication can change.
func MergeRows(a, b EvidenceRow, halfLife time.Duration) EvidenceRow {
	out := a
	if b.Total > out.Total {
		out.Total = b.Total
	}
	if b.Failed > out.Failed {
		out.Failed = b.Failed
	}
	out.SolveCredit, out.CreditAt = mergeCredit(a.SolveCredit, a.CreditAt, b.SolveCredit, b.CreditAt, halfLife)
	return out
}

// mergeCredit merges two (credit, asOf) decayed-sum registers: decay the
// older to the newer reference time, keep the larger. Decaying down (never
// normalizing up) keeps the math overflow-free for arbitrarily distant
// timestamps.
func mergeCredit(ca float64, ta time.Time, cb float64, tb time.Time, halfLife time.Duration) (float64, time.Time) {
	if tb.After(ta) {
		ca, ta = decayCredit(ca, ta, tb, halfLife), tb
	} else if ta.After(tb) {
		cb = decayCredit(cb, tb, ta, halfLife)
	}
	if cb > ca {
		ca = cb
	}
	return ca, ta
}

// ExportEvidence appends every tracked IP's evidence row to dst (sorted by
// IP for deterministic wire encoding) and returns the extended slice. Rows
// with no evidence at all — never verified, never failed — are skipped:
// they carry nothing a peer could merge. maxRows > 0 truncates the sorted
// result, bounding digest size; truncation keeps the lexicographically
// first rows so repeated exports stay stable.
func (t *Tracker) ExportEvidence(dst []EvidenceRow, maxRows int) []EvidenceRow {
	start := len(dst)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, idx := range sh.index {
			e := &sh.slots[idx]
			if e.total == 0 && e.solveCredit == 0 {
				continue
			}
			dst = appendEvidenceRow(dst, e)
		}
		sh.mu.Unlock()
	}
	rows := dst[start:]
	sort.Slice(rows, func(i, j int) bool { return rows[i].IP < rows[j].IP })
	if maxRows > 0 && len(rows) > maxRows {
		dst = dst[:start+maxRows]
	}
	return dst
}

// appendEvidenceRow appends e's evidence digest to dst. Callers hold the
// owning shard's lock.
func appendEvidenceRow(dst []EvidenceRow, e *entrySlot) []EvidenceRow {
	return append(dst, EvidenceRow{
		IP:          e.ip,
		Total:       e.total,
		Failed:      e.totalFailed,
		SolveCredit: e.solveCredit,
		CreditAt:    nsTime(e.creditAtNS),
	})
}

// ExportEvidenceSince is the delta form of ExportEvidence: it appends only
// the rows whose exported evidence changed after the since watermark, and
// returns the extended slice, the new watermark (pass it as since on the
// next call), and whether the export actually was a delta.
//
// The watermark contract: every evidence change numbered at or below the
// returned watermark is either in the returned rows or was in the rows of
// the earlier export that handed out since. That holds because the
// watermark is loaded *before* any shard lock is taken, while change
// sequences are allocated and stamped *under* the shard lock — a change
// numbered ≤ watermark therefore completed its stamp before this scan
// acquired the lock, and is visible to it.
//
// The call degrades to a full export (delta=false, same row semantics as
// ExportEvidence, including the maxRows truncation) when since is zero, when
// any shard's dirty log has forgotten changes the caller has not seen yet
// (log overflow under churn), or when the delta itself would exceed maxRows
// — so a consumer never silently misses rows. Evicted entries simply stop
// being exported in either mode; the monotone CRDT state peers already
// merged stands.
func (t *Tracker) ExportEvidenceSince(dst []EvidenceRow, maxRows int, since uint64) ([]EvidenceRow, uint64, bool) {
	watermark := t.deltaSeq.Load()
	if since == 0 {
		return t.ExportEvidence(dst, maxRows), watermark, false
	}
	start := len(dst)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if since < sh.dirtyLost {
			sh.mu.Unlock()
			return t.ExportEvidence(dst[:start], maxRows), watermark, false
		}
		for _, idx := range sh.dirty {
			if idx == noSlot {
				continue // tombstone: the entry was evicted
			}
			e := &sh.slots[idx]
			if e.expSeq <= since || (e.total == 0 && e.solveCredit == 0) {
				continue
			}
			dst = appendEvidenceRow(dst, e)
		}
		sh.mu.Unlock()
		if maxRows > 0 && len(dst)-start > maxRows {
			return t.ExportEvidence(dst[:start], maxRows), watermark, false
		}
	}
	rows := dst[start:]
	sort.Slice(rows, func(i, j int) bool { return rows[i].IP < rows[j].IP })
	return dst, watermark, true
}

// MergeEvidence folds peer-reported evidence rows into the tracker's
// entries with the CRDT merge laws of MergeRows: counters lift to the
// fleet max and solve credit merges by normalized max, so a client that
// redeemed challenges on a sibling node carries its earned reputation
// here, and a relayed or duplicated digest changes nothing. Entries are
// created as needed (subject to the tracker's capacity bound, like any
// other observation) and their evidence generation is bumped so cached
// summaries refresh.
func (t *Tracker) MergeEvidence(rows []EvidenceRow) {
	for i := range rows {
		r := &rows[i]
		if r.IP == "" {
			continue
		}
		sh := t.shard(r.IP)
		sh.mu.Lock()
		idx := t.entryLocked(sh, r.IP)
		e := &sh.slots[idx]
		creditAt := nsTime(e.creditAtNS)
		merged := MergeRows(EvidenceRow{
			Total:       e.total,
			Failed:      e.totalFailed,
			SolveCredit: e.solveCredit,
			CreditAt:    creditAt,
		}, *r, t.halfLife)
		if merged.Total != e.total || merged.Failed != e.totalFailed ||
			merged.SolveCredit != e.solveCredit || !merged.CreditAt.Equal(creditAt) {
			seq := t.markDirtyLocked(sh, idx)
			e.total = merged.Total
			e.totalFailed = merged.Failed
			e.solveCredit = merged.SolveCredit
			e.creditAtNS = timeNS(merged.CreditAt)
			e.evGen = seq
		}
		sh.mu.Unlock()
	}
}
