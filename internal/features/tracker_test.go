package features

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(WithCapacity(0)); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewTracker(WithWindow(0, 4)); err == nil {
		t.Error("zero window span accepted")
	}
	if _, err := NewTracker(WithWindow(time.Minute, 0)); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewTracker(WithMaxPaths(0)); err == nil {
		t.Error("zero max paths accepted")
	}
}

func TestTrackerObserveRequiresIP(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(RequestInfo{At: at(0)}); err == nil {
		t.Fatal("empty IP accepted")
	}
}

func TestTrackerUnknownIPZeroAttributes(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	attrs := tr.Attributes("198.51.100.1", at(0))
	for name, v := range attrs {
		if v != 0 {
			t.Errorf("attr %q = %v for unknown IP, want 0", name, v)
		}
	}
	if len(attrs) != behaviorAttrCount {
		t.Errorf("got %d attrs, want the %d behavioral ones", len(attrs), behaviorAttrCount)
	}
}

func TestTrackerPathEntropy(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	// Hammering one path: entropy 0.
	for i := 0; i < 16; i++ {
		if err := tr.Observe(RequestInfo{IP: "a", Path: "/login", At: at(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Attributes("a", at(16))[AttrPathEntropy]; got != 0 {
		t.Errorf("single-path entropy = %v, want 0", got)
	}
	// Uniform over 4 paths: entropy 2 bits.
	for i := 0; i < 16; i++ {
		paths := []string{"/a", "/b", "/c", "/d"}
		if err := tr.Observe(RequestInfo{IP: "b", Path: paths[i%4], At: at(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Attributes("b", at(16))[AttrPathEntropy]; got < 1.99 || got > 2.01 {
		t.Errorf("uniform-4 entropy = %v, want 2", got)
	}
}

func TestTrackerPathEntropyOverflowPooled(t *testing.T) {
	tr, err := NewTracker(WithMaxPaths(2))
	if err != nil {
		t.Fatal(err)
	}
	// A crawler spraying 100 distinct paths with a 2-key cap: the overflow
	// pool must keep the entropy signal alive (3 effective buckets).
	for i := 0; i < 99; i++ {
		if err := tr.Observe(RequestInfo{IP: "c", Path: fmt.Sprintf("/p%d", i), At: at(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Attributes("c", at(100))[AttrPathEntropy]
	if got <= 0.1 {
		t.Errorf("capped-crawler entropy = %v, want > 0 (overflow pooled)", got)
	}
}

func TestTrackerBehavioralAttributes(t *testing.T) {
	tr, err := NewTracker(WithWindow(60*time.Second, 12))
	if err != nil {
		t.Fatal(err)
	}
	ip := "203.0.113.9"
	// 6 requests over 50s, 2 failed, 3 distinct paths.
	times := []int{0, 10, 20, 30, 40, 50}
	paths := []string{"/a", "/a", "/b", "/c", "/a", "/b"}
	for i, sec := range times {
		if err := tr.Observe(RequestInfo{
			IP:     ip,
			Path:   paths[i],
			At:     at(sec),
			Failed: i%3 == 0, // t=0 and t=30
		}); err != nil {
			t.Fatal(err)
		}
	}
	attrs := tr.Attributes(ip, at(50))
	if got := attrs[AttrTotalRequests]; got != 6 {
		t.Errorf("%s = %v, want 6", AttrTotalRequests, got)
	}
	if got := attrs[AttrDistinctPaths]; got != 3 {
		t.Errorf("%s = %v, want 3", AttrDistinctPaths, got)
	}
	if got := attrs[AttrRequestRate]; got != 0.1 { // 6 per 60s
		t.Errorf("%s = %v, want 0.1", AttrRequestRate, got)
	}
	if got := attrs[AttrFailRatio]; got != 2.0/6.0 {
		t.Errorf("%s = %v, want %v", AttrFailRatio, got, 2.0/6.0)
	}
	// EWMA of constant 10s gaps is 10s.
	if got := attrs[AttrInterArrival]; got < 9999 || got > 10001 {
		t.Errorf("%s = %v, want ~10000 ms", AttrInterArrival, got)
	}
}

func TestTrackerInterArrivalEWMAFavorsRecent(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	ip := "192.0.2.2"
	// Slow (10 s gaps), then a sudden burst (10 ms gaps).
	now := at(0)
	for i := 0; i < 5; i++ {
		_ = tr.Observe(RequestInfo{IP: ip, Path: "/", At: now})
		now = now.Add(10 * time.Second)
	}
	slow := tr.Attributes(ip, now)[AttrInterArrival]
	for i := 0; i < 30; i++ {
		_ = tr.Observe(RequestInfo{IP: ip, Path: "/", At: now})
		now = now.Add(10 * time.Millisecond)
	}
	fast := tr.Attributes(ip, now)[AttrInterArrival]
	if fast >= slow/10 {
		t.Fatalf("EWMA did not adapt: slow=%v fast=%v", slow, fast)
	}
}

func TestTrackerLRUEviction(t *testing.T) {
	tr, err := NewTracker(WithCapacity(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ip := fmt.Sprintf("10.0.0.%d", i)
		if err := tr.Observe(RequestInfo{IP: ip, Path: "/", At: at(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Tracked(); got != 3 {
		t.Fatalf("Tracked() = %d, want 3", got)
	}
	// Oldest two (10.0.0.0, 10.0.0.1) must be gone: zero attributes.
	if tr.Attributes("10.0.0.0", at(10))[AttrTotalRequests] != 0 {
		t.Fatal("evicted IP still has state")
	}
	if tr.Attributes("10.0.0.4", at(10))[AttrTotalRequests] != 1 {
		t.Fatal("recent IP lost state")
	}
}

func TestTrackerLRUTouchOnObserve(t *testing.T) {
	tr, err := NewTracker(WithCapacity(2))
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Observe(RequestInfo{IP: "a", Path: "/", At: at(0)})
	_ = tr.Observe(RequestInfo{IP: "b", Path: "/", At: at(1)})
	_ = tr.Observe(RequestInfo{IP: "a", Path: "/", At: at(2)}) // touch a
	_ = tr.Observe(RequestInfo{IP: "c", Path: "/", At: at(3)}) // evicts b
	if tr.Attributes("a", at(4))[AttrTotalRequests] != 2 {
		t.Fatal("recently-touched IP evicted")
	}
	if tr.Attributes("b", at(4))[AttrTotalRequests] != 0 {
		t.Fatal("least-recently-used IP not evicted")
	}
}

func TestTrackerPathCap(t *testing.T) {
	tr, err := NewTracker(WithMaxPaths(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_ = tr.Observe(RequestInfo{IP: "a", Path: fmt.Sprintf("/p%d", i), At: at(i)})
	}
	if got := tr.Attributes("a", at(100))[AttrDistinctPaths]; got != 4 {
		t.Fatalf("%s = %v, want cap 4", AttrDistinctPaths, got)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ip := fmt.Sprintf("172.16.0.%d", w)
			for i := 0; i < 200; i++ {
				_ = tr.Observe(RequestInfo{IP: ip, Path: "/", At: at(i)})
				_ = tr.Attributes(ip, at(i))
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Tracked(); got != 8 {
		t.Fatalf("Tracked() = %d, want 8", got)
	}
}

// TestTrackerLayoutCacheMultiSchema exercises the bounded per-schema
// layout cache: several schemas served interleaved (the multi-pipeline
// shape, where one tracker feeds frameworks with different scorer
// schemas) must all stay resident, keep answering with correct slots and
// masks, and never grow the cache past its bound.
func TestTrackerLayoutCacheMultiSchema(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Observe(RequestInfo{IP: "a", Path: "/x", At: at(0)})
	_ = tr.Observe(RequestInfo{IP: "a", Path: "/y", At: at(1)})

	mk := func(names ...string) *Schema {
		s, err := NewSchema(names...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Distinct layouts: the live attributes land at different slots.
	schemas := []*Schema{
		mk(AttrRequestRate, AttrTotalRequests),
		mk("static_x", AttrTotalRequests, AttrFailRatio),
		mk(AttrDistinctPaths),
		mk("static_x", "static_y"), // no live attributes at all
	}
	for round := 0; round < 3; round++ {
		for si, schema := range schemas {
			dst := schema.NewVector()
			mask := tr.AttributesVector(dst, schema, "a", at(2))
			want := uint64(0)
			for j := 0; j < schema.Len(); j++ {
				name := schema.Name(j)
				for _, live := range behaviorAttrNames {
					if name == live {
						want |= 1 << uint(j)
					}
				}
			}
			if mask != want {
				t.Fatalf("round %d schema %d: mask = %b, want %b", round, si, mask, want)
			}
			if j, ok := schema.Index(AttrTotalRequests); ok && dst[j] != 2 {
				t.Fatalf("round %d schema %d: total = %v, want 2", round, si, dst[j])
			}
		}
	}
	if ls := tr.layouts.Load(); ls == nil || len(*ls) != len(schemas) {
		t.Fatalf("layout cache holds %d entries, want %d", len(*ls), len(schemas))
	}

	// Fill the cache to its bound with churned (retrained-scorer-style)
	// schemas, then one more: the oldest is evicted, the cache stays
	// bounded, and the evicted schema still answers correctly (it just
	// re-resolves).
	for i := len(schemas); i < maxTrackerLayouts+1; i++ {
		s := mk(fmt.Sprintf("churn_%d", i), AttrFailRatio)
		_ = tr.AttributesVector(s.NewVector(), s, "a", at(3))
	}
	if ls := tr.layouts.Load(); len(*ls) != maxTrackerLayouts {
		t.Fatalf("layout cache holds %d entries after churn, want bound %d", len(*ls), maxTrackerLayouts)
	}
	dst := schemas[0].NewVector()
	if mask := tr.AttributesVector(dst, schemas[0], "a", at(4)); mask == 0 {
		t.Fatal("evicted schema no longer resolves")
	}
}

// TestTrackerLayoutCacheConcurrent races many goroutines resolving a mix
// of schemas; run under -race this guards the copy-on-write publish.
func TestTrackerLayoutCacheConcurrent(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	var schemas []*Schema
	for i := 0; i < maxTrackerLayouts; i++ {
		s, err := NewSchema(fmt.Sprintf("static_%d", i), AttrRequestRate, AttrTotalRequests)
		if err != nil {
			t.Fatal(err)
		}
		schemas = append(schemas, s)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]float64, 3)
			for i := 0; i < 500; i++ {
				s := schemas[(w+i)%len(schemas)]
				clear(dst)
				if mask := tr.AttributesVector(dst, s, "a", at(i)); mask == 0 {
					t.Error("live attributes not covered")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if ls := tr.layouts.Load(); len(*ls) != len(schemas) {
		t.Fatalf("layout cache holds %d entries, want %d", len(*ls), len(schemas))
	}
}
