package features

import (
	"math"
	"testing"
	"time"
)

func evidenceTracker(t *testing.T, opts ...TrackerOption) *Tracker {
	t.Helper()
	tr, err := NewTracker(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecordVerifyAccruesSolveCredit(t *testing.T) {
	tr := evidenceTracker(t)
	const ip = "198.51.100.7"
	tr.RecordVerify(ip, 13, true, at(0))
	tr.RecordVerify(ip, 9, true, at(1))
	attrs := tr.Attributes(ip, at(1))
	if got := attrs[AttrSolveCredit]; math.Abs(got-(13*math.Exp2(-1.0/300)+9)) > 1e-9 {
		t.Errorf("solve credit = %v, want decayed 13 + 9", got)
	}
	if got := attrs[AttrFailStreak]; got != 0 {
		t.Errorf("fail streak = %v, want 0", got)
	}
}

func TestRecordVerifyHalfLifeDecay(t *testing.T) {
	tr := evidenceTracker(t, WithEvidenceHalfLife(10*time.Second))
	const ip = "a"
	tr.RecordVerify(ip, 16, true, at(0))
	// One half-life later the credit has halved; two later, quartered.
	if got := tr.Attributes(ip, at(10))[AttrSolveCredit]; math.Abs(got-8) > 1e-9 {
		t.Errorf("credit after one half-life = %v, want 8", got)
	}
	if got := tr.Attributes(ip, at(20))[AttrSolveCredit]; math.Abs(got-4) > 1e-9 {
		t.Errorf("credit after two half-lives = %v, want 4", got)
	}
	// Reading must not consume the credit: the entry itself decays from
	// its own reference time, not from the last read.
	if got := tr.Attributes(ip, at(10))[AttrSolveCredit]; math.Abs(got-8) > 1e-9 {
		t.Errorf("re-read credit = %v, want 8 (reads must not mutate)", got)
	}
	// A non-monotonic clock must not inflate credit.
	if got := tr.Attributes(ip, at(0).Add(-time.Hour))[AttrSolveCredit]; got > 16 {
		t.Errorf("credit inflated to %v on clock regression", got)
	}
}

func TestRecordVerifyFailStreak(t *testing.T) {
	tr := evidenceTracker(t)
	const ip = "b"
	tr.RecordVerify(ip, 0, false, at(0))
	tr.RecordVerify(ip, 0, false, at(1))
	if got := tr.Attributes(ip, at(1))[AttrFailStreak]; got != 2 {
		t.Errorf("fail streak = %v, want 2", got)
	}
	// A successful solve clears the streak.
	tr.RecordVerify(ip, 8, true, at(2))
	attrs := tr.Attributes(ip, at(2))
	if got := attrs[AttrFailStreak]; got != 0 {
		t.Errorf("fail streak after success = %v, want 0", got)
	}
	if got := attrs[AttrSolveCredit]; got != 8 {
		t.Errorf("credit after success = %v, want 8", got)
	}
}

func TestRecordVerifyCreatesEntryAndRespectsCapacity(t *testing.T) {
	tr := evidenceTracker(t, WithCapacity(4), WithShards(1))
	for i, ip := range []string{"a", "b", "c", "d", "e", "f"} {
		tr.RecordVerify(ip, 8, true, at(i))
	}
	if got := tr.Tracked(); got != 4 {
		t.Errorf("tracked = %d, want capacity 4", got)
	}
	// The oldest entries were LRU-evicted; their evidence is gone.
	if got := tr.Attributes("a", at(10))[AttrSolveCredit]; got != 0 {
		t.Errorf("evicted IP kept credit %v", got)
	}
	if got := tr.Attributes("f", at(10))[AttrSolveCredit]; got == 0 {
		t.Error("fresh IP lost its credit")
	}
}

func TestLifetimeFailRatio(t *testing.T) {
	tr := evidenceTracker(t, WithWindow(10*time.Second, 5))
	const ip = "c"
	// 2 failures in 8 requests, the failures early.
	for i := 0; i < 8; i++ {
		if err := tr.Observe(RequestInfo{IP: ip, Path: "/", At: at(i * 30), Failed: i < 2}); err != nil {
			t.Fatal(err)
		}
	}
	attrs := tr.Attributes(ip, at(8*30))
	if got := attrs[AttrFailRatioTotal]; math.Abs(got-0.25) > 1e-9 {
		t.Errorf("lifetime fail ratio = %v, want 0.25", got)
	}
	// The windowed ratio has forgotten the early failures (requests are 30s
	// apart, window 10s) — exactly why redemption gates on the lifetime one.
	if got := attrs[AttrFailRatio]; got != 0 {
		t.Errorf("windowed fail ratio = %v, want 0 (failures aged out)", got)
	}
}

func TestRecordVerifyEmptyIPIsNoop(t *testing.T) {
	tr := evidenceTracker(t)
	tr.RecordVerify("", 8, true, at(0))
	if got := tr.Tracked(); got != 0 {
		t.Errorf("tracked = %d after empty-IP record", got)
	}
}

// TestEvidenceOnVectorPath pins that the evidence attributes flow through
// AttributesVector at their schema slots.
func TestEvidenceOnVectorPath(t *testing.T) {
	tr := evidenceTracker(t)
	const ip = "d"
	tr.RecordVerify(ip, 11, true, at(0))
	tr.RecordVerify(ip, 0, false, at(1))
	schema, err := NewSchema(AttrSolveCredit, AttrFailStreak, AttrFailRatioTotal)
	if err != nil {
		t.Fatal(err)
	}
	v := schema.NewVector()
	mask := tr.AttributesVector(v, schema, ip, at(1))
	if mask != schema.FullMask() {
		t.Fatalf("mask %b, want full coverage", mask)
	}
	attrs := tr.Attributes(ip, at(1))
	for j := 0; j < schema.Len(); j++ {
		if v[j] != attrs[schema.Name(j)] {
			t.Errorf("slot %q = %v, want %v", schema.Name(j), v[j], attrs[schema.Name(j)])
		}
	}
}

func TestTrackerEvidenceHalfLifeValidation(t *testing.T) {
	if _, err := NewTracker(WithEvidenceHalfLife(-time.Second)); err == nil {
		t.Error("negative half-life accepted")
	}
	if _, err := NewTracker(WithEvidenceHalfLife(0)); err == nil {
		t.Error("zero half-life accepted")
	}
}
