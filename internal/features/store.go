package features

import (
	"fmt"
	"sync"
	"time"
)

// Source yields the attribute map for an IP at a point in time. It is the
// seam between the framework and whatever intelligence feeds a deployment
// has: static feed lookups, live behavior, or both.
type Source interface {
	// Attributes returns the attribute map used to score ip. The returned
	// map is owned by the caller.
	Attributes(ip string, now time.Time) map[string]float64
}

// MapStore is a static attribute source backed by an in-memory map — the
// shape of a Talos-style feed snapshot. IPs absent from the feed fall back
// to a configurable default profile.
//
// MapStore is safe for concurrent use.
type MapStore struct {
	mu       sync.RWMutex
	byIP     map[string]map[string]float64
	fallback map[string]float64
}

var _ Source = (*MapStore)(nil)

// NewMapStore returns a store with the given fallback profile for unknown
// IPs. The fallback must be non-nil: scoring an IP with no attributes at
// all is a configuration error the store surfaces early.
func NewMapStore(fallback map[string]float64) (*MapStore, error) {
	if fallback == nil {
		return nil, fmt.Errorf("features: map store requires a fallback profile")
	}
	return &MapStore{
		byIP:     make(map[string]map[string]float64),
		fallback: cloneAttrs(fallback),
	}, nil
}

// Put registers (or replaces) the attributes for ip.
func (s *MapStore) Put(ip string, attrs map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byIP[ip] = cloneAttrs(attrs)
}

// Attributes implements Source.
func (s *MapStore) Attributes(ip string, _ time.Time) map[string]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if attrs, ok := s.byIP[ip]; ok {
		return cloneAttrs(attrs)
	}
	return cloneAttrs(s.fallback)
}

// Known reports whether ip has explicit attributes (vs. the fallback).
func (s *MapStore) Known(ip string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.byIP[ip]
	return ok
}

// Len reports the number of explicitly registered IPs.
func (s *MapStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byIP)
}

// Combined merges a static source with live tracker behavior: static
// attributes first, then behavioral attributes layered on top (behavioral
// names are "live_"-prefixed, so the two never collide in practice; on a
// genuine key collision the behavioral value wins, being fresher).
type Combined struct {
	static  Source
	tracker *Tracker
}

var _ Source = (*Combined)(nil)

// NewCombined builds the merged source. Both parts are required; use the
// parts directly when only one is wanted.
func NewCombined(static Source, tracker *Tracker) (*Combined, error) {
	if static == nil || tracker == nil {
		return nil, fmt.Errorf("features: combined source requires static source and tracker")
	}
	return &Combined{static: static, tracker: tracker}, nil
}

// Attributes implements Source.
func (c *Combined) Attributes(ip string, now time.Time) map[string]float64 {
	out := c.static.Attributes(ip, now)
	for k, v := range c.tracker.Attributes(ip, now) {
		out[k] = v
	}
	return out
}

func cloneAttrs(in map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
