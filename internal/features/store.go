package features

import (
	"fmt"
	"sync"
	"time"
)

// Source yields the attribute map for an IP at a point in time. It is the
// seam between the framework and whatever intelligence feeds a deployment
// has: static feed lookups, live behavior, or both.
//
// Sources may return shared, read-only state (e.g. one fallback profile
// for all unknown IPs); callers must not mutate the returned map. Sources
// that can fill interned vectors additionally implement VectorSource,
// which the framework prefers on the request hot path.
type Source interface {
	// Attributes returns the attribute map used to score ip. The returned
	// map is read-only from the caller's perspective.
	Attributes(ip string, now time.Time) map[string]float64
}

// MapStore is a static attribute source backed by an in-memory map — the
// shape of a Talos-style feed snapshot. IPs absent from the feed fall back
// to a configurable default profile.
//
// MapStore is safe for concurrent use.
type MapStore struct {
	mu       sync.RWMutex
	byIP     map[string]map[string]float64
	fallback map[string]float64

	// vecBySchema holds the interned vector form of every profile, one
	// cache per schema served (keyed by schema pointer identity, guarded
	// by mu like the maps). A cache is built once, the first time its
	// schema is seen; Put then maintains all caches incrementally, so the
	// request path never rebuilds and feed refreshes cost O(schemas), not
	// O(store). The cache count is bounded at maxSchemaCaches, evicting
	// oldest-built first (vecOrder), so a store outliving many retrained
	// scorers (each with a fresh schema pointer) cannot accrete dead
	// O(store) caches, and a retrain that replaces an old schema retires
	// the old cache before the live one.
	vecBySchema map[*Schema]*storeVectors
	vecOrder    []*Schema
}

// maxSchemaCaches bounds how many schemas' interned caches one store
// retains. A live schema evicted by churn simply rebuilds on next use.
const maxSchemaCaches = 4

var (
	_ Source       = (*MapStore)(nil)
	_ VectorSource = (*MapStore)(nil)
)

// storeVectors is the interned form of the store's maps for one schema:
// every profile pre-resolved to a flat vector plus its coverage mask, so
// the per-request cost is one map lookup and one copy.
type storeVectors struct {
	byIP     map[string]storeVec
	fallback storeVec
}

// storeVec is one interned profile: values in schema order and the bitmask
// of schema slots the profile actually covers.
type storeVec struct {
	v    []float64
	mask uint64
}

// NewMapStore returns a store with the given fallback profile for unknown
// IPs. The fallback must be non-nil: scoring an IP with no attributes at
// all is a configuration error the store surfaces early.
func NewMapStore(fallback map[string]float64) (*MapStore, error) {
	if fallback == nil {
		return nil, fmt.Errorf("features: map store requires a fallback profile")
	}
	return &MapStore{
		byIP:     make(map[string]map[string]float64),
		fallback: cloneAttrs(fallback),
	}, nil
}

// Put registers (or replaces) the attributes for ip, updating the interned
// vector caches in place.
func (s *MapStore) Put(ip string, attrs map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byIP[ip] = cloneAttrs(attrs)
	for schema, vecs := range s.vecBySchema {
		vecs.byIP[ip] = vectorize(attrs, schema)
	}
}

// Attributes implements Source. Known IPs get a private copy; unknown IPs
// share the store's immutable fallback profile, so a flood of cold traffic
// does not allocate one clone per request.
func (s *MapStore) Attributes(ip string, _ time.Time) map[string]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if attrs, ok := s.byIP[ip]; ok {
		return cloneAttrs(attrs)
	}
	return s.fallback
}

// AttributesVector implements VectorSource: one lookup in the interned
// cache and one copy under the read lock, with zero allocations after the
// schema's cache is built (a one-time O(store) pass the first time each
// schema is seen).
func (s *MapStore) AttributesVector(dst []float64, schema *Schema, ip string, _ time.Time) uint64 {
	s.mu.RLock()
	vecs, ok := s.vecBySchema[schema]
	if !ok {
		s.mu.RUnlock()
		vecs = s.buildVectors(schema)
		s.mu.RLock()
	}
	e, ok := vecs.byIP[ip]
	if !ok {
		e = vecs.fallback
	}
	copy(dst, e.v)
	mask := e.mask
	s.mu.RUnlock()
	return mask
}

// buildVectors interns every profile for a schema seen for the first time.
// Under the write lock, so concurrent first-seers do the pass once each at
// worst and Put cannot interleave.
func (s *MapStore) buildVectors(schema *Schema) *storeVectors {
	s.mu.Lock()
	defer s.mu.Unlock()
	if vecs, ok := s.vecBySchema[schema]; ok {
		return vecs
	}
	vecs := &storeVectors{
		byIP:     make(map[string]storeVec, len(s.byIP)),
		fallback: vectorize(s.fallback, schema),
	}
	for ip, attrs := range s.byIP {
		vecs.byIP[ip] = vectorize(attrs, schema)
	}
	if s.vecBySchema == nil {
		s.vecBySchema = make(map[*Schema]*storeVectors, 1)
	}
	for len(s.vecBySchema) >= maxSchemaCaches {
		oldest := s.vecOrder[0]
		s.vecOrder = s.vecOrder[1:]
		delete(s.vecBySchema, oldest)
	}
	s.vecBySchema[schema] = vecs
	s.vecOrder = append(s.vecOrder, schema)
	return vecs
}

// vectorize lays attrs out in schema order, recording which slots the
// profile covers.
func vectorize(attrs map[string]float64, schema *Schema) storeVec {
	e := storeVec{v: make([]float64, len(schema.names))}
	for j, name := range schema.names {
		if val, ok := attrs[name]; ok {
			e.v[j] = val
			e.mask |= 1 << uint(j)
		}
	}
	return e
}

// Known reports whether ip has explicit attributes (vs. the fallback).
func (s *MapStore) Known(ip string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.byIP[ip]
	return ok
}

// Len reports the number of explicitly registered IPs.
func (s *MapStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byIP)
}

// Combined merges a static source with live tracker behavior: static
// attributes first, then behavioral attributes layered on top (behavioral
// names are "live_"-prefixed, so the two never collide in practice; on a
// genuine key collision the behavioral value wins, being fresher).
type Combined struct {
	static    Source
	staticVec VectorSource // nil when the static source lacks vector support
	tracker   *Tracker
}

var (
	_ Source       = (*Combined)(nil)
	_ VectorSource = (*Combined)(nil)
)

// NewCombined builds the merged source. Both parts are required; use the
// parts directly when only one is wanted.
func NewCombined(static Source, tracker *Tracker) (*Combined, error) {
	if static == nil || tracker == nil {
		return nil, fmt.Errorf("features: combined source requires static source and tracker")
	}
	c := &Combined{static: static, tracker: tracker}
	c.staticVec, _ = static.(VectorSource)
	return c, nil
}

// Attributes implements Source. The merge happens in a fresh map: the
// static source's result may be shared state and is never mutated.
func (c *Combined) Attributes(ip string, now time.Time) map[string]float64 {
	static := c.static.Attributes(ip, now)
	out := make(map[string]float64, len(static)+behaviorAttrCount)
	for k, v := range static {
		out[k] = v
	}
	for k, v := range c.tracker.Attributes(ip, now) {
		out[k] = v
	}
	return out
}

// AttributesVector implements VectorSource: the static source fills first,
// then the tracker overlays its behavioral slots (so on a key collision
// the behavioral value wins, matching Attributes). A static source without
// vector support yields zero coverage, which makes the caller fall back to
// the map path.
func (c *Combined) AttributesVector(dst []float64, schema *Schema, ip string, now time.Time) uint64 {
	if c.staticVec == nil {
		return 0
	}
	mask := c.staticVec.AttributesVector(dst, schema, ip, now)
	return mask | c.tracker.AttributesVector(dst, schema, ip, now)
}

func cloneAttrs(in map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
