package features

import (
	"fmt"
	"slices"
	"sync"
	"time"
)

// VectorBatchSource is the batch form of VectorSource: one call fills a
// row of attributes per IP, letting the implementation amortize whatever
// per-call setup the single-IP path repeats — schema→layout resolution,
// read locks, and (for the tracker) shard locks, which are grouped so each
// shard's lock is taken once per batch instead of once per IP.
type VectorBatchSource interface {
	VectorSource

	// AttributesVectorBatch writes ips[i]'s attributes into the row
	// dst[i*stride : i*stride+schema.Len()] and ORs the coverage bits it
	// produced into masks[i]. Rows must be zero-initialized and masks
	// carry coverage across stacked sources (a caller starts them at 0);
	// dst must hold len(ips)*stride elements with stride ≥ schema.Len().
	AttributesVectorBatch(dst []float64, stride int, schema *Schema, ips []string, masks []uint64, now time.Time)
}

var (
	_ VectorBatchSource = (*Tracker)(nil)
	_ VectorBatchSource = (*MapStore)(nil)
	_ VectorBatchSource = (*Combined)(nil)
)

// groupScratch is the pooled index scratch batch operations use to group a
// batch's IPs by shard: idx is sorted stably by shard id, so each shard's
// items form one contiguous run (stable ⇒ per-IP arrival order survives,
// since one IP always lands in one shard).
type groupScratch struct {
	idx   []int32
	shard []uint32
}

var groupScratchPool = sync.Pool{New: func() any { return &groupScratch{} }}

// groupByShard fills the scratch with [0, n) sorted stably by the shard id
// of ip(i).
func (t *Tracker) groupByShard(g *groupScratch, n int, ip func(int) string) {
	g.idx = g.idx[:0]
	g.shard = g.shard[:0]
	for i := 0; i < n; i++ {
		g.idx = append(g.idx, int32(i))
		g.shard = append(g.shard, t.shardIdx(ip(i)))
	}
	sh := g.shard
	slices.SortStableFunc(g.idx, func(a, b int32) int {
		return int(sh[a]) - int(sh[b])
	})
}

// ObserveBatch folds a batch of requests into the tracker, taking each
// touched shard's lock once. The per-IP event order is the batch order
// (grouping is stable), so results are identical to calling Observe per
// request; only cross-IP interleaving — which no per-IP state depends on —
// changes. The batch is validated before anything is applied.
func (t *Tracker) ObserveBatch(reqs []RequestInfo) error {
	for i := range reqs {
		if reqs[i].IP == "" {
			return fmt.Errorf("features: batch request %d without IP", i)
		}
	}
	if len(reqs) == 0 {
		return nil
	}
	g := groupScratchPool.Get().(*groupScratch)
	defer groupScratchPool.Put(g)
	t.groupByShard(g, len(reqs), func(i int) string { return reqs[i].IP })
	t.eachShardRun(g, func(sh *trackerShard, i int32) {
		req := &reqs[i]
		idx := t.entryLocked(sh, req.IP)
		t.observeLocked(sh, idx, req.Path, req.At, req.Failed)
	})
	return nil
}

// RecordVerifyBatch folds a batch of verification outcomes (parallel
// slices; a false ok ignores its difficulty) into the evidence state, one
// shard lock per touched shard. Empty IPs are skipped, matching
// RecordVerify.
func (t *Tracker) RecordVerifyBatch(ips []string, difficulties []int, oks []bool, at time.Time) {
	if len(ips) == 0 {
		return
	}
	g := groupScratchPool.Get().(*groupScratch)
	defer groupScratchPool.Put(g)
	t.groupByShard(g, len(ips), func(i int) string { return ips[i] })
	t.eachShardRun(g, func(sh *trackerShard, i int32) {
		if ips[i] == "" {
			return
		}
		idx := t.entryLocked(sh, ips[i])
		d := 0
		if oks[i] {
			d = difficulties[i]
		}
		t.recordVerifyLocked(sh, idx, d, oks[i], at)
	})
}

// eachShardRun walks the grouped scratch, holding each shard's lock across
// its contiguous run of items. Empty-IP items (shard 0 by hash) still work:
// fn decides what to do with each index.
func (t *Tracker) eachShardRun(g *groupScratch, fn func(sh *trackerShard, i int32)) {
	for start := 0; start < len(g.idx); {
		shardID := g.shard[g.idx[start]]
		end := start
		for end < len(g.idx) && g.shard[g.idx[end]] == shardID {
			end++
		}
		sh := &t.shards[shardID]
		sh.mu.Lock()
		for k := start; k < end; k++ {
			fn(sh, g.idx[k])
		}
		sh.mu.Unlock()
		start = end
	}
}

// AttributesVectorBatch implements VectorBatchSource: the layout resolves
// once for the whole batch and each touched shard's lock is taken once,
// with summaries served cache-aware (WithSummaryStaleness) per entry.
func (t *Tracker) AttributesVectorBatch(dst []float64, stride int, schema *Schema, ips []string, masks []uint64, now time.Time) {
	l := t.layoutFor(schema)
	if l.mask == 0 {
		return
	}
	g := groupScratchPool.Get().(*groupScratch)
	defer groupScratchPool.Put(g)
	t.groupByShard(g, len(ips), func(i int) string { return ips[i] })
	t.eachShardRun(g, func(sh *trackerShard, i int32) {
		masks[i] |= l.mask
		idx, ok := sh.index[ips[i]]
		if !ok {
			return // unknown IP: all-zero behavior, coverage still granted
		}
		s := t.summarizeLocked(&sh.slots[idx], now)
		row := dst[int(i)*stride:]
		for a, j := range l.idx {
			if j >= 0 {
				row[j] = s[a]
			}
		}
	})
}

// AttributesVectorBatch implements VectorBatchSource: one read lock and one
// interned-cache resolution for the whole batch.
func (s *MapStore) AttributesVectorBatch(dst []float64, stride int, schema *Schema, ips []string, masks []uint64, _ time.Time) {
	s.mu.RLock()
	vecs, ok := s.vecBySchema[schema]
	if !ok {
		s.mu.RUnlock()
		vecs = s.buildVectors(schema)
		s.mu.RLock()
	}
	for i, ip := range ips {
		e, ok := vecs.byIP[ip]
		if !ok {
			e = vecs.fallback
		}
		copy(dst[i*stride:i*stride+len(e.v)], e.v)
		masks[i] |= e.mask
	}
	s.mu.RUnlock()
}

// AttributesVectorBatch implements VectorBatchSource: static rows first,
// behavioral overlay second, each side batched when it can be. A static
// source without vector support leaves masks untouched (zero coverage),
// making the caller fall back to the map path per item — the same contract
// as the single-IP AttributesVector.
func (c *Combined) AttributesVectorBatch(dst []float64, stride int, schema *Schema, ips []string, masks []uint64, now time.Time) {
	if c.staticVec == nil {
		return
	}
	if sb, ok := c.staticVec.(VectorBatchSource); ok {
		sb.AttributesVectorBatch(dst, stride, schema, ips, masks, now)
	} else {
		for i, ip := range ips {
			masks[i] |= c.staticVec.AttributesVector(dst[i*stride:i*stride+schema.Len()], schema, ip, now)
		}
	}
	c.tracker.AttributesVectorBatch(dst, stride, schema, ips, masks, now)
}
