package features

import (
	"fmt"
	"testing"
	"time"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := NewSchema("a", "b", "a"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	big := make([]string, MaxSchemaAttrs+1)
	for i := range big {
		big[i] = fmt.Sprintf("attr%d", i)
	}
	if _, err := NewSchema(big...); err == nil {
		t.Error("oversized schema accepted")
	}
	if _, err := NewSchema(big[:MaxSchemaAttrs]...); err != nil {
		t.Errorf("%d-attribute schema rejected: %v", MaxSchemaAttrs, err)
	}
}

func TestSchemaLayout(t *testing.T) {
	s, err := NewSchema("x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Errorf("Len() = %d, want 3", s.Len())
	}
	if j, ok := s.Index("y"); !ok || j != 1 {
		t.Errorf("Index(y) = %d,%v, want 1,true", j, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index reported a missing attribute")
	}
	if s.Name(2) != "z" {
		t.Errorf("Name(2) = %q, want z", s.Name(2))
	}
	if got := s.FullMask(); got != 0b111 {
		t.Errorf("FullMask() = %b, want 111", got)
	}
	names := s.Names()
	names[0] = "mutated"
	if s.Name(0) != "x" {
		t.Error("Names() did not copy")
	}
	if len(s.NewVector()) != 3 {
		t.Error("NewVector length wrong")
	}
}

func TestSchemaFullMaskAt64(t *testing.T) {
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	s, err := NewSchema(names...)
	if err != nil {
		t.Fatal(err)
	}
	if s.FullMask() != ^uint64(0) {
		t.Errorf("64-attr FullMask = %x, want all ones", s.FullMask())
	}
}

func TestMapStoreAttributesVector(t *testing.T) {
	store, err := NewMapStore(map[string]float64{"a": 1, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	store.Put("1.2.3.4", map[string]float64{"a": 10, "b": 20})
	schema, err := NewSchema("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	dst := schema.NewVector()

	if mask := store.AttributesVector(dst, schema, "1.2.3.4", time.Time{}); mask != schema.FullMask() {
		t.Fatalf("known IP mask = %b, want full", mask)
	}
	if dst[0] != 10 || dst[1] != 20 {
		t.Fatalf("known IP vector = %v, want [10 20]", dst)
	}

	if mask := store.AttributesVector(dst, schema, "8.8.8.8", time.Time{}); mask != schema.FullMask() {
		t.Fatalf("fallback mask = %b, want full", mask)
	}
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("fallback vector = %v, want [1 2]", dst)
	}

	// Put invalidates the interned cache.
	store.Put("1.2.3.4", map[string]float64{"a": 99, "b": 100})
	store.AttributesVector(dst, schema, "1.2.3.4", time.Time{})
	if dst[0] != 99 {
		t.Fatalf("stale vector after Put: %v", dst)
	}

	// A profile missing schema attributes yields partial coverage, never a
	// silent zero-as-value.
	store.Put("5.6.7.8", map[string]float64{"a": 7})
	clear(dst)
	if mask := store.AttributesVector(dst, schema, "5.6.7.8", time.Time{}); mask == schema.FullMask() {
		t.Fatal("partial profile claimed full coverage")
	}
}

func TestMapStoreFallbackShared(t *testing.T) {
	store, err := NewMapStore(map[string]float64{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every miss must return the same underlying (read-only) map instead
	// of paying one clone per cold request.
	m1 := store.Attributes("198.18.0.1", time.Time{})
	m2 := store.Attributes("198.18.0.2", time.Time{})
	if fmt.Sprintf("%p", m1) != fmt.Sprintf("%p", m2) {
		t.Error("unknown-IP fallback is cloned per miss; want shared instance")
	}
}

func TestCombinedAttributesVector(t *testing.T) {
	store, err := NewMapStore(map[string]float64{"web_reputation": 80})
	if err != nil {
		t.Fatal(err)
	}
	store.Put("9.9.9.9", map[string]float64{"web_reputation": 15})
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_ = tr.Observe(RequestInfo{IP: "9.9.9.9", Path: "/login", At: at(i), Failed: true})
	}
	combined, err := NewCombined(store, tr)
	if err != nil {
		t.Fatal(err)
	}
	names := append([]string{"web_reputation"}, behaviorAttrNames[:]...)
	schema, err := NewSchema(names...)
	if err != nil {
		t.Fatal(err)
	}
	dst := schema.NewVector()
	mask := combined.AttributesVector(dst, schema, "9.9.9.9", at(4))
	if mask != schema.FullMask() {
		t.Fatalf("combined mask = %b, want full %b", mask, schema.FullMask())
	}
	attrs := combined.Attributes("9.9.9.9", at(4))
	for name, want := range attrs {
		j, ok := schema.Index(name)
		if !ok {
			t.Fatalf("schema missing %q", name)
		}
		if dst[j] != want {
			t.Errorf("vector[%q] = %v, map path %v", name, dst[j], want)
		}
	}
}

// staticOnlySource is a Source without vector support, to verify Combined
// degrades to zero coverage (map-path fallback) instead of mis-reporting.
type staticOnlySource struct{}

func (staticOnlySource) Attributes(string, time.Time) map[string]float64 {
	return map[string]float64{"s": 1}
}

func TestCombinedWithoutVectorStatic(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	combined, err := NewCombined(staticOnlySource{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema("s", AttrRequestRate)
	if err != nil {
		t.Fatal(err)
	}
	dst := schema.NewVector()
	if mask := combined.AttributesVector(dst, schema, "1.1.1.1", at(0)); mask != 0 {
		t.Fatalf("mask = %b, want 0 (map-path fallback)", mask)
	}
}

// TestTrackerShardClamp guards the pre-round clamp: an absurd shard
// request must settle at the cap instead of spinning in ceilPow2.
func TestTrackerShardClamp(t *testing.T) {
	tr, err := NewTracker(WithShards(1 << 62))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Shards(); got != 1<<14 {
		t.Errorf("Shards() = %d, want cap %d", got, 1<<14)
	}
}

// TestMapStoreMultiSchema asserts one store can serve two schemas (e.g.
// two frameworks sharing a feed) without the caches evicting each other.
func TestMapStoreMultiSchema(t *testing.T) {
	store, err := NewMapStore(map[string]float64{"a": 1, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewSchema("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSchema("b")
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := s1.NewVector(), s2.NewVector()
	for i := 0; i < 3; i++ { // alternate; both caches must persist
		if mask := store.AttributesVector(d1, s1, "8.8.8.8", time.Time{}); mask != s1.FullMask() {
			t.Fatalf("schema1 mask = %b", mask)
		}
		if mask := store.AttributesVector(d2, s2, "8.8.8.8", time.Time{}); mask != s2.FullMask() {
			t.Fatalf("schema2 mask = %b", mask)
		}
	}
	if d1[0] != 1 || d1[1] != 2 || d2[0] != 2 {
		t.Fatalf("vectors = %v / %v, want [1 2] / [2]", d1, d2)
	}
	// Incremental Put maintains both caches.
	store.Put("7.7.7.7", map[string]float64{"a": 5, "b": 6})
	store.AttributesVector(d1, s1, "7.7.7.7", time.Time{})
	store.AttributesVector(d2, s2, "7.7.7.7", time.Time{})
	if d1[0] != 5 || d2[0] != 6 {
		t.Fatalf("post-Put vectors = %v / %v, want [5 6] / [6]", d1, d2)
	}
}

// TestTrackerOverShardingKeepsBound asserts that requesting more shards
// than capacity cannot inflate the memory bound.
func TestTrackerOverShardingKeepsBound(t *testing.T) {
	tr, err := NewTracker(WithCapacity(100), WithShards(1024))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Shards(); got > 100 {
		t.Fatalf("Shards() = %d, want ≤ capacity 100", got)
	}
	for i := 0; i < 5000; i++ {
		_ = tr.Observe(RequestInfo{IP: fmt.Sprintf("10.1.%d.%d", i/250, i%250), Path: "/", At: at(i)})
	}
	if got := tr.Tracked(); got > 100 {
		t.Fatalf("Tracked() = %d, want ≤ capacity 100", got)
	}
}
