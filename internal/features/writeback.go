package features

import (
	"fmt"
	"sync"
	"time"
)

// Write-back event kinds. Observations and verification evidence share one
// buffer per shard so a single flush replays an IP's events in exactly the
// order they arrived.
const (
	wbObserve = iota
	wbObserveFailed
	wbVerifyOK
	wbVerifyFail
)

// wbEvent is one deferred tracker mutation. It carries its capture-time
// timestamp, so deferring the apply delays only *visibility* — the EWMA,
// window, and half-life math all run on the original clock reading and
// produce exactly the state a synchronous call would have.
type wbEvent struct {
	ip         string
	path       string
	at         time.Time
	kind       uint8
	difficulty int32
}

// wbShard is one shard's write-back buffer: a tiny mutex guarding an
// append slice, double-buffered so a flush never holds the buffer lock
// while it replays events under the shard lock. The lock order is always
// buffer → shard, never the reverse.
type wbShard struct {
	mu     sync.Mutex
	events []wbEvent
	spare  []wbEvent
	_      [32]byte
}

// appendWB queues ev on shard i's buffer; when the buffer reaches limit it
// is flushed inline, so limit bounds both the buffer's memory and how many
// events visibility can lag by (the time dimension is bounded by whoever
// calls FlushWriteBack periodically). limit < 1 degrades to a synchronous
// apply.
func (t *Tracker) appendWB(i uint32, ev wbEvent, limit int) {
	b := &t.wb[i]
	b.mu.Lock()
	b.events = append(b.events, ev)
	if len(b.events) < limit {
		b.mu.Unlock()
		return
	}
	evs := b.events
	b.events = b.spare[:0]
	b.spare = nil
	b.mu.Unlock()
	t.applyWB(i, evs)
	b.mu.Lock()
	if b.spare == nil {
		b.spare = evs[:0]
	}
	b.mu.Unlock()
}

// applyWB replays a drained event slice into shard i under its lock, taken
// once for the whole slice. Consecutive events for one IP (the common case
// in a flush: a client's observe/verify pairs land adjacently) reuse the
// entry lookup.
func (t *Tracker) applyWB(i uint32, evs []wbEvent) {
	if len(evs) == 0 {
		return
	}
	sh := &t.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// The slab index (not a slot pointer — slab growth moves slots) is
	// reused only across *consecutive* same-IP events: an interleaved
	// entryLocked for another IP could evict the cached entry and recycle
	// its slot, but then the IP comparison forces a fresh lookup.
	idx := noSlot
	lastIP := ""
	for k := range evs {
		ev := &evs[k]
		if idx == noSlot || ev.ip != lastIP {
			idx = t.entryLocked(sh, ev.ip)
			lastIP = ev.ip
		}
		switch ev.kind {
		case wbObserve:
			t.observeLocked(sh, idx, ev.path, ev.at, false)
		case wbObserveFailed:
			t.observeLocked(sh, idx, ev.path, ev.at, true)
		case wbVerifyOK:
			t.recordVerifyLocked(sh, idx, int(ev.difficulty), true, ev.at)
		case wbVerifyFail:
			t.recordVerifyLocked(sh, idx, 0, false, ev.at)
		}
	}
}

// ObserveBuffered is Observe through the write-back buffer: the request is
// validated and queued at ~append cost, and folded into the entry at the
// next flush (inline once the shard's buffer holds limit events, or when
// FlushWriteBack runs). The event carries req.At, so the applied state is
// identical to a synchronous Observe — only its visibility to summarize
// lags, bounded by limit and the caller's flush interval.
func (t *Tracker) ObserveBuffered(req RequestInfo, limit int) error {
	if req.IP == "" {
		return fmt.Errorf("features: request without IP")
	}
	if limit < 2 {
		return t.Observe(req)
	}
	kind := uint8(wbObserve)
	if req.Failed {
		kind = wbObserveFailed
	}
	t.appendWB(t.shardIdx(req.IP), wbEvent{
		ip:   req.IP,
		path: req.Path,
		at:   req.At,
		kind: kind,
	}, limit)
	return nil
}

// RecordVerifyBuffered is RecordVerify through the write-back buffer, with
// the same deferred-visibility contract as ObserveBuffered.
func (t *Tracker) RecordVerifyBuffered(ip string, difficulty int, ok bool, at time.Time, limit int) {
	if ip == "" {
		return
	}
	if limit < 2 {
		t.RecordVerify(ip, difficulty, ok, at)
		return
	}
	ev := wbEvent{ip: ip, at: at, kind: wbVerifyFail}
	if ok {
		ev.kind, ev.difficulty = wbVerifyOK, int32(difficulty)
	}
	t.appendWB(t.shardIdx(ip), ev, limit)
}

// FlushWriteBack drains every shard's write-back buffer into its entries.
// Periodic callers (core's evidence flush loop) bound the staleness of
// buffered events in time; the per-shard limit bounds it in count.
func (t *Tracker) FlushWriteBack() {
	for i := range t.wb {
		b := &t.wb[i]
		b.mu.Lock()
		if len(b.events) == 0 {
			b.mu.Unlock()
			continue
		}
		evs := b.events
		b.events = b.spare[:0]
		b.spare = nil
		b.mu.Unlock()
		t.applyWB(uint32(i), evs)
		b.mu.Lock()
		if b.spare == nil {
			b.spare = evs[:0]
		}
		b.mu.Unlock()
	}
}

// PendingWriteBack reports how many buffered events await a flush, summed
// across shards (tests and flush-loop instrumentation).
func (t *Tracker) PendingWriteBack() int {
	total := 0
	for i := range t.wb {
		b := &t.wb[i]
		b.mu.Lock()
		total += len(b.events)
		b.mu.Unlock()
	}
	return total
}
