package features

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// applyEvent replays one randomized event either synchronously or through
// the write-back buffer, so the property test drives both trackers from
// one event stream.
func applyEvent(t *testing.T, tr *Tracker, buffered bool, limit int, ev wbEvent) {
	t.Helper()
	switch ev.kind {
	case wbObserve, wbObserveFailed:
		req := RequestInfo{IP: ev.ip, Path: ev.path, At: ev.at, Failed: ev.kind == wbObserveFailed}
		var err error
		if buffered {
			err = tr.ObserveBuffered(req, limit)
		} else {
			err = tr.Observe(req)
		}
		if err != nil {
			t.Fatalf("observe: %v", err)
		}
	case wbVerifyOK:
		if buffered {
			tr.RecordVerifyBuffered(ev.ip, int(ev.difficulty), true, ev.at, limit)
		} else {
			tr.RecordVerify(ev.ip, int(ev.difficulty), true, ev.at)
		}
	case wbVerifyFail:
		if buffered {
			tr.RecordVerifyBuffered(ev.ip, 0, false, ev.at, limit)
		} else {
			tr.RecordVerify(ev.ip, 0, false, ev.at)
		}
	}
}

// TestWriteBackEquivalence is the bounded-staleness property test: a
// random stream of observations and verification evidence applied through
// the write-back buffers, once flushed, must leave the tracker in exactly
// the state synchronous application produces — for every IP and every
// attribute. Buffering defers visibility; it never changes state.
func TestWriteBackEquivalence(t *testing.T) {
	opts := func() []TrackerOption {
		return []TrackerOption{
			WithWindow(30*time.Second, 6),
			WithEvidenceHalfLife(20 * time.Second),
			WithShards(4),
		}
	}
	for _, limit := range []int{2, 7, 64, 100000} {
		t.Run(fmt.Sprintf("limit=%d", limit), func(t *testing.T) {
			sync, err := NewTracker(opts()...)
			if err != nil {
				t.Fatal(err)
			}
			buf, err := NewTracker(opts()...)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewPCG(42, uint64(limit)))
			ips := make([]string, 17)
			for i := range ips {
				ips[i] = fmt.Sprintf("203.0.113.%d", i)
			}
			paths := []string{"/", "/a", "/b/c", "/login"}
			base := at(0)
			for i := 0; i < 5000; i++ {
				ev := wbEvent{
					ip: ips[rng.IntN(len(ips))],
					// Non-decreasing timestamps, as in live traffic.
					at: base.Add(time.Duration(i) * 7 * time.Millisecond),
				}
				switch rng.IntN(10) {
				case 0:
					ev.kind = wbVerifyOK
					ev.difficulty = int32(1 + rng.IntN(20))
				case 1:
					ev.kind = wbVerifyFail
				case 2:
					ev.kind = wbObserveFailed
					ev.path = paths[rng.IntN(len(paths))]
				default:
					ev.kind = wbObserve
					ev.path = paths[rng.IntN(len(paths))]
				}
				applyEvent(t, sync, false, limit, ev)
				applyEvent(t, buf, true, limit, ev)
			}

			buf.FlushWriteBack()
			if pending := buf.PendingWriteBack(); pending != 0 {
				t.Fatalf("%d events still pending after flush", pending)
			}
			now := base.Add(40 * time.Second)
			for _, ip := range ips {
				want := sync.Attributes(ip, now)
				got := buf.Attributes(ip, now)
				if len(got) != len(want) {
					t.Errorf("ip %s: buffered state %v, synchronous state %v", ip, got, want)
					continue
				}
				for k, w := range want {
					g, ok := got[k]
					if !ok {
						t.Errorf("ip %s: attribute %s missing from buffered state", ip, k)
						continue
					}
					if k == AttrPathEntropy {
						// Entropy sums per-path terms in map iteration
						// order, so the last ULP wobbles on every read —
						// on a single tracker too. The counts it is
						// computed from are compared exactly above.
						if diff := math.Abs(g - w); diff > 1e-9*math.Max(1, math.Abs(w)) {
							t.Errorf("ip %s: %s = %v, want %v", ip, k, g, w)
						}
						continue
					}
					if g != w {
						t.Errorf("ip %s: %s = %v, want %v", ip, k, g, w)
					}
				}
			}
		})
	}
}

// TestWriteBackSizeBound pins the count dimension of the staleness bound:
// a shard's buffer flushes itself inline at limit events, so no more than
// limit-1 events per shard are ever invisible to summarize.
func TestWriteBackSizeBound(t *testing.T) {
	const limit = 8
	tr, err := NewTracker(WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*limit; i++ {
		if err := tr.ObserveBuffered(RequestInfo{IP: "198.51.100.7", At: at(i)}, limit); err != nil {
			t.Fatal(err)
		}
		if pending := tr.PendingWriteBack(); pending >= limit {
			t.Fatalf("after %d events: %d pending, bound is %d", i+1, pending, limit-1)
		}
	}
}

// TestWriteBackDegradesToSynchronous pins the limit < 2 escape hatch: a
// degenerate limit routes straight to the synchronous write, leaving
// nothing buffered.
func TestWriteBackDegradesToSynchronous(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ObserveBuffered(RequestInfo{IP: "198.51.100.8", At: at(0)}, 1); err != nil {
		t.Fatal(err)
	}
	tr.RecordVerifyBuffered("198.51.100.8", 4, true, at(1), 0)
	if pending := tr.PendingWriteBack(); pending != 0 {
		t.Fatalf("%d events pending; degenerate limits must apply synchronously", pending)
	}
	if got := tr.Attributes("198.51.100.8", at(2))[AttrRequestRate]; got == 0 {
		t.Error("synchronous fallback did not reach the entry")
	}
}
