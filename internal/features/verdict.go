package features

// Verdict is a calibrated scoring outcome: the reputation score plus the
// scorer's confidence in it. A bare score says "how malicious does this
// client look"; the confidence says "how sure is the model" — two different
// questions a policy can (and should) treat differently. A misscored
// legitimate client typically produces a high score at low confidence (it
// sits in the overlap region between the training classes), while a
// genuinely flagged client produces a high score at high confidence (it
// sits inside a malicious cluster).
type Verdict struct {
	// Score is the reputation score in [0, 10]; higher = less trustworthy.
	Score float64

	// Confidence is the scorer's calibrated certainty in Score, in [0, 1].
	// 1 means the score should be enforced at face value; values near 0
	// mean the model cannot separate this client from the opposite class.
	Confidence float64
}

// VerdictScorer is the confidence-carrying fast path of a scorer: in
// addition to the plain vector score it reports how certain the model is.
// The core framework prefers this path when the scorer provides it and
// threads the confidence through to confidence-aware policies
// (policy.ConfidenceAware); plain VectorScorers are scored at an implied
// confidence of 1, preserving their exact pre-verdict behavior.
type VerdictScorer interface {
	VectorScorer

	// VerdictVector scores a raw-unit vector laid out in Schema order,
	// returning both the score and the model's calibrated confidence in
	// it. Like ScoreVector, the vector may be used as scratch space; its
	// contents are unspecified on return.
	VerdictVector(v []float64) (Verdict, error)
}
