package features

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// checkSlabInvariants walks every shard's slab structures and fails on any
// violation of the layout's core invariants: the index maps IPs to
// distinct, in-range slots whose record carries the same IP back; the
// freelist is acyclic, in range, and disjoint from live slots (a freelist
// that double-assigned a slot would show up here as a live slot on the
// free chain or two IPs on one slot); every allocated slot is either live
// or free; and the LRU list is a consistent doubly-linked walk of exactly
// the live slots.
func checkSlabInvariants(t *testing.T, tr *Tracker) {
	t.Helper()
	for si := range tr.shards {
		sh := &tr.shards[si]
		sh.mu.Lock()
		live := make(map[uint32]string, len(sh.index))
		for ip, idx := range sh.index {
			if int(idx) >= len(sh.slots) {
				t.Fatalf("shard %d: index[%q] = %d out of range (%d slots)", si, ip, idx, len(sh.slots))
			}
			if prev, dup := live[idx]; dup {
				t.Fatalf("shard %d: slot %d double-assigned to %q and %q", si, idx, prev, ip)
			}
			live[idx] = ip
			if got := sh.slots[idx].ip; got != ip {
				t.Fatalf("shard %d: slot %d holds ip %q, index says %q", si, idx, got, ip)
			}
		}
		if len(sh.index) > sh.cap {
			t.Fatalf("shard %d: %d entries exceed quota %d", si, len(sh.index), sh.cap)
		}
		freeCount := 0
		for idx := sh.free; idx != noSlot; idx = sh.slots[idx].lruNext {
			if int(idx) >= len(sh.slots) {
				t.Fatalf("shard %d: freelist node %d out of range", si, idx)
			}
			if ip, isLive := live[idx]; isLive {
				t.Fatalf("shard %d: slot %d on the freelist while live for %q", si, idx, ip)
			}
			freeCount++
			if freeCount > len(sh.slots) {
				t.Fatalf("shard %d: freelist cycle", si)
			}
		}
		if freeCount+len(sh.index) != len(sh.slots) {
			t.Fatalf("shard %d: %d free + %d live != %d allocated slots",
				si, freeCount, len(sh.index), len(sh.slots))
		}
		lruCount := 0
		prev := noSlot
		for idx := sh.lruHead; idx != noSlot; idx = sh.slots[idx].lruNext {
			if got := sh.slots[idx].lruPrev; got != prev {
				t.Fatalf("shard %d: slot %d lruPrev = %d, want %d", si, idx, got, prev)
			}
			if _, isLive := live[idx]; !isLive {
				t.Fatalf("shard %d: LRU node %d is not a live slot", si, idx)
			}
			prev = idx
			lruCount++
			if lruCount > len(sh.index) {
				t.Fatalf("shard %d: LRU cycle", si)
			}
		}
		if lruCount != len(sh.index) || sh.lruTail != prev {
			t.Fatalf("shard %d: LRU walk saw %d of %d live slots (tail %d, want %d)",
				si, lruCount, len(sh.index), sh.lruTail, prev)
		}
		sh.mu.Unlock()
	}
}

// TestTrackerSlabFreelistChurn drives a single-shard tracker far past its
// capacity so every insert after the warm-up evicts and recycles a slot,
// interleaving re-observes of surviving IPs (LRU moves) and verifications,
// and checks the slab invariants after every event. This is the
// deterministic freelist-never-double-assigns test.
func TestTrackerSlabFreelistChurn(t *testing.T) {
	tr, err := NewTracker(WithCapacity(8), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Unix(1_700_000_000, 0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		at = at.Add(time.Duration(rng.Intn(50)+1) * time.Millisecond)
		ip := fmt.Sprintf("10.9.0.%d", rng.Intn(40)) // 5× capacity: constant churn
		switch rng.Intn(3) {
		case 0, 1:
			if err := tr.Observe(RequestInfo{IP: ip, Path: "/p", At: at, Failed: i%3 == 0}); err != nil {
				t.Fatal(err)
			}
		case 2:
			tr.RecordVerify(ip, 10, i%2 == 0, at)
		}
		checkSlabInvariants(t, tr)
	}
	st := tr.StatsSnapshot()
	if st.Entries != 8 || st.Slots != 8 {
		t.Fatalf("after churn: %d entries, %d slots, want 8 and 8", st.Entries, st.Slots)
	}
	if st.Evictions == 0 {
		t.Fatal("churn produced no evictions")
	}
}

// TestTrackerSlabHammer hammers one small tracker from several goroutines —
// observes, verifications, summaries, exports, and stats — so the race
// detector sees eviction, slot recycling, and slab growth under real
// contention; the slab invariants are checked once the dust settles.
func TestTrackerSlabHammer(t *testing.T) {
	tr, err := NewTracker(WithCapacity(256), WithShards(4), WithMaxPaths(4))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var rows []EvidenceRow
			var since uint64
			for i := 0; i < 4000; i++ {
				ip := fmt.Sprintf("10.8.%d.%d", rng.Intn(8), rng.Intn(128)) // 4× capacity
				at := base.Add(time.Duration(i*workers+w) * time.Millisecond)
				switch rng.Intn(10) {
				case 0:
					tr.RecordVerify(ip, rng.Intn(20)+1, rng.Intn(2) == 0, at)
				case 1:
					_ = tr.Attributes(ip, at)
				case 2:
					rows, since, _ = tr.ExportEvidenceSince(rows[:0], 0, since)
				case 3:
					_ = tr.StatsSnapshot()
				default:
					_ = tr.Observe(RequestInfo{
						IP: ip, Path: fmt.Sprintf("/p%d", rng.Intn(6)),
						At: at, Failed: rng.Intn(4) == 0,
					})
				}
			}
		}(w)
	}
	wg.Wait()
	checkSlabInvariants(t, tr)
	if st := tr.StatsSnapshot(); st.Entries != 256 {
		t.Fatalf("hammered tracker holds %d entries, want full capacity 256", st.Entries)
	}
}

// refTrackerModel is a straight-line reference implementation of the
// tracker's per-IP semantics — plain maps, insertion-ordered path slices,
// float64 windows, no slabs, no caches, no eviction — mirroring the
// arithmetic of the pre-slab layout expression for expression so results
// must match bit for bit.
type refTrackerModel struct {
	span     time.Duration
	buckets  int
	bucketNS int64
	maxPaths int
	halfLife time.Duration
	entries  map[string]*refTrackerEntry
}

type refTrackerEntry struct {
	reqCounts, failCounts [maxSlotBuckets]float64
	reqStamps, failStamps [maxSlotBuckets]int64
	paths                 []pathSpillEnt // insertion-ordered, matching slab order
	overflow              uint64
	seen                  bool
	lastSeenNS            int64
	interArrival          float64
	total, totalFailed    uint64
	solveCredit           float64
	creditAtNS            int64
	failStreak            uint64
}

func (m *refTrackerModel) entry(ip string) *refTrackerEntry {
	e, ok := m.entries[ip]
	if !ok {
		e = &refTrackerEntry{}
		m.entries[ip] = e
	}
	return e
}

func refWinAdd(counts *[maxSlotBuckets]float64, stamps *[maxSlotBuckets]int64, n int, bucketNS, atNS int64) {
	epoch := atNS / bucketNS
	slot := int(((epoch % int64(n)) + int64(n)) % int64(n))
	if stamps[slot] != epoch {
		counts[slot] = 0
		stamps[slot] = epoch
	}
	counts[slot]++
}

func refWinSum(counts *[maxSlotBuckets]float64, stamps *[maxSlotBuckets]int64, n int, bucketNS, nowNS int64) float64 {
	newest := nowNS / bucketNS
	oldest := newest - int64(n) + 1
	var total float64
	for i := 0; i < n; i++ {
		if e := stamps[i]; e >= oldest && e <= newest {
			total += counts[i]
		}
	}
	return total
}

func (m *refTrackerModel) observe(ip, path string, at time.Time, failed bool) {
	e := m.entry(ip)
	atNS := at.UnixNano()
	if e.seen {
		gapMS := float64(atNS-e.lastSeenNS) / float64(time.Millisecond)
		if gapMS < 0 {
			gapMS = 0
		}
		const alpha = 0.3
		if e.total <= 1 {
			e.interArrival = gapMS
		} else {
			e.interArrival = alpha*gapMS + (1-alpha)*e.interArrival
		}
	}
	e.seen = true
	e.lastSeenNS = atNS
	e.total++
	refWinAdd(&e.reqCounts, &e.reqStamps, m.buckets, m.bucketNS, atNS)
	if failed {
		refWinAdd(&e.failCounts, &e.failStamps, m.buckets, m.bucketNS, atNS)
		e.totalFailed++
	}
	h := pathHash64(path)
	for i := range e.paths {
		if e.paths[i].hash == h {
			e.paths[i].hits++
			return
		}
	}
	if len(e.paths) >= m.maxPaths {
		e.overflow++
		return
	}
	e.paths = append(e.paths, pathSpillEnt{hash: h, hits: 1})
}

func (m *refTrackerModel) recordVerify(ip string, difficulty int, ok bool, at time.Time) {
	e := m.entry(ip)
	e.solveCredit = decayCreditNS(e.solveCredit, e.creditAtNS, at.UnixNano(), m.halfLife)
	e.creditAtNS = at.UnixNano()
	if ok {
		e.solveCredit += float64(difficulty)
		e.failStreak = 0
	} else {
		e.failStreak++
	}
}

func (m *refTrackerModel) summarize(ip string, now time.Time) [behaviorAttrCount]float64 {
	var s [behaviorAttrCount]float64
	e, ok := m.entries[ip]
	if !ok {
		return s
	}
	nowNS := now.UnixNano()
	reqs := refWinSum(&e.reqCounts, &e.reqStamps, m.buckets, m.bucketNS, nowNS)
	s[0] = reqs / m.span.Seconds()
	if reqs > 0 {
		s[1] = refWinSum(&e.failCounts, &e.failStamps, m.buckets, m.bucketNS, nowNS) / reqs
	}
	s[2] = float64(len(e.paths))
	total := e.overflow
	for i := range e.paths {
		total += e.paths[i].hits
	}
	if total > 0 {
		var h float64
		acc := func(n uint64) {
			if n == 0 {
				return
			}
			p := float64(n) / float64(total)
			h -= p * math.Log2(p)
		}
		for i := range e.paths {
			acc(e.paths[i].hits)
		}
		acc(e.overflow)
		s[3] = h
	}
	s[4] = e.interArrival
	s[5] = float64(e.total)
	s[6] = decayCreditNS(e.solveCredit, e.creditAtNS, nowNS, m.halfLife)
	s[7] = float64(e.failStreak)
	if e.total > 0 {
		s[8] = float64(e.totalFailed) / float64(e.total)
	}
	return s
}

// TestTrackerSlabTraceEquivalence replays a 10k-event random trace —
// observations with failures, verification outcomes, window expiry across
// hours of simulated time, inline path-table spill and overflow — into
// both the slab tracker and the reference model, and requires every
// queried attribute to match bit for bit throughout and at the end. The
// float32 window counts only ever accumulate +1, so they are exact and
// the slab layout has no licence to differ in even the last ulp.
func TestTrackerSlabTraceEquivalence(t *testing.T) {
	tr, err := NewTracker(WithMaxPaths(6)) // inline(4) + spill(2), then overflow
	if err != nil {
		t.Fatal(err)
	}
	model := &refTrackerModel{
		span:     tr.span,
		buckets:  tr.buckets,
		bucketNS: tr.bucketNS,
		maxPaths: tr.maxPaths,
		halfLife: tr.halfLife,
		entries:  make(map[string]*refTrackerEntry),
	}
	ips := make([]string, 48)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.7.%d.%d", i/16, i%16)
	}
	paths := make([]string, 10)
	for i := range paths {
		paths[i] = fmt.Sprintf("/api/v%d", i)
	}
	compare := func(step int, ip string, at time.Time) {
		t.Helper()
		got := tr.Attributes(ip, at)
		want := model.summarize(ip, at)
		for i, name := range behaviorAttrNames {
			if got[name] != want[i] {
				t.Fatalf("step %d, ip %s: %s = %v, want %v", step, ip, name, got[name], want[i])
			}
		}
	}

	rng := rand.New(rand.NewSource(42))
	at := time.Unix(1_700_000_000, 0)
	for step := 0; step < 10_000; step++ {
		at = at.Add(time.Duration(rng.Intn(500_000)) * time.Microsecond)
		ip := ips[rng.Intn(len(ips))]
		if rng.Intn(5) == 0 {
			diff, ok := rng.Intn(20)+1, rng.Intn(5) < 3
			tr.RecordVerify(ip, diff, ok, at)
			model.recordVerify(ip, diff, ok, at)
		} else {
			path, failed := paths[rng.Intn(len(paths))], rng.Intn(4) == 0
			if err := tr.Observe(RequestInfo{IP: ip, Path: path, At: at, Failed: failed}); err != nil {
				t.Fatal(err)
			}
			model.observe(ip, path, at, failed)
		}
		if rng.Intn(10) == 0 {
			compare(step, ips[rng.Intn(len(ips))], at)
		}
	}
	for _, ip := range ips {
		compare(10_000, ip, at)
	}
	// The trace must actually have spilled and overflowed path tables,
	// or the equivalence proved less than it claims.
	spilled, overflowed := false, false
	for _, e := range model.entries {
		if len(e.paths) > inlinePaths {
			spilled = true
		}
		if e.overflow > 0 {
			overflowed = true
		}
	}
	if !spilled || !overflowed {
		t.Fatalf("trace too tame: spill=%v overflow=%v, want both", spilled, overflowed)
	}
}

// TestTrackerDeltaExportReplay pins the delta-export contract under churn
// heavy enough to overflow and compact the dirty log: a consumer that
// starts from a full export and folds in every subsequent export (delta
// or fallback-full) by replacing rows per IP must end byte-equal, row for
// row, with a fresh full export — for every IP the tracker still holds.
func TestTrackerDeltaExportReplay(t *testing.T) {
	tr, err := NewTracker(WithCapacity(20), WithShards(1)) // dirtyLimit = 20
	if err != nil {
		t.Fatal(err)
	}
	view := make(map[string]EvidenceRow)
	apply := func(rows []EvidenceRow, delta bool) {
		if !delta {
			// A full export is authoritative: rows absent from it carry
			// no evidence (or were evicted) and must not linger.
			for ip := range view {
				delete(view, ip)
			}
		}
		for _, r := range rows {
			view[r.IP] = r
		}
	}

	rows, since, delta := tr.ExportEvidenceSince(nil, 0, 0)
	if delta {
		t.Fatal("since=0 export claimed to be a delta")
	}
	apply(rows, delta)

	rng := rand.New(rand.NewSource(11))
	at := time.Unix(1_700_000_000, 0)
	deltas, fulls := 0, 0
	for round := 0; round < 60; round++ {
		// More distinct dirty entries per round than the dirty log holds,
		// with eviction churn leaving tombstones in it.
		for i := 0; i < 30; i++ {
			at = at.Add(time.Millisecond)
			ip := fmt.Sprintf("10.6.0.%d", rng.Intn(100))
			if rng.Intn(3) == 0 {
				tr.RecordVerify(ip, 12, true, at)
			} else if err := tr.Observe(RequestInfo{IP: ip, Path: "/p", At: at, Failed: i%2 == 0}); err != nil {
				t.Fatal(err)
			}
		}
		rows, since, delta = tr.ExportEvidenceSince(rows[:0], 0, since)
		apply(rows, delta)
		if delta {
			deltas++
		} else {
			fulls++
		}
	}
	if deltas == 0 {
		t.Error("no export took the delta path")
	}

	full := tr.ExportEvidence(nil, 0)
	for _, want := range full {
		got, ok := view[want.IP]
		if !ok {
			t.Fatalf("replayed view missing %s", want.IP)
		}
		if got != want {
			t.Fatalf("replayed view for %s = %+v, want %+v", want.IP, got, want)
		}
	}
	t.Logf("replay converged over %d delta and %d full exports (%d live rows)", deltas, fulls, len(full))
}

// TestTrackerDeltaWatermarkMonotone pins two cheap API contracts: an
// up-to-date consumer receives an empty delta (not a full export), and
// the watermark never moves backwards.
func TestTrackerDeltaWatermarkMonotone(t *testing.T) {
	tr, err := NewTracker(WithCapacity(64), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Unix(1_700_000_000, 0)
	tr.RecordVerify("10.5.0.1", 8, true, at)
	rows, w1, _ := tr.ExportEvidenceSince(nil, 0, 0)
	if len(rows) != 1 {
		t.Fatalf("full export = %d rows, want 1", len(rows))
	}
	rows, w2, delta := tr.ExportEvidenceSince(rows[:0], 0, w1)
	if !delta || len(rows) != 0 {
		t.Fatalf("idle re-export: delta=%v rows=%d, want an empty delta", delta, len(rows))
	}
	if w2 < w1 {
		t.Fatalf("watermark moved backwards: %d → %d", w1, w2)
	}
	tr.RecordVerify("10.5.0.2", 8, true, at.Add(time.Second))
	rows, w3, delta := tr.ExportEvidenceSince(rows[:0], 0, w2)
	if !delta || len(rows) != 1 || rows[0].IP != "10.5.0.2" {
		t.Fatalf("incremental export: delta=%v rows=%+v, want just 10.5.0.2", delta, rows)
	}
	if w3 < w2 {
		t.Fatalf("watermark moved backwards: %d → %d", w2, w3)
	}
}
