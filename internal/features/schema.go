package features

import (
	"fmt"
	"time"
)

// MaxSchemaAttrs is the largest attribute count a Schema supports. Slot
// coverage on the vector fast path is tracked with a uint64 bitmask, so a
// schema holds at most 64 attributes; models with more fall back to the
// map-based path.
const MaxSchemaAttrs = 64

// Schema is an immutable, interned attribute layout: a fixed ordering of
// attribute names with O(1) name→index lookup. It lets the serving hot
// path represent a client's attributes as a flat []float64 ("vector")
// indexed by slot instead of allocating a map[string]float64 per request.
//
// A Schema is typically owned by the scorer (its canonical attribute
// order) and shared by reference with every source that fills vectors for
// it; sources key their per-schema caches on the pointer identity.
type Schema struct {
	names []string
	index map[string]int
	full  uint64
}

// NewSchema builds a schema over the given attribute names, in order.
// Names must be non-empty, unique, and at most MaxSchemaAttrs in number.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("features: schema needs at least one attribute")
	}
	if len(names) > MaxSchemaAttrs {
		return nil, fmt.Errorf("features: schema holds at most %d attributes, got %d",
			MaxSchemaAttrs, len(names))
	}
	s := &Schema{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, name := range s.names {
		if name == "" {
			return nil, fmt.Errorf("features: schema attribute %d is empty", i)
		}
		if _, dup := s.index[name]; dup {
			return nil, fmt.Errorf("features: duplicate schema attribute %q", name)
		}
		s.index[name] = i
	}
	if len(names) == MaxSchemaAttrs {
		s.full = ^uint64(0)
	} else {
		s.full = uint64(1)<<uint(len(names)) - 1
	}
	return s, nil
}

// Len reports the number of attributes in the schema.
func (s *Schema) Len() int { return len(s.names) }

// Name reports the attribute name at slot i.
func (s *Schema) Name(i int) string { return s.names[i] }

// Names returns the attribute order as a copy.
func (s *Schema) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Index reports the slot of name, and whether the schema contains it.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// FullMask is the coverage bitmask with every slot set; a VectorSource
// that returns it from AttributesVector produced every attribute.
func (s *Schema) FullMask() uint64 { return s.full }

// NewVector allocates a zeroed vector with one slot per attribute.
func (s *Schema) NewVector() []float64 { return make([]float64, len(s.names)) }

// VectorSource is the allocation-free fast path of Source: instead of
// building a map per request, the source writes attribute values into a
// caller-owned vector laid out by a Schema.
type VectorSource interface {
	Source

	// AttributesVector writes ip's attributes into dst, which must hold
	// schema.Len() zero-initialized elements, and returns the bitmask of
	// schema slots it produced (bit j set ⇒ dst[j] written). The caller
	// may trust dst for scoring only when the mask equals
	// schema.FullMask(); on partial coverage it must fall back to the
	// map-based Attributes path, which reports what is missing.
	AttributesVector(dst []float64, schema *Schema, ip string, now time.Time) uint64
}

// VectorScorer is the allocation-free fast path of a scorer: it publishes
// the attribute layout it expects and scores flat vectors in that layout.
type VectorScorer interface {
	// Schema reports the attribute layout ScoreVector expects. A nil
	// schema disables the fast path (e.g. a model with more attributes
	// than MaxSchemaAttrs).
	Schema() *Schema

	// ScoreVector scores a raw-unit vector laid out in Schema order. The
	// scorer may use v as scratch space; its contents are unspecified on
	// return.
	ScoreVector(v []float64) (float64, error)
}
