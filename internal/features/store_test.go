package features

import (
	"testing"
	"time"
)

func TestNewMapStoreRequiresFallback(t *testing.T) {
	if _, err := NewMapStore(nil); err == nil {
		t.Fatal("nil fallback accepted")
	}
}

func TestMapStoreLookupAndFallback(t *testing.T) {
	s, err := NewMapStore(map[string]float64{"spam_ratio": 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("1.1.1.1", map[string]float64{"spam_ratio": 0.9})

	if got := s.Attributes("1.1.1.1", time.Time{})["spam_ratio"]; got != 0.9 {
		t.Errorf("known IP spam_ratio = %v, want 0.9", got)
	}
	if got := s.Attributes("8.8.8.8", time.Time{})["spam_ratio"]; got != 0.01 {
		t.Errorf("unknown IP spam_ratio = %v, want fallback 0.01", got)
	}
	if !s.Known("1.1.1.1") || s.Known("8.8.8.8") {
		t.Error("Known() wrong")
	}
	if s.Len() != 1 {
		t.Errorf("Len() = %d, want 1", s.Len())
	}
}

func TestMapStoreReturnsCopies(t *testing.T) {
	s, err := NewMapStore(map[string]float64{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	src := map[string]float64{"x": 5}
	s.Put("a", src)
	src["x"] = 99 // caller mutates after Put
	if got := s.Attributes("a", time.Time{})["x"]; got != 5 {
		t.Fatalf("Put did not copy: got %v", got)
	}
	out := s.Attributes("a", time.Time{})
	out["x"] = 123 // caller mutates returned map
	if got := s.Attributes("a", time.Time{})["x"]; got != 5 {
		t.Fatalf("Attributes did not copy: got %v", got)
	}
}

func TestCombinedValidation(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCombined(nil, tr); err == nil {
		t.Error("nil static accepted")
	}
	store, err := NewMapStore(map[string]float64{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCombined(store, nil); err == nil {
		t.Error("nil tracker accepted")
	}
}

func TestCombinedMergesStaticAndLive(t *testing.T) {
	store, err := NewMapStore(map[string]float64{"web_reputation": 80})
	if err != nil {
		t.Fatal(err)
	}
	store.Put("9.9.9.9", map[string]float64{"web_reputation": 15})
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tr.Observe(RequestInfo{IP: "9.9.9.9", Path: "/login", At: at(i), Failed: true}); err != nil {
			t.Fatal(err)
		}
	}
	combined, err := NewCombined(store, tr)
	if err != nil {
		t.Fatal(err)
	}
	attrs := combined.Attributes("9.9.9.9", at(4))
	if attrs["web_reputation"] != 15 {
		t.Errorf("static attr lost: %v", attrs["web_reputation"])
	}
	if attrs[AttrTotalRequests] != 4 {
		t.Errorf("live attr lost: %v", attrs[AttrTotalRequests])
	}
	if attrs[AttrFailRatio] != 1 {
		t.Errorf("fail ratio = %v, want 1", attrs[AttrFailRatio])
	}
}
