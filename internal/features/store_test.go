package features

import (
	"testing"
	"time"
)

func TestNewMapStoreRequiresFallback(t *testing.T) {
	if _, err := NewMapStore(nil); err == nil {
		t.Fatal("nil fallback accepted")
	}
}

func TestMapStoreLookupAndFallback(t *testing.T) {
	s, err := NewMapStore(map[string]float64{"spam_ratio": 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("1.1.1.1", map[string]float64{"spam_ratio": 0.9})

	if got := s.Attributes("1.1.1.1", time.Time{})["spam_ratio"]; got != 0.9 {
		t.Errorf("known IP spam_ratio = %v, want 0.9", got)
	}
	if got := s.Attributes("8.8.8.8", time.Time{})["spam_ratio"]; got != 0.01 {
		t.Errorf("unknown IP spam_ratio = %v, want fallback 0.01", got)
	}
	if !s.Known("1.1.1.1") || s.Known("8.8.8.8") {
		t.Error("Known() wrong")
	}
	if s.Len() != 1 {
		t.Errorf("Len() = %d, want 1", s.Len())
	}
}

func TestMapStoreReturnsCopies(t *testing.T) {
	s, err := NewMapStore(map[string]float64{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	src := map[string]float64{"x": 5}
	s.Put("a", src)
	src["x"] = 99 // caller mutates after Put
	if got := s.Attributes("a", time.Time{})["x"]; got != 5 {
		t.Fatalf("Put did not copy: got %v", got)
	}
	out := s.Attributes("a", time.Time{})
	out["x"] = 123 // caller mutates returned map
	if got := s.Attributes("a", time.Time{})["x"]; got != 5 {
		t.Fatalf("Attributes did not copy: got %v", got)
	}
}

func TestCombinedValidation(t *testing.T) {
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCombined(nil, tr); err == nil {
		t.Error("nil static accepted")
	}
	store, err := NewMapStore(map[string]float64{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCombined(store, nil); err == nil {
		t.Error("nil tracker accepted")
	}
}

func TestCombinedMergesStaticAndLive(t *testing.T) {
	store, err := NewMapStore(map[string]float64{"web_reputation": 80})
	if err != nil {
		t.Fatal(err)
	}
	store.Put("9.9.9.9", map[string]float64{"web_reputation": 15})
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tr.Observe(RequestInfo{IP: "9.9.9.9", Path: "/login", At: at(i), Failed: true}); err != nil {
			t.Fatal(err)
		}
	}
	combined, err := NewCombined(store, tr)
	if err != nil {
		t.Fatal(err)
	}
	attrs := combined.Attributes("9.9.9.9", at(4))
	if attrs["web_reputation"] != 15 {
		t.Errorf("static attr lost: %v", attrs["web_reputation"])
	}
	if attrs[AttrTotalRequests] != 4 {
		t.Errorf("live attr lost: %v", attrs[AttrTotalRequests])
	}
	if attrs[AttrFailRatio] != 1 {
		t.Errorf("fail ratio = %v, want 1", attrs[AttrFailRatio])
	}
}

// TestMapStoreFallbackSharedAndUnmutated is the ROADMAP's audit pin on the
// documented contract change: Attributes returns one shared read-only
// fallback map for every unknown IP (no per-request clone), and no
// framework path — the Combined merge, scoring — mutates it. A future
// caller writing into the returned map would corrupt every unknown
// client's profile at once; this test fails the moment the shared
// fallback's contents drift.
func TestMapStoreFallbackSharedAndUnmutated(t *testing.T) {
	fallback := map[string]float64{"x": 1, "y": 2}
	s, err := NewMapStore(fallback)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Attributes("203.0.113.1", at(0))
	b := s.Attributes("203.0.113.2", at(0))
	// Shared: both unknown IPs see the same map value (the whole point of
	// the no-clone contract). Maps are not comparable, so pin sharing by
	// writing through one and reading the other — then restore.
	a["__probe__"] = 1
	if _, shared := b["__probe__"]; !shared {
		t.Fatal("unknown-IP fallback is cloned per call; the shared-map contract changed")
	}
	delete(a, "__probe__")

	// The store's own constructor input is insulated from the caller.
	fallback["x"] = 99
	if got := s.Attributes("203.0.113.3", at(0))["x"]; got != 1 {
		t.Errorf("mutating the constructor argument reached the store: x = %v", got)
	}

	// Drive the paths that receive the shared map and assert no drift.
	snapshot := make(map[string]float64, len(a))
	for k, v := range a {
		snapshot[k] = v
	}
	tr, err := NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	combined, err := NewCombined(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(RequestInfo{IP: "203.0.113.9", Path: "/p", At: at(0)}); err != nil {
		t.Fatal(err)
	}
	merged := combined.Attributes("203.0.113.9", at(1))
	merged["x"] = -5 // mutating the *merged* map must not reach the fallback
	after := s.Attributes("203.0.113.4", at(1))
	if len(after) != len(snapshot) {
		t.Fatalf("fallback gained/lost keys: %v vs %v", after, snapshot)
	}
	for k, v := range snapshot {
		if after[k] != v {
			t.Errorf("fallback[%q] drifted: %v != %v", k, after[k], v)
		}
	}
}
