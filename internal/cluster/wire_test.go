package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"aipow/internal/features"
)

func testFrame() *Frame {
	return &Frame{
		Origins: []OriginSection{
			{
				Origin:       "node0",
				Counters:     map[string]float64{"issued": 120, "verified": 80, "rejected": 3},
				DiffIssued:   []uint64{0, 0, 0, 0, 10, 25},
				DiffVerified: []uint64{0, 0, 0, 0, 8, 20},
				Rows: []features.EvidenceRow{
					{IP: "198.51.100.9", Total: 6, Failed: 1, SolveCredit: 41.5,
						CreditAt: time.Date(2022, 3, 21, 0, 0, 6, 0, time.UTC)},
					{IP: "203.0.113.7", Total: 2, Failed: 0, SolveCredit: 12},
				},
			},
			{
				Origin:   "node2",
				Counters: map[string]float64{"issued": 55},
			},
		},
		Buckets: []FilterBucket{
			{Epoch: 41_385_600, Span: int64(40 * time.Second), Words: []uint64{1, 0, 1 << 63, 42}},
		},
	}
}

func framesEqual(t *testing.T, a, b *Frame) {
	t.Helper()
	if len(a.Origins) != len(b.Origins) || len(a.Buckets) != len(b.Buckets) {
		t.Fatalf("shape mismatch: %d/%d origins, %d/%d buckets",
			len(a.Origins), len(b.Origins), len(a.Buckets), len(b.Buckets))
	}
	for i := range a.Origins {
		x, y := &a.Origins[i], &b.Origins[i]
		if x.Origin != y.Origin || len(x.Counters) != len(y.Counters) || len(x.Rows) != len(y.Rows) {
			t.Fatalf("origin %d mismatch: %+v vs %+v", i, x, y)
		}
		for k, v := range x.Counters {
			if y.Counters[k] != v {
				t.Fatalf("origin %d counter %q: %v vs %v", i, k, v, y.Counters[k])
			}
		}
		for d, c := range x.DiffIssued {
			if c != 0 && (d >= len(y.DiffIssued) || y.DiffIssued[d] != c) {
				t.Fatalf("origin %d issued[%d] lost", i, d)
			}
		}
		for j := range x.Rows {
			if !rowsEqual(x.Rows[j], y.Rows[j]) || x.Rows[j].IP != y.Rows[j].IP {
				t.Fatalf("origin %d row %d: %+v vs %+v", i, j, x.Rows[j], y.Rows[j])
			}
		}
	}
	for i := range a.Buckets {
		x, y := &a.Buckets[i], &b.Buckets[i]
		if x.Epoch != y.Epoch || x.Span != y.Span || len(x.Words) != len(y.Words) {
			t.Fatalf("bucket %d header mismatch", i)
		}
		for w := range x.Words {
			if x.Words[w] != y.Words[w] {
				t.Fatalf("bucket %d word %d mismatch", i, w)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := testFrame()
	data, err := EncodeFrame(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	framesEqual(t, f, got)
}

func TestFrameSignature(t *testing.T) {
	key := []byte("frame-signing-key-0123456789abcd")
	f := testFrame()
	signed, err := EncodeFrame(f, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(signed, key); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	// Signed frames decode unkeyed too (signature simply unchecked).
	if _, err := DecodeFrame(signed, nil); err != nil {
		t.Fatalf("signed frame failed unkeyed decode: %v", err)
	}
	// Unsigned frames fail a keyed decode: fail closed.
	unsigned, err := EncodeFrame(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(unsigned, key); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unsigned frame passed keyed decode: %v", err)
	}
	// Any payload mutation breaks the signature.
	for _, pos := range []int{len(frameMagic) + 32, len(signed) / 2, len(signed) - 1} {
		tampered := bytes.Clone(signed)
		tampered[pos] ^= 0x40
		if _, err := DecodeFrame(tampered, key); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("tampered byte %d passed keyed decode", pos)
		}
	}
	// Wrong key fails.
	other := []byte("other-signing-key-0123456789abcd")
	if _, err := DecodeFrame(signed, other); !errors.Is(err, ErrBadFrame) {
		t.Fatal("wrong key accepted")
	}
}

func TestDecodeFrameFailsClosed(t *testing.T) {
	f := testFrame()
	data, err := EncodeFrame(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation errors — no partial frames.
	for n := 0; n < len(data); n++ {
		if _, err := DecodeFrame(data[:n], nil); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	// Trailing garbage errors.
	if _, err := DecodeFrame(append(bytes.Clone(data), 0xFF), nil); !errors.Is(err, ErrBadFrame) {
		t.Fatal("trailing byte accepted")
	}
	// Bad magic errors.
	bad := bytes.Clone(data)
	bad[0] = 'X'
	if _, err := DecodeFrame(bad, nil); !errors.Is(err, ErrBadFrame) {
		t.Fatal("bad magic accepted")
	}
	// A hostile row count larger than the input fails before allocating.
	if _, err := DecodeFrame([]byte("AIPoWX1\x00"), nil); !errors.Is(err, ErrBadFrame) {
		t.Fatal("bare magic accepted")
	}
}

func FuzzDecodeFrame(f *testing.F) {
	valid, err := EncodeFrame(testFrame(), nil)
	if err != nil {
		f.Fatal(err)
	}
	key := []byte("frame-signing-key-0123456789abcd")
	signed, err := EncodeFrame(testFrame(), key)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(signed)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("AIPoWX1\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and must fail closed or produce a bounded frame.
		fr, err := DecodeFrame(data, nil)
		if err == nil {
			if len(fr.Origins) > maxWireOrigins || len(fr.Buckets) > maxWireBuckets {
				t.Fatalf("decoded frame exceeds bounds: %d origins, %d buckets",
					len(fr.Origins), len(fr.Buckets))
			}
			// A successful decode must re-encode.
			if _, err := EncodeFrame(fr, nil); err != nil {
				t.Fatalf("decoded frame failed re-encode: %v", err)
			}
		}
		// Keyed decodes accept only frames we signed: anything the fuzzer
		// mutated must fail.
		if fr2, err := DecodeFrame(data, key); err == nil && !bytes.Equal(data, signed) {
			t.Fatalf("forged frame passed signature check: %+v", fr2)
		}
	})
}
