// Package cluster is the distributed defense plane: it makes a fleet of
// framework nodes behind a load balancer act as one defense instead of K
// independent ones. Three planes ride one peer-exchange loop:
//
//   - Replay suppression. Every successful redemption publishes its
//     challenge tag into a time-bucketed rotating Bloom ring; peers merge
//     each other's rings on a bounded-staleness exchange interval, and
//     the verifier fails closed on filter hits — so a token genuinely
//     solved on one node cannot be redeemed again on a sibling once one
//     exchange round has passed. Memory is bounded (buckets × bits) and
//     the false-positive rate is declared, not accidental (see Ring).
//
//   - Reputation gossip. Each node exports its behavior tracker's
//     evidence digest (monotone request/failure counters, the decayed
//     solve credit with its reference time) and merges peers' digests
//     CRDT-style: merge order, duplication, and relaying cannot change
//     the converged state (features.MergeRows pins the laws).
//
//   - Fleet feedback. Each node re-publishes the cumulative serving
//     counters of every origin it knows, merged by pointwise max; a
//     node's controller samples its local counters summed with the
//     peer-reported ones (feedback.NewSumSource), so the adapt ladder
//     fires on cluster-wide rate — a botnet striping itself 1/K across
//     the fleet is detected at full strength on every node.
//
// Exchange is pull-based and transitive: Node.Frame snapshots everything
// a peer needs, Node.Absorb folds a peer's frame in, and relayed state
// (origins learned from a peer's peers) propagates, so partial views —
// each node exchanging with a few neighbors — still converge fleet-wide.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"aipow/internal/puzzle"
)

// Filter-geometry defaults. At the defaults — 1 MiB of filter per bucket
// (1<<20 bits × 4 buckets = 512 KiB total), 4 hash probes — a bucket
// holding 65 536 redeemed tags (one full replay-cache generation) has a
// false-positive rate of (1-e^(-kn/m))^k ≈ 0.24%, the worst-case rate a
// fresh solution is wrongly suppressed at while the fleet is redeeming at
// capacity. Operators declare their own geometry in the spec
// (`cluster filter(bits=…, hashes=…)`).
const (
	DefaultFilterBits   = 1 << 20
	DefaultFilterHashes = 4
	DefaultBuckets      = 4
)

// Ring is a time-bucketed rotating Bloom filter over redeemed-token tags.
// Tags land in the bucket of their redemption time (epoch = time / span);
// a bucket is recycled when its slot's epoch comes around again, so a tag
// is retained for at least (buckets-1) × span — callers size span so that
// retention covers the challenge TTL plus skew, after which the verifier's
// freshness check already rejects the token and the filter owes nothing.
//
// Bucket epochs are aligned on absolute time, so two nodes' rings agree on
// bucket boundaries and merge by ORing same-epoch buckets — the Bloom
// union. Memory is fixed at construction: buckets × bits/8 bytes.
//
// The serving-path check (Seen) is a read-lock and k word probes over each
// live bucket — no allocation, no hashing beyond reading the tag itself:
// tags are HMAC-SHA256 outputs, already uniform, so the probe positions
// derive directly from the tag bytes (double hashing over two 64-bit
// lanes).
type Ring struct {
	mu      sync.Mutex
	rmu     sync.RWMutex // guards bucket words; mu orders writers
	span    time.Duration
	mask    uint64 // bits-1
	hashes  int
	buckets []ringBucket
}

// ringBucket is one time slice of the ring.
type ringBucket struct {
	epoch int64 // time/span this bucket covers; -1 = empty
	words []uint64
}

// NewRing builds a ring with the given geometry. bits must be a power of
// two ≥ 64; hashes in [1, 16]; buckets ≥ 2; span > 0.
func NewRing(bits, hashes, buckets int, span time.Duration) (*Ring, error) {
	switch {
	case bits < 64 || bits&(bits-1) != 0:
		return nil, fmt.Errorf("cluster: filter bits %d must be a power of two ≥ 64", bits)
	case hashes < 1 || hashes > 16:
		return nil, fmt.Errorf("cluster: filter hashes %d outside [1, 16]", hashes)
	case buckets < 2:
		return nil, fmt.Errorf("cluster: need at least 2 filter buckets, got %d", buckets)
	case span <= 0:
		return nil, fmt.Errorf("cluster: non-positive bucket span %v", span)
	}
	r := &Ring{
		span:    span,
		mask:    uint64(bits - 1),
		hashes:  hashes,
		buckets: make([]ringBucket, buckets),
	}
	for i := range r.buckets {
		r.buckets[i] = ringBucket{epoch: -1, words: make([]uint64, bits/64)}
	}
	return r, nil
}

// Span reports the bucket span.
func (r *Ring) Span() time.Duration { return r.span }

// Bits reports the per-bucket filter size in bits.
func (r *Ring) Bits() int { return int(r.mask) + 1 }

// Hashes reports the probe count.
func (r *Ring) Hashes() int { return r.hashes }

// probes derives the two double-hashing lanes from a tag. The tag is an
// HMAC-SHA256 output — 32 uniformly distributed bytes — so no further
// mixing is needed; h2 is forced odd so the probe sequence walks the whole
// power-of-two filter.
func probes(tag *[puzzle.TagSize]byte) (h1, h2 uint64) {
	h1 = binary.BigEndian.Uint64(tag[0:8])
	h2 = binary.BigEndian.Uint64(tag[8:16]) | 1
	return
}

// Add sets the tag's bits in the bucket covering now, recycling the slot
// if its epoch has passed.
func (r *Ring) Add(tag [puzzle.TagSize]byte, now time.Time) {
	epoch := now.UnixNano() / int64(r.span)
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.bucketForLocked(epoch)
	if b == nil {
		return // now predates every live bucket: the tag is already expired
	}
	h1, h2 := probes(&tag)
	r.rmu.Lock()
	for i := 0; i < r.hashes; i++ {
		pos := (h1 + uint64(i)*h2) & r.mask
		b.words[pos>>6] |= 1 << (pos & 63)
	}
	r.rmu.Unlock()
}

// bucketForLocked returns the bucket for epoch, recycling the slot when
// the epoch advanced past its current occupant. Returns nil for epochs
// older than the slot's occupant (already rotated out). Callers hold r.mu.
func (r *Ring) bucketForLocked(epoch int64) *ringBucket {
	b := &r.buckets[epoch%int64(len(r.buckets))]
	if b.epoch == epoch {
		return b
	}
	if b.epoch > epoch {
		return nil
	}
	r.rmu.Lock()
	clear(b.words)
	b.epoch = epoch
	r.rmu.Unlock()
	return b
}

// Seen reports whether the tag's bits are all set in any live bucket. It
// may report a false positive at the geometry's declared rate; it never
// reports false for a tag Added (or merged) within the retention window.
// Allocation-free: this is the serving-path check.
func (r *Ring) Seen(tag [puzzle.TagSize]byte) bool {
	h1, h2 := probes(&tag)
	r.rmu.RLock()
	defer r.rmu.RUnlock()
	for bi := range r.buckets {
		b := &r.buckets[bi]
		if b.epoch < 0 {
			continue
		}
		hit := true
		for i := 0; i < r.hashes; i++ {
			pos := (h1 + uint64(i)*h2) & r.mask
			if b.words[pos>>6]&(1<<(pos&63)) == 0 {
				hit = false
				break
			}
		}
		if hit {
			return true
		}
	}
	return false
}

// FilterBucket is one bucket's wire/exchange form.
type FilterBucket struct {
	Epoch int64
	Span  int64 // nanoseconds; merges require agreeing spans
	Words []uint64
}

// Snapshot appends copies of the ring's live buckets to dst and returns
// the extended slice (oldest epoch first, deterministically).
func (r *Ring) Snapshot(dst []FilterBucket) []FilterBucket {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := len(dst)
	r.rmu.RLock()
	for bi := range r.buckets {
		b := &r.buckets[bi]
		if b.epoch < 0 {
			continue
		}
		dst = append(dst, FilterBucket{
			Epoch: b.epoch,
			Span:  int64(r.span),
			Words: append([]uint64(nil), b.words...),
		})
	}
	r.rmu.RUnlock()
	out := dst[start:]
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Epoch < out[j-1].Epoch; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return dst
}

// Merge ORs peer buckets into the ring. Buckets with a different span or
// word count are skipped — geometry disagreement means the peer runs a
// different configuration, and a partial merge would corrupt the declared
// false-positive rate. Epochs older than a slot's occupant are dropped
// (already rotated out); newer epochs recycle the slot first. The
// operation is a per-bit OR: commutative, associative, idempotent.
func (r *Ring) Merge(buckets []FilterBucket) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range buckets {
		fb := &buckets[i]
		if fb.Span != int64(r.span) || len(fb.Words) != len(r.buckets[0].words) || fb.Epoch < 0 {
			continue
		}
		b := r.bucketForLocked(fb.Epoch)
		if b == nil {
			continue
		}
		r.rmu.Lock()
		for w := range b.words {
			b.words[w] |= fb.Words[w]
		}
		r.rmu.Unlock()
	}
}

// MergeFrom ORs another ring's live buckets into this one without copying
// bucket contents through a snapshot — the in-process exchange fast path
// (the simulation engine merges K rings every tick boundary; a frame-based
// snapshot would churn megabytes). Geometry must agree; mismatches are
// skipped like Merge. src is read-locked during the merge.
func (r *Ring) MergeFrom(src *Ring) {
	if r == src || src == nil {
		return
	}
	if src.span != r.span || src.mask != r.mask {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	src.rmu.RLock()
	defer src.rmu.RUnlock()
	for bi := range src.buckets {
		sb := &src.buckets[bi]
		if sb.epoch < 0 {
			continue
		}
		b := r.bucketForLocked(sb.epoch)
		if b == nil {
			continue
		}
		r.rmu.Lock()
		for w := range b.words {
			b.words[w] |= sb.words[w]
		}
		r.rmu.Unlock()
	}
}
