package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// frameContentType labels encoded frames on the wire.
const frameContentType = "application/x-aipow-cluster-frame"

// Handler returns an http.Handler serving the node's current frame —
// mount it on the peer-exchange listener (powserver exposes it at
// /cluster/<pipeline>). Frames are signed with the node's key when one
// is configured, so peers reject responses from an impostor. A
// ?since=<gen> query asks for a delta frame (rows changed after the
// puller's watermark); an unparsable or absent since serves a full
// frame, the always-safe answer.
func (n *Node) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			since, _ = strconv.ParseUint(s, 10, 64)
		}
		data, err := EncodeFrame(n.FrameSince(since), n.cfg.Key)
		if err != nil {
			http.Error(w, "frame encoding failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", frameContentType)
		w.Write(data)
	})
}

// HTTPFetcher pulls frames from one peer's exchange endpoint. Responses
// are size-bounded and decoded fail-closed; when a key is set, unsigned
// or mis-signed frames are rejected.
type HTTPFetcher struct {
	// URL is the peer's frame endpoint, e.g.
	// "http://10.0.0.2:9100/cluster/edge".
	URL string

	// Key verifies frame signatures; nil accepts unsigned frames.
	Key []byte

	// Client defaults to a client with a timeout of half the default
	// exchange interval, so one stuck peer cannot stall a whole round.
	Client *http.Client

	// AntiEntropyEvery enables delta pulls: when K ≥ 1 the fetcher sends
	// its last absorbed watermark as ?since, requesting a full frame on
	// the first pull and every Kth thereafter. Zero pulls full frames
	// only.
	AntiEntropyEvery int

	// lastGen and pulls are the delta cursor. Plain fields: a fetcher is
	// driven by exactly one exchange loop (Fetch is not safe for
	// concurrent use with itself — it never was, the shared http.Client
	// aside).
	lastGen uint64
	pulls   uint64
}

// Close releases the fetcher's pooled connections (and their keep-alive
// goroutines). The exchange loop calls it when the node shuts down.
func (f *HTTPFetcher) Close() error {
	if f.Client != nil {
		f.Client.CloseIdleConnections()
	}
	return nil
}

// Fetch implements Fetcher.
func (f *HTTPFetcher) Fetch() (*Frame, error) {
	client := f.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultExchange / 2}
	}
	target := f.URL
	if since := f.nextSince(); since > 0 {
		sep := "?"
		if u, err := url.Parse(f.URL); err == nil && u.RawQuery != "" {
			sep = "&"
		}
		target = f.URL + sep + "since=" + strconv.FormatUint(since, 10)
	}
	resp, err := client.Get(target)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s: %w", f.URL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: fetch %s: status %s", f.URL, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBytes+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s: %w", f.URL, err)
	}
	frame, err := DecodeFrame(data, f.Key)
	if err != nil {
		return nil, err
	}
	f.lastGen = frame.Gen
	f.pulls++
	return frame, nil
}

// nextSince picks the watermark for the next pull, mirroring
// Node.nextSince for the HTTP transport.
func (f *HTTPFetcher) nextSince() uint64 {
	if f.AntiEntropyEvery <= 0 || f.pulls%uint64(f.AntiEntropyEvery) == 0 {
		return 0
	}
	return f.lastGen
}

// NewHTTPFetchers builds one fetcher per peer URL with a shared client
// whose timeout is half the exchange interval. The client gets its own
// transport — never http.DefaultTransport — so closing the fetchers
// (which the exchange loop does on shutdown) reliably frees every
// pooled connection instead of leaving them in a process-global pool.
// deltaEvery ≥ 1 enables delta pulls with a full anti-entropy pull every
// deltaEvery-th exchange (see HTTPFetcher.AntiEntropyEvery); zero keeps
// every pull full-frame.
func NewHTTPFetchers(urls []string, key []byte, exchange time.Duration, deltaEvery int) []Fetcher {
	if exchange <= 0 {
		exchange = DefaultExchange
	}
	client := &http.Client{Timeout: exchange / 2, Transport: &http.Transport{}}
	out := make([]Fetcher, 0, len(urls))
	for _, u := range urls {
		out = append(out, &HTTPFetcher{URL: u, Key: key, Client: client, AntiEntropyEvery: deltaEvery})
	}
	return out
}
