package cluster

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// frameContentType labels encoded frames on the wire.
const frameContentType = "application/x-aipow-cluster-frame"

// Handler returns an http.Handler serving the node's current frame —
// mount it on the peer-exchange listener (powserver exposes it at
// /cluster/<pipeline>). Frames are signed with the node's key when one
// is configured, so peers reject responses from an impostor.
func (n *Node) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		data, err := EncodeFrame(n.Frame(), n.cfg.Key)
		if err != nil {
			http.Error(w, "frame encoding failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", frameContentType)
		w.Write(data)
	})
}

// HTTPFetcher pulls frames from one peer's exchange endpoint. Responses
// are size-bounded and decoded fail-closed; when a key is set, unsigned
// or mis-signed frames are rejected.
type HTTPFetcher struct {
	// URL is the peer's frame endpoint, e.g.
	// "http://10.0.0.2:9100/cluster/edge".
	URL string

	// Key verifies frame signatures; nil accepts unsigned frames.
	Key []byte

	// Client defaults to a client with a timeout of half the default
	// exchange interval, so one stuck peer cannot stall a whole round.
	Client *http.Client
}

// Close releases the fetcher's pooled connections (and their keep-alive
// goroutines). The exchange loop calls it when the node shuts down.
func (f *HTTPFetcher) Close() error {
	if f.Client != nil {
		f.Client.CloseIdleConnections()
	}
	return nil
}

// Fetch implements Fetcher.
func (f *HTTPFetcher) Fetch() (*Frame, error) {
	client := f.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultExchange / 2}
	}
	resp, err := client.Get(f.URL)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s: %w", f.URL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: fetch %s: status %s", f.URL, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBytes+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s: %w", f.URL, err)
	}
	return DecodeFrame(data, f.Key)
}

// NewHTTPFetchers builds one fetcher per peer URL with a shared client
// whose timeout is half the exchange interval. The client gets its own
// transport — never http.DefaultTransport — so closing the fetchers
// (which the exchange loop does on shutdown) reliably frees every
// pooled connection instead of leaving them in a process-global pool.
func NewHTTPFetchers(urls []string, key []byte, exchange time.Duration) []Fetcher {
	if exchange <= 0 {
		exchange = DefaultExchange
	}
	client := &http.Client{Timeout: exchange / 2, Transport: &http.Transport{}}
	out := make([]Fetcher, 0, len(urls))
	for _, u := range urls {
		out = append(out, &HTTPFetcher{URL: u, Key: key, Client: client})
	}
	return out
}
