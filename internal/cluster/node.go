package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"aipow/internal/features"
	"aipow/internal/feedback"
	"aipow/internal/obs"
	"aipow/internal/puzzle"
)

// Defaults for the exchange plane.
const (
	// DefaultExchange is the peer-exchange interval: the bounded
	// staleness of everything the cluster plane knows about its peers.
	DefaultExchange = 1 * time.Second

	// DefaultRetain is how long redeemed tags are guaranteed to stay in
	// the Bloom ring; deployments size it to TTL + skew so the freshness
	// check takes over exactly when the filter lets go.
	DefaultRetain = 2 * time.Minute

	// DefaultMaxRows bounds the evidence rows exported per frame.
	DefaultMaxRows = 4096

	// maxPeerOrigins bounds how many distinct origins a node will track;
	// frames naming more are partially absorbed (first come, first kept)
	// so a hostile peer cannot balloon memory with invented origins.
	maxPeerOrigins = 64
)

// Config configures a cluster Node.
type Config struct {
	// Origin names this node in exchanged frames. Required, and must be
	// unique per fleet member (a hostname, pod name, or instance id).
	Origin string

	// Exchange is the peer-exchange interval used by Run. Defaults to
	// DefaultExchange.
	Exchange time.Duration

	// FilterBits and FilterHashes set the per-bucket Bloom geometry;
	// FilterBuckets the ring length. Zero values take the Default*
	// constants. All fleet members must agree or their rings refuse to
	// merge.
	FilterBits    int
	FilterHashes  int
	FilterBuckets int

	// Retain is the minimum time a redeemed tag stays suppressable;
	// bucket span is Retain/(FilterBuckets-1). Defaults to DefaultRetain.
	Retain time.Duration

	// HalfLife is the solve-credit decay half-life used when merging
	// evidence rows; it must match the tracker's. BindLocal overrides it
	// from the tracker, so explicit configuration is only for nodes
	// running without one.
	HalfLife time.Duration

	// MaxRows bounds evidence rows exported per frame. Defaults to
	// DefaultMaxRows; negative disables the export entirely.
	MaxRows int

	// DeltaEvery enables delta evidence gossip on this node's *pulls*:
	// when K ≥ 1, the node asks peers only for rows changed since its
	// last pull, with a full-frame anti-entropy pull every Kth exchange
	// (the first pull from a peer is always full). Zero keeps every pull
	// full-frame. Deltas change only how much is shipped, never what
	// converges: rows merge as a CRDT, and the exporter falls back to a
	// full frame whenever it cannot prove the delta covers everything the
	// puller missed.
	DeltaEvery int

	// Key, when set, HMAC-signs encoded frames and rejects peers' frames
	// that fail verification (see EncodeFrame/DecodeFrame). In-process
	// exchange ignores it.
	Key []byte

	// Now injects the node's clock. Defaults to time.Now.
	Now func() time.Time

	// Events receives cluster membership events: peer_join when a frame
	// first names an unknown origin, peer_stale when a fetcher that was
	// healthy starts failing. Nil drops them. Sinks are called outside the
	// node's lock but must still be fast — they run on the exchange loop.
	Events obs.Sink
}

// OriginSection is one origin's slice of a frame: its cumulative serving
// counters, per-difficulty profile, and (for the frame sender itself) its
// tracker's evidence rows. Counters are cumulative and monotone per
// origin, so they merge by pointwise max — receiving the same section
// twice, or via a relay, is a no-op.
type OriginSection struct {
	Origin       string
	Counters     map[string]float64
	DiffIssued   []uint64
	DiffVerified []uint64
	Rows         []features.EvidenceRow
}

// Frame is one node's complete exchange payload: every origin it knows
// (itself first, then relayed peers sorted by origin) plus its Bloom ring
// snapshot.
type Frame struct {
	Origins []OriginSection
	Buckets []FilterBucket

	// Gen is the sender's evidence watermark as of this frame: pass it
	// back as since on the next pull to receive only newer rows. Zero
	// when the sender exports no evidence.
	Gen uint64

	// Delta marks a frame whose evidence rows cover only changes after
	// the requested since watermark (counters and Bloom buckets are
	// always complete). Full frames — including every delta request the
	// sender had to answer with a full export — carry false.
	Delta bool
}

// peerState is the retained view of one remote origin.
type peerState struct {
	counters     map[string]float64
	diffIssued   [puzzle.MaxDifficulty + 1]uint64
	diffVerified [puzzle.MaxDifficulty + 1]uint64
}

// pullState is the delta-gossip cursor for one peer this node pulls from:
// the watermark of the last absorbed frame and how many pulls completed
// (drives the every-Kth anti-entropy full pull).
type pullState struct {
	gen   uint64
	count uint64
}

// Node is one fleet member's cluster plane. It implements
// puzzle.TagExchange (replay suppression), exports and absorbs evidence
// digests (reputation gossip), and republishes peer counters as a
// feedback.Source (fleet feedback). All methods are safe for concurrent
// use; the Seen/Redeemed pair is allocation-free.
type Node struct {
	cfg  Config
	ring *Ring

	mu     sync.Mutex
	stats  feedback.Source
	export func(dst []features.EvidenceRow, maxRows int, since uint64) ([]features.EvidenceRow, uint64, bool)
	merge  func(rows []features.EvidenceRow)
	peers  map[string]*peerState
	pulls  map[string]*pullState

	filterHits  uint64
	exchanges   uint64
	absorbs     uint64
	absorbErrs  uint64
	fullFrames  uint64
	deltaFrames uint64
	frameRows   uint64

	runMu     sync.Mutex
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewNode builds a node from cfg, applying defaults. The node is inert
// until its hooks are bound (BindLocal) and an exchange loop runs (Run,
// or a caller driving ExchangeWith/Absorb itself — the simulation does).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Origin == "" {
		return nil, fmt.Errorf("cluster: node needs an origin name")
	}
	if cfg.Exchange <= 0 {
		cfg.Exchange = DefaultExchange
	}
	if cfg.FilterBits == 0 {
		cfg.FilterBits = DefaultFilterBits
	}
	if cfg.FilterHashes == 0 {
		cfg.FilterHashes = DefaultFilterHashes
	}
	if cfg.FilterBuckets == 0 {
		cfg.FilterBuckets = DefaultBuckets
	}
	if cfg.Retain <= 0 {
		cfg.Retain = DefaultRetain
	}
	if cfg.MaxRows == 0 {
		cfg.MaxRows = DefaultMaxRows
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	span := cfg.Retain / time.Duration(cfg.FilterBuckets-1)
	if span <= 0 {
		span = time.Second
	}
	ring, err := NewRing(cfg.FilterBits, cfg.FilterHashes, cfg.FilterBuckets, span)
	if err != nil {
		return nil, err
	}
	return &Node{
		cfg:   cfg,
		ring:  ring,
		peers: make(map[string]*peerState),
		pulls: make(map[string]*pullState),
	}, nil
}

// Origin reports the node's fleet-unique name.
func (n *Node) Origin() string { return n.cfg.Origin }

// Ring exposes the node's Bloom ring (tests and stats).
func (n *Node) Ring() *Ring { return n.ring }

// BindLocal attaches the node's local state: stats supplies the origin
// section's counters (the local framework — never a source that already
// includes peer counters, or the fleet would double-count itself), and
// tracker supplies evidence export/merge. Either may be nil to disable
// that plane. The tracker's credit half-life becomes the node's merge
// half-life, keeping gossip decay consistent with local decay.
func (n *Node) BindLocal(stats feedback.Source, tracker *features.Tracker) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = stats
	if tracker != nil {
		n.cfg.HalfLife = tracker.EvidenceHalfLife()
		n.export = tracker.ExportEvidenceSince
		n.merge = tracker.MergeEvidence
	} else {
		n.export = nil
		n.merge = nil
	}
}

// SeenTag implements puzzle.TagExchange over the Bloom ring.
func (n *Node) SeenTag(tag [puzzle.TagSize]byte) bool {
	if !n.ring.Seen(tag) {
		return false
	}
	n.mu.Lock()
	n.filterHits++
	n.mu.Unlock()
	return true
}

// RedeemedTag implements puzzle.TagExchange: the tag enters the bucket of
// its redemption time and gossips outward on the next exchange.
func (n *Node) RedeemedTag(tag [puzzle.TagSize]byte, _ time.Time) {
	n.ring.Add(tag, n.cfg.Now())
}

// Frame snapshots the node's exchange payload: its own section (local
// counters, difficulty profile, evidence rows), every known peer's
// section (relayed counters — rows are not relayed; evidence already
// spreads transitively through each tracker's own export), and the Bloom
// ring.
func (n *Node) Frame() *Frame { return n.frameSince(0, true) }

// FrameSince is Frame for a delta pull: evidence rows cover only changes
// after the since watermark when the exporter can prove that is complete,
// and fall back to the full row set otherwise (Frame.Delta reports which
// happened). since zero is exactly Frame.
func (n *Node) FrameSince(since uint64) *Frame { return n.frameSince(since, true) }

// frameSince builds the exchange payload. includeRing=false skips the
// Bloom snapshot for callers that merge rings directly (ExchangeWith).
func (n *Node) frameSince(since uint64, includeRing bool) *Frame {
	f := &Frame{}
	n.mu.Lock()
	self := OriginSection{Origin: n.cfg.Origin, Counters: make(map[string]float64, 8)}
	if n.stats != nil {
		n.stats.StatsInto(self.Counters)
		self.DiffIssued = make([]uint64, puzzle.MaxDifficulty+1)
		self.DiffVerified = make([]uint64, puzzle.MaxDifficulty+1)
		n.stats.DifficultyProfileInto(self.DiffIssued, self.DiffVerified)
	}
	export := n.export
	maxRows := n.cfg.MaxRows
	f.Origins = append(f.Origins, self)
	for _, origin := range n.sortedPeersLocked() {
		ps := n.peers[origin]
		sec := OriginSection{Origin: origin, Counters: make(map[string]float64, len(ps.counters))}
		for k, v := range ps.counters {
			sec.Counters[k] = v
		}
		sec.DiffIssued = append([]uint64(nil), ps.diffIssued[:]...)
		sec.DiffVerified = append([]uint64(nil), ps.diffVerified[:]...)
		f.Origins = append(f.Origins, sec)
	}
	n.mu.Unlock()
	// Export outside n.mu: the tracker has its own locking, and the local
	// stats source must never be able to re-enter the node.
	if export != nil && maxRows >= 0 {
		rows, gen, delta := export(nil, maxRows, since)
		f.Origins[0].Rows = rows
		f.Gen, f.Delta = gen, delta
		n.mu.Lock()
		if delta {
			n.deltaFrames++
		} else {
			n.fullFrames++
		}
		n.frameRows += uint64(len(rows))
		n.mu.Unlock()
	}
	if includeRing {
		f.Buckets = n.ring.Snapshot(nil)
	}
	return f
}

// nextSince picks the watermark for the node's next pull from origin:
// zero (full frame) when delta gossip is off, on the first pull, or on
// the every-DeltaEvery-th anti-entropy pull; otherwise the watermark of
// the last frame absorbed from that peer.
func (n *Node) nextSince(origin string) uint64 {
	if n.cfg.DeltaEvery <= 0 {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.pulls[origin]
	if st == nil || st.count%uint64(n.cfg.DeltaEvery) == 0 {
		return 0
	}
	return st.gen
}

// notePulled records a completed pull from origin for delta-cursor
// bookkeeping. The map is bounded like the peer table: past the cap new
// origins simply keep pulling full frames.
func (n *Node) notePulled(origin string, gen uint64) {
	if n.cfg.DeltaEvery <= 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.pulls[origin]
	if st == nil {
		if len(n.pulls) >= maxPeerOrigins {
			return
		}
		st = &pullState{}
		n.pulls[origin] = st
	}
	st.gen = gen
	st.count++
}

func (n *Node) sortedPeersLocked() []string {
	origins := make([]string, 0, len(n.peers))
	for o := range n.peers {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	return origins
}

// Absorb folds a peer's frame into local state: counters lift to the
// per-origin pointwise max, evidence rows merge into the tracker under
// the CRDT laws, and Bloom buckets OR into the ring. Sections about this
// node itself are ignored (its own counters are authoritative locally).
// Absorbing the same frame twice, or frames in any order, converges to
// the same state.
func (n *Node) Absorb(f *Frame) {
	if f == nil {
		return
	}
	var rows []features.EvidenceRow
	var joined []string
	n.mu.Lock()
	for i := range f.Origins {
		sec := &f.Origins[i]
		if sec.Origin == "" || sec.Origin == n.cfg.Origin {
			continue
		}
		ps := n.peers[sec.Origin]
		if ps == nil {
			if len(n.peers) >= maxPeerOrigins {
				continue
			}
			ps = &peerState{counters: make(map[string]float64, len(sec.Counters))}
			n.peers[sec.Origin] = ps
			if n.cfg.Events != nil {
				joined = append(joined, sec.Origin)
			}
		}
		for k, v := range sec.Counters {
			if v > ps.counters[k] {
				ps.counters[k] = v
			}
		}
		for d := 0; d < len(ps.diffIssued) && d < len(sec.DiffIssued); d++ {
			if sec.DiffIssued[d] > ps.diffIssued[d] {
				ps.diffIssued[d] = sec.DiffIssued[d]
			}
		}
		for d := 0; d < len(ps.diffVerified) && d < len(sec.DiffVerified); d++ {
			if sec.DiffVerified[d] > ps.diffVerified[d] {
				ps.diffVerified[d] = sec.DiffVerified[d]
			}
		}
		if len(sec.Rows) > 0 {
			rows = append(rows, sec.Rows...)
		}
	}
	merge := n.merge
	n.absorbs++
	n.mu.Unlock()
	// Join events fire outside n.mu: a sink may snapshot node stats.
	for _, origin := range joined {
		n.cfg.Events(obs.Event{
			At:     n.cfg.Now(),
			Kind:   obs.EventPeerJoin,
			Node:   n.cfg.Origin,
			Detail: origin,
		})
	}
	if merge != nil && len(rows) > 0 {
		merge(rows)
	}
	n.ring.Merge(f.Buckets)
}

// ExchangeWith pulls peer's state directly — the in-process fast path
// used by the simulation engine and co-located deployments. Equivalent to
// Absorb(peer.Frame()) except the Bloom rings merge without snapshot
// copies. One call is half an exchange; call it in both directions for a
// symmetric gossip round.
func (n *Node) ExchangeWith(peer *Node) {
	if peer == nil || peer == n {
		return
	}
	f := peer.frameSince(n.nextSince(peer.cfg.Origin), false)
	n.Absorb(f)
	n.ring.MergeFrom(peer.ring)
	n.mu.Lock()
	n.exchanges++
	n.mu.Unlock()
	n.notePulled(peer.cfg.Origin, f.Gen)
}

// PeerSource returns a feedback.Source over the sum of all peer-reported
// counters — everything the fleet serves except this node itself. Sum it
// with the local framework (feedback.NewSumSource) to drive a controller
// on cluster-wide totals.
func (n *Node) PeerSource() feedback.Source { return peerSource{n: n} }

type peerSource struct{ n *Node }

func (p peerSource) StatsInto(dst map[string]float64) {
	p.n.mu.Lock()
	defer p.n.mu.Unlock()
	// Origin-sorted iteration: several origins fold into the same keys,
	// and float accumulation must not depend on map order (the simulation
	// byte-compares reports across runs).
	for _, origin := range p.n.sortedPeersLocked() {
		for k, v := range p.n.peers[origin].counters {
			dst[k] += v
		}
	}
}

func (p peerSource) DifficultyProfileInto(issued, verified []uint64) {
	for i := range issued {
		issued[i] = 0
	}
	for i := range verified {
		verified[i] = 0
	}
	p.n.mu.Lock()
	defer p.n.mu.Unlock()
	for _, ps := range p.n.peers {
		for d := 0; d < len(issued) && d < len(ps.diffIssued); d++ {
			issued[d] += ps.diffIssued[d]
		}
		for d := 0; d < len(verified) && d < len(ps.diffVerified); d++ {
			verified[d] += ps.diffVerified[d]
		}
	}
}

// Stats describes the node's exchange-plane counters.
type Stats struct {
	Origin      string
	Peers       int
	FilterHits  uint64 // serving-path rejections from the fleet filter
	Exchanges   uint64 // completed exchange pulls
	Absorbs     uint64 // frames folded in
	AbsorbErrs  uint64 // failed pulls (fetch or decode errors)
	FullFrames  uint64 // frames this node served with the full row set
	DeltaFrames uint64 // frames this node served as deltas
	FrameRows   uint64 // cumulative evidence rows served across frames
}

// Stats snapshots the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{
		Origin:      n.cfg.Origin,
		Peers:       len(n.peers),
		FilterHits:  n.filterHits,
		Exchanges:   n.exchanges,
		Absorbs:     n.absorbs,
		AbsorbErrs:  n.absorbErrs,
		FullFrames:  n.fullFrames,
		DeltaFrames: n.deltaFrames,
		FrameRows:   n.frameRows,
	}
}

// Fetcher pulls one peer's current frame; implementations wrap whatever
// transport the deployment uses (HTTPFetcher ships with the package).
type Fetcher interface {
	Fetch() (*Frame, error)
}

// Run starts the exchange loop: every Exchange interval it pulls a frame
// from each fetcher and absorbs it. Errors count in Stats and never stop
// the loop — a partitioned peer resumes contributing when it heals.
// Run returns immediately; the loop runs until Close. Calling Run twice
// is an error.
func (n *Node) Run(peers []Fetcher) error {
	n.runMu.Lock()
	defer n.runMu.Unlock()
	if n.stop != nil {
		return fmt.Errorf("cluster: node %q exchange loop already running", n.cfg.Origin)
	}
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	go n.loop(peers, n.stop, n.done)
	return nil
}

func (n *Node) loop(peers []Fetcher, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	// Fetchers holding network state (keep-alive connections and their
	// goroutines) are released when the loop dies, so a closed or rebuilt
	// node leaves nothing behind.
	defer func() {
		for _, p := range peers {
			if c, ok := p.(io.Closer); ok {
				c.Close()
			}
		}
	}()
	ticker := time.NewTicker(n.cfg.Exchange)
	defer ticker.Stop()
	// Per-fetcher health, owned by the loop: peer_stale fires on each
	// healthy→failing edge, not once per failed pull, so a partitioned
	// peer produces one event per outage instead of one per tick.
	failing := make([]bool, len(peers))
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			n.exchangeOnce(peers, failing)
		}
	}
}

// exchangeOnce performs one pull round over the fetchers. failing carries
// per-fetcher health between rounds (may be nil for one-shot callers).
func (n *Node) exchangeOnce(peers []Fetcher, failing []bool) {
	for i, p := range peers {
		f, err := p.Fetch()
		if err != nil {
			n.mu.Lock()
			n.absorbErrs++
			n.mu.Unlock()
			if i < len(failing) && !failing[i] {
				failing[i] = true
				if n.cfg.Events != nil {
					n.cfg.Events(obs.Event{
						At:     n.cfg.Now(),
						Kind:   obs.EventPeerStale,
						Node:   n.cfg.Origin,
						Detail: fetcherName(p, i),
					})
				}
			}
			continue
		}
		if i < len(failing) {
			failing[i] = false
		}
		n.Absorb(f)
		n.mu.Lock()
		n.exchanges++
		n.mu.Unlock()
	}
}

// fetcherName labels a fetcher in events — the peer URL when the
// transport exposes one, otherwise its slot index.
func fetcherName(p Fetcher, i int) string {
	if h, ok := p.(*HTTPFetcher); ok {
		return h.URL
	}
	return fmt.Sprintf("peer[%d]", i)
}

// Close stops the exchange loop and waits for it to drain. Idempotent,
// and safe on a node whose loop never started.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.runMu.Lock()
		stop, done := n.stop, n.done
		n.runMu.Unlock()
		if stop != nil {
			close(stop)
			<-done
		}
	})
	return nil
}

var _ puzzle.TagExchange = (*Node)(nil)
