package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"
	"time"

	"aipow/internal/puzzle"
)

var bloomEpoch = time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC)

func testTag(i int) [puzzle.TagSize]byte {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(i))
	return sha256.Sum256(seed[:])
}

func mustRing(t *testing.T, bits, hashes, buckets int, span time.Duration) *Ring {
	t.Helper()
	r, err := NewRing(bits, hashes, buckets, span)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingSeenNeverMissesWithinRetention(t *testing.T) {
	r := mustRing(t, 1<<14, 4, 4, 10*time.Second)
	now := bloomEpoch
	for i := 0; i < 200; i++ {
		r.Add(testTag(i), now.Add(time.Duration(i)*100*time.Millisecond))
	}
	for i := 0; i < 200; i++ {
		if !r.Seen(testTag(i)) {
			t.Fatalf("tag %d lost within retention", i)
		}
	}
}

func TestRingRotationExpiresOldBuckets(t *testing.T) {
	span := 10 * time.Second
	r := mustRing(t, 1<<14, 4, 3, span)
	now := bloomEpoch
	r.Add(testTag(1), now)
	if !r.Seen(testTag(1)) {
		t.Fatal("tag not recorded")
	}
	// Advance past the ring: the slot recycles and the tag is forgotten.
	r.Add(testTag(2), now.Add(3*span))
	if r.Seen(testTag(1)) {
		t.Fatal("tag survived a full ring rotation")
	}
	if !r.Seen(testTag(2)) {
		t.Fatal("fresh tag lost")
	}
	// Late writes into already-recycled epochs are dropped, not resurrected.
	r.Add(testTag(3), now)
	if r.Seen(testTag(3)) {
		t.Fatal("stale-epoch add landed in a live bucket")
	}
}

func TestRingMergeIsUnion(t *testing.T) {
	span := 10 * time.Second
	a := mustRing(t, 1<<14, 4, 4, span)
	b := mustRing(t, 1<<14, 4, 4, span)
	now := bloomEpoch
	for i := 0; i < 50; i++ {
		a.Add(testTag(i), now)
	}
	for i := 50; i < 100; i++ {
		b.Add(testTag(i), now.Add(span)) // different epoch
	}
	snap := b.Snapshot(nil)
	a.Merge(snap)
	a.Merge(snap) // idempotent
	for i := 0; i < 100; i++ {
		if !a.Seen(testTag(i)) {
			t.Fatalf("tag %d missing after merge", i)
		}
	}
	// b is unchanged by having been snapshotted.
	for i := 0; i < 50; i++ {
		if b.Seen(testTag(i)) {
			t.Fatalf("merge mutated the source ring (tag %d)", i)
		}
	}
}

func TestRingMergeFromMatchesMerge(t *testing.T) {
	span := 10 * time.Second
	src := mustRing(t, 1<<12, 4, 4, span)
	viaSnap := mustRing(t, 1<<12, 4, 4, span)
	viaFrom := mustRing(t, 1<<12, 4, 4, span)
	now := bloomEpoch
	for i := 0; i < 300; i++ {
		src.Add(testTag(i), now.Add(time.Duration(i%3)*span))
	}
	viaSnap.Merge(src.Snapshot(nil))
	viaFrom.MergeFrom(src)
	for i := 0; i < 300; i++ {
		if viaSnap.Seen(testTag(i)) != viaFrom.Seen(testTag(i)) {
			t.Fatalf("MergeFrom diverges from Merge at tag %d", i)
		}
	}
}

func TestRingMergeRejectsForeignGeometry(t *testing.T) {
	r := mustRing(t, 1<<14, 4, 4, 10*time.Second)
	foreign := mustRing(t, 1<<12, 4, 4, 10*time.Second)
	foreign.Add(testTag(7), bloomEpoch)
	r.Merge(foreign.Snapshot(nil))
	r.MergeFrom(foreign)
	if r.Seen(testTag(7)) {
		t.Fatal("mismatched geometry merged anyway")
	}
	// Mismatched span likewise.
	slowSpan := mustRing(t, 1<<14, 4, 4, 20*time.Second)
	slowSpan.Add(testTag(8), bloomEpoch)
	r.Merge(slowSpan.Snapshot(nil))
	if r.Seen(testTag(8)) {
		t.Fatal("mismatched span merged anyway")
	}
}

func TestRingSeenZeroAllocs(t *testing.T) {
	r := mustRing(t, 1<<14, 4, 4, 10*time.Second)
	tag := testTag(1)
	r.Add(tag, bloomEpoch)
	miss := testTag(2)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Seen(tag)
		r.Seen(miss)
	}); allocs != 0 {
		t.Fatalf("Seen allocates %.1f/op on the serving path", allocs)
	}
}

func TestNewRingRejectsBadGeometry(t *testing.T) {
	cases := []struct{ bits, hashes, buckets int }{
		{1000, 4, 4}, // not a power of two
		{32, 4, 4},   // too small
		{1 << 14, 0, 4},
		{1 << 14, 17, 4},
		{1 << 14, 4, 1},
	}
	for _, c := range cases {
		if _, err := NewRing(c.bits, c.hashes, c.buckets, time.Second); err == nil {
			t.Fatalf("NewRing(%d, %d, %d) accepted", c.bits, c.hashes, c.buckets)
		}
	}
	if _, err := NewRing(1<<14, 4, 4, 0); err == nil {
		t.Fatal("zero span accepted")
	}
}
