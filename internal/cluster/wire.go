package cluster

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"aipow/internal/features"
)

// Wire format (all integers big-endian):
//
//	magic     8 bytes  "AIPoWX2\x00"
//	sig       32 bytes HMAC-SHA256 over everything after it (zero if unkeyed)
//	origins   u8 count, each:
//	    origin    u8 len + bytes
//	    counters  u16 count, each: u8 name len + bytes, f64 bits
//	    issued    u8 count, each: u8 difficulty, u64 count   (sparse)
//	    verified  u8 count, each: u8 difficulty, u64 count   (sparse)
//	    rows      u32 count, each: u8 ip len + bytes,
//	              u64 total, u64 failed, f64 credit, i64 creditAt unix-ns
//	buckets   u8 count, each: i64 epoch, i64 span ns, u32 words, u64 each
//	gen       u64 (sender's evidence watermark; see Frame.Gen)
//	flags     u8  (bit 0: delta frame — rows cover only changes since the
//	               requested watermark)
//
// Every count is bounded against the remaining input before allocating,
// so a truncated or hostile frame fails closed with ErrBadFrame instead
// of ballooning memory. A signed decode (key != nil) rejects any frame
// whose signature does not verify — including unsigned frames.

var frameMagic = [8]byte{'A', 'I', 'P', 'o', 'W', 'X', '2', 0}

// frameFlagDelta marks a delta frame in the wire flags byte.
const frameFlagDelta = 1

// frameSigDomain separates frame signatures from every other HMAC use of
// the pipeline key.
const frameSigDomain = "aipow-cluster-frame\x00"

// ErrBadFrame reports a frame that failed to decode or authenticate.
var ErrBadFrame = errors.New("cluster: bad frame")

// Wire bounds. Frames exceeding them fail closed.
const (
	maxFrameBytes   = 16 << 20
	maxWireOrigins  = maxPeerOrigins + 1
	maxWireCounters = 256
	maxWireRows     = 1 << 16
	maxWireBuckets  = 32
	maxWireWords    = 1 << 22 / 64 // caps filter bits at 4 Mi
)

// EncodeFrame serializes f, signing with key when non-nil.
func EncodeFrame(f *Frame, key []byte) ([]byte, error) {
	if len(f.Origins) > maxWireOrigins {
		return nil, fmt.Errorf("%w: %d origins exceeds %d", ErrBadFrame, len(f.Origins), maxWireOrigins)
	}
	if len(f.Buckets) > maxWireBuckets {
		return nil, fmt.Errorf("%w: %d buckets exceeds %d", ErrBadFrame, len(f.Buckets), maxWireBuckets)
	}
	buf := make([]byte, 0, 4096)
	buf = append(buf, frameMagic[:]...)
	buf = append(buf, make([]byte, sha256.Size)...) // signature placeholder
	buf = append(buf, byte(len(f.Origins)))
	for i := range f.Origins {
		var err error
		if buf, err = appendSection(buf, &f.Origins[i]); err != nil {
			return nil, err
		}
	}
	buf = append(buf, byte(len(f.Buckets)))
	for i := range f.Buckets {
		b := &f.Buckets[i]
		if len(b.Words) > maxWireWords {
			return nil, fmt.Errorf("%w: bucket of %d words exceeds %d", ErrBadFrame, len(b.Words), maxWireWords)
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(b.Epoch))
		buf = binary.BigEndian.AppendUint64(buf, uint64(b.Span))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(b.Words)))
		for _, w := range b.Words {
			buf = binary.BigEndian.AppendUint64(buf, w)
		}
	}
	buf = binary.BigEndian.AppendUint64(buf, f.Gen)
	var flags byte
	if f.Delta {
		flags |= frameFlagDelta
	}
	buf = append(buf, flags)
	if key != nil {
		mac := hmac.New(sha256.New, key)
		mac.Write([]byte(frameSigDomain))
		mac.Write(buf[len(frameMagic)+sha256.Size:])
		mac.Sum(buf[len(frameMagic):len(frameMagic)])
	}
	return buf, nil
}

func appendSection(buf []byte, sec *OriginSection) ([]byte, error) {
	if len(sec.Origin) == 0 || len(sec.Origin) > 255 {
		return nil, fmt.Errorf("%w: origin name length %d outside [1, 255]", ErrBadFrame, len(sec.Origin))
	}
	if len(sec.Counters) > maxWireCounters {
		return nil, fmt.Errorf("%w: %d counters exceeds %d", ErrBadFrame, len(sec.Counters), maxWireCounters)
	}
	if len(sec.Rows) > maxWireRows {
		return nil, fmt.Errorf("%w: %d rows exceeds %d", ErrBadFrame, len(sec.Rows), maxWireRows)
	}
	buf = append(buf, byte(len(sec.Origin)))
	buf = append(buf, sec.Origin...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(sec.Counters)))
	for _, name := range sortedCounterNames(sec.Counters) {
		if len(name) == 0 || len(name) > 255 {
			return nil, fmt.Errorf("%w: counter name length %d outside [1, 255]", ErrBadFrame, len(name))
		}
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(sec.Counters[name]))
	}
	for _, profile := range [][]uint64{sec.DiffIssued, sec.DiffVerified} {
		if len(profile) > 256 {
			return nil, fmt.Errorf("%w: difficulty profile of %d entries", ErrBadFrame, len(profile))
		}
		nonzero := 0
		for _, c := range profile {
			if c != 0 {
				nonzero++
			}
		}
		if nonzero > 255 {
			return nil, fmt.Errorf("%w: %d non-zero profile entries", ErrBadFrame, nonzero)
		}
		buf = append(buf, byte(nonzero))
		for d, c := range profile {
			if c != 0 {
				buf = append(buf, byte(d))
				buf = binary.BigEndian.AppendUint64(buf, c)
			}
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(sec.Rows)))
	for i := range sec.Rows {
		r := &sec.Rows[i]
		if len(r.IP) == 0 || len(r.IP) > 255 {
			return nil, fmt.Errorf("%w: row IP length %d outside [1, 255]", ErrBadFrame, len(r.IP))
		}
		buf = append(buf, byte(len(r.IP)))
		buf = append(buf, r.IP...)
		buf = binary.BigEndian.AppendUint64(buf, r.Total)
		buf = binary.BigEndian.AppendUint64(buf, r.Failed)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.SolveCredit))
		var at int64
		if !r.CreditAt.IsZero() {
			at = r.CreditAt.UnixNano()
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(at))
	}
	return buf, nil
}

func sortedCounterNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// DecodeFrame parses data, verifying its signature against key when key
// is non-nil. Decoding fails closed: truncation, garbage, out-of-bound
// counts, non-finite floats, or a bad signature all yield ErrBadFrame
// and a nil frame.
func DecodeFrame(data []byte, key []byte) (*Frame, error) {
	if len(data) > maxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes exceeds %d", ErrBadFrame, len(data), maxFrameBytes)
	}
	if len(data) < len(frameMagic)+sha256.Size+2 {
		return nil, fmt.Errorf("%w: truncated header", ErrBadFrame)
	}
	if string(data[:len(frameMagic)]) != string(frameMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if key != nil {
		mac := hmac.New(sha256.New, key)
		mac.Write([]byte(frameSigDomain))
		mac.Write(data[len(frameMagic)+sha256.Size:])
		if !hmac.Equal(mac.Sum(nil), data[len(frameMagic):len(frameMagic)+sha256.Size]) {
			return nil, fmt.Errorf("%w: signature mismatch", ErrBadFrame)
		}
	}
	rd := wireReader{b: data[len(frameMagic)+sha256.Size:]}
	f := &Frame{}
	nOrigins := int(rd.u8())
	if nOrigins > maxWireOrigins {
		return nil, fmt.Errorf("%w: %d origins exceeds %d", ErrBadFrame, nOrigins, maxWireOrigins)
	}
	for i := 0; i < nOrigins && !rd.failed; i++ {
		sec, err := rd.section()
		if err != nil {
			return nil, err
		}
		f.Origins = append(f.Origins, sec)
	}
	nBuckets := int(rd.u8())
	if nBuckets > maxWireBuckets {
		return nil, fmt.Errorf("%w: %d buckets exceeds %d", ErrBadFrame, nBuckets, maxWireBuckets)
	}
	for i := 0; i < nBuckets && !rd.failed; i++ {
		epoch := int64(rd.u64())
		span := int64(rd.u64())
		nWords := int(rd.u32())
		if nWords > maxWireWords || nWords*8 > rd.remaining() {
			return nil, fmt.Errorf("%w: bucket word count %d exceeds input", ErrBadFrame, nWords)
		}
		words := make([]uint64, nWords)
		for w := range words {
			words[w] = rd.u64()
		}
		if epoch < 0 || span <= 0 {
			return nil, fmt.Errorf("%w: bucket epoch %d span %d", ErrBadFrame, epoch, span)
		}
		f.Buckets = append(f.Buckets, FilterBucket{Epoch: epoch, Span: span, Words: words})
	}
	f.Gen = rd.u64()
	flags := rd.u8()
	if !rd.failed && flags > frameFlagDelta {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadFrame, flags)
	}
	f.Delta = flags&frameFlagDelta != 0
	if rd.failed {
		return nil, fmt.Errorf("%w: truncated", ErrBadFrame)
	}
	if rd.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, rd.remaining())
	}
	return f, nil
}

// wireReader cursors over the payload, latching failure on any short
// read so callers can batch reads and check once.
type wireReader struct {
	b      []byte
	failed bool
}

func (r *wireReader) remaining() int { return len(r.b) }

func (r *wireReader) take(n int) []byte {
	if r.failed || len(r.b) < n {
		r.failed = true
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *wireReader) f64() (float64, error) {
	v := math.Float64frombits(r.u64())
	if !r.failed && (math.IsNaN(v) || math.IsInf(v, 0) || v < 0) {
		return 0, fmt.Errorf("%w: non-finite or negative float", ErrBadFrame)
	}
	return v, nil
}

func (r *wireReader) str(what string) (string, error) {
	n := int(r.u8())
	if !r.failed && n == 0 {
		return "", fmt.Errorf("%w: empty %s", ErrBadFrame, what)
	}
	return string(r.take(n)), nil
}

func (r *wireReader) section() (OriginSection, error) {
	var sec OriginSection
	origin, err := r.str("origin")
	if err != nil {
		return sec, err
	}
	sec.Origin = origin
	nCounters := int(r.u16())
	if nCounters > maxWireCounters {
		return sec, fmt.Errorf("%w: %d counters exceeds %d", ErrBadFrame, nCounters, maxWireCounters)
	}
	if nCounters > 0 {
		sec.Counters = make(map[string]float64, nCounters)
	}
	for i := 0; i < nCounters && !r.failed; i++ {
		name, err := r.str("counter name")
		if err != nil {
			return sec, err
		}
		v, err := r.f64()
		if err != nil {
			return sec, err
		}
		sec.Counters[name] = v
	}
	for pi := 0; pi < 2 && !r.failed; pi++ {
		n := int(r.u8())
		var profile []uint64
		for i := 0; i < n && !r.failed; i++ {
			d := int(r.u8())
			c := r.u64()
			if profile == nil {
				profile = make([]uint64, 256)
			}
			profile[d] = c
		}
		if pi == 0 {
			sec.DiffIssued = profile
		} else {
			sec.DiffVerified = profile
		}
	}
	nRows := int(r.u32())
	if nRows > maxWireRows || nRows*26 > r.remaining() {
		return sec, fmt.Errorf("%w: row count %d exceeds input", ErrBadFrame, nRows)
	}
	for i := 0; i < nRows && !r.failed; i++ {
		ip, err := r.str("row IP")
		if err != nil {
			return sec, err
		}
		total := r.u64()
		failed := r.u64()
		credit, err := r.f64()
		if err != nil {
			return sec, err
		}
		at := int64(r.u64())
		var creditAt time.Time
		if at != 0 {
			creditAt = time.Unix(0, at)
		}
		sec.Rows = append(sec.Rows, features.EvidenceRow{
			IP: ip, Total: total, Failed: failed, SolveCredit: credit, CreditAt: creditAt,
		})
	}
	if r.failed {
		return sec, fmt.Errorf("%w: truncated section", ErrBadFrame)
	}
	return sec, nil
}
