package cluster

import (
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"aipow/internal/features"
	"aipow/internal/feedback"
	"aipow/internal/obs"
)

// fakeSource is a settable local-counter source.
type fakeSource struct {
	counters map[string]float64
	issued   map[int]uint64
}

func (f *fakeSource) StatsInto(dst map[string]float64) {
	for k, v := range f.counters {
		dst[k] = v
	}
}

func (f *fakeSource) DifficultyProfileInto(issued, verified []uint64) {
	for i := range issued {
		issued[i] = 0
	}
	for i := range verified {
		verified[i] = 0
	}
	for d, c := range f.issued {
		if d < len(issued) {
			issued[d] = c
		}
	}
}

func testNode(t *testing.T, origin string) *Node {
	t.Helper()
	n, err := NewNode(Config{
		Origin:     origin,
		FilterBits: 1 << 14,
		Retain:     30 * time.Second,
		Now:        func() time.Time { return bloomEpoch },
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNodeCrossNodeReplaySuppression(t *testing.T) {
	a := testNode(t, "a")
	b := testNode(t, "b")
	tag := testTag(99)

	a.RedeemedTag(tag, bloomEpoch.Add(time.Minute))
	if !a.SeenTag(tag) {
		t.Fatal("redeeming node forgot its own tag")
	}
	if b.SeenTag(tag) {
		t.Fatal("tag known before any exchange")
	}
	b.ExchangeWith(a)
	if !b.SeenTag(tag) {
		t.Fatal("tag did not propagate on exchange")
	}
	if b.Stats().FilterHits == 0 {
		t.Fatal("filter hit not counted")
	}
}

func TestNodeCounterGossipAndRelay(t *testing.T) {
	a := testNode(t, "a")
	b := testNode(t, "b")
	c := testNode(t, "c")
	a.BindLocal(&fakeSource{counters: map[string]float64{"issued": 100, "verified": 60}, issued: map[int]uint64{8: 100}}, nil)
	b.BindLocal(&fakeSource{counters: map[string]float64{"issued": 40}}, nil)

	// b learns a directly; c only ever talks to b and learns a by relay.
	b.ExchangeWith(a)
	c.ExchangeWith(b)

	dst := map[string]float64{}
	c.PeerSource().StatsInto(dst)
	if dst["issued"] != 140 || dst["verified"] != 60 {
		t.Fatalf("relayed peer counters = %v, want issued 140 verified 60", dst)
	}
	var issued, verified [64]uint64
	c.PeerSource().DifficultyProfileInto(issued[:], verified[:])
	if issued[8] != 100 {
		t.Fatalf("relayed difficulty profile issued[8] = %d, want 100", issued[8])
	}

	// Absorbing the same state again changes nothing (idempotent), and
	// counters only move forward (monotone max).
	c.ExchangeWith(b)
	clear(dst)
	c.PeerSource().StatsInto(dst)
	if dst["issued"] != 140 {
		t.Fatalf("re-exchange changed counters: %v", dst)
	}

	// A stale relay cannot roll counters back: feed c an old frame for a.
	c.Absorb(&Frame{Origins: []OriginSection{{Origin: "a", Counters: map[string]float64{"issued": 10}}}})
	clear(dst)
	c.PeerSource().StatsInto(dst)
	if dst["issued"] != 140 {
		t.Fatalf("stale frame rolled counters back: %v", dst)
	}
}

func TestNodeEvidenceGossip(t *testing.T) {
	ta, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	a := testNode(t, "a")
	b := testNode(t, "b")
	a.BindLocal(nil, ta)
	b.BindLocal(nil, tb)

	ta.RecordVerify("198.51.100.9", 12, true, bloomEpoch)
	b.ExchangeWith(a)
	rows := tb.ExportEvidence(nil, 0)
	if len(rows) != 1 || rows[0].IP != "198.51.100.9" || rows[0].SolveCredit <= 0 {
		t.Fatalf("evidence did not gossip: %+v", rows)
	}
	// And back: the echo is harmless.
	before := ta.ExportEvidence(nil, 0)
	a.ExchangeWith(b)
	after := ta.ExportEvidence(nil, 0)
	if len(before) != len(after) || !rowsEqual(before[0], after[0]) {
		t.Fatalf("gossip echo changed evidence: %+v → %+v", before, after)
	}
}

func TestNodeIgnoresSectionsAboutItself(t *testing.T) {
	a := testNode(t, "a")
	a.Absorb(&Frame{Origins: []OriginSection{{Origin: "a", Counters: map[string]float64{"issued": 1e9}}}})
	dst := map[string]float64{}
	a.PeerSource().StatsInto(dst)
	if dst["issued"] != 0 {
		t.Fatalf("node absorbed a section about itself: %v", dst)
	}
}

func TestNodeBoundsPeerOrigins(t *testing.T) {
	a := testNode(t, "a")
	f := &Frame{}
	for i := 0; i < maxPeerOrigins+20; i++ {
		f.Origins = append(f.Origins, OriginSection{
			Origin:   strings.Repeat("x", 1+i%5) + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Counters: map[string]float64{"issued": 1},
		})
	}
	a.Absorb(f)
	if got := a.Stats().Peers; got > maxPeerOrigins {
		t.Fatalf("peer map grew to %d, bound is %d", got, maxPeerOrigins)
	}
}

func TestNodeSeenTagZeroAllocs(t *testing.T) {
	a := testNode(t, "a")
	hit := testTag(1)
	miss := testTag(2)
	a.RedeemedTag(hit, bloomEpoch.Add(time.Minute))
	if allocs := testing.AllocsPerRun(1000, func() {
		a.SeenTag(hit)
		a.SeenTag(miss)
	}); allocs != 0 {
		t.Fatalf("SeenTag allocates %.1f/op on the serving path", allocs)
	}
}

// frameFetcher serves a fixed peer's live frames in-process.
type frameFetcher struct{ peer *Node }

func (f frameFetcher) Fetch() (*Frame, error) { return f.peer.Frame(), nil }

type failingFetcher struct{}

func (failingFetcher) Fetch() (*Frame, error) { return nil, errors.New("peer down") }

func TestNodeRunExchangesAndCloses(t *testing.T) {
	before := runtime.NumGoroutine()
	a, err := NewNode(Config{Origin: "a", FilterBits: 1 << 14, Exchange: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b := testNode(t, "b")
	b.BindLocal(&fakeSource{counters: map[string]float64{"issued": 7}}, nil)

	if err := a.Run([]Fetcher{frameFetcher{peer: b}, failingFetcher{}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(nil); err == nil {
		t.Fatal("second Run accepted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := a.Stats()
		if s.Exchanges > 0 && s.AbsorbErrs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("exchange loop made no progress: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	dst := map[string]float64{}
	a.PeerSource().StatsInto(dst)
	if dst["issued"] != 7 {
		t.Fatalf("Run-loop exchange did not absorb counters: %v", dst)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	// The loop goroutine must be gone.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before Run, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNodeCloseWithoutRun(t *testing.T) {
	a := testNode(t, "a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeHTTPExchange(t *testing.T) {
	key := []byte("frame-signing-key-0123456789abcd")
	a, err := NewNode(Config{Origin: "a", FilterBits: 1 << 14, Key: key, Now: func() time.Time { return bloomEpoch }})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(Config{Origin: "b", FilterBits: 1 << 14, Key: key, Now: func() time.Time { return bloomEpoch }})
	if err != nil {
		t.Fatal(err)
	}
	tag := testTag(5)
	a.RedeemedTag(tag, bloomEpoch.Add(time.Minute))
	a.BindLocal(&fakeSource{counters: map[string]float64{"issued": 11}}, nil)

	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	fetchers := NewHTTPFetchers([]string{srv.URL}, key, time.Second, 0)
	f, err := fetchers[0].Fetch()
	if err != nil {
		t.Fatal(err)
	}
	b.Absorb(f)
	if !b.SeenTag(tag) {
		t.Fatal("tag did not survive the HTTP wire")
	}
	dst := map[string]float64{}
	b.PeerSource().StatsInto(dst)
	if dst["issued"] != 11 {
		t.Fatalf("counters did not survive the HTTP wire: %v", dst)
	}

	// A fetcher keyed differently rejects the frame: fail closed.
	bad := NewHTTPFetchers([]string{srv.URL}, []byte("other-signing-key-0123456789abcd"), time.Second, 0)
	if _, err := bad[0].Fetch(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("mis-keyed fetch accepted: %v", err)
	}
}

var _ feedback.Source = (*fakeSource)(nil)

// flakyFetcher errors while fail is set, serving its node's frame
// otherwise.
type flakyFetcher struct {
	node *Node
	fail bool
}

func (f *flakyFetcher) Fetch() (*Frame, error) {
	if f.fail {
		return nil, errors.New("partitioned")
	}
	return f.node.Frame(), nil
}

func TestNodeMembershipEvents(t *testing.T) {
	var events []obs.Event
	a, err := NewNode(Config{
		Origin: "a",
		Now:    func() time.Time { return bloomEpoch },
		Events: func(e obs.Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(Config{Origin: "b", Now: func() time.Time { return bloomEpoch }})
	if err != nil {
		t.Fatal(err)
	}
	b.BindLocal(&fakeSource{counters: map[string]float64{"issued": 1}}, nil)

	fetch := &flakyFetcher{node: b}
	failing := make([]bool, 1)

	// First round succeeds: the unknown origin joins, exactly once.
	a.exchangeOnce([]Fetcher{fetch}, failing)
	a.exchangeOnce([]Fetcher{fetch}, failing)
	if len(events) != 1 {
		t.Fatalf("events after two healthy rounds = %+v, want one peer_join", events)
	}
	if e := events[0]; e.Kind != obs.EventPeerJoin || e.Node != "a" || e.Detail != "b" {
		t.Errorf("join event = %+v", e)
	}

	// Partition: stale fires on the first failed round only.
	fetch.fail = true
	a.exchangeOnce([]Fetcher{fetch}, failing)
	a.exchangeOnce([]Fetcher{fetch}, failing)
	if len(events) != 2 {
		t.Fatalf("events after partition = %+v, want join+stale", events)
	}
	if e := events[1]; e.Kind != obs.EventPeerStale || e.Node != "a" || e.Detail != "peer[0]" {
		t.Errorf("stale event = %+v", e)
	}

	// Heal, then re-partition: the edge fires again.
	fetch.fail = false
	a.exchangeOnce([]Fetcher{fetch}, failing)
	fetch.fail = true
	a.exchangeOnce([]Fetcher{fetch}, failing)
	if len(events) != 3 || events[2].Kind != obs.EventPeerStale {
		t.Fatalf("events after heal+re-partition = %+v, want a second stale", events)
	}
	if got := a.Stats().AbsorbErrs; got != 3 {
		t.Errorf("absorb errors = %d, want 3", got)
	}
}
