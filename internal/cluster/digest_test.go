package cluster

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"aipow/internal/features"
)

const testHalfLife = 5 * time.Minute

var digestEpoch = time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC)

// randRow draws an arbitrary evidence row; failures never exceed totals
// (the invariant real trackers maintain).
func randRow(rng *rand.Rand) features.EvidenceRow {
	total := rng.Uint64() % 1e6
	return features.EvidenceRow{
		IP:          "203.0.113.7",
		Total:       total,
		Failed:      rng.Uint64() % (total + 1),
		SolveCredit: rng.Float64() * 50,
		CreditAt:    digestEpoch.Add(time.Duration(rng.Int63n(int64(24 * time.Hour)))),
	}
}

// decayedTo re-expresses a row's credit at a later reference time using
// only the public merge operation (merging with an empty row carrying the
// target time), so the no-resurrection test exercises exactly the decay
// the merge itself applies.
func decayedTo(a features.EvidenceRow, at time.Time) features.EvidenceRow {
	return features.MergeRows(a, features.EvidenceRow{IP: a.IP, CreditAt: at}, testHalfLife)
}

func rowsEqual(a, b features.EvidenceRow) bool {
	return a.Total == b.Total && a.Failed == b.Failed &&
		a.SolveCredit == b.SolveCredit && a.CreditAt.Equal(b.CreditAt)
}

func rowsClose(a, b features.EvidenceRow) bool {
	if a.Total != b.Total || a.Failed != b.Failed || !a.CreditAt.Equal(b.CreditAt) {
		return false
	}
	diff := math.Abs(a.SolveCredit - b.SolveCredit)
	scale := math.Max(math.Abs(a.SolveCredit), math.Abs(b.SolveCredit))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestMergeRowsCommutative: merge(a, b) == merge(b, a), exactly.
func TestMergeRowsCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randRow(rng), randRow(rng)
		ab := features.MergeRows(a, b, testHalfLife)
		ba := features.MergeRows(b, a, testHalfLife)
		if !rowsEqual(ab, ba) {
			t.Fatalf("iteration %d: merge not commutative:\n a=%+v\n b=%+v\nab=%+v\nba=%+v", i, a, b, ab, ba)
		}
	}
}

// TestMergeRowsAssociative: merge(merge(a, b), c) == merge(a, merge(b, c))
// up to float rounding in the decay factor (2^-(d1+d2) vs 2^-d1 · 2^-d2).
func TestMergeRowsAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b, c := randRow(rng), randRow(rng), randRow(rng)
		left := features.MergeRows(features.MergeRows(a, b, testHalfLife), c, testHalfLife)
		right := features.MergeRows(a, features.MergeRows(b, c, testHalfLife), testHalfLife)
		if !rowsClose(left, right) {
			t.Fatalf("iteration %d: merge not associative:\n a=%+v\n b=%+v\n c=%+v\nleft=%+v\nright=%+v",
				i, a, b, c, left, right)
		}
	}
}

// TestMergeRowsIdempotent: merge(a, a) == a, exactly.
func TestMergeRowsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := randRow(rng)
		if got := features.MergeRows(a, a, testHalfLife); !rowsEqual(got, a) {
			t.Fatalf("iteration %d: merge(a, a) = %+v, want %+v", i, got, a)
		}
	}
}

// TestMergeRowsNeverResurrects: merging a row with a later-decayed copy of
// itself yields the decayed copy — stale gossip cannot restore credit that
// has since decayed away locally.
func TestMergeRowsNeverResurrects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		a := randRow(rng)
		later := a.CreditAt.Add(time.Duration(rng.Int63n(int64(time.Hour))) + time.Second)
		decayed := decayedTo(a, later)
		if decayed.SolveCredit >= a.SolveCredit && a.SolveCredit > 0 {
			t.Fatalf("iteration %d: decay to %v did not reduce credit (%v → %v)",
				i, later, a.SolveCredit, decayed.SolveCredit)
		}
		if got := features.MergeRows(a, decayed, testHalfLife); !rowsEqual(got, decayed) {
			t.Fatalf("iteration %d: merge(a, decay(a)) = %+v, want the decayed row %+v", i, got, decayed)
		}
		if got := features.MergeRows(decayed, a, testHalfLife); !rowsEqual(got, decayed) {
			t.Fatalf("iteration %d: merge(decay(a), a) = %+v, want the decayed row %+v", i, got, decayed)
		}
	}
}

// TestTrackerGossipRoundTrip drives the tracker-level export/merge pair:
// evidence earned on one tracker transfers to another, and echoing the
// merged digest back changes nothing (gossip echo is harmless).
func TestTrackerGossipRoundTrip(t *testing.T) {
	now := digestEpoch
	ta, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		at := now.Add(time.Duration(i) * time.Second)
		if err := ta.Observe(features.RequestInfo{IP: "198.51.100.9", Path: "/", At: at}); err != nil {
			t.Fatal(err)
		}
		ta.RecordVerify("198.51.100.9", 12, true, at)
	}
	if err := ta.Observe(features.RequestInfo{IP: "198.51.100.9", Path: "/", At: now.Add(6 * time.Second), Failed: true}); err != nil {
		t.Fatal(err)
	}

	exported := ta.ExportEvidence(nil, 0)
	if len(exported) != 1 {
		t.Fatalf("exported %d rows, want 1", len(exported))
	}
	if exported[0].Total != 6 || exported[0].Failed != 1 || exported[0].SolveCredit <= 0 {
		t.Fatalf("unexpected export %+v", exported[0])
	}

	tb.MergeEvidence(exported)
	merged := tb.ExportEvidence(nil, 0)
	if len(merged) != 1 || !rowsEqual(merged[0], exported[0]) {
		t.Fatalf("merge did not transfer evidence: got %+v, want %+v", merged, exported)
	}

	// Echo: merging B's digest back into A must be a no-op.
	ta.MergeEvidence(merged)
	after := ta.ExportEvidence(nil, 0)
	if len(after) != 1 || !rowsEqual(after[0], exported[0]) {
		t.Fatalf("gossip echo changed local evidence: got %+v, want %+v", after, exported)
	}

	// Idempotence at tracker level: merging the same digest again too.
	tb.MergeEvidence(exported)
	again := tb.ExportEvidence(nil, 0)
	if len(again) != 1 || !rowsEqual(again[0], exported[0]) {
		t.Fatalf("repeated merge changed evidence: got %+v, want %+v", again, exported)
	}
}

// TestExportEvidenceBounds: maxRows truncates deterministically and empty
// entries are skipped.
func TestExportEvidenceBounds(t *testing.T) {
	tr, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	now := digestEpoch
	ips := []string{"10.0.0.3", "10.0.0.1", "10.0.0.2"}
	for _, ip := range ips {
		tr.RecordVerify(ip, 8, true, now)
	}
	// An entry holding neither request counts nor solve credit — a failed
	// verification alone — carries nothing a peer could merge, so it is
	// skipped (fail streaks are deliberately not gossiped: the local
	// reset-on-success makes them non-monotone).
	tr.RecordVerify("10.0.0.9", 8, false, now)

	all := tr.ExportEvidence(nil, 0)
	if len(all) != 3 {
		t.Fatalf("exported %d rows, want 3 (evidence-free entries must be skipped)", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].IP >= all[i].IP {
			t.Fatalf("export not sorted: %q before %q", all[i-1].IP, all[i].IP)
		}
	}
	capped := tr.ExportEvidence(nil, 2)
	if len(capped) != 2 || capped[0].IP != "10.0.0.1" || capped[1].IP != "10.0.0.2" {
		t.Fatalf("maxRows truncation unstable: %+v", capped)
	}
}
