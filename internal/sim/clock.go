package sim

import (
	"sync/atomic"
	"time"
)

// Clock is a manually-advanced time source for simulated runs: the engine
// (or a test) sets the time, and everything built on the framework's
// WithClock hook — challenge TTLs, tracker windows, replay sweeps — moves
// in simulated time with no wall-clock dependence.
//
// Reads are a single atomic load, so a Clock can sit on the serving hot
// path of a framework being driven concurrently. The zero value reads as
// the Unix epoch; construct with NewClock.
type Clock struct {
	// ns holds the current time as nanoseconds since the Unix epoch. The
	// monotonic reading is deliberately dropped: simulated time must
	// compare and subtract exactly, and survive round-trips through
	// serialized state.
	ns atomic.Int64
}

// NewClock returns a clock reading start.
func NewClock(start time.Time) *Clock {
	c := &Clock{}
	c.ns.Store(start.UnixNano())
	return c
}

// Now reports the current simulated time. The method value c.Now is a
// `func() time.Time` and plugs directly into core.WithClock.
func (c *Clock) Now() time.Time {
	return time.Unix(0, c.ns.Load()).UTC()
}

// Set jumps the clock to t. It never moves backward: simulated components
// (TTL checks, sliding windows) assume monotonic time.
func (c *Clock) Set(t time.Time) {
	target := t.UnixNano()
	for {
		cur := c.ns.Load()
		if target <= cur || c.ns.CompareAndSwap(cur, target) {
			return
		}
	}
}

// Advance moves the clock forward by d (negative d is ignored) and reports
// the new time.
func (c *Clock) Advance(d time.Duration) time.Time {
	if d > 0 {
		c.ns.Add(int64(d))
	}
	return c.Now()
}

// Epoch is the canonical simulated-time origin scenarios start from: the
// source paper's submission date, matching internal/netsim. Any fixed
// instant works; fixing one keeps reports and golden files stable.
func Epoch() time.Time { return time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC) }
