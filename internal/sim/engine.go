// Package sim is a deterministic adversarial scenario engine: it drives a
// real core.Framework — the same scoring → policy → issuance pipeline that
// serves production traffic, including the PR 1 vector fast path and
// sharded tracker — with declaratively-defined mixed client populations
// (steady legitimate traffic, flash crowds, pulsing attackers, rotating-IP
// botnets, slow-and-low probers, reputation-poisoning warmups) and scores
// each run against declared economic-asymmetry invariants.
//
// Two properties hold at once, and their combination is the point:
//
//   - Concurrency: within each simulated tick, events run across a pool
//     of workers that call Decide/Observe concurrently, so every run
//     exercises the framework's lock-striped hot path under realistic
//     contention (and under the race detector in tests).
//
//   - Determinism: events shard onto workers by client IP, every random
//     draw comes from a PRNG seeded by position (scenario seed ×
//     population × tick × event) rather than by arrival order, per-worker
//     results merge in fixed worker order, and time is a simulated clock.
//     Two runs with the same seed produce byte-identical reports, which
//     is what lets CI diff SIM_scenarios.json and gate on regressions.
//
// The engine deliberately has no server queueing model: internal/attack
// (on the netsim event loop) measures overload collapse; this engine
// measures the paper's central claim — who pays how much work for how much
// service — under adversarial traffic mixes. Solving is modeled as the
// same geometric process a real solver executes (netsim.SimSolver); with
// Defense.RealSolve the engine additionally performs real nonce searches
// and redeems them through Framework.Verify, exercising the cryptographic
// path end to end at low difficulties.
package sim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"aipow/internal/cluster"
	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/feedback"
	"aipow/internal/metrics"
	"aipow/internal/netsim"
	"aipow/internal/obs"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

// Default engine parameters.
const (
	// DefaultTick is the engine time step when Scenario.Tick is zero.
	DefaultTick = 100 * time.Millisecond

	// DefaultWorkers is the concurrency width when Scenario.Workers is
	// zero. Events shard by IP across workers, so the width changes only
	// scheduling, never results.
	DefaultWorkers = 8
)

// outcome accumulates one (population, phase) cell's results. Workers each
// own a private set; the engine merges them in worker order, so every
// floating-point sum accumulates in the same order on every run.
type outcome struct {
	requests      uint64
	challenged    uint64
	bypassed      uint64
	served        uint64
	ignored       uint64
	gaveUp        uint64
	expired       uint64
	rejected      uint64
	scoreErrors   uint64
	decideErrors  uint64
	solveAttempts uint64
	diffSum       uint64
	diffHist      map[int]uint64
	scoreSum      float64
	latency       *metrics.Histogram // end-to-end served latency, ms
	work          *metrics.Histogram // modeled hashes per solved request
}

func newOutcome() *outcome {
	return &outcome{
		diffHist: make(map[int]uint64),
		latency:  metrics.NewLatencyHistogram(),
		// Power-of-two buckets: 1 hash to ~2^40, matching the geometric
		// solve process, so the median cost estimate is sharp.
		work: metrics.NewHistogram(1, 2, 40),
	}
}

// merge folds other into o (deterministic given call order).
func (o *outcome) merge(other *outcome) {
	o.requests += other.requests
	o.challenged += other.challenged
	o.bypassed += other.bypassed
	o.served += other.served
	o.ignored += other.ignored
	o.gaveUp += other.gaveUp
	o.expired += other.expired
	o.rejected += other.rejected
	o.scoreErrors += other.scoreErrors
	o.decideErrors += other.decideErrors
	o.solveAttempts += other.solveAttempts
	o.diffSum += other.diffSum
	for d, n := range other.diffHist {
		o.diffHist[d] += n
	}
	o.scoreSum += other.scoreSum
	o.latency.Merge(other.latency)
	o.work.Merge(other.work)
}

// Result is one scenario's raw outcome: per-population, per-phase cells
// plus the framework's own counters as a cross-check.
type Result struct {
	// Scenario echoes the (defaults-resolved) input.
	Scenario Scenario

	// Outcomes is indexed [population][phase].
	Outcomes [][]*outcome

	// FrameworkStats snapshots the framework's counters (issued,
	// verified, rejected, bypassed, score_errors) after the run.
	FrameworkStats map[string]float64

	// Adapt summarizes the feedback controller's behavior (nil when the
	// defense declares no adapt section).
	Adapt *AdaptOutcome

	// Events is the run's merged defense event log (nil unless the
	// defense sets Events).
	Events []obs.Event
}

// event is one unit of simulated work, processed by the worker owning its
// client IP.
type event struct {
	completion bool
	pop        int
	phase      int
	client     int
	node       int // fleet node serving the event (0 outside cluster mode)
	ip         string
	at         time.Duration // event time, offset from scenario start
	seed       uint64        // per-event PRNG seed (arrivals)

	// Completion-only fields.
	sentAt time.Duration
	diff   int  // assigned difficulty (0 for bypassed completions)
	verify bool // redeem sol through Framework.Verify (real-solve mode)
	replay bool // cross-node resubmission of an already-redeemed sol
	sol    puzzle.Solution
}

// worker owns a shard of the IP space: a calendar of future events and a
// private outcome grid. Workers never touch each other's state, which is
// what makes concurrent execution order-independent.
type worker struct {
	eng    *engine
	future map[int][]event // tick index → events, processed in append order
	out    [][]*outcome    // [population][phase]
	solver *puzzle.Solver

	// Modeled verification accounting for the feedback signal plane,
	// per fleet node (length 1 outside cluster mode): a modeled
	// completion is the simulation shortcut for a solved-and-verified
	// challenge, so each node's controller source folds these counts
	// into that node's verify counters. Read only at tick boundaries
	// (single-threaded points).
	mVerified [][puzzle.MaxDifficulty + 1]uint64
	mExpired  []uint64

	// Batch-mode scratch, reused across runs within the worker's ticks.
	seen   []string
	runArr []arrival
	runObs []features.RequestInfo
	runReq []core.RequestContext
	runDec []core.Decision
}

// schedule queues ev at the tick containing its event time. Scheduling
// into the worker's current tick is allowed (the tick loop re-checks its
// queue length), so zero-delay completions land in the same tick.
func (w *worker) schedule(tick int, ev event) {
	w.future[tick] = append(w.future[tick], ev)
}

// simNode is one fleet member of a run: a full defense pipeline plus its
// cluster exchange endpoint and (with Defense.Adapt) its own controller.
// Single-framework runs are the one-node degenerate case with no cluster
// endpoint, so the two modes share every code path.
type simNode struct {
	fw      *core.Framework
	tracker *features.Tracker
	cnode   *cluster.Node        // nil outside cluster mode
	ctrl    *feedback.Controller // nil without Defense.Adapt
	elog    *obs.EventLog        // nil without Defense.Events
}

// eventSink is the node's defense event sink, stamped with the node's
// fleet origin when the run has more than one member. Nil without
// Defense.Events, so the zero-configuration path emits nothing.
func (n *simNode) eventSink(origin string, fleet bool) obs.Sink {
	if n.elog == nil {
		return nil
	}
	if !fleet {
		return n.elog.Append
	}
	return func(e obs.Event) {
		e.Node = origin
		n.elog.Append(e)
	}
}

// engine is the per-run state.
type engine struct {
	sc       Scenario
	nodes    []*simNode
	clock    *Clock
	tick     time.Duration
	workers  []*worker
	mask     uint32
	ttl      time.Duration
	phaseEnd []time.Duration // cumulative phase boundaries

	// attemptCost and backendName describe the defense's puzzle backend
	// for modeled-cost accounting: each modeled solve attempt is priced at
	// attemptCost hash-equivalents (1 for hashcash, space-and-rounds
	// dependent for balloon), discounted by the solving population's
	// Speedup factor for backendName.
	attemptCost float64
	backendName string
}

// Run executes the scenario and returns its raw result. The run is
// deterministic: equal scenarios (including Seed) produce equal results,
// bit for bit, regardless of GOMAXPROCS or scheduling.
func Run(sc Scenario) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if sc.Tick == 0 {
		sc.Tick = DefaultTick
	}
	if sc.Workers == 0 {
		sc.Workers = DefaultWorkers
	}
	sc.Workers = ceilPow2(sc.Workers)
	sc.Defense = sc.Defense.withDefaults(sc.Seed)

	clock := NewClock(Epoch())
	backend, err := puzzle.ParseBackendSpec(sc.Defense.Puzzle)
	if err != nil {
		return nil, fmt.Errorf("sim: scenario %q puzzle: %w", sc.Name, err)
	}
	eng := &engine{
		sc:          sc,
		clock:       clock,
		tick:        sc.Tick,
		mask:        uint32(sc.Workers - 1),
		ttl:         sc.Defense.TTL,
		attemptCost: backend.AttemptCost(),
		backendName: backend.Name(),
	}
	if err := eng.buildNodes(); err != nil {
		return nil, err
	}
	var cum time.Duration
	for _, ph := range sc.Phases {
		cum += ph.Duration
		eng.phaseEnd = append(eng.phaseEnd, cum)
	}
	eng.workers = make([]*worker, sc.Workers)
	for i := range eng.workers {
		w := &worker{eng: eng, future: make(map[int][]event)}
		w.out = make([][]*outcome, len(sc.Populations))
		for p := range w.out {
			w.out[p] = make([]*outcome, len(sc.Phases))
			for ph := range w.out[p] {
				w.out[p][ph] = newOutcome()
			}
		}
		w.mVerified = make([][puzzle.MaxDifficulty + 1]uint64, len(eng.nodes))
		w.mExpired = make([]uint64, len(eng.nodes))
		if sc.Defense.RealSolve {
			w.solver = puzzle.NewSolver(puzzle.WithExtendedNonce())
		}
		eng.workers[i] = w
	}
	if err := eng.buildAdapt(); err != nil {
		return nil, err
	}

	ticks := int((sc.Duration() + sc.Tick - 1) / sc.Tick)
	lastPhase := -1
	for t := 0; t < ticks; t++ {
		tickStart := time.Duration(t) * eng.tick
		clock.Set(Epoch().Add(tickStart))
		phase := eng.phaseOf(tickStart)
		// Phase-entry policy swaps run here, between ticks: the engine is
		// single-threaded at this point (runTick's barrier has passed), so
		// the swap lands at a deterministic position in the event order
		// while still exercising the real RCU swap against the concurrent
		// workers of the following ticks.
		for p := lastPhase + 1; p <= phase; p++ {
			if err := eng.applyPhaseSwap(p); err != nil {
				return nil, err
			}
		}
		lastPhase = phase
		// Cluster gossip runs at the same single-threaded point, in fixed
		// node order, so peer views update deterministically before the
		// controllers read them.
		if cs := sc.Cluster; cs != nil && t%cs.exchangeTicks() == 0 {
			eng.exchangeRounds(1)
		}
		// The feedback controllers step at the same single-threaded
		// point, on counters complete through the previous tick — the
		// closed loop runs against the live framework exactly as a
		// server's adapt ticker would, minus wall-clock dependence.
		for _, n := range eng.nodes {
			if n.ctrl == nil {
				continue
			}
			if err := n.ctrl.Step(clock.Now()); err != nil {
				return nil, fmt.Errorf("sim: scenario %q adapt: %w", sc.Name, err)
			}
		}
		eng.generateArrivals(t, tickStart)
		eng.runTick(t)
	}
	// Drain: keep ticking (no new arrivals) until every in-flight solve
	// completes, so tail requests are served rather than silently cut off
	// at the horizon. Jump straight to the next scheduled tick — a slow
	// population's modeled solve can land millions of ticks out, and
	// walking the empty ticks between events would take longer than the
	// events themselves.
	for {
		t, ok := eng.nextPending(ticks)
		if !ok {
			break
		}
		clock.Set(Epoch().Add(time.Duration(t) * eng.tick))
		if sc.Cluster != nil {
			// The drain jumps over empty ticks, so per-tick gossip rounds
			// no longer accumulate; run a full diameter's worth before each
			// drained tick so anything redeemed on the last processed tick
			// has reached every node (the cross-node replay bound).
			eng.exchangeRounds(eng.clusterDiameter())
		}
		eng.runTick(t)
	}

	res := &Result{Scenario: sc, FrameworkStats: make(map[string]float64, 8)}
	if len(eng.nodes) == 1 {
		eng.nodes[0].fw.StatsInto(res.FrameworkStats)
	} else {
		// Fleet counters sum pointwise: one logical defense, K serving
		// nodes. Key-by-key accumulation in fixed node order keeps the
		// float sums deterministic.
		scratch := make(map[string]float64, 16)
		for _, n := range eng.nodes {
			clear(scratch)
			n.fw.StatsInto(scratch)
			for k, v := range scratch {
				res.FrameworkStats[k] += v
			}
		}
	}
	res.Adapt = eng.adaptResult()
	res.Events = eng.eventResult()
	res.Outcomes = make([][]*outcome, len(sc.Populations))
	for p := range res.Outcomes {
		res.Outcomes[p] = make([]*outcome, len(sc.Phases))
		for ph := range res.Outcomes[p] {
			merged := newOutcome()
			for _, w := range eng.workers { // fixed order: deterministic float sums
				merged.merge(w.out[p][ph])
			}
			res.Outcomes[p][ph] = merged
		}
	}
	return res, nil
}

// buildNodes assembles the run's defense node(s): one framework from the
// scenario's factory (or the built-in Defense) in the single-node case, K
// identically-trained pipelines joined by in-process cluster nodes in
// fleet mode. Identical dataset seeds mean every fleet node scores with
// the same model over the same store; only live per-node state (tracker,
// replay window, counters) diverges — exactly a real fleet's shape.
func (eng *engine) buildNodes() error {
	sc := eng.sc
	if sc.Cluster == nil {
		node := &simNode{}
		if sc.Factory != nil {
			fw, err := sc.Factory(eng.clock.Now)
			if err != nil {
				return fmt.Errorf("sim: build defense for %q: %w", sc.Name, err)
			}
			if fw == nil {
				return fmt.Errorf("sim: scenario %q factory returned a nil framework", sc.Name)
			}
			node.fw = fw
			eng.nodes = []*simNode{node}
			return nil
		}
		var extra []core.Option
		if sc.Defense.Events {
			node.elog = obs.NewEventLog(0)
			extra = append(extra, core.WithEventSink(node.eventSink("", false)))
		}
		fw, tracker, err := buildDefenseNode(sc, eng.clock.Now, extra...)
		if err != nil {
			return fmt.Errorf("sim: build defense for %q: %w", sc.Name, err)
		}
		node.fw, node.tracker = fw, tracker
		eng.nodes = []*simNode{node}
		return nil
	}
	d := sc.Defense.withDefaults(sc.Seed)
	eng.nodes = make([]*simNode, sc.Cluster.Nodes)
	for i := range eng.nodes {
		origin := fmt.Sprintf("n%d", i)
		node := &simNode{}
		if sc.Defense.Events {
			node.elog = obs.NewEventLog(0)
		}
		cnode, err := cluster.NewNode(cluster.Config{
			Origin:     origin,
			FilterBits: sc.Cluster.FilterBits,
			// Retain through the full redemption window — TTL plus skew on
			// both ends — so the fleet filter never lets a tag go before
			// the challenge's own freshness check takes over.
			Retain:     d.TTL + 2*2*time.Second,
			DeltaEvery: sc.Cluster.DeltaEvery,
			Now:        eng.clock.Now,
			Events:     node.eventSink(origin, true),
		})
		if err != nil {
			return fmt.Errorf("sim: scenario %q cluster node %d: %w", sc.Name, i, err)
		}
		extra := []core.Option{core.WithTagExchange(cnode)}
		if sc.Defense.Events {
			extra = append(extra, core.WithEventSink(node.eventSink(origin, true)))
		}
		fw, tracker, err := buildDefenseNode(sc, eng.clock.Now, extra...)
		if err != nil {
			return fmt.Errorf("sim: build defense for %q node %d: %w", sc.Name, i, err)
		}
		cnode.BindLocal(adaptSource{eng: eng, node: i}, tracker)
		node.fw, node.tracker, node.cnode = fw, tracker, cnode
		eng.nodes[i] = node
	}
	return nil
}

// exchangeRounds runs the fleet's gossip topology the given number of
// rounds: each round, node i pulls from nodes i+1 … i+Degree (mod K), in
// fixed order — the deterministic in-process analogue of every node's
// exchange loop firing once.
func (eng *engine) exchangeRounds(rounds int) {
	cs := eng.sc.Cluster
	k, deg := len(eng.nodes), cs.degree()
	for r := 0; r < rounds; r++ {
		for i := 0; i < k; i++ {
			for d := 1; d <= deg; d++ {
				eng.nodes[i].cnode.ExchangeWith(eng.nodes[(i+d)%k].cnode)
			}
		}
	}
}

// clusterDiameter reports how many gossip rounds state needs to reach
// every node under the pull topology (1 for a full mesh, K-1 for a ring).
func (eng *engine) clusterDiameter() int {
	deg := eng.sc.Cluster.degree()
	return (len(eng.nodes) - 2 + deg) / deg
}

// buildAdapt compiles the defense's adapt section into one feedback
// controller per node, each bound to its node's framework and counter
// view. With Cluster.FleetFeedback the view is the node's own counters
// summed with its peer-reported fleet state, so every controller's rate
// thresholds see cluster-wide totals. Policies resolve against the
// built-in registry and are clamped to the defense's difficulty cap,
// mirroring BuildDefense.
func (eng *engine) buildAdapt() error {
	a := eng.sc.Defense.Adapt
	if a == nil {
		return nil
	}
	compileClamped := func(spec string) (policy.Policy, error) {
		pol, err := policy.NewRegistry().New(spec)
		if err != nil {
			return nil, err
		}
		return policy.NewClamp(pol, 1, eng.sc.Defense.MaxDifficulty)
	}
	rules := make([]feedback.Rule, 0, len(a.Rules))
	for _, spec := range a.Rules {
		rule, err := feedback.ParseRule(spec)
		if err != nil {
			return fmt.Errorf("sim: scenario %q: %w", eng.sc.Name, err)
		}
		rules = append(rules, rule)
	}
	for i, n := range eng.nodes {
		base, err := compileClamped(eng.sc.Defense.Policy)
		if err != nil {
			return fmt.Errorf("sim: scenario %q adapt base policy: %w", eng.sc.Name, err)
		}
		ctrl, err := feedback.New(feedback.Config{
			Sampler: feedback.SamplerConfig{
				Capacity:       a.Capacity,
				HardDifficulty: a.Hard,
				Window:         a.Window,
			},
			Rules:   rules,
			Compile: compileClamped,
			Base:    base,
			Events:  n.eventSink(fmt.Sprintf("n%d", i), len(eng.nodes) > 1),
		})
		if err != nil {
			return fmt.Errorf("sim: scenario %q adapt: %w", eng.sc.Name, err)
		}
		var src feedback.Source = adaptSource{eng: eng, node: i}
		if cs := eng.sc.Cluster; cs != nil && cs.FleetFeedback {
			src = feedback.NewSumSource(src, n.cnode.PeerSource())
		}
		ctrl.Bind(n.fw, src)
		n.ctrl = ctrl
	}
	return nil
}

// adaptSource is one node's counter view of a simulated defense: the
// framework's own counters plus the engine's modeled verification
// outcomes on that node, so the signal plane sees the same
// solved-challenge stream a real deployment's Verify calls would
// produce. It is also what each cluster node gossips as its origin
// section. Only read at tick boundaries, where workers are quiescent.
type adaptSource struct {
	eng  *engine
	node int
}

// StatsInto implements feedback.Source.
func (s adaptSource) StatsInto(dst map[string]float64) {
	s.eng.nodes[s.node].fw.StatsInto(dst)
	var verified, expired uint64
	for _, w := range s.eng.workers { // fixed order
		for d := puzzle.MinDifficulty; d < len(w.mVerified[s.node]); d++ {
			verified += w.mVerified[s.node][d]
		}
		expired += w.mExpired[s.node]
	}
	dst["verified"] += float64(verified)
	dst["rejected"] += float64(expired)
}

// DifficultyProfileInto implements feedback.Source.
func (s adaptSource) DifficultyProfileInto(issued, verified []uint64) {
	s.eng.nodes[s.node].fw.DifficultyProfileInto(issued, verified)
	for _, w := range s.eng.workers {
		for d := puzzle.MinDifficulty; d < len(w.mVerified[s.node]) && d < len(verified); d++ {
			verified[d] += w.mVerified[s.node][d]
		}
	}
}

// AdaptOutcome summarizes the feedback controller's behavior over a run.
type AdaptOutcome struct {
	// Swaps counts controller-installed policy swaps.
	Swaps uint64 `json:"swaps"`

	// MaxLevel and FinalLevel are the highest level reached and the level
	// at the end of the phased timeline.
	MaxLevel   int `json:"max_level"`
	FinalLevel int `json:"final_level"`

	// FirstEscalationMS and FirstDeescalationMS are offsets from scenario
	// start (0 = never happened).
	FirstEscalationMS   float64 `json:"first_escalation_ms"`
	FirstDeescalationMS float64 `json:"first_deescalation_ms"`

	// Transitions is the full level-change log.
	Transitions []AdaptTransition `json:"transitions,omitempty"`
}

// AdaptTransition is one controller level change, in scenario time. Node
// identifies the fleet member whose controller moved (only set in cluster
// mode, where each node runs its own controller).
type AdaptTransition struct {
	AtMS float64 `json:"at_ms"`
	From int     `json:"from"`
	To   int     `json:"to"`
	Rule string  `json:"rule,omitempty"`
	Node int     `json:"node,omitempty"`
}

// adaptOutcome flattens the controller's transition log into the report
// form, with times as offsets from the scenario epoch. Explicit booleans
// track "seen": a ms value of 0 is a legal transition time (a rule true
// on zero signals fires at the first tick), not the never-happened
// sentinel.
func adaptOutcome(ctrl *feedback.Controller) *AdaptOutcome {
	out := &AdaptOutcome{Swaps: ctrl.Swaps(), FinalLevel: ctrl.Level()}
	var sawUp, sawDown bool
	for _, tr := range ctrl.Transitions() {
		ms := float64(tr.At.Sub(Epoch())) / float64(time.Millisecond)
		out.Transitions = append(out.Transitions, AdaptTransition{
			AtMS: ms, From: tr.From, To: tr.To, Rule: tr.Rule,
		})
		if tr.To > out.MaxLevel {
			out.MaxLevel = tr.To
		}
		if tr.To > tr.From && !sawUp {
			out.FirstEscalationMS, sawUp = ms, true
		}
		if tr.To < tr.From && !sawDown {
			out.FirstDeescalationMS, sawDown = ms, true
		}
	}
	return out
}

// adaptResult summarizes the run's controller behavior: the single
// controller's outcome verbatim in the one-node case (so standalone
// reports stay byte-identical), or the fleet's controllers folded into
// one log — swaps sum, levels take the max, transitions interleave by
// time with their node index, and the first-escalation clock reads the
// earliest node to move (the fleet's detection latency).
func (eng *engine) adaptResult() *AdaptOutcome {
	if eng.nodes[0].ctrl == nil {
		return nil
	}
	if len(eng.nodes) == 1 {
		return adaptOutcome(eng.nodes[0].ctrl)
	}
	agg := &AdaptOutcome{}
	for i, n := range eng.nodes {
		o := adaptOutcome(n.ctrl)
		agg.Swaps += o.Swaps
		if o.MaxLevel > agg.MaxLevel {
			agg.MaxLevel = o.MaxLevel
		}
		if o.FinalLevel > agg.FinalLevel {
			agg.FinalLevel = o.FinalLevel
		}
		for _, tr := range o.Transitions {
			tr.Node = i
			agg.Transitions = append(agg.Transitions, tr)
		}
	}
	sort.SliceStable(agg.Transitions, func(a, b int) bool {
		return agg.Transitions[a].AtMS < agg.Transitions[b].AtMS
	})
	var sawUp, sawDown bool
	for _, tr := range agg.Transitions {
		if tr.To > tr.From && !sawUp {
			agg.FirstEscalationMS, sawUp = tr.AtMS, true
		}
		if tr.To < tr.From && !sawDown {
			agg.FirstDeescalationMS, sawDown = tr.AtMS, true
		}
	}
	return agg
}

// eventResult merges the per-node defense event logs into one stream:
// the single node's log verbatim, or the fleet's logs interleaved by
// event time (stable within a node, fixed node order at ties), so equal
// seeds produce equal event sequences.
func (eng *engine) eventResult() []obs.Event {
	if eng.nodes[0].elog == nil {
		return nil
	}
	if len(eng.nodes) == 1 {
		return eng.nodes[0].elog.Snapshot()
	}
	var out []obs.Event
	for _, n := range eng.nodes {
		out = append(out, n.elog.Snapshot()...)
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].At.Before(out[b].At)
	})
	return out
}

// applyPhaseSwap installs phase p's SwapPolicy (if any) on the framework,
// clamped to the defense's difficulty cap like the original policy.
func (eng *engine) applyPhaseSwap(p int) error {
	spec := eng.sc.Phases[p].SwapPolicy
	if spec == "" {
		return nil
	}
	pol, err := policy.NewRegistry().New(spec)
	if err != nil {
		return fmt.Errorf("sim: phase %q swap policy: %w", eng.sc.Phases[p].Name, err)
	}
	clamped, err := policy.NewClamp(pol, 1, eng.sc.Defense.MaxDifficulty)
	if err != nil {
		return fmt.Errorf("sim: phase %q clamp swap policy: %w", eng.sc.Phases[p].Name, err)
	}
	for _, n := range eng.nodes {
		if err := n.fw.SwapPolicy(clamped); err != nil {
			return fmt.Errorf("sim: phase %q swap policy: %w", eng.sc.Phases[p].Name, err)
		}
	}
	return nil
}

// phaseOf reports the phase index containing offset t (clamped to the last
// phase for drain-time completions).
func (eng *engine) phaseOf(t time.Duration) int {
	for i, end := range eng.phaseEnd {
		if t < end {
			return i
		}
	}
	return len(eng.phaseEnd) - 1
}

// generateArrivals draws each population's tick-t arrivals and deals them
// to their IP-owning workers. It runs single-threaded between ticks, and
// every draw comes from a position-seeded PRNG, so the dealt queues are
// identical on every run.
func (eng *engine) generateArrivals(t int, tickStart time.Duration) {
	phase := eng.phaseOf(tickStart)
	ph := eng.sc.Phases[phase]
	tickSec := eng.tick.Seconds()
	for pi := range eng.sc.Populations {
		p := &eng.sc.Populations[pi]
		scale := 1.0
		if s, ok := ph.RateScale[p.Name]; ok {
			scale = s
		}
		lambda := float64(p.Clients) * p.Rate * scale * tickSec
		if lambda <= 0 {
			continue
		}
		rng := rand.New(rand.NewPCG(mix(eng.sc.Seed, uint64(pi)+1, uint64(t)+1), 0xA11CE5EED))
		n := poisson(rng, lambda)
		for i := 0; i < n; i++ {
			client := rng.IntN(p.Clients)
			addr := p.ipAt(pi, client, tickStart)
			ev := event{
				pop:    pi,
				phase:  phase,
				client: client,
				ip:     addr,
				at:     tickStart,
				seed:   rng.Uint64(),
			}
			// Fleet routing: stable client→node affinity by default (a
			// load balancer with session stickiness), or an independent
			// per-request draw for striping populations — the attacker
			// spreading each IP's footprint 1/K across the fleet. The
			// extra draw only happens in cluster mode, so single-node
			// arrival streams are bit-identical to the pre-fleet engine.
			if k := len(eng.nodes); k > 1 {
				if p.Stripe {
					ev.node = int(rng.Uint64N(uint64(k)))
				} else {
					ev.node = client % k
				}
			}
			eng.workers[eng.workerFor(addr)].schedule(t, ev)
		}
	}
}

// workerFor shards an IP onto a worker by (unseeded, run-stable) FNV-1a.
func (eng *engine) workerFor(ip string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(ip))
	return h.Sum32() & eng.mask
}

// runTick executes every worker's tick-t queue concurrently. Workers only
// append to their own calendars, so the barrier at the end of the tick is
// the only synchronization the engine needs.
func (eng *engine) runTick(t int) {
	var wg sync.WaitGroup
	for _, w := range eng.workers {
		if len(w.future[t]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.runTick(t)
		}(w)
	}
	wg.Wait()
}

// nextPending reports the earliest tick (≥ floor) any worker still has
// events scheduled for, and whether one exists.
func (eng *engine) nextPending(floor int) (int, bool) {
	best, found := 0, false
	for _, w := range eng.workers {
		for t := range w.future {
			if t < floor {
				t = floor // cannot happen (tickOf clamps), but stay safe
			}
			if !found || t < best {
				best, found = t, true
			}
		}
	}
	return best, found
}

// runTick processes the worker's queue for tick t in append order. The
// queue may grow while iterating (same-tick completions), so the loop
// re-reads its length. In batch mode (Scenario.Batch) maximal runs of
// consecutive arrivals with distinct IPs flow through the framework's
// batch entry points; everything else — and the relative order of
// arrivals and completions — is unchanged, so the report stays
// byte-identical to the single-op path.
func (w *worker) runTick(t int) {
	for i := 0; i < len(w.future[t]); i++ {
		ev := w.future[t][i]
		if ev.completion {
			w.complete(t, ev)
			continue
		}
		if !w.eng.sc.Batch {
			w.arrive(t, ev)
			continue
		}
		// Extend the run while the next events are arrivals for IPs not
		// yet in it. A repeated IP must break the run: in single-op order
		// its second Decide sees its first Observe, and a batch (all
		// observes before all decides) would leak that observation into
		// the *first* decide. Distinct IPs only touch distinct tracker
		// entries, so observe/decide commute across items. A node change
		// also breaks the run: one batch call targets one framework.
		j := i + 1
		w.seen = append(w.seen[:0], w.future[t][i].ip)
		for ; j < len(w.future[t]); j++ {
			nxt := w.future[t][j]
			if nxt.completion || nxt.node != ev.node || w.seenIP(nxt.ip) {
				break
			}
			w.seen = append(w.seen, nxt.ip)
		}
		if j == i+1 {
			w.arrive(t, ev)
		} else {
			w.arriveBatch(t, w.future[t][i:j])
		}
		i = j - 1
	}
	delete(w.future, t)
}

// seenIP reports whether ip is already in the current run scratch.
func (w *worker) seenIP(ip string) bool {
	for _, s := range w.seen {
		if s == ip {
			return true
		}
	}
	return false
}

// arrival carries the deterministic per-event state computed before the
// framework call (prepare) into the post-decide half (finish), so the
// single-op and batched paths share every draw of the event's RNG.
type arrival struct {
	ev     event
	rng    *rand.Rand
	path   string
	failed bool
}

// prepare runs the pre-framework half of an arrival: counters and the
// event-RNG draws that feed the observation.
func (w *worker) prepare(ev event) arrival {
	p := &w.eng.sc.Populations[ev.pop]
	w.out[ev.pop][ev.phase].requests++

	rng := rand.New(rand.NewPCG(ev.seed, 0x5EEDFACE))
	path := "/"
	if len(p.Paths) > 0 {
		path = p.Paths[rng.IntN(len(p.Paths))]
	}
	failed := p.FailRatio > 0 && rng.Float64() < p.FailRatio
	return arrival{ev: ev, rng: rng, path: path, failed: failed}
}

// arriveBatch is arrive over a run of distinct-IP arrivals: one
// ObserveBatch, one DecideBatch, then the per-event post-decide logic in
// original order.
func (w *worker) arriveBatch(t int, evs []event) {
	eng := w.eng
	now := eng.clock.Now()
	fw := eng.nodes[evs[0].node].fw // runs never span nodes

	w.runArr = w.runArr[:0]
	w.runObs = w.runObs[:0]
	w.runReq = w.runReq[:0]
	for _, ev := range evs {
		a := w.prepare(ev)
		w.runArr = append(w.runArr, a)
		w.runObs = append(w.runObs, features.RequestInfo{IP: ev.ip, Path: a.path, At: now, Failed: a.failed})
		w.runReq = append(w.runReq, core.RequestContext{IP: ev.ip})
	}
	_ = fw.ObserveBatch(w.runObs)

	var err error
	w.runDec, err = fw.DecideBatch(w.runReq, w.runDec[:0])
	for k := range w.runArr {
		if err != nil {
			w.out[evs[k].pop][evs[k].phase].decideErrors++
			continue
		}
		w.finish(t, w.runArr[k], w.runDec[k])
	}
}

// arrive runs protocol steps 1–5 for one request: observe, decide, and —
// per the population's behavior — model (or really perform) the solve and
// schedule the completion.
func (w *worker) arrive(t int, ev event) {
	eng := w.eng
	a := w.prepare(ev)
	fw := eng.nodes[ev.node].fw

	now := eng.clock.Now()
	_ = fw.Observe(features.RequestInfo{IP: ev.ip, Path: a.path, At: now, Failed: a.failed})

	dec, err := fw.Decide(core.RequestContext{IP: ev.ip})
	if err != nil {
		w.out[ev.pop][ev.phase].decideErrors++
		return
	}
	w.finish(t, a, dec)
}

// finish runs the post-decide half of an arrival: score accounting,
// behavior dispatch, solve modeling, and completion scheduling.
func (w *worker) finish(t int, a arrival, dec core.Decision) {
	eng := w.eng
	ev, rng := a.ev, a.rng
	p := &eng.sc.Populations[ev.pop]
	o := w.out[ev.pop][ev.phase]
	if dec.ScoreErr != nil {
		o.scoreErrors++
	}
	o.scoreSum += dec.Score

	net := eng.sc.Network
	if dec.Bypassed {
		o.bypassed++
		done := ev
		done.completion = true
		done.sentAt = ev.at
		done.at = ev.at + 2*net.OneWay + net.IssueTime
		w.schedule(eng.tickOf(done.at, t), done)
		return
	}

	o.challenged++
	o.diffSum += uint64(dec.Difficulty)
	o.diffHist[dec.Difficulty]++

	switch p.Behavior {
	case BehaviorIgnore:
		o.ignored++
		return
	case BehaviorBogus:
		// The forged-solution attacker: skip the work entirely and submit
		// the challenge back with a corrupted tag — verification fails the
		// HMAC check deterministically (no lucky low-difficulty nonces),
		// costing the attacker nothing but lighting up the defense's
		// verify_fail_rate signal and the IP's fail-streak evidence.
		done := ev
		done.completion = true
		done.sentAt = ev.at
		done.diff = dec.Difficulty
		done.verify = true
		done.sol = puzzle.Solution{Challenge: dec.Challenge}
		done.sol.Challenge.Tag[0] ^= 0xFF
		done.at = ev.at + 4*net.OneWay + net.IssueTime + net.VerifyTime
		w.schedule(eng.tickOf(done.at, t), done)
		return
	case BehaviorDowngrade:
		// The downgrade attacker: re-encode the issued challenge as a
		// Version1 hashcash token (drop the backend identity, keep seed,
		// difficulty, and tag), really solve the cheap single-SHA-256 form,
		// and submit. The verifier's pinned version/backend gate rejects it
		// before any digest work — and even without that gate, the tag was
		// computed over the v2 canonical (a disjoint HMAC domain), so the
		// rewritten token could never authenticate. Scenario validation
		// guarantees RealSolve, so w.solver is always present here.
		down := dec.Challenge
		down.Version = puzzle.Version1
		down.Backend, down.Space, down.Rounds = 0, 0, 0
		sol, _, err := w.solver.Solve(context.Background(), down)
		if err != nil {
			o.decideErrors++
			return
		}
		done := ev
		done.completion = true
		done.sentAt = ev.at
		done.diff = dec.Difficulty
		done.verify = true
		done.sol = sol
		done.at = ev.at + 4*net.OneWay + net.IssueTime + net.VerifyTime
		w.schedule(eng.tickOf(done.at, t), done)
		return
	case BehaviorGiveUpAbove:
		if dec.Difficulty > p.GiveUpAt {
			o.gaveUp++
			return
		}
	}

	// The solve cost is always *modeled* from the same geometric process a
	// real solver executes, so cost accounting stays deterministic even
	// when RealSolve burns real hashes below. Attempts convert to
	// effective hash-equivalents through the backend's per-attempt cost
	// and the population's hardware discount for it: a GPU botnet pays a
	// fraction of hashcash's price but nearly full price for the
	// memory-hard backend. Hashcash at speedup 1 makes this a multiply
	// and divide by 1.0 — bit-identical to the pre-backend accounting.
	attempts := netsim.SimSolver{HashRate: p.HashRate}.Attempts(dec.Difficulty, rng)
	effUnits := attempts * eng.attemptCost / p.speedupFor(eng.backendName)
	o.solveAttempts += uint64(effUnits)
	o.work.Observe(effUnits)
	solveTime := time.Duration(effUnits / p.HashRate * float64(time.Second))

	done := ev
	done.completion = true
	done.sentAt = ev.at
	done.diff = dec.Difficulty
	done.at = ev.at + 4*net.OneWay + net.IssueTime + net.VerifyTime + solveTime
	if w.solver != nil {
		sol, _, err := w.solver.Solve(context.Background(), dec.Challenge)
		if err != nil {
			o.decideErrors++
			return
		}
		done.verify = true
		done.sol = sol
	}
	w.schedule(eng.tickOf(done.at, t), done)
}

// complete runs steps 6–7: the solution lands at the server at simulated
// time ev.at and the client is (or is not) served.
func (w *worker) complete(t int, ev event) {
	eng := w.eng
	fw := eng.nodes[ev.node].fw
	o := w.out[ev.pop][ev.phase]
	latency := ev.at - ev.sentAt
	if ev.verify {
		if err := fw.Verify(ev.sol, ev.ip); err != nil {
			if errors.Is(err, puzzle.ErrExpired) {
				o.expired++
			} else {
				o.rejected++
			}
			return
		}
	} else if latency > eng.ttl {
		// Modeled verification applies the same clock rule the real
		// verifier would: a solve that outlived the challenge TTL is not
		// redeemable. (Conservative: latency includes network crossings.)
		o.expired++
		if ev.diff >= puzzle.MinDifficulty {
			w.mExpired[ev.node]++
			fw.RecordVerifyEvidence(ev.ip, 0, false)
		}
		return
	}
	o.served++
	o.latency.ObserveDuration(latency)
	// A served modeled completion is a solved-and-verified challenge;
	// record it for the feedback signal plane (bypassed completions carry
	// no difficulty and are not verifications), and feed it into the
	// tracker's evidence state exactly as a real Verify call would — the
	// redemption path runs on the same solve-credit stream either way.
	if !ev.verify && ev.diff >= puzzle.MinDifficulty {
		w.mVerified[ev.node][ev.diff]++
		fw.RecordVerifyEvidence(ev.ip, ev.diff, true)
	}
	// The cross-node replay attacker: the solution just redeemed here is
	// resubmitted verbatim to the next fleet node after enough gossip
	// rounds for the redeemed tag to have crossed the whole topology. The
	// fleet filter must fail it closed (counted rejected above); a second
	// service would show up as served > requests — an invariant every
	// replay scenario pins with served_frac ≤ 1.
	if ev.verify && !ev.replay && eng.sc.Populations[ev.pop].Behavior == BehaviorReplayCross {
		rep := ev
		rep.replay = true
		rep.node = (ev.node + 1) % len(eng.nodes)
		ticks := eng.clusterDiameter()*eng.sc.Cluster.exchangeTicks() + 2
		rep.at = ev.at + time.Duration(ticks)*eng.tick
		w.schedule(eng.tickOf(rep.at, t), rep)
	}
}

// tickOf maps an event time to its tick index, clamped to never schedule
// into the past relative to the currently-running tick.
func (eng *engine) tickOf(at time.Duration, current int) int {
	t := int(at / eng.tick)
	if t < current {
		t = current
	}
	return t
}

// mix derives a stream seed from positional coordinates via splitmix64,
// so every (population, tick) pair gets an independent, order-free PRNG.
func mix(parts ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, p := range parts {
		h ^= p
		h += 0x9E3779B97F4A7C15
		z := h
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		h = z ^ (z >> 31)
	}
	return h
}

// poisson samples a Poisson(lambda) count: Knuth's product method for
// small lambda, a rounded normal approximation beyond (where the product
// method underflows and the approximation error is far below the
// scenario-level noise floor).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		limit := math.Exp(-lambda)
		k, prod := 0, rng.Float64()
		for prod > limit {
			k++
			prod *= rng.Float64()
		}
		return k
	}
	n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
	if n < 0 {
		return 0
	}
	return n
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
