package sim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/obs"
)

// testNetwork is a fast network for unit scenarios.
func testNetwork() Network {
	return Network{OneWay: 5 * time.Millisecond, IssueTime: 300 * time.Microsecond, VerifyTime: 300 * time.Microsecond}
}

// TestSuiteInvariantsHold is the scenario-table regression gate: every
// suite scenario runs end to end (at reduced scale, so -race stays fast)
// and every declared asymmetry invariant must hold. A failure here means a
// change eroded the defense quality the suite pins down.
func TestSuiteInvariantsHold(t *testing.T) {
	for _, sc := range DefaultSuite(4, 0.2) {
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			invs, pass := res.Evaluate()
			for _, inv := range invs {
				if !inv.Pass {
					bounds := ""
					if inv.Min != nil {
						bounds += fmt.Sprintf(" min=%g", *inv.Min)
					}
					if inv.Max != nil {
						bounds += fmt.Sprintf(" max=%g", *inv.Max)
					}
					t.Errorf("invariant %s violated: value=%v%s", inv.Name, inv.Value, bounds)
				}
			}
			if !pass {
				t.Error("scenario failed")
			}

			// Cross-check the engine's accounting against the framework's
			// own counters: every challenge the engine saw was issued by
			// the framework.
			total, _ := res.scope("", "")
			if issued := uint64(res.FrameworkStats["issued"]); issued != total.challenged {
				t.Errorf("framework issued %d, engine challenged %d", issued, total.challenged)
			}
			if total.decideErrors != 0 {
				t.Errorf("decide errors: %d", total.decideErrors)
			}
			if sc.Defense.RealSolve {
				if verified := uint64(res.FrameworkStats["verified"]); verified != total.served {
					t.Errorf("real-solve: framework verified %d, engine served %d", verified, total.served)
				}
			}
		})
	}
}

// TestRunDeterministic runs one multi-population, multi-phase scenario
// several times and demands byte-identical reports — the property the CI
// diff gate depends on.
func TestRunDeterministic(t *testing.T) {
	scenario := func() Scenario {
		return Scenario{
			Name: "determinism",
			Seed: 99,
			Phases: []Phase{
				{Name: "calm", Duration: 5 * time.Second},
				{Name: "burst", Duration: 5 * time.Second, RateScale: map[string]float64{"bots": 5}},
			},
			Populations: []Population{
				{Name: "users", Legit: true, Clients: 20, Rate: 1,
					Behavior: BehaviorSolve, HashRate: 27000, Feed: FeedBenign},
				{Name: "bots", Clients: 40, Rate: 2,
					Behavior: BehaviorSolve, HashRate: 27000, Feed: FeedMalicious,
					IPPool: 120, RotateEvery: 2 * time.Second, FailRatio: 0.3,
					Paths: []string{"/a", "/b"}},
			},
			Network: testNetwork(),
			Defense: Defense{SaturationRate: 3, TrackerWindow: 5 * time.Second},
		}
	}
	var first []byte
	for i := 0; i < 3; i++ {
		res, err := Run(scenario())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		rep := res.Report()
		buf, err := (&SuiteReport{Scenarios: []ScenarioReport{rep}}).Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if i == 0 {
			first = buf
			if rep.Populations[0].Outcome.Served == 0 || rep.Populations[1].Outcome.Served == 0 {
				t.Fatal("determinism scenario served nothing; it is not exercising the pipeline")
			}
			continue
		}
		if string(buf) != string(first) {
			t.Fatalf("run %d produced a different report", i)
		}
	}
}

// TestPhaseRateScale verifies that a zero phase scale switches a
// population off and a large one scales it up, with outcomes attributed to
// the right phase.
func TestPhaseRateScale(t *testing.T) {
	res, err := Run(Scenario{
		Name: "phases",
		Seed: 7,
		Phases: []Phase{
			{Name: "off", Duration: 5 * time.Second, RateScale: map[string]float64{"bots": 0}},
			{Name: "on", Duration: 5 * time.Second},
		},
		Populations: []Population{
			{Name: "bots", Clients: 30, Rate: 2, Behavior: BehaviorIgnore, Feed: FeedUnknown},
		},
		Network: testNetwork(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outcomes[0][0].requests; got != 0 {
		t.Errorf("off phase saw %d requests, want 0", got)
	}
	on := res.Outcomes[0][1].requests
	if on < 200 || on > 400 { // Poisson mean 300
		t.Errorf("on phase saw %d requests, want ≈300", on)
	}
	if served := res.Outcomes[0][1].served; served != 0 {
		t.Errorf("ignoring population was served %d times", served)
	}
	if ignored := res.Outcomes[0][1].ignored; ignored != on {
		t.Errorf("ignored = %d, want %d (all challenged walked away)", ignored, on)
	}
}

// TestModeledTTLExpiry verifies the engine applies the challenge TTL to
// modeled verification: a hash rate too slow for the difficulty means the
// solve outlives the challenge.
func TestModeledTTLExpiry(t *testing.T) {
	res, err := Run(Scenario{
		Name:   "expiry",
		Seed:   3,
		Phases: []Phase{{Name: "all", Duration: 5 * time.Second}},
		Populations: []Population{
			// ~2^14 hashes at 100 h/s ≈ 160 s ≫ the 2 s TTL.
			{Name: "slow", Legit: true, Clients: 5, Rate: 1,
				Behavior: BehaviorSolve, HashRate: 100, Feed: FeedMalicious},
		},
		Network: testNetwork(),
		Defense: Defense{TTL: 2 * time.Second, Policy: "fixed(difficulty=14)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[0][0]
	if o.expired == 0 {
		t.Fatalf("no expiries despite solve time ≫ TTL (served=%d)", o.served)
	}
	if o.served > o.expired/10 {
		t.Errorf("served %d vs expired %d: expiry modeling is not biting", o.served, o.expired)
	}
}

// TestDrainJumpsToPendingTick guards the drain fast path: a 1 hash/s
// population on a difficulty-22 puzzle schedules completions millions of
// ticks past the horizon, and the drain must jump straight to them rather
// than walk every empty tick (which would hang for minutes).
func TestDrainJumpsToPendingTick(t *testing.T) {
	res, err := Run(Scenario{
		Name:   "drain",
		Seed:   11,
		Phases: []Phase{{Name: "all", Duration: time.Second}},
		Populations: []Population{
			{Name: "glacial", Legit: true, Clients: 3, Rate: 2,
				Behavior: BehaviorSolve, HashRate: 1, Feed: FeedUnknown},
		},
		Network: testNetwork(),
		Defense: Defense{Policy: "fixed(difficulty=22)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[0][0]
	if o.requests == 0 {
		t.Fatal("no requests generated")
	}
	// Every solve outlives the TTL by orders of magnitude; what matters is
	// that the run completed and accounted for all of them.
	if o.expired+o.served != o.challenged {
		t.Errorf("challenged %d but expired %d + served %d", o.challenged, o.expired, o.served)
	}
	if o.expired == 0 {
		t.Error("glacial solves should expire")
	}
}

// TestRotationShiftsAddresses verifies rotating populations actually move
// through their pool and stable ones do not.
func TestRotationShiftsAddresses(t *testing.T) {
	stable := Population{Clients: 10}
	if got := stable.ipAt(0, 3, 0); got != stable.ipAt(0, 3, 50*time.Second) {
		t.Errorf("stable population rotated: %s", got)
	}
	rot := Population{Clients: 10, IPPool: 40, RotateEvery: 10 * time.Second}
	first := rot.ipAt(1, 3, 0)
	second := rot.ipAt(1, 3, 10*time.Second)
	if first == second {
		t.Errorf("rotation did not move the address (%s)", first)
	}
	if got := rot.ipAt(1, 3, 9*time.Second); got != first {
		t.Errorf("address moved mid-interval: %s vs %s", got, first)
	}
}

// TestScenarioValidation spot-checks the declarative validation errors.
func TestScenarioValidation(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Name:   "v",
			Phases: []Phase{{Name: "p", Duration: time.Second}},
			Populations: []Population{{
				Name: "a", Clients: 1, Rate: 1, Behavior: BehaviorIgnore, Feed: FeedUnknown,
			}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no_phases", func(sc *Scenario) { sc.Phases = nil }},
		{"no_populations", func(sc *Scenario) { sc.Populations = nil }},
		{"dup_population", func(sc *Scenario) { sc.Populations = append(sc.Populations, sc.Populations[0]) }},
		{"bad_scale_target", func(sc *Scenario) { sc.Phases[0].RateScale = map[string]float64{"nope": 2} }},
		{"solver_without_hashrate", func(sc *Scenario) { sc.Populations[0].Behavior = BehaviorSolve }},
		{"bad_fail_ratio", func(sc *Scenario) { sc.Populations[0].FailRatio = 1.5 }},
		{"unknown_metric", func(sc *Scenario) {
			sc.Invariants = []Invariant{AtLeast("nonsense", "", "", 1)}
		}},
		{"unbounded_invariant", func(sc *Scenario) {
			sc.Invariants = []Invariant{{Metric: MetricServed}}
		}},
		{"work_ratio_with_population", func(sc *Scenario) {
			sc.Invariants = []Invariant{AtLeast(MetricWorkRatio, "a", "", 1)}
		}},
		{"unknown_invariant_population", func(sc *Scenario) {
			sc.Invariants = []Invariant{AtLeast(MetricServed, "ghost", "", 1)}
		}},
		{"unknown_invariant_phase", func(sc *Scenario) {
			sc.Invariants = []Invariant{AtLeast(MetricServed, "a", "ghost", 1)}
		}},
		{"bad_swap_policy", func(sc *Scenario) { sc.Phases[0].SwapPolicy = "nope" }},
		{"swap_policy_with_factory", func(sc *Scenario) {
			sc.Phases[0].SwapPolicy = "policy2"
			sc.Factory = func(now func() time.Time) (*core.Framework, error) { return nil, nil }
		}},
		{"adapt_with_factory", func(sc *Scenario) {
			sc.Defense.Adapt = &AdaptDefense{Rules: []string{"escalate(when=rate>1, policy=policy2)"}}
			sc.Factory = func(now func() time.Time) (*core.Framework, error) { return nil, nil }
		}},
		{"adapt_bad_rule", func(sc *Scenario) {
			sc.Defense.Adapt = &AdaptDefense{Rules: []string{"escalate(policy=policy2)"}}
		}},
		{"adapt_unknown_rule_policy", func(sc *Scenario) {
			sc.Defense.Adapt = &AdaptDefense{Rules: []string{"escalate(when=rate>1, policy=nope)"}}
		}},
		{"adapt_metric_without_adapt", func(sc *Scenario) {
			sc.Invariants = []Invariant{AtLeast(MetricAdaptSwaps, "", "", 1)}
		}},
		{"adapt_metric_with_population", func(sc *Scenario) {
			sc.Defense.Adapt = &AdaptDefense{Rules: []string{"escalate(when=rate>1, policy=policy2)"}}
			sc.Invariants = []Invariant{AtLeast(MetricAdaptSwaps, "a", "", 1)}
		}},
		{"cluster_too_small", func(sc *Scenario) { sc.Cluster = &ClusterSim{Nodes: 1} }},
		{"cluster_bad_degree", func(sc *Scenario) { sc.Cluster = &ClusterSim{Nodes: 3, Degree: 3} }},
		{"cluster_bad_filter_bits", func(sc *Scenario) {
			sc.Cluster = &ClusterSim{Nodes: 2, FilterBits: 1000}
		}},
		{"cluster_with_factory", func(sc *Scenario) {
			sc.Cluster = &ClusterSim{Nodes: 2}
			sc.Factory = func(now func() time.Time) (*core.Framework, error) { return nil, nil }
		}},
		{"stripe_without_cluster", func(sc *Scenario) { sc.Populations[0].Stripe = true }},
		{"replay_cross_without_cluster", func(sc *Scenario) {
			sc.Populations[0].Behavior = BehaviorReplayCross
			sc.Populations[0].HashRate = 1000
			sc.Defense.RealSolve = true
		}},
		{"replay_cross_without_realsolve", func(sc *Scenario) {
			sc.Cluster = &ClusterSim{Nodes: 2}
			sc.Populations[0].Behavior = BehaviorReplayCross
			sc.Populations[0].HashRate = 1000
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mutate(&sc)
			if _, err := Run(sc); err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
}

// TestAdaptiveRunDeterministic reruns a closed-loop scenario and demands
// byte-identical reports: controller stepping (signal estimation and the
// hot swaps it installs) must not introduce scheduling or wall-clock
// dependence.
func TestAdaptiveRunDeterministic(t *testing.T) {
	pick := func() Scenario {
		for _, sc := range DefaultSuite(7, 0.15) {
			if sc.Name == "adaptive-attack-cycle" {
				return sc
			}
		}
		t.Fatal("adaptive-attack-cycle missing from the default suite")
		return Scenario{}
	}
	var first []byte
	for i := 0; i < 3; i++ {
		res, err := Run(pick())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Adapt == nil || res.Adapt.Swaps < 2 {
			t.Fatalf("run %d: controller did not close the loop: %+v", i, res.Adapt)
		}
		rep := res.Report()
		buf, err := (&SuiteReport{Scenarios: []ScenarioReport{rep}}).Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if i == 0 {
			first = buf
			if rep.Adapt == nil || len(rep.Adapt.Transitions) < 2 {
				t.Fatalf("report carries no transitions: %+v", rep.Adapt)
			}
			continue
		}
		if string(buf) != string(first) {
			t.Fatalf("run %d produced a different report", i)
		}
	}
}

// TestClusterRunDeterministic reruns the K-node scenarios and demands
// byte-identical reports: per-node routing, gossip exchange rounds,
// fleet-summed feedback, and cross-node replay scheduling must all be
// free of map-order and wall-clock dependence.
func TestClusterRunDeterministic(t *testing.T) {
	pick := func(name string) Scenario {
		for _, sc := range DefaultSuite(7, 0.15) {
			if sc.Name == name {
				return sc
			}
		}
		t.Fatalf("%s missing from the default suite", name)
		return Scenario{}
	}
	for _, name := range []string{"cluster-striping-fleet", "cluster-replay"} {
		t.Run(name, func(t *testing.T) {
			var first []byte
			for i := 0; i < 3; i++ {
				res, err := Run(pick(name))
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				rep := res.Report()
				if !rep.Pass {
					t.Fatalf("run %d: invariants failed: %+v", i, rep.Invariants)
				}
				buf, err := (&SuiteReport{Scenarios: []ScenarioReport{rep}}).Marshal()
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				if i == 0 {
					first = buf
					continue
				}
				if !bytes.Equal(first, buf) {
					t.Fatalf("run %d produced a different report", i)
				}
			}
		})
	}
}

// TestClusterReplayAccounting pins the cross-node replay semantics at the
// outcome level: every replayed token is rejected (rejected > 0), no
// replay is ever served twice (served never exceeds requests), and the
// honest first redemptions all land.
func TestClusterReplayAccounting(t *testing.T) {
	var sc Scenario
	for _, s := range DefaultSuite(11, 0.15) {
		if s.Name == "cluster-replay" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("cluster-replay missing from the default suite")
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, p := range rep.Populations {
		if p.Name != "replayers" {
			continue
		}
		o := p.Outcome
		if o.Rejected == 0 {
			t.Error("no replays were rejected — the cross-node filter never fired")
		}
		if o.Served > o.Requests {
			t.Errorf("served %d > requests %d: a replayed token was redeemed twice", o.Served, o.Requests)
		}
		if o.Served < o.Requests {
			t.Errorf("served %d < requests %d: an honest first redemption was lost", o.Served, o.Requests)
		}
	}
}

// TestInvariantEvaluation exercises the bound logic on a crafted result.
func TestInvariantEvaluation(t *testing.T) {
	sc := Scenario{
		Name:   "inv",
		Phases: []Phase{{Name: "p", Duration: 10 * time.Second}},
		Populations: []Population{
			{Name: "good", Legit: true, Clients: 1, Rate: 1, Behavior: BehaviorIgnore, Feed: FeedUnknown},
			{Name: "bad", Clients: 1, Rate: 1, Behavior: BehaviorIgnore, Feed: FeedUnknown},
		},
	}
	good, bad := newOutcome(), newOutcome()
	good.requests, good.served, good.solveAttempts = 100, 100, 1000
	bad.requests, bad.served, bad.solveAttempts = 100, 50, 50000
	res := &Result{Scenario: sc, Outcomes: [][]*outcome{{good}, {bad}}}

	check := func(inv Invariant, wantValue float64, wantPass bool) {
		t.Helper()
		res.Scenario.Invariants = []Invariant{inv}
		got, _ := res.Evaluate()
		if got[0].Value != wantValue || got[0].Pass != wantPass {
			t.Errorf("%s: got (%v, %v), want (%v, %v)",
				got[0].Name, got[0].Value, got[0].Pass, wantValue, wantPass)
		}
	}
	// attacker cost/served = 1000, legit = 10 → ratio 100.
	check(AtLeast(MetricWorkRatio, "", "", 50), 100, true)
	check(AtLeast(MetricWorkRatio, "", "", 200), 100, false)
	check(AtMost(MetricServedFrac, "bad", "", 0.4), 0.5, false)
	check(AtLeast(MetricServedFrac, ClassLegit, "", 0.99), 1, true)
	check(AtMost(MetricGoodput, ClassAttackers, "", 10), 5, true)
	check(AtLeast(MetricRequests, "", "", 200), 200, true)
}

// TestClock verifies the simulated clock's contract.
func TestClock(t *testing.T) {
	start := Epoch()
	c := NewClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(3 * time.Second)
	if got := c.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("after Advance: %v", got)
	}
	c.Set(start) // backward: ignored
	if got := c.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Set moved the clock backward to %v", got)
	}
	c.Advance(-time.Second) // negative: ignored
	if got := c.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("negative Advance moved the clock to %v", got)
	}
}

// TestRedemptionRunDeterministic reruns a scenario exercising the whole
// scoring-verdict stack — confidence-shaped policy, redemption wrapper,
// evidence write-back from modeled completions, plus a forging population
// driving real Verify rejections — and demands byte-identical reports.
func TestRedemptionRunDeterministic(t *testing.T) {
	scenario := func() Scenario {
		return Scenario{
			Name: "redemption-determinism",
			Seed: 123,
			Phases: []Phase{
				{Name: "cold", Duration: 4 * time.Second},
				{Name: "settled", Duration: 8 * time.Second},
			},
			Populations: []Population{
				{Name: "users", Legit: true, Clients: 16, Rate: 0.5,
					Behavior: BehaviorSolve, HashRate: 27000, Feed: FeedBenign},
				{Name: "misscored", Legit: true, Clients: 16, Rate: 0.5,
					Behavior: BehaviorSolve, HashRate: 27000, Feed: FeedMalicious},
			},
			Network: testNetwork(),
			Defense: Defense{
				Policy: "shape(inner=policy2)", SaturationRate: 3,
				Redeem: &RedeemDefense{HalfLife: 30 * time.Second},
			},
		}
	}
	var first []byte
	for i := 0; i < 3; i++ {
		res, err := Run(scenario())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		rep := res.Report()
		buf, err := (&SuiteReport{Scenarios: []ScenarioReport{rep}}).Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if i == 0 {
			first = buf
			continue
		}
		if string(buf) != string(first) {
			t.Fatalf("run %d produced a different report", i)
		}
	}
}

// TestBogusBehavior pins the forged-solution attacker: no solve work, no
// service, every submission rejected through the real Verify path.
func TestBogusBehavior(t *testing.T) {
	sc := Scenario{
		Name:   "bogus",
		Seed:   5,
		Phases: []Phase{{Name: "flood", Duration: 5 * time.Second}},
		Populations: []Population{
			{Name: "users", Legit: true, Clients: 8, Rate: 0.5,
				Behavior: BehaviorSolve, HashRate: 27000, Feed: FeedBenign},
			{Name: "forgers", Clients: 16, Rate: 2,
				Behavior: BehaviorBogus, Feed: FeedMalicious},
		},
		Network: testNetwork(),
		Defense: Defense{Policy: "policy1", MaxDifficulty: 8, RealSolve: true},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	forgers, _ := res.scope("forgers", "")
	if forgers.served != 0 {
		t.Errorf("forgers served %d, want 0", forgers.served)
	}
	if forgers.solveAttempts != 0 {
		t.Errorf("forgers spent %d hashes, want 0", forgers.solveAttempts)
	}
	if forgers.rejected == 0 {
		t.Error("no forgeries were rejected; Verify path not exercised")
	}
	if got := uint64(res.FrameworkStats["rejected"]); got != forgers.rejected {
		t.Errorf("framework rejected %d, engine counted %d", got, forgers.rejected)
	}
	users, _ := res.scope("users", "")
	if users.served != users.requests {
		t.Errorf("users served %d of %d", users.served, users.requests)
	}
}

// TestBatchModeByteIdentical is the batch-path equivalence gate: every
// suite scenario — adaptive loops, redemption, forgers, rotation — must
// produce a byte-identical report whether arrivals flow through per-event
// Observe/Decide or the batch entry points (ObserveBatch/DecideBatch).
// A divergence means batching changed semantics, not just cost.
func TestBatchModeByteIdentical(t *testing.T) {
	marshal := func(t *testing.T, sc Scenario) []byte {
		t.Helper()
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("Run(batch=%v): %v", sc.Batch, err)
		}
		buf, err := (&SuiteReport{Scenarios: []ScenarioReport{res.Report()}}).Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return buf
	}
	for _, base := range DefaultSuite(4, 0.15) {
		t.Run(base.Name, func(t *testing.T) {
			single := base
			single.Batch = false
			batched := base
			batched.Batch = true
			got, want := marshal(t, batched), marshal(t, single)
			if string(got) != string(want) {
				t.Errorf("batch-mode report diverges from single-op report")
			}
		})
	}
}

// TestBatchModeGroupsSameIP pins the run-breaking rule: repeated IPs in
// one tick must not share a batch, or an early decide would see a later
// observation. One client at a high per-tick rate forces same-tick
// same-IP arrivals; the outputs must still match the single-op path.
func TestBatchModeGroupsSameIP(t *testing.T) {
	scenario := func(batch bool) Scenario {
		return Scenario{
			Name:   "same-ip-runs",
			Seed:   11,
			Batch:  batch,
			Phases: []Phase{{Name: "burst", Duration: 3 * time.Second}},
			Populations: []Population{
				{Name: "hot", Clients: 2, Rate: 60,
					Behavior: BehaviorSolve, HashRate: 27000, Feed: FeedMalicious,
					FailRatio: 0.4, Paths: []string{"/a", "/b"}},
			},
			Network: testNetwork(),
			Defense: Defense{SaturationRate: 3, TrackerWindow: 4 * time.Second},
		}
	}
	run := func(batch bool) []byte {
		res, err := Run(scenario(batch))
		if err != nil {
			t.Fatalf("Run(batch=%v): %v", batch, err)
		}
		buf, err := (&SuiteReport{Scenarios: []ScenarioReport{res.Report()}}).Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return buf
	}
	if got, want := run(true), run(false); string(got) != string(want) {
		t.Error("same-IP runs diverge between batch and single-op paths")
	}
}

// TestDefenseEventLog runs the event-log scenario and checks the captured
// sequence in detail: exactly escalate then de-escalate, level-chained,
// each carrying the rate signal reading that tripped it, separated by at
// least the rule's hold, and mirrored into the report. A second run must
// produce a byte-identical report — events ride the simulated clock, not
// the wall clock.
func TestDefenseEventLog(t *testing.T) {
	pick := func() Scenario {
		for _, sc := range DefaultSuite(7, 0.15) {
			if sc.Name == "adapt-event-log" {
				return sc
			}
		}
		t.Fatal("adapt-event-log missing from the default suite")
		return Scenario{}
	}
	res, err := Run(pick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 2 {
		t.Fatalf("events = %+v, want exactly [escalate, de-escalate]", res.Events)
	}
	up, down := res.Events[0], res.Events[1]
	if up.Kind != obs.EventAdaptEscalate || up.From != 0 || up.To != 1 {
		t.Fatalf("first event = %+v, want escalate 0→1", up)
	}
	if up.Signal != "rate" || up.Value <= 60 {
		t.Fatalf("escalation carries signal %q=%v, want rate>60", up.Signal, up.Value)
	}
	if up.Rule == "" {
		t.Fatalf("escalation carries no rule: %+v", up)
	}
	if down.Kind != obs.EventAdaptDeescalate || down.From != 1 || down.To != 0 {
		t.Fatalf("second event = %+v, want de-escalate 1→0", down)
	}
	if down.Signal != "rate" || down.Value > 60 {
		t.Fatalf("de-escalation carries signal %q=%v, want rate≤60", down.Signal, down.Value)
	}
	if hold := down.At.Sub(up.At); hold < 10*time.Second {
		t.Fatalf("de-escalation %v after escalation, want ≥ the 10s hold", hold)
	}
	if !eventSequenceOK(res.Events) {
		t.Fatal("event sequence flagged inconsistent")
	}

	rep := res.Report()
	if len(rep.Events) != 2 || !rep.Pass {
		t.Fatalf("report events=%d pass=%v, want 2 mirrored events and a passing run", len(rep.Events), rep.Pass)
	}
	first, err := (&SuiteReport{Scenarios: []ScenarioReport{rep}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(pick())
	if err != nil {
		t.Fatal(err)
	}
	again, err := (&SuiteReport{Scenarios: []ScenarioReport{res2.Report()}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("event-log runs diverge between reruns")
	}
}
