package sim

import (
	"fmt"
	"time"

	"aipow/internal/core"
	"aipow/internal/feedback"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

// Behavior describes how a population's clients react to a challenge.
type Behavior int

// Challenge-response behaviors.
const (
	// BehaviorSolve always solves, whatever the difficulty.
	BehaviorSolve Behavior = iota + 1

	// BehaviorIgnore never solves: the population floods initial requests
	// and walks away from every challenge.
	BehaviorIgnore

	// BehaviorGiveUpAbove solves puzzles at or below the population's
	// GiveUpAt difficulty and abandons harder ones — the rational attacker
	// bounding per-request spend.
	BehaviorGiveUpAbove

	// BehaviorBogus skips solving and submits the challenge back with a
	// corrupted authentication tag: a forged-solution attacker spending
	// nothing while hammering the verifier. Every submission fails
	// verification deterministically, driving the verify_fail_rate signal
	// and the per-IP fail-streak evidence.
	BehaviorBogus

	// BehaviorDowngrade re-encodes the issued challenge as a Version1
	// hashcash token, really solves that cheap form, and submits the
	// result — the downgrade attacker trying to pay single-SHA-256 prices
	// for a memory-hard route. The verifier's version/backend gate rejects
	// every submission (the v2 HMAC never authenticates a v1 canonical
	// either), so these populations pin the downgrade-proofing end to end.
	// Requires Defense.RealSolve.
	BehaviorDowngrade

	// BehaviorReplayCross solves honestly, redeems on its home node, then
	// resubmits the same solution to a different fleet node — the
	// cross-node replay attacker exploiting per-node replay windows. With
	// the cluster's Bloom exchange the second redemption must fail on
	// every node; without it each node would happily redeem once.
	// Requires Defense.RealSolve and a Cluster section.
	BehaviorReplayCross
)

// String renders the behavior for reports.
func (b Behavior) String() string {
	switch b {
	case BehaviorSolve:
		return "solve"
	case BehaviorIgnore:
		return "ignore"
	case BehaviorGiveUpAbove:
		return "giveup"
	case BehaviorBogus:
		return "bogus"
	case BehaviorDowngrade:
		return "downgrade"
	case BehaviorReplayCross:
		return "replay-cross"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// Feed describes what the static IP-intelligence feed knows about a
// population's addresses when the scenario's defense is assembled.
type Feed int

// Feed profiles.
const (
	// FeedBenign registers the population's IPs with benign feed
	// attributes — known-good addresses.
	FeedBenign Feed = iota + 1

	// FeedMalicious registers them with malicious family attributes —
	// addresses the intelligence feed has already flagged.
	FeedMalicious

	// FeedUnknown leaves them out of the feed entirely: the store serves
	// its fallback profile and only live behavior can raise suspicion.
	// This is what a freshly-rotated botnet address looks like.
	FeedUnknown
)

// String renders the feed profile for reports.
func (f Feed) String() string {
	switch f {
	case FeedBenign:
		return "benign"
	case FeedMalicious:
		return "malicious"
	case FeedUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("feed(%d)", int(f))
	}
}

// Population declares one homogeneous client group of a scenario.
type Population struct {
	// Name labels the population in reports and invariant references.
	Name string

	// Legit marks legitimate traffic; the complement is attack traffic.
	// Class-level invariants (work_ratio) aggregate over this flag.
	Legit bool

	// Clients is the number of concurrently active clients.
	Clients int

	// Rate is each client's open-loop Poisson arrival rate in requests
	// per second, before phase scaling.
	Rate float64

	// Behavior is the challenge response.
	Behavior Behavior

	// GiveUpAt is the maximum difficulty BehaviorGiveUpAbove will solve.
	GiveUpAt int

	// HashRate is each client's solver throughput (hashes/s). Required
	// for solving behaviors.
	HashRate float64

	// Speedup scales the population's effective cost per solve unit by
	// puzzle backend name ("hashcash", "balloon"): a GPU botnet might
	// declare {"hashcash": 2000, "balloon": 2} — three orders of magnitude
	// of parallel SHA-256 throughput, but barely any gain on a
	// memory-bandwidth-bound function. The engine divides the backend's
	// modeled cost by the matching factor; absent backends (and a nil map,
	// the phone-class default) cost full price. Values must be positive.
	Speedup map[string]float64

	// Feed is what the static intelligence feed knows about the
	// population's addresses.
	Feed Feed

	// IPPool is the number of distinct addresses the population draws
	// from; zero defaults to Clients (one stable address each).
	IPPool int

	// RotateEvery makes the population shift to a fresh block of the pool
	// this often — the rotating-botnet evasion. Zero disables rotation.
	RotateEvery time.Duration

	// Paths is the set of request paths clients draw from uniformly
	// (entropy signal for the behavior tracker). Empty defaults to "/".
	Paths []string

	// FailRatio is the fraction of requests observed as failed (4xx-like
	// behavioral signal), in [0, 1]. Probing populations set it high.
	FailRatio float64

	// Stripe sprays each request onto an independently-drawn fleet node
	// instead of the default stable client→node affinity — the striping
	// botnet diluting its per-node footprint 1/K. Requires a Cluster
	// section.
	Stripe bool
}

// validate rejects inconsistent populations.
func (p Population) validate() error {
	if p.Name == "" {
		return fmt.Errorf("sim: population without a name")
	}
	if p.Clients <= 0 {
		return fmt.Errorf("sim: population %q needs a positive client count, got %d", p.Name, p.Clients)
	}
	if p.Rate <= 0 {
		return fmt.Errorf("sim: population %q needs a positive request rate, got %v", p.Name, p.Rate)
	}
	switch p.Behavior {
	case BehaviorSolve, BehaviorGiveUpAbove, BehaviorReplayCross:
		if p.HashRate <= 0 {
			return fmt.Errorf("sim: population %q solves but has hash rate %v", p.Name, p.HashRate)
		}
	case BehaviorIgnore, BehaviorBogus, BehaviorDowngrade:
	default:
		return fmt.Errorf("sim: population %q has unknown behavior %d", p.Name, int(p.Behavior))
	}
	for backend, s := range p.Speedup {
		if s <= 0 {
			return fmt.Errorf("sim: population %q speedup for %q must be positive, got %v", p.Name, backend, s)
		}
	}
	switch p.Feed {
	case FeedBenign, FeedMalicious, FeedUnknown:
	default:
		return fmt.Errorf("sim: population %q has unknown feed profile %d", p.Name, int(p.Feed))
	}
	if p.IPPool < 0 {
		return fmt.Errorf("sim: population %q has negative IP pool", p.Name)
	}
	if p.RotateEvery < 0 {
		return fmt.Errorf("sim: population %q has negative rotation interval", p.Name)
	}
	if p.FailRatio < 0 || p.FailRatio > 1 {
		return fmt.Errorf("sim: population %q fail ratio %v outside [0, 1]", p.Name, p.FailRatio)
	}
	return nil
}

// speedupFor reports the population's cost discount on the named backend
// (1: full price).
func (p Population) speedupFor(backend string) float64 {
	if s, ok := p.Speedup[backend]; ok {
		return s
	}
	return 1
}

// poolSize reports the population's effective address pool.
func (p Population) poolSize() int {
	if p.IPPool > 0 {
		return p.IPPool
	}
	return p.Clients
}

// Phase is one named window of a scenario's timeline. Phases run in
// declaration order; the scenario's duration is their sum.
type Phase struct {
	// Name labels the phase in reports and invariant references.
	Name string

	// Duration is the phase's simulated length.
	Duration time.Duration

	// RateScale multiplies named populations' arrival rates during the
	// phase: 0 switches a population off (the "off" half of a pulsing
	// attack), large factors model flash crowds and strikes. Populations
	// absent from the map run at their declared rate.
	RateScale map[string]float64

	// SwapPolicy, when non-empty, hot-swaps the defense's policy to this
	// registry spec (e.g. "policy2") as the phase begins — the paper's
	// mid-campaign operator move, exercised through the real
	// Framework.SwapPolicy RCU path while workers keep deciding
	// concurrently. The swap happens at the tick boundary entering the
	// phase (a single-threaded point in the engine), so runs stay
	// deterministic. The swapped policy is clamped to the defense's
	// MaxDifficulty like the original. Stick to deterministic policies;
	// policy3 would break report determinism (see Defense.Policy).
	SwapPolicy string
}

// validate rejects inconsistent phases.
func (ph Phase) validate(populations []Population) error {
	if ph.Name == "" {
		return fmt.Errorf("sim: phase without a name")
	}
	if ph.Duration <= 0 {
		return fmt.Errorf("sim: phase %q needs a positive duration, got %v", ph.Name, ph.Duration)
	}
	if ph.SwapPolicy != "" {
		// Compile the spec once up front so a typo fails at validation
		// time, not mid-campaign.
		if _, err := policy.NewRegistry().New(ph.SwapPolicy); err != nil {
			return fmt.Errorf("sim: phase %q swap policy: %w", ph.Name, err)
		}
	}
	for name, scale := range ph.RateScale {
		if scale < 0 {
			return fmt.Errorf("sim: phase %q scales %q by negative %v", ph.Name, name, scale)
		}
		found := false
		for _, p := range populations {
			if p.Name == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("sim: phase %q scales unknown population %q", ph.Name, name)
		}
	}
	return nil
}

// Network models the client↔server path and server-side service times.
// The engine has no queueing model — internal/attack covers overload
// collapse; this engine measures cost asymmetry — so these terms only
// shape end-to-end latency.
type Network struct {
	// OneWay is the one-way network delay per crossing (a full serve is
	// four crossings: request, challenge, solution, response).
	OneWay time.Duration

	// IssueTime and VerifyTime are the server-side service times for
	// challenge issuance and solution verification.
	IssueTime, VerifyTime time.Duration
}

// validate rejects physically meaningless networks.
func (n Network) validate() error {
	if n.OneWay < 0 || n.IssueTime < 0 || n.VerifyTime < 0 {
		return fmt.Errorf("sim: negative network delay or service time")
	}
	return nil
}

// ClusterSim configures the scenario's fleet mode: K independent defense
// nodes (each its own framework, tracker, and — with Defense.Adapt — its
// own controller) joined by the cluster exchange plane. Clients hold a
// stable home node (client mod K) unless their population stripes.
type ClusterSim struct {
	// Nodes is the fleet size K (at least 2).
	Nodes int

	// ExchangeTicks is how many engine ticks pass between gossip rounds
	// (default 1). Larger values model a slower exchange interval, i.e.
	// more staleness.
	ExchangeTicks int

	// Degree is each node's pull fan-out: node i pulls from nodes
	// i+1 … i+Degree (mod K) each round. Zero defaults to K-1, a full
	// mesh; 1 is a ring — the partial-view deployment whose state
	// spreads transitively, one hop per round.
	Degree int

	// FleetFeedback binds each node's adapt controller to its local
	// counters summed with its peer-reported view of the fleet
	// (feedback.NewSumSource + Node.PeerSource), so rate thresholds see
	// cluster-wide totals. Off, controllers see only their own node —
	// the configuration a striping botnet slips under.
	FleetFeedback bool

	// FilterBits overrides the replay filter's per-bucket Bloom size
	// (power of two; default cluster.DefaultFilterBits).
	FilterBits int

	// DeltaEvery enables delta evidence gossip between the fleet's
	// nodes: K ≥ 1 pulls only changed rows, with a full anti-entropy
	// pull every Kth exchange (cluster.Config.DeltaEvery). Zero keeps
	// every pull full-frame. Either way the converged state — and hence
	// the report — is identical; only the rows shipped differ.
	DeltaEvery int
}

// validate rejects inconsistent fleet configurations.
func (c ClusterSim) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("sim: cluster needs at least 2 nodes, got %d", c.Nodes)
	}
	if c.ExchangeTicks < 0 {
		return fmt.Errorf("sim: cluster has negative exchange interval")
	}
	if c.Degree < 0 || c.Degree > c.Nodes-1 {
		return fmt.Errorf("sim: cluster degree %d outside [0, %d]", c.Degree, c.Nodes-1)
	}
	if c.FilterBits < 0 || (c.FilterBits > 0 && c.FilterBits&(c.FilterBits-1) != 0) {
		return fmt.Errorf("sim: cluster filter bits %d not a power of two", c.FilterBits)
	}
	if c.DeltaEvery < 0 {
		return fmt.Errorf("sim: cluster has negative delta interval %d", c.DeltaEvery)
	}
	return nil
}

// degree reports the effective pull fan-out.
func (c ClusterSim) degree() int {
	if c.Degree == 0 {
		return c.Nodes - 1
	}
	return c.Degree
}

// exchangeTicks reports the effective gossip interval in ticks.
func (c ClusterSim) exchangeTicks() int {
	if c.ExchangeTicks == 0 {
		return 1
	}
	return c.ExchangeTicks
}

// FrameworkFactory builds the defense under test on the simulation clock.
// The returned framework must route all time through now, or TTLs and
// tracker windows would mix wall and simulated time.
type FrameworkFactory func(now func() time.Time) (*core.Framework, error)

// Scenario is one declarative adversarial experiment: a phased timeline, a
// set of client populations, the network they cross, the defense under
// test, and the invariants its outcome must satisfy.
type Scenario struct {
	// Name identifies the scenario in reports and -scenario filters.
	Name string

	// Description is a one-line summary for reports.
	Description string

	// Seed drives every random draw in the scenario. Equal seeds produce
	// byte-identical reports.
	Seed uint64

	// Tick is the engine's time step (default 100 ms). Arrivals are
	// generated per tick and the framework clock advances tick by tick;
	// modeled latencies keep sub-tick resolution.
	Tick time.Duration

	// Workers is the engine's concurrency width (default 8, rounded up to
	// a power of two). Events shard onto workers by client IP, so per-IP
	// ordering — and therefore the report — is independent of scheduling.
	Workers int

	// Batch drives arrivals through the framework's batch entry points
	// (ObserveBatch/DecideBatch) instead of per-event Observe/Decide.
	// Grouping only ever spans consecutive same-tick arrivals with
	// distinct IPs, so the result is byte-identical to the single-op
	// path; the flag exists to exercise and regression-test exactly that
	// equivalence under the full adversarial suite.
	Batch bool

	// Phases is the timeline. At least one phase is required; the
	// scenario's duration is the sum of phase durations.
	Phases []Phase

	// Populations is the client mix. At least one is required.
	Populations []Population

	// Network shapes modeled latencies.
	Network Network

	// Defense configures the framework under test; used when Factory is
	// nil.
	Defense Defense

	// Cluster, when non-nil, runs the defense as a K-node fleet joined
	// by the cluster exchange plane instead of a single framework.
	// Requires the built-in Defense (no custom Factory).
	Cluster *ClusterSim

	// Factory overrides Defense with a custom framework construction.
	Factory FrameworkFactory `json:"-"`

	// Invariants are the asymmetry bounds the outcome must satisfy; any
	// violation fails the scenario (and the CI gate).
	Invariants []Invariant
}

// Duration reports the scenario's total simulated time span.
func (sc Scenario) Duration() time.Duration {
	var d time.Duration
	for _, ph := range sc.Phases {
		d += ph.Duration
	}
	return d
}

// TotalIPs reports the size of the scenario's address universe, the figure
// tracker capacity is sized from.
func (sc Scenario) TotalIPs() int {
	total := 0
	for _, p := range sc.Populations {
		total += p.poolSize()
	}
	return total
}

// validate rejects inconsistent scenarios.
func (sc Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("sim: scenario without a name")
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("sim: scenario %q has no phases", sc.Name)
	}
	if len(sc.Populations) == 0 {
		return fmt.Errorf("sim: scenario %q has no populations", sc.Name)
	}
	if sc.Tick < 0 {
		return fmt.Errorf("sim: scenario %q has negative tick", sc.Name)
	}
	if sc.Workers < 0 {
		return fmt.Errorf("sim: scenario %q has negative worker count", sc.Name)
	}
	if sc.Factory != nil {
		// Phase swaps clamp the new policy to Defense.MaxDifficulty; a
		// custom factory's issuer cap is unknowable here, and a clamp
		// above it would turn the swap into mid-run Issue errors.
		for _, ph := range sc.Phases {
			if ph.SwapPolicy != "" {
				return fmt.Errorf("sim: scenario %q: phase %q SwapPolicy requires the built-in Defense, not a custom Factory", sc.Name, ph.Name)
			}
		}
		if sc.Defense.Adapt != nil {
			// Same cap problem, and the controller also needs the
			// defense's base policy spec for de-escalation.
			return fmt.Errorf("sim: scenario %q: Defense.Adapt requires the built-in Defense, not a custom Factory", sc.Name)
		}
		if sc.Cluster != nil {
			// The fleet mode builds one framework per node and wires each
			// to a cluster exchange hook; a single opaque factory cannot
			// provide that.
			return fmt.Errorf("sim: scenario %q: Cluster requires the built-in Defense, not a custom Factory", sc.Name)
		}
	}
	if sc.Cluster != nil {
		if err := sc.Cluster.validate(); err != nil {
			return fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
		}
	}
	if a := sc.Defense.Adapt; a != nil {
		if a.Capacity < 0 || a.Hard < 0 || a.Window < 0 {
			return fmt.Errorf("sim: scenario %q: negative adapt parameter", sc.Name)
		}
		for _, ph := range sc.Phases {
			if ph.SwapPolicy != "" {
				// Both drive Framework.SwapPolicy: a phase swap would
				// clobber an escalated rung and a later de-escalation
				// would silently revert the phase's declared policy.
				// One scripted hand on the wheel or the controller, not
				// both.
				return fmt.Errorf("sim: scenario %q: phase %q SwapPolicy cannot be combined with Defense.Adapt (both drive the policy swap path)", sc.Name, ph.Name)
			}
		}
		reg := policy.NewRegistry()
		for _, spec := range a.Rules {
			// Compile grammar and policy names up front so a typo fails
			// at validation time, not mid-campaign.
			rule, err := feedback.ParseRule(spec)
			if err != nil {
				return fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
			}
			if _, err := reg.New(rule.Policy); err != nil {
				return fmt.Errorf("sim: scenario %q adapt rule policy: %w", sc.Name, err)
			}
			if a.Capacity <= 0 && (rule.When.Signal == feedback.SignalLoad ||
				(rule.Unless != nil && rule.Unless.Signal == feedback.SignalLoad)) {
				// Without a capacity the load signal is pinned to 0 and
				// the rule could never fire.
				return fmt.Errorf("sim: scenario %q: load-conditioned adapt rule requires Adapt.Capacity", sc.Name)
			}
		}
	}
	if _, err := puzzle.ParseBackendSpec(sc.Defense.Puzzle); err != nil {
		return fmt.Errorf("sim: scenario %q puzzle: %w", sc.Name, err)
	}
	seen := map[string]bool{}
	for _, p := range sc.Populations {
		if err := p.validate(); err != nil {
			return err
		}
		if p.Behavior == BehaviorDowngrade && !sc.Defense.RealSolve {
			// The downgrade attack only means anything against the real
			// verifier: modeled verification has no version gate to beat.
			return fmt.Errorf("sim: population %q downgrades but the defense is modeled; set Defense.RealSolve", p.Name)
		}
		if p.Behavior == BehaviorReplayCross {
			// A replay must clear the real verifier once and be refused the
			// second time by the fleet filter; both need real verification
			// and a second node to replay against.
			if !sc.Defense.RealSolve {
				return fmt.Errorf("sim: population %q replays cross-node but the defense is modeled; set Defense.RealSolve", p.Name)
			}
			if sc.Cluster == nil {
				return fmt.Errorf("sim: population %q replays cross-node but the scenario has no Cluster", p.Name)
			}
		}
		if p.Stripe && sc.Cluster == nil {
			return fmt.Errorf("sim: population %q stripes but the scenario has no Cluster", p.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("sim: duplicate population %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, ph := range sc.Phases {
		if err := ph.validate(sc.Populations); err != nil {
			return err
		}
	}
	if err := sc.Network.validate(); err != nil {
		return err
	}
	for i, inv := range sc.Invariants {
		if err := inv.validate(sc); err != nil {
			return fmt.Errorf("sim: scenario %q invariant %d: %w", sc.Name, i, err)
		}
	}
	return nil
}

// ip reports population pop's address k. Populations get disjoint /8-ish
// blocks so no two populations ever share an address.
func ip(pop, k int) string {
	return fmt.Sprintf("10.%d.%d.%d", pop, k/250, k%250+1)
}

// PopulationIPs lists the address pool of population index i, the set the
// defense builder registers feed attributes for.
func (sc Scenario) PopulationIPs(i int) []string {
	p := sc.Populations[i]
	out := make([]string, p.poolSize())
	for k := range out {
		out[k] = ip(i, k)
	}
	return out
}

// ipAt reports client c's address during tick t: stable without rotation,
// otherwise the pool block shifted by Clients every RotateEvery — each
// rotation lands the whole population on previously-idle addresses until
// the pool wraps.
func (p Population) ipAt(popIdx, client int, tickStart time.Duration) string {
	pool := p.poolSize()
	k := client % pool
	if p.RotateEvery > 0 {
		rotations := int(tickStart / p.RotateEvery)
		k = (client + rotations*p.Clients) % pool
	}
	return ip(popIdx, k)
}
