package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"aipow/internal/metrics"
	"aipow/internal/obs"
)

// DifficultyCount is one row of a sparse difficulty histogram.
type DifficultyCount struct {
	// Difficulty is the assigned puzzle difficulty.
	Difficulty int `json:"d"`

	// Count is how many challenges were issued at it.
	Count uint64 `json:"n"`
}

// OutcomeReport is the JSON export of one (population[, phase]) cell.
type OutcomeReport struct {
	Requests      uint64 `json:"requests"`
	Challenged    uint64 `json:"challenged"`
	Bypassed      uint64 `json:"bypassed,omitempty"`
	Served        uint64 `json:"served"`
	Ignored       uint64 `json:"ignored,omitempty"`
	GaveUp        uint64 `json:"gave_up,omitempty"`
	Expired       uint64 `json:"expired,omitempty"`
	Rejected      uint64 `json:"rejected,omitempty"`
	ScoreErrors   uint64 `json:"score_errors,omitempty"`
	DecideErrors  uint64 `json:"decide_errors,omitempty"`
	SolveAttempts uint64 `json:"solve_attempts"`

	MeanScore      float64 `json:"mean_score"`
	MeanDifficulty float64 `json:"mean_difficulty"`
	ServedFrac     float64 `json:"served_frac"`
	GoodputRPS     float64 `json:"goodput_rps"`
	CostPerServed  float64 `json:"cost_per_served"`

	DifficultyHist []DifficultyCount         `json:"difficulty_hist,omitempty"`
	LatencyMS      metrics.HistogramSnapshot `json:"latency_ms"`
	WorkHashes     metrics.HistogramSnapshot `json:"work_hashes"`
}

// exportOutcome flattens an outcome cell over a scope duration.
func exportOutcome(o *outcome, durS float64) OutcomeReport {
	rep := OutcomeReport{
		Requests:      o.requests,
		Challenged:    o.challenged,
		Bypassed:      o.bypassed,
		Served:        o.served,
		Ignored:       o.ignored,
		GaveUp:        o.gaveUp,
		Expired:       o.expired,
		Rejected:      o.rejected,
		ScoreErrors:   o.scoreErrors,
		DecideErrors:  o.decideErrors,
		SolveAttempts: o.solveAttempts,

		MeanScore:      ratio(o.scoreSum, float64(o.requests)),
		MeanDifficulty: ratio(float64(o.diffSum), float64(o.challenged)),
		ServedFrac:     ratio(float64(o.served), float64(o.requests)),
		GoodputRPS:     ratio(float64(o.served), durS),
		CostPerServed:  o.costPerServed(),

		LatencyMS:  o.latency.Snapshot(),
		WorkHashes: o.work.Snapshot(),
	}
	diffs := make([]int, 0, len(o.diffHist))
	for d := range o.diffHist {
		diffs = append(diffs, d)
	}
	sort.Ints(diffs)
	for _, d := range diffs {
		rep.DifficultyHist = append(rep.DifficultyHist, DifficultyCount{Difficulty: d, Count: o.diffHist[d]})
	}
	return rep
}

// PopulationReport is one population's declaration echo plus its outcome
// aggregated over the whole run.
type PopulationReport struct {
	Name     string  `json:"name"`
	Legit    bool    `json:"legit"`
	Clients  int     `json:"clients"`
	RateRPS  float64 `json:"rate_rps"`
	Behavior string  `json:"behavior"`
	Feed     string  `json:"feed"`
	IPPool   int     `json:"ip_pool"`

	Outcome OutcomeReport `json:"outcome"`
}

// PhaseReport is the per-phase breakdown.
type PhaseReport struct {
	Name      string  `json:"name"`
	DurationS float64 `json:"duration_s"`

	// Populations maps population name → outcome within the phase.
	Populations map[string]OutcomeReport `json:"populations"`
}

// ScenarioReport is one scenario's full machine-readable outcome.
type ScenarioReport struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Seed        uint64  `json:"seed"`
	DurationS   float64 `json:"duration_s"`
	TickMS      float64 `json:"tick_ms"`
	Workers     int     `json:"workers"`

	Defense struct {
		Policy         string   `json:"policy"`
		MaxDifficulty  int      `json:"max_difficulty"`
		SaturationRate float64  `json:"saturation_rate,omitempty"`
		RealSolve      bool     `json:"real_solve,omitempty"`
		AdaptRules     []string `json:"adapt_rules,omitempty"`
	} `json:"defense"`

	// Cluster echoes the fleet shape for K-node scenarios (absent for
	// standalone runs, so pre-fleet reports are byte-identical).
	Cluster *ClusterReport `json:"cluster,omitempty"`

	Populations []PopulationReport `json:"populations"`
	Phases      []PhaseReport      `json:"phases,omitempty"`

	// Adapt reports the feedback controller's level transitions and swap
	// counts (present only for adaptive scenarios).
	Adapt *AdaptOutcome `json:"adapt,omitempty"`

	// Events mirrors the run's defense event log (present only when the
	// scenario sets Defense.Events), so CI can diff exact defense event
	// sequences — escalate → hold → de-escalate, with the signal readings
	// that tripped each transition.
	Events []obs.Event `json:"events,omitempty"`

	// Framework snapshots the framework's own counters — an independent
	// cross-check of the engine's accounting.
	Framework map[string]float64 `json:"framework_counters"`

	Invariants []InvariantResult `json:"invariants"`
	Pass       bool              `json:"pass"`
}

// ClusterReport echoes a scenario's fleet configuration.
type ClusterReport struct {
	Nodes         int  `json:"nodes"`
	ExchangeTicks int  `json:"exchange_ticks"`
	Degree        int  `json:"degree"`
	FleetFeedback bool `json:"fleet_feedback"`
}

// Report reports the result as the canonical ScenarioReport.
func (r *Result) Report() ScenarioReport {
	sc := r.Scenario
	durS := sc.Duration().Seconds()
	rep := ScenarioReport{
		Name:        sc.Name,
		Description: sc.Description,
		Seed:        sc.Seed,
		DurationS:   durS,
		TickMS:      float64(sc.Tick.Milliseconds()),
		Workers:     sc.Workers,
		Framework:   r.FrameworkStats,
	}
	rep.Defense.Policy = sc.Defense.Policy
	rep.Defense.MaxDifficulty = sc.Defense.MaxDifficulty
	rep.Defense.SaturationRate = sc.Defense.SaturationRate
	rep.Defense.RealSolve = sc.Defense.RealSolve
	if sc.Defense.Adapt != nil {
		rep.Defense.AdaptRules = sc.Defense.Adapt.Rules
	}
	if cs := sc.Cluster; cs != nil {
		rep.Cluster = &ClusterReport{
			Nodes:         cs.Nodes,
			ExchangeTicks: cs.exchangeTicks(),
			Degree:        cs.degree(),
			FleetFeedback: cs.FleetFeedback,
		}
	}
	rep.Adapt = r.Adapt
	rep.Events = r.Events

	for pi, p := range sc.Populations {
		total := newOutcome()
		for phi := range sc.Phases {
			total.merge(r.Outcomes[pi][phi])
		}
		rep.Populations = append(rep.Populations, PopulationReport{
			Name:     p.Name,
			Legit:    p.Legit,
			Clients:  p.Clients,
			RateRPS:  p.Rate,
			Behavior: p.Behavior.String(),
			Feed:     p.Feed.String(),
			IPPool:   p.poolSize(),
			Outcome:  exportOutcome(total, durS),
		})
	}
	if len(sc.Phases) > 1 {
		for phi, ph := range sc.Phases {
			phr := PhaseReport{
				Name:        ph.Name,
				DurationS:   ph.Duration.Seconds(),
				Populations: make(map[string]OutcomeReport, len(sc.Populations)),
			}
			for pi, p := range sc.Populations {
				phr.Populations[p.Name] = exportOutcome(r.Outcomes[pi][phi], ph.Duration.Seconds())
			}
			rep.Phases = append(rep.Phases, phr)
		}
	}
	rep.Invariants, rep.Pass = r.Evaluate()
	return rep
}

// SuiteReport is the top-level SIM_scenarios.json document, schema-parallel
// to BENCH_hotpath.json: generated_by, environment echo, then the payload.
type SuiteReport struct {
	GeneratedBy string           `json:"generated_by"`
	Suite       string           `json:"suite"`
	Seed        uint64           `json:"seed"`
	Scenarios   []ScenarioReport `json:"scenarios"`
	Pass        bool             `json:"pass"`
}

// RunSuite executes every scenario in order and assembles the suite
// report. Scenario construction or execution errors abort the run; a
// failed invariant does not — it is recorded and flips Pass, so callers
// (the CLI, the CI gate) decide how loudly to fail.
func RunSuite(name string, seed uint64, scenarios []Scenario) (*SuiteReport, error) {
	rep := &SuiteReport{GeneratedBy: "cmd/attacksim", Suite: name, Seed: seed, Pass: true}
	for _, sc := range scenarios {
		res, err := Run(sc)
		if err != nil {
			return nil, fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
		}
		sr := res.Report()
		rep.Scenarios = append(rep.Scenarios, sr)
		rep.Pass = rep.Pass && sr.Pass
	}
	return rep, nil
}

// MarshalJSON is the canonical serialization: indented, trailing newline,
// deterministic (struct field order plus sorted map keys), so equal seeds
// produce byte-identical files.
func (r *SuiteReport) Marshal() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// RenderTable writes the human-readable per-scenario summary.
func (sr ScenarioReport) RenderTable(w io.Writer) error {
	t := metrics.NewTable(
		fmt.Sprintf("scenario %s (%gs, seed %d) — %s", sr.Name, sr.DurationS, sr.Seed, sr.Description),
		"population", "class", "requests", "served", "served_frac",
		"mean_diff", "mean_score", "p99_ms", "cost/served")
	for _, p := range sr.Populations {
		class := "attack"
		if p.Legit {
			class = "legit"
		}
		t.AddRow(p.Name, class, p.Outcome.Requests, p.Outcome.Served,
			p.Outcome.ServedFrac, p.Outcome.MeanDifficulty, p.Outcome.MeanScore,
			p.Outcome.LatencyMS.P99, p.Outcome.CostPerServed)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	for _, inv := range sr.Invariants {
		status := "PASS"
		if !inv.Pass {
			status = "FAIL"
		}
		bounds := ""
		if inv.Min != nil {
			bounds += fmt.Sprintf(" min=%g", *inv.Min)
		}
		if inv.Max != nil {
			bounds += fmt.Sprintf(" max=%g", *inv.Max)
		}
		if _, err := fmt.Fprintf(w, "  [%s] %-40s value=%.4g%s\n", status, inv.Name, inv.Value, bounds); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
