package sim

import (
	"fmt"
	"math"
	"time"

	"aipow/internal/obs"
)

// Class selectors for Invariant.Population: aggregate over every
// population whose Legit flag matches.
const (
	// ClassLegit aggregates all legitimate populations.
	ClassLegit = "legit"

	// ClassAttackers aggregates all attack populations.
	ClassAttackers = "attackers"
)

// Metric names an Invariant can bound. All latency figures are simulated
// end-to-end milliseconds; work is modeled hash evaluations.
const (
	// MetricLatencyMean/P50/P90/P99 are served-request latency statistics.
	MetricLatencyMean = "latency_mean_ms"
	MetricLatencyP50  = "latency_p50_ms"
	MetricLatencyP90  = "latency_p90_ms"
	MetricLatencyP99  = "latency_p99_ms"

	// MetricServedFrac is served/requests — the goodput-preservation
	// figure (1 − served_frac is the goodput drop).
	MetricServedFrac = "served_frac"

	// MetricGoodput is served requests per simulated second of the scope.
	MetricGoodput = "goodput_rps"

	// MetricMeanDifficulty is the challenge-weighted mean difficulty.
	MetricMeanDifficulty = "mean_difficulty"

	// MetricMeanScore is the decision-weighted mean reputation score.
	MetricMeanScore = "mean_score"

	// MetricCostPerServed is solve work per served request (hashes).
	MetricCostPerServed = "cost_per_served"

	// MetricCostP50 is the median modeled solve cost per request (hashes)
	// — what the *typical* member of the scope pays, insulated from the
	// scorer's false-positive tail the way a mean is not.
	MetricCostP50 = "cost_p50"

	// MetricWorkRatio is the economic-asymmetry headline: the attackers'
	// cost_per_served divided by the legitimate populations'. Population
	// must be empty; Phase still scopes it.
	MetricWorkRatio = "work_ratio"

	// MetricWorkRatioP50 is the median-cost asymmetry: the attackers'
	// median per-request cost over the legitimate populations'. Because a
	// median ignores tail mass, this captures the typical-vs-typical
	// asymmetry even when ~15% scorer false positives dominate the
	// legitimate mean. Population must be empty; Phase still scopes it.
	MetricWorkRatioP50 = "work_ratio_p50"

	// MetricServed, MetricRequests, MetricSolveAttempts, MetricGaveUp,
	// MetricExpired, MetricRejected and MetricDecideErrors expose raw
	// counts. Rejected counts real-verify refusals other than expiry —
	// forged tags, wrong backends, replays — the figure cross-backend
	// replay scenarios pin above zero.
	MetricServed        = "served"
	MetricRequests      = "requests"
	MetricSolveAttempts = "solve_attempts"
	MetricGaveUp        = "gave_up"
	MetricExpired       = "expired"
	MetricRejected      = "rejected"
	MetricDecideErrors  = "decide_errors"

	// Adaptive-controller metrics, defined only for scenarios with
	// Defense.Adapt; Population and Phase must be empty (the controller
	// is scenario-wide). The MS figures are offsets from scenario start,
	// 0 meaning "never" — bound them from both sides to pin both that a
	// transition happened and when.
	MetricAdaptSwaps               = "adapt_swaps"
	MetricAdaptMaxLevel            = "adapt_max_level"
	MetricAdaptFinalLevel          = "adapt_final_level"
	MetricAdaptFirstEscalationMS   = "adapt_first_escalation_ms"
	MetricAdaptFirstDeescalationMS = "adapt_first_deescalation_ms"

	// Defense-event-log metrics, defined only for scenarios with
	// Defense.Events; Population and Phase must be empty (the log is
	// run-wide). MetricEventCount is the number of captured events;
	// MetricEventSequenceOK is 1 when the log is structurally consistent —
	// per-node sequence numbers strictly increase, timestamps never run
	// backward, and every adapt transition chains From the level the
	// previous one left the node at — and 0 otherwise, so a scenario can
	// pin an exact event sequence with count + sequence bounds.
	MetricEventCount      = "event_count"
	MetricEventSequenceOK = "event_sequence_ok"
)

// adaptMetrics marks the controller-scoped metric names.
var adaptMetrics = map[string]bool{
	MetricAdaptSwaps: true, MetricAdaptMaxLevel: true, MetricAdaptFinalLevel: true,
	MetricAdaptFirstEscalationMS: true, MetricAdaptFirstDeescalationMS: true,
}

// eventMetrics marks the event-log-scoped metric names.
var eventMetrics = map[string]bool{
	MetricEventCount: true, MetricEventSequenceOK: true,
}

// validMetrics guards scenario validation against typos.
var validMetrics = map[string]bool{
	MetricLatencyMean: true, MetricLatencyP50: true, MetricLatencyP90: true,
	MetricLatencyP99: true, MetricServedFrac: true, MetricGoodput: true,
	MetricMeanDifficulty: true, MetricMeanScore: true, MetricCostPerServed: true,
	MetricCostP50: true, MetricWorkRatio: true, MetricWorkRatioP50: true,
	MetricServed: true, MetricRequests: true, MetricSolveAttempts: true,
	MetricGaveUp: true, MetricExpired: true, MetricRejected: true,
	MetricDecideErrors: true,
	MetricAdaptSwaps:   true, MetricAdaptMaxLevel: true, MetricAdaptFinalLevel: true,
	MetricAdaptFirstEscalationMS: true, MetricAdaptFirstDeescalationMS: true,
	MetricEventCount: true, MetricEventSequenceOK: true,
}

// Invariant is one declarative bound a scenario's outcome must satisfy —
// the unit the CI gate fails on.
type Invariant struct {
	// Name labels the invariant in reports (defaults to a generated
	// metric/scope string).
	Name string `json:"name"`

	// Metric is one of the Metric* constants.
	Metric string `json:"metric"`

	// Population scopes the metric: a population name, ClassLegit,
	// ClassAttackers, or empty for scenario-wide (required empty for
	// MetricWorkRatio).
	Population string `json:"population,omitempty"`

	// Phase scopes the metric to one named phase; empty covers the whole
	// run.
	Phase string `json:"phase,omitempty"`

	// Min and Max bound the metric inclusively; nil leaves a side open.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
}

// AtLeast declares metric ≥ bound over the given scope.
func AtLeast(metric, population, phase string, bound float64) Invariant {
	return Invariant{Metric: metric, Population: population, Phase: phase, Min: &bound}
}

// AtMost declares metric ≤ bound over the given scope.
func AtMost(metric, population, phase string, bound float64) Invariant {
	return Invariant{Metric: metric, Population: population, Phase: phase, Max: &bound}
}

// label renders the invariant's display name.
func (inv Invariant) label() string {
	if inv.Name != "" {
		return inv.Name
	}
	scope := inv.Population
	if inv.Phase != "" {
		if scope != "" {
			scope += "/"
		}
		scope += inv.Phase
	}
	if scope == "" {
		return inv.Metric
	}
	return fmt.Sprintf("%s(%s)", inv.Metric, scope)
}

// validate rejects malformed invariants at scenario-validation time.
func (inv Invariant) validate(sc Scenario) error {
	if !validMetrics[inv.Metric] {
		return fmt.Errorf("unknown metric %q", inv.Metric)
	}
	if inv.Min == nil && inv.Max == nil {
		return fmt.Errorf("invariant %q has no bound", inv.label())
	}
	if (inv.Metric == MetricWorkRatio || inv.Metric == MetricWorkRatioP50) && inv.Population != "" {
		return fmt.Errorf("%s aggregates both classes; population must be empty", inv.Metric)
	}
	if adaptMetrics[inv.Metric] {
		if inv.Population != "" || inv.Phase != "" {
			return fmt.Errorf("%s is controller-wide; population and phase must be empty", inv.Metric)
		}
		if sc.Defense.Adapt == nil {
			return fmt.Errorf("%s requires Defense.Adapt", inv.Metric)
		}
	}
	if eventMetrics[inv.Metric] {
		if inv.Population != "" || inv.Phase != "" {
			return fmt.Errorf("%s is run-wide; population and phase must be empty", inv.Metric)
		}
		if !sc.Defense.Events {
			return fmt.Errorf("%s requires Defense.Events", inv.Metric)
		}
	}
	if inv.Population != "" && inv.Population != ClassLegit && inv.Population != ClassAttackers {
		found := false
		for _, p := range sc.Populations {
			if p.Name == inv.Population {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("invariant %q references unknown population %q", inv.label(), inv.Population)
		}
	}
	if inv.Phase != "" {
		found := false
		for _, ph := range sc.Phases {
			if ph.Name == inv.Phase {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("invariant %q references unknown phase %q", inv.label(), inv.Phase)
		}
	}
	return nil
}

// InvariantResult is one evaluated invariant.
type InvariantResult struct {
	Invariant
	// Value is the measured metric.
	Value float64 `json:"value"`

	// Pass reports whether Value sits inside [Min, Max].
	Pass bool `json:"pass"`
}

// scope merges the outcome cells the invariant covers and reports the
// scope's simulated duration (for rate metrics).
func (r *Result) scope(population, phase string) (*outcome, time.Duration) {
	merged := newOutcome()
	var dur time.Duration
	for phi, ph := range r.Scenario.Phases {
		if phase != "" && ph.Name != phase {
			continue
		}
		dur += ph.Duration
		for pi, p := range r.Scenario.Populations {
			switch population {
			case "":
			case ClassLegit:
				if !p.Legit {
					continue
				}
			case ClassAttackers:
				if p.Legit {
					continue
				}
			default:
				if p.Name != population {
					continue
				}
			}
			merged.merge(r.Outcomes[pi][phi])
		}
	}
	return merged, dur
}

// ratio returns a/b, or 0 when undefined — metrics must stay NaN-free so
// reports marshal and comparisons stay meaningful.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// costPerServed reports o's solve work per served request.
func (o *outcome) costPerServed() float64 {
	return ratio(float64(o.solveAttempts), float64(o.served))
}

// costP50 reports o's median per-request solve cost (hashes), 0 when the
// scope never solved.
func (o *outcome) costP50() float64 {
	if o.work.Count() == 0 {
		return 0
	}
	return o.work.Quantile(0.5)
}

// metricValue computes one metric over the invariant's scope.
func (r *Result) metricValue(inv Invariant) float64 {
	if adaptMetrics[inv.Metric] {
		a := r.Adapt
		if a == nil {
			return 0
		}
		switch inv.Metric {
		case MetricAdaptSwaps:
			return float64(a.Swaps)
		case MetricAdaptMaxLevel:
			return float64(a.MaxLevel)
		case MetricAdaptFinalLevel:
			return float64(a.FinalLevel)
		case MetricAdaptFirstEscalationMS:
			return a.FirstEscalationMS
		case MetricAdaptFirstDeescalationMS:
			return a.FirstDeescalationMS
		}
	}
	if eventMetrics[inv.Metric] {
		switch inv.Metric {
		case MetricEventCount:
			return float64(len(r.Events))
		case MetricEventSequenceOK:
			if eventSequenceOK(r.Events) {
				return 1
			}
			return 0
		}
	}
	switch inv.Metric {
	case MetricWorkRatio:
		att, _ := r.scope(ClassAttackers, inv.Phase)
		leg, _ := r.scope(ClassLegit, inv.Phase)
		return ratio(att.costPerServed(), leg.costPerServed())
	case MetricWorkRatioP50:
		att, _ := r.scope(ClassAttackers, inv.Phase)
		leg, _ := r.scope(ClassLegit, inv.Phase)
		return ratio(att.costP50(), leg.costP50())
	}
	o, dur := r.scope(inv.Population, inv.Phase)
	switch inv.Metric {
	case MetricLatencyMean:
		if o.latency.Count() == 0 {
			return 0
		}
		return o.latency.Mean()
	case MetricLatencyP50:
		return quantileOrZero(o, 0.50)
	case MetricLatencyP90:
		return quantileOrZero(o, 0.90)
	case MetricLatencyP99:
		return quantileOrZero(o, 0.99)
	case MetricServedFrac:
		return ratio(float64(o.served), float64(o.requests))
	case MetricGoodput:
		return ratio(float64(o.served), dur.Seconds())
	case MetricMeanDifficulty:
		return ratio(float64(o.diffSum), float64(o.challenged))
	case MetricMeanScore:
		return ratio(o.scoreSum, float64(o.requests))
	case MetricCostPerServed:
		return o.costPerServed()
	case MetricCostP50:
		return o.costP50()
	case MetricServed:
		return float64(o.served)
	case MetricRequests:
		return float64(o.requests)
	case MetricSolveAttempts:
		return float64(o.solveAttempts)
	case MetricGaveUp:
		return float64(o.gaveUp)
	case MetricExpired:
		return float64(o.expired)
	case MetricRejected:
		return float64(o.rejected)
	case MetricDecideErrors:
		return float64(o.decideErrors)
	}
	return math.NaN() // unreachable: validate() rejects unknown metrics
}

// Evaluate scores every declared invariant against the result. The second
// return is true only when all pass.
func (r *Result) Evaluate() ([]InvariantResult, bool) {
	out := make([]InvariantResult, 0, len(r.Scenario.Invariants))
	all := true
	for _, inv := range r.Scenario.Invariants {
		v := r.metricValue(inv)
		pass := !math.IsNaN(v)
		if inv.Min != nil && v < *inv.Min {
			pass = false
		}
		if inv.Max != nil && v > *inv.Max {
			pass = false
		}
		if inv.Name == "" {
			inv.Name = inv.label()
		}
		out = append(out, InvariantResult{Invariant: inv, Value: v, Pass: pass})
		all = all && pass
	}
	return out, all
}

// eventSequenceOK checks the merged defense event log's structural
// consistency: per-node sequence numbers strictly increase, timestamps
// never run backward across the merged stream, and each node's adapt
// transitions chain — every escalate/de-escalate departs From the level
// the previous transition arrived To (starting at base level 0), moving
// in the direction its kind names. An empty log is vacuously consistent;
// pair the metric with an event_count bound to pin that events happened.
func eventSequenceOK(events []obs.Event) bool {
	lastSeq := make(map[string]uint64)
	level := make(map[string]int)
	var lastAt time.Time
	for i, e := range events {
		if i > 0 && e.At.Before(lastAt) {
			return false
		}
		lastAt = e.At
		if s, seen := lastSeq[e.Node]; seen && e.Seq <= s {
			return false
		}
		lastSeq[e.Node] = e.Seq
		switch e.Kind {
		case obs.EventAdaptEscalate:
			if e.From != level[e.Node] || e.To <= e.From {
				return false
			}
			level[e.Node] = e.To
		case obs.EventAdaptDeescalate:
			if e.From != level[e.Node] || e.To >= e.From {
				return false
			}
			level[e.Node] = e.To
		}
	}
	return true
}

// quantileOrZero is Histogram.Quantile with the empty case pinned to 0.
func quantileOrZero(o *outcome, q float64) float64 {
	if o.latency.Count() == 0 {
		return 0
	}
	return o.latency.Quantile(q)
}
