package sim

import (
	"time"
)

// Simulation-wide calibration, matching internal/experiments: a
// script-grade solver and the paper's ~31 ms four-crossing round trip.
const (
	suiteHashRate = 27000 // hashes/s
	suiteOneWay   = 7750 * time.Microsecond
	suiteService  = 300 * time.Microsecond
)

// suiteNetwork is the network every suite scenario crosses.
func suiteNetwork() Network {
	return Network{OneWay: suiteOneWay, IssueTime: suiteService, VerifyTime: suiteService}
}

// scalePop shrinks a population for -quick runs, keeping per-client rates
// (and therefore all per-IP dynamics, difficulties, and latencies)
// untouched: only population-level counts shrink.
func scalePop(n int, scale float64) int {
	if scale >= 1 {
		return n
	}
	s := int(float64(n) * scale)
	if s < 8 {
		s = 8
	}
	return s
}

// DefaultSuite is the canonical adversarial scenario set the CI gate runs:
// eighteen deterministic scenarios spanning the traffic mixes the ROADMAP
// asks for, including the mid-campaign policy hot-swap, the closed-loop
// adaptive-defense suite (auto-escalation on attack onset, FP-proxy-gated
// escalation, controller flap guard, a verify_fail_rate rung against
// real-crypto forgeries, a three-rung production ladder), the
// scoring-verdict stack (the canonical policy2 scenarios run
// shape(inner=policy2) + behavioral redemption; fp-redemption pins a
// misscored benign population earning its way out of the FP tail), and the
// puzzle-backend pair (a GPU-discounted botnet collapses the hashcash
// asymmetry and the memory-hard balloon backend restores it, plus a
// real-crypto downgrade-replay scenario pinning that v2 solutions never
// redeem as v1).
// scale < 1 (the CLI's -quick) shrinks population sizes without changing
// per-client dynamics, so invariant bounds hold at every scale.
func DefaultSuite(seed uint64, scale float64) []Scenario {
	net := suiteNetwork()
	scs := []Scenario{
		{
			Name:        "steady-state",
			Description: "benign-only baseline: known-good users pay near-zero",
			Phases:      []Phase{{Name: "steady", Duration: 60 * time.Second}},
			Populations: []Population{{
				Name: "users", Legit: true, Clients: scalePop(100, scale), Rate: 0.3,
				Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				Paths: []string{"/", "/search", "/account"},
			}},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 4, Redeem: &RedeemDefense{}},
			Invariants: []Invariant{
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP50, "users", "", 60),
				AtMost(MetricLatencyP90, "users", "", 800),
				AtMost(MetricLatencyP99, "users", "", 4000),
				AtMost(MetricMeanDifficulty, "users", "", 9.5),
				AtMost(MetricMeanScore, "users", "", 4),
				AtMost(MetricCostP50, "users", "", 400),
				AtMost(MetricDecideErrors, "users", "", 0),
			},
		},
		{
			Name:        "flash-crowd",
			Description: "legitimate demand surge: 8x arrival spike must not be mistaken for an attack",
			Phases: []Phase{
				{Name: "calm", Duration: 20 * time.Second},
				{Name: "surge", Duration: 20 * time.Second, RateScale: map[string]float64{"users": 8}},
				{Name: "cooldown", Duration: 20 * time.Second},
			},
			Populations: []Population{{
				Name: "users", Legit: true, Clients: scalePop(100, scale), Rate: 0.25,
				Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				Paths: []string{"/", "/sale"},
			}},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 6, Redeem: &RedeemDefense{}},
			Invariants: []Invariant{
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP90, "users", "surge", 800),
				AtMost(MetricLatencyP99, "users", "surge", 4000),
				AtMost(MetricMeanDifficulty, "users", "surge", 10),
			},
		},
		{
			Name:        "pulsing-botnet",
			Description: "on-off flood: known-bad bots pulse to dodge rate defenses but pay on every pulse",
			Phases: []Phase{
				{Name: "calm", Duration: 15 * time.Second, RateScale: map[string]float64{"pulse-bots": 0}},
				{Name: "pulse1", Duration: 15 * time.Second},
				{Name: "quiet", Duration: 15 * time.Second, RateScale: map[string]float64{"pulse-bots": 0}},
				{Name: "pulse2", Duration: 15 * time.Second},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "pulse-bots", Clients: scalePop(300, scale), Rate: 2,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 3, Redeem: &RedeemDefense{}},
			Invariants: []Invariant{
				AtLeast(MetricWorkRatioP50, "", "", 12),
				AtLeast(MetricWorkRatio, "", "", 8),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP90, "users", "", 800),
				AtLeast(MetricMeanDifficulty, "pulse-bots", "", 11),
			},
		},
		{
			Name:        "rotating-botnet",
			Description: "feed-unknown bots rotate IPs to shed behavioral history; the rate window re-catches each block",
			Phases:      []Phase{{Name: "attack", Duration: 60 * time.Second}},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "rotating-bots", Clients: scalePop(150, scale), Rate: 3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedUnknown,
					IPPool: scalePop(150, scale) * 20, RotateEvery: 10 * time.Second,
					Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 2, TrackerWindow: 10 * time.Second, Redeem: &RedeemDefense{}},
			Invariants: []Invariant{
				AtLeast(MetricWorkRatioP50, "", "", 8),
				AtLeast(MetricWorkRatio, "", "", 5),
				AtLeast(MetricMeanDifficulty, "rotating-bots", "", 10),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP90, "users", "", 800),
			},
		},
		{
			Name:        "slow-and-low",
			Description: "feed-flagged probers hide under the rate radar; static intelligence still prices them out",
			Phases:      []Phase{{Name: "probe", Duration: 90 * time.Second}},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(80, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "probers", Clients: scalePop(400, scale), Rate: 0.05,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Paths:     []string{"/admin", "/wp-login.php", "/.env", "/backup.sql", "/api/keys"},
					FailRatio: 0.4,
				},
			},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 4, Redeem: &RedeemDefense{}},
			Invariants: []Invariant{
				AtLeast(MetricWorkRatioP50, "", "", 20),
				AtLeast(MetricWorkRatio, "", "", 4),
				AtLeast(MetricMeanDifficulty, "probers", "", 11),
				AtLeast(MetricCostP50, "probers", "", 2000),
				AtMost(MetricLatencyP90, "users", "", 1000),
				AtLeast(MetricServedFrac, "users", "", 0.999),
			},
		},
		{
			Name:        "poison-warmup",
			Description: "clean-feed bots warm up politely, then strike: the rate window reprices them mid-strike",
			Phases: []Phase{
				{Name: "warmup", Duration: 30 * time.Second},
				{Name: "strike", Duration: 30 * time.Second, RateScale: map[string]float64{"sleeper-bots": 40}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "sleeper-bots", Clients: scalePop(200, scale), Rate: 0.2,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
					Paths: []string{"/checkout"},
				},
			},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 3, TrackerWindow: 15 * time.Second, Redeem: &RedeemDefense{}},
			Invariants: []Invariant{
				AtLeast(MetricMeanDifficulty, "sleeper-bots", "strike", 12),
				AtLeast(MetricWorkRatioP50, "", "strike", 30),
				AtLeast(MetricWorkRatio, "", "strike", 10),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP90, "users", "", 800),
			},
		},
		{
			Name:        "challenge-dodgers",
			Description: "issuance flood: bots that never solve get zero service at high asking price",
			Phases:      []Phase{{Name: "flood", Duration: 45 * time.Second}},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "dodgers", Clients: scalePop(500, scale), Rate: 4,
					Behavior: BehaviorIgnore, Feed: FeedMalicious,
					Paths: []string{"/"},
				},
			},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 3, Redeem: &RedeemDefense{}},
			Invariants: []Invariant{
				AtMost(MetricServed, "dodgers", "", 0),
				AtMost(MetricSolveAttempts, "dodgers", "", 0),
				AtLeast(MetricMeanDifficulty, "dodgers", "", 12),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP90, "users", "", 800),
			},
		},
		{
			Name:        "policy-flip",
			Description: "mid-campaign control-plane flip: policy1 → policy2 reprices a pulsing botnet without a restart",
			Phases: []Phase{
				{Name: "calm", Duration: 15 * time.Second, RateScale: map[string]float64{"flip-bots": 0}},
				{Name: "pulse-policy1", Duration: 15 * time.Second},
				{Name: "pulse-policy2", Duration: 15 * time.Second, SwapPolicy: "policy2"},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "flip-bots", Clients: scalePop(300, scale), Rate: 2,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", SaturationRate: 3},
			Invariants: []Invariant{
				// The flip is the observable: under policy1 the bots' asking
				// price is capped (score+1 ≤ 11); the phase-boundary swap to
				// policy2 must visibly reprice them upward mid-pulse…
				AtMost(MetricMeanDifficulty, "flip-bots", "pulse-policy1", 11),
				AtLeast(MetricMeanDifficulty, "flip-bots", "pulse-policy2", 12),
				AtLeast(MetricWorkRatioP50, "", "pulse-policy2", 12),
				// …while legitimate traffic keeps being served with bounded
				// typical latency across the whole campaign, swap included.
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP50, "users", "", 60),
				AtMost(MetricLatencyP90, "users", "", 800),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "adaptive-attack-cycle",
			Description: "closed loop: flood onset auto-escalates policy1→policy2 within ticks, attack end auto-de-escalates after the hold",
			Phases: []Phase{
				{Name: "calm", Duration: 15 * time.Second, RateScale: map[string]float64{"cycle-bots": 0}},
				{Name: "flood", Duration: 30 * time.Second},
				{Name: "recovery", Duration: 25 * time.Second, RateScale: map[string]float64{"cycle-bots": 0}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "cycle-bots", Clients: scalePop(300, scale), Rate: 2,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", SaturationRate: 3, Adapt: &AdaptDefense{
				Capacity: 400,
				Rules:    []string{"escalate(when=rate>60, policy=policy2, hold=10s, after=2)"},
			}},
			Invariants: []Invariant{
				// The loop's latency, pinned from both sides: escalation
				// only after the flood starts (15 s) and within ~1.5 s of
				// ticks; de-escalation only after the 10 s hold past the
				// flood's end (45 s) plus the rate estimator's decay.
				AtLeast(MetricAdaptFirstEscalationMS, "", "", 15000),
				AtMost(MetricAdaptFirstEscalationMS, "", "", 16500),
				AtLeast(MetricAdaptFirstDeescalationMS, "", "", 55000),
				AtMost(MetricAdaptFirstDeescalationMS, "", "", 59000),
				// Exactly one up and one down: no flapping, back at base.
				AtLeast(MetricAdaptSwaps, "", "", 2),
				AtMost(MetricAdaptSwaps, "", "", 2),
				AtMost(MetricAdaptMaxLevel, "", "", 1),
				AtMost(MetricAdaptFinalLevel, "", "", 0),
				// The escalation visibly reprices the attackers mid-flood
				// (policy1 caps them at 11)…
				AtLeast(MetricMeanDifficulty, "cycle-bots", "flood", 12),
				AtLeast(MetricWorkRatioP50, "", "flood", 12),
				// …while legitimate traffic keeps flowing.
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP50, "users", "", 60),
				AtMost(MetricLatencyP90, "users", "", 800),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "adaptive-fp-softening",
			Description: "FP-proxy gating: a benign flash crowd (hard puzzles get solved) never escalates; a bot flood (hard puzzles abandoned) does",
			Phases: []Phase{
				{Name: "calm", Duration: 20 * time.Second, RateScale: map[string]float64{"fp-bots": 0}},
				{Name: "benign-surge", Duration: 20 * time.Second, RateScale: map[string]float64{"users": 8, "fp-bots": 0}},
				{Name: "lull", Duration: 20 * time.Second, RateScale: map[string]float64{"fp-bots": 0}},
				{Name: "bot-flood", Duration: 20 * time.Second},
				{Name: "recovery", Duration: 20 * time.Second, RateScale: map[string]float64{"fp-bots": 0}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(80, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "fp-bots", Clients: scalePop(400, scale), Rate: 2,
					Behavior: BehaviorGiveUpAbove, GiveUpAt: 10, HashRate: suiteHashRate,
					Feed: FeedMalicious, Paths: []string{"/login"},
				},
			},
			// Base policy2 carries the scorer's ~15% benign FP tail to
			// difficulty 13–15 — exactly the clients the hard_solve_frac
			// proxy watches: they dutifully solve, bots walk away.
			Defense: Defense{Policy: "policy2", SaturationRate: 3, Adapt: &AdaptDefense{
				Capacity: 800, Window: 20,
				Rules: []string{"escalate(when=rate>40, policy=fixed(difficulty=16), hold=8s, after=30, unless=hard_solve_frac>0.35)"},
			}},
			Invariants: []Invariant{
				// The 8x benign surge (20–40 s) trips the volume trigger
				// but the FP gate holds it down; only the bot flood (from
				// 60 s) escalates — and within the 30-tick debounce.
				AtLeast(MetricAdaptFirstEscalationMS, "", "", 62000),
				AtMost(MetricAdaptFirstEscalationMS, "", "", 66000),
				AtLeast(MetricAdaptFirstDeescalationMS, "", "", 88000),
				AtMost(MetricAdaptFirstDeescalationMS, "", "", 93000),
				AtLeast(MetricAdaptSwaps, "", "", 2),
				AtMost(MetricAdaptSwaps, "", "", 2),
				// The surge itself stays priced like any non-adaptive
				// policy2 deployment (an escalation to fixed(16) would
				// push the mean toward 16).
				AtMost(MetricMeanDifficulty, "users", "benign-surge", 11),
				AtMost(MetricLatencyP50, "users", "benign-surge", 60),
				AtMost(MetricLatencyP90, "users", "benign-surge", 800),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				// The flood is priced out: nearly every give-up bot walks
				// away unserved (a thin low-score tail still pays).
				AtMost(MetricServedFrac, "fp-bots", "", 0.1),
				AtLeast(MetricMeanDifficulty, "fp-bots", "bot-flood", 14),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "adaptive-flap-guard",
			Description: "pulsing botnet vs. hysteresis: on-off pulses shorter than the hold produce exactly one escalation, no policy flapping",
			Phases: []Phase{
				{Name: "calm", Duration: 10 * time.Second, RateScale: map[string]float64{"flap-bots": 0}},
				{Name: "pulse1", Duration: 5 * time.Second},
				{Name: "gap1", Duration: 5 * time.Second, RateScale: map[string]float64{"flap-bots": 0}},
				{Name: "pulse2", Duration: 5 * time.Second},
				{Name: "gap2", Duration: 5 * time.Second, RateScale: map[string]float64{"flap-bots": 0}},
				{Name: "pulse3", Duration: 5 * time.Second},
				{Name: "recovery", Duration: 20 * time.Second, RateScale: map[string]float64{"flap-bots": 0}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "flap-bots", Clients: scalePop(300, scale), Rate: 2,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", SaturationRate: 3, Adapt: &AdaptDefense{
				Capacity: 400,
				Rules:    []string{"escalate(when=rate>60, policy=policy2, hold=12s, after=2)"},
			}},
			Invariants: []Invariant{
				// One escalation at the first pulse; every later pulse
				// lands inside the 12 s hold, so the controller stays up
				// instead of flapping — exactly 2 swaps across 3 pulses.
				AtLeast(MetricAdaptFirstEscalationMS, "", "", 10000),
				AtMost(MetricAdaptFirstEscalationMS, "", "", 11500),
				AtLeast(MetricAdaptSwaps, "", "", 2),
				AtMost(MetricAdaptSwaps, "", "", 2),
				AtMost(MetricAdaptMaxLevel, "", "", 1),
				// De-escalation only after the last pulse (35 s) + hold.
				AtLeast(MetricAdaptFirstDeescalationMS, "", "", 47000),
				AtMost(MetricAdaptFirstDeescalationMS, "", "", 50500),
				AtMost(MetricAdaptFinalLevel, "", "", 0),
				// Later pulses arrive pre-priced: the held escalation
				// means no repricing lag on pulse 2 and 3 (policy1 would
				// average ≈8 on this mix; policy2 ≈12).
				AtLeast(MetricMeanDifficulty, "flap-bots", "pulse2", 11.5),
				AtLeast(MetricMeanDifficulty, "flap-bots", "pulse3", 11.5),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP50, "users", "", 60),
				AtMost(MetricLatencyP90, "users", "", 800),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "fp-redemption",
			Description: "misscored benign clients earn their way out of the FP tail: sustained verified solves redeem difficulty",
			Phases: []Phase{
				{Name: "cold", Duration: 10 * time.Second},
				{Name: "settled", Duration: 50 * time.Second},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					// The feed is wrong about these clients: real people whose
					// addresses carry malicious intelligence. They behave
					// impeccably — modest rate, no failures, every challenge
					// solved — which is exactly the evidence redemption pays.
					Name: "misscored", Legit: true, Clients: scalePop(80, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Paths: []string{"/", "/account"},
				},
			},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 4, Redeem: &RedeemDefense{}},
			Invariants: []Invariant{
				// Cold: the tail price. Settled: sustained verified solves
				// have attenuated the static judgment — the mean difficulty
				// and the per-request cost both fall, while a non-redeeming
				// defense would hold both flat for the whole run.
				AtLeast(MetricMeanDifficulty, "misscored", "cold", 9.5),
				AtMost(MetricMeanDifficulty, "misscored", "settled", 9.2),
				AtLeast(MetricCostPerServed, "misscored", "cold", 4000),
				AtMost(MetricCostPerServed, "misscored", "settled", 2500),
				AtLeast(MetricServedFrac, "misscored", "", 0.999),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP50, "users", "", 60),
				AtMost(MetricLatencyP90, "users", "", 800),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "forged-solutions",
			Description: "real-crypto forgery flood: bogus solutions spike verify_fail_rate and the adapt ladder reprices the route",
			Phases: []Phase{
				{Name: "calm", Duration: 15 * time.Second, RateScale: map[string]float64{"forgers": 0}},
				{Name: "flood", Duration: 25 * time.Second},
				{Name: "recovery", Duration: 20 * time.Second, RateScale: map[string]float64{"forgers": 0}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					// Forgers spend no compute at all: they echo challenges
					// back with corrupted tags, betting on verifier load and
					// lucky rejections — the one attack volume signals miss
					// (their request rate is modest) but the verify_fail_rate
					// signal nails.
					Name: "forgers", Clients: scalePop(200, scale), Rate: 1,
					Behavior: BehaviorBogus, Feed: FeedMalicious,
					Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", MaxDifficulty: 10, RealSolve: true, Adapt: &AdaptDefense{
				Rules: []string{"escalate(when=verify_fail_rate>0.3, policy=policy2, hold=8s, after=2)"},
			}},
			Invariants: []Invariant{
				// The rung fires within ticks of the flood's first rejected
				// forgeries and releases after the hold + window drain.
				AtLeast(MetricAdaptFirstEscalationMS, "", "", 15000),
				AtMost(MetricAdaptFirstEscalationMS, "", "", 17000),
				AtLeast(MetricAdaptFirstDeescalationMS, "", "", 48000),
				AtMost(MetricAdaptFirstDeescalationMS, "", "", 53000),
				AtLeast(MetricAdaptSwaps, "", "", 2),
				AtMost(MetricAdaptSwaps, "", "", 2),
				AtMost(MetricAdaptMaxLevel, "", "", 1),
				AtMost(MetricAdaptFinalLevel, "", "", 0),
				// Forgers get zero service however many forgeries they send,
				// and the escalation reprices their challenges upward.
				AtMost(MetricServedFrac, "forgers", "", 0),
				AtLeast(MetricMeanDifficulty, "forgers", "flood", 8.5),
				// Real-crypto legit path stays healthy through the flood.
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricExpired, "users", "", 0),
				AtMost(MetricLatencyP90, "users", "", 800),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "adaptive-ladder",
			Description: "production ladder: three escalation rungs reprice three attack waves, then unwind one level per step",
			Phases: []Phase{
				{Name: "calm", Duration: 10 * time.Second, RateScale: map[string]float64{"wave-bots": 0}},
				{Name: "wave1", Duration: 10 * time.Second},
				{Name: "wave2", Duration: 10 * time.Second, RateScale: map[string]float64{"wave-bots": 8}},
				{Name: "wave3", Duration: 10 * time.Second, RateScale: map[string]float64{"wave-bots": 64}},
				{Name: "recovery", Duration: 30 * time.Second, RateScale: map[string]float64{"wave-bots": 0}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					// Rational flood: give up above the pre-escalation price
					// band, so each wave's goodput collapses as its rung lands.
					Name: "wave-bots", Clients: scalePop(320, scale), Rate: 0.5,
					Behavior: BehaviorGiveUpAbove, GiveUpAt: 12, HashRate: suiteHashRate,
					Feed: FeedMalicious, Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", SaturationRate: 3, Adapt: &AdaptDefense{
				Rules: []string{
					"escalate(when=rate>30, policy=policy2, hold=6s, after=2)",
					"escalate(when=rate>200, policy=fixed(difficulty=15), hold=6s, after=2)",
					"escalate(when=rate>1600, policy=fixed(difficulty=17), hold=6s, after=2)",
				},
			}},
			Invariants: []Invariant{
				// Each wave triggers exactly its rung: the ladder tops out at
				// level 3 and unwinds one level per controller step after the
				// holds, so exactly six swaps bracket the campaign.
				AtLeast(MetricAdaptMaxLevel, "", "", 3),
				AtMost(MetricAdaptMaxLevel, "", "", 3),
				AtLeast(MetricAdaptSwaps, "", "", 6),
				AtMost(MetricAdaptSwaps, "", "", 6),
				AtMost(MetricAdaptFinalLevel, "", "", 0),
				AtLeast(MetricAdaptFirstEscalationMS, "", "", 10000),
				AtMost(MetricAdaptFirstEscalationMS, "", "", 12500),
				AtLeast(MetricAdaptFirstDeescalationMS, "", "", 46000),
				AtMost(MetricAdaptFirstDeescalationMS, "", "", 50000),
				// The rungs visibly reprice each wave upward.
				AtLeast(MetricMeanDifficulty, "wave-bots", "wave2", 12),
				AtLeast(MetricMeanDifficulty, "wave-bots", "wave3", 14),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				// The emergency rungs are fixed-difficulty: users pay them
				// too during the waves (the price of a stance that cannot be
				// gamed by score), so the tight latency bound applies to the
				// calm phase and a looser one to the whole campaign.
				AtMost(MetricLatencyP50, "users", "calm", 60),
				AtMost(MetricLatencyP50, "users", "", 250),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "real-crypto-smoke",
			Description: "end-to-end cryptographic path: real nonce searches redeemed through Verify",
			Phases:      []Phase{{Name: "steady", Duration: 10 * time.Second}},
			Populations: []Population{{
				Name: "users", Legit: true, Clients: scalePop(20, scale), Rate: 0.5,
				Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
			}},
			Defense: Defense{Policy: "policy1", MaxDifficulty: 10, RealSolve: true},
			Invariants: []Invariant{
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricExpired, "users", "", 0),
				AtMost(MetricDecideErrors, "users", "", 0),
				AtMost(MetricLatencyP99, "users", "", 300),
			},
		},
		{
			Name:        "gpu-botnet-hashcash",
			Description: "GPU-discounted botnet vs hashcash: parallel SHA-256 hardware collapses the work asymmetry",
			Phases: []Phase{
				{Name: "warmup", Duration: 10 * time.Second, RateScale: map[string]float64{"gpu-bots": 0}},
				{Name: "attack", Duration: 30 * time.Second},
			},
			Populations: []Population{
				{
					Name: "phones", Legit: true, Clients: scalePop(100, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					// A GPU mines SHA-256 three orders of magnitude faster than
					// a phone core, but gains almost nothing on a memory-
					// bandwidth-bound function — the asymmetry this pair of
					// scenarios measures from both sides.
					Name: "gpu-bots", Clients: scalePop(150, scale), Rate: 1,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Speedup: map[string]float64{"hashcash": 2000, "balloon": 2},
					Paths:   []string{"/signup"},
				},
			},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 3, MaxDifficulty: 12, Redeem: &RedeemDefense{}},
			Invariants: []Invariant{
				// The headline failure: with the hardware discount, the
				// botnet's effective median cost falls to or below the
				// phones' — pure hashcash cannot price out parallel silicon.
				AtMost(MetricWorkRatioP50, "", "attack", 1),
				AtLeast(MetricServedFrac, "gpu-bots", "", 0.999),
				AtLeast(MetricServedFrac, "phones", "", 0.999),
				AtMost(MetricLatencyP90, "phones", "attack", 800),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "gpu-botnet-balloon",
			Description: "same botnet vs the memory-hard backend: balloon hashing restores the priced-out asymmetry",
			Phases: []Phase{
				{Name: "warmup", Duration: 10 * time.Second, RateScale: map[string]float64{"gpu-bots": 0}},
				{Name: "attack", Duration: 30 * time.Second},
			},
			Populations: []Population{
				{
					Name: "phones", Legit: true, Clients: scalePop(100, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "gpu-bots", Clients: scalePop(150, scale), Rate: 1,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Speedup: map[string]float64{"hashcash": 2000, "balloon": 2},
					Paths:   []string{"/signup"},
				},
			},
			Defense: Defense{Policy: "shape(inner=policy2)", SaturationRate: 3, MaxDifficulty: 12, Redeem: &RedeemDefense{}, Puzzle: "balloon(space=8, time=1)"},
			Invariants: []Invariant{
				// Identical traffic, identical policy — only the backend
				// changed, and the asymmetry is back: the botnet's 2x memory
				// discount cannot bridge the backend's per-attempt cost.
				AtLeast(MetricWorkRatioP50, "", "attack", 4),
				AtLeast(MetricCostP50, "gpu-bots", "attack", 1000),
				// The benign quantiles hold: the median phone barely
				// notices the backend switch, the tail pays the memory-hard
				// price in single-digit seconds (not minutes), and every
				// phone is served.
				AtLeast(MetricServedFrac, "phones", "", 0.999),
				AtMost(MetricLatencyP50, "phones", "attack", 250),
				AtMost(MetricLatencyP90, "phones", "attack", 2000),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "cross-backend-replay",
			Description: "real-crypto downgrade replay: v2 balloon challenges re-encoded as v1 hashcash never redeem",
			Phases:      []Phase{{Name: "attack", Duration: 20 * time.Second}},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(20, scale), Rate: 0.5,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "downgraders", Clients: scalePop(60, scale), Rate: 1,
					Behavior: BehaviorDowngrade, Feed: FeedMalicious,
					Paths: []string{"/signup"},
				},
			},
			Defense: Defense{Policy: "policy1", MaxDifficulty: 8, RealSolve: true, Puzzle: "balloon(space=8, time=1)"},
			Invariants: []Invariant{
				// Every downgraded solution is rejected by the verifier's
				// version/backend gate; none is ever served — the cheap
				// hashcash work buys nothing on the memory-hard route.
				AtMost(MetricServed, "downgraders", "", 0),
				AtLeast(MetricRejected, "downgraders", "", 1),
				// Honest clients solving the real memory-hard puzzle sail
				// through the same verifier.
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricExpired, "users", "", 0),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "cluster-striping-fleet",
			Description: "K=4 fleet, striping botnet: fleet-summed feedback sees the cluster-wide rate and every node escalates; per-node rates alone stay under threshold",
			Cluster:     &ClusterSim{Nodes: 4, FleetFeedback: true},
			Phases: []Phase{
				{Name: "calm", Duration: 15 * time.Second, RateScale: map[string]float64{"stripe-bots": 0}},
				{Name: "flood", Duration: 30 * time.Second},
				{Name: "recovery", Duration: 25 * time.Second, RateScale: map[string]float64{"stripe-bots": 0}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(8, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					// Each bot request lands on an independently-drawn node:
					// ~32 r/s per node at full scale, under the 45 r/s
					// threshold every per-node controller watches — only the
					// ~128 r/s fleet total crosses it.
					Name: "stripe-bots", Clients: scalePop(8, scale), Rate: 8,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Stripe: true, Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", SaturationRate: 3, Adapt: &AdaptDefense{
				Capacity: 400,
				Rules:    []string{"escalate(when=rate>45, policy=policy2, hold=10s, after=2)"},
			}},
			Invariants: []Invariant{
				// Fleet detection latency: escalation only after the flood
				// starts (15 s) and within ~2 s — one exchange round of
				// staleness on top of the single-node loop latency.
				AtLeast(MetricAdaptFirstEscalationMS, "", "", 15000),
				AtMost(MetricAdaptFirstEscalationMS, "", "", 17500),
				// Every node escalates once and de-escalates once: 4 up, 4
				// down, ending back at base.
				AtLeast(MetricAdaptSwaps, "", "", 8),
				AtMost(MetricAdaptSwaps, "", "", 8),
				AtLeast(MetricAdaptMaxLevel, "", "", 1),
				AtMost(MetricAdaptFinalLevel, "", "", 0),
				// The escalation reprices the striped bots fleet-wide past
				// policy1's cap of 11 (the score spread keeps the mean just
				// above it; the local variant sits at ~7.6).
				AtLeast(MetricMeanDifficulty, "stripe-bots", "flood", 11.25),
				// …while legitimate traffic keeps flowing on every node.
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricLatencyP90, "users", "", 800),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "cluster-striping-local",
			Description: "failure exhibit paired with cluster-striping-fleet: same fleet, same botnet, feedback left per-node — no controller ever fires and the bots keep paying base prices",
			Cluster:     &ClusterSim{Nodes: 4, FleetFeedback: false},
			Phases: []Phase{
				{Name: "calm", Duration: 15 * time.Second, RateScale: map[string]float64{"stripe-bots": 0}},
				{Name: "flood", Duration: 30 * time.Second},
				{Name: "recovery", Duration: 25 * time.Second, RateScale: map[string]float64{"stripe-bots": 0}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(8, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "stripe-bots", Clients: scalePop(8, scale), Rate: 8,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Stripe: true, Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", SaturationRate: 3, Adapt: &AdaptDefense{
				Capacity: 400,
				Rules:    []string{"escalate(when=rate>45, policy=policy2, hold=10s, after=2)"},
			}},
			Invariants: []Invariant{
				// The striping works: no per-node rate ever crosses the
				// threshold, so no controller moves — this is exactly the
				// blind spot the fleet-feedback variant closes.
				AtMost(MetricAdaptSwaps, "", "", 0),
				AtMost(MetricAdaptMaxLevel, "", "", 0),
				// And the bots stay at policy1's cap the whole flood.
				AtMost(MetricMeanDifficulty, "stripe-bots", "flood", 11),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "cluster-replay",
			Description: "real-crypto cross-node replay: tokens solved and redeemed on one fleet node are resubmitted to the other; the gossiped Bloom filter rejects every one",
			Cluster:     &ClusterSim{Nodes: 2},
			Phases:      []Phase{{Name: "attack", Duration: 20 * time.Second}},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(8, scale), Rate: 0.5,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "replayers", Clients: scalePop(8, scale), Rate: 0.5,
					Behavior: BehaviorReplayCross, HashRate: suiteHashRate, Feed: FeedMalicious,
					Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", MaxDifficulty: 8, RealSolve: true},
			Invariants: []Invariant{
				// The replayers' honest first redemptions all land…
				AtLeast(MetricServedFrac, "replayers", "", 0.999),
				// …and served_frac ≤ 1 pins that no replay ever redeemed:
				// a second service for the same request would push served
				// past requests.
				AtMost(MetricServedFrac, "replayers", "", 1),
				// Every replay is rejected by the fleet filter.
				AtLeast(MetricRejected, "replayers", "", 50),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "cluster-partial",
			Description: "K=4 ring (degree 1, partial views): fleet feedback still detects the striping botnet, one relay hop of staleness slower than the full mesh",
			Cluster:     &ClusterSim{Nodes: 4, Degree: 1, FleetFeedback: true},
			Phases: []Phase{
				{Name: "calm", Duration: 15 * time.Second, RateScale: map[string]float64{"stripe-bots": 0}},
				{Name: "flood", Duration: 30 * time.Second},
				{Name: "recovery", Duration: 25 * time.Second, RateScale: map[string]float64{"stripe-bots": 0}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(8, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "stripe-bots", Clients: scalePop(8, scale), Rate: 8,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Stripe: true, Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", SaturationRate: 3, Adapt: &AdaptDefense{
				Capacity: 400,
				Rules:    []string{"escalate(when=rate>45, policy=policy2, hold=10s, after=2)"},
			}},
			Invariants: []Invariant{
				// Same detection, looser latency ceiling: counters relay
				// around the ring one hop per round (up to 3 rounds to the
				// farthest peer), so the mesh's bound gains that slack —
				// the detection-latency-vs-topology trade, pinned.
				AtLeast(MetricAdaptFirstEscalationMS, "", "", 15000),
				AtMost(MetricAdaptFirstEscalationMS, "", "", 18500),
				AtLeast(MetricAdaptMaxLevel, "", "", 1),
				AtMost(MetricAdaptFinalLevel, "", "", 0),
				AtLeast(MetricMeanDifficulty, "stripe-bots", "flood", 11.25),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
		{
			Name:        "adapt-event-log",
			Description: "defense event log: the attack cycle's escalate → hold → de-escalate shows up as exactly two structured events, in order, with the tripping signal readings",
			Phases: []Phase{
				{Name: "calm", Duration: 15 * time.Second, RateScale: map[string]float64{"cycle-bots": 0}},
				{Name: "flood", Duration: 30 * time.Second},
				{Name: "recovery", Duration: 25 * time.Second, RateScale: map[string]float64{"cycle-bots": 0}},
			},
			Populations: []Population{
				{
					Name: "users", Legit: true, Clients: scalePop(60, scale), Rate: 0.3,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedBenign,
				},
				{
					Name: "cycle-bots", Clients: scalePop(300, scale), Rate: 2,
					Behavior: BehaviorSolve, HashRate: suiteHashRate, Feed: FeedMalicious,
					Paths: []string{"/login"},
				},
			},
			Defense: Defense{Policy: "policy1", SaturationRate: 3, Events: true, Adapt: &AdaptDefense{
				Capacity: 400,
				Rules:    []string{"escalate(when=rate>60, policy=policy2, hold=10s, after=2)"},
			}},
			Invariants: []Invariant{
				// Exactly two events — one escalation, one de-escalation —
				// and a structurally consistent log (monotone sequence
				// numbers and timestamps, level-chained adapt transitions):
				// together these pin the exact escalate → de-escalate
				// sequence, with nothing spurious in between.
				AtLeast(MetricEventCount, "", "", 2),
				AtMost(MetricEventCount, "", "", 2),
				AtLeast(MetricEventSequenceOK, "", "", 1),
				// The hold separates them: escalation lands with the flood
				// onset, de-escalation only after the flood ends plus the
				// 10 s hold — the event log's timestamps carry the same
				// clock the adapt transition log does.
				AtLeast(MetricAdaptFirstEscalationMS, "", "", 15000),
				AtMost(MetricAdaptFirstEscalationMS, "", "", 16500),
				AtLeast(MetricAdaptFirstDeescalationMS, "", "", 55000),
				AtMost(MetricAdaptFirstDeescalationMS, "", "", 59000),
				AtMost(MetricAdaptMaxLevel, "", "", 1),
				AtMost(MetricAdaptFinalLevel, "", "", 0),
				AtLeast(MetricServedFrac, "users", "", 0.999),
				AtMost(MetricDecideErrors, "", "", 0),
			},
		},
	}
	for i := range scs {
		scs[i].Seed = seed
		scs[i].Network = net
	}
	return scs
}

// SuiteNames lists the default suite's scenario names, for -scenario
// filter validation and docs.
func SuiteNames() []string {
	names := make([]string, 0, 8)
	for _, sc := range DefaultSuite(1, 1) {
		names = append(names, sc.Name)
	}
	return names
}
