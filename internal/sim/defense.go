package sim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"aipow/internal/baseline"
	"aipow/internal/core"
	"aipow/internal/dataset"
	"aipow/internal/features"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
	"aipow/internal/reputation"
)

// defenseKey is the HMAC key every simulated defense signs with. Scenarios
// never cross keys, so a fixed one keeps reports free of key material.
var defenseKey = []byte("sim-scenario-hmac-key-32-bytes!!")

// Defense configures the framework a scenario defends with: the paper's
// pipeline assembled from a synthetic intelligence feed, a trained DAbR
// model, a live behavior tracker, and a registry policy.
type Defense struct {
	// Policy is the score→difficulty policy spec in registry syntax
	// (default "policy2"). Stick to deterministic policies: policy3 draws
	// from a shared PRNG per decision, which is order-dependent under the
	// engine's concurrency and would break report determinism.
	Policy string

	// MaxDifficulty caps what the issuer signs (default 22).
	MaxDifficulty int

	// Puzzle selects the puzzle backend in the puzzle package's spec
	// syntax, e.g. "balloon(space=8, time=1)" (empty: the default
	// hashcash backend). The engine prices every population's modeled
	// solve in the backend's cost units (attempts × the backend's
	// per-attempt hash cost, discounted by the population's Speedup
	// factor for that backend), so GPU-vs-phone asymmetry scenarios can
	// compare backends on the same traffic.
	Puzzle string

	// SaturationRate, when positive, blends a kaPoW-style behavioral
	// score into the model: the final score is the maximum of the static
	// DAbR score and 10·min(1, live_rate/SaturationRate). Zero leaves the
	// defense purely feed-driven (behavior-blind).
	SaturationRate float64

	// TrackerWindow and TrackerBuckets shape the behavior tracker's
	// sliding rate window (default 30 s across 10 buckets).
	TrackerWindow  time.Duration
	TrackerBuckets int

	// TTL is the challenge lifetime (default puzzle.DefaultTTL). The
	// engine also applies it to modeled verification, so slow solvers
	// time out identically in modeled and real-solve runs.
	TTL time.Duration

	// RealSolve switches the engine from modeled verification to real
	// nonce searches redeemed through Framework.Verify — the full
	// cryptographic path. Wall-clock cost is ~2^difficulty hashes per
	// request, so pair it with a low MaxDifficulty.
	RealSolve bool

	// Redeem wraps the static model in behavioral redemption
	// (reputation.Decay): verified solves earn a decaying attenuation of
	// the static score, so misscored benign clients work their way out of
	// the false-positive tail. The engine feeds modeled verifications into
	// the tracker's evidence state exactly as real Verify calls would.
	Redeem *RedeemDefense

	// DatasetSeed seeds feed generation, model training, and attribute
	// assignment (default: the scenario seed).
	DatasetSeed uint64

	// Adapt attaches a feedback controller to the defense — the closed
	// adaptive loop under test. The controller steps once per engine tick
	// at the tick boundary (a single-threaded point in the engine), so
	// adaptive runs stay byte-identical across reruns. Requires the
	// built-in Defense, not a custom Factory.
	Adapt *AdaptDefense

	// Events captures the defense event log into the scenario report:
	// every adapt escalation and de-escalation (with the tripping signal
	// reading), cluster membership change, and evidence flush stall is
	// recorded as a structured event, so scenarios can assert exact
	// defense event sequences. Off by default — existing reports stay
	// byte-identical unless a scenario opts in.
	Events bool
}

// AdaptDefense configures the scenario's feedback controller: the
// signal-plane shape plus the escalation ladder in the feedback rule
// grammar ("escalate(when=…, policy=…, hold=…)"). Escalation policies
// resolve against the built-in policy registry and are clamped to the
// defense's MaxDifficulty like the base policy; stick to deterministic
// policies (policy3 would break report determinism).
type AdaptDefense struct {
	// Capacity is the decision rate (decisions/s) treated as full load
	// for the "load" signal; 0 pins load to 0.
	Capacity float64

	// Hard marks challenges at or above this difficulty as "hard" for the
	// hard_solve_frac false-positive proxy (0 = 12).
	Hard int

	// Window is the signal window in engine ticks (0 = 10).
	Window int

	// Rules is the escalation ladder, in level order.
	Rules []string
}

// RedeemDefense configures the defense's behavioral-redemption wrapper.
// Zero fields take the reputation package's defaults; HalfLife zero takes
// the tracker's default evidence half-life.
type RedeemDefense struct {
	// HalfLife is the solve-credit decay half-life on the simulated clock.
	HalfLife time.Duration

	// MaxDrop is the largest score attenuation evidence can earn.
	MaxDrop float64

	// HalfCredit is the solve credit at which half of MaxDrop applies.
	HalfCredit float64
}

// withDefaults resolves zero fields.
func (d Defense) withDefaults(scenarioSeed uint64) Defense {
	if d.Policy == "" {
		d.Policy = "policy2"
	}
	if d.MaxDifficulty == 0 {
		d.MaxDifficulty = 22
	}
	if d.TrackerWindow == 0 {
		d.TrackerWindow = 30 * time.Second
	}
	if d.TrackerBuckets == 0 {
		d.TrackerBuckets = 10
	}
	if d.TTL == 0 {
		d.TTL = puzzle.DefaultTTL
	}
	if d.DatasetSeed == 0 {
		d.DatasetSeed = scenarioSeed
	}
	return d
}

// BuildDefense assembles the scenario's framework factory from its Defense
// config: generate the synthetic feed, train the model, register each
// population's addresses per its Feed profile, and wire tracker + store
// into a combined vector source so the engine exercises the allocation-free
// fast path.
func BuildDefense(sc Scenario) FrameworkFactory {
	return func(now func() time.Time) (*core.Framework, error) {
		fw, _, err := buildDefenseNode(sc, now)
		return fw, err
	}
}

// buildDefenseNode is the per-node assembly the factory (and the engine's
// fleet mode, once per cluster node) builds on: identical seeds produce
// identical feeds, models, and stores, so every fleet node defends with
// the same trained pipeline over its own tracker. The extra options are
// appended last (the fleet mode passes its cluster exchange hook).
func buildDefenseNode(sc Scenario, now func() time.Time, extra ...core.Option) (*core.Framework, *features.Tracker, error) {
	d := sc.Defense.withDefaults(sc.Seed)

	cfg := dataset.DefaultConfig()
	cfg.Seed = d.DatasetSeed
	raw, err := dataset.Generate(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: generate feed: %w", err)
	}
	samples := make([]reputation.Sample, len(raw))
	var benign, malicious []dataset.Sample
	for i, s := range raw {
		samples[i] = reputation.Sample{Attrs: s.Attrs, Malicious: s.Malicious}
		if s.Malicious {
			malicious = append(malicious, s)
		} else {
			benign = append(benign, s)
		}
	}
	if len(benign) == 0 || len(malicious) == 0 {
		return nil, nil, fmt.Errorf("sim: feed is missing a class")
	}
	model, err := reputation.Train(samples, reputation.WithSeed(d.DatasetSeed))
	if err != nil {
		return nil, nil, fmt.Errorf("sim: train model: %w", err)
	}

	// Unknown addresses fall back to the median benign profile: the
	// feed has nothing on them, so static scoring sees an ordinary
	// client and only live behavior can raise suspicion — exactly the
	// blind spot rotating botnets aim for.
	store, err := features.NewMapStore(medianAttrs(benign))
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewPCG(mix(d.DatasetSeed, 0xFEED), 0xA551617))
	for pi := range sc.Populations {
		pool := benign
		switch sc.Populations[pi].Feed {
		case FeedMalicious:
			pool = malicious
		case FeedUnknown:
			continue
		}
		for _, addr := range sc.PopulationIPs(pi) {
			store.Put(addr, pool[rng.IntN(len(pool))].Attrs)
		}
	}

	// Capacity is sized so far above the address universe that no
	// shard's quota can overflow; per-shard LRU eviction would depend
	// on cross-worker interleaving and break determinism.
	trackerOpts := []features.TrackerOption{
		features.WithCapacity(sc.TotalIPs()*8 + 4096),
		features.WithWindow(d.TrackerWindow, d.TrackerBuckets),
	}
	if d.Redeem != nil && d.Redeem.HalfLife > 0 {
		trackerOpts = append(trackerOpts, features.WithEvidenceHalfLife(d.Redeem.HalfLife))
	}
	tracker, err := features.NewTracker(trackerOpts...)
	if err != nil {
		return nil, nil, err
	}
	combined, err := features.NewCombined(store, tracker)
	if err != nil {
		return nil, nil, err
	}

	// Scorer stack, innermost out: the static DAbR model, optionally
	// wrapped in behavioral redemption (so solve evidence attenuates
	// the *static* judgment only), optionally blended with the live
	// rate score (layered outside redemption, so a currently-flooding
	// client keeps its behavioral price regardless of earned credit).
	var static vectorScorer = model
	if d.Redeem != nil {
		var opts []reputation.DecayOption
		if d.Redeem.MaxDrop > 0 {
			opts = append(opts, reputation.WithMaxRedemption(d.Redeem.MaxDrop))
		}
		if d.Redeem.HalfCredit > 0 {
			opts = append(opts, reputation.WithHalfCredit(d.Redeem.HalfCredit))
		}
		decay, err := reputation.NewDecay(model, opts...)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: redemption wrapper: %w", err)
		}
		static = decay
	}
	var scorer core.Scorer = static
	if d.SaturationRate > 0 {
		hybrid, err := newHybridScorer(static, d.SaturationRate)
		if err != nil {
			return nil, nil, err
		}
		scorer = hybrid
	}
	pol, err := policy.NewRegistry().New(d.Policy)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: policy %q: %w", d.Policy, err)
	}
	// Clamp to the issuer's cap: the issuer rejects (rather than
	// clamps) over-cap difficulties, and a worst-score client must
	// still get a challenge, not an error.
	pol, err = policy.NewClamp(pol, 1, d.MaxDifficulty)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: clamp policy: %w", err)
	}

	opts := []core.Option{
		core.WithKey(defenseKey),
		core.WithScorer(scorer),
	}
	if d.Puzzle != "" {
		backend, err := puzzle.ParseBackendSpec(d.Puzzle)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: puzzle backend: %w", err)
		}
		opts = append(opts, core.WithPuzzleBackend(backend))
	}
	opts = append(opts,
		core.WithPolicy(pol),
		core.WithSource(combined),
		core.WithTracker(tracker),
		core.WithClock(now),
		core.WithMaxDifficulty(d.MaxDifficulty),
		core.WithTTL(d.TTL),
	)
	if !d.RealSolve {
		// Verification is modeled; the replay cache would only grow.
		opts = append(opts, core.WithReplayCacheSize(0))
	}
	opts = append(opts, extra...)
	fw, err := core.New(opts...)
	if err != nil {
		return nil, nil, err
	}
	return fw, tracker, nil
}

// medianAttrs computes the per-attribute median over samples — the
// fallback profile for feed-unknown addresses.
func medianAttrs(samples []dataset.Sample) map[string]float64 {
	out := make(map[string]float64, len(samples[0].Attrs))
	for name := range samples[0].Attrs {
		vals := make([]float64, 0, len(samples))
		for _, s := range samples {
			vals = append(vals, s.Attrs[name])
		}
		// Insertion sort: attribute counts are small and this avoids
		// pulling in sort for a setup-time helper.
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		out[name] = vals[len(vals)/2]
	}
	return out
}

// vectorScorer is the inner-scorer seam of the defense stack: the map
// path plus the vector fast path. reputation.Model and reputation.Decay
// both satisfy it.
type vectorScorer interface {
	core.Scorer
	features.VectorScorer
}

// hybridScorer is the defense's AI seam when behavioral blending is on:
// max(static score, kaPoW-style rate score). It publishes its own schema
// — the inner scorer's attributes plus the tracker's live request rate —
// so the whole blend runs on the vector fast path, and carries verdicts
// through: when the rate score wins, the confidence is 1 (the evidence is
// directly observed behavior, not a model inference); otherwise the inner
// scorer's confidence passes through.
type hybridScorer struct {
	inner    vectorScorer
	verdict  features.VerdictScorer // nil: inner verdicts at confidence 1
	rate     baseline.RateScorer
	schema   *features.Schema
	innerLen int
	rateSlot int
}

func newHybridScorer(inner vectorScorer, saturation float64) (*hybridScorer, error) {
	rs, err := baseline.NewRateScorer(saturation)
	if err != nil {
		return nil, err
	}
	is := inner.Schema()
	if is == nil {
		return nil, fmt.Errorf("sim: scorer schema too wide for the vector fast path")
	}
	// The inner scorer may already consume the live request rate (the
	// redemption wrapper reads it as a gate); reuse its slot rather than
	// duplicating the attribute.
	schema, rateSlot := is, 0
	if j, ok := is.Index(features.AttrRequestRate); ok {
		rateSlot = j
	} else {
		names := append(is.Names(), features.AttrRequestRate)
		extended, err := features.NewSchema(names...)
		if err != nil {
			return nil, fmt.Errorf("sim: hybrid schema: %w", err)
		}
		schema, rateSlot = extended, is.Len()
	}
	h := &hybridScorer{
		inner:    inner,
		rate:     rs,
		schema:   schema,
		innerLen: is.Len(),
		rateSlot: rateSlot,
	}
	h.verdict, _ = inner.(features.VerdictScorer)
	return h, nil
}

// Score implements core.Scorer (map compatibility path).
func (h *hybridScorer) Score(attrs map[string]float64) (float64, error) {
	static, err := h.inner.Score(attrs)
	if err != nil {
		return 0, err
	}
	behavioral, err := h.rate.Score(attrs)
	if err != nil {
		return 0, err
	}
	return max(static, behavioral), nil
}

// Schema implements features.VectorScorer.
func (h *hybridScorer) Schema() *features.Schema { return h.schema }

// behavioral maps the rate slot to the kaPoW-style score.
func (h *hybridScorer) behavioral(v []float64) float64 {
	frac := v[h.rateSlot] / h.rate.SaturationRate
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return policy.MaxScore * frac
}

// ScoreVector implements features.VectorScorer. The rate slot is read
// before the inner scorer runs, because it uses its subvector as scratch.
func (h *hybridScorer) ScoreVector(v []float64) (float64, error) {
	if len(v) != h.schema.Len() {
		return 0, fmt.Errorf("sim: vector has %d dims, hybrid scorer wants %d", len(v), h.schema.Len())
	}
	behavioral := h.behavioral(v)
	static, err := h.inner.ScoreVector(v[:h.innerLen])
	if err != nil {
		return 0, err
	}
	return max(static, behavioral), nil
}

// VerdictVector implements features.VerdictScorer.
func (h *hybridScorer) VerdictVector(v []float64) (features.Verdict, error) {
	if len(v) != h.schema.Len() {
		return features.Verdict{}, fmt.Errorf("sim: vector has %d dims, hybrid scorer wants %d", len(v), h.schema.Len())
	}
	behavioral := h.behavioral(v)
	var ver features.Verdict
	var err error
	if h.verdict != nil {
		ver, err = h.verdict.VerdictVector(v[:h.innerLen])
	} else {
		ver.Confidence = 1
		ver.Score, err = h.inner.ScoreVector(v[:h.innerLen])
	}
	if err != nil {
		return features.Verdict{}, err
	}
	if behavioral >= ver.Score {
		// Observed behavior outranks the model: enforce at face value.
		return features.Verdict{Score: behavioral, Confidence: 1}, nil
	}
	return ver, nil
}

var (
	_ features.VectorScorer  = (*hybridScorer)(nil)
	_ features.VerdictScorer = (*hybridScorer)(nil)
)
