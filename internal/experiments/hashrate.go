package experiments

import (
	"fmt"

	"aipow/internal/attack"
	"aipow/internal/core"
	"aipow/internal/dataset"
	"aipow/internal/metrics"
	"aipow/internal/policy"
)

// HashrateConfig parameterizes E7: how the adaptive defense degrades as
// the attacker brings more hashing power (botnets with GPUs). PoW throttles
// by compute cost, so an attacker hashing k× faster cuts their inflicted
// latency by k — the known structural limit of every PoW defense, which
// the framework inherits and this ablation quantifies.
type HashrateConfig struct {
	// Scenario is the base workload; the bot population's hash rate is
	// scaled per sweep point. Benign clients keep the calibrated rate.
	Scenario attack.Scenario

	// Multipliers are the attacker hash-rate factors to sweep.
	Multipliers []float64

	// Dataset and Policy mirror the E4 pipeline.
	Dataset dataset.Config
	Policy  string

	// Seed drives dataset assignment and training.
	Seed uint64
}

// DefaultHashrateConfig sweeps a script kiddie (1×) through a GPU fleet
// (1000×) against the E4 workload.
func DefaultHashrateConfig() HashrateConfig {
	base := DefaultAttackConfig()
	return HashrateConfig{
		Scenario:    base.Scenario,
		Multipliers: []float64{1, 10, 100, 1000},
		Dataset:     base.Dataset,
		Policy:      base.Policy,
		Seed:        base.Seed,
	}
}

// HashrateRow is one sweep point.
type HashrateRow struct {
	Multiplier     float64
	BotGoodput     float64 // served/s
	BotMeanMS      float64
	BenignGoodput  float64
	BenignMedianMS float64
	ServerDropped  uint64
}

// HashrateResult is the full E7 sweep.
type HashrateResult struct {
	Config HashrateConfig
	Rows   []HashrateRow
}

// RunHashrate sweeps the attacker's hash rate against the adaptive
// framework built from the full E4 pipeline.
func RunHashrate(cfg HashrateConfig) (*HashrateResult, error) {
	if len(cfg.Multipliers) == 0 {
		return nil, fmt.Errorf("experiments: hashrate sweep needs multipliers")
	}
	raw, err := dataset.Generate(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: hashrate dataset: %w", err)
	}
	attackCfg := AttackConfig{Scenario: cfg.Scenario, Dataset: cfg.Dataset, Seed: cfg.Seed}
	model, store, err := buildIntel(raw, attackCfg)
	if err != nil {
		return nil, err
	}
	pol, err := policy.NewRegistry().New(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("experiments: hashrate policy: %w", err)
	}
	fw, err := core.New(
		core.WithKey([]byte("hashrate-experiment-hmac-key-32b")),
		core.WithScorer(model),
		core.WithPolicy(pol),
		core.WithSource(store),
		core.WithReplayCacheSize(0),
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: hashrate framework: %w", err)
	}

	baseRate := cfg.Scenario.Specs[1].HashRate
	res := &HashrateResult{Config: cfg}
	for _, mult := range cfg.Multipliers {
		if mult <= 0 {
			return nil, fmt.Errorf("experiments: non-positive multiplier %v", mult)
		}
		sc := cfg.Scenario
		specs := make([]attack.ClientSpec, len(sc.Specs))
		copy(specs, sc.Specs)
		specs[1].HashRate = baseRate * mult
		sc.Specs = specs

		out, err := attack.Run(fw, sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: hashrate run ×%g: %w", mult, err)
		}
		row := HashrateRow{
			Multiplier:    mult,
			ServerDropped: out.ServerDropped,
		}
		if b, ok := out.ByKind[attack.KindBot]; ok {
			row.BotGoodput = out.Goodput(attack.KindBot, sc.Duration)
			row.BotMeanMS = b.Latency.Mean()
		}
		if b, ok := out.ByKind[attack.KindBenign]; ok {
			row.BenignGoodput = out.Goodput(attack.KindBenign, sc.Duration)
			row.BenignMedianMS = b.Latency.Median()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the E7 sweep.
func (r *HashrateResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Attacker hash-rate sweep (%v, adaptive %s)",
			r.Config.Scenario.Duration, r.Config.Policy),
		"attacker_speedup", "bot_goodput_rps", "bot_mean_ms", "benign_goodput_rps",
		"benign_med_ms", "dropped")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%gx", row.Multiplier), row.BotGoodput, row.BotMeanMS,
			row.BenignGoodput, row.BenignMedianMS, row.ServerDropped)
	}
	return t
}
