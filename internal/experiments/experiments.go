// Package experiments contains one runner per table/figure of the paper's
// evaluation (plus the ablations DESIGN.md commits to), each producing the
// same rows/series the paper reports:
//
//	E1  RunFig2        — Figure 2: median latency vs. reputation score for
//	                     Policies 1, 2, 3 (median of 30 trials per point).
//	E2  RunSolveTime   — §III.A: "31 ms on average to solve a 1-difficult
//	                     puzzle, and this time increases with difficulty".
//	E3  RunAccuracy    — §II.1: DAbR scores IPs "with an accuracy of 80%".
//	E4  RunAttack      — the throttling claim: adaptive vs. fixed vs. no-PoW
//	                     under a DDoS flood.
//	E5  RunEpsilon     — Policy 3 ε sweep (design-knob ablation).
//
// Every runner is deterministic given its config's Seed and returns a
// result that renders to a metrics.Table, so the CLI, the benchmarks, and
// EXPERIMENTS.md all print identical numbers.
package experiments

import (
	"time"

	"aipow/internal/netsim"
)

// Calibration constants shared by E1/E2 (see DESIGN.md §3, "Calibration
// note"). The paper's testbed is unspecified; these anchor its one
// absolute number — ~31 ms end-to-end for a 1-difficult puzzle — and put
// Policy 2's hardest puzzle (d = 15) near the figure's ≈900 ms.
const (
	// CalibratedOneWay is the one-way network delay; four crossings ≈ 31 ms.
	CalibratedOneWay = 7750 * time.Microsecond

	// CalibratedHashRate (hashes/s) matches the era's script-grade solvers.
	CalibratedHashRate = 27000

	// CalibratedIssueTime covers scoring + policy + challenge generation.
	CalibratedIssueTime = 100 * time.Microsecond

	// CalibratedVerifyTime covers verification + response dispatch.
	CalibratedVerifyTime = 100 * time.Microsecond
)

// CalibratedTrial returns the trial environment used by E1/E2.
func CalibratedTrial() netsim.TrialConfig {
	return netsim.TrialConfig{
		Link:       netsim.Link{OneWay: CalibratedOneWay},
		Solver:     netsim.SimSolver{HashRate: CalibratedHashRate},
		IssueTime:  CalibratedIssueTime,
		VerifyTime: CalibratedVerifyTime,
	}
}
