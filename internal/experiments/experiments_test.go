package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"aipow/internal/attack"
)

func TestRunFig2Validation(t *testing.T) {
	cfg := DefaultFig2Config()
	cfg.Trials = 0
	if _, err := RunFig2(cfg); err == nil {
		t.Error("zero trials accepted")
	}
	cfg = DefaultFig2Config()
	cfg.Trial.Solver.HashRate = 0
	if _, err := RunFig2(cfg); err == nil {
		t.Error("invalid trial config accepted")
	}
	cfg = DefaultFig2Config()
	cfg.Epsilon = -1
	if _, err := RunFig2(cfg); err == nil {
		t.Error("invalid epsilon accepted")
	}
}

// The Figure 2 shape assertions — the core reproduction claims:
//  1. every policy's latency is monotone (noise-tolerant) in the score;
//  2. Policy 1 stays two orders of magnitude below Policy 2's peak;
//  3. Policy 2 at R=10 lands in the paper's high-hundreds-of-ms band;
//  4. all policies start near the 31 ms anchor at R=0… except Policy 2,
//     which starts at d=5 (still ≈ 31–35 ms: solving is cheap there);
//  5. Policy 3's mean curve sits between Policies 1 and 2 at high scores.
func TestRunFig2ReproducesPaperShape(t *testing.T) {
	res, err := RunFig2(DefaultFig2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3*11 {
		t.Fatalf("got %d points, want 33", len(res.Points))
	}

	get := func(pol string, score int) Fig2Point {
		t.Helper()
		p, ok := res.Point(pol, score)
		if !ok {
			t.Fatalf("missing point %s@%d", pol, score)
		}
		return p
	}
	p3name := ""
	for _, p := range res.Points {
		if strings.HasPrefix(p.Policy, "policy3") {
			p3name = p.Policy
			break
		}
	}
	if p3name == "" {
		t.Fatal("policy3 series missing")
	}

	// (1) Weak monotonicity with 20% noise tolerance for the stochastic
	// series (medians of 30 geometric draws wobble).
	for _, pol := range []string{"policy1", "policy2", p3name} {
		prev := 0.0
		for score := 0; score <= 10; score++ {
			m := get(pol, score).MedianMS
			if m < prev*0.8 {
				t.Errorf("%s median dropped at score %d: %.2f after %.2f", pol, score, m, prev)
			}
			if m > prev {
				prev = m
			}
		}
	}

	// (2,3) End-of-curve relationships.
	p1End := get("policy1", 10).MedianMS
	p2End := get("policy2", 10).MedianMS
	if p1End > 150 {
		t.Errorf("policy1 at R=10 = %.1f ms, paper shows <150 ms", p1End)
	}
	if p2End < 500 || p2End > 1400 {
		t.Errorf("policy2 at R=10 = %.1f ms, paper shows ≈900 ms", p2End)
	}
	if p2End < 5*p1End {
		t.Errorf("policy2 end (%v) not ≫ policy1 end (%v)", p2End, p1End)
	}

	// (4) The 31 ms anchor at R=0.
	for _, pol := range []string{"policy1", "policy2"} {
		start := get(pol, 0).MedianMS
		if start < 29 || start > 40 {
			t.Errorf("%s at R=0 = %.1f ms, want ≈31 ms anchor", pol, start)
		}
	}

	// (5) Policy 3 mean between the two linear policies at the top score.
	p3Mean := get(p3name, 10).MeanMS
	p1Mean := get("policy1", 10).MeanMS
	p2Mean := get("policy2", 10).MeanMS
	if !(p3Mean > p1Mean && p3Mean < p2Mean) {
		t.Errorf("policy3 mean %.1f not between policy1 %.1f and policy2 %.1f",
			p3Mean, p1Mean, p2Mean)
	}
}

func TestFig2TablesRender(t *testing.T) {
	cfg := DefaultFig2Config()
	cfg.Trials = 5
	res, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table().String()
	if !strings.Contains(tab, "policy1_median_ms") || !strings.Contains(tab, "reputation_score") {
		t.Fatalf("table missing columns:\n%s", tab)
	}
	mean := res.MeanTable().String()
	if !strings.Contains(mean, "policy2_mean_ms") {
		t.Fatalf("mean table missing columns:\n%s", mean)
	}
}

func TestRunFig2Deterministic(t *testing.T) {
	cfg := DefaultFig2Config()
	cfg.Trials = 10
	a, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across identical seeds", i)
		}
	}
}

func TestRunSolveTimeAnchorsAndGrows(t *testing.T) {
	cfg := DefaultSolveTimeConfig()
	res, err := RunSolveTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != cfg.MaxDifficulty {
		t.Fatalf("got %d points, want %d", len(res.Points), cfg.MaxDifficulty)
	}
	// Anchor: d=1 ≈ 31 ms.
	if d1 := res.Points[0].SimMedianMS; d1 < 29 || d1 > 35 {
		t.Errorf("d=1 median = %.2f ms, want ≈31", d1)
	}
	// Growth: d=15 ≫ d=1 and mean grows with d (noise-tolerant monotone).
	if res.Points[14].SimMedianMS < 10*res.Points[0].SimMedianMS {
		t.Errorf("d=15 (%.1f ms) not ≫ d=1 (%.1f ms)",
			res.Points[14].SimMedianMS, res.Points[0].SimMedianMS)
	}
	if math.IsNaN(res.Points[0].ExpectedAttempts) || res.Points[0].ExpectedAttempts != 2 {
		t.Errorf("expected attempts at d=1 = %v", res.Points[0].ExpectedAttempts)
	}
}

func TestRunSolveTimeRealMode(t *testing.T) {
	if testing.Short() {
		t.Skip("real hashing in -short mode")
	}
	cfg := DefaultSolveTimeConfig()
	cfg.Trials = 5
	cfg.MaxDifficulty = 10
	cfg.Real = true
	cfg.RealMaxDifficulty = 10
	res, err := RunSolveTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if math.IsNaN(p.RealMedianMS) {
			t.Fatalf("d=%d missing real measurement", p.Difficulty)
		}
	}
	// Real attempts should scale roughly like 2^d between d=4 and d=10.
	r4, r10 := res.Points[3].RealMedianAttempts, res.Points[9].RealMedianAttempts
	if r10 < r4*4 {
		t.Errorf("real attempts did not grow: d=4 %v, d=10 %v", r4, r10)
	}
	tab := res.Table().String()
	if !strings.Contains(tab, "real_solve_median_ms") {
		t.Fatalf("table missing real column:\n%s", tab)
	}
}

func TestRunAccuracyReproducesDABRBand(t *testing.T) {
	res, err := RunAccuracy(DefaultAccuracyConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc := res.Model.Accuracy()
	if acc < 0.72 || acc > 0.88 {
		t.Errorf("model accuracy = %.3f, want in DAbR band [0.72, 0.88]", acc)
	}
	if res.KNN.Total() == 0 {
		t.Error("kNN comparator not evaluated")
	}
	if res.TrainSize+res.TestSize != res.Config.Dataset.N {
		t.Errorf("split sizes %d+%d != %d", res.TrainSize, res.TestSize, res.Config.Dataset.N)
	}
	tab := res.Table().String()
	if !strings.Contains(tab, "dabr_centroids") || !strings.Contains(tab, "knn(k=15)") {
		t.Fatalf("table missing scorers:\n%s", tab)
	}
}

func TestRunAccuracyValidation(t *testing.T) {
	cfg := DefaultAccuracyConfig()
	cfg.TrainFraction = 1.5
	if _, err := RunAccuracy(cfg); err == nil {
		t.Fatal("bad train fraction accepted")
	}
}

// E4: the throttling claim. Closed-loop bots flood the server; the
// adaptive framework must (a) throttle bot goodput below the undefended
// server's, (b) keep benign latency low where a protective fixed
// difficulty punishes everyone, (c) charge bots more latency than benign
// clients, and (d) extract more attacker work than the weak fixed setting.
func TestRunAttackThrottlesUntrustworthy(t *testing.T) {
	cfg := DefaultAttackConfig()
	// Shrink for test speed while keeping the 1:9 benign:bot ratio.
	cfg.Scenario.Duration = 15 * time.Second
	cfg.Scenario.Specs[0].Count = 20
	cfg.Scenario.Specs[1].Count = 180
	res, err := RunAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // adaptive, fixed(8), fixed(15), no-pow, kapow
		t.Fatalf("got %d rows, want 5 defenses", len(res.Rows))
	}
	byName := map[string]AttackRow{}
	for _, r := range res.Rows {
		switch {
		case strings.HasPrefix(r.Defense, "adaptive"):
			byName["adaptive"] = r
		case r.Defense == "fixed(d=8)":
			byName["fixed8"] = r
		case r.Defense == "fixed(d=15)":
			byName["fixed15"] = r
		case r.Defense == "no-pow":
			byName["nopow"] = r
		case strings.HasPrefix(r.Defense, "kapow"):
			byName["kapow"] = r
		}
	}
	ad, fx8, fx15, np := byName["adaptive"], byName["fixed8"], byName["fixed15"], byName["nopow"]

	// The behavioral comparator must also throttle closed-loop bots (they
	// hammer, so their observed rate pegs the score) while leaving slow
	// benign clients cheap puzzles.
	if kp, ok := byName["kapow"]; !ok {
		t.Error("kapow row missing")
	} else if kp.BotServed >= np.BotServed {
		t.Errorf("kapow bot served %d not below no-pow %d", kp.BotServed, np.BotServed)
	}

	if ad.BenignServed == 0 {
		t.Fatal("adaptive framework starved benign clients")
	}
	// (a) Throttling: adaptive cuts bot goodput well below the undefended
	// server.
	if np.BotGoodput < 1.5*ad.BotGoodput {
		t.Errorf("adaptive bot goodput %.1f/s not well below no-pow %.1f/s",
			ad.BotGoodput, np.BotGoodput)
	}
	// (b) The protective fixed difficulty (15) makes benign clients pay
	// ~900 ms; adaptive keeps them near the network floor.
	if fx15.BenignMedianMS < 400 {
		t.Errorf("fixed(15) benign median %.1f ms, expected punishing ≳400 ms", fx15.BenignMedianMS)
	}
	if ad.BenignMedianMS > fx15.BenignMedianMS/3 {
		t.Errorf("adaptive benign median %.1f ms not ≪ fixed(15)'s %.1f ms",
			ad.BenignMedianMS, fx15.BenignMedianMS)
	}
	// (c) Within the adaptive run, bot traffic pays more latency than
	// benign traffic. Means, not medians: closed-loop weighting makes the
	// bot median reflect only the fast false negatives (see AttackRow).
	if ad.BotServed > 0 && ad.BotMeanMS < 1.5*ad.BenignMeanMS {
		t.Errorf("adaptive: bot mean %.1f ms not above benign mean %.1f ms",
			ad.BotMeanMS, ad.BenignMeanMS)
	}
	// (d) Attacker work: adaptive extracts more total hashing than the
	// weak fixed setting.
	if ad.BotSolveAttempts <= fx8.BotSolveAttempts {
		t.Errorf("adaptive bot work %.3g not above fixed(8) %.3g",
			ad.BotSolveAttempts, fx8.BotSolveAttempts)
	}
	tab := res.Table().String()
	if !strings.Contains(tab, "no-pow") || !strings.Contains(tab, "benign_served") {
		t.Fatalf("table malformed:\n%s", tab)
	}
}

func TestRunAttackUsesScenarioKinds(t *testing.T) {
	cfg := DefaultAttackConfig()
	cfg.Scenario.Duration = 5 * time.Second
	cfg.Scenario.Specs[0].Count = 5
	cfg.Scenario.Specs[1].Count = 5
	cfg.Scenario.Specs[1].Strategy = attack.StrategyIgnore
	cfg.Scenario.Specs[1].HashRate = 0
	res, err := RunAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if strings.HasPrefix(row.Defense, "adaptive") || strings.HasPrefix(row.Defense, "fixed") {
			if row.BotServed != 0 {
				t.Errorf("%s served %d ignoring bots", row.Defense, row.BotServed)
			}
		}
	}
}

func TestRunEpsilonSweepShape(t *testing.T) {
	cfg := DefaultEpsilonConfig()
	cfg.Trials = 20
	res, err := RunEpsilon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.Epsilons)*len(cfg.Scores) {
		t.Fatalf("got %d points", len(res.Points))
	}
	// ε=0 at R=10 must equal Policy 1's difficulty (11) latency scale;
	// larger ε raises the mean via the asymmetric upper tail.
	var eps0Mean, eps4Mean float64
	for _, p := range res.Points {
		if p.Score == 10 && p.Epsilon == 0 {
			eps0Mean = p.MeanMS
		}
		if p.Score == 10 && p.Epsilon == 4 {
			eps4Mean = p.MeanMS
		}
	}
	if !(eps4Mean > eps0Mean) {
		t.Errorf("ε=4 mean %.1f not above ε=0 mean %.1f at R=10", eps4Mean, eps0Mean)
	}
	if !strings.Contains(res.Table().String(), "median_ms@R=10") {
		t.Fatalf("table malformed:\n%s", res.Table())
	}
}

func TestRunEpsilonValidation(t *testing.T) {
	cfg := DefaultEpsilonConfig()
	cfg.Epsilons = nil
	if _, err := RunEpsilon(cfg); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

// E7: faster attackers erode the throttling — bot goodput must rise
// monotonically (tolerantly) with the hash-rate multiplier, quantifying
// the structural PoW limitation the framework inherits.
func TestRunHashrateSweepShape(t *testing.T) {
	cfg := DefaultHashrateConfig()
	cfg.Scenario.Duration = 10 * time.Second
	cfg.Scenario.Specs[0].Count = 10
	cfg.Scenario.Specs[1].Count = 90
	cfg.Multipliers = []float64{1, 100}
	res, err := RunHashrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	slow, fast := res.Rows[0], res.Rows[1]
	if fast.BotGoodput <= slow.BotGoodput {
		t.Errorf("100x attacker goodput %.1f not above 1x %.1f",
			fast.BotGoodput, slow.BotGoodput)
	}
	if fast.BotMeanMS >= slow.BotMeanMS {
		t.Errorf("100x attacker latency %.1f not below 1x %.1f",
			fast.BotMeanMS, slow.BotMeanMS)
	}
	if !strings.Contains(res.Table().String(), "attacker_speedup") {
		t.Fatalf("table malformed:\n%s", res.Table())
	}
}

func TestRunHashrateValidation(t *testing.T) {
	cfg := DefaultHashrateConfig()
	cfg.Multipliers = nil
	if _, err := RunHashrate(cfg); err == nil {
		t.Fatal("empty multipliers accepted")
	}
	cfg = DefaultHashrateConfig()
	cfg.Multipliers = []float64{0}
	if _, err := RunHashrate(cfg); err == nil {
		t.Fatal("zero multiplier accepted")
	}
}
