package experiments

import (
	"fmt"
	"math/rand/v2"

	"aipow/internal/metrics"
	"aipow/internal/netsim"
	"aipow/internal/policy"
)

// EpsilonConfig parameterizes E5: how Policy 3's error allowance ε places
// its latency curve between Policies 1 and 2.
type EpsilonConfig struct {
	// Epsilons are the ε values to sweep.
	Epsilons []float64

	// Scores are the reputation scores probed per ε.
	Scores []int

	// Trials per (ε, score) point.
	Trials int

	// Trial is the simulated environment.
	Trial netsim.TrialConfig

	// Seed drives all draws.
	Seed uint64
}

// DefaultEpsilonConfig sweeps ε from 0 (Policy 3 degenerates to Policy 1)
// to 4 at the probe scores 0, 5, 10.
func DefaultEpsilonConfig() EpsilonConfig {
	return EpsilonConfig{
		Epsilons: []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4},
		Scores:   []int{0, 5, 10},
		Trials:   30,
		Trial:    CalibratedTrial(),
		Seed:     5,
	}
}

// EpsilonPoint is one (ε, score) cell.
type EpsilonPoint struct {
	Epsilon  float64
	Score    int
	MedianMS float64
	MeanMS   float64
}

// EpsilonResult is the full sweep.
type EpsilonResult struct {
	Config EpsilonConfig
	Points []EpsilonPoint
}

// RunEpsilon sweeps Policy 3's ε.
func RunEpsilon(cfg EpsilonConfig) (*EpsilonResult, error) {
	if len(cfg.Epsilons) == 0 || len(cfg.Scores) == 0 || cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: epsilon sweep needs epsilons, scores and trials")
	}
	if err := cfg.Trial.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: epsilon trial config: %w", err)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xE52))
	res := &EpsilonResult{Config: cfg}
	for _, eps := range cfg.Epsilons {
		p3, err := policy.Policy3(policy.WithEpsilon(eps), policy.WithSeed(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("experiments: epsilon %v: %w", eps, err)
		}
		for _, score := range cfg.Scores {
			sum := metrics.NewSummary(cfg.Trials)
			for i := 0; i < cfg.Trials; i++ {
				d := p3.Difficulty(float64(score))
				b, err := netsim.RunTrial(cfg.Trial, d, rng)
				if err != nil {
					return nil, fmt.Errorf("experiments: epsilon trial: %w", err)
				}
				sum.ObserveDuration(b.Total())
			}
			res.Points = append(res.Points, EpsilonPoint{
				Epsilon:  eps,
				Score:    score,
				MedianMS: sum.Median(),
				MeanMS:   sum.Mean(),
			})
		}
	}
	return res, nil
}

// Table renders one row per ε with median and mean columns per probe
// score. The mean is the informative column: the ceil-asymmetric interval
// skews the difficulty draw upward, which the exponential solve cost
// amplifies in the mean while the median stays near the Policy-1 level.
func (r *EpsilonResult) Table() *metrics.Table {
	headers := []string{"epsilon"}
	for _, s := range r.Config.Scores {
		headers = append(headers, fmt.Sprintf("median_ms@R=%d", s), fmt.Sprintf("mean_ms@R=%d", s))
	}
	t := metrics.NewTable("Policy 3 ε sweep — latency per probe score", headers...)
	for _, eps := range r.Config.Epsilons {
		row := []any{eps}
		for _, s := range r.Config.Scores {
			for _, p := range r.Points {
				if p.Epsilon == eps && p.Score == s {
					row = append(row, p.MedianMS, p.MeanMS)
					break
				}
			}
		}
		t.AddRow(row...)
	}
	return t
}
