package experiments

import (
	"fmt"
	"math/rand/v2"

	"aipow/internal/dataset"
	"aipow/internal/metrics"
	"aipow/internal/reputation"
)

// AccuracyConfig parameterizes the E3 reproduction of DAbR's ~80% scoring
// accuracy on the synthetic Talos-like dataset.
type AccuracyConfig struct {
	// Dataset is the synthetic feed configuration.
	Dataset dataset.Config

	// TrainFraction splits the dataset.
	TrainFraction float64

	// Threshold is the malicious-classification score cut (the model's
	// calibrated operating point is 5).
	Threshold float64

	// Clusters is the number of malicious centroids to learn.
	Clusters int

	// KNNK, when positive, also evaluates a kNN scorer for comparison.
	KNNK int

	// Seed drives the split and training.
	Seed uint64
}

// DefaultAccuracyConfig reproduces E3.
func DefaultAccuracyConfig() AccuracyConfig {
	return AccuracyConfig{
		Dataset:       dataset.DefaultConfig(),
		TrainFraction: 0.8,
		Threshold:     reputation.MaxScore / 2,
		Clusters:      reputation.DefaultClusters,
		KNNK:          15,
		Seed:          3,
	}
}

// AccuracyResult is the E3 outcome.
type AccuracyResult struct {
	Config AccuracyConfig

	// Model is the trained DAbR-style scorer's evaluation on the test set.
	Model reputation.Evaluation

	// KNN is the kNN comparator's evaluation (zero value when disabled).
	KNN reputation.Evaluation

	// TrainSize and TestSize record the split.
	TrainSize, TestSize int
}

// RunAccuracy generates the dataset, trains the reputation model, and
// evaluates it, reproducing the 80% figure the paper imports from DAbR.
func RunAccuracy(cfg AccuracyConfig) (*AccuracyResult, error) {
	if cfg.TrainFraction <= 0 || cfg.TrainFraction >= 1 {
		return nil, fmt.Errorf("experiments: train fraction %v not in (0,1)", cfg.TrainFraction)
	}
	raw, err := dataset.Generate(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: accuracy dataset: %w", err)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xACC))
	trainRaw, testRaw := dataset.Split(raw, cfg.TrainFraction, rng)
	train := toReputationSamples(trainRaw)
	test := toReputationSamples(testRaw)

	model, err := reputation.Train(train,
		reputation.WithClusters(cfg.Clusters),
		reputation.WithSeed(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: accuracy training: %w", err)
	}
	eval, err := reputation.Evaluate(model, test, cfg.Threshold)
	if err != nil {
		return nil, fmt.Errorf("experiments: accuracy evaluation: %w", err)
	}
	res := &AccuracyResult{
		Config:    cfg,
		Model:     eval,
		TrainSize: len(train),
		TestSize:  len(test),
	}
	if cfg.KNNK > 0 {
		knn, err := reputation.NewKNN(train, cfg.KNNK)
		if err != nil {
			return nil, fmt.Errorf("experiments: accuracy knn: %w", err)
		}
		knnEval, err := reputation.Evaluate(knn, test, cfg.Threshold)
		if err != nil {
			return nil, fmt.Errorf("experiments: accuracy knn evaluation: %w", err)
		}
		res.KNN = knnEval
	}
	return res, nil
}

// toReputationSamples adapts dataset samples to the scorer's input type.
func toReputationSamples(in []dataset.Sample) []reputation.Sample {
	out := make([]reputation.Sample, len(in))
	for i, s := range in {
		out[i] = reputation.Sample{Attrs: s.Attrs, Malicious: s.Malicious}
	}
	return out
}

// Table renders the E3 rows (paper imports 80% accuracy from DAbR).
func (r *AccuracyResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Reputation model quality (train=%d test=%d threshold=%.1f; DAbR reports 0.80 accuracy)",
			r.TrainSize, r.TestSize, r.Config.Threshold),
		"scorer", "accuracy", "precision", "recall", "f1")
	t.AddRow("dabr_centroids", r.Model.Accuracy(), r.Model.Precision(), r.Model.Recall(), r.Model.F1())
	if r.Config.KNNK > 0 {
		t.AddRow(fmt.Sprintf("knn(k=%d)", r.Config.KNNK), r.KNN.Accuracy(), r.KNN.Precision(), r.KNN.Recall(), r.KNN.F1())
	}
	return t
}
