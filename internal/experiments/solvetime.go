package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"aipow/internal/metrics"
	"aipow/internal/netsim"
	"aipow/internal/puzzle"
)

// SolveTimeConfig parameterizes the E2 table (solve latency vs difficulty).
type SolveTimeConfig struct {
	// Trials per difficulty.
	Trials int

	// MaxDifficulty is the last row of the table (Policy 2's top is 15).
	MaxDifficulty int

	// Trial is the simulated environment.
	Trial netsim.TrialConfig

	// Real additionally measures actual SHA-256 solving on this host up
	// to RealMaxDifficulty, checking that the exponential shape is not a
	// simulation artifact.
	Real              bool
	RealMaxDifficulty int

	// Seed drives the simulated draws.
	Seed uint64
}

// DefaultSolveTimeConfig reproduces the paper's in-text claim setup.
func DefaultSolveTimeConfig() SolveTimeConfig {
	return SolveTimeConfig{
		Trials:            30,
		MaxDifficulty:     15,
		Trial:             CalibratedTrial(),
		Real:              false,
		RealMaxDifficulty: 14,
		Seed:              2,
	}
}

// SolveTimePoint is one difficulty row.
type SolveTimePoint struct {
	Difficulty int

	// SimMeanMS / SimMedianMS are simulated end-to-end latencies.
	SimMeanMS, SimMedianMS float64

	// ExpectedAttempts is the analytic 2^d.
	ExpectedAttempts float64

	// RealMedianMS is the measured wall-clock median of real SHA-256
	// solving (solve only, no network), or NaN when not measured.
	RealMedianMS float64

	// RealMedianAttempts is the measured median attempt count, or NaN.
	RealMedianAttempts float64
}

// SolveTimeResult is the full E2 table.
type SolveTimeResult struct {
	Config SolveTimeConfig
	Points []SolveTimePoint
}

// RunSolveTime produces the solve-latency-vs-difficulty table anchored by
// the paper's "31 ms for a 1-difficult puzzle".
func RunSolveTime(cfg SolveTimeConfig) (*SolveTimeResult, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: solvetime needs at least one trial")
	}
	if cfg.MaxDifficulty < 1 || cfg.MaxDifficulty > puzzle.MaxDifficulty {
		return nil, fmt.Errorf("experiments: solvetime max difficulty %d out of range", cfg.MaxDifficulty)
	}
	if err := cfg.Trial.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: solvetime trial config: %w", err)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x501E))

	res := &SolveTimeResult{Config: cfg}
	for d := 1; d <= cfg.MaxDifficulty; d++ {
		sum := metrics.NewSummary(cfg.Trials)
		for i := 0; i < cfg.Trials; i++ {
			b, err := netsim.RunTrial(cfg.Trial, d, rng)
			if err != nil {
				return nil, fmt.Errorf("experiments: solvetime trial d=%d: %w", d, err)
			}
			sum.ObserveDuration(b.Total())
		}
		p := SolveTimePoint{
			Difficulty:         d,
			SimMeanMS:          sum.Mean(),
			SimMedianMS:        sum.Median(),
			ExpectedAttempts:   puzzle.ExpectedAttempts(d),
			RealMedianMS:       math.NaN(),
			RealMedianAttempts: math.NaN(),
		}
		if cfg.Real && d <= cfg.RealMaxDifficulty {
			realMS, realAttempts, err := measureRealSolve(d, cfg.Trials)
			if err != nil {
				return nil, err
			}
			p.RealMedianMS = realMS
			p.RealMedianAttempts = realAttempts
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// measureRealSolve issues and genuinely solves real challenges, reporting
// median wall-clock ms and median attempts.
func measureRealSolve(d, trials int) (ms, attempts float64, err error) {
	key := []byte("solvetime-experiment-hmac-key-32b")
	issuer, err := puzzle.NewIssuer(key)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: real solve issuer: %w", err)
	}
	solver := puzzle.NewSolver()
	msSum := metrics.NewSummary(trials)
	atSum := metrics.NewSummary(trials)
	for i := 0; i < trials; i++ {
		ch, err := issuer.Issue(fmt.Sprintf("bench-client-%d", i), d)
		if err != nil {
			return 0, 0, fmt.Errorf("experiments: real solve issue: %w", err)
		}
		start := time.Now()
		_, stats, err := solver.Solve(context.Background(), ch)
		if err != nil {
			return 0, 0, fmt.Errorf("experiments: real solve d=%d: %w", d, err)
		}
		msSum.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		atSum.Observe(float64(stats.Attempts))
	}
	return msSum.Median(), atSum.Median(), nil
}

// Table renders the E2 rows.
func (r *SolveTimeResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Solve latency vs difficulty (paper anchor: ~31 ms at d=1)",
		"difficulty", "expected_attempts", "sim_median_ms", "sim_mean_ms", "real_solve_median_ms", "real_median_attempts")
	for _, p := range r.Points {
		real1, real2 := any("-"), any("-")
		if !math.IsNaN(p.RealMedianMS) {
			real1 = p.RealMedianMS
		}
		if !math.IsNaN(p.RealMedianAttempts) {
			real2 = p.RealMedianAttempts
		}
		t.AddRow(p.Difficulty, p.ExpectedAttempts, p.SimMedianMS, p.SimMeanMS, real1, real2)
	}
	return t
}
