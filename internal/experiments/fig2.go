package experiments

import (
	"fmt"
	"math/rand/v2"

	"aipow/internal/metrics"
	"aipow/internal/netsim"
	"aipow/internal/policy"
)

// Fig2Config parameterizes the Figure 2 reproduction.
type Fig2Config struct {
	// Trials is the number of trials per (policy, score) point; the paper
	// reports the median of 30.
	Trials int

	// Epsilon is Policy 3's error allowance.
	Epsilon float64

	// Trial is the simulated environment.
	Trial netsim.TrialConfig

	// Seed drives all randomness.
	Seed uint64
}

// DefaultFig2Config reproduces the paper's setup.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		Trials:  30,
		Epsilon: policy.DefaultEpsilon,
		Trial:   CalibratedTrial(),
		Seed:    1,
	}
}

// Fig2Point is one (policy, score) cell of the figure.
type Fig2Point struct {
	Policy   string
	Score    int
	MedianMS float64
	MeanMS   float64
	P10MS    float64
	P90MS    float64
}

// Fig2Result is the full reproduced figure.
type Fig2Result struct {
	Config Fig2Config
	Points []Fig2Point
}

// RunFig2 reproduces Figure 2: for each reputation score R ∈ {0, …, 10}
// and each of the paper's three policies, it samples Trials end-to-end
// round trips and reports their order statistics.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: fig2 needs at least one trial, got %d", cfg.Trials)
	}
	if err := cfg.Trial.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: fig2 trial config: %w", err)
	}
	p3, err := policy.Policy3(policy.WithEpsilon(cfg.Epsilon), policy.WithSeed(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 policy3: %w", err)
	}
	policies := []policy.Policy{policy.Policy1(), policy.Policy2(), p3}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0xF162))
	res := &Fig2Result{Config: cfg}
	for _, pol := range policies {
		for score := 0; score <= 10; score++ {
			sum := metrics.NewSummary(cfg.Trials)
			for trial := 0; trial < cfg.Trials; trial++ {
				d := pol.Difficulty(float64(score))
				b, err := netsim.RunTrial(cfg.Trial, d, rng)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig2 trial (policy %s, score %d): %w",
						pol.Name(), score, err)
				}
				sum.ObserveDuration(b.Total())
			}
			res.Points = append(res.Points, Fig2Point{
				Policy:   pol.Name(),
				Score:    score,
				MedianMS: sum.Median(),
				MeanMS:   sum.Mean(),
				P10MS:    sum.Percentile(10),
				P90MS:    sum.Percentile(90),
			})
		}
	}
	return res, nil
}

// Point returns the cell for (policyName, score), or false if absent.
func (r *Fig2Result) Point(policyName string, score int) (Fig2Point, bool) {
	for _, p := range r.Points {
		if p.Policy == policyName && p.Score == score {
			return p, true
		}
	}
	return Fig2Point{}, false
}

// Table renders the figure as the series the paper plots: one row per
// reputation score, one median-latency column per policy.
func (r *Fig2Result) Table() *metrics.Table {
	names := []string{}
	seen := map[string]bool{}
	for _, p := range r.Points {
		if !seen[p.Policy] {
			seen[p.Policy] = true
			names = append(names, p.Policy)
		}
	}
	headers := []string{"reputation_score"}
	for _, n := range names {
		headers = append(headers, n+"_median_ms")
	}
	t := metrics.NewTable(
		fmt.Sprintf("Figure 2 — median latency (ms) vs reputation score (median of %d trials)", r.Config.Trials),
		headers...)
	for score := 0; score <= 10; score++ {
		row := []any{score}
		for _, n := range names {
			if p, ok := r.Point(n, score); ok {
				row = append(row, p.MedianMS)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// MeanTable renders the mean-latency view of the same runs. The paper
// plots medians; the mean view makes Policy 3's upper-tail skew visible
// (see EXPERIMENTS.md).
func (r *Fig2Result) MeanTable() *metrics.Table {
	names := []string{}
	seen := map[string]bool{}
	for _, p := range r.Points {
		if !seen[p.Policy] {
			seen[p.Policy] = true
			names = append(names, p.Policy)
		}
	}
	headers := []string{"reputation_score"}
	for _, n := range names {
		headers = append(headers, n+"_mean_ms")
	}
	t := metrics.NewTable("Figure 2 (mean view) — mean latency (ms) vs reputation score", headers...)
	for score := 0; score <= 10; score++ {
		row := []any{score}
		for _, n := range names {
			if p, ok := r.Point(n, score); ok {
				row = append(row, p.MeanMS)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}
