package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"aipow/internal/attack"
	"aipow/internal/baseline"
	"aipow/internal/core"
	"aipow/internal/dataset"
	"aipow/internal/features"
	"aipow/internal/metrics"
	"aipow/internal/netsim"
	"aipow/internal/policy"
	"aipow/internal/reputation"
)

// AttackConfig parameterizes E4: the paper's throttling claim, measured as
// goodput and latency under flood for three defenses.
type AttackConfig struct {
	// Scenario is the client workload.
	Scenario attack.Scenario

	// Dataset generates the IP intelligence both the model and the store
	// are built from.
	Dataset dataset.Config

	// Policy is the adaptive framework's policy spec (registry syntax).
	Policy string

	// FixedDifficulties are the non-adaptive comparators' uniform
	// difficulties — typically one too low to throttle and one high enough
	// to throttle but punishing benign clients equally.
	FixedDifficulties []int

	// KaPoWSaturation, when positive, adds a kaPoW-style behavioral
	// comparator whose score saturates at this request rate (req/s). It
	// needs no AI model or feed — only observed request rates — which is
	// exactly what distinguishes it from the paper's approach.
	KaPoWSaturation float64

	// Seed drives dataset assignment and training.
	Seed uint64
}

// DefaultAttackConfig is the E4 workload: a small open-loop benign
// population beside an order-of-magnitude larger closed-loop botnet (each
// bot keeps one request in flight and fires the next immediately — the
// population PoW latency can actually throttle).
func DefaultAttackConfig() AttackConfig {
	return AttackConfig{
		Scenario: attack.Scenario{
			Duration: 60 * time.Second,
			Specs: []attack.ClientSpec{
				{Kind: attack.KindBenign, Count: 100, RequestRate: 0.2,
					HashRate: CalibratedHashRate, Strategy: attack.StrategySolve},
				{Kind: attack.KindBot, Count: 900, ClosedLoop: true, ThinkTime: 0,
					HashRate: CalibratedHashRate, Strategy: attack.StrategySolve},
			},
			Link:       netsim.Link{OneWay: CalibratedOneWay},
			IssueTime:  300 * time.Microsecond,
			VerifyTime: 300 * time.Microsecond,
			QueueCap:   512,
			Seed:       4,
		},
		Dataset:           dataset.DefaultConfig(),
		Policy:            "policy2",
		FixedDifficulties: []int{8, 15},
		KaPoWSaturation:   5,
		Seed:              4,
	}
}

// AttackRow is one defense's outcome.
//
// Note on metrics: bots are closed-loop, so their per-request latency
// distribution is request-weighted — bots the model correctly penalizes
// cycle slowly and contribute few samples, while misclassified (false
// negative) bots cycle fast and contribute many. The median therefore
// reflects the false negatives; the mean and p90 expose the throttling of
// the correctly-classified majority.
type AttackRow struct {
	Defense           string
	BenignServed      uint64
	BenignGoodput     float64 // served/s
	BenignMedianMS    float64
	BenignMeanMS      float64
	BotServed         uint64
	BotGoodput        float64
	BotMedianMS       float64
	BotMeanMS         float64
	BotP90MS          float64
	BotSolveAttempts  float64 // total attacker work
	ServerUtilization float64
	ServerDropped     uint64
}

// AttackResult is the full E4 comparison.
type AttackResult struct {
	Config AttackConfig
	Rows   []AttackRow
}

// RunAttack builds the full pipeline — synthetic feed, trained DAbR model,
// per-IP attribute store — and runs the same workload against the adaptive
// framework, a fixed-difficulty baseline, and an undefended server.
func RunAttack(cfg AttackConfig) (*AttackResult, error) {
	raw, err := dataset.Generate(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: attack dataset: %w", err)
	}
	model, store, err := buildIntel(raw, cfg)
	if err != nil {
		return nil, err
	}
	key := []byte("attack-experiment-hmac-key-32byte")

	reg := policy.NewRegistry()
	pol, err := reg.New(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("experiments: attack policy: %w", err)
	}

	adaptive, err := core.New(
		core.WithKey(key),
		core.WithScorer(model),
		core.WithPolicy(pol),
		core.WithSource(store),
		core.WithReplayCacheSize(0), // verification is modeled in the sim
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: attack adaptive framework: %w", err)
	}
	defenses := []struct {
		name string
		fw   *core.Framework
	}{
		{fmt.Sprintf("adaptive(%s)", adaptive.PolicyName()), adaptive},
	}
	for _, d := range cfg.FixedDifficulties {
		fixed, err := baseline.NewFixedPoW(key, store, d, core.WithReplayCacheSize(0))
		if err != nil {
			return nil, fmt.Errorf("experiments: attack fixed(%d) baseline: %w", d, err)
		}
		defenses = append(defenses, struct {
			name string
			fw   *core.Framework
		}{fmt.Sprintf("fixed(d=%d)", d), fixed})
	}
	nopow, err := baseline.NewNoPoW(key, store, core.WithReplayCacheSize(0))
	if err != nil {
		return nil, fmt.Errorf("experiments: attack nopow baseline: %w", err)
	}
	defenses = append(defenses, struct {
		name string
		fw   *core.Framework
	}{"no-pow", nopow})

	res := &AttackResult{Config: cfg}
	for _, def := range defenses {
		out, err := attack.Run(def.fw, cfg.Scenario)
		if err != nil {
			return nil, fmt.Errorf("experiments: attack run %s: %w", def.name, err)
		}
		res.Rows = append(res.Rows, summarize(def.name, out, cfg.Scenario.Duration))
	}

	// The kaPoW comparator tracks live request rates, so its framework is
	// built on the simulation clock via the factory entry point.
	if cfg.KaPoWSaturation > 0 {
		out, err := attack.RunFactory(func(now func() time.Time) (*core.Framework, error) {
			tracker, err := features.NewTracker(features.WithWindow(10*time.Second, 10))
			if err != nil {
				return nil, err
			}
			combined, err := features.NewCombined(store, tracker)
			if err != nil {
				return nil, err
			}
			// Same policy as the adaptive run: the comparison isolates the
			// detection mechanism (live rate vs. AI over traffic features).
			return baseline.NewKaPoW(key, combined, tracker, cfg.KaPoWSaturation, pol,
				core.WithReplayCacheSize(0), core.WithClock(now))
		}, cfg.Scenario)
		if err != nil {
			return nil, fmt.Errorf("experiments: attack run kapow: %w", err)
		}
		res.Rows = append(res.Rows, summarize(
			fmt.Sprintf("kapow(sat=%g/s)", cfg.KaPoWSaturation), out, cfg.Scenario.Duration))
	}
	return res, nil
}

// buildIntel trains the model on a split of the feed and assigns feed
// attributes to the scenario's client IPs: bots get malicious samples,
// benign clients get benign samples.
func buildIntel(raw []dataset.Sample, cfg AttackConfig) (*reputation.Model, *features.MapStore, error) {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xA77ACC))
	trainRaw, assignRaw := dataset.Split(raw, 0.8, rng)
	model, err := reputation.Train(toReputationSamples(trainRaw),
		reputation.WithSeed(cfg.Seed))
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: attack training: %w", err)
	}

	var benign, malicious []dataset.Sample
	for _, s := range assignRaw {
		if s.Malicious {
			malicious = append(malicious, s)
		} else {
			benign = append(benign, s)
		}
	}
	if len(benign) == 0 || len(malicious) == 0 {
		return nil, nil, fmt.Errorf("experiments: attack assignment pool empty")
	}
	store, err := features.NewMapStore(benign[0].Attrs)
	if err != nil {
		return nil, nil, err
	}
	for i, ips := range cfg.Scenario.ClientIPs() {
		pool := benign
		if cfg.Scenario.Specs[i].Kind == attack.KindBot {
			pool = malicious
		}
		for _, ip := range ips {
			store.Put(ip, pool[rng.IntN(len(pool))].Attrs)
		}
	}
	return model, store, nil
}

// summarize flattens one run into a table row.
func summarize(name string, out attack.Result, dur time.Duration) AttackRow {
	row := AttackRow{
		Defense:           name,
		ServerUtilization: out.ServerUtilization,
		ServerDropped:     out.ServerDropped,
	}
	if b, ok := out.ByKind[attack.KindBenign]; ok {
		row.BenignServed = b.Served
		row.BenignGoodput = out.Goodput(attack.KindBenign, dur)
		row.BenignMedianMS = b.Latency.Median()
		row.BenignMeanMS = b.Latency.Mean()
	}
	if b, ok := out.ByKind[attack.KindBot]; ok {
		row.BotServed = b.Served
		row.BotGoodput = out.Goodput(attack.KindBot, dur)
		row.BotMedianMS = b.Latency.Median()
		row.BotMeanMS = b.Latency.Mean()
		row.BotP90MS = b.Latency.Percentile(90)
		row.BotSolveAttempts = b.SolveAttempts
	}
	return row
}

// Table renders the E4 comparison.
func (r *AttackResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("DDoS mitigation comparison (%v, %d benign / %d bot clients)",
			r.Config.Scenario.Duration,
			r.Config.Scenario.Specs[0].Count, r.Config.Scenario.Specs[1].Count),
		"defense", "benign_served", "benign_med_ms", "benign_mean_ms",
		"bot_served", "bot_mean_ms", "bot_p90_ms",
		"bot_work_hashes", "server_util", "dropped")
	for _, row := range r.Rows {
		t.AddRow(row.Defense, row.BenignServed, row.BenignMedianMS, row.BenignMeanMS,
			row.BotServed, row.BotMeanMS, row.BotP90MS, row.BotSolveAttempts,
			row.ServerUtilization, row.ServerDropped)
	}
	return t
}
