package policy

import (
	"strings"
	"testing"
)

const exampleProgram = `
# Escalation tiers for the edge gateway.
name edge-tiers
when score >= 8 use 14
when score >= 5 use 8
when score < 2 use 1
default 3
`

func TestParseRulesExampleProgram(t *testing.T) {
	p, err := ParseRules(exampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "edge-tiers" {
		t.Errorf("Name() = %q", p.Name())
	}
	if p.NumRules() != 3 {
		t.Errorf("NumRules() = %d, want 3", p.NumRules())
	}
	tests := []struct {
		score float64
		want  int
	}{
		{9, 14},  // first rule
		{8, 14},  // boundary inclusive
		{6, 8},   // second rule
		{1.5, 1}, // exemption band
		{3, 3},   // default
		{2, 3},   // no rule matches exactly 2
		{10, 14}, // clamped top of scale
		{-4, 1},  // clamps to score 0 -> "< 2" rule
	}
	for _, tt := range tests {
		if got := p.Difficulty(tt.score); got != tt.want {
			t.Errorf("Difficulty(%v) = %d, want %d", tt.score, got, tt.want)
		}
	}
}

func TestParseRulesFirstMatchWins(t *testing.T) {
	p, err := ParseRules("when score >= 2 use 4\nwhen score >= 8 use 20\ndefault 1\n")
	if err != nil {
		t.Fatal(err)
	}
	// A score of 9 matches the first rule (>=2) before the harsher >=8.
	if got := p.Difficulty(9); got != 4 {
		t.Fatalf("Difficulty(9) = %d, want 4 (first match wins)", got)
	}
}

func TestParseRulesEqualityOperator(t *testing.T) {
	p, err := ParseRules("when score == 10 use 30\ndefault 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Difficulty(10); got != 30 {
		t.Errorf("Difficulty(10) = %d, want 30", got)
	}
	if got := p.Difficulty(9.5); got != 2 {
		t.Errorf("Difficulty(9.5) = %d, want 2", got)
	}
}

func TestParseRulesErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		frag string // expected substring of the error
	}{
		{"missing_default", "when score >= 5 use 8\n", "missing required 'default'"},
		{"duplicate_default", "default 1\ndefault 2\n", "duplicate default"},
		{"unknown_statement", "frobnicate 3\ndefault 1\n", "unknown statement"},
		{"bad_operator", "when score <> 5 use 8\ndefault 1\n", "unknown operator"},
		{"bad_threshold", "when score >= abc use 8\ndefault 1\n", "bad threshold"},
		{"bad_difficulty", "when score >= 5 use zap\ndefault 1\n", "bad difficulty"},
		{"difficulty_out_of_range", "when score >= 5 use 100\ndefault 1\n", "outside protocol range"},
		{"malformed_when", "when reputation >= 5 use 8\ndefault 1\n", "want 'when score"},
		{"bad_name", "name\ndefault 1\n", "want 'name"},
		{"bad_default_arity", "default\n", "want 'default"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseRules(tt.src)
			if err == nil {
				t.Fatal("malformed program accepted")
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Fatalf("err = %q, want substring %q", err, tt.frag)
			}
		})
	}
}

func TestParseRulesCommentsAndBlank(t *testing.T) {
	p, err := ParseRules("# only a default\n\n   \ndefault 7\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Difficulty(5); got != 7 {
		t.Fatalf("Difficulty(5) = %d, want 7", got)
	}
	if p.Name() != "rules" {
		t.Fatalf("default name = %q, want \"rules\"", p.Name())
	}
}

func TestParseRulesErrorsIncludeLineNumbers(t *testing.T) {
	_, err := ParseRules("default 1\nwhen score >= x use 2\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 reference", err)
	}
}
