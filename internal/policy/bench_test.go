package policy

import (
	"testing"
)

func BenchmarkLinearDifficulty(b *testing.B) {
	p := Policy2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Difficulty(float64(i % 11))
	}
}

func BenchmarkErrorRangeDifficulty(b *testing.B) {
	p, err := Policy3(WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Difficulty(float64(i % 11))
	}
}

func BenchmarkRulePolicyDifficulty(b *testing.B) {
	p, err := ParseRules(exampleProgram)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Difficulty(float64(i % 11))
	}
}

func BenchmarkParseRules(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRules(exampleProgram); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryNew(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.New("policy3(epsilon=2.5,seed=1)"); err != nil {
			b.Fatal(err)
		}
	}
}
