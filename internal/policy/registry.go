package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Factory builds a policy from numeric parameters. Factories must reject
// unknown parameter names so configuration typos fail loudly.
type Factory func(params map[string]float64) (Policy, error)

// Registry resolves policy specification strings like "policy2" or
// "policy3(epsilon=3,seed=42)" into Policy values. It ships with the
// paper's three policies plus the package's generic families registered,
// and accepts custom factories. A Registry is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns a registry pre-populated with the built-in policies:
//
//	policy1                              paper Policy 1
//	policy2                              paper Policy 2
//	policy3(epsilon=2.5, seed=…)         paper Policy 3
//	fixed(difficulty=8)                  non-adaptive baseline
//	linear(base=1, slope=1)              generic linear family
//	exponential(base=1, factor=0.4)      generic exponential family
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]Factory)}
	mustRegister := func(name string, f Factory) {
		if err := r.Register(name, f); err != nil {
			panic(fmt.Sprintf("policy: registering builtin %q: %v", name, err))
		}
	}
	mustRegister("policy1", func(params map[string]float64) (Policy, error) {
		if err := rejectUnknown(params); err != nil {
			return nil, err
		}
		return Policy1(), nil
	})
	mustRegister("policy2", func(params map[string]float64) (Policy, error) {
		if err := rejectUnknown(params); err != nil {
			return nil, err
		}
		return Policy2(), nil
	})
	mustRegister("policy3", func(params map[string]float64) (Policy, error) {
		if err := rejectUnknown(params, "epsilon", "seed"); err != nil {
			return nil, err
		}
		var opts []ErrorRangeOption
		if eps, ok := params["epsilon"]; ok {
			opts = append(opts, WithEpsilon(eps))
		}
		if seed, ok := params["seed"]; ok {
			opts = append(opts, WithSeed(uint64(seed)))
		}
		return Policy3(opts...)
	})
	mustRegister("fixed", func(params map[string]float64) (Policy, error) {
		if err := rejectUnknown(params, "difficulty"); err != nil {
			return nil, err
		}
		d, ok := params["difficulty"]
		if !ok {
			return nil, fmt.Errorf("policy: fixed requires difficulty=<n>")
		}
		return NewFixed(int(d))
	})
	mustRegister("linear", func(params map[string]float64) (Policy, error) {
		if err := rejectUnknown(params, "base", "slope"); err != nil {
			return nil, err
		}
		base, slope := 1.0, 1.0
		if v, ok := params["base"]; ok {
			base = v
		}
		if v, ok := params["slope"]; ok {
			slope = v
		}
		return NewLinear(int(base), slope)
	})
	mustRegister("exponential", func(params map[string]float64) (Policy, error) {
		if err := rejectUnknown(params, "base", "factor"); err != nil {
			return nil, err
		}
		base, factor := 1.0, 0.4
		if v, ok := params["base"]; ok {
			base = v
		}
		if v, ok := params["factor"]; ok {
			factor = v
		}
		return NewExponential(int(base), factor)
	})
	return r
}

// shapeName is the reserved spec name of the confidence-shaping
// combinator. It is resolved by New itself rather than a Factory because
// its inner parameter is a nested component spec, not a number.
const shapeName = "shape"

// Register adds a named factory. Re-registering an existing name is an
// error: silent overrides hide configuration mistakes.
func (r *Registry) Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("policy: registry requires a name and factory")
	}
	if name == shapeName {
		return fmt.Errorf("policy: %q is a reserved combinator name", shapeName)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("policy: %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// Names reports registered policy names (including the built-in shape
// combinator), sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories)+1)
	for name := range r.factories {
		names = append(names, name)
	}
	names = append(names, shapeName)
	sort.Strings(names)
	return names
}

// New resolves a spec string "name" or "name(k=v,k2=v2)" into a Policy.
// The built-in combinator "shape(inner=<spec>[, anchor=<score>])" wraps
// any registry-resolvable policy in confidence shaping (NewConfidenceShaped);
// its inner parameter is itself a full component spec, nested parentheses
// included: shape(inner=linear(base=1, slope=1.2)).
func (r *Registry) New(spec string) (Policy, error) {
	name, raw, err := ParseSpecParams(spec)
	if err != nil {
		return nil, err
	}
	if name == shapeName {
		return r.newShape(spec, raw)
	}
	params, err := convertParams(raw)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (known: %s)", name, strings.Join(r.Names(), ", "))
	}
	return f(params)
}

// newShape compiles the shape(...) combinator from raw parameters.
func (r *Registry) newShape(spec string, raw []Param) (Policy, error) {
	var inner Policy
	anchor, floor := DefaultShapeAnchor, DefaultShapeFloor
	for _, p := range raw {
		switch p.Key {
		case "inner":
			pol, err := r.New(p.Value)
			if err != nil {
				return nil, fmt.Errorf("policy: shape inner: %w", err)
			}
			inner = pol
		case "anchor", "floor":
			v, err := strconv.ParseFloat(p.Value, 64)
			if err != nil {
				return nil, fmt.Errorf("policy: shape %s %q: %w", p.Key, p.Value, err)
			}
			if p.Key == "anchor" {
				anchor = v
			} else {
				floor = v
			}
		default:
			return nil, fmt.Errorf("policy: shape: unknown parameter %q (allowed: inner, anchor, floor)", p.Key)
		}
	}
	if inner == nil {
		return nil, fmt.Errorf("policy: %q requires inner=<policy spec>", spec)
	}
	return NewConfidenceShaped(inner, anchor, floor)
}

// ParseSpec splits a component specification "name" or "name(k=v,k2=v2)"
// into its name and numeric parameters. The syntax is shared by every
// component registry in the framework — policies here, scorers and sources
// in the control plane — so operators learn one spec grammar.
func ParseSpec(spec string) (name string, params map[string]float64, err error) {
	return parseSpec(spec)
}

// RejectUnknownParams errors on any parameter key outside the allowed set;
// component factories use it so configuration typos fail loudly.
func RejectUnknownParams(params map[string]float64, allowed ...string) error {
	return rejectUnknown(params, allowed...)
}

// Param is one raw key=value parameter of a component spec, in declaration
// order.
type Param struct {
	Key, Value string
}

// ParseSpecParams splits "name" or "name(k=v,k2=v2)" into its name and raw
// string-valued parameters, preserving declaration order and respecting
// nested parentheses inside values. It is the shared shell of every
// component grammar in the framework: ParseSpec layers the numeric
// conversion policies, scorers, and sources use on top, and the feedback
// rule grammar consumes the raw form directly so parameter values can
// themselves be component specs ("policy=fixed(difficulty=16)").
//
// A bare name returns nil params; "name()" returns an empty non-nil slice.
func ParseSpecParams(spec string) (string, []Param, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return "", nil, fmt.Errorf("spec: empty spec")
	}
	open := strings.IndexByte(spec, '(')
	if open < 0 {
		return spec, nil, nil
	}
	if !strings.HasSuffix(spec, ")") {
		return "", nil, fmt.Errorf("spec: unbalanced parentheses in %q", spec)
	}
	name := strings.TrimSpace(spec[:open])
	if name == "" {
		return "", nil, fmt.Errorf("spec: missing name in %q", spec)
	}
	inner := spec[open+1 : len(spec)-1]
	params := []Param{}
	if strings.TrimSpace(inner) == "" {
		return name, params, nil
	}
	seen := make(map[string]bool)
	flush := func(kv string) error {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return fmt.Errorf("spec: parameter %q is not key=value", kv)
		}
		k = strings.TrimSpace(k)
		if seen[k] {
			return fmt.Errorf("spec: duplicate parameter %q", k)
		}
		seen[k] = true
		params = append(params, Param{Key: k, Value: strings.TrimSpace(v)})
		return nil
	}
	depth, start := 0, 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return "", nil, fmt.Errorf("spec: unbalanced parentheses in %q", spec)
			}
		case ',':
			if depth == 0 {
				if err := flush(inner[start:i]); err != nil {
					return "", nil, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return "", nil, fmt.Errorf("spec: unbalanced parentheses in %q", spec)
	}
	if err := flush(inner[start:]); err != nil {
		return "", nil, err
	}
	return name, params, nil
}

// parseSpec splits "name(k=v,…)" into its parts, converting parameter
// values to float64.
func parseSpec(spec string) (string, map[string]float64, error) {
	name, raw, err := ParseSpecParams(spec)
	if err != nil {
		return "", nil, err
	}
	params, err := convertParams(raw)
	if err != nil {
		return "", nil, err
	}
	return name, params, nil
}

// convertParams converts raw key=value parameters to the numeric map the
// factory interface consumes (nil in, nil out).
func convertParams(raw []Param) (map[string]float64, error) {
	if raw == nil {
		return nil, nil
	}
	params := make(map[string]float64, len(raw))
	for _, p := range raw {
		val, err := strconv.ParseFloat(p.Value, 64)
		if err != nil {
			return nil, fmt.Errorf("spec: parameter %q: %w", p.Key, err)
		}
		params[p.Key] = val
	}
	return params, nil
}

// rejectUnknown errors on any parameter key outside the allowed set.
func rejectUnknown(params map[string]float64, allowed ...string) error {
	for k := range params {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("spec: unknown parameter %q (allowed: %s)", k, strings.Join(allowed, ", "))
		}
	}
	return nil
}
