package policy

import (
	"strings"
	"testing"
	"testing/quick"
)

// The DSL parser must never panic, whatever bytes arrive: it either
// returns a policy or an error.
func TestParseRulesNeverPanicsProperty(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		p, err := ParseRules(src)
		if err == nil && p == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Near-miss programs: structurally plausible inputs that must be rejected
// with errors, not misparsed.
func TestParseRulesNearMisses(t *testing.T) {
	nearMisses := []string{
		"when score >= 5 use 8 extra\ndefault 1",
		"when score >= 5\ndefault 1",
		"when >= 5 use 8\ndefault 1",
		"default 1 2",
		"name a b\ndefault 1",
		"WHEN score >= 5 use 8\ndefault 1", // statements are case-sensitive
	}
	for _, src := range nearMisses {
		if _, err := ParseRules(src); err == nil {
			t.Errorf("near-miss accepted: %q", src)
		}
	}
}

// Spec parser robustness: random spec strings must not panic the registry.
func TestRegistryNewNeverPanicsProperty(t *testing.T) {
	r := NewRegistry()
	f := func(spec string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = r.New(spec)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// A registry-resolved policy3 must stay within its documented interval for
// in-range scores (spot-check of spec plumbing end to end).
func TestRegistryPolicy3IntervalPlumbing(t *testing.T) {
	r := NewRegistry()
	p, err := r.New("policy3(epsilon=0.5,seed=9)")
	if err != nil {
		t.Fatal(err)
	}
	er, ok := p.(*ErrorRange)
	if !ok {
		t.Fatalf("got %T", p)
	}
	lo, hi := er.Interval(7)
	if lo != 8 || hi != 9 { // dᵢ=8, ceil(-0.5)=0 → lo=8; ceil(0.5)=1 → hi=9
		t.Fatalf("Interval(7) = [%d, %d], want [8, 9]", lo, hi)
	}
	for i := 0; i < 100; i++ {
		if d := p.Difficulty(7); d < lo || d > hi {
			t.Fatalf("draw %d outside [%d, %d]", d, lo, hi)
		}
	}
}

// Rendering helpers must include rule text (used in ops tooling).
func TestStepStringMentionsEveryRule(t *testing.T) {
	s, err := NewStep("edge", 2,
		StepRule{MinScore: 3, Difficulty: 5},
		StepRule{MinScore: 7, Difficulty: 11},
	)
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	for _, frag := range []string{">=3 -> 5", ">=7 -> 11", "default=2"} {
		if !strings.Contains(str, frag) {
			t.Errorf("String() missing %q: %s", frag, str)
		}
	}
}
