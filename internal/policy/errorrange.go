package policy

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
)

// DefaultEpsilon is the default scoring-error allowance for Policy 3. The
// paper inherits ε from DAbR's reported scoring error; 2.5 reproduces the
// figure's "between Policy 1 and Policy 2" growth (see experiment E5 for
// the sweep across ε).
const DefaultEpsilon = 2.5

// ErrorRange is the paper's Policy 3: because the AI model's score sᵢ
// carries error ε, the true score may be higher or lower than reported.
// The policy compensates by computing dᵢ = ⌈sᵢ + 1⌉ and then drawing the
// issued difficulty uniformly from the integer interval
// [⌈dᵢ − ε⌉, ⌈dᵢ + ε⌉], clamped to the protocol range.
//
// Note the deliberate asymmetry for fractional ε: ⌈dᵢ − 2.5⌉ = dᵢ − 2 but
// ⌈dᵢ + 2.5⌉ = dᵢ + 3, so the interval skews one step toward harder
// puzzles — a defense system rounds its uncertainty against the client.
//
// ErrorRange is safe for concurrent use.
type ErrorRange struct {
	epsilon float64
	mu      *sync.Mutex
	rng     *rand.Rand
}

var _ Policy = (*ErrorRange)(nil)

// ErrorRangeOption customizes an ErrorRange policy.
type ErrorRangeOption func(*ErrorRange)

// WithEpsilon sets the scoring-error allowance (default DefaultEpsilon).
func WithEpsilon(eps float64) ErrorRangeOption {
	return func(p *ErrorRange) { p.epsilon = eps }
}

// WithSeed makes the difficulty draws deterministic, for reproducible
// experiments.
func WithSeed(seed uint64) ErrorRangeOption {
	return func(p *ErrorRange) { p.rng = rand.New(rand.NewPCG(seed, 0xA5A5A5A55A5A5A5A)) }
}

// Policy3 returns the paper's Policy 3 with the given options applied.
func Policy3(opts ...ErrorRangeOption) (*ErrorRange, error) {
	p := &ErrorRange{
		epsilon: DefaultEpsilon,
		mu:      &sync.Mutex{},
		rng:     rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
	}
	for _, opt := range opts {
		opt(p)
	}
	if p.epsilon < 0 || math.IsNaN(p.epsilon) || math.IsInf(p.epsilon, 0) {
		return nil, fmt.Errorf("policy: epsilon must be finite and non-negative, got %v", p.epsilon)
	}
	return p, nil
}

// Name implements Policy.
func (p *ErrorRange) Name() string { return fmt.Sprintf("policy3(eps=%g)", p.epsilon) }

// Epsilon reports the configured error allowance.
func (p *ErrorRange) Epsilon() float64 { return p.epsilon }

// Difficulty implements Policy. It draws uniformly from the error interval
// around dᵢ = ⌈score + 1⌉.
func (p *ErrorRange) Difficulty(score float64) int {
	s := clampScore(score)
	di := int(math.Ceil(s + 1))
	lo := di + int(math.Ceil(-p.epsilon))
	hi := di + int(math.Ceil(p.epsilon))
	if lo > hi { // cannot happen for ε ≥ 0, but keep the invariant local
		lo, hi = hi, lo
	}
	p.mu.Lock()
	d := lo + p.rng.IntN(hi-lo+1)
	p.mu.Unlock()
	return clampDifficulty(d)
}

// Interval reports the [lo, hi] difficulty interval (before protocol
// clamping) that Difficulty draws from for the given score. It exists so
// experiments and tests can reason about the draw without consuming
// randomness.
func (p *ErrorRange) Interval(score float64) (lo, hi int) {
	s := clampScore(score)
	di := int(math.Ceil(s + 1))
	return di + int(math.Ceil(-p.epsilon)), di + int(math.Ceil(p.epsilon))
}
