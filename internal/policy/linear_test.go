package policy

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperPolicyTables pins the exact mapping from §III.A of the paper:
// Policy 1 maps score R to difficulty R+1, Policy 2 maps R to R+5.
func TestPaperPolicyTables(t *testing.T) {
	p1, p2 := Policy1(), Policy2()
	for r := 0; r <= 10; r++ {
		if got, want := p1.Difficulty(float64(r)), r+1; got != want {
			t.Errorf("policy1.Difficulty(%d) = %d, want %d", r, got, want)
		}
		if got, want := p2.Difficulty(float64(r)), r+5; got != want {
			t.Errorf("policy2.Difficulty(%d) = %d, want %d", r, got, want)
		}
	}
	if p1.Name() != "policy1" || p2.Name() != "policy2" {
		t.Errorf("names = %q, %q", p1.Name(), p2.Name())
	}
}

func TestNewLinearValidation(t *testing.T) {
	if _, err := NewLinear(1, -1); err == nil {
		t.Error("negative slope accepted")
	}
	if _, err := NewLinear(1, math.NaN()); err == nil {
		t.Error("NaN slope accepted")
	}
	if _, err := NewLinear(1, math.Inf(1)); err == nil {
		t.Error("infinite slope accepted")
	}
}

func TestLinearFractionalScoresRound(t *testing.T) {
	l, err := NewLinear(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		score float64
		want  int
	}{
		{0.4, 1}, {0.5, 2}, {3.49, 4}, {9.7, 11},
	}
	for _, tt := range tests {
		if got := l.Difficulty(tt.score); got != tt.want {
			t.Errorf("Difficulty(%v) = %d, want %d", tt.score, got, tt.want)
		}
	}
}

func TestLinearName(t *testing.T) {
	l, err := NewLinear(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "linear(base=2,slope=1.5)" {
		t.Errorf("Name() = %q", l.Name())
	}
}

// Property: linear difficulty is non-decreasing in score.
func TestLinearMonotoneProperty(t *testing.T) {
	l := Policy2()
	f := func(a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return l.Difficulty(lo) <= l.Difficulty(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialCurve(t *testing.T) {
	e, err := NewExponential(1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Difficulty(0); got != 1 {
		t.Errorf("Difficulty(0) = %d, want 1", got)
	}
	// 2^(0.4·10) − 1 = 2^4 − 1 = 15, so difficulty 16 at score 10.
	if got := e.Difficulty(10); got != 16 {
		t.Errorf("Difficulty(10) = %d, want 16", got)
	}
	mid, high := e.Difficulty(5), e.Difficulty(10)
	if mid >= high {
		t.Errorf("exponential not increasing: d(5)=%d d(10)=%d", mid, high)
	}
}

func TestExponentialValidation(t *testing.T) {
	if _, err := NewExponential(1, -0.1); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := NewExponential(1, math.Inf(1)); err == nil {
		t.Error("infinite factor accepted")
	}
}

func TestExponentialExtremeFactorClamps(t *testing.T) {
	e, err := NewExponential(1, 10) // 2^100 internally
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Difficulty(10); got != 64 {
		t.Errorf("Difficulty(10) = %d, want protocol max 64", got)
	}
}

// Property: exponential difficulty is non-decreasing in score.
func TestExponentialMonotoneProperty(t *testing.T) {
	e, err := NewExponential(2, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return e.Difficulty(lo) <= e.Difficulty(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
