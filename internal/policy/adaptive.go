package policy

import (
	"fmt"
	"math"
)

// LoadFunc reports the protected server's instantaneous load as a fraction
// in [0, 1]. Implementations must be safe for concurrent use.
type LoadFunc func() float64

// LoadAdaptive wraps an inner policy and shifts its difficulty up by as
// much as MaxShift when the server is saturated. This realizes the paper's
// observation that "the amount of work inflicted by a puzzle is adaptive
// and can be tuned": under attack the whole curve hardens, and when load
// subsides it relaxes back to the inner policy.
//
// LoadAdaptive is safe for concurrent use if its LoadFunc is.
type LoadAdaptive struct {
	inner    Policy
	load     LoadFunc
	maxShift int
}

var _ Policy = (*LoadAdaptive)(nil)

// NewLoadAdaptive wraps inner, adding up to maxShift difficulty at full
// load as reported by load.
func NewLoadAdaptive(inner Policy, load LoadFunc, maxShift int) (*LoadAdaptive, error) {
	if inner == nil {
		return nil, fmt.Errorf("policy: load-adaptive requires an inner policy")
	}
	if load == nil {
		return nil, fmt.Errorf("policy: load-adaptive requires a load function")
	}
	if maxShift < 0 {
		return nil, fmt.Errorf("policy: negative max shift %d", maxShift)
	}
	return &LoadAdaptive{inner: inner, load: load, maxShift: maxShift}, nil
}

// Name implements Policy.
func (a *LoadAdaptive) Name() string {
	return fmt.Sprintf("adaptive(%s,+%d)", a.inner.Name(), a.maxShift)
}

// Difficulty implements Policy.
func (a *LoadAdaptive) Difficulty(score float64) int {
	return clampDifficulty(a.inner.Difficulty(score) + a.shift())
}

// ConfidentDifficulty implements ConfidenceAware by forwarding the
// confidence to the inner policy, so load-shifting composes with
// confidence shaping.
func (a *LoadAdaptive) ConfidentDifficulty(score, confidence float64) int {
	return clampDifficulty(Confident(a.inner, score, confidence) + a.shift())
}

// Unwrap implements Unwrapper: LoadAdaptive is a pure forwarder of
// confidence.
func (a *LoadAdaptive) Unwrap() Policy { return a.inner }

// shift reports the current load-proportional difficulty shift.
func (a *LoadAdaptive) shift() int {
	l := a.load()
	if math.IsNaN(l) || l < 0 {
		l = 0
	} else if l > 1 {
		l = 1
	}
	return int(math.Round(l * float64(a.maxShift)))
}
