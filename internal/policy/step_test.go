package policy

import (
	"strings"
	"testing"
)

func TestNewStepValidation(t *testing.T) {
	if _, err := NewStep("s", 0); err == nil {
		t.Error("invalid default accepted")
	}
	if _, err := NewStep("s", 2, StepRule{MinScore: 5, Difficulty: 0}); err == nil {
		t.Error("invalid rule difficulty accepted")
	}
	if _, err := NewStep("s", 2,
		StepRule{MinScore: 5, Difficulty: 4},
		StepRule{MinScore: 5, Difficulty: 9}); err == nil {
		t.Error("duplicate threshold accepted")
	}
}

func TestStepTierSelection(t *testing.T) {
	s, err := NewStep("tiers", 1,
		StepRule{MinScore: 8, Difficulty: 14},
		StepRule{MinScore: 5, Difficulty: 8},
		StepRule{MinScore: 2, Difficulty: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		score float64
		want  int
	}{
		{0, 1}, {1.99, 1}, {2, 3}, {4.9, 3}, {5, 8}, {7.5, 8}, {8, 14}, {10, 14},
	}
	for _, tt := range tests {
		if got := s.Difficulty(tt.score); got != tt.want {
			t.Errorf("Difficulty(%v) = %d, want %d", tt.score, got, tt.want)
		}
	}
}

func TestStepUnorderedRulesSort(t *testing.T) {
	s, err := NewStep("s", 1,
		StepRule{MinScore: 2, Difficulty: 3},
		StepRule{MinScore: 8, Difficulty: 14},
		StepRule{MinScore: 5, Difficulty: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Difficulty(6); got != 8 {
		t.Fatalf("Difficulty(6) = %d, want 8 (rules must sort internally)", got)
	}
}

func TestStepDefaultNameAndString(t *testing.T) {
	s, err := NewStep("", 2, StepRule{MinScore: 5, Difficulty: 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "step" {
		t.Errorf("Name() = %q", s.Name())
	}
	if str := s.String(); !strings.Contains(str, ">=5 -> 9") {
		t.Errorf("String() = %q", str)
	}
}

func TestLoadAdaptiveValidation(t *testing.T) {
	if _, err := NewLoadAdaptive(nil, func() float64 { return 0 }, 4); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewLoadAdaptive(Policy1(), nil, 4); err == nil {
		t.Error("nil load func accepted")
	}
	if _, err := NewLoadAdaptive(Policy1(), func() float64 { return 0 }, -1); err == nil {
		t.Error("negative shift accepted")
	}
}

func TestLoadAdaptiveShifts(t *testing.T) {
	load := 0.0
	a, err := NewLoadAdaptive(Policy1(), func() float64 { return load }, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Difficulty(3); got != 4 { // idle server: inner policy as-is
		t.Errorf("idle Difficulty(3) = %d, want 4", got)
	}
	load = 1.0
	if got := a.Difficulty(3); got != 10 { // saturated: +6
		t.Errorf("saturated Difficulty(3) = %d, want 10", got)
	}
	load = 0.5
	if got := a.Difficulty(3); got != 7 { // half load: +3
		t.Errorf("half-load Difficulty(3) = %d, want 7", got)
	}
}

func TestLoadAdaptiveDefensiveLoadClamp(t *testing.T) {
	for _, load := range []float64{-5, 7} {
		load := load
		a, err := NewLoadAdaptive(Policy1(), func() float64 { return load }, 4)
		if err != nil {
			t.Fatal(err)
		}
		d := a.Difficulty(0)
		if d < 1 || d > 5 {
			t.Errorf("load %v gave difficulty %d outside [1, 5]", load, d)
		}
	}
}

func TestLoadAdaptiveName(t *testing.T) {
	a, err := NewLoadAdaptive(Policy2(), func() float64 { return 0 }, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "adaptive(policy2,+4)" {
		t.Errorf("Name() = %q", a.Name())
	}
}
