package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Step is a threshold table: the difficulty of the highest threshold at or
// below the score wins. It is the compiled form of the rule DSL and the
// natural way to express "tiers of suspicion" policies.
type Step struct {
	name    string
	nodes   []stepNode // sorted ascending by MinScore
	defawlt int
}

// stepNode is one threshold entry.
type stepNode struct {
	minScore   float64
	difficulty int
}

var _ Policy = (*Step)(nil)

// StepRule is one public threshold: scores at or above MinScore map to
// Difficulty, unless a higher threshold also matches.
type StepRule struct {
	MinScore   float64
	Difficulty int
}

// NewStep builds a Step policy from rules plus a default difficulty for
// scores below every threshold. Duplicate thresholds are rejected: the
// table would be ambiguous.
func NewStep(name string, defaultDifficulty int, rules ...StepRule) (*Step, error) {
	if name == "" {
		name = "step"
	}
	if defaultDifficulty < 1 {
		return nil, fmt.Errorf("policy: step default difficulty %d invalid", defaultDifficulty)
	}
	nodes := make([]stepNode, 0, len(rules))
	seen := make(map[float64]bool, len(rules))
	for _, r := range rules {
		if r.Difficulty < 1 {
			return nil, fmt.Errorf("policy: step rule at %v has invalid difficulty %d", r.MinScore, r.Difficulty)
		}
		if seen[r.MinScore] {
			return nil, fmt.Errorf("policy: duplicate step threshold %v", r.MinScore)
		}
		seen[r.MinScore] = true
		nodes = append(nodes, stepNode{minScore: r.MinScore, difficulty: r.Difficulty})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].minScore < nodes[j].minScore })
	return &Step{name: name, nodes: nodes, defawlt: defaultDifficulty}, nil
}

// Name implements Policy.
func (s *Step) Name() string { return s.name }

// Difficulty implements Policy.
func (s *Step) Difficulty(score float64) int {
	sc := clampScore(score)
	d := s.defawlt
	for _, n := range s.nodes {
		if sc >= n.minScore {
			d = n.difficulty
		} else {
			break
		}
	}
	return clampDifficulty(d)
}

// String renders the table for diagnostics.
func (s *Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %q default=%d", s.name, s.defawlt)
	for _, n := range s.nodes {
		fmt.Fprintf(&b, " [>=%g -> %d]", n.minScore, n.difficulty)
	}
	return b.String()
}
