package policy

import (
	"fmt"
	"math"
)

// Linear maps difficulty = Base + round(Slope × score), clamped to the
// protocol range. With integer paper scores R ∈ {0, …, 10}:
//
//   - Policy 1 is Linear{Base: 1, Slope: 1}: R=0 → 1-difficult, R=1 → 2, …
//   - Policy 2 is Linear{Base: 5, Slope: 1}: R=0 → 5-difficult, R=1 → 6, …
//
// matching §III.A of the paper exactly.
type Linear struct {
	// Base is the difficulty at score 0.
	Base int

	// Slope is the difficulty increase per score point.
	Slope float64

	// label overrides the derived name when set (used by Policy1/Policy2
	// so experiment tables show the paper's names).
	label string
}

var _ Policy = Linear{}

// NewLinear validates and constructs a Linear policy.
func NewLinear(base int, slope float64) (Linear, error) {
	if slope < 0 {
		return Linear{}, fmt.Errorf("policy: negative slope %v would reward bad reputations", slope)
	}
	if math.IsNaN(slope) || math.IsInf(slope, 0) {
		return Linear{}, fmt.Errorf("policy: slope must be finite, got %v", slope)
	}
	return Linear{Base: base, Slope: slope}, nil
}

// Policy1 returns the paper's Policy 1: difficulty = score + 1.
func Policy1() Linear { return Linear{Base: 1, Slope: 1, label: "policy1"} }

// Policy2 returns the paper's Policy 2: difficulty = score + 5.
func Policy2() Linear { return Linear{Base: 5, Slope: 1, label: "policy2"} }

// Name implements Policy.
func (l Linear) Name() string {
	if l.label != "" {
		return l.label
	}
	return fmt.Sprintf("linear(base=%d,slope=%g)", l.Base, l.Slope)
}

// Difficulty implements Policy.
func (l Linear) Difficulty(score float64) int {
	s := clampScore(score)
	return clampDifficulty(l.Base + int(math.Round(l.Slope*s)))
}

// Exponential maps difficulty = Base + round(2^(Factor × score) − 1),
// a sharper deterrent curve than Linear: near-zero extra work for good
// scores, rapidly exploding work for bad ones. It is one of the "policies
// tailored to specific security demands" the paper's summary invites.
type Exponential struct {
	// Base is the difficulty at score 0.
	Base int

	// Factor controls the growth rate; difficulty doubles every 1/Factor
	// score points.
	Factor float64
}

var _ Policy = Exponential{}

// NewExponential validates and constructs an Exponential policy.
func NewExponential(base int, factor float64) (Exponential, error) {
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return Exponential{}, fmt.Errorf("policy: exponential factor must be finite and non-negative, got %v", factor)
	}
	return Exponential{Base: base, Factor: factor}, nil
}

// Name implements Policy.
func (e Exponential) Name() string {
	return fmt.Sprintf("exponential(base=%d,factor=%g)", e.Base, e.Factor)
}

// Difficulty implements Policy.
func (e Exponential) Difficulty(score float64) int {
	s := clampScore(score)
	bump := math.Exp2(e.Factor*s) - 1
	if bump > float64(1<<20) { // avoid int overflow on extreme factors
		bump = float64(1 << 20)
	}
	return clampDifficulty(e.Base + int(math.Round(bump)))
}
