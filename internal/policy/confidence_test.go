package policy

import (
	"math"
	"testing"
)

func TestConfidenceShapedFullConfidenceMatchesInner(t *testing.T) {
	inner := Policy2()
	p, err := NewConfidenceShaped(inner, DefaultShapeAnchor, DefaultShapeFloor)
	if err != nil {
		t.Fatal(err)
	}
	for score := 0.0; score <= 10; score += 0.5 {
		if got, want := p.ConfidentDifficulty(score, 1), inner.Difficulty(score); got != want {
			t.Errorf("ConfidentDifficulty(%v, 1) = %d, want inner %d", score, got, want)
		}
		if got, want := p.Difficulty(score), inner.Difficulty(score); got != want {
			t.Errorf("Difficulty(%v) = %d, want inner %d", score, got, want)
		}
	}
}

func TestConfidenceShapedShadesAboveAnchorOnly(t *testing.T) {
	p, err := NewConfidenceShaped(Policy2(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero floor, zero confidence: scores above the anchor collapse to it.
	if got, want := p.ConfidentDifficulty(9, 0), Policy2().Difficulty(5); got != want {
		t.Errorf("shaded difficulty = %d, want anchor difficulty %d", got, want)
	}
	// At or below the anchor, confidence is irrelevant.
	for _, score := range []float64{0, 2.5, 5} {
		if got, want := p.ConfidentDifficulty(score, 0), Policy2().Difficulty(score); got != want {
			t.Errorf("ConfidentDifficulty(%v, 0) = %d, want unshaded %d", score, got, want)
		}
	}
}

func TestConfidenceShapedFloorBoundsShading(t *testing.T) {
	p, err := NewConfidenceShaped(Policy2(), 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Zero confidence at the top of the scale: effective = 5 + 0.5·5 = 7.5,
	// difficulty 13 under Policy 2 — a 2.5-level shade, Policy 3's ε.
	if got, want := p.ConfidentDifficulty(10, 0), Policy2().Difficulty(7.5); got != want {
		t.Errorf("floored shading = %d, want %d", got, want)
	}
	// Shading is monotone in confidence.
	prev := -1
	for conf := 0.0; conf <= 1; conf += 0.25 {
		d := p.ConfidentDifficulty(10, conf)
		if d < prev {
			t.Errorf("difficulty decreased with rising confidence: %d after %d", d, prev)
		}
		prev = d
	}
}

func TestConfidenceShapedClampsBadConfidence(t *testing.T) {
	p, err := NewConfidenceShaped(Policy2(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := Policy2().Difficulty(9)
	// NaN and out-of-range confidences must not weaken the defense.
	if got := p.ConfidentDifficulty(9, math.NaN()); got != full {
		t.Errorf("NaN confidence = %d, want full %d", got, full)
	}
	if got := p.ConfidentDifficulty(9, 7); got != full {
		t.Errorf("confidence>1 = %d, want full %d", got, full)
	}
	if got, want := p.ConfidentDifficulty(9, -3), p.ConfidentDifficulty(9, 0); got != want {
		t.Errorf("negative confidence = %d, want clamped-to-zero %d", got, want)
	}
}

func TestConfidenceShapedValidation(t *testing.T) {
	if _, err := NewConfidenceShaped(nil, 5, 0.5); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewConfidenceShaped(Policy2(), -1, 0.5); err == nil {
		t.Error("anchor below MinScore accepted")
	}
	if _, err := NewConfidenceShaped(Policy2(), 11, 0.5); err == nil {
		t.Error("anchor above MaxScore accepted")
	}
	if _, err := NewConfidenceShaped(Policy2(), 5, 1.5); err == nil {
		t.Error("floor above 1 accepted")
	}
	if _, err := NewConfidenceShaped(Policy2(), 5, math.NaN()); err == nil {
		t.Error("NaN floor accepted")
	}
}

// TestWrappersForwardConfidence pins that the registry's mandatory clamp
// and the load-adaptive wrapper both pass confidence through to a shaped
// inner policy.
func TestWrappersForwardConfidence(t *testing.T) {
	shaped, err := NewConfidenceShaped(Policy2(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := NewClamp(shaped, 1, 22)
	if err != nil {
		t.Fatal(err)
	}
	la, err := NewLoadAdaptive(clamped, func() float64 { return 0 }, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := shaped.ConfidentDifficulty(9, 0.25)
	if got := Confident(clamped, 9, 0.25); got != want {
		t.Errorf("clamp forwarded = %d, want %d", got, want)
	}
	if got := Confident(la, 9, 0.25); got != want {
		t.Errorf("load-adaptive forwarded = %d, want %d", got, want)
	}
	// And Confident on a plain policy just scores.
	if got, want := Confident(Policy2(), 9, 0.25), Policy2().Difficulty(9); got != want {
		t.Errorf("plain policy = %d, want %d", got, want)
	}
}

func TestConsumesConfidence(t *testing.T) {
	shaped, _ := NewConfidenceShaped(Policy2(), 5, 0.5)
	clamped, _ := NewClamp(shaped, 1, 22)
	la, _ := NewLoadAdaptive(clamped, func() float64 { return 0 }, 4)
	plainClamp, _ := NewClamp(Policy2(), 1, 22)
	cases := []struct {
		name string
		p    Policy
		want bool
	}{
		{"plain policy2", Policy2(), false},
		{"shaped", shaped, true},
		{"clamp(shaped)", clamped, true},
		{"load(clamp(shaped))", la, true},
		{"clamp(plain)", plainClamp, false},
	}
	for _, tc := range cases {
		if got := ConsumesConfidence(tc.p); got != tc.want {
			t.Errorf("%s: ConsumesConfidence = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRegistryShapeSpec(t *testing.T) {
	r := NewRegistry()
	p, err := r.New("shape(inner=policy2)")
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := p.(*ConfidenceShaped)
	if !ok {
		t.Fatalf("shape spec compiled to %T", p)
	}
	if cs.Anchor() != DefaultShapeAnchor || cs.Floor() != DefaultShapeFloor {
		t.Errorf("defaults = (%v, %v), want (%v, %v)", cs.Anchor(), cs.Floor(), DefaultShapeAnchor, DefaultShapeFloor)
	}

	p, err = r.New("shape(inner=linear(base=2, slope=1.5), anchor=4, floor=0.25)")
	if err != nil {
		t.Fatal(err)
	}
	cs = p.(*ConfidenceShaped)
	if cs.Anchor() != 4 || cs.Floor() != 0.25 {
		t.Errorf("params = (%v, %v), want (4, 0.25)", cs.Anchor(), cs.Floor())
	}
	inner, _ := NewLinear(2, 1.5)
	if got, want := cs.ConfidentDifficulty(8, 1), inner.Difficulty(8); got != want {
		t.Errorf("nested inner difficulty = %d, want %d", got, want)
	}

	for _, bad := range []string{
		"shape",                             // missing inner
		"shape()",                           // missing inner
		"shape(anchor=5)",                   // missing inner
		"shape(inner=unknown-policy)",       // unresolvable inner
		"shape(inner=policy2, anchor=junk)", // bad anchor
		"shape(inner=policy2, floor=2)",     // floor out of range
		"shape(inner=policy2, epsilon=1)",   // unknown parameter
		"shape(inner=shape(inner=policy2))", // nested shape is legal…
	} {
		_, err := r.New(bad)
		if bad == "shape(inner=shape(inner=policy2))" {
			if err != nil {
				t.Errorf("nested shape rejected: %v", err)
			}
			continue
		}
		if err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}

	if err := r.Register("shape", func(map[string]float64) (Policy, error) { return Policy2(), nil }); err == nil {
		t.Error("registering the reserved name succeeded")
	}
}
