package policy

import (
	"math"
	"testing"
	"testing/quick"

	"aipow/internal/puzzle"
)

func TestClampScore(t *testing.T) {
	tests := []struct {
		name string
		in   float64
		want float64
	}{
		{"below", -3, MinScore},
		{"above", 42, MaxScore},
		{"nan_is_suspicious", math.NaN(), MaxScore},
		{"inside", 7.2, 7.2},
		{"min_edge", 0, 0},
		{"max_edge", 10, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := clampScore(tt.in); got != tt.want {
				t.Errorf("clampScore(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestFixedPolicy(t *testing.T) {
	if _, err := NewFixed(0); err == nil {
		t.Error("difficulty 0 accepted")
	}
	if _, err := NewFixed(65); err == nil {
		t.Error("difficulty 65 accepted")
	}
	f, err := NewFixed(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, score := range []float64{0, 5, 10, -1, math.NaN()} {
		if got := f.Difficulty(score); got != 8 {
			t.Errorf("Difficulty(%v) = %d, want 8", score, got)
		}
	}
	if f.Name() != "fixed(8)" {
		t.Errorf("Name() = %q", f.Name())
	}
}

func TestClampPolicy(t *testing.T) {
	if _, err := NewClamp(nil, 1, 5); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewClamp(Policy2(), 5, 1); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewClamp(Policy2(), 0, 5); err == nil {
		t.Error("out-of-protocol bounds accepted")
	}
	c, err := NewClamp(Policy2(), 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Difficulty(0); got != 6 { // policy2 says 5, clamps to 6
		t.Errorf("Difficulty(0) = %d, want 6", got)
	}
	if got := c.Difficulty(10); got != 9 { // policy2 says 15, clamps to 9
		t.Errorf("Difficulty(10) = %d, want 9", got)
	}
	if got := c.Difficulty(2); got != 7 { // policy2 says 7, inside bounds
		t.Errorf("Difficulty(2) = %d, want 7", got)
	}
}

// Property: every built-in policy returns protocol-legal difficulties for
// arbitrary (even absurd) scores.
func TestAllPoliciesStayInProtocolRangeProperty(t *testing.T) {
	p3, err := Policy3(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExponential(1, 2) // deliberately aggressive factor
	if err != nil {
		t.Fatal(err)
	}
	step, err := NewStep("s", 2, StepRule{MinScore: 5, Difficulty: 60})
	if err != nil {
		t.Fatal(err)
	}
	policies := []Policy{Policy1(), Policy2(), p3, Fixed{D: 8}, exp, step}
	f := func(score float64) bool {
		for _, p := range policies {
			d := p.Difficulty(score)
			if d < puzzle.MinDifficulty || d > puzzle.MaxDifficulty {
				t.Logf("policy %s gave difficulty %d for score %v", p.Name(), d, score)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
