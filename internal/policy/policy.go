// Package policy implements the paper's policy module: rule-based
// strategies that map a client's reputation score R ∈ [0, 10] (higher =
// less trustworthy) to a Proof-of-Work puzzle difficulty.
//
// The three policies evaluated in the paper are provided as constructors —
// Policy1 and Policy2 (linear mappings offset by 1 and 5 respectively) and
// Policy3 (the error-range mapping that compensates for the AI model's
// scoring error ε). Beyond those, the package supplies the building blocks
// a network administrator needs to express custom strategies: fixed and
// stepwise mappings, exponential mappings, difficulty clamping, a
// load-adaptive wrapper, a small text DSL, and a registry for
// name-addressable policies.
package policy

import (
	"fmt"
	"math"

	"aipow/internal/puzzle"
)

const (
	// MinScore and MaxScore bound the reputation scale, matching the AI
	// model's output contract.
	MinScore = 0.0
	MaxScore = 10.0
)

// Policy maps a reputation score to a puzzle difficulty. Implementations
// must be safe for concurrent use and must return difficulties within
// [puzzle.MinDifficulty, puzzle.MaxDifficulty] for any input score
// (out-of-range scores are clamped, not rejected: by the time a score
// reaches the policy the request is already being served a challenge).
type Policy interface {
	// Name identifies the policy in experiment tables and logs.
	Name() string

	// Difficulty returns the puzzle difficulty for the given score.
	Difficulty(score float64) int
}

// clampScore forces a score into [MinScore, MaxScore]; NaN maps to
// MaxScore, the conservative choice for a defense system (an undefined
// score is treated as maximally suspicious).
func clampScore(s float64) float64 {
	if math.IsNaN(s) {
		return MaxScore
	}
	if s < MinScore {
		return MinScore
	}
	if s > MaxScore {
		return MaxScore
	}
	return s
}

// clampDifficulty forces a difficulty into the protocol range.
func clampDifficulty(d int) int {
	if d < puzzle.MinDifficulty {
		return puzzle.MinDifficulty
	}
	if d > puzzle.MaxDifficulty {
		return puzzle.MaxDifficulty
	}
	return d
}

// Fixed is the classic non-adaptive PoW policy: every client gets the same
// difficulty regardless of reputation. It is the paper's implicit baseline
// (what "current state of the art" does) and experiment E4's comparator.
type Fixed struct {
	// D is the difficulty issued to every request.
	D int
}

var _ Policy = Fixed{}

// NewFixed returns a Fixed policy, validating the difficulty.
func NewFixed(d int) (Fixed, error) {
	if d < puzzle.MinDifficulty || d > puzzle.MaxDifficulty {
		return Fixed{}, fmt.Errorf("policy: fixed difficulty %d outside [%d, %d]",
			d, puzzle.MinDifficulty, puzzle.MaxDifficulty)
	}
	return Fixed{D: d}, nil
}

// Name implements Policy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%d)", f.D) }

// Difficulty implements Policy.
func (f Fixed) Difficulty(float64) int { return clampDifficulty(f.D) }

// Clamp wraps an inner policy and restricts its output to [Lo, Hi]. Use it
// to impose site-wide ceilings on third-party policies.
type Clamp struct {
	Inner  Policy
	Lo, Hi int
}

var _ Policy = Clamp{}

// NewClamp validates bounds and wraps inner.
func NewClamp(inner Policy, lo, hi int) (Clamp, error) {
	if inner == nil {
		return Clamp{}, fmt.Errorf("policy: clamp requires an inner policy")
	}
	if lo > hi {
		return Clamp{}, fmt.Errorf("policy: clamp bounds inverted [%d, %d]", lo, hi)
	}
	if lo < puzzle.MinDifficulty || hi > puzzle.MaxDifficulty {
		return Clamp{}, fmt.Errorf("policy: clamp bounds [%d, %d] outside protocol range", lo, hi)
	}
	return Clamp{Inner: inner, Lo: lo, Hi: hi}, nil
}

// Name implements Policy.
func (c Clamp) Name() string {
	return fmt.Sprintf("clamp(%s,%d..%d)", c.Inner.Name(), c.Lo, c.Hi)
}

// Difficulty implements Policy.
func (c Clamp) Difficulty(score float64) int {
	return c.clamp(c.Inner.Difficulty(score))
}

// ConfidentDifficulty implements ConfidenceAware by forwarding the
// confidence to the inner policy (a no-op pass-through when the inner
// policy ignores confidence), so the registry's mandatory difficulty
// clamp never strands a confidence-shaped policy underneath it.
func (c Clamp) ConfidentDifficulty(score, confidence float64) int {
	return c.clamp(Confident(c.Inner, score, confidence))
}

// Unwrap implements Unwrapper: Clamp is a pure forwarder of confidence.
func (c Clamp) Unwrap() Policy { return c.Inner }

func (c Clamp) clamp(d int) int {
	if d < c.Lo {
		d = c.Lo
	}
	if d > c.Hi {
		d = c.Hi
	}
	return d
}
