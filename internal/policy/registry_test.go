package policy

import (
	"strings"
	"testing"
)

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	want := []string{"exponential", "fixed", "linear", "policy1", "policy2", "policy3", "shape"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
}

func TestRegistryNewSpecs(t *testing.T) {
	r := NewRegistry()
	tests := []struct {
		spec  string
		score float64
		want  int
	}{
		{"policy1", 4, 5},
		{"policy2", 4, 9},
		{"fixed(difficulty=12)", 9, 12},
		{"linear(base=2,slope=2)", 3, 8},
		{"linear", 3, 4}, // defaults base=1 slope=1
		{"exponential(base=1,factor=0.4)", 10, 16},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			p, err := r.New(tt.spec)
			if err != nil {
				t.Fatalf("New(%q): %v", tt.spec, err)
			}
			if got := p.Difficulty(tt.score); got != tt.want {
				t.Errorf("Difficulty(%v) = %d, want %d", tt.score, got, tt.want)
			}
		})
	}
}

func TestRegistryPolicy3Spec(t *testing.T) {
	r := NewRegistry()
	p, err := r.New("policy3(epsilon=1,seed=42)")
	if err != nil {
		t.Fatal(err)
	}
	er, ok := p.(*ErrorRange)
	if !ok {
		t.Fatalf("policy3 spec produced %T", p)
	}
	if er.Epsilon() != 1 {
		t.Fatalf("Epsilon() = %v, want 1", er.Epsilon())
	}
}

func TestRegistrySpecErrors(t *testing.T) {
	r := NewRegistry()
	tests := []string{
		"",
		"unknown",
		"policy1(bogus=1)",
		"fixed",                      // missing required difficulty
		"fixed(difficulty=99)",       // out of range
		"linear(base=1,base=2)",      // duplicate param
		"linear(base)",               // not key=value
		"linear(base=x)",             // bad float
		"linear(base=1",              // unbalanced
		"(base=1)",                   // missing name
		"policy3(epsilon=-2,seed=1)", // invalid epsilon propagates
	}
	for _, spec := range tests {
		t.Run(spec, func(t *testing.T) {
			if _, err := r.New(spec); err == nil {
				t.Fatalf("New(%q) accepted", spec)
			}
		})
	}
}

func TestRegistryRegisterCustomAndDuplicate(t *testing.T) {
	r := NewRegistry()
	err := r.Register("custom", func(params map[string]float64) (Policy, error) {
		return Fixed{D: 3}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.New("custom")
	if err != nil {
		t.Fatal(err)
	}
	if p.Difficulty(0) != 3 {
		t.Fatal("custom policy not used")
	}
	if err := r.Register("custom", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := r.Register("policy1", func(map[string]float64) (Policy, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestRegistrySpecWhitespaceTolerant(t *testing.T) {
	r := NewRegistry()
	p, err := r.New("  linear( base = 2 , slope = 1 )  ")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Difficulty(1); got != 3 {
		t.Fatalf("Difficulty(1) = %d, want 3", got)
	}
}
