package policy

import (
	"fmt"
	"math"
)

// ConfidenceAware is the optional extension of Policy for scorers that
// produce calibrated verdicts (score + confidence) instead of bare scores.
// The core framework threads the scorer's confidence through to the
// policy when both sides support it; plain policies keep receiving only
// the score. Implementations must treat ConfidentDifficulty(s, 1) and
// Difficulty(s) as equivalent, so a pipeline whose scorer cannot produce
// confidence behaves exactly as before.
type ConfidenceAware interface {
	Policy

	// ConfidentDifficulty maps a (score, confidence) verdict to a puzzle
	// difficulty. Confidence is in [0, 1]; out-of-range or NaN values are
	// clamped (NaN → 1, the conservative full-enforcement reading).
	ConfidentDifficulty(score, confidence float64) int
}

// Confident applies p to a verdict: the confidence-aware path when p
// supports it, the plain score path otherwise. Wrappers (Clamp,
// LoadAdaptive) use it to forward confidence through to their inner
// policy without caring whether it is confidence-aware.
func Confident(p Policy, score, confidence float64) int {
	if ca, ok := p.(ConfidenceAware); ok {
		return ca.ConfidentDifficulty(score, confidence)
	}
	return p.Difficulty(score)
}

// Unwrapper is implemented by pass-through wrappers (Clamp, LoadAdaptive)
// so ConsumesConfidence can walk a policy chain.
type Unwrapper interface {
	// Unwrap reports the wrapped inner policy.
	Unwrap() Policy
}

// ConsumesConfidence reports whether p — or a policy it transitively
// wraps — actually uses the confidence argument, as opposed to merely
// forwarding it. The serving path uses this to skip computing a verdict
// nobody reads: Clamp and LoadAdaptive implement ConfidenceAware for
// forwarding, so a bare type assertion would make every clamped policy
// look confidence-hungry. Pure forwarders are recognized by Unwrapper;
// any other ConfidenceAware implementation counts as a consumer.
func ConsumesConfidence(p Policy) bool {
	for p != nil {
		if w, ok := p.(Unwrapper); ok {
			p = w.Unwrap()
			continue
		}
		_, ok := p.(ConfidenceAware)
		return ok
	}
	return false
}

// clampConfidence forces a confidence into [0, 1]; NaN maps to 1 — an
// undefined confidence must not weaken the defense.
func clampConfidence(c float64) float64 {
	if math.IsNaN(c) || c > 1 {
		return 1
	}
	if c < 0 {
		return 0
	}
	return c
}

// ConfidenceShaped makes an inner policy verdict-driven: the full
// difficulty is charged only when the score *and* the model's confidence
// in it are high. Scores above the anchor are shaded toward it in
// proportion to the lost confidence, bounded by the shading floor —
//
//	effective = anchor + (floor + (1−floor) × confidence) × (score − anchor)
//
// — so a barely-confident "9" is priced a couple of difficulty levels
// under a confident "9", never collapsed to the anchor outright. Scores
// at or below the anchor pass through untouched: uncertainty about a
// good client must never raise its price.
//
// This is the principled replacement for Policy 3's blind randomization.
// Policy 3 pays for model error with noise: every score is issued a
// difficulty drawn uniformly from a ±ε interval, attackers drawing the
// discount as often as misscored clients. Shaping spends the same
// compensation budget — with the default floor of 1/2, the maximum
// shading at the top of the scale is (MaxScore−anchor)/2 = 2.5 difficulty
// levels, exactly Policy 3's default ε — but directionally, per request,
// deterministically, and only where the model itself reports uncertainty.
//
// ConfidenceShaped is safe for concurrent use if its inner policy is.
type ConfidenceShaped struct {
	inner  Policy
	anchor float64
	floor  float64
}

var _ ConfidenceAware = (*ConfidenceShaped)(nil)

// DefaultShapeAnchor is the shading anchor when none is given: the
// score-5 decision boundary, so shading can never move a score across the
// model's own malicious/benign boundary.
const DefaultShapeAnchor = 5.0

// DefaultShapeFloor is the shading floor when none is given: at least
// half of a score's distance to the anchor stays enforced at any
// confidence, capping the maximum shading at the top of the scale to
// (MaxScore − anchor)/2 — the magnitude of Policy 3's default ε.
const DefaultShapeFloor = 0.5

// NewConfidenceShaped wraps inner. The anchor is the score low-confidence
// verdicts are shaded toward, in [MinScore, MaxScore]; the floor is the
// enforced fraction of the score-to-anchor distance at zero confidence,
// in [0, 1] (0 = full shading allowed, 1 = shaping disabled).
func NewConfidenceShaped(inner Policy, anchor, floor float64) (*ConfidenceShaped, error) {
	if inner == nil {
		return nil, fmt.Errorf("policy: confidence shaping requires an inner policy")
	}
	if math.IsNaN(anchor) || anchor < MinScore || anchor > MaxScore {
		return nil, fmt.Errorf("policy: shape anchor %v outside [%v, %v]", anchor, MinScore, MaxScore)
	}
	if math.IsNaN(floor) || floor < 0 || floor > 1 {
		return nil, fmt.Errorf("policy: shape floor %v outside [0, 1]", floor)
	}
	return &ConfidenceShaped{inner: inner, anchor: anchor, floor: floor}, nil
}

// Name implements Policy.
func (p *ConfidenceShaped) Name() string {
	return fmt.Sprintf("shape(%s,anchor=%g,floor=%g)", p.inner.Name(), p.anchor, p.floor)
}

// Difficulty implements Policy: with no confidence available the score is
// enforced at face value, matching ConfidentDifficulty(score, 1).
func (p *ConfidenceShaped) Difficulty(score float64) int {
	return p.inner.Difficulty(score)
}

// ConfidentDifficulty implements ConfidenceAware.
func (p *ConfidenceShaped) ConfidentDifficulty(score, confidence float64) int {
	s := clampScore(score)
	if s > p.anchor {
		w := p.floor + (1-p.floor)*clampConfidence(confidence)
		s = p.anchor + w*(s-p.anchor)
	}
	return p.inner.Difficulty(s)
}

// Anchor reports the shading anchor.
func (p *ConfidenceShaped) Anchor() float64 { return p.anchor }

// Floor reports the shading floor.
func (p *ConfidenceShaped) Floor() float64 { return p.floor }
