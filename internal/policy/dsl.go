package policy

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// RulePolicy is a first-match-wins rule list compiled from the policy DSL.
// It generalizes Step: each rule may use any comparison operator, so
// administrators can carve out exemption bands ("when score < 2 use 1") as
// well as escalation tiers.
type RulePolicy struct {
	name    string
	rules   []dslRule
	defawlt int
}

// dslRule is one compiled "when score OP THRESHOLD use DIFFICULTY" line.
type dslRule struct {
	op         string
	threshold  float64
	difficulty int
}

var _ Policy = (*RulePolicy)(nil)

// ParseRules compiles a policy program. The grammar, one statement per
// line:
//
//	# comment                       (also: blank lines)
//	name <identifier>               (optional; names the policy)
//	when score <op> <num> use <d>   (op ∈ {<, <=, >, >=, ==}; first match wins)
//	default <d>                     (required; used when no rule matches)
//
// Example:
//
//	name edge-tiers
//	when score >= 8 use 14
//	when score >= 5 use 8
//	when score < 2 use 1
//	default 3
func ParseRules(src string) (*RulePolicy, error) {
	p := &RulePolicy{name: "rules", defawlt: -1}
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("policy dsl line %d: want 'name <identifier>'", lineNo)
			}
			p.name = fields[1]
		case "default":
			if p.defawlt != -1 {
				return nil, fmt.Errorf("policy dsl line %d: duplicate default", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("policy dsl line %d: want 'default <difficulty>'", lineNo)
			}
			d, err := parseDifficulty(fields[1])
			if err != nil {
				return nil, fmt.Errorf("policy dsl line %d: %w", lineNo, err)
			}
			p.defawlt = d
		case "when":
			r, err := parseWhen(fields)
			if err != nil {
				return nil, fmt.Errorf("policy dsl line %d: %w", lineNo, err)
			}
			p.rules = append(p.rules, r)
		default:
			return nil, fmt.Errorf("policy dsl line %d: unknown statement %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policy dsl: read program: %w", err)
	}
	if p.defawlt == -1 {
		return nil, fmt.Errorf("policy dsl: missing required 'default' statement")
	}
	return p, nil
}

// parseWhen compiles "when score <op> <num> use <d>".
func parseWhen(fields []string) (dslRule, error) {
	if len(fields) != 6 || fields[1] != "score" || fields[4] != "use" {
		return dslRule{}, fmt.Errorf("want 'when score <op> <num> use <difficulty>', got %q",
			strings.Join(fields, " "))
	}
	op := fields[2]
	switch op {
	case "<", "<=", ">", ">=", "==":
	default:
		return dslRule{}, fmt.Errorf("unknown operator %q", op)
	}
	threshold, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return dslRule{}, fmt.Errorf("bad threshold %q: %w", fields[3], err)
	}
	d, err := parseDifficulty(fields[5])
	if err != nil {
		return dslRule{}, err
	}
	return dslRule{op: op, threshold: threshold, difficulty: d}, nil
}

// parseDifficulty parses and range-checks a difficulty literal.
func parseDifficulty(s string) (int, error) {
	d, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad difficulty %q: %w", s, err)
	}
	if d != clampDifficulty(d) {
		return 0, fmt.Errorf("difficulty %d outside protocol range", d)
	}
	return d, nil
}

// Name implements Policy.
func (p *RulePolicy) Name() string { return p.name }

// NumRules reports the number of compiled rules (excluding the default).
func (p *RulePolicy) NumRules() int { return len(p.rules) }

// Difficulty implements Policy: first matching rule wins, else the default.
func (p *RulePolicy) Difficulty(score float64) int {
	s := clampScore(score)
	for _, r := range p.rules {
		if r.matches(s) {
			return clampDifficulty(r.difficulty)
		}
	}
	return clampDifficulty(p.defawlt)
}

func (r dslRule) matches(s float64) bool {
	switch r.op {
	case "<":
		return s < r.threshold
	case "<=":
		return s <= r.threshold
	case ">":
		return s > r.threshold
	case ">=":
		return s >= r.threshold
	case "==":
		return s == r.threshold
	default:
		return false
	}
}
