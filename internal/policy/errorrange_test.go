package policy

import (
	"math"
	"testing"
)

func TestPolicy3Validation(t *testing.T) {
	if _, err := Policy3(WithEpsilon(-1)); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := Policy3(WithEpsilon(math.NaN())); err == nil {
		t.Error("NaN epsilon accepted")
	}
}

func TestPolicy3Interval(t *testing.T) {
	p, err := Policy3(WithEpsilon(2.5), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		score  float64
		lo, hi int
	}{
		// dᵢ = ⌈s+1⌉; interval [dᵢ+⌈−ε⌉, dᵢ+⌈ε⌉] = [dᵢ−2, dᵢ+3] for ε=2.5.
		{0, -1, 4},   // dᵢ=1
		{4, 3, 8},    // dᵢ=5
		{9.2, 9, 14}, // dᵢ=⌈10.2⌉=11
		{10, 9, 14},  // dᵢ=11
	}
	for _, tt := range tests {
		lo, hi := p.Interval(tt.score)
		if lo != tt.lo || hi != tt.hi {
			t.Errorf("Interval(%v) = [%d, %d], want [%d, %d]", tt.score, lo, hi, tt.lo, tt.hi)
		}
	}
}

func TestPolicy3IntegerEpsilonSymmetric(t *testing.T) {
	p, err := Policy3(WithEpsilon(2), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := p.Interval(5) // dᵢ=6, symmetric ±2
	if lo != 4 || hi != 8 {
		t.Fatalf("Interval(5) = [%d, %d], want [4, 8]", lo, hi)
	}
}

func TestPolicy3DrawsCoverIntervalAndClamp(t *testing.T) {
	p, err := Policy3(WithEpsilon(2.5), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < 4000; i++ {
		seen[p.Difficulty(4)]++ // interval [3, 8]
	}
	for d := 3; d <= 8; d++ {
		if seen[d] == 0 {
			t.Errorf("difficulty %d never drawn from [3, 8]", d)
		}
	}
	for d := range seen {
		if d < 3 || d > 8 {
			t.Errorf("draw %d outside interval [3, 8]", d)
		}
	}
	// Uniformity sanity: each of 6 values should get roughly 1/6 of draws.
	for d := 3; d <= 8; d++ {
		frac := float64(seen[d]) / 4000
		if frac < 0.10 || frac > 0.23 {
			t.Errorf("draw %d frequency %.3f deviates from uniform 1/6", d, frac)
		}
	}
	// At score 0 the raw interval dips to -1; output must clamp to ≥ 1.
	for i := 0; i < 200; i++ {
		if d := p.Difficulty(0); d < 1 {
			t.Fatalf("clamped difficulty %d below protocol minimum", d)
		}
	}
}

func TestPolicy3Deterministic(t *testing.T) {
	mk := func() *ErrorRange {
		p, err := Policy3(WithEpsilon(2.5), WithSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	for i := 0; i < 50; i++ {
		score := float64(i%11) + 0.3
		if da, db := a.Difficulty(score), b.Difficulty(score); da != db {
			t.Fatalf("same seed diverged at draw %d: %d != %d", i, da, db)
		}
	}
}

func TestPolicy3ZeroEpsilonEqualsPolicy1(t *testing.T) {
	p, err := Policy3(WithEpsilon(0), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	p1 := Policy1()
	for r := 0; r <= 10; r++ {
		if got, want := p.Difficulty(float64(r)), p1.Difficulty(float64(r)); got != want {
			t.Errorf("ε=0 Difficulty(%d) = %d, want policy1's %d", r, got, want)
		}
	}
}

func TestPolicy3Accessors(t *testing.T) {
	p, err := Policy3(WithEpsilon(3.25), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Epsilon() != 3.25 {
		t.Errorf("Epsilon() = %v", p.Epsilon())
	}
	if p.Name() != "policy3(eps=3.25)" {
		t.Errorf("Name() = %q", p.Name())
	}
}

func TestPolicy3ConcurrentDraws(t *testing.T) {
	p, err := Policy3(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				if d := p.Difficulty(8); d < 1 || d > 64 {
					t.Errorf("concurrent draw out of range: %d", d)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
