package baseline

import (
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/policy"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

func testSource(t *testing.T) *features.MapStore {
	t.Helper()
	s, err := features.NewMapStore(map[string]float64{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNoPoWBypassesEverything(t *testing.T) {
	f, err := NewNoPoW(testKey, testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(core.RequestContext{IP: "6.6.6.6"})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Bypassed {
		t.Fatalf("NoPoW issued a challenge: %+v", dec)
	}
}

func TestFixedPoWUniformDifficulty(t *testing.T) {
	f, err := NewFixedPoW(testKey, testSource(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, ip := range []string{"1.1.1.1", "6.6.6.6"} {
		dec, err := f.Decide(core.RequestContext{IP: ip})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Difficulty != 8 {
			t.Fatalf("ip %s difficulty = %d, want 8", ip, dec.Difficulty)
		}
	}
}

func TestFixedPoWValidatesDifficulty(t *testing.T) {
	if _, err := NewFixedPoW(testKey, testSource(t), 0); err == nil {
		t.Fatal("difficulty 0 accepted")
	}
}

func TestRateScorerValidation(t *testing.T) {
	if _, err := NewRateScorer(0); err == nil {
		t.Fatal("zero saturation accepted")
	}
	s, err := NewRateScorer(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Score(map[string]float64{}); err == nil {
		t.Fatal("missing rate attribute accepted")
	}
}

func TestRateScorerMapping(t *testing.T) {
	s, err := NewRateScorer(10)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		rate float64
		want float64
	}{
		{0, 0}, {5, 5}, {10, 10}, {100, 10}, {-1, 0},
	}
	for _, tt := range tests {
		got, err := s.Score(map[string]float64{features.AttrRequestRate: tt.rate})
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Score(rate=%v) = %v, want %v", tt.rate, got, tt.want)
		}
	}
}

func TestKaPoWEscalatesWithRate(t *testing.T) {
	tracker, err := features.NewTracker(features.WithWindow(10*time.Second, 10))
	if err != nil {
		t.Fatal(err)
	}
	static := testSource(t)
	combined, err := features.NewCombined(static, tracker)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now.Add(10 * time.Second) }
	f, err := NewKaPoW(testKey, combined, tracker, 20, nil, core.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := f.Decide(core.RequestContext{IP: "9.9.9.9"})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the tracker: 200 requests in 10 s → 20 req/s → score 10.
	for i := 0; i < 200; i++ {
		if err := f.Observe(features.RequestInfo{IP: "9.9.9.9", Path: "/", At: now.Add(time.Duration(i) * 50 * time.Millisecond)}); err != nil {
			t.Fatal(err)
		}
	}
	// The decision consults the tracker through the combined source; use a
	// clock-free probe by scoring directly after observations.
	loud, err := f.Decide(core.RequestContext{IP: "9.9.9.9"})
	if err != nil {
		t.Fatal(err)
	}
	_ = quiet
	if loud.Difficulty <= quiet.Difficulty {
		t.Fatalf("kaPoW did not escalate: quiet d=%d loud d=%d", quiet.Difficulty, loud.Difficulty)
	}
}

func TestKaPoWRequiresTracker(t *testing.T) {
	if _, err := NewKaPoW(testKey, testSource(t), nil, 10, nil); err == nil {
		t.Fatal("nil tracker accepted")
	}
}

func TestKaPoWCustomPolicy(t *testing.T) {
	tracker, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	combined, err := features.NewCombined(testSource(t), tracker)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewKaPoW(testKey, combined, tracker, 20, policy.Policy2())
	if err != nil {
		t.Fatal(err)
	}
	// Idle client: rate 0 → score 0 → policy2 floor of 5.
	dec, err := f.Decide(core.RequestContext{IP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Difficulty != 5 {
		t.Fatalf("idle difficulty = %d, want policy2 floor 5", dec.Difficulty)
	}
}
