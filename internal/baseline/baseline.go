// Package baseline provides the comparators experiment E4 measures the
// framework against:
//
//   - NoPoW: a pass-through server with no puzzles at all — the undefended
//     baseline whose collapse under flood motivates the paper.
//   - FixedPoW: classic one-difficulty-for-everyone PoW — the paper's
//     "current state of the art is unable to differentiate between
//     trustworthy and untrustworthy connections".
//   - KaPoW: a kaPoW-style (Le, Dua, Feng 2012) behavioral comparator that
//     derives difficulty from each client's recent request rate rather
//     than an AI model over traffic features.
//
// All three are expressed as configurations of the same core.Framework,
// which is itself the modularity point the paper claims.
package baseline

import (
	"fmt"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/policy"
)

// trustAllScorer scores everything 0: used by NoPoW (with full bypass) and
// FixedPoW (where the policy ignores the score anyway).
type trustAllScorer struct{}

// Score implements core.Scorer.
func (trustAllScorer) Score(map[string]float64) (float64, error) { return 0, nil }

// RateScorer maps a client's live request rate to a reputation score:
// score = 10 · min(1, rate/SaturationRate). It is the kaPoW-style
// behavioral "model": no training, no traffic features beyond arrival
// counts.
type RateScorer struct {
	// SaturationRate is the requests-per-second at which the score pegs
	// at 10.
	SaturationRate float64
}

var _ core.Scorer = RateScorer{}

// NewRateScorer validates and constructs a RateScorer.
func NewRateScorer(saturationRate float64) (RateScorer, error) {
	if saturationRate <= 0 {
		return RateScorer{}, fmt.Errorf("baseline: saturation rate must be positive, got %v", saturationRate)
	}
	return RateScorer{SaturationRate: saturationRate}, nil
}

// Score implements core.Scorer using the tracker's live request rate.
func (r RateScorer) Score(attrs map[string]float64) (float64, error) {
	rate, ok := attrs[features.AttrRequestRate]
	if !ok {
		return 0, fmt.Errorf("baseline: attribute %q missing (is a Tracker attached?)", features.AttrRequestRate)
	}
	frac := rate / r.SaturationRate
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return policy.MaxScore * frac, nil
}

// NewNoPoW builds the undefended baseline: every request bypasses the
// puzzle entirely.
func NewNoPoW(key []byte, source features.Source, opts ...core.Option) (*core.Framework, error) {
	base := []core.Option{
		core.WithKey(key),
		core.WithScorer(trustAllScorer{}),
		core.WithPolicy(policy.Policy1()),
		core.WithSource(source),
		core.WithBypassBelow(policy.MaxScore + 1), // everything bypasses
	}
	return core.New(append(base, opts...)...)
}

// NewFixedPoW builds the classic non-adaptive baseline: every client gets
// difficulty d regardless of reputation.
func NewFixedPoW(key []byte, source features.Source, d int, opts ...core.Option) (*core.Framework, error) {
	fixed, err := policy.NewFixed(d)
	if err != nil {
		return nil, err
	}
	base := []core.Option{
		core.WithKey(key),
		core.WithScorer(trustAllScorer{}),
		core.WithPolicy(fixed),
		core.WithSource(source),
	}
	return core.New(append(base, opts...)...)
}

// NewKaPoW builds the behavioral comparator: score is the client's recent
// request rate (saturating at saturationRate req/s), mapped through pol —
// pass the same policy as the AI framework for an apples-to-apples
// comparison of the *detection* mechanisms. The tracker must be wired into
// the source (features.NewCombined) so the rate attribute is present.
func NewKaPoW(key []byte, source features.Source, tracker *features.Tracker,
	saturationRate float64, pol policy.Policy, opts ...core.Option) (*core.Framework, error) {
	scorer, err := NewRateScorer(saturationRate)
	if err != nil {
		return nil, err
	}
	if tracker == nil {
		return nil, fmt.Errorf("baseline: kaPoW requires a tracker")
	}
	if pol == nil {
		pol = policy.Policy1()
	}
	base := []core.Option{
		core.WithKey(key),
		core.WithScorer(scorer),
		core.WithPolicy(pol),
		core.WithSource(source),
		core.WithTracker(tracker),
	}
	return core.New(append(base, opts...)...)
}
