package httpmw

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/puzzle"
)

// BatchRequest is one item of a batch decide/verify call: a request an
// upstream proxy or ingestion pipeline holds on behalf of a client. With
// a Solution it is a redemption attempt; without one it asks for a
// decision (bypass or challenge).
type BatchRequest struct {
	// IP identifies the client (required).
	IP string `json:"ip"`

	// Path is the requested path, fed to the behavior tracker and — in
	// routed mode — to pipeline routing.
	Path string `json:"path,omitempty"`

	// Tenant is the routing tenant key (routed mode only).
	Tenant string `json:"tenant,omitempty"`

	// Solution is a solution token to redeem (the X-PoW-Solution value).
	Solution string `json:"solution,omitempty"`

	// Failed marks the request as an application-level failure (4xx) for
	// behavioral tracking.
	Failed bool `json:"failed,omitempty"`
}

// BatchResult is the per-item outcome, in request order.
type BatchResult struct {
	// Status is "pass" (serve the resource: verified solution or
	// bypassed), "challenge" (solve the attached puzzle first), or
	// "rejected" (malformed input).
	Status string `json:"status"`

	// Challenge and Difficulty carry the puzzle when Status is
	// "challenge".
	Challenge  string `json:"challenge,omitempty"`
	Difficulty int    `json:"difficulty,omitempty"`

	// Error explains a rejection or why a presented solution earned a
	// fresh challenge instead of a pass.
	Error string `json:"error,omitempty"`
}

// batchRequestBody and batchResultBody are the endpoint's JSON envelopes.
type batchRequestBody struct {
	Requests []BatchRequest `json:"requests"`
}

type batchResultBody struct {
	Results []BatchResult `json:"results"`
}

// Batch result statuses.
const (
	BatchPass      = "pass"
	BatchChallenge = "challenge"
	BatchRejected  = "rejected"
)

// DefaultBatchLimit bounds how many items one batch call may carry.
const DefaultBatchLimit = 1024

// BatchHandler is the batch front door: one POST carries many requests,
// and the framework's batch entry points (ObserveBatch, DecideBatch,
// VerifyBatch) amortize the per-request fixed costs across them. In
// routed mode items are grouped by their routed pipeline first, so each
// framework sees one batch. Semantics per item match the Middleware flow:
// a valid solution passes, an invalid one earns a fresh challenge, and
// everything is observed by the behavior tracker exactly once.
type BatchHandler struct {
	fw     *core.Framework // single-pipeline mode; nil when routed
	router Router          // per-route mode; nil when single
	now    func() time.Time
	limit  int
}

// BatchOption customizes a BatchHandler.
type BatchOption func(*BatchHandler)

// WithBatchClock injects the handler's time source, for tests.
func WithBatchClock(now func() time.Time) BatchOption {
	return func(h *BatchHandler) { h.now = now }
}

// WithBatchLimit bounds the items per call (default DefaultBatchLimit).
func WithBatchLimit(n int) BatchOption {
	return func(h *BatchHandler) { h.limit = n }
}

// NewBatchHandler serves batch decide/verify calls against one fixed
// framework.
func NewBatchHandler(fw *core.Framework, opts ...BatchOption) (*BatchHandler, error) {
	if fw == nil {
		return nil, fmt.Errorf("httpmw: batch handler requires a framework")
	}
	return newBatchHandler(fw, nil, opts)
}

// NewRoutedBatchHandler serves batch calls with per-item pipeline routing
// (path prefix and tenant key, like NewRoutedMiddleware).
func NewRoutedBatchHandler(router Router, opts ...BatchOption) (*BatchHandler, error) {
	if router == nil {
		return nil, fmt.Errorf("httpmw: routed batch handler requires a router")
	}
	return newBatchHandler(nil, router, opts)
}

func newBatchHandler(fw *core.Framework, router Router, opts []BatchOption) (*BatchHandler, error) {
	h := &BatchHandler{fw: fw, router: router, now: time.Now, limit: DefaultBatchLimit}
	for _, opt := range opts {
		opt(h)
	}
	if h.limit <= 0 {
		return nil, fmt.Errorf("httpmw: non-positive batch limit %d", h.limit)
	}
	return h, nil
}

// ServeHTTP implements http.Handler: POST a batchRequestBody, receive a
// batchResultBody with one result per request, in order.
func (h *BatchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST a batch document"})
		return
	}
	var body batchRequestBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed batch document: " + err.Error()})
		return
	}
	switch {
	case len(body.Requests) == 0:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	case len(body.Requests) > h.limit:
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorBody{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(body.Requests), h.limit)})
		return
	}
	for i := range body.Requests {
		if body.Requests[i].IP == "" {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("request %d without ip", i)})
			return
		}
	}

	results := make([]BatchResult, len(body.Requests))
	for _, group := range h.group(body.Requests) {
		if err := h.serveGroup(group.fw, body.Requests, group.idx, results); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, batchResultBody{Results: results})
}

// fwGroup is the index set of one framework's items.
type fwGroup struct {
	fw  *core.Framework
	idx []int
}

// group partitions the batch by serving framework (a single group in
// single-pipeline mode), preserving request order within each group.
func (h *BatchHandler) group(reqs []BatchRequest) []fwGroup {
	if h.router == nil {
		idx := make([]int, len(reqs))
		for i := range idx {
			idx[i] = i
		}
		return []fwGroup{{fw: h.fw, idx: idx}}
	}
	var groups []fwGroup
	byFW := make(map[*core.Framework]int)
	for i := range reqs {
		fw := h.router.Route(reqs[i].Path, reqs[i].Tenant)
		g, ok := byFW[fw]
		if !ok {
			g = len(groups)
			byFW[fw] = g
			groups = append(groups, fwGroup{fw: fw})
		}
		groups[g].idx = append(groups[g].idx, i)
	}
	return groups
}

// serveGroup runs one framework's share of the batch: observe everything,
// verify the presented solutions, then decide the rest — including items
// whose solution was rejected, which earn a fresh challenge exactly like
// the Middleware flow.
func (h *BatchHandler) serveGroup(fw *core.Framework, reqs []BatchRequest, idx []int, results []BatchResult) error {
	now := h.now()

	// One observation per item. A malformed solution token is a failed
	// presentation — behavioral signal, like the middleware's flow.
	sols := make([]puzzle.Solution, 0, len(idx))
	solIdx := make([]int, 0, len(idx))
	malformed := make(map[int]bool)
	for _, i := range idx {
		if reqs[i].Solution == "" {
			continue
		}
		var sol puzzle.Solution
		if err := sol.UnmarshalText([]byte(reqs[i].Solution)); err != nil {
			malformed[i] = true
			results[i] = BatchResult{Status: BatchRejected, Error: "malformed solution token"}
			continue
		}
		sols = append(sols, sol)
		solIdx = append(solIdx, i)
	}

	obs := make([]features.RequestInfo, len(idx))
	for k, i := range idx {
		obs[k] = features.RequestInfo{
			IP:     reqs[i].IP,
			Path:   reqs[i].Path,
			At:     now,
			Failed: reqs[i].Failed || malformed[i],
		}
	}
	// Best-effort, like Middleware.observe: tracking must not block serving.
	_ = fw.ObserveBatch(obs)

	var decIdx []int // items needing a decision, in request order
	for _, i := range idx {
		if reqs[i].Solution == "" {
			decIdx = append(decIdx, i)
		}
	}
	if len(sols) > 0 {
		bindings := make([]string, len(sols))
		for k, i := range solIdx {
			bindings[k] = reqs[i].IP
		}
		verdicts, err := fw.VerifyBatch(sols, bindings, nil)
		if err != nil {
			return fmt.Errorf("verify batch: %w", err)
		}
		// Rejected solutions fold into the decide pass below, restoring
		// request order so each still gets a fresh challenge.
		rejected := make(map[int]bool)
		for k, i := range solIdx {
			if verdicts[k] == nil {
				results[i] = BatchResult{Status: BatchPass}
			} else {
				rejected[i] = true
			}
		}
		if len(rejected) > 0 {
			merged := decIdx[:0:0]
			for _, i := range idx {
				if rejected[i] || (reqs[i].Solution == "" && !malformed[i]) {
					merged = append(merged, i)
				}
			}
			decIdx = merged
		}
	}
	if len(decIdx) == 0 {
		return nil
	}

	dreqs := make([]core.RequestContext, len(decIdx))
	for k, i := range decIdx {
		dreqs[k] = core.RequestContext{IP: reqs[i].IP}
	}
	decs, err := fw.DecideBatch(dreqs, nil)
	if err != nil {
		return fmt.Errorf("decide batch: %w", err)
	}
	for k, i := range decIdx {
		rejectedMsg := ""
		if reqs[i].Solution != "" {
			rejectedMsg = "solution rejected"
		}
		if decs[k].Bypassed {
			results[i] = BatchResult{Status: BatchPass, Error: rejectedMsg}
			continue
		}
		token, err := decs[k].Challenge.MarshalText()
		if err != nil {
			return fmt.Errorf("challenge encoding failed: %w", err)
		}
		results[i] = BatchResult{
			Status:     BatchChallenge,
			Challenge:  string(token),
			Difficulty: decs[k].Difficulty,
			Error:      rejectedMsg,
		}
	}
	return nil
}
