package httpmw

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"aipow/internal/puzzle"
)

// ErrNoRetryBody reports a challenged request whose body cannot be
// replayed (no GetBody); the caller must set Request.GetBody to use the
// transport with non-idempotent bodies.
var ErrNoRetryBody = errors.New("httpmw: challenged request has an unreplayable body")

// ErrTooManyChallenges reports that the server kept challenging beyond the
// configured attempt budget.
var ErrTooManyChallenges = errors.New("httpmw: challenge retry budget exhausted")

// Transport is an http.RoundTripper that answers PoW challenges
// transparently: on a 428 response it solves the attached puzzle and
// retries the request with the solution header. Wrap any client with it:
//
//	client := &http.Client{Transport: httpmw.NewTransport()}
//
// Transport is safe for concurrent use.
type Transport struct {
	base        http.RoundTripper
	solver      *puzzle.Solver
	maxAttempts int
	onSolve     func(puzzle.SolveStats)

	// tokens caches per-host session tokens (see WithSessionTokens on the
	// middleware): host → token string. A stale token simply triggers a
	// fresh challenge, so no expiry bookkeeping is needed client-side.
	tokens sync.Map
}

// TransportOption customizes a Transport.
type TransportOption func(*Transport)

// WithBase sets the underlying RoundTripper (default
// http.DefaultTransport).
func WithBase(rt http.RoundTripper) TransportOption {
	return func(t *Transport) { t.base = rt }
}

// WithSolver sets the puzzle solver (default puzzle.NewSolver()).
func WithSolver(s *puzzle.Solver) TransportOption {
	return func(t *Transport) { t.solver = s }
}

// WithMaxAttempts bounds how many consecutive challenges the transport
// will answer for one logical request (default 3).
func WithMaxAttempts(n int) TransportOption {
	return func(t *Transport) { t.maxAttempts = n }
}

// WithSolveObserver registers a callback receiving the stats of every
// completed solve — the client-side cost accounting experiments use.
func WithSolveObserver(fn func(puzzle.SolveStats)) TransportOption {
	return func(t *Transport) { t.onSolve = fn }
}

// NewTransport returns a Transport with the options applied.
func NewTransport(opts ...TransportOption) *Transport {
	t := &Transport{
		base:        http.DefaultTransport,
		solver:      puzzle.NewSolver(),
		maxAttempts: 3,
	}
	for _, opt := range opts {
		opt(t)
	}
	if t.maxAttempts < 1 {
		t.maxAttempts = 1
	}
	return t
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Attach a cached session token, if the server minted one earlier.
	if tok, ok := t.tokens.Load(req.URL.Host); ok {
		withToken, err := cloneForRetry(req)
		if err == nil { // unreplayable body: send as-is, worst case we solve
			withToken.Header.Set(HeaderToken, tok.(string))
			req = withToken
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < t.maxAttempts; attempt++ {
		if resp.StatusCode != StatusChallenge {
			t.rememberToken(req.URL.Host, resp)
			return resp, nil
		}
		token := resp.Header.Get(HeaderChallenge)
		if token == "" {
			// A 428 from something other than our middleware: pass through.
			return resp, nil
		}
		// The challenge response body is not needed; drain it so the
		// connection can be reused.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()

		var ch puzzle.Challenge
		if err := ch.UnmarshalText([]byte(token)); err != nil {
			return nil, fmt.Errorf("httpmw: server sent undecodable challenge: %w", err)
		}
		sol, stats, err := t.solver.Solve(req.Context(), ch)
		if err != nil {
			return nil, fmt.Errorf("httpmw: solve %d-difficult challenge: %w", ch.Difficulty, err)
		}
		if t.onSolve != nil {
			t.onSolve(stats)
		}
		solToken, err := sol.MarshalText()
		if err != nil {
			return nil, fmt.Errorf("httpmw: encode solution: %w", err)
		}

		retry, err := cloneForRetry(req)
		if err != nil {
			return nil, err
		}
		retry.Header.Set(HeaderSolution, string(solToken))
		resp, err = t.base.RoundTrip(retry)
		if err != nil {
			return nil, err
		}
	}
	if resp.StatusCode == StatusChallenge {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, ErrTooManyChallenges
	}
	t.rememberToken(req.URL.Host, resp)
	return resp, nil
}

// rememberToken stores a server-minted session token for the host.
func (t *Transport) rememberToken(host string, resp *http.Response) {
	if tok := resp.Header.Get(HeaderToken); tok != "" {
		t.tokens.Store(host, tok)
	}
}

// cloneForRetry duplicates a request, rewinding the body via GetBody when
// present.
func cloneForRetry(req *http.Request) (*http.Request, error) {
	clone := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return clone, nil
	}
	if req.GetBody == nil {
		return nil, ErrNoRetryBody
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, fmt.Errorf("httpmw: rewind request body: %w", err)
	}
	clone.Body = body
	return clone, nil
}
