package httpmw

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

// attrScorer reads the score straight from a "threat" attribute.
type attrScorer struct{}

func (attrScorer) Score(attrs map[string]float64) (float64, error) {
	return attrs["threat"], nil
}

// newTestFramework builds a framework whose fallback threat is the given
// score (httptest clients come from 127.0.0.1, which stays unknown).
func newTestFramework(t *testing.T, fallbackThreat float64, opts ...core.Option) *core.Framework {
	t.Helper()
	store, err := features.NewMapStore(map[string]float64{"threat": fallbackThreat})
	if err != nil {
		t.Fatal(err)
	}
	base := []core.Option{
		core.WithKey(testKey),
		core.WithScorer(attrScorer{}),
		core.WithPolicy(policy.Policy1()),
		core.WithSource(store),
	}
	fw, err := core.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// okHandler serves a recognizable payload.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "the protected resource")
	})
}

func newProtectedServer(t *testing.T, fw *core.Framework, opts ...MiddlewareOption) *httptest.Server {
	t.Helper()
	mw, err := NewMiddleware(fw, okHandler(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mw)
	t.Cleanup(srv.Close)
	return srv
}

func TestNewMiddlewareValidation(t *testing.T) {
	fw := newTestFramework(t, 0)
	if _, err := NewMiddleware(nil, okHandler()); err == nil {
		t.Error("nil framework accepted")
	}
	if _, err := NewMiddleware(fw, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestBareRequestGetsChallenge(t *testing.T) {
	srv := newProtectedServer(t, newTestFramework(t, 3))
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != StatusChallenge {
		t.Fatalf("status = %d, want %d", resp.StatusCode, StatusChallenge)
	}
	token := resp.Header.Get(HeaderChallenge)
	if token == "" {
		t.Fatal("no challenge header")
	}
	if got := resp.Header.Get(HeaderDifficulty); got != "4" { // policy1(3) = 4
		t.Fatalf("difficulty header = %q, want 4", got)
	}
	var body challengeBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Challenge != token || body.Difficulty != 4 {
		t.Fatalf("body = %+v", body)
	}
	var ch puzzle.Challenge
	if err := ch.UnmarshalText([]byte(token)); err != nil {
		t.Fatalf("challenge token undecodable: %v", err)
	}
	if ch.Binding != "127.0.0.1" {
		t.Fatalf("challenge bound to %q", ch.Binding)
	}
}

func TestTransportSolvesTransparently(t *testing.T) {
	srv := newProtectedServer(t, newTestFramework(t, 2))
	var solves []puzzle.SolveStats
	client := &http.Client{Transport: NewTransport(
		WithSolveObserver(func(s puzzle.SolveStats) { solves = append(solves, s) }),
	)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "the protected resource" {
		t.Fatalf("payload = %q", payload)
	}
	if len(solves) != 1 || solves[0].Attempts == 0 {
		t.Fatalf("solve observer saw %v", solves)
	}
}

func TestTransportPostWithGetBody(t *testing.T) {
	srv := newProtectedServer(t, newTestFramework(t, 1))
	client := &http.Client{Transport: NewTransport()}
	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (GetBody is set by http.NewRequest for strings.Reader)", resp.StatusCode)
	}
}

func TestBadSolutionTokenRejected(t *testing.T) {
	srv := newProtectedServer(t, newTestFramework(t, 2))
	req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderSolution, "garbage-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestWrongSolutionGetsFreshChallenge(t *testing.T) {
	fw := newTestFramework(t, 2)
	srv := newProtectedServer(t, fw)
	// Get a genuine challenge first.
	resp1, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	token := resp1.Header.Get(HeaderChallenge)
	_, _ = io.Copy(io.Discard, resp1.Body)
	resp1.Body.Close()

	var ch puzzle.Challenge
	if err := ch.UnmarshalText([]byte(token)); err != nil {
		t.Fatal(err)
	}
	// Deliberately wrong nonce.
	bad := puzzle.Solution{Challenge: ch, Nonce: 0}
	for bad.Challenge.Meets(bad.Nonce) {
		bad.Nonce++
	}
	badToken, err := bad.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderSolution, string(badToken))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != StatusChallenge {
		t.Fatalf("status = %d, want fresh challenge %d", resp2.StatusCode, StatusChallenge)
	}
	var body challengeBody
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Message, "solution rejected") {
		t.Fatalf("message = %q, want rejection note", body.Message)
	}
}

func TestReplayedSolutionRejected(t *testing.T) {
	srv := newProtectedServer(t, newTestFramework(t, 1))
	// First, complete a legitimate exchange and capture the solution.
	resp1, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	token := resp1.Header.Get(HeaderChallenge)
	_, _ = io.Copy(io.Discard, resp1.Body)
	resp1.Body.Close()
	var ch puzzle.Challenge
	if err := ch.UnmarshalText([]byte(token)); err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	solToken, err := sol.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	send := func() int {
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(HeaderSolution, string(solToken))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := send(); got != http.StatusOK {
		t.Fatalf("first redemption status = %d, want 200", got)
	}
	if got := send(); got != StatusChallenge {
		t.Fatalf("replay status = %d, want %d (fresh challenge)", got, StatusChallenge)
	}
}

func TestBypassPassesThrough(t *testing.T) {
	fw := newTestFramework(t, 0, core.WithBypassBelow(5)) // fallback threat 0 < 5
	srv := newProtectedServer(t, fw)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 without solving", resp.StatusCode)
	}
}

func TestTransportGivesUpAfterBudget(t *testing.T) {
	// A server that always challenges, never accepts.
	fw := newTestFramework(t, 0, core.WithReplayCacheSize(1))
	mw, err := NewMiddleware(fw, okHandler())
	if err != nil {
		t.Fatal(err)
	}
	always := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del(HeaderSolution) // pretend the solution never arrived
		mw.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(always)
	defer srv.Close()

	client := &http.Client{Transport: NewTransport(WithMaxAttempts(2))}
	_, err = client.Get(srv.URL)
	// http.Client wraps transport errors in *url.Error; errors.Is unwraps.
	if !errors.Is(err, ErrTooManyChallenges) {
		t.Fatalf("err = %v, want ErrTooManyChallenges", err)
	}
}

func TestClientIPExtraction(t *testing.T) {
	tests := []struct {
		name        string
		remote      string
		trustHeader string
		headerVal   string
		want        string
	}{
		{"host_port", "192.0.2.1:1234", "", "", "192.0.2.1"},
		{"no_port", "192.0.2.1", "", "", "192.0.2.1"},
		{"ipv6", "[2001:db8::1]:443", "", "", "2001:db8::1"},
		{"trusted_header", "10.0.0.1:1", "X-Real-IP", "203.0.113.7", "203.0.113.7"},
		{"trusted_header_absent", "10.0.0.1:1", "X-Real-IP", "", "10.0.0.1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := httptest.NewRequest(http.MethodGet, "/", nil)
			r.RemoteAddr = tt.remote
			if tt.headerVal != "" {
				r.Header.Set(tt.trustHeader, tt.headerVal)
			}
			if got := ClientIP(r, tt.trustHeader); got != tt.want {
				t.Errorf("ClientIP = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestTrustedIPHeaderBindsChallenge(t *testing.T) {
	fw := newTestFramework(t, 2)
	srv := newProtectedServer(t, fw, WithTrustedIPHeader("X-Real-IP"))
	req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Real-IP", "198.51.100.77")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ch puzzle.Challenge
	if err := ch.UnmarshalText([]byte(resp.Header.Get(HeaderChallenge))); err != nil {
		t.Fatal(err)
	}
	if ch.Binding != "198.51.100.77" {
		t.Fatalf("binding = %q, want proxy-asserted IP", ch.Binding)
	}
}

func TestTransportIgnoresForeign428(t *testing.T) {
	// A 428 without our challenge header must pass through untouched.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(StatusChallenge)
	}))
	defer srv.Close()
	client := &http.Client{Transport: NewTransport()}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != StatusChallenge {
		t.Fatalf("status = %d, want untouched 428", resp.StatusCode)
	}
}

// fixedRouter routes /api/ onto one framework and everything else onto
// another, honoring a "gold" tenant override — a miniature gatekeeper.
type fixedRouter struct {
	api, web *core.Framework
}

func (r fixedRouter) Route(path, tenant string) *core.Framework {
	if tenant == "gold" || strings.HasPrefix(path, "/api/") {
		return r.api
	}
	return r.web
}

func TestRoutedMiddlewarePicksPipelinePerRequest(t *testing.T) {
	polAPI, err := policy.NewFixed(9)
	if err != nil {
		t.Fatal(err)
	}
	polWeb, err := policy.NewFixed(2)
	if err != nil {
		t.Fatal(err)
	}
	router := fixedRouter{
		api: newTestFramework(t, 5, core.WithPolicy(polAPI)),
		web: newTestFramework(t, 5, core.WithPolicy(polWeb)),
	}
	mw, err := NewRoutedMiddleware(router, okHandler(), WithTenantHeader("X-Tenant"))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mw)
	t.Cleanup(srv.Close)

	difficulty := func(path, tenant string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != StatusChallenge {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, StatusChallenge)
		}
		return resp.Header.Get(HeaderDifficulty)
	}
	if d := difficulty("/", ""); d != "2" {
		t.Fatalf("web difficulty = %s, want 2", d)
	}
	if d := difficulty("/api/v1", ""); d != "9" {
		t.Fatalf("api difficulty = %s, want 9", d)
	}
	if d := difficulty("/", "gold"); d != "9" {
		t.Fatalf("gold tenant difficulty = %s, want 9", d)
	}

	// The full solve loop works against a routed middleware: the same
	// pipeline that issued the challenge verifies the solution.
	client := &http.Client{Transport: NewTransport()}
	resp, err := client.Get(srv.URL + "/api/thing")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "the protected resource" {
		t.Fatalf("routed solve loop: status %d body %q", resp.StatusCode, body)
	}
}

func TestRoutedMiddlewareValidation(t *testing.T) {
	if _, err := NewRoutedMiddleware(nil, okHandler()); err == nil {
		t.Error("nil router accepted")
	}
	fw := newTestFramework(t, 0)
	if _, err := NewMiddleware(fw, okHandler(), WithTenantHeader("X-T")); err == nil {
		t.Error("tenant header without router accepted")
	}
	// Session tokens are IP-bound, not pipeline-scoped: combined with
	// routing, one cheap solve would buy pass-through on strict routes.
	router := fixedRouter{api: fw, web: fw}
	if _, err := NewRoutedMiddleware(router, okHandler(),
		WithSessionTokens(testKey, time.Minute)); err == nil {
		t.Error("session tokens with routed middleware accepted")
	}
}
