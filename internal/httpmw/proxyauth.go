package httpmw

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Signed-header proxy authentication: an upstream proxy (edge LB, WAF
// tier, ingestion worker) proves it is an authorized fleet member on
// every request by signing the client IP it fronts plus a timestamp with
// a key derived from the deployment's root key — so batch serving
// (POST /batch) no longer requires sharing the admin bearer token with
// every proxy, and a leaked admin token no longer means a leaked serving
// path. Signatures expire with the timestamp (skew-bounded), so a
// captured header triple cannot be replayed later.
const (
	// HeaderProxyIP carries the client IP the proxy is acting for.
	HeaderProxyIP = "X-AIPoW-Client-IP"

	// HeaderProxyTimestamp is the signing time in decimal Unix
	// nanoseconds.
	HeaderProxyTimestamp = "X-AIPoW-Batch-Timestamp"

	// HeaderProxySignature authenticates the (IP, timestamp) pair.
	HeaderProxySignature = "X-AIPoW-Batch-Signature"
)

// ErrProxyAuth reports a missing, malformed, stale, or forged proxy
// signature.
var ErrProxyAuth = errors.New("httpmw: proxy authentication failed")

// proxyAuthMagic domain-separates proxy-auth HMACs from challenge, token,
// and frame HMACs under related keys.
const proxyAuthMagic = "AIPoW-proxy-auth/1\x00"

// proxyKeyDomain derives the proxy-auth key from the deployment root key.
const proxyKeyDomain = "aipow-batch-proxy-key"

// DefaultProxyAuthSkew bounds how far a signed timestamp may sit from the
// verifier's clock — generous enough for real proxy clock drift, tight
// enough that a captured header triple goes stale in minutes.
const DefaultProxyAuthSkew = 2 * time.Minute

// DeriveProxyAuthKey derives the proxy-auth signing key from a
// deployment's root HMAC key. Both ends derive rather than share: every
// fleet node holding the root key accepts the same proxy signatures, and
// the root key itself never travels to the proxy tier.
func DeriveProxyAuthKey(root []byte) []byte {
	mac := hmac.New(sha256.New, root)
	mac.Write([]byte(proxyKeyDomain))
	return mac.Sum(nil)
}

// ProxyAuth signs and verifies the proxy header scheme. Safe for
// concurrent use.
type ProxyAuth struct {
	key  []byte
	skew time.Duration
	now  func() time.Time
}

// ProxyAuthOption customizes a ProxyAuth.
type ProxyAuthOption func(*ProxyAuth)

// WithProxyAuthSkew sets the tolerated timestamp skew (default
// DefaultProxyAuthSkew).
func WithProxyAuthSkew(skew time.Duration) ProxyAuthOption {
	return func(a *ProxyAuth) { a.skew = skew }
}

// WithProxyAuthClock injects the verifier's clock, for tests.
func WithProxyAuthClock(now func() time.Time) ProxyAuthOption {
	return func(a *ProxyAuth) { a.now = now }
}

// NewProxyAuth builds a signer/verifier over the derived proxy-auth key
// (see DeriveProxyAuthKey).
func NewProxyAuth(key []byte, opts ...ProxyAuthOption) (*ProxyAuth, error) {
	if len(key) < 16 {
		return nil, fmt.Errorf("httpmw: proxy-auth key of %d bytes is below the 16-byte minimum", len(key))
	}
	a := &ProxyAuth{
		key:  append([]byte(nil), key...),
		skew: DefaultProxyAuthSkew,
		now:  time.Now,
	}
	for _, opt := range opts {
		opt(a)
	}
	if a.skew <= 0 {
		return nil, fmt.Errorf("httpmw: non-positive proxy-auth skew %v", a.skew)
	}
	return a, nil
}

// Sign stamps the header triple onto h for a request fronting clientIP:
// the proxy side of the scheme.
func (a *ProxyAuth) Sign(h http.Header, clientIP string) {
	ts := strconv.FormatInt(a.now().UnixNano(), 10)
	h.Set(HeaderProxyIP, clientIP)
	h.Set(HeaderProxyTimestamp, ts)
	h.Set(HeaderProxySignature, a.sign(clientIP, ts))
}

// Authenticate verifies a request's header triple and returns the
// authenticated client IP. Fail closed: anything missing, unparseable,
// outside the skew window, or mis-signed is ErrProxyAuth.
func (a *ProxyAuth) Authenticate(r *http.Request) (string, error) {
	ip := r.Header.Get(HeaderProxyIP)
	ts := r.Header.Get(HeaderProxyTimestamp)
	sig := r.Header.Get(HeaderProxySignature)
	if ip == "" || ts == "" || sig == "" {
		return "", fmt.Errorf("%w: missing header", ErrProxyAuth)
	}
	// Verify the signature before trusting the timestamp: a forger learns
	// nothing about which check failed.
	want := a.sign(ip, ts)
	if subtle := hmac.Equal([]byte(sig), []byte(want)); !subtle {
		return "", fmt.Errorf("%w: bad signature", ErrProxyAuth)
	}
	tsNano, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		return "", fmt.Errorf("%w: bad timestamp", ErrProxyAuth)
	}
	if d := a.now().Sub(time.Unix(0, tsNano)); d > a.skew || d < -a.skew {
		return "", fmt.Errorf("%w: timestamp %v outside ±%v", ErrProxyAuth, d, a.skew)
	}
	return ip, nil
}

// sign computes the header signature over IP ∥ timestamp.
func (a *ProxyAuth) sign(ip, ts string) string {
	mac := hmac.New(sha256.New, a.key)
	mac.Write([]byte(proxyAuthMagic))
	mac.Write([]byte(ip))
	mac.Write([]byte{0})
	mac.Write([]byte(ts))
	return base64.RawURLEncoding.EncodeToString(mac.Sum(nil))
}
