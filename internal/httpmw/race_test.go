package httpmw

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/policy"
)

// raceScorer maps one tracked attribute so the concurrent path crosses the
// tracker on every decision.
type raceScorer struct{}

func (raceScorer) Score(attrs map[string]float64) (float64, error) {
	rate := attrs[features.AttrRequestRate]
	if rate > 5 {
		return 5, nil
	}
	return rate, nil
}

// TestMiddlewareTransportConcurrentClients drives the full HTTP protocol —
// challenge, client-side solve via the Transport, redemption, behavior
// tracking — from many concurrent clients with distinct IPs. It exists to
// run under -race: the middleware, framework, tracker, and replay cache
// all see genuine cross-goroutine contention here, end to end.
func TestMiddlewareTransportConcurrentClients(t *testing.T) {
	key := []byte("race-test-hmac-key-32-bytes-long")
	tracker, err := features.NewTracker(features.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	store, err := features.NewMapStore(map[string]float64{"static": 1})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := features.NewCombined(store, tracker)
	if err != nil {
		t.Fatal(err)
	}
	// Low difficulties keep real solving cheap; the crypto is identical.
	pol, err := policy.NewClamp(policy.Policy1(), 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.New(
		core.WithKey(key),
		core.WithScorer(raceScorer{}),
		core.WithPolicy(pol),
		core.WithSource(combined),
		core.WithTracker(tracker),
	)
	if err != nil {
		t.Fatal(err)
	}

	var served atomic.Uint64
	mw, err := NewMiddleware(fw, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		fmt.Fprint(w, "ok")
	}), WithTrustedIPHeader("X-Race-IP"))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mw)
	defer srv.Close()

	const (
		clients  = 16
		requests = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client gets its own Transport (solver, token cache) and
			// identity; the server side is the shared contended state.
			client := &http.Client{
				Transport: &headerRoundTripper{
					header: "X-Race-IP",
					value:  fmt.Sprintf("198.51.100.%d", c+1),
					next:   NewTransport(),
				},
				Timeout: 30 * time.Second,
			}
			for i := 0; i < requests; i++ {
				resp, err := client.Get(srv.URL + fmt.Sprintf("/path/%d", i%3))
				if err != nil {
					errs <- fmt.Errorf("client %d request %d: %w", c, i, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d request %d: status %d", c, i, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := served.Load(); got != clients*requests {
		t.Errorf("served %d requests, want %d", got, clients*requests)
	}
	if tracked := tracker.Tracked(); tracked != clients {
		t.Errorf("tracker holds %d IPs, want %d", tracked, clients)
	}
}

// headerRoundTripper stamps the client identity header under the PoW
// transport, so the solve-retry carries it too.
type headerRoundTripper struct {
	header, value string
	next          http.RoundTripper
}

func (h *headerRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	req.Header.Set(h.header, h.value)
	return h.next.RoundTrip(req)
}
