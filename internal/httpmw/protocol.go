// Package httpmw integrates the framework with net/http, realizing the
// paper's Figure 1 over a standard request/response exchange:
//
//	client                          server
//	  | GET /resource  ──────────────▶ |  (1) request
//	  | ◀────── 428 + X-PoW-Challenge  |  (2,3,4) score → policy → puzzle
//	  |  …solve puzzle locally…        |  (5) solver
//	  | GET /resource + X-PoW-Solution▶|  (5,6) verify
//	  | ◀────────────── 200 resource   |  (7) response
//
// The server side is Middleware, a standard http.Handler wrapper; the
// client side is Transport, an http.RoundTripper that solves challenges
// transparently, so existing clients adopt the protocol by swapping their
// HTTP client's transport.
package httpmw

import (
	"net"
	"net/http"
)

// Protocol header and status constants.
const (
	// HeaderChallenge carries the base64url challenge token on a 428
	// response.
	HeaderChallenge = "X-PoW-Challenge"

	// HeaderDifficulty mirrors the challenge difficulty in plain decimal,
	// for human inspection and dashboards.
	HeaderDifficulty = "X-PoW-Difficulty"

	// HeaderSolution carries the solution token on the retried request.
	HeaderSolution = "X-PoW-Solution"

	// StatusChallenge is the response status demanding proof of work.
	// 428 Precondition Required is the closest standard semantic: the
	// request is acceptable only after the client satisfies a precondition.
	StatusChallenge = http.StatusPreconditionRequired
)

// ClientIP extracts the client address from a request: the host part of
// RemoteAddr, or RemoteAddr verbatim when it carries no port. When
// trustHeader is non-empty and present, its value wins — for deployments
// behind a proxy that sets X-Real-IP or similar. Never trust such a header
// on a directly-exposed server: clients could choose their own binding.
func ClientIP(r *http.Request, trustHeader string) string {
	if trustHeader != "" {
		if v := r.Header.Get(trustHeader); v != "" {
			return v
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
