package httpmw

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aipow/internal/core"
	"aipow/internal/puzzle"
)

// postBatch sends reqs to the handler and decodes the result envelope.
func postBatch(t *testing.T, h http.Handler, reqs []BatchRequest) (*httptest.ResponseRecorder, []BatchResult) {
	t.Helper()
	body, err := json.Marshal(batchRequestBody{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var out batchResultBody
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode results: %v (body %q)", err, rec.Body.String())
	}
	return rec, out.Results
}

// TestBatchHandlerFlow drives the full per-item state machine through one
// call: fresh decisions earn challenges, valid solutions pass, forged
// ones earn a fresh challenge with an explanation, malformed tokens are
// rejected.
func TestBatchHandlerFlow(t *testing.T) {
	fw := newTestFramework(t, 5)
	h, err := NewBatchHandler(fw)
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: two clients ask for decisions.
	_, results := postBatch(t, h, []BatchRequest{
		{IP: "203.0.113.1", Path: "/a"},
		{IP: "203.0.113.2", Path: "/b"},
	})
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Status != BatchChallenge || res.Challenge == "" || res.Difficulty < puzzle.MinDifficulty {
			t.Fatalf("result %d = %+v, want a challenge", i, res)
		}
	}

	// Solve client 1's challenge for round 2.
	var ch puzzle.Challenge
	if err := ch.UnmarshalText([]byte(results[0].Challenge)); err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	token, err := sol.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	forged := sol
	forged.Challenge.Tag[0] ^= 0xFF
	forgedToken, err := forged.MarshalText()
	if err != nil {
		t.Fatal(err)
	}

	// Round 2: a pass, a forgery, a malformed token, and a plain decide,
	// interleaved to exercise result-order restoration.
	_, results = postBatch(t, h, []BatchRequest{
		{IP: "203.0.113.3", Path: "/c"},
		{IP: "203.0.113.1", Solution: string(token)},
		{IP: "203.0.113.2", Solution: string(forgedToken)},
		{IP: "203.0.113.4", Solution: "not-a-token"},
	})
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Status != BatchChallenge {
		t.Errorf("plain decide = %+v, want challenge", results[0])
	}
	if results[1].Status != BatchPass || results[1].Error != "" {
		t.Errorf("valid solution = %+v, want pass", results[1])
	}
	if results[2].Status != BatchChallenge || results[2].Error != "solution rejected" || results[2].Challenge == "" {
		t.Errorf("forged solution = %+v, want fresh challenge with rejection note", results[2])
	}
	if results[3].Status != BatchRejected {
		t.Errorf("malformed token = %+v, want rejected", results[3])
	}
}

// TestBatchHandlerBypass pins the pass-through decision: zero-threat
// clients get Status pass without a challenge.
func TestBatchHandlerBypass(t *testing.T) {
	fw := newTestFramework(t, 0, core.WithBypassBelow(1))
	h, err := NewBatchHandler(fw)
	if err != nil {
		t.Fatal(err)
	}
	_, results := postBatch(t, h, []BatchRequest{{IP: "203.0.113.9"}})
	if len(results) != 1 || results[0].Status != BatchPass || results[0].Challenge != "" {
		t.Fatalf("bypass result = %+v", results)
	}
}

// TestBatchHandlerRejections covers the envelope guards: method, shape,
// size, and per-item IP validation.
func TestBatchHandlerRejections(t *testing.T) {
	fw := newTestFramework(t, 5)
	h, err := NewBatchHandler(fw, WithBatchLimit(2))
	if err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET → %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader("{")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON → %d", rec.Code)
	}

	if rec, _ := postBatch(t, h, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch → %d", rec.Code)
	}
	three := []BatchRequest{{IP: "a"}, {IP: "b"}, {IP: "c"}}
	if rec, _ := postBatch(t, h, three); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-limit batch → %d", rec.Code)
	}
	if rec, _ := postBatch(t, h, []BatchRequest{{IP: "a"}, {IP: ""}}); rec.Code != http.StatusBadRequest {
		t.Errorf("missing ip → %d", rec.Code)
	}

	if _, err := NewBatchHandler(nil); err == nil {
		t.Error("nil framework accepted")
	}
	if _, err := NewRoutedBatchHandler(nil); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := NewBatchHandler(fw, WithBatchLimit(0)); err == nil {
		t.Error("non-positive limit accepted")
	}
}

// mapRouter routes by tenant name, defaulting to the fallback framework.
type mapRouter struct {
	fallback *core.Framework
	tenants  map[string]*core.Framework
}

func (r mapRouter) Route(path, tenant string) *core.Framework {
	if fw, ok := r.tenants[tenant]; ok {
		return fw
	}
	return r.fallback
}

// TestRoutedBatchHandler checks per-item routing: items are grouped by
// their serving pipeline and results land back in request order.
func TestRoutedBatchHandler(t *testing.T) {
	strict := newTestFramework(t, 9)
	lax := newTestFramework(t, 0, core.WithBypassBelow(1))
	h, err := NewRoutedBatchHandler(mapRouter{
		fallback: strict,
		tenants:  map[string]*core.Framework{"gold": lax},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, results := postBatch(t, h, []BatchRequest{
		{IP: "203.0.113.20"},
		{IP: "203.0.113.21", Tenant: "gold"},
		{IP: "203.0.113.22"},
	})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Status != BatchChallenge || results[2].Status != BatchChallenge {
		t.Errorf("strict-tenant items = %+v / %+v, want challenges", results[0], results[2])
	}
	if results[1].Status != BatchPass {
		t.Errorf("gold-tenant item = %+v, want pass", results[1])
	}
}
