package httpmw

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// HeaderToken carries a session token minted after a successful puzzle
// redemption. While the token is valid, the client skips further puzzles —
// amortizing one solve over many requests. This trades protection
// granularity for throughput and is disabled unless the middleware is
// built with WithTokenTTL.
const HeaderToken = "X-PoW-Token"

// Token errors.
var (
	// ErrTokenInvalid reports a token that fails authentication or parsing.
	ErrTokenInvalid = errors.New("httpmw: invalid session token")

	// ErrTokenExpired reports a structurally valid but stale token.
	ErrTokenExpired = errors.New("httpmw: session token expired")
)

// tokenMagic distinguishes token HMAC inputs from challenge HMAC inputs
// under the same key.
const tokenMagic = "AIPoW-token/1\x00"

// tokenSigner mints and validates bearer tokens binding (client, expiry)
// under an HMAC key. Tokens are one line, header-safe.
type tokenSigner struct {
	key []byte
	now func() time.Time
}

// newTokenSigner builds a signer; key length is validated by the caller
// (the middleware shares the framework's key-length discipline).
func newTokenSigner(key []byte, now func() time.Time) *tokenSigner {
	return &tokenSigner{key: append([]byte(nil), key...), now: now}
}

// Mint creates a token for binding valid until now+ttl.
func (s *tokenSigner) Mint(binding string, ttl time.Duration) string {
	expiry := s.now().Add(ttl).UnixNano()
	payload := make([]byte, 8, 8+len(binding))
	binary.BigEndian.PutUint64(payload, uint64(expiry))
	payload = append(payload, binding...)
	tag := s.tag(payload)
	blob := append(payload, tag...)
	return base64.RawURLEncoding.EncodeToString(blob)
}

// Validate checks a token presented by binding.
func (s *tokenSigner) Validate(token, binding string) error {
	blob, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTokenInvalid, err)
	}
	if len(blob) < 8+sha256.Size {
		return fmt.Errorf("%w: truncated", ErrTokenInvalid)
	}
	payload, tag := blob[:len(blob)-sha256.Size], blob[len(blob)-sha256.Size:]
	if !hmac.Equal(tag, s.tag(payload)) {
		return fmt.Errorf("%w: bad signature", ErrTokenInvalid)
	}
	if got := string(payload[8:]); got != binding {
		return fmt.Errorf("%w: token bound to %q, presented by %q", ErrTokenInvalid, got, binding)
	}
	expiry := time.Unix(0, int64(binary.BigEndian.Uint64(payload[:8])))
	if s.now().After(expiry) {
		return fmt.Errorf("%w: at %v", ErrTokenExpired, expiry)
	}
	return nil
}

// tag computes the token HMAC.
func (s *tokenSigner) tag(payload []byte) []byte {
	mac := hmac.New(sha256.New, s.key)
	mac.Write([]byte(tokenMagic))
	mac.Write(payload)
	return mac.Sum(nil)
}
