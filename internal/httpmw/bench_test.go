package httpmw

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/policy"
)

// BenchmarkMiddlewareChallenge measures the server-side cost of the full
// challenge path: IP extraction, Decide, encoding, and the 428 response.
func BenchmarkMiddlewareChallenge(b *testing.B) {
	store, err := features.NewMapStore(map[string]float64{"threat": 6})
	if err != nil {
		b.Fatal(err)
	}
	fw, err := core.New(
		core.WithKey(testKey),
		core.WithScorer(attrScorer{}),
		core.WithPolicy(policy.Policy2()),
		core.WithSource(store),
	)
	if err != nil {
		b.Fatal(err)
	}
	mw, err := NewMiddleware(fw, okHandler())
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/api", nil)
	req.RemoteAddr = "192.0.2.10:4242"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		mw.ServeHTTP(rec, req)
		if rec.Code != StatusChallenge {
			b.Fatalf("status = %d", rec.Code)
		}
	}
}
