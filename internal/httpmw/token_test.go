package httpmw

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/puzzle"
)

// newServerFor serves an explicit handler with cleanup.
func newServerFor(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func TestTokenSignerRoundTrip(t *testing.T) {
	s := newTokenSigner(testKey, time.Now)
	tok := s.Mint("192.0.2.1", time.Minute)
	if err := s.Validate(tok, "192.0.2.1"); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTokenSignerRejections(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := newTokenSigner(testKey, clock)
	tok := s.Mint("192.0.2.1", time.Minute)

	if err := s.Validate(tok, "203.0.113.9"); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("wrong binding err = %v, want ErrTokenInvalid", err)
	}
	if err := s.Validate("!!!", "192.0.2.1"); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("garbage err = %v, want ErrTokenInvalid", err)
	}
	if err := s.Validate("AAAA", "192.0.2.1"); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("truncated err = %v, want ErrTokenInvalid", err)
	}
	other := newTokenSigner([]byte("ffffffffffffffffffffffffffffffff"), clock)
	if err := other.Validate(tok, "192.0.2.1"); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("wrong key err = %v, want ErrTokenInvalid", err)
	}
	now = now.Add(2 * time.Minute)
	if err := s.Validate(tok, "192.0.2.1"); !errors.Is(err, ErrTokenExpired) {
		t.Errorf("expired err = %v, want ErrTokenExpired", err)
	}
}

func TestTokenSignerTamperedPayload(t *testing.T) {
	s := newTokenSigner(testKey, time.Now)
	tok := s.Mint("192.0.2.1", time.Minute)
	// Flip one character of the base64 payload.
	b := []byte(tok)
	if b[0] == 'A' {
		b[0] = 'B'
	} else {
		b[0] = 'A'
	}
	if err := s.Validate(string(b), "192.0.2.1"); !errors.Is(err, ErrTokenInvalid) {
		t.Fatalf("tampered token err = %v, want ErrTokenInvalid", err)
	}
}

func TestNewMiddlewareTokenValidation(t *testing.T) {
	fw := newTestFramework(t, 0)
	if _, err := NewMiddleware(fw, okHandler(), WithSessionTokens([]byte("short"), time.Minute)); err == nil {
		t.Error("short token key accepted")
	}
	if _, err := NewMiddleware(fw, okHandler(), WithSessionTokens(testKey, 0)); err == nil {
		t.Error("zero token TTL accepted")
	}
}

// TestSessionTokenAmortizesSolving is the end-to-end token flow: the first
// request solves a puzzle and receives a token, subsequent requests ride
// the token with zero additional solves.
func TestSessionTokenAmortizesSolving(t *testing.T) {
	fw := newTestFramework(t, 3)
	var served atomic.Int64
	mw, err := NewMiddleware(fw, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		_, _ = io.WriteString(w, "ok")
	}), WithSessionTokens(testKey, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServerFor(t, mw)

	solves := 0
	client := &http.Client{Transport: NewTransport(
		WithSolveObserver(func(puzzle.SolveStats) { solves++ }),
	)}
	for i := 0; i < 5; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
	if solves != 1 {
		t.Fatalf("solved %d puzzles over 5 requests, want exactly 1 (token amortization)", solves)
	}
	if served.Load() != 5 {
		t.Fatalf("served %d, want 5", served.Load())
	}
}

func TestExpiredTokenTriggersFreshPuzzle(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	fw := newTestFramework(t, 2, core.WithClock(clock))
	mw, err := NewMiddleware(fw, okHandler(),
		WithSessionTokens(testKey, 30*time.Second),
		WithMiddlewareClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServerFor(t, mw)

	solves := 0
	client := &http.Client{Transport: NewTransport(
		WithSolveObserver(func(puzzle.SolveStats) { solves++ }),
	)}
	get := func() {
		t.Helper()
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	get()                      // solve #1, token minted
	get()                      // rides token
	now = now.Add(time.Minute) // token expires
	get()                      // solve #2, new token
	get()                      // rides new token
	if solves != 2 {
		t.Fatalf("solves = %d, want 2", solves)
	}
}
