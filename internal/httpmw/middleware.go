package httpmw

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/puzzle"
)

// challengeBody is the JSON payload of a 428 response. The header carries
// the authoritative token; the body is for human and tooling convenience.
type challengeBody struct {
	Challenge  string `json:"challenge"`
	Difficulty int    `json:"difficulty"`
	Message    string `json:"message"`
}

// errorBody is the JSON payload of a rejection.
type errorBody struct {
	Error string `json:"error"`
}

// Router selects the framework that serves one request class — the seam
// between the middleware and the control plane's gatekeeper. Route must
// never return nil; path is the request path and tenant the value of the
// configured tenant header ("" when unset).
type Router interface {
	Route(path, tenant string) *core.Framework
}

// Middleware protects an http.Handler with a framework — one fixed
// pipeline, or per-route pipelines via a Router. Construct with
// NewMiddleware or NewRoutedMiddleware.
type Middleware struct {
	next         http.Handler
	fw           *core.Framework // single-pipeline mode; nil when routed
	router       Router          // per-route mode; nil when single
	tenantHeader string
	trustHeader  string
	now          func() time.Time
	tokens       *tokenSigner
	tokenTTL     time.Duration
}

// MiddlewareOption customizes the middleware.
type MiddlewareOption func(*Middleware)

// WithTrustedIPHeader makes the middleware take the client IP from the
// given header (e.g. "X-Real-IP") instead of RemoteAddr. Only safe behind
// a proxy that always sets it.
func WithTrustedIPHeader(name string) MiddlewareOption {
	return func(m *Middleware) { m.trustHeader = name }
}

// WithTenantHeader names the header whose value is passed to the Router
// as the tenant key (e.g. "X-Tenant"). Only meaningful with
// NewRoutedMiddleware; only safe when a trusted proxy controls the
// header, since clients could otherwise choose their pipeline.
func WithTenantHeader(name string) MiddlewareOption {
	return func(m *Middleware) { m.tenantHeader = name }
}

// WithMiddlewareClock injects the middleware's time source, for tests.
func WithMiddlewareClock(now func() time.Time) MiddlewareOption {
	return func(m *Middleware) { m.now = now }
}

// WithSessionTokens enables amortized solving: after one successful puzzle
// redemption the client receives an X-PoW-Token valid for ttl, and
// token-bearing requests skip puzzles until it expires. The key signs
// tokens (it may equal the framework key; the HMAC domains are separated)
// and must be at least 16 bytes.
func WithSessionTokens(key []byte, ttl time.Duration) MiddlewareOption {
	return func(m *Middleware) {
		m.tokens = newTokenSigner(key, time.Now)
		m.tokenTTL = ttl
	}
}

// NewMiddleware wraps next with the PoW protocol driven by fw.
func NewMiddleware(fw *core.Framework, next http.Handler, opts ...MiddlewareOption) (*Middleware, error) {
	if fw == nil {
		return nil, fmt.Errorf("httpmw: middleware requires a framework")
	}
	return newMiddleware(fw, nil, next, opts)
}

// NewRoutedMiddleware wraps next with the PoW protocol, selecting the
// serving framework per request through router (typically the control
// plane's gatekeeper): the request path and — with WithTenantHeader —
// the tenant key pick the pipeline that scores, prices, and verifies the
// request.
func NewRoutedMiddleware(router Router, next http.Handler, opts ...MiddlewareOption) (*Middleware, error) {
	if router == nil {
		return nil, fmt.Errorf("httpmw: routed middleware requires a router")
	}
	return newMiddleware(nil, router, next, opts)
}

func newMiddleware(fw *core.Framework, router Router, next http.Handler, opts []MiddlewareOption) (*Middleware, error) {
	if next == nil {
		return nil, fmt.Errorf("httpmw: middleware requires a handler to protect")
	}
	m := &Middleware{next: next, fw: fw, router: router, now: time.Now}
	for _, opt := range opts {
		opt(m)
	}
	if m.tenantHeader != "" && m.router == nil {
		return nil, fmt.Errorf("httpmw: WithTenantHeader requires a routed middleware")
	}
	if m.tokens != nil && m.router != nil {
		// Tokens are bound to the client IP only, not to a pipeline: one
		// cheap solve on a lenient route would buy token pass-through on
		// every stricter route. Until tokens carry a pipeline scope,
		// refuse the combination rather than silently weaken routing.
		return nil, fmt.Errorf("httpmw: session tokens are not pipeline-scoped; WithSessionTokens cannot be combined with a routed middleware")
	}
	if m.tokens != nil {
		m.tokens.now = m.now
		if len(m.tokens.key) < 16 {
			return nil, fmt.Errorf("httpmw: session token key shorter than 16 bytes")
		}
		if m.tokenTTL <= 0 {
			return nil, fmt.Errorf("httpmw: non-positive session token TTL %v", m.tokenTTL)
		}
	}
	return m, nil
}

// framework resolves the pipeline serving r: the fixed framework in
// single-pipeline mode, the router's choice in routed mode.
func (m *Middleware) framework(r *http.Request) *core.Framework {
	if m.router == nil {
		return m.fw
	}
	tenant := ""
	if m.tenantHeader != "" {
		tenant = r.Header.Get(m.tenantHeader)
	}
	return m.router.Route(r.URL.Path, tenant)
}

// ServeHTTP implements http.Handler.
func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ip := ClientIP(r, m.trustHeader)
	// One routing decision per request: the same pipeline scores,
	// challenges, and verifies it even if a control-plane Apply swaps the
	// route table mid-flight.
	fw := m.framework(r)

	if m.tokens != nil {
		if tok := r.Header.Get(HeaderToken); tok != "" {
			if err := m.tokens.Validate(tok, ip); err == nil {
				m.observe(fw, r, ip, false)
				m.next.ServeHTTP(w, r)
				return
			}
			// Invalid/expired token: fall through to the puzzle flow; the
			// failed presentation is behavioral signal.
			m.observe(fw, r, ip, true)
		}
	}

	if token := r.Header.Get(HeaderSolution); token != "" {
		m.redeem(fw, w, r, ip, token)
		return
	}
	m.challenge(fw, w, r, ip, "")
}

// challenge runs Decide and answers with a 428 (or passes a bypassed
// request through). extraMsg annotates re-challenges after a failed
// redemption.
func (m *Middleware) challenge(fw *core.Framework, w http.ResponseWriter, r *http.Request, ip, extraMsg string) {
	m.observe(fw, r, ip, false)
	dec, err := fw.Decide(core.RequestContext{IP: ip})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "challenge issuance failed"})
		return
	}
	if dec.Bypassed {
		m.next.ServeHTTP(w, r)
		return
	}
	token, err := dec.Challenge.MarshalText()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "challenge encoding failed"})
		return
	}
	msg := fmt.Sprintf("solve the %d-difficult puzzle and retry with %s", dec.Difficulty, HeaderSolution)
	if extraMsg != "" {
		msg = extraMsg + "; " + msg
	}
	w.Header().Set(HeaderChallenge, string(token))
	w.Header().Set(HeaderDifficulty, fmt.Sprintf("%d", dec.Difficulty))
	writeJSON(w, StatusChallenge, challengeBody{
		Challenge:  string(token),
		Difficulty: dec.Difficulty,
		Message:    msg,
	})
}

// redeem verifies a presented solution and serves the protected resource on
// success. Invalid solutions get a fresh challenge (the paper's flow keeps
// clients in the loop rather than banning them outright — cost, not
// blocking, is the control).
func (m *Middleware) redeem(fw *core.Framework, w http.ResponseWriter, r *http.Request, ip, token string) {
	var sol puzzle.Solution
	if err := sol.UnmarshalText([]byte(token)); err != nil {
		m.observe(fw, r, ip, true)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed solution token"})
		return
	}
	if err := fw.Verify(sol, ip); err != nil {
		m.challenge(fw, w, r, ip, "solution rejected")
		return
	}
	m.observe(fw, r, ip, false)
	if m.tokens != nil {
		w.Header().Set(HeaderToken, m.tokens.Mint(ip, m.tokenTTL))
	}
	m.next.ServeHTTP(w, r)
}

// observe feeds the request into the framework's behavior tracker.
func (m *Middleware) observe(fw *core.Framework, r *http.Request, ip string, failed bool) {
	// Observe is best-effort: tracking failures must never block serving.
	_ = fw.Observe(features.RequestInfo{
		IP:     ip,
		Path:   r.URL.Path,
		At:     m.now(),
		Failed: failed,
	})
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors at this point mean the connection is gone; there is
	// nothing useful left to do with the request.
	_ = json.NewEncoder(w).Encode(v)
}
