package httpmw

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

var proxyEpoch = time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC)

func testProxyAuth(t *testing.T, now func() time.Time) *ProxyAuth {
	t.Helper()
	a, err := NewProxyAuth(DeriveProxyAuthKey([]byte("root-key-0123456789abcdef")), WithProxyAuthClock(now))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func signedRequest(a *ProxyAuth, ip string) *http.Request {
	r := httptest.NewRequest(http.MethodPost, "/batch", nil)
	a.Sign(r.Header, ip)
	return r
}

func TestProxyAuthRoundTrip(t *testing.T) {
	a := testProxyAuth(t, func() time.Time { return proxyEpoch })
	r := signedRequest(a, "198.51.100.9")
	ip, err := a.Authenticate(r)
	if err != nil {
		t.Fatal(err)
	}
	if ip != "198.51.100.9" {
		t.Fatalf("authenticated IP %q, want 198.51.100.9", ip)
	}
}

func TestProxyAuthRejectsSkewedTimestamps(t *testing.T) {
	clock := proxyEpoch
	a := testProxyAuth(t, func() time.Time { return clock })
	r := signedRequest(a, "198.51.100.9")

	// Inside the window: fine.
	clock = proxyEpoch.Add(DefaultProxyAuthSkew - time.Second)
	if _, err := a.Authenticate(r); err != nil {
		t.Fatalf("in-window timestamp rejected: %v", err)
	}
	// Stale: a captured header triple must not replay later.
	clock = proxyEpoch.Add(DefaultProxyAuthSkew + time.Second)
	if _, err := a.Authenticate(r); !errors.Is(err, ErrProxyAuth) {
		t.Fatalf("stale signature accepted: %v", err)
	}
	// From the future beyond skew: equally rejected.
	clock = proxyEpoch.Add(-DefaultProxyAuthSkew - time.Second)
	if _, err := a.Authenticate(r); !errors.Is(err, ErrProxyAuth) {
		t.Fatalf("future signature accepted: %v", err)
	}
}

func TestProxyAuthFailsClosed(t *testing.T) {
	a := testProxyAuth(t, func() time.Time { return proxyEpoch })

	// Missing headers.
	r := httptest.NewRequest(http.MethodPost, "/batch", nil)
	if _, err := a.Authenticate(r); !errors.Is(err, ErrProxyAuth) {
		t.Fatal("unsigned request accepted")
	}
	// Tampered IP: the signature binds it.
	r = signedRequest(a, "198.51.100.9")
	r.Header.Set(HeaderProxyIP, "203.0.113.7")
	if _, err := a.Authenticate(r); !errors.Is(err, ErrProxyAuth) {
		t.Fatal("IP swap accepted")
	}
	// Tampered timestamp.
	r = signedRequest(a, "198.51.100.9")
	r.Header.Set(HeaderProxyTimestamp, "1")
	if _, err := a.Authenticate(r); !errors.Is(err, ErrProxyAuth) {
		t.Fatal("timestamp swap accepted")
	}
	// Garbled signature.
	r = signedRequest(a, "198.51.100.9")
	r.Header.Set(HeaderProxySignature, "AAAA")
	if _, err := a.Authenticate(r); !errors.Is(err, ErrProxyAuth) {
		t.Fatal("garbled signature accepted")
	}
	// A signer under a different root key is a different fleet.
	other, err := NewProxyAuth(DeriveProxyAuthKey([]byte("other-root-0123456789abcdef")),
		WithProxyAuthClock(func() time.Time { return proxyEpoch }))
	if err != nil {
		t.Fatal(err)
	}
	r = signedRequest(other, "198.51.100.9")
	if _, err := a.Authenticate(r); !errors.Is(err, ErrProxyAuth) {
		t.Fatal("foreign-fleet signature accepted")
	}
}

func TestDeriveProxyAuthKeyIsStable(t *testing.T) {
	root := []byte("root-key-0123456789abcdef")
	a := DeriveProxyAuthKey(root)
	b := DeriveProxyAuthKey(root)
	if string(a) != string(b) {
		t.Fatal("derivation not deterministic")
	}
	if string(a) == string(root) {
		t.Fatal("derived key equals root key")
	}
	if len(a) != 32 {
		t.Fatalf("derived key length %d, want 32", len(a))
	}
}

func TestNewProxyAuthValidation(t *testing.T) {
	if _, err := NewProxyAuth([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := NewProxyAuth(DeriveProxyAuthKey([]byte("root-key-0123456789abcdef")),
		WithProxyAuthSkew(-time.Second)); err == nil {
		t.Fatal("negative skew accepted")
	}
}
