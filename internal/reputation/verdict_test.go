package reputation

import (
	"bytes"
	"encoding/json"
	"testing"

	"aipow/internal/dataset"
)

// trainedModel builds the standard synthetic-feed model test fixture.
func trainedModel(t *testing.T) (*Model, []Sample) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.Seed = 4
	raw, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]Sample, len(raw))
	for i, s := range raw {
		samples[i] = Sample{Attrs: s.Attrs, Malicious: s.Malicious}
	}
	m, err := Train(samples, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	return m, samples
}

func TestModelVerdictMatchesScore(t *testing.T) {
	m, samples := trainedModel(t)
	for _, s := range samples[:200] {
		score, err := m.Score(s.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		ver, err := m.VerdictAttrs(s.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		if ver.Score != score {
			t.Fatalf("verdict score %v != Score %v", ver.Score, score)
		}
		if ver.Confidence < 0 || ver.Confidence > 1 {
			t.Fatalf("confidence %v outside [0, 1]", ver.Confidence)
		}
		// Vector path agrees with the map path.
		v := m.Schema().NewVector()
		for j := 0; j < m.Schema().Len(); j++ {
			v[j] = s.Attrs[m.Schema().Name(j)]
		}
		vv, err := m.VerdictVector(v)
		if err != nil {
			t.Fatal(err)
		}
		if vv != ver {
			t.Fatalf("vector verdict %+v != map verdict %+v", vv, ver)
		}
	}
}

// TestModelConfidenceCalibration pins the calibration's intent: the clear
// majority of correctly-flagged training points scores at (near) full
// confidence — shading must not soften the defense where the model is
// right — while the mean confidence of high-scoring points stays below 1
// (the ambiguous band exists and is marked).
func TestModelConfidenceCalibration(t *testing.T) {
	m, samples := trainedModel(t)
	var full, n int
	var sum float64
	for _, s := range samples {
		if !s.Malicious {
			continue
		}
		ver, err := m.VerdictAttrs(s.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		if ver.Score < 5 {
			continue
		}
		n++
		sum += ver.Confidence
		if ver.Confidence >= 0.95 {
			full++
		}
	}
	if n == 0 {
		t.Fatal("no true positives in fixture")
	}
	if frac := float64(full) / float64(n); frac < 0.5 {
		t.Errorf("only %.2f of true positives at near-full confidence, want most", frac)
	}
	if mean := sum / float64(n); mean >= 0.999 {
		t.Errorf("mean TP confidence %.3f — calibration marks nothing as ambiguous", mean)
	}
}

func TestModelVerdictFastPathSelfConsistent(t *testing.T) {
	m, _ := trainedModel(t)
	if m.Schema() == nil {
		t.Fatal("model schema unexpectedly nil")
	}
	if _, err := m.VerdictVector(make([]float64, m.Schema().Len()+1)); err == nil {
		t.Error("VerdictVector accepted a wrong-length vector")
	}
}

func TestKNNVerdictUnanimity(t *testing.T) {
	samples := []Sample{
		{Attrs: map[string]float64{"x": 0}, Malicious: false},
		{Attrs: map[string]float64{"x": 0.1}, Malicious: false},
		{Attrs: map[string]float64{"x": 1}, Malicious: true},
		{Attrs: map[string]float64{"x": 0.9}, Malicious: true},
	}
	knn, err := NewKNN(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Unanimous malicious neighbourhood: score 10, confidence 1.
	ver, err := knn.VerdictAttrs(map[string]float64{"x": 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if ver.Score != MaxScore || ver.Confidence != 1 {
		t.Errorf("unanimous verdict = %+v, want score 10 conf 1", ver)
	}
	// Split neighbourhood: score 5, confidence 0.
	ver, err = knn.VerdictAttrs(map[string]float64{"x": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ver.Score != MaxScore/2 || ver.Confidence != 0 {
		t.Errorf("split verdict = %+v, want score 5 conf 0", ver)
	}
}

// TestPersistRoundTripVerdict pins that the v2 model file carries the
// confidence calibration and that verdicts survive a save/load cycle.
func TestPersistRoundTripVerdict(t *testing.T) {
	m, samples := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:100] {
		want, err := m.VerdictAttrs(s.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.VerdictAttrs(s.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("verdict changed across save/load: %+v != %+v", got, want)
		}
	}
}

// TestLoadV1ModelScoresAtFullConfidence pins backward compatibility: a
// pre-verdict (version 1) model file — no benign centroids, no margin
// calibration — loads and verdicts at confidence 1.
func TestLoadV1ModelScoresAtFullConfidence(t *testing.T) {
	m, samples := trainedModel(t)
	v1, err := json.Marshal(modelJSON{
		Version:   modelFileVersionV1,
		AttrNames: m.attrNames,
		Mins:      m.mins,
		Ranges:    m.ranges,
		Centroids: m.centroids,
		DistMal:   m.distMal,
		DistBen:   m.distBen,
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("load v1 model: %v", err)
	}
	ver, err := loaded.VerdictAttrs(samples[0].Attrs)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Confidence != 1 {
		t.Errorf("v1 model confidence = %v, want 1", ver.Confidence)
	}
	want, _ := m.Score(samples[0].Attrs)
	if ver.Score != want {
		t.Errorf("v1 model score = %v, want %v", ver.Score, want)
	}
}
