package reputation

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestKMeansSingleClusterIsMean(t *testing.T) {
	points := [][]float64{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	rng := rand.New(rand.NewPCG(1, 1))
	cents, err := kMeans(points, 1, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 1 {
		t.Fatalf("got %d centroids, want 1", len(cents))
	}
	if math.Abs(cents[0][0]-1) > 1e-9 || math.Abs(cents[0][1]-1) > 1e-9 {
		t.Fatalf("centroid = %v, want [1 1]", cents[0])
	}
}

func TestKMeansRecoversSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	var points [][]float64
	for i := 0; i < 50; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
		points = append(points, []float64{5 + rng.NormFloat64()*0.1, 5 + rng.NormFloat64()*0.1})
	}
	cents, err := kMeans(points, 2, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 2 {
		t.Fatalf("got %d centroids, want 2", len(cents))
	}
	// One centroid near (0,0), one near (5,5), in either order.
	d00 := math.Min(euclidean(cents[0], []float64{0, 0}), euclidean(cents[1], []float64{0, 0}))
	d55 := math.Min(euclidean(cents[0], []float64{5, 5}), euclidean(cents[1], []float64{5, 5}))
	if d00 > 0.5 || d55 > 0.5 {
		t.Fatalf("clusters not recovered: centroids %v", cents)
	}
}

// k-means assignment optimality: after convergence every point is closer to
// its own centroid than to any other (within float tolerance). This is the
// defining invariant of Lloyd's algorithm.
func TestKMeansAssignmentOptimality(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	var points [][]float64
	for i := 0; i < 90; i++ {
		c := float64(i % 3 * 4)
		points = append(points, []float64{c + rng.NormFloat64()*0.2, c + rng.NormFloat64()*0.2})
	}
	cents, err := kMeans(points, 3, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute means of implied assignment; converged centroids must be
	// (near) fixed points.
	sums := make([][]float64, len(cents))
	counts := make([]int, len(cents))
	for i := range sums {
		sums[i] = make([]float64, 2)
	}
	for _, p := range points {
		best, bestD := 0, math.Inf(1)
		for c := range cents {
			if d := euclidean(p, cents[c]); d < bestD {
				best, bestD = c, d
			}
		}
		counts[best]++
		sums[best][0] += p[0]
		sums[best][1] += p[1]
	}
	for c := range cents {
		if counts[c] == 0 {
			t.Fatalf("centroid %d owns no points", c)
		}
		for j := 0; j < 2; j++ {
			mean := sums[c][j] / float64(counts[c])
			if math.Abs(mean-cents[c][j]) > 1e-6 {
				t.Fatalf("centroid %d not a fixed point: dim %d mean %v vs %v", c, j, mean, cents[c][j])
			}
		}
	}
}

func TestKMeansClampK(t *testing.T) {
	points := [][]float64{{1}, {2}}
	cents, err := kMeans(points, 10, 10, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 2 {
		t.Fatalf("got %d centroids, want clamp to 2", len(cents))
	}
}

func TestKMeansNoPoints(t *testing.T) {
	if _, err := kMeans(nil, 2, 10, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	cents, err := kMeans(points, 2, 10, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cents {
		if c[0] != 3 || c[1] != 3 {
			t.Fatalf("centroid %v, want [3 3]", c)
		}
	}
}
