package reputation

import (
	"fmt"
)

// Evaluation is a binary-classification confusion matrix at a score
// threshold, with the derived quality measures the DAbR paper reports.
type Evaluation struct {
	// Threshold is the score at or above which a sample is classified
	// malicious. MaxScore/2 = 5 is the model's calibrated operating point.
	Threshold float64

	// TP, FP, TN, FN are the confusion-matrix counts.
	TP, FP, TN, FN int
}

// Total reports the number of evaluated samples.
func (e Evaluation) Total() int { return e.TP + e.FP + e.TN + e.FN }

// Accuracy reports (TP+TN)/total, the figure the paper quotes (~80%).
func (e Evaluation) Accuracy() float64 {
	if e.Total() == 0 {
		return 0
	}
	return float64(e.TP+e.TN) / float64(e.Total())
}

// Precision reports TP/(TP+FP), or 0 when undefined.
func (e Evaluation) Precision() float64 {
	if e.TP+e.FP == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FP)
}

// Recall reports TP/(TP+FN), or 0 when undefined.
func (e Evaluation) Recall() float64 {
	if e.TP+e.FN == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FN)
}

// F1 reports the harmonic mean of precision and recall, or 0 when undefined.
func (e Evaluation) F1() float64 {
	p, r := e.Precision(), e.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the evaluation one-per-line for experiment logs.
func (e Evaluation) String() string {
	return fmt.Sprintf("eval{thr=%.1f acc=%.3f prec=%.3f rec=%.3f f1=%.3f tp=%d fp=%d tn=%d fn=%d}",
		e.Threshold, e.Accuracy(), e.Precision(), e.Recall(), e.F1(), e.TP, e.FP, e.TN, e.FN)
}

// Evaluate classifies each sample with the scorer (malicious iff score ≥
// threshold) and tallies the confusion matrix against ground truth.
func Evaluate(s Scorer, samples []Sample, threshold float64) (Evaluation, error) {
	ev := Evaluation{Threshold: threshold}
	for i, sample := range samples {
		score, err := s.Score(sample.Attrs)
		if err != nil {
			return Evaluation{}, fmt.Errorf("reputation: score sample %d: %w", i, err)
		}
		predicted := score >= threshold
		switch {
		case predicted && sample.Malicious:
			ev.TP++
		case predicted && !sample.Malicious:
			ev.FP++
		case !predicted && !sample.Malicious:
			ev.TN++
		default:
			ev.FN++
		}
	}
	return ev, nil
}
