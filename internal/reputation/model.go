// Package reputation implements the paper's AI subsystem: DAbR-style
// (Renjan et al., ISI 2018) dynamic attribute-based reputation scoring.
//
// DAbR learns from the attribute vectors of previously-known malicious IP
// addresses and scores an unseen IP by its Euclidean distance to that
// learned malicious region: the closer an IP's attributes sit to a
// malicious cluster, the higher its reputation score, on a normalized
// 0–10 scale where 10 is most untrustworthy — exactly the input contract
// the paper's policy module expects.
//
// This implementation represents the malicious region as k cluster
// centroids (k-means++ over the malicious training vectors, in min-max
// normalized space) and calibrates the distance-to-score mapping from the
// training data so that the score-5 decision boundary sits midway between
// the median malicious and median benign distances. A kNN-based scorer is
// provided as an alternative model, demonstrating the framework's
// modularity.
package reputation

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"

	"aipow/internal/features"
)

const (
	// MaxScore is the top of the reputation scale (most untrustworthy).
	MaxScore = 10.0

	// DefaultClusters is the default number of malicious centroids,
	// matching the three attack families the dataset generator models.
	DefaultClusters = 3

	// DefaultIterations bounds Lloyd iterations during training.
	DefaultIterations = 50
)

// Typed training failures.
var (
	// ErrNoSamples reports an empty training set.
	ErrNoSamples = errors.New("reputation: no training samples")

	// ErrOneClass reports a training set with only one label present;
	// calibration needs both malicious and benign examples.
	ErrOneClass = errors.New("reputation: training set must contain both classes")

	// ErrMissingAttr reports a scoring request lacking a model attribute.
	ErrMissingAttr = errors.New("reputation: missing attribute")
)

// Sample is one labeled training observation: a full attribute map plus the
// ground-truth label.
type Sample struct {
	Attrs     map[string]float64
	Malicious bool
}

// Scorer is the minimal scoring interface shared by Model and KNN, and the
// shape the core framework consumes.
type Scorer interface {
	// Score maps an attribute vector to a reputation score in [0, MaxScore],
	// where higher means less trustworthy.
	Score(attrs map[string]float64) (float64, error)
}

// AttrVerdictScorer is the map-path twin of features.VerdictScorer: a
// scorer that can report a calibrated confidence alongside the score for a
// plain attribute map. Model and KNN implement it; Decay uses it to weigh
// redemption on the compatibility path.
type AttrVerdictScorer interface {
	VerdictAttrs(attrs map[string]float64) (features.Verdict, error)
}

// Model is a trained DAbR reputation scorer. Obtain one from Train or Load.
// Model is immutable after training and safe for concurrent use.
type Model struct {
	attrNames []string         // canonical (sorted) attribute order
	schema    *features.Schema // interned attrNames layout (nil: no fast path)
	mins      []float64        // per-attribute normalization lower bound
	ranges    []float64        // per-attribute (max-min); 0 marks a dead dimension
	centroids [][]float64      // malicious centroids in normalized space
	scratch   sync.Pool        // *[]float64 vectors for the map-based Score path

	// Calibration anchors: the median nearest-centroid distance of the
	// malicious (distMal) and benign (distBen) training points. Scoring
	// maps distMal → 9 and distBen → 1 linearly (clamped to [0, 10]), so
	// the decision boundary at score 5 sits exactly midway between the
	// class medians and the scale is actually spanned, as DAbR intends.
	distMal, distBen float64

	// Confidence calibration: centroids of the *benign* training class and
	// the class-margin scale. A point's cluster margin is
	// |dBen − dMal| / (dBen + dMal) — near 0 when the point sits in the
	// overlap region both classes occupy (the false-positive tail lives
	// exactly there), near 1 deep inside one class's region. marginCal is
	// the lower-decile (q = 0.10) margin of the malicious training
	// points, so the clear majority of flagged clients calibrate to full
	// confidence and only the genuinely ambiguous tail falls off
	// proportionally. benignCentroids may be empty on models loaded from
	// a pre-verdict file; such models score at confidence 1.
	benignCentroids [][]float64
	marginCal       float64
}

var (
	_ Scorer                 = (*Model)(nil)
	_ features.VectorScorer  = (*Model)(nil)
	_ features.VerdictScorer = (*Model)(nil)
	_ AttrVerdictScorer      = (*Model)(nil)
)

// trainConfig collects Train options.
type trainConfig struct {
	clusters   int
	iterations int
	seed       uint64
}

// TrainOption customizes Train.
type TrainOption func(*trainConfig)

// WithClusters sets the number of malicious centroids (default 3).
func WithClusters(k int) TrainOption {
	return func(c *trainConfig) { c.clusters = k }
}

// WithIterations bounds the k-means Lloyd iterations (default 50).
func WithIterations(n int) TrainOption {
	return func(c *trainConfig) { c.iterations = n }
}

// WithSeed makes training deterministic (default seed 1).
func WithSeed(seed uint64) TrainOption {
	return func(c *trainConfig) { c.seed = seed }
}

// Train fits a Model on labeled samples. Attribute order and normalization
// bounds are derived from the training set; every sample must share the
// same attribute keys as the first one.
func Train(samples []Sample, opts ...TrainOption) (*Model, error) {
	cfg := trainConfig{clusters: DefaultClusters, iterations: DefaultIterations, seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.clusters < 1 {
		return nil, fmt.Errorf("reputation: clusters must be positive, got %d", cfg.clusters)
	}
	if cfg.iterations < 1 {
		return nil, fmt.Errorf("reputation: iterations must be positive, got %d", cfg.iterations)
	}
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}

	attrNames := make([]string, 0, len(samples[0].Attrs))
	for name := range samples[0].Attrs {
		attrNames = append(attrNames, name)
	}
	sort.Strings(attrNames)
	if len(attrNames) == 0 {
		return nil, fmt.Errorf("reputation: samples carry no attributes")
	}

	m := &Model{
		attrNames: attrNames,
		schema:    schemaFor(attrNames),
		mins:      make([]float64, len(attrNames)),
		ranges:    make([]float64, len(attrNames)),
	}

	// Raw vectors in canonical order; validate attribute completeness.
	raw := make([][]float64, len(samples))
	var nMal int
	for i, s := range samples {
		v := make([]float64, len(attrNames))
		for j, name := range attrNames {
			val, ok := s.Attrs[name]
			if !ok {
				return nil, fmt.Errorf("%w: sample %d lacks %q", ErrMissingAttr, i, name)
			}
			v[j] = val
		}
		raw[i] = v
		if s.Malicious {
			nMal++
		}
	}
	if nMal == 0 || nMal == len(samples) {
		return nil, ErrOneClass
	}

	// Min-max bounds over the full training set.
	maxs := make([]float64, len(attrNames))
	for j := range attrNames {
		m.mins[j], maxs[j] = raw[0][j], raw[0][j]
	}
	for _, v := range raw {
		for j, x := range v {
			if x < m.mins[j] {
				m.mins[j] = x
			}
			if x > maxs[j] {
				maxs[j] = x
			}
		}
	}
	for j := range attrNames {
		m.ranges[j] = maxs[j] - m.mins[j]
	}

	// Normalize (in place — raw is not used again), split classes.
	var malicious, benign [][]float64
	for i, v := range raw {
		m.normalizeInPlace(v)
		if samples[i].Malicious {
			malicious = append(malicious, v)
		} else {
			benign = append(benign, v)
		}
	}

	k := cfg.clusters
	if k > len(malicious) {
		k = len(malicious)
	}
	rng := rand.New(rand.NewPCG(cfg.seed, 0xD1B54A32D192ED03))
	centroids, err := kMeans(malicious, k, cfg.iterations, rng)
	if err != nil {
		return nil, fmt.Errorf("reputation: cluster malicious samples: %w", err)
	}
	m.centroids = centroids

	// Benign-region centroids anchor the confidence calibration: the
	// cluster margin needs a distance to *both* class regions to tell an
	// in-cluster malicious point from an overlap point that merely sits
	// near a malicious centroid.
	kb := cfg.clusters
	if kb > len(benign) {
		kb = len(benign)
	}
	benignCentroids, err := kMeans(benign, kb, cfg.iterations, rng)
	if err != nil {
		return nil, fmt.Errorf("reputation: cluster benign samples: %w", err)
	}
	m.benignCentroids = benignCentroids
	m.marginCal = marginQuantile(malicious, centroids, benignCentroids, 0.10)
	if m.marginCal <= 0 {
		// Degenerate geometry (classes collapse onto each other): disable
		// margin scaling rather than divide by zero; boundary separation
		// still shapes the confidence.
		m.marginCal = 1
	}

	// Calibration: anchor the malicious median distance at score 9 and the
	// benign median at score 1. The score-5 boundary then sits midway
	// between the class medians (threshold MaxScore/2 is the natural
	// operating point) and typical class members land near the ends of the
	// scale rather than hugging the middle.
	m.distMal = medianDistance(malicious, centroids)
	m.distBen = medianDistance(benign, centroids)
	if m.distBen <= m.distMal {
		return nil, fmt.Errorf("reputation: classes not separable by distance "+
			"(malicious median %v, benign median %v): cannot calibrate", m.distMal, m.distBen)
	}
	return m, nil
}

// Score maps an attribute map to a reputation score in [0, MaxScore].
// Unknown extra attributes are ignored; missing model attributes are an
// error. The working vector comes from a pool, so the map path allocates
// nothing in steady state.
func (m *Model) Score(attrs map[string]float64) (float64, error) {
	vp, _ := m.scratch.Get().(*[]float64)
	if vp == nil {
		v := make([]float64, len(m.attrNames))
		vp = &v
	}
	v := *vp
	for j, name := range m.attrNames {
		val, ok := attrs[name]
		if !ok {
			m.scratch.Put(vp)
			return 0, fmt.Errorf("%w: %q", ErrMissingAttr, name)
		}
		v[j] = val
	}
	score := m.scoreInPlace(v)
	m.scratch.Put(vp)
	return score, nil
}

// Schema reports the interned layout ScoreVector expects (AttributeNames
// order). It is nil when the model's dimensionality exceeds what a schema
// can hold, disabling the vector fast path.
func (m *Model) Schema() *features.Schema { return m.schema }

// ScoreVector scores a raw-unit vector laid out in AttributeNames order.
// The vector is used as scratch space: its contents are unspecified on
// return.
func (m *Model) ScoreVector(v []float64) (float64, error) {
	if len(v) != len(m.attrNames) {
		return 0, fmt.Errorf("reputation: vector has %d dims, model wants %d", len(v), len(m.attrNames))
	}
	return m.scoreInPlace(v), nil
}

// VerdictVector implements features.VerdictScorer: the calibrated score
// plus the model's confidence in it. Like ScoreVector, v is scratch space.
func (m *Model) VerdictVector(v []float64) (features.Verdict, error) {
	if len(v) != len(m.attrNames) {
		return features.Verdict{}, fmt.Errorf("reputation: vector has %d dims, model wants %d", len(v), len(m.attrNames))
	}
	return m.verdictInPlace(v), nil
}

// VerdictAttrs is the map-path form of VerdictVector (AttrVerdictScorer).
func (m *Model) VerdictAttrs(attrs map[string]float64) (features.Verdict, error) {
	vp, _ := m.scratch.Get().(*[]float64)
	if vp == nil {
		v := make([]float64, len(m.attrNames))
		vp = &v
	}
	v := *vp
	for j, name := range m.attrNames {
		val, ok := attrs[name]
		if !ok {
			m.scratch.Put(vp)
			return features.Verdict{}, fmt.Errorf("%w: %q", ErrMissingAttr, name)
		}
		v[j] = val
	}
	ver := m.verdictInPlace(v)
	m.scratch.Put(vp)
	return ver, nil
}

// scoreInPlace normalizes v in place and maps distance to score through
// the two-anchor calibration: distMal → 9, distBen → 1, linear in between
// and beyond, clamped to [0, MaxScore].
func (m *Model) scoreInPlace(v []float64) float64 {
	m.normalizeInPlace(v)
	return m.scoreNormalized(distToNearest(v, m.centroids))
}

// scoreNormalized maps a nearest-malicious-centroid distance to [0, MaxScore].
func (m *Model) scoreNormalized(d float64) float64 {
	score := 9 - 8*(d-m.distMal)/(m.distBen-m.distMal)
	if score < 0 {
		return 0
	}
	if score > MaxScore {
		return MaxScore
	}
	return score
}

// verdictInPlace normalizes v and derives score and confidence. The
// confidence blends two calibrated terms:
//
//   - cluster margin: |dBen − dMal| / (dBen + dMal), scaled so the median
//     malicious training point maps to 1. Points in the class-overlap
//     region — where the scorer's false positives live — have margin near
//     0 regardless of how high they score.
//   - boundary separation: how far the calibrated score sits from the
//     score-5 decision boundary, in half-scale units.
//
// The margin dominates (the boundary term only shades): a score can be
// extreme and still carry low confidence when the point is geometrically
// ambiguous between the classes.
func (m *Model) verdictInPlace(v []float64) features.Verdict {
	m.normalizeInPlace(v)
	dMal := distToNearest(v, m.centroids)
	score := m.scoreNormalized(dMal)
	if len(m.benignCentroids) == 0 {
		return features.Verdict{Score: score, Confidence: 1}
	}
	dBen := distToNearest(v, m.benignCentroids)
	margin := classMargin(dMal, dBen) / m.marginCal
	if margin > 1 {
		margin = 1
	}
	// Full boundary separation at the calibration anchors (score 9 / 1),
	// matching the distance calibration: a score at or beyond an anchor
	// is as far from the decision boundary as the training classes get.
	boundary := math.Abs(score-5) / 4
	if boundary > 1 {
		boundary = 1
	}
	// The boundary term only shades (by up to a quarter): a typical
	// in-cluster member must calibrate to near-full confidence, or
	// shaping would soften correctly-flagged clients as much as the
	// ambiguous ones it exists for.
	conf := margin * (0.75 + 0.25*boundary)
	if conf > 1 {
		conf = 1
	}
	return features.Verdict{Score: score, Confidence: conf}
}

// classMargin is the relative separation between the two class-region
// distances, in [0, 1]: 0 when equidistant (maximally ambiguous), →1 deep
// inside one region.
func classMargin(dMal, dBen float64) float64 {
	sum := dMal + dBen
	if sum <= 0 {
		return 0
	}
	return math.Abs(dBen-dMal) / sum
}

// marginQuantile is the q-quantile of the class margin over points — the
// calibration scale. Train anchors at the lower decile (q = 0.10) of the
// malicious class, mapping ~90% of flagged clients to full confidence
// and reserving shading for the points the model's own training set
// marks as ambiguous: calibrating higher (median, quartile) measurably
// shades correctly flagged clients, softening the defense where it is
// right (the suite's attacker-cost medians regressed at both).
func marginQuantile(points, malCentroids, benCentroids [][]float64, q float64) float64 {
	if len(points) == 0 {
		return 0
	}
	ms := make([]float64, len(points))
	for i, p := range points {
		ms[i] = classMargin(distToNearest(p, malCentroids), distToNearest(p, benCentroids))
	}
	sort.Float64s(ms)
	idx := int(q * float64(len(ms)-1))
	return ms[idx]
}

// normalizeInPlace maps a raw vector into [0,1]^d using the training
// bounds, clamping out-of-range values. Dead dimensions (zero range) map
// to 0.
func (m *Model) normalizeInPlace(v []float64) {
	for j, x := range v {
		if m.ranges[j] == 0 {
			v[j] = 0
			continue
		}
		n := (x - m.mins[j]) / m.ranges[j]
		if n < 0 {
			n = 0
		} else if n > 1 {
			n = 1
		}
		v[j] = n
	}
}

// schemaFor interns names as a schema, or nil when they cannot form one
// (e.g. more attributes than a coverage mask can track) — the model then
// simply serves the map-based path only.
func schemaFor(names []string) *features.Schema {
	s, err := features.NewSchema(names...)
	if err != nil {
		return nil
	}
	return s
}

// AttributeNames returns the model's canonical attribute order as a copy.
func (m *Model) AttributeNames() []string {
	out := make([]string, len(m.attrNames))
	copy(out, m.attrNames)
	return out
}

// Clusters reports the number of malicious centroids.
func (m *Model) Clusters() int { return len(m.centroids) }

// Calibration reports the distance anchors (malicious median, benign
// median) the score mapping was fitted to, for diagnostics.
func (m *Model) Calibration() (distMal, distBen float64) {
	return m.distMal, m.distBen
}

// euclidean returns the L2 distance between equal-length vectors.
func euclidean(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

// distToNearest returns the distance from p to the nearest centroid.
func distToNearest(p []float64, centroids [][]float64) float64 {
	best := math.Inf(1)
	for _, c := range centroids {
		if d := euclidean(p, c); d < best {
			best = d
		}
	}
	return best
}

// medianDistance returns the median nearest-centroid distance over points.
func medianDistance(points [][]float64, centroids [][]float64) float64 {
	if len(points) == 0 {
		return 0
	}
	ds := make([]float64, len(points))
	for i, p := range points {
		ds[i] = distToNearest(p, centroids)
	}
	sort.Float64s(ds)
	n := len(ds)
	if n%2 == 1 {
		return ds[n/2]
	}
	return (ds[n/2-1] + ds[n/2]) / 2
}
