package reputation

import (
	"testing"
)

func BenchmarkTrain(b *testing.B) {
	samples := toySamples(500, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelScore(b *testing.B) {
	m, err := Train(toySamples(500, 1))
	if err != nil {
		b.Fatal(err)
	}
	probe := map[string]float64{"x": 4.2, "y": 7.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Score(probe); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNScore(b *testing.B) {
	knn, err := NewKNN(toySamples(500, 1), 15)
	if err != nil {
		b.Fatal(err)
	}
	probe := map[string]float64{"x": 4.2, "y": 7.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knn.Score(probe); err != nil {
			b.Fatal(err)
		}
	}
}
