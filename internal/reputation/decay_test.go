package reputation

import (
	"math"
	"testing"

	"aipow/internal/features"
)

// stubScorer is a fixed-verdict inner scorer over a one-attribute schema.
type stubScorer struct {
	schema *features.Schema
	ver    features.Verdict
}

func newStubScorer(t *testing.T, score, conf float64) *stubScorer {
	t.Helper()
	schema, err := features.NewSchema("static_x")
	if err != nil {
		t.Fatal(err)
	}
	return &stubScorer{schema: schema, ver: features.Verdict{Score: score, Confidence: conf}}
}

func (s *stubScorer) Score(map[string]float64) (float64, error)         { return s.ver.Score, nil }
func (s *stubScorer) Schema() *features.Schema                          { return s.schema }
func (s *stubScorer) ScoreVector([]float64) (float64, error)            { return s.ver.Score, nil }
func (s *stubScorer) VerdictVector([]float64) (features.Verdict, error) { return s.ver, nil }
func (s *stubScorer) VerdictAttrs(map[string]float64) (features.Verdict, error) {
	return s.ver, nil
}

// evidenceVec builds a Decay-schema vector with the given evidence.
func evidenceVec(t *testing.T, d *Decay, credit, failStreak, failRatio, rate, interArrival float64) []float64 {
	t.Helper()
	v := d.Schema().NewVector()
	set := func(name string, val float64) {
		j, ok := d.Schema().Index(name)
		if !ok {
			t.Fatalf("decay schema missing %q", name)
		}
		v[j] = val
	}
	set(features.AttrSolveCredit, credit)
	set(features.AttrFailStreak, failStreak)
	set(features.AttrFailRatioTotal, failRatio)
	set(features.AttrRequestRate, rate)
	set(features.AttrInterArrival, interArrival)
	return v
}

func TestDecaySchemaExtendsInner(t *testing.T) {
	d, err := NewDecay(newStubScorer(t, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"static_x", features.AttrSolveCredit, features.AttrFailStreak,
		features.AttrFailRatioTotal, features.AttrRequestRate, features.AttrInterArrival}
	got := d.Schema().Names()
	if len(got) != len(want) {
		t.Fatalf("schema %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schema %v, want %v", got, want)
		}
	}
}

func TestDecayRedemptionSaturatesWithCredit(t *testing.T) {
	d, err := NewDecay(newStubScorer(t, 8.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	clean := func(credit float64) float64 {
		ver, err := d.VerdictVector(evidenceVec(t, d, credit, 0, 0, 0.1, 10000))
		if err != nil {
			t.Fatal(err)
		}
		return ver.Score
	}
	noCredit := clean(0)
	if noCredit != 8.5 {
		t.Fatalf("score with no credit = %v, want 8.5 (no redemption)", noCredit)
	}
	some, lots := clean(DefaultHalfCredit), clean(1e6)
	if !(lots < some && some < noCredit) {
		t.Fatalf("redemption not monotone in credit: %v, %v, %v", noCredit, some, lots)
	}
	// Half credit earns half the maximum drop; huge credit approaches it.
	if want := 8.5 - DefaultMaxRedemption/2; math.Abs(some-want) > 1e-9 {
		t.Errorf("half-credit score = %v, want %v", some, want)
	}
	if want := 8.5 - DefaultMaxRedemption; math.Abs(lots-want) > 0.2 {
		t.Errorf("saturated score = %v, want ≈%v", lots, want)
	}
	// Confidence passes through untouched.
	ver, _ := d.VerdictVector(evidenceVec(t, d, 100, 0, 0, 0.1, 10000))
	if ver.Confidence != 0.5 {
		t.Errorf("confidence = %v, want inner 0.5", ver.Confidence)
	}
}

func TestDecayGatesCancelRedemption(t *testing.T) {
	d, err := NewDecay(newStubScorer(t, 8.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name                                       string
		credit, failStreak, failRatio, rate, inter float64
		wantFull                                   bool // full (ungated) redemption expected
	}{
		{"clean slow client", 1e6, 0, 0, 0.1, 10000, true},
		{"verify fail streak", 1e6, DefaultMaxFailStreak, 0, 0.1, 10000, false},
		{"high fail ratio", 1e6, 0, DefaultFailRatioTolerance, 0.1, 10000, false},
		{"flooding rate", 1e6, 0, 0, DefaultRateTolerance, 10000, false},
		{"tight inter-arrival", 1e6, 0, 0, 0.1, DefaultInterArrivalTolerance / 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ver, err := d.VerdictVector(evidenceVec(t, d, tc.credit, tc.failStreak, tc.failRatio, tc.rate, tc.inter))
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantFull && ver.Score > 8.5-DefaultMaxRedemption+0.2 {
				t.Errorf("score %v: expected near-full redemption", ver.Score)
			}
			if !tc.wantFull && ver.Score != 8.5 {
				t.Errorf("score %v: expected the gate to cancel redemption entirely", ver.Score)
			}
		})
	}
}

// TestDecayKneeGates pins the soft knee: fully open while the signal is
// clearly inside tolerance, zero at it — no partial discount for a
// clearly-fast solver.
func TestDecayKneeGates(t *testing.T) {
	d, err := NewDecay(newStubScorer(t, 8.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	at := func(rate float64) float64 {
		ver, err := d.VerdictVector(evidenceVec(t, d, 1e9, 0, 0, rate, 1e9))
		if err != nil {
			t.Fatal(err)
		}
		return 8.5 - ver.Score // the drop
	}
	if drop := at(DefaultRateTolerance / 2); drop < DefaultMaxRedemption*0.99 {
		t.Errorf("drop at half tolerance = %v, want fully open (≈%v)", drop, DefaultMaxRedemption)
	}
	mid := at(DefaultRateTolerance * 0.75)
	if !(mid > 0 && mid < DefaultMaxRedemption) {
		t.Errorf("drop between knee and tolerance = %v, want partial", mid)
	}
	if drop := at(DefaultRateTolerance); drop != 0 {
		t.Errorf("drop at tolerance = %v, want 0", drop)
	}
}

func TestDecayMapPathMatchesVector(t *testing.T) {
	d, err := NewDecay(newStubScorer(t, 9, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[string]float64{
		"static_x":                  1,
		features.AttrSolveCredit:    40,
		features.AttrFailStreak:     0,
		features.AttrFailRatioTotal: 0,
		features.AttrRequestRate:    0.2,
		features.AttrInterArrival:   5000,
	}
	mv, err := d.VerdictAttrs(attrs)
	if err != nil {
		t.Fatal(err)
	}
	vv, err := d.VerdictVector(evidenceVec(t, d, 40, 0, 0, 0.2, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if mv != vv {
		t.Fatalf("map verdict %+v != vector verdict %+v", mv, vv)
	}
	// Missing evidence attributes mean zero evidence: no redemption.
	bare, err := d.Score(map[string]float64{"static_x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if bare != 9 {
		t.Errorf("score without evidence attrs = %v, want 9", bare)
	}
}

func TestDecayScoreNeverNegative(t *testing.T) {
	d, err := NewDecay(newStubScorer(t, 1, 1), WithMaxRedemption(10))
	if err != nil {
		t.Fatal(err)
	}
	ver, err := d.VerdictVector(evidenceVec(t, d, 1e9, 0, 0, 0.1, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	if ver.Score < 0 {
		t.Errorf("score %v went negative", ver.Score)
	}
}

func TestDecayValidation(t *testing.T) {
	stub := newStubScorer(t, 5, 1)
	cases := []struct {
		name string
		opts []DecayOption
	}{
		{"negative max redemption", []DecayOption{WithMaxRedemption(-1)}},
		{"excess max redemption", []DecayOption{WithMaxRedemption(11)}},
		{"zero half credit", []DecayOption{WithHalfCredit(0)}},
		{"bad fail ratio tol", []DecayOption{WithFailRatioTolerance(1.5)}},
		{"zero fail streak", []DecayOption{WithMaxFailStreak(0)}},
		{"zero rate tol", []DecayOption{WithRateTolerance(0)}},
		{"zero inter-arrival tol", []DecayOption{WithInterArrivalTolerance(0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewDecay(stub, tc.opts...); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if _, err := NewDecay(nil); err == nil {
		t.Error("want error for nil inner")
	}
}

// TestDecayOverModel wires the real trained model underneath: the
// redeemed verdict keeps the model's confidence, and evidence moves a
// high-scoring sample into a lower band.
func TestDecayOverModel(t *testing.T) {
	m, samples := trainedModel(t)
	d, err := NewDecay(m)
	if err != nil {
		t.Fatal(err)
	}
	var tail map[string]float64
	for _, s := range samples {
		if ver, _ := m.VerdictAttrs(s.Attrs); ver.Score > 8 {
			tail = s.Attrs
			break
		}
	}
	if tail == nil {
		t.Fatal("no tail sample in fixture")
	}
	attrs := make(map[string]float64, len(tail)+5)
	for k, v := range tail {
		attrs[k] = v
	}
	attrs[features.AttrSolveCredit] = 200
	attrs[features.AttrFailStreak] = 0
	attrs[features.AttrFailRatioTotal] = 0
	attrs[features.AttrRequestRate] = 0.3
	attrs[features.AttrInterArrival] = 3300
	redeemed, err := d.VerdictAttrs(attrs)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := m.VerdictAttrs(tail)
	if redeemed.Score >= raw.Score-3 {
		t.Errorf("redeemed score %v vs raw %v: evidence barely moved it", redeemed.Score, raw.Score)
	}
	if redeemed.Confidence != raw.Confidence {
		t.Errorf("confidence changed: %v != %v", redeemed.Confidence, raw.Confidence)
	}
}
