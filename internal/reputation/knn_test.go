package reputation

import (
	"errors"
	"testing"
)

func TestNewKNNValidation(t *testing.T) {
	if _, err := NewKNN(nil, 3); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
	if _, err := NewKNN(toySamples(3, 1), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad := []Sample{
		{Attrs: map[string]float64{"x": 1, "y": 2}, Malicious: true},
		{Attrs: map[string]float64{"x": 1}, Malicious: false},
	}
	if _, err := NewKNN(bad, 1); !errors.Is(err, ErrMissingAttr) {
		t.Fatalf("err = %v, want ErrMissingAttr", err)
	}
}

func TestKNNClampsK(t *testing.T) {
	knn, err := NewKNN(toySamples(2, 1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if knn.K() != 4 { // toySamples(2,·) yields 4 samples
		t.Fatalf("K() = %d, want 4", knn.K())
	}
}

func TestKNNScoresSeparateClasses(t *testing.T) {
	knn, err := NewKNN(toySamples(50, 3), 5)
	if err != nil {
		t.Fatal(err)
	}
	mal, err := knn.Score(map[string]float64{"x": 10, "y": 10})
	if err != nil {
		t.Fatal(err)
	}
	ben, err := knn.Score(map[string]float64{"x": 0, "y": 0})
	if err != nil {
		t.Fatal(err)
	}
	if mal != MaxScore {
		t.Errorf("malicious-core kNN score = %v, want %v", mal, MaxScore)
	}
	if ben != 0 {
		t.Errorf("benign-core kNN score = %v, want 0", ben)
	}
}

func TestKNNScoreMissingAttr(t *testing.T) {
	knn, err := NewKNN(toySamples(5, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := knn.Score(map[string]float64{"x": 1}); !errors.Is(err, ErrMissingAttr) {
		t.Fatalf("err = %v, want ErrMissingAttr", err)
	}
}

func TestKNNMidpointIsMixed(t *testing.T) {
	knn, err := NewKNN(toySamples(50, 4), 10)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := knn.Score(map[string]float64{"x": 5, "y": 5})
	if err != nil {
		t.Fatal(err)
	}
	if mid < 0 || mid > MaxScore {
		t.Fatalf("midpoint score %v outside range", mid)
	}
}

func TestKNNSatisfiesScorer(t *testing.T) {
	knn, err := NewKNN(toySamples(5, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	var s Scorer = knn
	if _, err := s.Score(map[string]float64{"x": 1, "y": 1}); err != nil {
		t.Fatal(err)
	}
}
