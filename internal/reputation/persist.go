package reputation

import (
	"encoding/json"
	"fmt"
	"io"
)

// Persisted format versions. Version 1 predates scoring verdicts; version
// 2 adds the confidence calibration (benign centroids + margin scale).
// Load accepts both — a v1 model simply scores at confidence 1, exactly
// its pre-verdict behavior.
const (
	modelFileVersion   = 2
	modelFileVersionV1 = 1
)

// modelJSON is the on-disk representation of a trained Model.
type modelJSON struct {
	Version   int         `json:"version"`
	AttrNames []string    `json:"attr_names"`
	Mins      []float64   `json:"mins"`
	Ranges    []float64   `json:"ranges"`
	Centroids [][]float64 `json:"centroids"`
	DistMal   float64     `json:"dist_malicious_median"`
	DistBen   float64     `json:"dist_benign_median"`

	// Confidence calibration (version ≥ 2).
	BenignCentroids [][]float64 `json:"benign_centroids,omitempty"`
	MarginCal       float64     `json:"margin_calibration,omitempty"`
}

// Save writes the model as JSON. The format is stable across releases
// within the same major version.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(modelJSON{
		Version:         modelFileVersion,
		AttrNames:       m.attrNames,
		Mins:            m.mins,
		Ranges:          m.ranges,
		Centroids:       m.centroids,
		DistMal:         m.distMal,
		DistBen:         m.distBen,
		BenignCentroids: m.benignCentroids,
		MarginCal:       m.marginCal,
	}); err != nil {
		return fmt.Errorf("reputation: encode model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save, validating structural
// consistency so a corrupt file fails loudly instead of mis-scoring.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("reputation: decode model: %w", err)
	}
	if mj.Version != modelFileVersion && mj.Version != modelFileVersionV1 {
		return nil, fmt.Errorf("reputation: unsupported model file version %d", mj.Version)
	}
	dim := len(mj.AttrNames)
	if dim == 0 {
		return nil, fmt.Errorf("reputation: model has no attributes")
	}
	if len(mj.Mins) != dim || len(mj.Ranges) != dim {
		return nil, fmt.Errorf("reputation: normalization bounds have wrong dimension")
	}
	if len(mj.Centroids) == 0 {
		return nil, fmt.Errorf("reputation: model has no centroids")
	}
	for i, c := range mj.Centroids {
		if len(c) != dim {
			return nil, fmt.Errorf("reputation: centroid %d has dimension %d, want %d", i, len(c), dim)
		}
	}
	if mj.DistMal < 0 || mj.DistBen <= mj.DistMal {
		return nil, fmt.Errorf("reputation: invalid calibration anchors (mal %v, ben %v)",
			mj.DistMal, mj.DistBen)
	}
	for i := 1; i < dim; i++ {
		if mj.AttrNames[i-1] >= mj.AttrNames[i] {
			return nil, fmt.Errorf("reputation: attribute names not in canonical order")
		}
	}
	for i, c := range mj.BenignCentroids {
		if len(c) != dim {
			return nil, fmt.Errorf("reputation: benign centroid %d has dimension %d, want %d", i, len(c), dim)
		}
	}
	if len(mj.BenignCentroids) > 0 && mj.MarginCal <= 0 {
		return nil, fmt.Errorf("reputation: benign centroids without a positive margin calibration")
	}
	return &Model{
		attrNames:       mj.AttrNames,
		schema:          schemaFor(mj.AttrNames),
		mins:            mj.Mins,
		ranges:          mj.Ranges,
		centroids:       mj.Centroids,
		distMal:         mj.DistMal,
		distBen:         mj.DistBen,
		benignCentroids: mj.BenignCentroids,
		marginCal:       mj.MarginCal,
	}, nil
}
