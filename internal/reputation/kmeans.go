package reputation

import (
	"errors"
	"math"
	"math/rand/v2"
)

// errNoPoints reports a k-means call without data.
var errNoPoints = errors.New("k-means: no points")

// kMeans clusters points into k centroids using k-means++ seeding followed
// by at most iters Lloyd iterations. It returns the centroids; cluster
// membership is implied by nearest-centroid. Points must share one
// dimensionality. k is clamped to len(points) by the caller.
func kMeans(points [][]float64, k, iters int, rng *rand.Rand) ([][]float64, error) {
	if len(points) == 0 {
		return nil, errNoPoints
	}
	if k < 1 {
		k = 1
	}
	if k > len(points) {
		k = len(points)
	}
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))

	for iter := 0; iter < iters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := euclidean(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		recomputeCentroids(points, assign, centroids, rng)
	}
	return centroids, nil
}

// seedPlusPlus picks k initial centroids with k-means++ (D² weighting),
// which avoids the degenerate all-in-one-cluster starts plain random
// seeding produces on imbalanced family sizes.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.IntN(len(points))]
	centroids = append(centroids, cloneVec(first))

	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := distToNearest(p, centroids)
			d2[i] = d * d
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with a centroid; duplicate one.
			centroids = append(centroids, cloneVec(points[rng.IntN(len(points))]))
			continue
		}
		target := rng.Float64() * total
		var acc float64
		chosen := len(points) - 1
		for i, w := range d2 {
			acc += w
			if acc >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, cloneVec(points[chosen]))
	}
	return centroids
}

// recomputeCentroids moves each centroid to the mean of its assigned
// points; empty clusters are reseeded to the point farthest from its
// centroid, the standard fix that keeps k live clusters.
func recomputeCentroids(points [][]float64, assign []int, centroids [][]float64, rng *rand.Rand) {
	dim := len(points[0])
	sums := make([][]float64, len(centroids))
	counts := make([]int, len(centroids))
	for c := range centroids {
		sums[c] = make([]float64, dim)
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		for j, x := range p {
			sums[c][j] += x
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			centroids[c] = cloneVec(farthestPoint(points, centroids, rng))
			continue
		}
		for j := range sums[c] {
			centroids[c][j] = sums[c][j] / float64(counts[c])
		}
	}
}

// farthestPoint returns the point with the largest nearest-centroid
// distance, breaking ties arbitrarily; rng breaks the all-zero tie.
func farthestPoint(points [][]float64, centroids [][]float64, rng *rand.Rand) []float64 {
	best := points[rng.IntN(len(points))]
	bestD := -1.0
	for _, p := range points {
		if d := distToNearest(p, centroids); d > bestD {
			best, bestD = p, d
		}
	}
	return best
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
