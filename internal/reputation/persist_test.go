package reputation

import (
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := trainToy(t, WithClusters(2), WithSeed(3))
	var b strings.Builder
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	probes := []map[string]float64{
		{"x": 0, "y": 0},
		{"x": 10, "y": 10},
		{"x": 3.7, "y": 8.1},
	}
	for _, p := range probes {
		want, err := m.Score(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Score(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Score(%v) after reload = %v, want %v", p, got, want)
		}
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"not_json", "]["},
		{"wrong_version", `{"version":99,"attr_names":["x"],"mins":[0],"ranges":[1],"centroids":[[0.5]],"dist_malicious_median":0.1,"dist_benign_median":0.9}`},
		{"no_attrs", `{"version":1,"attr_names":[],"mins":[],"ranges":[],"centroids":[[0.5]],"dist_malicious_median":0.1,"dist_benign_median":0.9}`},
		{"bad_bounds_dim", `{"version":1,"attr_names":["x"],"mins":[0,1],"ranges":[1],"centroids":[[0.5]],"dist_malicious_median":0.1,"dist_benign_median":0.9}`},
		{"no_centroids", `{"version":1,"attr_names":["x"],"mins":[0],"ranges":[1],"centroids":[],"dist_malicious_median":0.1,"dist_benign_median":0.9}`},
		{"bad_centroid_dim", `{"version":1,"attr_names":["x"],"mins":[0],"ranges":[1],"centroids":[[0.5,0.5]],"dist_malicious_median":0.1,"dist_benign_median":0.9}`},
		{"inverted_anchors", `{"version":1,"attr_names":["x"],"mins":[0],"ranges":[1],"centroids":[[0.5]],"dist_malicious_median":0.9,"dist_benign_median":0.1}`},
		{"negative_anchor", `{"version":1,"attr_names":["x"],"mins":[0],"ranges":[1],"centroids":[[0.5]],"dist_malicious_median":-1,"dist_benign_median":0.5}`},
		{"unsorted_attrs", `{"version":1,"attr_names":["y","x"],"mins":[0,0],"ranges":[1,1],"centroids":[[0.5,0.5]],"dist_malicious_median":0.1,"dist_benign_median":0.9}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.in)); err == nil {
				t.Fatal("corrupt model accepted")
			}
		})
	}
}
