package reputation

import (
	"fmt"
	"math"
	"sync/atomic"

	"aipow/internal/features"
)

// Decay defaults.
const (
	// DefaultMaxRedemption is the largest score attenuation sustained
	// solve evidence can earn. 6 points moves a tail-dwelling false
	// positive (score 8–9, difficulty 13–15 under Policy 2) down to the
	// ordinary-client band (score 2–3, difficulty 7–8) — and bounds the
	// discount any paying attacker can buy.
	DefaultMaxRedemption = 6.0

	// DefaultHalfCredit is the solve credit at which half the maximum
	// redemption applies (the saturation constant). 26 ≈ two solved
	// difficulty-13 challenges: redemption ramps over the first few
	// expensive solves instead of flipping on the first.
	DefaultHalfCredit = 26.0

	// DefaultFailRatioTolerance is the lifetime 4xx-failure ratio at
	// which redemption is fully cancelled. Probing clients (credential
	// stuffing, path scanning) fail a large fraction of their requests;
	// their solve evidence must not buy them cheaper puzzles. The gate
	// reads the *lifetime* ratio (features.AttrFailRatioTotal), not the
	// windowed one: a slow prober fits whole clean spells inside a short
	// window, but its lifetime ratio converges within a few requests.
	DefaultFailRatioTolerance = 0.25

	// DefaultMaxFailStreak is the consecutive failed-verification count
	// at which redemption is cancelled: forged or replayed solutions are
	// direct protocol abuse.
	DefaultMaxFailStreak = 3

	// DefaultRateTolerance is the live request rate (requests/s) at which
	// redemption is fully cancelled. This gate is what keeps redemption
	// from being farmable: a flooding client earns solve credit *faster*
	// than a legitimate one (it solves more puzzles), so credit volume
	// alone would hand the biggest discount to the busiest attacker.
	// Tying redemption to a modest live rate restricts it to clients
	// whose behavior is unremarkable — the misscored-benign shape —
	// while volume-priced suspicion stays with the rate scorer.
	DefaultRateTolerance = 1.0

	// DefaultInterArrivalTolerance is the typical request gap
	// (milliseconds, EWMA) at which redemption is fully open; tighter
	// gaps close it linearly. The windowed rate estimate dilutes across
	// pulse gaps — an on-off attacker can keep it under any tolerance —
	// but the per-request inter-arrival EWMA converges within a few
	// requests of a burst starting, so it closes the gate exactly when
	// the rate window is still blind.
	DefaultInterArrivalTolerance = 2000.0
)

// Decay wraps a scorer with behavioral redemption: an IP that keeps
// solving and redeeming the puzzles it is handed — while staying otherwise
// clean — earns an attenuation of its effective score, so a misscored
// legitimate client works its way out of the false-positive tail instead
// of paying the worst-case difficulty for as long as the feed misjudges
// it. The evidence is the tracker's half-life-decayed solve credit
// (features.AttrSolveCredit, written by Framework.Verify), so redemption
// is deterministic and clock-injected: stop solving for a half-life and
// half the earned attenuation is gone.
//
// Redemption is deliberately *evidence*-priced, not trust-priced: an
// attacker can buy the same attenuation, but only by actually paying the
// full tail difficulty first and continuously (the credit decays), while
// the gates cancel redemption for clients showing abuse signals — a
// failed-verification streak (forged solutions) or a high live failure
// ratio (probing) — and live rate-based suspicion is layered *outside*
// this wrapper, so a currently-flooding client keeps its behavioral price
// regardless of credit.
//
// The attenuation is
//
//	drop = MaxRedemption × credit/(credit+HalfCredit) × cleanliness
//
// with cleanliness the most restrictive of the behavioral gates: it falls
// linearly to 0 as the live failure ratio approaches FailRatioTolerance
// or the live request rate approaches RateTolerance, and is 0 while the
// verification fail streak is at or beyond MaxFailStreak.
//
// Decay publishes the inner scorer's schema extended with the evidence
// attributes, implements the verdict fast path (confidence passes through
// from the inner scorer), and is safe for concurrent use if its inner
// scorer is.
type Decay struct {
	scorer  Scorer                 // inner map path
	vec     features.VectorScorer  // inner vector path
	verdict features.VerdictScorer // nil: inner verdicts at confidence 1
	attrVer AttrVerdictScorer      // nil: map-path verdicts at confidence 1

	schema    *features.Schema
	innerLen  int
	credSlot  int
	failSlot  int // verification fail streak
	ratioSlot int // lifetime 4xx failure ratio
	rateSlot  int // live request rate
	iaSlot    int // live inter-arrival EWMA (ms)

	maxDrop       float64
	halfCredit    float64
	failRatioTol  float64
	maxFailStreak float64
	rateTol       float64
	iaTolMS       float64

	// Precomputed gate slopes, derived from the tolerances once at
	// construction (and therefore rebuilt into the RCU snapshot at swap
	// time): each soft-knee gate clamp(2 - 2·x/tol) / clamp(2·x/tol - 1)
	// reduces to one multiply-add on the hot path instead of a divide and
	// the knee-function call.
	failK float64 // 2 / failRatioTol
	rateK float64 // 2 / rateTol
	iaK   float64 // 2 / iaTolMS

	// memo caches the inner scorer's verdicts keyed on the raw inner
	// subvector. Scorers are pure (same vector → same verdict), so the
	// cache is semantically invisible — it exists because the inner
	// verdict (normalization plus two nearest-centroid passes) is the
	// expensive half of a redemption-wrapped Decide, while the evidence
	// slots that actually change between a client's requests only feed
	// the cheap attenuation arithmetic below. Steady-state scoring of a
	// client whose feed attributes are unchanged therefore skips the
	// model entirely. Nil when the inner vector is too wide to key.
	memo *innerMemo
}

// Inner-verdict memo geometry: a direct-mapped, power-of-two slot table of
// immutable entries swapped in with atomic pointers (lock-free, race-free;
// a lost racing store just means one extra recompute). 256 slots cover a
// serving shard's hot client set; collisions only cost the memoized
// speedup, never correctness.
const (
	memoSlots   = 256
	memoMaxDims = 16
)

// memoEntry is one immutable cached verdict with its full key.
type memoEntry struct {
	n   int
	vec [memoMaxDims]float64
	ver features.Verdict
}

// innerMemo is the slot table. The zero value is ready to use.
type innerMemo struct {
	slots [memoSlots]atomic.Pointer[memoEntry]
}

// slotFor hashes the raw vector (FNV-1a over the float bit patterns) to a
// slot. NaN keys hash fine and can never match on compare (NaN != NaN), so
// they degrade to always-recompute instead of poisoning a slot.
func (m *innerMemo) slotFor(v []float64) *atomic.Pointer[memoEntry] {
	h := uint64(14695981039346656037)
	for _, x := range v {
		h ^= math.Float64bits(x)
		h *= 1099511628211
	}
	return &m.slots[(uint32(h>>32)^uint32(h))&(memoSlots-1)]
}

// lookup returns the cached verdict for v, and the slot to fill on a miss.
func (m *innerMemo) lookup(v []float64) (features.Verdict, *atomic.Pointer[memoEntry], bool) {
	slot := m.slotFor(v)
	e := slot.Load()
	if e == nil || e.n != len(v) {
		return features.Verdict{}, slot, false
	}
	for i, x := range v {
		if e.vec[i] != x {
			return features.Verdict{}, slot, false
		}
	}
	return e.ver, slot, true
}

var (
	_ Scorer                 = (*Decay)(nil)
	_ features.VectorScorer  = (*Decay)(nil)
	_ features.VerdictScorer = (*Decay)(nil)
	_ AttrVerdictScorer      = (*Decay)(nil)
)

// DecayOption customizes NewDecay.
type DecayOption func(*Decay)

// WithMaxRedemption sets the largest score attenuation evidence can earn.
func WithMaxRedemption(drop float64) DecayOption {
	return func(d *Decay) { d.maxDrop = drop }
}

// WithHalfCredit sets the solve credit at which half the maximum
// redemption applies.
func WithHalfCredit(credit float64) DecayOption {
	return func(d *Decay) { d.halfCredit = credit }
}

// WithFailRatioTolerance sets the lifetime failure ratio at which
// redemption is fully cancelled.
func WithFailRatioTolerance(ratio float64) DecayOption {
	return func(d *Decay) { d.failRatioTol = ratio }
}

// WithMaxFailStreak sets the failed-verification streak that cancels
// redemption.
func WithMaxFailStreak(n int) DecayOption {
	return func(d *Decay) { d.maxFailStreak = float64(n) }
}

// WithRateTolerance sets the live request rate (requests/s) at which
// redemption is fully cancelled.
func WithRateTolerance(rps float64) DecayOption {
	return func(d *Decay) { d.rateTol = rps }
}

// WithInterArrivalTolerance sets the typical request gap (milliseconds)
// at which redemption is fully open.
func WithInterArrivalTolerance(ms float64) DecayOption {
	return func(d *Decay) { d.iaTolMS = ms }
}

// NewDecay wraps inner with behavioral redemption. The inner scorer must
// support the vector fast path with a non-nil schema — redemption reads
// the tracker's evidence attributes through schema slots — and must also
// implement the map-path Scorer interface for the compatibility path.
func NewDecay(inner features.VectorScorer, opts ...DecayOption) (*Decay, error) {
	if inner == nil {
		return nil, fmt.Errorf("reputation: decay requires an inner scorer")
	}
	scorer, ok := inner.(Scorer)
	if !ok {
		return nil, fmt.Errorf("reputation: decay inner scorer must also implement the map-path Score")
	}
	is := inner.Schema()
	if is == nil {
		return nil, fmt.Errorf("reputation: decay inner scorer publishes no schema (vector fast path required)")
	}
	names := append(is.Names(),
		features.AttrSolveCredit, features.AttrFailStreak, features.AttrFailRatioTotal,
		features.AttrRequestRate, features.AttrInterArrival)
	schema, err := features.NewSchema(names...)
	if err != nil {
		return nil, fmt.Errorf("reputation: decay schema: %w", err)
	}
	d := &Decay{
		scorer:        scorer,
		vec:           inner,
		schema:        schema,
		innerLen:      is.Len(),
		credSlot:      is.Len(),
		failSlot:      is.Len() + 1,
		ratioSlot:     is.Len() + 2,
		rateSlot:      is.Len() + 3,
		iaSlot:        is.Len() + 4,
		maxDrop:       DefaultMaxRedemption,
		halfCredit:    DefaultHalfCredit,
		failRatioTol:  DefaultFailRatioTolerance,
		maxFailStreak: DefaultMaxFailStreak,
		rateTol:       DefaultRateTolerance,
		iaTolMS:       DefaultInterArrivalTolerance,
	}
	d.verdict, _ = inner.(features.VerdictScorer)
	d.attrVer, _ = inner.(AttrVerdictScorer)
	for _, opt := range opts {
		opt(d)
	}
	if d.maxDrop < 0 || d.maxDrop > MaxScore {
		return nil, fmt.Errorf("reputation: max redemption %v outside [0, %v]", d.maxDrop, MaxScore)
	}
	if d.halfCredit <= 0 {
		return nil, fmt.Errorf("reputation: half credit must be positive, got %v", d.halfCredit)
	}
	if d.failRatioTol <= 0 || d.failRatioTol > 1 {
		return nil, fmt.Errorf("reputation: fail ratio tolerance %v outside (0, 1]", d.failRatioTol)
	}
	if d.maxFailStreak < 1 {
		return nil, fmt.Errorf("reputation: max fail streak must be at least 1, got %v", d.maxFailStreak)
	}
	if d.rateTol <= 0 {
		return nil, fmt.Errorf("reputation: rate tolerance must be positive, got %v", d.rateTol)
	}
	if d.iaTolMS <= 0 {
		return nil, fmt.Errorf("reputation: inter-arrival tolerance must be positive, got %v", d.iaTolMS)
	}
	d.failK = 2 / d.failRatioTol
	d.rateK = 2 / d.rateTol
	d.iaK = 2 / d.iaTolMS
	if d.innerLen <= memoMaxDims {
		d.memo = &innerMemo{}
	}
	return d, nil
}

// redemption computes the score attenuation for the given evidence. The
// cleanliness weight is the most restrictive of the behavioral gates,
// each a soft knee: fully open while the signal is clearly inside its
// tolerance, fading to zero at the tolerance. The knee matters — a
// linear ramp from zero would hand every fast-but-solving attacker a
// *partial* discount, which across a whole botnet is a real price cut;
// the knee gives clients nothing until their behavior is unambiguously
// modest.
func (d *Decay) redemption(credit, failStreak, failRatio, rate, interArrival float64) float64 {
	if credit <= 0 || failStreak >= d.maxFailStreak {
		return 0
	}
	// Fail ratio and rate: open at or below half the tolerance, closed at
	// the tolerance. Inter-arrival: open at or above the tolerance,
	// closed at or below half of it. Each gate is the precomputed-slope
	// form of knee(·): clamp to [0, 1] of a single multiply-add.
	clean := 2 - failRatio*d.failK
	if quiet := 2 - rate*d.rateK; quiet < clean {
		clean = quiet
	}
	if spaced := interArrival*d.iaK - 1; spaced < clean {
		clean = spaced
	}
	if clean <= 0 {
		return 0
	}
	if clean > 1 {
		clean = 1
	}
	return d.maxDrop * credit / (credit + d.halfCredit) * clean
}

// apply attenuates a verdict's score by the evidence-earned redemption.
func (d *Decay) apply(ver features.Verdict, credit, failStreak, failRatio, rate, interArrival float64) features.Verdict {
	ver.Score -= d.redemption(credit, failStreak, failRatio, rate, interArrival)
	if ver.Score < 0 {
		ver.Score = 0
	}
	return ver
}

// Schema implements features.VectorScorer: the inner schema extended with
// the evidence attributes.
func (d *Decay) Schema() *features.Schema { return d.schema }

// ScoreVector implements features.VectorScorer. The evidence slots are
// read before the inner scorer runs (it may use its subvector as scratch).
func (d *Decay) ScoreVector(v []float64) (float64, error) {
	ver, err := d.VerdictVector(v)
	if err != nil {
		return 0, err
	}
	return ver.Score, nil
}

// VerdictVector implements features.VerdictScorer: the inner verdict
// (confidence 1 when the inner scorer has no verdict path) with the
// redeemed score.
func (d *Decay) VerdictVector(v []float64) (features.Verdict, error) {
	if len(v) != d.schema.Len() {
		return features.Verdict{}, fmt.Errorf("reputation: vector has %d dims, decay wants %d", len(v), d.schema.Len())
	}
	credit, failStreak, failRatio := v[d.credSlot], v[d.failSlot], v[d.ratioSlot]
	rate, interArrival := v[d.rateSlot], v[d.iaSlot]
	ver, err := d.innerVerdict(v[:d.innerLen])
	if err != nil {
		return features.Verdict{}, err
	}
	return d.apply(ver, credit, failStreak, failRatio, rate, interArrival), nil
}

// innerVerdict scores the inner subvector through the memo: a hit skips
// the model, a miss snapshots the raw key (the inner scorer uses its
// vector as scratch) before computing and publishing the entry. Errors are
// never cached.
func (d *Decay) innerVerdict(v []float64) (features.Verdict, error) {
	var slot *atomic.Pointer[memoEntry]
	if d.memo != nil {
		var ver features.Verdict
		var ok bool
		if ver, slot, ok = d.memo.lookup(v); ok {
			return ver, nil
		}
	}
	var e *memoEntry
	if slot != nil {
		e = &memoEntry{n: len(v)}
		copy(e.vec[:], v)
	}
	var ver features.Verdict
	var err error
	if d.verdict != nil {
		ver, err = d.verdict.VerdictVector(v)
	} else {
		ver.Confidence = 1
		ver.Score, err = d.vec.ScoreVector(v)
	}
	if err != nil {
		return features.Verdict{}, err
	}
	if slot != nil {
		e.ver = ver
		slot.Store(e)
	}
	return ver, nil
}

// Score implements the map-path Scorer. Evidence attributes absent from
// the map count as zero evidence (no redemption), matching the tracker's
// unknown-IP contract.
func (d *Decay) Score(attrs map[string]float64) (float64, error) {
	ver, err := d.VerdictAttrs(attrs)
	if err != nil {
		return 0, err
	}
	return ver.Score, nil
}

// VerdictAttrs implements AttrVerdictScorer (the map compatibility path).
func (d *Decay) VerdictAttrs(attrs map[string]float64) (features.Verdict, error) {
	var ver features.Verdict
	var err error
	if d.attrVer != nil {
		ver, err = d.attrVer.VerdictAttrs(attrs)
	} else {
		ver.Confidence = 1
		ver.Score, err = d.scorer.Score(attrs)
	}
	if err != nil {
		return features.Verdict{}, err
	}
	return d.apply(ver,
		attrs[features.AttrSolveCredit],
		attrs[features.AttrFailStreak],
		attrs[features.AttrFailRatioTotal],
		attrs[features.AttrRequestRate],
		attrs[features.AttrInterArrival]), nil
}
