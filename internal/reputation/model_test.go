package reputation

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// toySamples builds a well-separated 2-D training set: benign near the
// origin, malicious near (10, 10).
func toySamples(n int, seed uint64) []Sample {
	rng := rand.New(rand.NewPCG(seed, 1))
	samples := make([]Sample, 0, 2*n)
	for i := 0; i < n; i++ {
		samples = append(samples, Sample{
			Attrs:     map[string]float64{"x": rng.NormFloat64() * 0.5, "y": rng.NormFloat64() * 0.5},
			Malicious: false,
		})
		samples = append(samples, Sample{
			Attrs:     map[string]float64{"x": 10 + rng.NormFloat64()*0.5, "y": 10 + rng.NormFloat64()*0.5},
			Malicious: true,
		})
	}
	return samples
}

func trainToy(t *testing.T, opts ...TrainOption) *Model {
	t.Helper()
	m, err := Train(toySamples(100, 42), opts...)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	tests := []struct {
		name    string
		samples []Sample
		opts    []TrainOption
		want    error
	}{
		{"empty", nil, nil, ErrNoSamples},
		{"one_class_malicious", []Sample{
			{Attrs: map[string]float64{"x": 1}, Malicious: true},
		}, nil, ErrOneClass},
		{"one_class_benign", []Sample{
			{Attrs: map[string]float64{"x": 1}, Malicious: false},
			{Attrs: map[string]float64{"x": 2}, Malicious: false},
		}, nil, ErrOneClass},
		{"missing_attr", []Sample{
			{Attrs: map[string]float64{"x": 1, "y": 2}, Malicious: true},
			{Attrs: map[string]float64{"x": 1}, Malicious: false},
		}, nil, ErrMissingAttr},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Train(tt.samples, tt.opts...); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
	if _, err := Train(toySamples(5, 1), WithClusters(0)); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := Train(toySamples(5, 1), WithIterations(0)); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestModelScoresSeparateClasses(t *testing.T) {
	m := trainToy(t)
	malScore, err := m.Score(map[string]float64{"x": 10, "y": 10})
	if err != nil {
		t.Fatal(err)
	}
	benScore, err := m.Score(map[string]float64{"x": 0, "y": 0})
	if err != nil {
		t.Fatal(err)
	}
	if malScore < 8 {
		t.Errorf("malicious-core score = %v, want ≥ 8", malScore)
	}
	if benScore > 2 {
		t.Errorf("benign-core score = %v, want ≤ 2", benScore)
	}
	if malScore <= benScore {
		t.Errorf("score ordering inverted: mal %v <= ben %v", malScore, benScore)
	}
}

func TestModelScoreRange(t *testing.T) {
	m := trainToy(t)
	// Points far outside training range must clamp into [0, MaxScore].
	for _, p := range []map[string]float64{
		{"x": -1000, "y": -1000},
		{"x": 1000, "y": 1000},
		{"x": 10, "y": 10},
	} {
		s, err := m.Score(p)
		if err != nil {
			t.Fatal(err)
		}
		if s < 0 || s > MaxScore {
			t.Fatalf("Score(%v) = %v outside [0, %v]", p, s, MaxScore)
		}
	}
}

// Property: with a single malicious centroid, moving a point from that
// centroid toward the benign cluster never increases its score. (With
// multiple centroids the nearest-centroid distance is not monotone along an
// arbitrary path, so the property is stated for k=1.)
func TestModelScoreMonotoneAlongPath(t *testing.T) {
	m := trainToy(t, WithClusters(1))
	prev := MaxScore + 1.0
	for step := 0; step <= 20; step++ {
		frac := float64(step) / 20
		x := 10 * (1 - frac)
		s, err := m.Score(map[string]float64{"x": x, "y": x})
		if err != nil {
			t.Fatal(err)
		}
		if s > prev+1e-9 {
			t.Fatalf("score increased while moving away from malicious centroid: step %d, %v > %v", step, s, prev)
		}
		prev = s
	}
}

func TestModelScoreMissingAttr(t *testing.T) {
	m := trainToy(t)
	if _, err := m.Score(map[string]float64{"x": 1}); !errors.Is(err, ErrMissingAttr) {
		t.Fatalf("err = %v, want ErrMissingAttr", err)
	}
}

func TestModelScoreIgnoresExtraAttrs(t *testing.T) {
	m := trainToy(t)
	a, err := m.Score(map[string]float64{"x": 5, "y": 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Score(map[string]float64{"x": 5, "y": 5, "unrelated": 99})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("extra attribute changed score: %v != %v", a, b)
	}
}

func TestModelScoreVector(t *testing.T) {
	m := trainToy(t)
	viaMap, err := m.Score(map[string]float64{"x": 7, "y": 3})
	if err != nil {
		t.Fatal(err)
	}
	viaVec, err := m.ScoreVector([]float64{7, 3}) // canonical order: x, y
	if err != nil {
		t.Fatal(err)
	}
	if viaMap != viaVec {
		t.Fatalf("map score %v != vector score %v", viaMap, viaVec)
	}
	if _, err := m.ScoreVector([]float64{1}); err == nil {
		t.Fatal("wrong dimension accepted")
	}
}

func TestModelDeterministicTraining(t *testing.T) {
	m1 := trainToy(t, WithSeed(7))
	m2 := trainToy(t, WithSeed(7))
	probe := map[string]float64{"x": 4.2, "y": 6.9}
	s1, err := m1.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different models: %v != %v", s1, s2)
	}
}

func TestModelDeadDimension(t *testing.T) {
	samples := []Sample{
		{Attrs: map[string]float64{"x": 0, "constant": 5}, Malicious: false},
		{Attrs: map[string]float64{"x": 0.1, "constant": 5}, Malicious: false},
		{Attrs: map[string]float64{"x": 10, "constant": 5}, Malicious: true},
		{Attrs: map[string]float64{"x": 9.9, "constant": 5}, Malicious: true},
	}
	m, err := Train(samples, WithClusters(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Score(map[string]float64{"x": 10, "constant": 123})
	if err != nil {
		t.Fatal(err)
	}
	if s < 8 {
		t.Fatalf("dead dimension distorted score: %v", s)
	}
}

func TestModelAccessors(t *testing.T) {
	m := trainToy(t, WithClusters(2))
	names := m.AttributeNames()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("AttributeNames() = %v", names)
	}
	names[0] = "mutated"
	if m.AttributeNames()[0] != "x" {
		t.Fatal("AttributeNames() exposed internal slice")
	}
	if m.Clusters() < 1 || m.Clusters() > 2 {
		t.Fatalf("Clusters() = %d", m.Clusters())
	}
	distMal, distBen := m.Calibration()
	if distMal < 0 || distBen <= distMal {
		t.Fatalf("Calibration() = (%v, %v), want 0 ≤ mal < ben", distMal, distBen)
	}
}

// Property: any probe scores within [0, MaxScore].
func TestModelScoreBoundedProperty(t *testing.T) {
	m := trainToy(t)
	f := func(x, y float64) bool {
		s, err := m.Score(map[string]float64{"x": x, "y": y})
		return err == nil && s >= 0 && s <= MaxScore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
