package reputation

import (
	"fmt"
	"sort"
)

// KNN is an alternative reputation scorer: the score of an IP is
// MaxScore times the malicious fraction among its k nearest training
// neighbours (in the same normalized attribute space the Model uses).
// It demonstrates the framework's "AI model is swappable" claim and serves
// as a sanity baseline for the centroid model in the evaluation.
//
// KNN is immutable after construction and safe for concurrent use.
type KNN struct {
	k         int
	attrNames []string
	mins      []float64
	ranges    []float64
	points    [][]float64
	labels    []bool
}

var _ Scorer = (*KNN)(nil)

// NewKNN builds a kNN scorer from labeled samples. k is clamped to the
// sample count. Normalization bounds are derived from the samples exactly
// as in Train.
func NewKNN(samples []Sample, k int) (*KNN, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	if k < 1 {
		return nil, fmt.Errorf("reputation: k must be positive, got %d", k)
	}
	if k > len(samples) {
		k = len(samples)
	}

	attrNames := make([]string, 0, len(samples[0].Attrs))
	for name := range samples[0].Attrs {
		attrNames = append(attrNames, name)
	}
	sort.Strings(attrNames)

	knn := &KNN{
		k:         k,
		attrNames: attrNames,
		mins:      make([]float64, len(attrNames)),
		ranges:    make([]float64, len(attrNames)),
		points:    make([][]float64, len(samples)),
		labels:    make([]bool, len(samples)),
	}

	raw := make([][]float64, len(samples))
	for i, s := range samples {
		v := make([]float64, len(attrNames))
		for j, name := range attrNames {
			val, ok := s.Attrs[name]
			if !ok {
				return nil, fmt.Errorf("%w: sample %d lacks %q", ErrMissingAttr, i, name)
			}
			v[j] = val
		}
		raw[i] = v
		knn.labels[i] = s.Malicious
	}

	maxs := make([]float64, len(attrNames))
	for j := range attrNames {
		knn.mins[j], maxs[j] = raw[0][j], raw[0][j]
	}
	for _, v := range raw {
		for j, x := range v {
			if x < knn.mins[j] {
				knn.mins[j] = x
			}
			if x > maxs[j] {
				maxs[j] = x
			}
		}
	}
	for j := range attrNames {
		knn.ranges[j] = maxs[j] - knn.mins[j]
	}
	for i, v := range raw {
		knn.points[i] = knn.normalize(v)
	}
	return knn, nil
}

// Score maps an attribute map to [0, MaxScore] by majority mass of the k
// nearest neighbours.
func (knn *KNN) Score(attrs map[string]float64) (float64, error) {
	v := make([]float64, len(knn.attrNames))
	for j, name := range knn.attrNames {
		val, ok := attrs[name]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrMissingAttr, name)
		}
		v[j] = val
	}
	q := knn.normalize(v)

	type neigh struct {
		d   float64
		mal bool
	}
	ns := make([]neigh, len(knn.points))
	for i, p := range knn.points {
		ns[i] = neigh{d: euclidean(q, p), mal: knn.labels[i]}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].d < ns[j].d })

	malicious := 0
	for _, n := range ns[:knn.k] {
		if n.mal {
			malicious++
		}
	}
	return MaxScore * float64(malicious) / float64(knn.k), nil
}

// K reports the neighbour count in use.
func (knn *KNN) K() int { return knn.k }

func (knn *KNN) normalize(raw []float64) []float64 {
	out := make([]float64, len(raw))
	for j, x := range raw {
		if knn.ranges[j] == 0 {
			out[j] = 0
			continue
		}
		n := (x - knn.mins[j]) / knn.ranges[j]
		if n < 0 {
			n = 0
		} else if n > 1 {
			n = 1
		}
		out[j] = n
	}
	return out
}
