package reputation

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"aipow/internal/features"
)

// KNN is an alternative reputation scorer: the score of an IP is
// MaxScore times the malicious fraction among its k nearest training
// neighbours (in the same normalized attribute space the Model uses).
// It demonstrates the framework's "AI model is swappable" claim and serves
// as a sanity baseline for the centroid model in the evaluation.
//
// KNN is immutable after construction and safe for concurrent use.
type KNN struct {
	k         int
	attrNames []string
	schema    *features.Schema
	mins      []float64
	ranges    []float64
	points    [][]float64
	labels    []bool
	scratch   sync.Pool // *knnScratch
}

var (
	_ Scorer                 = (*KNN)(nil)
	_ features.VectorScorer  = (*KNN)(nil)
	_ features.VerdictScorer = (*KNN)(nil)
	_ AttrVerdictScorer      = (*KNN)(nil)
)

// knnScratch is the reusable per-call state of a Score/ScoreVector call:
// the query vector (map path only) and the running k-best arrays.
type knnScratch struct {
	q   []float64
	d   []float64
	mal []bool
}

// NewKNN builds a kNN scorer from labeled samples. k is clamped to the
// sample count. Normalization bounds are derived from the samples exactly
// as in Train.
func NewKNN(samples []Sample, k int) (*KNN, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	if k < 1 {
		return nil, fmt.Errorf("reputation: k must be positive, got %d", k)
	}
	if k > len(samples) {
		k = len(samples)
	}

	attrNames := make([]string, 0, len(samples[0].Attrs))
	for name := range samples[0].Attrs {
		attrNames = append(attrNames, name)
	}
	sort.Strings(attrNames)

	knn := &KNN{
		k:         k,
		attrNames: attrNames,
		schema:    schemaFor(attrNames),
		mins:      make([]float64, len(attrNames)),
		ranges:    make([]float64, len(attrNames)),
		points:    make([][]float64, len(samples)),
		labels:    make([]bool, len(samples)),
	}

	raw := make([][]float64, len(samples))
	for i, s := range samples {
		v := make([]float64, len(attrNames))
		for j, name := range attrNames {
			val, ok := s.Attrs[name]
			if !ok {
				return nil, fmt.Errorf("%w: sample %d lacks %q", ErrMissingAttr, i, name)
			}
			v[j] = val
		}
		raw[i] = v
		knn.labels[i] = s.Malicious
	}

	maxs := make([]float64, len(attrNames))
	for j := range attrNames {
		knn.mins[j], maxs[j] = raw[0][j], raw[0][j]
	}
	for _, v := range raw {
		for j, x := range v {
			if x < knn.mins[j] {
				knn.mins[j] = x
			}
			if x > maxs[j] {
				maxs[j] = x
			}
		}
	}
	for j := range attrNames {
		knn.ranges[j] = maxs[j] - knn.mins[j]
	}
	for i, v := range raw {
		knn.normalizeInPlace(v)
		knn.points[i] = v
	}
	return knn, nil
}

// Score maps an attribute map to [0, MaxScore] by majority mass of the k
// nearest neighbours.
func (knn *KNN) Score(attrs map[string]float64) (float64, error) {
	sp := knn.getScratch()
	for j, name := range knn.attrNames {
		val, ok := attrs[name]
		if !ok {
			knn.scratch.Put(sp)
			return 0, fmt.Errorf("%w: %q", ErrMissingAttr, name)
		}
		sp.q[j] = val
	}
	knn.normalizeInPlace(sp.q)
	score := knn.scoreNormalized(sp.q, sp)
	knn.scratch.Put(sp)
	return score, nil
}

// Schema reports the interned layout ScoreVector expects.
func (knn *KNN) Schema() *features.Schema { return knn.schema }

// ScoreVector scores a raw-unit vector laid out in Schema order. The
// vector is used as scratch space: its contents are unspecified on return.
func (knn *KNN) ScoreVector(v []float64) (float64, error) {
	if len(v) != len(knn.attrNames) {
		return 0, fmt.Errorf("reputation: vector has %d dims, knn wants %d", len(v), len(knn.attrNames))
	}
	knn.normalizeInPlace(v)
	sp := knn.getScratch()
	score := knn.scoreNormalized(v, sp)
	knn.scratch.Put(sp)
	return score, nil
}

// VerdictVector implements features.VerdictScorer. A kNN verdict's
// confidence is the neighbourhood's unanimity, |2·malFrac − 1|: a
// unanimous vote is fully confident, an even split — the overlap region
// where this scorer's false positives live — carries no confidence.
func (knn *KNN) VerdictVector(v []float64) (features.Verdict, error) {
	score, err := knn.ScoreVector(v)
	if err != nil {
		return features.Verdict{}, err
	}
	return knn.verdictOf(score), nil
}

// VerdictAttrs is the map-path form of VerdictVector (AttrVerdictScorer).
func (knn *KNN) VerdictAttrs(attrs map[string]float64) (features.Verdict, error) {
	score, err := knn.Score(attrs)
	if err != nil {
		return features.Verdict{}, err
	}
	return knn.verdictOf(score), nil
}

// verdictOf derives the unanimity confidence from a kNN score (the score
// *is* MaxScore·malFrac, so no second neighbour pass is needed).
func (knn *KNN) verdictOf(score float64) features.Verdict {
	conf := math.Abs(2*score/MaxScore - 1)
	if conf > 1 {
		conf = 1
	}
	return features.Verdict{Score: score, Confidence: conf}
}

// getScratch returns pooled per-call state sized for this scorer.
func (knn *KNN) getScratch() *knnScratch {
	sp, _ := knn.scratch.Get().(*knnScratch)
	if sp == nil {
		sp = &knnScratch{
			q:   make([]float64, len(knn.attrNames)),
			d:   make([]float64, knn.k),
			mal: make([]bool, knn.k),
		}
	}
	return sp
}

// scoreNormalized finds the k nearest training points to the normalized
// query q by maintaining a small sorted k-best array (k is tiny, so this
// O(n·k) pass beats sorting all n distances and allocates nothing).
func (knn *KNN) scoreNormalized(q []float64, sp *knnScratch) float64 {
	d, mal := sp.d[:0], sp.mal[:0]
	for i, p := range knn.points {
		dist := euclidean(q, p)
		if len(d) < knn.k {
			d = append(d, dist)
			mal = append(mal, knn.labels[i])
		} else if dist < d[len(d)-1] {
			d[len(d)-1], mal[len(d)-1] = dist, knn.labels[i]
		} else {
			continue
		}
		for j := len(d) - 1; j > 0 && d[j-1] > d[j]; j-- {
			d[j-1], d[j] = d[j], d[j-1]
			mal[j-1], mal[j] = mal[j], mal[j-1]
		}
	}
	malicious := 0
	for _, isMal := range mal {
		if isMal {
			malicious++
		}
	}
	return MaxScore * float64(malicious) / float64(len(d))
}

// K reports the neighbour count in use.
func (knn *KNN) K() int { return knn.k }

func (knn *KNN) normalizeInPlace(v []float64) {
	for j, x := range v {
		if knn.ranges[j] == 0 {
			v[j] = 0
			continue
		}
		n := (x - knn.mins[j]) / knn.ranges[j]
		if n < 0 {
			n = 0
		} else if n > 1 {
			n = 1
		}
		v[j] = n
	}
}
