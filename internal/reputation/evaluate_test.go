package reputation

import (
	"errors"
	"math"
	"strings"
	"testing"

	"aipow/internal/dataset"
)

// constScorer always returns a fixed score.
type constScorer float64

func (c constScorer) Score(map[string]float64) (float64, error) { return float64(c), nil }

// errScorer always fails.
type errScorer struct{}

func (errScorer) Score(map[string]float64) (float64, error) {
	return 0, errors.New("boom")
}

func TestEvaluationMetricsMath(t *testing.T) {
	ev := Evaluation{Threshold: 5, TP: 40, FP: 10, TN: 35, FN: 15}
	if got := ev.Total(); got != 100 {
		t.Fatalf("Total() = %d", got)
	}
	if got := ev.Accuracy(); got != 0.75 {
		t.Fatalf("Accuracy() = %v, want 0.75", got)
	}
	if got := ev.Precision(); got != 0.8 {
		t.Fatalf("Precision() = %v, want 0.8", got)
	}
	if got := ev.Recall(); math.Abs(got-40.0/55.0) > 1e-12 {
		t.Fatalf("Recall() = %v", got)
	}
	wantF1 := 2 * 0.8 * (40.0 / 55.0) / (0.8 + 40.0/55.0)
	if got := ev.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Fatalf("F1() = %v, want %v", got, wantF1)
	}
	if !strings.Contains(ev.String(), "acc=0.750") {
		t.Fatalf("String() = %q", ev.String())
	}
}

func TestEvaluationDegenerateMetrics(t *testing.T) {
	var ev Evaluation
	if ev.Accuracy() != 0 || ev.Precision() != 0 || ev.Recall() != 0 || ev.F1() != 0 {
		t.Fatal("empty evaluation metrics should be 0")
	}
}

func TestEvaluateAllMaliciousPrediction(t *testing.T) {
	samples := []Sample{
		{Attrs: map[string]float64{"x": 1}, Malicious: true},
		{Attrs: map[string]float64{"x": 2}, Malicious: false},
	}
	ev, err := Evaluate(constScorer(9), samples, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TP != 1 || ev.FP != 1 || ev.TN != 0 || ev.FN != 0 {
		t.Fatalf("confusion = %+v", ev)
	}
}

func TestEvaluatePropagatesScorerError(t *testing.T) {
	if _, err := Evaluate(errScorer{}, []Sample{{Attrs: nil}}, 5); err == nil {
		t.Fatal("scorer error swallowed")
	}
}

func TestEvaluateTrainedModelOnToyData(t *testing.T) {
	train := toySamples(100, 5)
	test := toySamples(30, 6)
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m, test, MaxScore/2)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ev.Accuracy(); acc < 0.98 {
		t.Fatalf("accuracy on separable toy data = %v, want ≥ 0.98", acc)
	}
}

// fromDataset adapts dataset samples to reputation samples.
func fromDataset(in []dataset.Sample) []Sample {
	out := make([]Sample, len(in))
	for i, s := range in {
		out[i] = Sample{Attrs: s.Attrs, Malicious: s.Malicious}
	}
	return out
}

// Integration: with zero overlap the model should be near-perfect; with the
// calibrated overlap, accuracy should land in DAbR's reported band (~80%).
func TestModelAccuracyOnSyntheticDataset(t *testing.T) {
	run := func(overlap float64) float64 {
		t.Helper()
		cfg := dataset.DefaultConfig()
		cfg.Overlap = overlap
		raw, err := dataset.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		all := fromDataset(raw)
		trainSet, testSet := all[:4000], all[4000:]
		m, err := Train(trainSet)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Evaluate(m, testSet, MaxScore/2)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Accuracy()
	}
	if acc := run(0); acc < 0.97 {
		t.Errorf("overlap 0 accuracy = %v, want ≥ 0.97", acc)
	}
	if acc := run(dataset.DefaultConfig().Overlap); acc < 0.70 || acc > 0.90 {
		t.Errorf("calibrated overlap accuracy = %v, want within [0.70, 0.90] (DAbR reports 0.80)", acc)
	}
}
