package obs

import (
	"sync"
	"testing"
	"time"
)

func TestEventLogAppendAndSnapshot(t *testing.T) {
	l := NewEventLog(4)
	base := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		l.Append(Event{At: base.Add(time.Duration(i) * time.Second), Kind: EventAdaptEscalate, To: i + 1})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.To != i+1 {
			t.Errorf("event %d out of order: To = %d, want %d", i, e.To, i+1)
		}
	}
	if l.Total() != 3 || l.Len() != 3 {
		t.Errorf("Total/Len = %d/%d, want 3/3", l.Total(), l.Len())
	}
}

func TestEventLogRotation(t *testing.T) {
	l := NewEventLog(4)
	for i := 1; i <= 10; i++ {
		l.Append(Event{Kind: EventSpecApply, To: i})
	}
	got := l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	for i, e := range got {
		want := 7 + i // events 7..10 survive
		if e.To != want || e.Seq != uint64(want) {
			t.Errorf("slot %d = {Seq:%d To:%d}, want {Seq:%d To:%d}", i, e.Seq, e.To, want, want)
		}
	}
	if l.Total() != 10 {
		t.Errorf("Total = %d, want 10", l.Total())
	}
}

func TestEventLogDefaultCapacity(t *testing.T) {
	l := NewEventLog(0)
	for i := 0; i < DefaultEventLogSize+10; i++ {
		l.Append(Event{Kind: EventPeerJoin})
	}
	if l.Len() != DefaultEventLogSize {
		t.Fatalf("Len = %d, want %d", l.Len(), DefaultEventLogSize)
	}
}

func TestTraceRingRounding(t *testing.T) {
	tr := NewTraceRing(1000, 100)
	if tr.SampleEvery() != 1024 {
		t.Errorf("SampleEvery = %d, want 1024 (rounded up)", tr.SampleEvery())
	}
	if tr.Cap() != 128 {
		t.Errorf("Cap = %d, want 128 (rounded up)", tr.Cap())
	}
	if got := NewTraceRing(0, 0); got.SampleEvery() != 1 || got.Cap() != MinTraceRingSize {
		t.Errorf("clamped ring = %d/%d, want 1/%d", got.SampleEvery(), got.Cap(), MinTraceRingSize)
	}
}

func TestTraceRingSamplingRate(t *testing.T) {
	tr := NewTraceRing(8, 64)
	sampled := 0
	for i := 0; i < 800; i++ {
		if tr.Sampled() {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 800 at 1-in-8, want exactly 100", sampled)
	}
}

func TestTraceRingRecordAndSnapshot(t *testing.T) {
	tr := NewTraceRing(1, 16)
	at := time.Unix(5000, 12345)
	tr.RecordDecide(at, HashClient("10.0.0.9"), 7.25, 0.5, 1.5, 14, 2, 100, 200, 350)
	tr.RecordVerify(at.Add(time.Second), HashClient("10.0.0.9"), OutcomeFleetReplay, 14, 2, 90)

	got := tr.Snapshot()
	if len(got) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(got))
	}
	d := got[0]
	if d.Kind != "decide" || d.Score != 7.25 || d.Confidence != 0.5 || d.Credit != 1.5 ||
		d.Difficulty != 14 || d.Rung != 2 || d.ScoreNs != 100 || d.IssueNs != 200 || d.TotalNs != 350 {
		t.Errorf("decide sample = %+v", d)
	}
	if !d.At.Equal(at) {
		t.Errorf("decide At = %v, want %v", d.At, at)
	}
	v := got[1]
	if v.Kind != "verify" || v.Outcome != "fleet_replay" || v.Difficulty != 14 || v.TotalNs != 90 {
		t.Errorf("verify sample = %+v", v)
	}
	if d.Client != v.Client || len(d.Client) != 16 {
		t.Errorf("client hashes differ or malformed: %q vs %q", d.Client, v.Client)
	}
}

func TestTraceRingWrap(t *testing.T) {
	tr := NewTraceRing(1, 16)
	for i := 0; i < 40; i++ {
		tr.RecordDecide(time.Unix(int64(i), 0), uint64(i), float64(i), 1, 0, int32(i%20), 0, 0, 0, 0)
	}
	got := tr.Snapshot()
	if len(got) != 16 {
		t.Fatalf("snapshot len = %d, want 16 after wrap", len(got))
	}
	if tr.Recorded() != 40 {
		t.Errorf("Recorded = %d, want 40", tr.Recorded())
	}
}

func TestVerifyOutcomeStrings(t *testing.T) {
	for o := OutcomeOK; o <= OutcomeOther+1; o++ {
		if o.String() == "" {
			t.Errorf("outcome %d renders empty", o)
		}
	}
	if OutcomeReplayed.String() != "replayed" || OutcomeOther.String() != "other" {
		t.Errorf("unexpected renders: %q %q", OutcomeReplayed, OutcomeOther)
	}
}

// TestTraceRingConcurrent hammers writers against a snapshotting reader;
// run under -race this pins the lock-free ring's safety contract: no torn
// records are ever reported (every snapshot row must be internally
// consistent: score == difficulty as written below).
func TestTraceRingConcurrent(t *testing.T) {
	tr := NewTraceRing(1, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := int32(i % 30)
				// score mirrors difficulty so a reader can detect tearing.
				tr.RecordDecide(time.Unix(int64(i), 0), uint64(w), float64(d), 1, 0, d, 0, 0, 0, int64(d))
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, s := range tr.Snapshot() {
			if int32(s.Score) != int32(s.Difficulty) || s.TotalNs != int64(s.Difficulty) {
				t.Errorf("torn record: %+v", s)
			}
		}
	}
	close(stop)
	wg.Wait()
}
