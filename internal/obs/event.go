// Package obs is the framework's observability plane: a bounded structured
// event log for defense state transitions and a lock-free sampled trace
// ring for serving-path decisions. Both are dependency-free and designed so
// the serving hot path pays at most one atomic operation and one branch
// when a request is not sampled, and zero heap allocations when it is.
//
// The event log answers "when did node 3 escalate, and why": every defense
// state transition — adapt escalate/de-escalate with the triggering signal
// value, spec apply/rollback, cluster peer join/stale, evidence-buffer
// flush stalls — is appended as one fixed-shape Event. The trace ring
// answers "why did this client get difficulty 14": a spec-controlled
// 1-in-N sample of decisions is recorded with score, confidence, chosen
// difficulty, adapt rung, redemption credit, verify outcome, and per-stage
// nanosecond timings.
package obs

import (
	"sync"
	"time"
)

// Event kinds, namespaced by the emitting subsystem.
const (
	// EventAdaptEscalate / EventAdaptDeescalate are feedback-controller
	// level changes; From/To carry the levels, Rule the triggering
	// condition, and Signal/Value the signal reading that tripped it.
	EventAdaptEscalate   = "adapt.escalate"
	EventAdaptDeescalate = "adapt.deescalate"

	// EventSpecApply / EventSpecRollback are control-plane deployment
	// generation changes; To carries the new generation sequence.
	EventSpecApply    = "spec.apply"
	EventSpecRollback = "spec.rollback"

	// EventPeerJoin / EventPeerStale are cluster-plane membership
	// transitions; Detail names the peer origin (join) or endpoint
	// (stale).
	EventPeerJoin  = "cluster.peer_join"
	EventPeerStale = "cluster.peer_stale"

	// EventFlushStall reports an evidence write-back flush that took
	// longer than its interval; Value is the flush duration in
	// milliseconds.
	EventFlushStall = "evidence.flush_stall"
)

// Event is one defense state transition. Fields beyond At and Kind are
// kind-specific and omitted from JSON when zero.
type Event struct {
	// Seq is the log-assigned monotonic sequence number, so a consumer
	// tailing GET /events can detect rotation gaps.
	Seq uint64 `json:"seq"`

	// At is when the transition happened, on the emitter's clock (the
	// simulation engine's virtual clock in scenario runs).
	At time.Time `json:"at"`

	// Kind is one of the Event* constants.
	Kind string `json:"kind"`

	// Pipeline names the pipeline the event belongs to, when one does.
	Pipeline string `json:"pipeline,omitempty"`

	// Node names the emitting fleet member, when relevant.
	Node string `json:"node,omitempty"`

	// From and To are the levels (adapt events) or generation sequences
	// (spec events) before and after the transition.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`

	// Rule is the triggering rule condition for adapt escalations.
	Rule string `json:"rule,omitempty"`

	// Signal and Value carry the signal reading that tripped an adapt
	// rule, e.g. Signal "rate", Value 181.2.
	Signal string  `json:"signal,omitempty"`
	Value  float64 `json:"value,omitempty"`

	// Detail is free-form kind-specific context (peer origin, endpoint).
	Detail string `json:"detail,omitempty"`
}

// Sink consumes events. EventLog.Append is the usual sink; emitters hold a
// Sink so hosts can wrap it (adding pipeline or node labels) or drop
// events entirely with a nil func.
type Sink func(Event)

// DefaultEventLogSize bounds an event log constructed with capacity ≤ 0.
// Defense transitions are rare (per-minute, not per-request), so a few
// hundred entries cover hours of incident history.
const DefaultEventLogSize = 512

// EventLog is a bounded ring of events, safe for concurrent use. Appends
// are mutex-guarded — events are emitted from control-plane paths, never
// from the serving hot path — and once full the oldest entry is
// overwritten.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // overwrite cursor once the ring is full
	total uint64 // events ever appended; assigns Seq
}

// NewEventLog returns a log retaining the last capacity events
// (DefaultEventLogSize when capacity ≤ 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogSize
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Append records one event, stamping its sequence number. Usable directly
// as a Sink method value.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	e.Seq = l.total
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % cap(l.buf)
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		return append(out, l.buf...)
	}
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}

// Total reports how many events were ever appended, including rotated-out
// ones.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Len reports how many events are currently retained.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}
