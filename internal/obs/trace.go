package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Trace record kinds.
const (
	TraceDecide uint32 = iota
	TraceVerify
)

// VerifyOutcome is a compact classification of a verification result for
// trace records. The puzzle package maps its error taxonomy onto these
// codes (see puzzle.TraceOutcome); obs owns the codes so trace storage
// stays dependency-free.
type VerifyOutcome uint32

const (
	OutcomeOK VerifyOutcome = iota
	OutcomeBadVersion
	OutcomeBadTag
	OutcomeBindingMismatch
	OutcomeNotYetValid
	OutcomeExpired
	OutcomeWrongSolution
	OutcomeReplayed
	// OutcomeFleetReplay is a replay caught by the cluster plane's
	// gossiped tag filter (SeenTag) rather than the local seed cache.
	OutcomeFleetReplay
	OutcomeInvalidDifficulty
	OutcomeOther
)

// String renders the outcome for trace JSON.
func (o VerifyOutcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeBadVersion:
		return "bad_version"
	case OutcomeBadTag:
		return "bad_tag"
	case OutcomeBindingMismatch:
		return "binding_mismatch"
	case OutcomeNotYetValid:
		return "not_yet_valid"
	case OutcomeExpired:
		return "expired"
	case OutcomeWrongSolution:
		return "wrong_solution"
	case OutcomeReplayed:
		return "replayed"
	case OutcomeFleetReplay:
		return "fleet_replay"
	case OutcomeInvalidDifficulty:
		return "invalid_difficulty"
	}
	return "other"
}

// traceRecord is one ring slot. Every field is atomic-sized and accessed
// only through atomic operations, with a per-slot sequence counter
// providing seqlock semantics: seq is incremented before the first field
// store (odd = being written) and after the last (even = stable), so a
// reader that observes an odd or changed seq discards the slot instead of
// reporting a torn record. This keeps the writer lock-free and the whole
// structure clean under the race detector.
type traceRecord struct {
	seq        atomic.Uint64
	at         atomic.Int64 // unix nanoseconds
	client     atomic.Uint64
	kind       atomic.Uint32
	outcome    atomic.Uint32
	score      atomic.Uint64 // float64 bits
	conf       atomic.Uint64 // float64 bits
	credit     atomic.Uint64 // float64 bits
	difficulty atomic.Int32
	rung       atomic.Int32
	scoreNs    atomic.Int64
	issueNs    atomic.Int64
	totalNs    atomic.Int64
}

// TraceSample is the exported, JSON-marshalable form of one trace record.
type TraceSample struct {
	// At is when the decision completed.
	At time.Time `json:"at"`

	// Kind is "decide" or "verify".
	Kind string `json:"kind"`

	// Client is the FNV-1a hash of the client identity, rendered as 16
	// hex digits — stable for correlating one client across samples
	// without exporting the identity itself.
	Client string `json:"client"`

	// Score and Confidence echo the decision's scoring outcome.
	Score      float64 `json:"score"`
	Confidence float64 `json:"confidence,omitempty"`

	// Difficulty is the chosen (decide) or presented (verify) puzzle
	// difficulty; -1 marks a bypassed decision.
	Difficulty int `json:"difficulty"`

	// Rung is the pipeline's adapt escalation level at record time.
	Rung int `json:"rung"`

	// Credit is the client's live solve credit (the redemption feed),
	// when the pipeline's schema exposes it.
	Credit float64 `json:"credit,omitempty"`

	// Outcome classifies a verify record's result.
	Outcome string `json:"outcome,omitempty"`

	// ScoreNs/IssueNs/TotalNs are per-stage wall-clock nanoseconds.
	ScoreNs int64 `json:"score_ns,omitempty"`
	IssueNs int64 `json:"issue_ns,omitempty"`
	TotalNs int64 `json:"total_ns"`
}

// TraceRing is a lock-free, fixed-size ring of sampled decision traces.
// The sampling decision — Sampled — costs exactly one atomic add and one
// mask compare, and recording a sampled decision performs only atomic
// stores into a pre-allocated slot: the serving path never allocates or
// locks regardless of the sample rate. Hot-swap a new ring (different
// rate or size) by replacing the pointer that reaches the serving path.
type TraceRing struct {
	sampleMask uint64
	slotMask   uint64
	slots      []traceRecord
	counter    atomic.Uint64
	widx       atomic.Uint64
}

// Trace ring size limits: the ring is fixed-size memory held for the
// pipeline's lifetime, so the spec-facing constructor clamps to a sane
// window.
const (
	MinTraceRingSize = 16
	MaxTraceRingSize = 1 << 20
	MaxTraceSample   = 1 << 30
)

// DefaultTraceSample and DefaultTraceRingSize are the `observe trace`
// spec defaults: 1-in-1024 sampling into a 256-record ring.
const (
	DefaultTraceSample   = 1024
	DefaultTraceRingSize = 256
)

// NewTraceRing returns a ring sampling 1 in sample decisions into ring
// slots. Both are rounded up to powers of two (so the sampling decision
// is a mask, not a division) and clamped to [1, MaxTraceSample] and
// [MinTraceRingSize, MaxTraceRingSize] respectively.
func NewTraceRing(sample, ring int) *TraceRing {
	s := ceilPow2(clampInt(sample, 1, MaxTraceSample))
	n := ceilPow2(clampInt(ring, MinTraceRingSize, MaxTraceRingSize))
	return &TraceRing{
		sampleMask: uint64(s - 1),
		slotMask:   uint64(n - 1),
		slots:      make([]traceRecord, n),
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func ceilPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// SampleEvery reports the effective 1-in-N sample rate.
func (t *TraceRing) SampleEvery() int { return int(t.sampleMask) + 1 }

// Cap reports the ring's slot count.
func (t *TraceRing) Cap() int { return len(t.slots) }

// Seen reports how many sampling decisions the ring has made.
func (t *TraceRing) Seen() uint64 { return t.counter.Load() }

// Recorded reports how many records were ever written (recent Cap() of
// them are retained).
func (t *TraceRing) Recorded() uint64 { return t.widx.Load() }

// Sampled reports whether the current request should be traced: one
// atomic add, one mask compare. This is the entire unsampled-path cost.
func (t *TraceRing) Sampled() bool {
	return t.counter.Add(1)&t.sampleMask == 0
}

// begin claims the next slot and marks it mid-write.
func (t *TraceRing) begin() *traceRecord {
	r := &t.slots[(t.widx.Add(1)-1)&t.slotMask]
	r.seq.Add(1) // odd: readers skip
	return r
}

// RecordDecide writes one sampled decision trace. All stores are atomic;
// no allocation.
func (t *TraceRing) RecordDecide(at time.Time, client uint64, score, conf, credit float64, difficulty, rung int32, scoreNs, issueNs, totalNs int64) {
	r := t.begin()
	r.at.Store(at.UnixNano())
	r.client.Store(client)
	r.kind.Store(TraceDecide)
	r.outcome.Store(uint32(OutcomeOK))
	r.score.Store(floatBits(score))
	r.conf.Store(floatBits(conf))
	r.credit.Store(floatBits(credit))
	r.difficulty.Store(difficulty)
	r.rung.Store(rung)
	r.scoreNs.Store(scoreNs)
	r.issueNs.Store(issueNs)
	r.totalNs.Store(totalNs)
	r.seq.Add(1) // even: stable
}

// RecordVerify writes one sampled verification trace.
func (t *TraceRing) RecordVerify(at time.Time, client uint64, outcome VerifyOutcome, difficulty, rung int32, totalNs int64) {
	r := t.begin()
	r.at.Store(at.UnixNano())
	r.client.Store(client)
	r.kind.Store(TraceVerify)
	r.outcome.Store(uint32(outcome))
	r.score.Store(0)
	r.conf.Store(0)
	r.credit.Store(0)
	r.difficulty.Store(difficulty)
	r.rung.Store(rung)
	r.scoreNs.Store(0)
	r.issueNs.Store(0)
	r.totalNs.Store(totalNs)
	r.seq.Add(1)
}

// Snapshot exports the stable retained records, oldest-written slot
// first. Records mid-write (or written during the read) are skipped
// rather than reported torn.
func (t *TraceRing) Snapshot() []TraceSample {
	out := make([]TraceSample, 0, len(t.slots))
	for i := range t.slots {
		r := &t.slots[i]
		s1 := r.seq.Load()
		if s1 == 0 || s1&1 == 1 {
			continue // never written, or mid-write
		}
		sample := TraceSample{
			At:         time.Unix(0, r.at.Load()),
			Client:     fmt.Sprintf("%016x", r.client.Load()),
			Score:      bitsFloat(r.score.Load()),
			Confidence: bitsFloat(r.conf.Load()),
			Credit:     bitsFloat(r.credit.Load()),
			Difficulty: int(r.difficulty.Load()),
			Rung:       int(r.rung.Load()),
			ScoreNs:    r.scoreNs.Load(),
			IssueNs:    r.issueNs.Load(),
			TotalNs:    r.totalNs.Load(),
		}
		kind, outcome := r.kind.Load(), VerifyOutcome(r.outcome.Load())
		if r.seq.Load() != s1 {
			continue // overwritten while reading
		}
		if kind == TraceVerify {
			sample.Kind = "verify"
			sample.Outcome = outcome.String()
		} else {
			sample.Kind = "decide"
		}
		out = append(out, sample)
	}
	return out
}

// HashClient is the FNV-1a hash trace records key clients by:
// allocation-free and stable across processes.
func HashClient(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
