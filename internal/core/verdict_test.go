package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"aipow/internal/features"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

// verdictVecScorer extends the toy vector scorer with a fixed confidence.
type verdictVecScorer struct {
	vecScorer
	conf        float64
	verdictHits atomic.Int64
}

func newVerdictScorer(t *testing.T, conf float64) *verdictVecScorer {
	t.Helper()
	return &verdictVecScorer{vecScorer: *newVecScorer(t), conf: conf}
}

func (s *verdictVecScorer) VerdictVector(v []float64) (features.Verdict, error) {
	s.verdictHits.Add(1)
	return features.Verdict{Score: v[0], Confidence: s.conf}, nil
}

// TestDecideThreadsConfidenceToShapedPolicy wires a verdict scorer with a
// confidence-shaped policy: the decision carries the scorer's confidence
// and the difficulty is the shaded one.
func TestDecideThreadsConfidenceToShapedPolicy(t *testing.T) {
	scorer := newVerdictScorer(t, 0.5)
	shaped, err := policy.NewConfidenceShaped(policy.Policy2(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(
		WithKey(testKey),
		WithScorer(scorer),
		WithPolicy(shaped),
		WithSource(newTestSource(t)),
	)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(RequestContext{IP: "10.0.0.9"}) // threat 10
	if err != nil {
		t.Fatal(err)
	}
	if dec.Score != 10 || dec.Confidence != 0.5 {
		t.Errorf("decision = score %v conf %v, want 10 / 0.5", dec.Score, dec.Confidence)
	}
	// Shaded: effective = 5 + 0.5·5 = 7.5 → Policy 2 difficulty 13.
	if want := policy.Policy2().Difficulty(7.5); dec.Difficulty != want {
		t.Errorf("difficulty = %d, want shaded %d", dec.Difficulty, want)
	}
	if scorer.verdictHits.Load() == 0 {
		t.Error("verdict fast path never engaged")
	}
}

// TestDecideSkipsVerdictForPlainPolicy pins the perf contract: a policy
// that does not consume confidence must not pay for its computation, and
// the decision reports confidence 1.
func TestDecideSkipsVerdictForPlainPolicy(t *testing.T) {
	scorer := newVerdictScorer(t, 0.5)
	f, err := New(
		WithKey(testKey),
		WithScorer(scorer),
		WithPolicy(policy.Policy2()),
		WithSource(newTestSource(t)),
	)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if scorer.verdictHits.Load() != 0 {
		t.Error("verdict computed for a policy that cannot consume it")
	}
	if dec.Confidence != 1 {
		t.Errorf("confidence = %v, want implied 1", dec.Confidence)
	}
	if want := policy.Policy2().Difficulty(10); dec.Difficulty != want {
		t.Errorf("difficulty = %d, want unshaded %d", dec.Difficulty, want)
	}
}

// TestDecideShapedThroughClamp mirrors the control plane's wiring: the
// shaped policy sits under the registry's mandatory clamp, and confidence
// still flows.
func TestDecideShapedThroughClamp(t *testing.T) {
	scorer := newVerdictScorer(t, 0)
	shaped, err := policy.NewConfidenceShaped(policy.Policy2(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := policy.NewClamp(shaped, 1, 22)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(
		WithKey(testKey),
		WithScorer(scorer),
		WithPolicy(clamped),
		WithSource(newTestSource(t)),
	)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	// Zero confidence, zero floor: shaded to the anchor, difficulty 10.
	if want := policy.Policy2().Difficulty(5); dec.Difficulty != want {
		t.Errorf("difficulty = %d, want anchor-shaded %d", dec.Difficulty, want)
	}
}

// failingScorer always errors, driving the fail-closed path.
type failingScorer struct{}

func (failingScorer) Score(map[string]float64) (float64, error) {
	return 0, errors.New("model offline")
}

// TestFailClosedConfidenceIsFull pins that a fail-closed substitution is
// enforced at confidence 1 — a confidence-shaped policy must not soften
// the fail-closed price.
func TestFailClosedConfidenceIsFull(t *testing.T) {
	shaped, err := policy.NewConfidenceShaped(policy.Policy2(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(
		WithKey(testKey),
		WithScorer(failingScorer{}),
		WithPolicy(shaped),
		WithSource(newTestSource(t)),
	)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.ScoreErr == nil || dec.Confidence != 1 {
		t.Fatalf("fail-closed decision = %+v, want ScoreErr set and confidence 1", dec)
	}
	if want := policy.Policy2().Difficulty(10); dec.Difficulty != want {
		t.Errorf("fail-closed difficulty = %d, want full %d", dec.Difficulty, want)
	}
}

// TestVerifyWritesEvidence pins the behavioral write-back: a verified
// solve lands as solve credit in the attached tracker, a failed one as a
// fail streak — and Verify without a tracker keeps working.
func TestVerifyWritesEvidence(t *testing.T) {
	tracker, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	f, err := New(
		WithKey(testKey),
		WithScorer(newVecScorer(t)),
		WithPolicy(policy.Policy1()),
		WithSource(newTestSource(t)),
		WithTracker(tracker),
		WithClock(func() time.Time { return now }),
	)
	if err != nil {
		t.Fatal(err)
	}
	const ip = "10.0.0.1"
	dec, err := f.Decide(RequestContext{IP: ip})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(t.Context(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(sol, ip); err != nil {
		t.Fatal(err)
	}
	attrs := tracker.Attributes(ip, now)
	if got := attrs[features.AttrSolveCredit]; got != float64(dec.Difficulty) {
		t.Errorf("solve credit = %v, want %d", got, dec.Difficulty)
	}

	// A tampered solution fails verification and extends the fail streak.
	bad := sol
	bad.Challenge.Tag[0] ^= 0xFF
	if err := f.Verify(bad, ip); err == nil {
		t.Fatal("tampered solution verified")
	}
	if got := tracker.Attributes(ip, now)[features.AttrFailStreak]; got != 1 {
		t.Errorf("fail streak = %v, want 1", got)
	}

	// RecordVerifyEvidence is the modeled-verification twin.
	f.RecordVerifyEvidence(ip, 9, true)
	attrs = tracker.Attributes(ip, now)
	if got := attrs[features.AttrFailStreak]; got != 0 {
		t.Errorf("fail streak after modeled solve = %v, want 0", got)
	}
	if got := attrs[features.AttrSolveCredit]; got != float64(dec.Difficulty)+9 {
		t.Errorf("credit after modeled solve = %v, want %v", got, float64(dec.Difficulty)+9)
	}
}

// TestVerifyWithoutTrackerStillWorks guards the no-tracker configuration.
func TestVerifyWithoutTrackerStillWorks(t *testing.T) {
	f, err := New(
		WithKey(testKey),
		WithScorer(newVecScorer(t)),
		WithPolicy(policy.Policy1()),
		WithSource(newTestSource(t)),
	)
	if err != nil {
		t.Fatal(err)
	}
	const ip = "10.0.0.1"
	dec, err := f.Decide(RequestContext{IP: ip})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(t.Context(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(sol, ip); err != nil {
		t.Fatal(err)
	}
	f.RecordVerifyEvidence(ip, 5, true) // no-op, must not panic
}

// TestSwapRewiresVerdictPath pins that hot-swapping between a plain and a
// shaped policy re-resolves the verdict wiring.
func TestSwapRewiresVerdictPath(t *testing.T) {
	scorer := newVerdictScorer(t, 0)
	f, err := New(
		WithKey(testKey),
		WithScorer(scorer),
		WithPolicy(policy.Policy2()),
		WithSource(newTestSource(t)),
	)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	shaped, err := policy.NewConfidenceShaped(policy.Policy2(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SwapPolicy(shaped); err != nil {
		t.Fatal(err)
	}
	after, err := f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Difficulty == after.Difficulty {
		t.Error("swap to shaped policy did not change the difficulty")
	}
	if after.Confidence != 0 {
		t.Errorf("confidence = %v after swap, want scorer's 0", after.Confidence)
	}
}
