package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aipow/internal/features"
	"aipow/internal/metrics"
	"aipow/internal/obs"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

func TestLatencyHistogramsRecord(t *testing.T) {
	f := newTestFramework(t)
	dec, err := f.Decide(RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(sol, "10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecideBatch([]RequestContext{{IP: "10.0.0.1"}, {IP: "10.0.0.9"}}, nil); err != nil {
		t.Fatal(err)
	}
	snaps := f.LatencySnapshots()
	for stage, want := range map[string]uint64{"decide": 1, "issue": 1, "verify": 1, "batch": 1} {
		if got := snaps[stage].Count; got < want {
			t.Errorf("%s histogram count = %d, want >= %d", stage, got, want)
		}
	}
	// The batch path times the batch, not its members.
	if snaps["decide"].Count != 1 {
		t.Errorf("decide count = %d after one Decide + one batch, want 1", snaps["decide"].Count)
	}
}

func TestLatencyExpositionValidates(t *testing.T) {
	f := newTestFramework(t)
	if _, err := f.Decide(RequestContext{IP: "10.0.0.1"}); err != nil {
		t.Fatal(err)
	}
	e := metrics.NewExposition()
	f.LatencyExpositionInto(e, "aipow_serving_latency_ms", "serving-path latency",
		metrics.Label{Name: "pipeline", Value: "test"})
	var b strings.Builder
	if _, err := e.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := metrics.ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("latency exposition invalid: %v\n%s", err, out)
	}
	for _, stage := range latStageNames {
		if !strings.Contains(out, `stage="`+stage+`"`) {
			t.Errorf("missing stage %q in exposition", stage)
		}
	}
}

func TestStatsUnchangedByHistograms(t *testing.T) {
	f := newTestFramework(t)
	if _, err := f.Decide(RequestContext{IP: "10.0.0.1"}); err != nil {
		t.Fatal(err)
	}
	for name := range f.Stats() {
		if strings.Contains(name, "latency") || strings.Contains(name, "stage") {
			t.Errorf("latency leaked into Stats map as %q — sim reports must stay deterministic", name)
		}
	}
}

func TestDecideTraceRecords(t *testing.T) {
	ring := obs.NewTraceRing(1, 16)
	f := newTestFramework(t, WithObserveTrace(ring), WithBypassBelow(1))
	if got := f.TraceRing(); got != ring {
		t.Fatalf("TraceRing = %p, want %p", got, ring)
	}
	f.SetTraceRung(3)

	if _, err := f.Decide(RequestContext{IP: "10.0.0.9"}); err != nil { // challenged
		t.Fatal(err)
	}
	if _, err := f.Decide(RequestContext{IP: "10.0.0.1"}); err != nil { // bypassed (score 0 < 1)
		t.Fatal(err)
	}
	samples := ring.Snapshot()
	if len(samples) != 2 {
		t.Fatalf("trace samples = %d, want 2", len(samples))
	}
	challenged, bypassed := samples[0], samples[1]
	if challenged.Kind != "decide" || challenged.Score != 10 || challenged.Difficulty != 15 {
		t.Errorf("challenged sample = %+v", challenged)
	}
	if challenged.Rung != 3 {
		t.Errorf("challenged rung = %d, want 3", challenged.Rung)
	}
	if challenged.Client != obsClientHex("10.0.0.9") {
		t.Errorf("client hash = %q", challenged.Client)
	}
	if challenged.TotalNs <= 0 || challenged.IssueNs <= 0 {
		t.Errorf("stage timings missing: %+v", challenged)
	}
	if bypassed.Difficulty != -1 {
		t.Errorf("bypassed sample difficulty = %d, want -1", bypassed.Difficulty)
	}
}

func obsClientHex(ip string) string {
	return fmt.Sprintf("%016x", obs.HashClient(ip))
}

func TestVerifyTraceRecordsOutcome(t *testing.T) {
	ring := obs.NewTraceRing(1, 16)
	f := newTestFramework(t, WithObserveTrace(ring))
	dec, err := f.Decide(RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(sol, "10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(sol, "10.0.0.1"); !errors.Is(err, puzzle.ErrReplayed) {
		t.Fatalf("replay not rejected: %v", err)
	}
	var verifies []obs.TraceSample
	for _, s := range ring.Snapshot() {
		if s.Kind == "verify" {
			verifies = append(verifies, s)
		}
	}
	if len(verifies) != 2 {
		t.Fatalf("verify samples = %d, want 2", len(verifies))
	}
	if verifies[0].Outcome != "ok" || verifies[1].Outcome != "replayed" {
		t.Errorf("outcomes = %q, %q, want ok, replayed", verifies[0].Outcome, verifies[1].Outcome)
	}
}

func TestTraceSurvivesUnrelatedSwap(t *testing.T) {
	ring := obs.NewTraceRing(1, 16)
	f := newTestFramework(t, WithObserveTrace(ring))
	if err := f.SwapPolicy(policy.Policy1()); err != nil {
		t.Fatal(err)
	}
	if f.TraceRing() != ring {
		t.Fatal("trace ring lost across a policy swap")
	}
	bigger := obs.NewTraceRing(2, 64)
	if err := f.SwapTrace(bigger); err != nil {
		t.Fatal(err)
	}
	if f.TraceRing() != bigger {
		t.Fatal("SwapTrace did not install the new ring")
	}
	if err := f.SwapTrace(nil); err != nil {
		t.Fatal(err)
	}
	if f.TraceRing() != nil {
		t.Fatal("SwapTrace(nil) did not disable tracing")
	}
	// Tracing off: decisions proceed untraced.
	if _, err := f.Decide(RequestContext{IP: "10.0.0.1"}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSampling(t *testing.T) {
	ring := obs.NewTraceRing(4, 64)
	f := newTestFramework(t, WithObserveTrace(ring))
	for i := 0; i < 32; i++ {
		if _, err := f.Decide(RequestContext{IP: "10.0.0.1"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ring.Recorded(); got != 8 {
		t.Errorf("recorded %d of 32 at 1-in-4, want 8", got)
	}
}

func TestBatchTraceSamplesPerItem(t *testing.T) {
	ring := obs.NewTraceRing(1, 64)
	f := newTestFramework(t, WithObserveTrace(ring))
	reqs := make([]RequestContext, 10)
	for i := range reqs {
		reqs[i] = RequestContext{IP: "10.0.0.1"}
	}
	if _, err := f.DecideBatch(reqs, nil); err != nil {
		t.Fatal(err)
	}
	if got := ring.Recorded(); got != 10 {
		t.Errorf("batch recorded %d traces for 10 requests at 1-in-1, want 10", got)
	}
}

// TestFlushStallEvent drives the flush loop with an injected clock that
// jumps far past the flush interval per reading, so every tick looks like
// a stalled drain and must emit an evidence.flush_stall event.
func TestFlushStallEvent(t *testing.T) {
	tracker, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []obs.Event
	var fake struct {
		mu  sync.Mutex
		now time.Time
	}
	fake.now = time.Unix(1000, 0)
	clock := func() time.Time {
		fake.mu.Lock()
		defer fake.mu.Unlock()
		fake.now = fake.now.Add(100 * time.Millisecond)
		return fake.now
	}
	f := newTestFramework(t,
		WithTracker(tracker),
		WithEvidenceBuffer(64, time.Millisecond),
		WithClock(clock),
		WithEventSink(func(e obs.Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		}),
	)
	defer f.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no flush_stall event emitted")
	}
	e := events[0]
	if e.Kind != obs.EventFlushStall {
		t.Errorf("kind = %q, want %q", e.Kind, obs.EventFlushStall)
	}
	if e.Value < 100 { // clock jumps 100 ms per reading; two readings bound the flush
		t.Errorf("stall value = %v ms, want >= 100", e.Value)
	}
}
