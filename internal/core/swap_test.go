package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

// errScorer always fails, driving the fail-closed path.
type errScorer struct{}

func (errScorer) Score(map[string]float64) (float64, error) {
	return 0, errors.New("model offline")
}

func TestSwapPolicyChangesDifficulty(t *testing.T) {
	f := newTestFramework(t)
	dec, err := f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	before := dec.Difficulty // policy2: score+5 = 15

	pol, err := policy.NewFixed(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SwapPolicy(pol); err != nil {
		t.Fatalf("SwapPolicy: %v", err)
	}
	dec, err = f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Difficulty != 3 {
		t.Fatalf("post-swap difficulty = %d, want 3 (pre-swap %d)", dec.Difficulty, before)
	}
	if got := f.PolicyName(); got != "fixed(3)" {
		t.Fatalf("PolicyName() = %q after swap", got)
	}
	if f.Stats()["swaps"] != 1 {
		t.Fatalf("swaps counter = %v, want 1", f.Stats()["swaps"])
	}
}

func TestSwapPreservesIssuedChallenges(t *testing.T) {
	// A challenge issued before a swap must verify after it: the
	// issuer/verifier (and key) are shared long-lived state.
	f := newTestFramework(t)
	dec, err := f.Decide(RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewFixed(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Swap(SetPolicy(pol), SetBypassBelow(-1)); err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(sol, "10.0.0.1"); err != nil {
		t.Fatalf("pre-swap challenge rejected after swap: %v", err)
	}
}

func TestSwapValidation(t *testing.T) {
	f := newTestFramework(t)
	if err := f.Swap(); err == nil {
		t.Error("empty swap accepted")
	}
	if err := f.SwapPolicy(nil); err == nil {
		t.Error("nil policy accepted")
	}
	if err := f.SwapScorer(nil); err == nil {
		t.Error("nil scorer accepted")
	}
	if err := f.Swap(SetFailClosedScore(11)); err == nil {
		t.Error("out-of-range fail-closed score accepted")
	}
	// Failed swaps leave the configuration untouched.
	dec, err := f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Difficulty != 15 {
		t.Fatalf("difficulty = %d after rejected swaps, want policy2's 15", dec.Difficulty)
	}
	if f.Stats()["swaps"] != 0 {
		t.Fatalf("rejected swaps counted: %v", f.Stats()["swaps"])
	}
}

func TestSwapScorerRewiresVectorPath(t *testing.T) {
	// Swapping scorers must rebuild the vector wiring (and scratch pool)
	// against each scorer's own schema: a map-only scorer disables the
	// fast path; swapping a vector scorer back re-enables it.
	vs := newVecScorer(t)
	f := newTestFramework(t, WithScorer(vs))
	if _, err := f.Decide(RequestContext{IP: "10.0.0.9"}); err != nil {
		t.Fatal(err)
	}
	if vs.vecHits.Load() != 1 || vs.mapHits.Load() != 0 {
		t.Fatalf("vector scorer not on fast path: vec=%d map=%d", vs.vecHits.Load(), vs.mapHits.Load())
	}
	if err := f.SwapScorer(mapScorer{}); err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Score != 10 || dec.ScoreErr != nil {
		t.Fatalf("map scorer after swap: score %v err %v, want 10", dec.Score, dec.ScoreErr)
	}
	vs2 := newVecScorer(t)
	if err := f.SwapScorer(vs2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Decide(RequestContext{IP: "10.0.0.9"}); err != nil {
		t.Fatal(err)
	}
	if vs2.vecHits.Load() != 1 {
		t.Fatalf("fast path not rewired for swapped-in vector scorer: vec=%d", vs2.vecHits.Load())
	}
}

// TestSwapHammer races a continuous stream of Decide/Verify traffic
// against a tight Swap loop (policy, scorer, and thresholds all churning)
// and asserts no torn reads: every decision must be internally consistent
// with exactly one of the two configurations, and fail-closed semantics
// must hold across every swap. Run under -race this is the hot-swap
// correctness gate.
func TestSwapHammer(t *testing.T) {
	f := newTestFramework(t)
	polLow, err := policy.NewFixed(1)
	if err != nil {
		t.Fatal(err)
	}
	polHigh, err := policy.NewFixed(9)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}

	// Start in config A so every decision the workers see comes from one
	// of the two hammer configurations.
	if err := f.Swap(SetScorer(mapScorer{}), SetPolicy(polLow), SetFailClosedScore(10), SetBypassBelow(0.5)); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var decisions atomic.Uint64

	// Swapper: flips between two consistent configurations as fast as it
	// can. Config A: working scorer + d=1. Config B: failing scorer +
	// d=9 + fail-closed 10. Either is valid; a torn mix (failing scorer
	// with A's low fail-closed bypassing) would trip the checks below.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				err = f.Swap(SetScorer(errScorer{}), SetPolicy(polHigh), SetFailClosedScore(10), SetBypassBelow(-1))
			} else {
				err = f.Swap(SetScorer(mapScorer{}), SetPolicy(polLow), SetFailClosedScore(10), SetBypassBelow(0.5))
			}
			if err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ip := "10.0.0.9"
			if w%2 == 0 {
				ip = "10.0.0.1"
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				dec, err := f.Decide(RequestContext{IP: ip})
				if err != nil {
					t.Errorf("decide: %v", err)
					return
				}
				decisions.Add(1)
				switch {
				case dec.ScoreErr != nil:
					// Config B: must have failed closed to score 10 and
					// must never bypass.
					if dec.Score != 10 || dec.Bypassed {
						t.Errorf("torn read: scorer error with score=%v bypassed=%v", dec.Score, dec.Bypassed)
						return
					}
					if dec.Difficulty != 9 {
						t.Errorf("torn read: fail-closed decision with difficulty %d, want config B's 9", dec.Difficulty)
						return
					}
				case dec.Bypassed:
					// Config A bypasses only genuinely low scores.
					if dec.Score >= 0.5 {
						t.Errorf("torn read: bypass at score %v", dec.Score)
						return
					}
				default:
					if dec.Difficulty != 1 && dec.Difficulty != 9 {
						t.Errorf("torn read: difficulty %d from neither config", dec.Difficulty)
						return
					}
				}
				// Verification rides the shared verifier: a swap must
				// never invalidate it. (Replay cache is per-seed, so
				// re-verifying the same solution is rejected — only
				// transport errors matter here.)
				if err := f.Verify(sol, "10.0.0.1"); err != nil && !errors.Is(err, puzzle.ErrVerify) {
					t.Errorf("verify: %v", err)
					return
				}
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if decisions.Load() == 0 {
		t.Fatal("hammer made no decisions")
	}
	if f.Stats()["swaps"] == 0 {
		t.Fatal("hammer performed no swaps")
	}
}
