package core

import (
	"time"

	"aipow/internal/metrics"
	"aipow/internal/obs"
)

// Serving-path latency histogram stages. The histograms are always on —
// atomic, allocation-free, and cheap enough (two clock reads and two
// atomic observes per decision) that there is no "observability off"
// configuration to get wrong in production.
const (
	latStageDecide = iota
	latStageIssue
	latStageVerify
	latStageBatch
	latStages
)

// latStageNames are the stage label values exported on the latency
// family.
var latStageNames = [latStages]string{"decide", "issue", "verify", "batch"}

// WithObserveTrace installs a sampled decision-trace ring. Nil (the
// default) disables tracing: the hot path then pays one pointer nil-check
// per decision. The ring is part of the swappable snapshot — replace it
// at runtime with Swap(SetTrace(...)) or the control plane's
// `observe trace(...)` spec line.
func WithObserveTrace(t *obs.TraceRing) Option {
	return func(c *config) { c.trace = t }
}

// WithEventSink registers the defense event sink. The framework itself
// emits only evidence-plane events (flush stalls); the control, feedback,
// and cluster layers attach richer emitters around the same sink.
func WithEventSink(s obs.Sink) Option {
	return func(c *config) { c.events = s }
}

// SetTrace replaces (or with nil, removes) the decision-trace ring as
// part of a Swap. Like every snapshot field, in-flight requests finish on
// the ring they loaded.
func SetTrace(t *obs.TraceRing) SwapOption {
	return func(c *swapConfig) { c.trace, c.traceSet = t, true }
}

// SwapTrace atomically replaces just the trace ring — the hot-swap behind
// an `observe trace(...)` spec line change.
func (f *Framework) SwapTrace(t *obs.TraceRing) error { return f.Swap(SetTrace(t)) }

// TraceRing reports the active trace ring (nil when tracing is off).
func (f *Framework) TraceRing() *obs.TraceRing { return f.snap.Load().trace }

// SetTraceRung records the pipeline's current adapt escalation level, so
// sampled trace records carry the rung they were decided under. The
// feedback plane calls this on every level transition.
func (f *Framework) SetTraceRung(level int) { f.traceRung.Store(int32(level)) }

// TraceRung reports the last recorded adapt escalation level.
func (f *Framework) TraceRung() int { return int(f.traceRung.Load()) }

// LatencySnapshots exports the serving-path latency histograms keyed by
// stage name (decide, issue, verify, batch). Values are milliseconds.
func (f *Framework) LatencySnapshots() map[string]metrics.HistogramSnapshot {
	out := make(map[string]metrics.HistogramSnapshot, latStages)
	for i, h := range f.lat {
		out[latStageNames[i]] = h.Snapshot()
	}
	return out
}

// StatsExpositionInto contributes the framework's serving counters to e
// under prefix, typed from the registry (monotone counters as counters).
func (f *Framework) StatsExpositionInto(e *metrics.Exposition, prefix string, labels ...metrics.Label) {
	f.stats.ExpositionInto(e, prefix, labels...)
}

// LatencyExpositionInto contributes the serving-path latency histograms
// to e as one family, each stage a labeled series (stage="decide", …) on
// top of the caller's labels.
func (f *Framework) LatencyExpositionInto(e *metrics.Exposition, name, help string, labels ...metrics.Label) {
	for i, h := range f.lat {
		stageLabels := make([]metrics.Label, 0, len(labels)+1)
		stageLabels = append(stageLabels, labels...)
		stageLabels = append(stageLabels, metrics.Label{Name: "stage", Value: latStageNames[i]})
		h.ExpositionInto(e, name, help, stageLabels...)
	}
}

// traceDecide records one sampled decision. Off the fast path (the caller
// already won the 1-in-N sampling draw) but still allocation-free: the
// redemption credit is read by re-filling a pooled vector, the same
// scratch Decide's scoring uses.
func (f *Framework) traceDecide(snap *snapshot, dec *Decision, t0, t1, t2 time.Time) {
	var credit float64
	if snap.creditIdx >= 0 {
		vp := snap.vecPool.Get().(*[]float64)
		v := *vp
		clear(v)
		snap.vecSource.AttributesVector(v, snap.schema, dec.IP, f.hotNow())
		credit = v[snap.creditIdx]
		snap.vecPool.Put(vp)
	}
	diff := int32(dec.Difficulty)
	if dec.Bypassed {
		diff = -1
	}
	snap.trace.RecordDecide(t2, obs.HashClient(dec.IP), dec.Score, dec.Confidence, credit,
		diff, f.traceRung.Load(),
		t1.Sub(t0).Nanoseconds(), t2.Sub(t1).Nanoseconds(), t2.Sub(t0).Nanoseconds())
}
