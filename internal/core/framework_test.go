package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"aipow/internal/features"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

// mapScorer scores IPs by their "threat" attribute directly.
type mapScorer struct{}

func (mapScorer) Score(attrs map[string]float64) (float64, error) {
	v, ok := attrs["threat"]
	if !ok {
		return 0, errors.New("no threat attribute")
	}
	return v, nil
}

// newTestSource maps two fixed IPs to low/high threat.
func newTestSource(t *testing.T) *features.MapStore {
	t.Helper()
	s, err := features.NewMapStore(map[string]float64{"threat": 5})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("10.0.0.1", map[string]float64{"threat": 0})  // trustworthy
	s.Put("10.0.0.9", map[string]float64{"threat": 10}) // untrustworthy
	return s
}

func newTestFramework(t *testing.T, opts ...Option) *Framework {
	t.Helper()
	base := []Option{
		WithKey(testKey),
		WithScorer(mapScorer{}),
		WithPolicy(policy.Policy2()),
		WithSource(newTestSource(t)),
	}
	f, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestNewRequiresComponents(t *testing.T) {
	src := newTestSource(t)
	tests := []struct {
		name string
		opts []Option
	}{
		{"no_scorer", []Option{WithKey(testKey), WithPolicy(policy.Policy1()), WithSource(src)}},
		{"no_policy", []Option{WithKey(testKey), WithScorer(mapScorer{}), WithSource(src)}},
		{"no_source", []Option{WithKey(testKey), WithScorer(mapScorer{}), WithPolicy(policy.Policy1())}},
		{"no_key", []Option{WithScorer(mapScorer{}), WithPolicy(policy.Policy1()), WithSource(src)}},
		{"short_key", []Option{WithKey([]byte("x")), WithScorer(mapScorer{}), WithPolicy(policy.Policy1()), WithSource(src)}},
		{"bad_fail_closed", []Option{WithKey(testKey), WithScorer(mapScorer{}), WithPolicy(policy.Policy1()), WithSource(src), WithFailClosedScore(11)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.opts...); err == nil {
				t.Fatal("incomplete config accepted")
			}
		})
	}
}

func TestDecideMapsScoreThroughPolicy(t *testing.T) {
	f := newTestFramework(t)
	low, err := f.Decide(RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	high, err := f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if low.Score != 0 || high.Score != 10 {
		t.Fatalf("scores = %v, %v", low.Score, high.Score)
	}
	if low.Difficulty != 5 { // policy2: 0 → 5
		t.Errorf("low difficulty = %d, want 5", low.Difficulty)
	}
	if high.Difficulty != 15 { // policy2: 10 → 15
		t.Errorf("high difficulty = %d, want 15", high.Difficulty)
	}
	if low.Challenge.Binding != "10.0.0.1" {
		t.Errorf("challenge bound to %q", low.Challenge.Binding)
	}
	if low.Challenge.Difficulty != low.Difficulty {
		t.Errorf("challenge difficulty %d != decision %d", low.Challenge.Difficulty, low.Difficulty)
	}
}

func TestDecideRequiresIP(t *testing.T) {
	f := newTestFramework(t)
	if _, err := f.Decide(RequestContext{}); err == nil {
		t.Fatal("empty IP accepted")
	}
}

func TestDecideFailClosed(t *testing.T) {
	// The fallback store returns no "threat" attribute → scorer errors.
	s, err := features.NewMapStore(map[string]float64{"other": 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(WithKey(testKey), WithScorer(mapScorer{}),
		WithPolicy(policy.Policy1()), WithSource(s))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(RequestContext{IP: "8.8.8.8"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.ScoreErr == nil {
		t.Fatal("scorer error not recorded")
	}
	if dec.Score != policy.MaxScore {
		t.Fatalf("fail-closed score = %v, want %v", dec.Score, policy.MaxScore)
	}
	if dec.Difficulty != 11 { // policy1 at score 10
		t.Fatalf("difficulty = %d, want 11", dec.Difficulty)
	}
	if f.Stats()["score_errors"] != 1 {
		t.Fatalf("score_errors stat = %v", f.Stats()["score_errors"])
	}
}

func TestDecideFailOpenConfigurable(t *testing.T) {
	s, err := features.NewMapStore(map[string]float64{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(WithKey(testKey), WithScorer(mapScorer{}),
		WithPolicy(policy.Policy1()), WithSource(s), WithFailClosedScore(0))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(RequestContext{IP: "8.8.8.8"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Score != 0 || dec.Difficulty != 1 {
		t.Fatalf("fail-open decision = %+v", dec)
	}
}

func TestDecideBypass(t *testing.T) {
	f := newTestFramework(t, WithBypassBelow(3))
	low, err := f.Decide(RequestContext{IP: "10.0.0.1"}) // score 0 < 3
	if err != nil {
		t.Fatal(err)
	}
	if !low.Bypassed || low.Difficulty != 0 {
		t.Fatalf("trusted client not bypassed: %+v", low)
	}
	if low.Challenge.Version != 0 {
		t.Fatal("bypassed decision carries a challenge")
	}
	high, err := f.Decide(RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if high.Bypassed {
		t.Fatal("suspicious client bypassed")
	}
	if f.Stats()["bypassed"] != 1 {
		t.Fatalf("bypassed stat = %v", f.Stats()["bypassed"])
	}
}

func TestEndToEndSolveAndVerify(t *testing.T) {
	f := newTestFramework(t)
	dec, err := f.Decide(RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(sol, "10.0.0.1"); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Replay must be rejected.
	if err := f.Verify(sol, "10.0.0.1"); !errors.Is(err, puzzle.ErrReplayed) {
		t.Fatalf("replay = %v, want ErrReplayed", err)
	}
	// Wrong presenter must be rejected.
	dec2, err := f.Decide(RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	sol2, _, err := puzzle.NewSolver().Solve(context.Background(), dec2.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(sol2, "10.0.0.9"); !errors.Is(err, puzzle.ErrBindingMismatch) {
		t.Fatalf("wrong presenter = %v, want ErrBindingMismatch", err)
	}
	stats := f.Stats()
	if stats["issued"] != 2 || stats["verified"] != 1 || stats["rejected"] != 2 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestHooksObserveDecisions(t *testing.T) {
	var mu sync.Mutex
	var seen []Decision
	f := newTestFramework(t, WithHook(func(d Decision) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, d)
	}))
	if _, err := f.Decide(RequestContext{IP: "10.0.0.9"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0].IP != "10.0.0.9" || seen[0].Difficulty != 15 {
		t.Fatalf("hook saw %+v", seen)
	}
}

func TestObserveForwardsToTracker(t *testing.T) {
	tr, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	f := newTestFramework(t, WithTracker(tr))
	if err := f.Observe(features.RequestInfo{IP: "1.2.3.4", Path: "/", At: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if tr.Tracked() != 1 {
		t.Fatal("tracker did not record request")
	}
	// Without a tracker Observe is a silent no-op.
	f2 := newTestFramework(t)
	if err := f2.Observe(features.RequestInfo{IP: "1.2.3.4", Path: "/", At: time.Now()}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockIntegration(t *testing.T) {
	now := time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	f := newTestFramework(t, WithClock(clock), WithTTL(30*time.Second))
	dec, err := f.Decide(RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Minute) // beyond TTL + skew
	if err := f.Verify(sol, "10.0.0.1"); !errors.Is(err, puzzle.ErrExpired) {
		t.Fatalf("expired solution = %v, want ErrExpired", err)
	}
}

func TestPolicyNamePassthrough(t *testing.T) {
	f := newTestFramework(t)
	if got := f.PolicyName(); got != "policy2" {
		t.Fatalf("PolicyName() = %q", got)
	}
}
