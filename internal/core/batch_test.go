package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"aipow/internal/features"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

// batchTestSource maps a spread of IPs onto the full threat range, so a
// batch crosses bypass, low-difficulty, and high-difficulty decisions.
func batchTestSource(t *testing.T, n int) (*features.MapStore, []string) {
	t.Helper()
	s, err := features.NewMapStore(map[string]float64{"threat": 5})
	if err != nil {
		t.Fatal(err)
	}
	ips := make([]string, n)
	for i := range ips {
		ips[i] = fmt.Sprintf("192.0.2.%d", i)
		s.Put(ips[i], map[string]float64{"threat": float64(i % 11)})
	}
	return s, ips
}

// TestDecideBatchMatchesDecide is the batch-equivalence gate: DecideBatch
// must produce, item for item, the decision a Decide loop produces — same
// score, same difficulty, same bypass — and its challenges must verify
// against the same key. Only the challenge nonces may differ.
func TestDecideBatchMatchesDecide(t *testing.T) {
	src, ips := batchTestSource(t, 700) // > 2 × maxDecideChunk: exercises chunk seams
	f := newTestFramework(t, WithSource(src), WithBypassBelow(1))

	reqs := make([]RequestContext, len(ips))
	for i, ip := range ips {
		reqs[i] = RequestContext{IP: ip}
	}
	batch, err := f.DecideBatch(reqs, nil)
	if err != nil {
		t.Fatalf("DecideBatch: %v", err)
	}
	if len(batch) != len(reqs) {
		t.Fatalf("DecideBatch returned %d decisions for %d requests", len(batch), len(reqs))
	}
	for i, req := range reqs {
		single, err := f.Decide(req)
		if err != nil {
			t.Fatalf("Decide %s: %v", req.IP, err)
		}
		got := batch[i]
		if got.IP != single.IP || got.Score != single.Score ||
			got.Difficulty != single.Difficulty || got.Bypassed != single.Bypassed {
			t.Errorf("ip %s: batch {score=%g diff=%d bypass=%v}, single {score=%g diff=%d bypass=%v}",
				req.IP, got.Score, got.Difficulty, got.Bypassed,
				single.Score, single.Difficulty, single.Bypassed)
		}
		if !got.Bypassed && got.Challenge.Binding != req.IP {
			t.Errorf("ip %s: batch challenge bound to %q", req.IP, got.Challenge.Binding)
		}
	}

	// A batch-issued challenge is a real challenge: solve and verify one.
	var challenged *Decision
	for i := range batch {
		if !batch[i].Bypassed {
			challenged = &batch[i]
			break
		}
	}
	if challenged == nil {
		t.Fatal("no challenged decision in the batch")
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), challenged.Challenge)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := f.Verify(sol, challenged.IP); err != nil {
		t.Fatalf("Verify of batch-issued challenge: %v", err)
	}
}

// TestDecideBatchReusesDst pins the dst contract: a capacious dst comes
// back resliced, not reallocated.
func TestDecideBatchReusesDst(t *testing.T) {
	src, ips := batchTestSource(t, 8)
	f := newTestFramework(t, WithSource(src))
	reqs := make([]RequestContext, len(ips))
	for i, ip := range ips {
		reqs[i] = RequestContext{IP: ip}
	}
	dst := make([]Decision, 0, len(reqs))
	out, err := f.DecideBatch(reqs, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[:1][0] {
		t.Error("DecideBatch reallocated a dst with sufficient capacity")
	}
}

// TestVerifyBatchMatchesVerify checks the batch redemption path: valid
// solutions pass, tampered ones fail with the same sentinel Verify
// returns, and replay of a batch-verified solution is caught.
func TestVerifyBatchMatchesVerify(t *testing.T) {
	src, ips := batchTestSource(t, 6)
	f := newTestFramework(t, WithSource(src))

	sols := make([]puzzle.Solution, len(ips))
	for i, ip := range ips {
		dec, err := f.Decide(RequestContext{IP: ip})
		if err != nil {
			t.Fatal(err)
		}
		sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
		if err != nil {
			t.Fatal(err)
		}
		sols[i] = sol
	}
	sols[3].Challenge.Tag[0] ^= 0xFF // forged

	verdicts, err := f.VerifyBatch(sols, ips, nil)
	if err != nil {
		t.Fatalf("VerifyBatch: %v", err)
	}
	for i, v := range verdicts {
		if i == 3 {
			if v == nil {
				t.Error("forged solution passed batch verification")
			}
			continue
		}
		if v != nil {
			t.Errorf("solution %d rejected: %v", i, v)
		}
	}
	// Batch-verified solutions are burned in the same replay cache.
	if err := f.Verify(sols[0], ips[0]); err == nil {
		t.Error("batch-verified solution replayed through single-op Verify")
	}
}

// TestBatchHotSwapRace hammers DecideBatch and VerifyBatch against
// concurrent configuration hot-swaps and buffered evidence flushes; run
// under -race this pins the lock-free snapshot discipline of the batch
// paths.
func TestBatchHotSwapRace(t *testing.T) {
	tracker, err := features.NewTracker(features.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	src, ips := batchTestSource(t, 64)
	f := newTestFramework(t,
		WithSource(src),
		WithTracker(tracker),
		WithEvidenceBuffer(16, time.Millisecond))
	defer f.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := make([]RequestContext, len(ips))
			for i, ip := range ips {
				reqs[i] = RequestContext{IP: ip}
			}
			var dst []Decision
			obs := make([]features.RequestInfo, len(ips))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				dst, err = f.DecideBatch(reqs, dst)
				if err != nil {
					t.Errorf("DecideBatch: %v", err)
					return
				}
				for i, ip := range ips {
					obs[i] = features.RequestInfo{IP: ip, At: time.Now()}
				}
				if err := f.ObserveBatch(obs); err != nil {
					t.Errorf("ObserveBatch: %v", err)
					return
				}
				sols := []puzzle.Solution{{Challenge: dst[0].Challenge}}
				sols[0].Challenge.Tag[0] ^= 0xFF
				if _, err := f.VerifyBatch(sols, ips[:1], nil); err != nil {
					t.Errorf("VerifyBatch: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		pol := policy.Policy1()
		if i%2 == 0 {
			pol = policy.Policy2()
		}
		if err := f.SwapPolicy(pol); err != nil {
			t.Fatalf("SwapPolicy: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCloseStopsFlushLoop pins the flusher lifecycle: building a buffered
// framework starts exactly one goroutine, Close stops it and drains the
// buffers, and a second Close is a no-op. Control-plane rebuilds lean on
// this — a leaked flush loop per SIGHUP would bleed the server dry.
func TestCloseStopsFlushLoop(t *testing.T) {
	tracker, err := features.NewTracker()
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	frameworks := make([]*Framework, 8)
	for i := range frameworks {
		frameworks[i] = newTestFramework(t,
			WithTracker(tracker),
			WithEvidenceBuffer(64, time.Hour)) // interval never fires: drain is Close's job
	}
	// Strand evidence in the buffers, under the inline-flush limit.
	for i, f := range frameworks {
		if err := f.Observe(features.RequestInfo{IP: fmt.Sprintf("198.51.100.%d", i), At: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	if pending := tracker.PendingWriteBack(); pending != len(frameworks) {
		t.Fatalf("%d events pending, want %d", pending, len(frameworks))
	}
	for _, f := range frameworks {
		if err := f.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
	if pending := tracker.PendingWriteBack(); pending != 0 {
		t.Errorf("%d events still pending after Close; drain is part of the contract", pending)
	}
	// The flush goroutines exit asynchronously after Close returns from
	// the handshake; give the scheduler a moment before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines: %d before, %d after Close — flush loop leaked", before, after)
	}

	// Closed frameworks still serve; evidence writes degrade to synchronous.
	f := frameworks[0]
	if err := f.Observe(features.RequestInfo{IP: "198.51.100.200", At: time.Now()}); err != nil {
		t.Fatalf("Observe after Close: %v", err)
	}
	if pending := tracker.PendingWriteBack(); pending != 0 {
		t.Errorf("post-Close Observe buffered %d events; must be synchronous", pending)
	}
	if _, err := f.Decide(RequestContext{IP: "10.0.0.1"}); err != nil {
		t.Errorf("Decide after Close: %v", err)
	}
}
