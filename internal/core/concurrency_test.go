package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"aipow/internal/puzzle"
)

// TestFrameworkConcurrentDecideVerify hammers one framework from many
// goroutines mixing decisions, solves and verifications — the shape of a
// real server under load. Run with -race in CI.
func TestFrameworkConcurrentDecideVerify(t *testing.T) {
	f := newTestFramework(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ip := fmt.Sprintf("10.9.%d.1", w)
			solver := puzzle.NewSolver()
			for i := 0; i < 20; i++ {
				dec, err := f.Decide(RequestContext{IP: ip})
				if err != nil {
					errCh <- err
					return
				}
				sol, _, err := solver.Solve(context.Background(), dec.Challenge)
				if err != nil {
					errCh <- err
					return
				}
				if err := f.Verify(sol, ip); err != nil {
					errCh <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	stats := f.Stats()
	if stats["issued"] != 160 || stats["verified"] != 160 {
		t.Fatalf("stats = %v, want 160 issued and verified", stats)
	}
}

// TestFrameworkStatsCounters pins the counter taxonomy: every decision
// path increments exactly one counter.
func TestFrameworkStatsCounters(t *testing.T) {
	f := newTestFramework(t, WithBypassBelow(3))
	// Bypass path.
	if _, err := f.Decide(RequestContext{IP: "10.0.0.1"}); err != nil { // score 0
		t.Fatal(err)
	}
	// Challenge path.
	dec, err := f.Decide(RequestContext{IP: "10.0.0.9"}) // score 10
	if err != nil {
		t.Fatal(err)
	}
	// Rejected path.
	bad := puzzle.Solution{Challenge: dec.Challenge, Nonce: 0}
	for bad.Challenge.Meets(bad.Nonce) {
		bad.Nonce++
	}
	_ = f.Verify(bad, "10.0.0.9")

	stats := f.Stats()
	want := map[string]float64{"bypassed": 1, "issued": 1, "rejected": 1}
	for k, v := range want {
		if stats[k] != v {
			t.Errorf("stats[%q] = %v, want %v (all: %v)", k, stats[k], v, stats)
		}
	}
}
