package core

import (
	"sync/atomic"
	"testing"
	"time"

	"aipow/internal/features"
	"aipow/internal/policy"
)

// vecScorer is a toy VectorScorer: score = threat slot value, so fast-path
// engagement is directly observable through the decision score.
type vecScorer struct {
	schema  *features.Schema
	vecHits atomic.Int64
	mapHits atomic.Int64
}

func newVecScorer(t *testing.T) *vecScorer {
	t.Helper()
	s, err := features.NewSchema("threat")
	if err != nil {
		t.Fatal(err)
	}
	return &vecScorer{schema: s}
}

func (s *vecScorer) Score(attrs map[string]float64) (float64, error) {
	s.mapHits.Add(1)
	return attrs["threat"], nil
}

func (s *vecScorer) Schema() *features.Schema { return s.schema }

func (s *vecScorer) ScoreVector(v []float64) (float64, error) {
	s.vecHits.Add(1)
	return v[0], nil
}

// TestDecideUsesVectorFastPath wires a VectorScorer with a vector-capable
// source and asserts Decide scores through vectors, never touching the
// map path, with results identical to the map path's.
func TestDecideUsesVectorFastPath(t *testing.T) {
	scorer := newVecScorer(t)
	src := newTestSource(t)
	f, err := New(
		WithKey(testKey),
		WithScorer(scorer),
		WithPolicy(policy.Policy2()),
		WithSource(src),
	)
	if err != nil {
		t.Fatal(err)
	}
	for ip, want := range map[string]float64{
		"10.0.0.1": 0,  // known, trustworthy
		"10.0.0.9": 10, // known, untrustworthy
		"10.9.9.9": 5,  // fallback profile
	} {
		dec, err := f.Decide(RequestContext{IP: ip})
		if err != nil {
			t.Fatalf("Decide(%s): %v", ip, err)
		}
		if dec.Score != want {
			t.Errorf("Decide(%s).Score = %v, want %v", ip, dec.Score, want)
		}
	}
	if scorer.vecHits.Load() != 3 || scorer.mapHits.Load() != 0 {
		t.Errorf("vector/map hits = %d/%d, want 3/0", scorer.vecHits.Load(), scorer.mapHits.Load())
	}
}

// TestDecideFallsBackOnPartialCoverage registers a profile missing the
// schema attribute: the fast path must hand off to the map path instead of
// scoring a silently zero-filled vector.
func TestDecideFallsBackOnPartialCoverage(t *testing.T) {
	scorer := newVecScorer(t)
	src := newTestSource(t)
	src.Put("10.0.0.5", map[string]float64{"unrelated": 1}) // lacks "threat"
	f, err := New(
		WithKey(testKey),
		WithScorer(scorer),
		WithPolicy(policy.Policy2()),
		WithSource(src),
	)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Decide(RequestContext{IP: "10.0.0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if scorer.mapHits.Load() != 1 {
		t.Errorf("map path hits = %d, want 1 (fallback)", scorer.mapHits.Load())
	}
	// The toy map scorer reads a missing key as 0 without erroring; the
	// point here is the routing, and that the decision still issued.
	if dec.Challenge.Difficulty == 0 {
		t.Error("no challenge issued on fallback path")
	}
}

// TestDecideFastPathConcurrent exercises the pooled vector scratch under
// parallelism (meaningful with -race).
func TestDecideFastPathConcurrent(t *testing.T) {
	scorer := newVecScorer(t)
	src := newTestSource(t)
	f, err := New(
		WithKey(testKey),
		WithScorer(scorer),
		WithPolicy(policy.Policy2()),
		WithSource(src),
		WithClock(func() time.Time { return time.Unix(1000, 0) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 200; i++ {
				if _, err := f.Decide(RequestContext{IP: "10.0.0.9"}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
