package core

import (
	"fmt"
	"sync"
	"time"

	"aipow/internal/features"
	"aipow/internal/puzzle"
)

// Batch front door. Proxies and ingestion pipelines that already hold many
// requests (an accept loop draining a socket, a load balancer shard, the
// simulation engine's per-tick event runs) decide them through DecideBatch
// instead of a Decide loop. The per-decision pipeline is identical — same
// scoring, same policy, same issuance, same hooks — but the fixed costs
// are paid once per batch instead of once per request: one snapshot load,
// one clock read, one scratch checkout, one vector-layout resolution, and
// (through features.VectorBatchSource and puzzle.IssueBatch) shard-grouped
// tracker reads and chunked entropy reads.
//
// Batches are chunked at maxDecideChunk internally, so arbitrarily large
// batches neither inflate the pooled scratch nor hold a tracker shard's
// data pinned in cache past a bounded run.

// maxDecideChunk bounds the scratch footprint of one DecideBatch chunk
// (~26 KiB of float64 rows at the 9-attribute schema plus the challenge
// slice), large enough to amortize fixed costs thoroughly.
const maxDecideChunk = 256

// decideScratch is the pooled per-chunk state of DecideBatch.
type decideScratch struct {
	vec   []float64
	masks []uint64
	ips   []string
	diffs []int
	chs   []puzzle.Challenge
}

var decidePool = sync.Pool{New: func() any { return new(decideScratch) }}

// verifyScratch is the pooled per-call state of VerifyBatch's grouped
// evidence write.
type verifyScratch struct {
	ips   []string
	diffs []int
	oks   []bool
}

var verifyPool = sync.Pool{New: func() any { return new(verifyScratch) }}

// grow returns s resized to n, reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// DecideBatch runs Decide for every request in reqs on one configuration
// snapshot loaded at entry (a concurrent Swap is observed by the whole
// batch or not at all) and returns the decisions in request order. When
// dst has capacity for the results it is reused; otherwise a fresh slice
// is allocated. Per-decision semantics — scoring, fail-closed
// substitution, bypass, confidence-shaped difficulty, hooks — match
// Decide exactly; an issuance failure (or an empty IP anywhere in the
// batch) fails the whole batch with no challenges returned.
func (f *Framework) DecideBatch(reqs []RequestContext, dst []Decision) ([]Decision, error) {
	for i := range reqs {
		if reqs[i].IP == "" {
			return nil, fmt.Errorf("core: batch request %d without client IP", i)
		}
	}
	dst = grow(dst, len(reqs))
	if len(reqs) == 0 {
		return dst, nil
	}
	t0 := time.Now()
	snap := f.snap.Load()
	now := f.hotNow()
	sc := decidePool.Get().(*decideScratch)
	for start := 0; start < len(reqs); start += maxDecideChunk {
		end := min(start+maxDecideChunk, len(reqs))
		if err := f.decideChunk(snap, now, reqs[start:end], dst[start:end], sc); err != nil {
			decidePool.Put(sc)
			return nil, err
		}
	}
	decidePool.Put(sc)
	t1 := time.Now()
	f.lat[latStageBatch].ObserveDuration(t1.Sub(t0))
	if snap.trace != nil {
		// Per-item sampling draws, so batch-decided traffic is sampled at
		// the same 1-in-N rate as the request-at-a-time path. Stage
		// timings are batch-amortized and not attributable per item, so
		// only the decision fields are recorded.
		for i := range dst {
			if snap.trace.Sampled() {
				f.traceDecide(snap, &dst[i], t1, t1, t1)
			}
		}
	}
	return dst, nil
}

// decideChunk decides one chunk: a whole-chunk vector fill and score pass,
// then one IssueBatch over the non-bypassed slots, then batched counter
// updates and in-order hook firing.
func (f *Framework) decideChunk(snap *snapshot, now time.Time, reqs []RequestContext, dst []Decision, sc *decideScratch) error {
	n := len(reqs)
	sc.ips = grow(sc.ips, n)
	for i := range reqs {
		sc.ips[i] = reqs[i].IP
	}

	// Whole-chunk vector fill: one shard-grouped tracker pass instead of n
	// independent lookups. Rows with partial coverage fall back to the
	// per-item path below, exactly like Decide's map fallback.
	batched := snap.vecBatch != nil
	stride := 0
	var full uint64
	if batched {
		stride = snap.schema.Len()
		full = snap.schema.FullMask()
		sc.vec = grow(sc.vec, n*stride)
		clear(sc.vec)
		sc.masks = grow(sc.masks, n)
		clear(sc.masks)
		snap.vecBatch.AttributesVectorBatch(sc.vec, stride, snap.schema, sc.ips, sc.masks, now)
	}

	sc.diffs = grow(sc.diffs, n)
	var nBypassed, nScoreErrs, nIssued uint64
	for i := range reqs {
		dec := &dst[i]
		*dec = Decision{IP: reqs[i].IP}
		var score, conf float64
		var err error
		if batched && sc.masks[i] == full {
			row := sc.vec[i*stride : (i+1)*stride]
			if snap.verdictScorer != nil {
				var ver features.Verdict
				ver, err = snap.verdictScorer.VerdictVector(row)
				score, conf = ver.Score, ver.Confidence
			} else {
				score, err = snap.vecScorer.ScoreVector(row)
				conf = 1
			}
		} else {
			score, conf, err = snap.score(reqs[i].IP, now)
		}
		if err != nil {
			dec.ScoreErr = err
			score, conf = snap.failClosedScore, 1
			nScoreErrs++
		}
		dec.Score, dec.Confidence = score, conf
		if snap.bypassBelow >= 0 && score < snap.bypassBelow {
			dec.Bypassed = true
			nBypassed++
			sc.diffs[i] = -1 // IssueBatch's "no challenge" sentinel
			continue
		}
		if snap.confPol != nil {
			dec.Difficulty = snap.confPol.ConfidentDifficulty(score, conf)
		} else {
			dec.Difficulty = snap.pol.Difficulty(score)
		}
		sc.diffs[i] = dec.Difficulty
		nIssued++
	}

	if nIssued > 0 {
		sc.chs = grow(sc.chs, n)
		if err := f.issuer.IssueBatch(sc.ips, sc.diffs, sc.chs); err != nil {
			return fmt.Errorf("core: issue challenge batch: %w", err)
		}
		for i := range dst {
			if sc.diffs[i] >= 0 {
				dst[i].Challenge = sc.chs[i]
				f.diffIssued[sc.diffs[i]].Add(1)
			}
		}
	}
	if nScoreErrs > 0 {
		f.cScoreErrs.Add(nScoreErrs)
	}
	if nBypassed > 0 {
		f.cBypassed.Add(nBypassed)
	}
	if nIssued > 0 {
		f.cIssued.Add(nIssued)
	}
	if len(f.hooks) > 0 {
		for i := range dst {
			f.fire(dst[i])
		}
	}
	return nil
}

// ObserveBatch feeds a batch of requests into the attached behavior
// tracker (a no-op without one), grouping the writes by tracker shard so
// each shard's lock is taken once per batch instead of once per request.
// With the evidence buffer enabled the events are appended to the
// write-back buffers instead, like Observe. Any empty IP rejects the whole
// batch before any event is recorded.
func (f *Framework) ObserveBatch(reqs []features.RequestInfo) error {
	if f.tracker == nil {
		return nil
	}
	if f.buffered() {
		for i := range reqs {
			if reqs[i].IP == "" {
				return fmt.Errorf("features: batch request %d without IP", i)
			}
		}
		for i := range reqs {
			if err := f.tracker.ObserveBuffered(reqs[i], f.wbSize); err != nil {
				return err
			}
		}
		return nil
	}
	return f.tracker.ObserveBatch(reqs)
}

// VerifyBatch verifies sols[i] as presented by bindings[i], returning one
// verdict per solution in order (nil = serve the resource), with the
// per-solution semantics of Verify: same checks against one clock reading,
// same counters, same evidence write-back. The evidence for the whole
// batch is folded into the tracker with one lock acquisition per touched
// shard. When dst has capacity for the verdicts it is reused. The error
// return reports only batch-shape problems; per-solution failures live in
// the verdict slice.
func (f *Framework) VerifyBatch(sols []puzzle.Solution, bindings []string, dst []error) ([]error, error) {
	if len(sols) != len(bindings) {
		return nil, fmt.Errorf("core: batch shape mismatch: %d solutions, %d bindings",
			len(sols), len(bindings))
	}
	dst = grow(dst, len(sols))
	if len(sols) == 0 {
		return dst, nil
	}
	now := f.hotNow()
	buffered := f.buffered()
	grouped := f.tracker != nil && !buffered
	var sc *verifyScratch
	if grouped {
		sc = verifyPool.Get().(*verifyScratch)
		sc.ips = grow(sc.ips, len(sols))
		sc.diffs = grow(sc.diffs, len(sols))
		sc.oks = grow(sc.oks, len(sols))
	}
	var nVerified, nRejected uint64
	for i := range sols {
		err := f.verifier.VerifyAt(&sols[i], bindings[i], now)
		dst[i] = err
		d := 0
		if err == nil {
			nVerified++
			d = sols[i].Challenge.Difficulty
			if d >= 0 && d < len(f.diffVerified) {
				f.diffVerified[d].Add(1)
			}
		} else {
			nRejected++
		}
		switch {
		case grouped:
			// RecordVerifyBatch skips empty IPs, so empty bindings need no
			// special case — but every slot must be written, the scratch is
			// pooled and may hold a previous batch's entries.
			sc.ips[i], sc.diffs[i], sc.oks[i] = bindings[i], d, err == nil
		case buffered && bindings[i] != "":
			f.tracker.RecordVerifyBuffered(bindings[i], d, err == nil, now, f.wbSize)
		}
	}
	if grouped {
		f.tracker.RecordVerifyBatch(sc.ips, sc.diffs, sc.oks, now)
		verifyPool.Put(sc)
	}
	if nVerified > 0 {
		f.cVerified.Add(nVerified)
	}
	if nRejected > 0 {
		f.cRejected.Add(nRejected)
	}
	return dst, nil
}
