// Package core implements the paper's central contribution: the
// policy-driven, AI-assisted PoW framework that wires the five modular
// components together — an AI model producing a reputation score, a policy
// mapping score to difficulty, a puzzle generator, a puzzle verifier, and
// the traffic feature source feeding the model.
//
// The request path follows Figure 1 of the paper:
//
//	(1) a client request arrives              → Decide(RequestContext)
//	(2) the AI model scores its features      → Scorer.Score(Source.Attributes(ip))
//	(3) the policy maps score to difficulty   → Policy.Difficulty(score)
//	(4) the generator issues the puzzle       → Issuer.Issue(ip, d)
//	(5,6) the solved puzzle is verified       → Verify(solution, ip)
//	(7) the caller serves the resource.
//
// Every component is injected, satisfying the paper's modularity claim:
// swap the scorer (DAbR, kNN, behavioral), the policy (Policies 1–3, DSL
// rules, adaptive wrappers), or the feature source without touching the
// pipeline.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"aipow/internal/features"
	"aipow/internal/metrics"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

// Scorer is the AI-model seam: anything that maps attribute vectors to a
// reputation score in [0, 10] (higher = less trustworthy). reputation.Model
// and reputation.KNN satisfy it.
type Scorer interface {
	Score(attrs map[string]float64) (float64, error)
}

// RequestContext identifies one incoming request.
type RequestContext struct {
	// IP is the client identity; it becomes the challenge binding.
	IP string
}

// Decision is the outcome of the scoring-and-policy pipeline for one
// request.
type Decision struct {
	// IP echoes the request.
	IP string

	// Score is the reputation score used (after fail-closed substitution,
	// if the scorer errored).
	Score float64

	// ScoreErr records a scorer failure. When non-nil, Score is the
	// configured fail-closed score, not a model output.
	ScoreErr error

	// Bypassed reports that the request was let through without a puzzle
	// (score under the bypass threshold). Challenge is zero in that case.
	Bypassed bool

	// Difficulty is the assigned puzzle difficulty (0 when bypassed).
	Difficulty int

	// Challenge is the issued puzzle (zero when bypassed).
	Challenge puzzle.Challenge
}

// Hook observes decisions, for logging and experiment accounting.
type Hook func(Decision)

// Framework is the assembled pipeline. Construct with New; all methods are
// safe for concurrent use.
type Framework struct {
	scorer   Scorer
	pol      policy.Policy
	source   features.Source
	tracker  *features.Tracker
	issuer   *puzzle.Issuer
	verifier *puzzle.Verifier
	now      func() time.Time
	hooks    []Hook

	failClosedScore float64
	bypassBelow     float64 // < 0 disables bypass

	// Vector fast path, wired at New time when both the scorer and the
	// source support interned vectors (features.VectorScorer /
	// features.VectorSource). When schema is nil Decide uses the
	// map-based compatibility path.
	schema    *features.Schema
	vecScorer features.VectorScorer
	vecSource features.VectorSource
	vecPool   sync.Pool // *[]float64, len == schema.Len()

	stats metrics.Registry

	// Hot-path counters, pre-resolved once at New time so Decide/Verify
	// never touch the registry's map or lock per request.
	cIssued    *metrics.Counter
	cVerified  *metrics.Counter
	cRejected  *metrics.Counter
	cBypassed  *metrics.Counter
	cScoreErrs *metrics.Counter
}

// config collects the options New applies.
type config struct {
	key         []byte
	scorer      Scorer
	pol         policy.Policy
	source      features.Source
	tracker     *features.Tracker
	now         func() time.Time
	ttl         time.Duration
	maxDiff     int
	replaySize  int
	hooks       []Hook
	failClosed  float64
	bypassBelow float64
	clockSkew   time.Duration
}

// Option customizes the framework.
type Option func(*config)

// WithKey sets the HMAC key shared by issuer and verifier. Required,
// minimum 16 bytes.
func WithKey(key []byte) Option { return func(c *config) { c.key = key } }

// WithScorer sets the AI model. Required.
func WithScorer(s Scorer) Option { return func(c *config) { c.scorer = s } }

// WithPolicy sets the score→difficulty policy. Required.
func WithPolicy(p policy.Policy) Option { return func(c *config) { c.pol = p } }

// WithSource sets the attribute source consulted per request. Required.
func WithSource(s features.Source) Option { return func(c *config) { c.source = s } }

// WithTracker attaches a behavior tracker; Observe forwards to it. The
// tracker is typically also wrapped into the Source via features.Combined.
func WithTracker(t *features.Tracker) Option { return func(c *config) { c.tracker = t } }

// WithClock injects the time source (default time.Now). Experiments pass
// the simulator's virtual clock.
func WithClock(now func() time.Time) Option { return func(c *config) { c.now = now } }

// WithTTL sets challenge lifetime (default puzzle.DefaultTTL).
func WithTTL(ttl time.Duration) Option { return func(c *config) { c.ttl = ttl } }

// WithMaxDifficulty caps what the issuer will sign (default 32).
func WithMaxDifficulty(d int) Option { return func(c *config) { c.maxDiff = d } }

// WithReplayCacheSize bounds the single-use seed cache (default 1<<16).
// Zero disables replay protection entirely — only sensible in benchmarks.
func WithReplayCacheSize(n int) Option { return func(c *config) { c.replaySize = n } }

// WithHook registers a decision observer. Hooks run synchronously on the
// Decide path and must be fast.
func WithHook(h Hook) Option { return func(c *config) { c.hooks = append(c.hooks, h) } }

// WithFailClosedScore sets the score assumed when the scorer errors
// (default 10, the most suspicious). Fail-open (0) is possible but
// explicitly a policy decision.
func WithFailClosedScore(s float64) Option { return func(c *config) { c.failClosed = s } }

// WithBypassBelow lets requests scoring strictly under threshold through
// without any puzzle. The paper always issues a puzzle (cost “increases as
// the client's reputation score worsens” from a non-zero floor); bypass is
// an extension for sites that cannot tolerate any latency on trusted
// traffic. Negative disables (the default).
func WithBypassBelow(threshold float64) Option {
	return func(c *config) { c.bypassBelow = threshold }
}

// WithClockSkew sets issuer/verifier skew tolerance (default 2 s).
func WithClockSkew(d time.Duration) Option { return func(c *config) { c.clockSkew = d } }

// New assembles a Framework, validating that all required components are
// present and mutually consistent.
func New(opts ...Option) (*Framework, error) {
	cfg := config{
		now:         time.Now,
		ttl:         puzzle.DefaultTTL,
		maxDiff:     32,
		replaySize:  1 << 16,
		failClosed:  policy.MaxScore,
		bypassBelow: -1,
		clockSkew:   2 * time.Second,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	switch {
	case cfg.scorer == nil:
		return nil, errors.New("core: a Scorer is required (WithScorer)")
	case cfg.pol == nil:
		return nil, errors.New("core: a Policy is required (WithPolicy)")
	case cfg.source == nil:
		return nil, errors.New("core: a feature Source is required (WithSource)")
	case cfg.key == nil:
		return nil, errors.New("core: an HMAC key is required (WithKey)")
	}
	if cfg.failClosed < policy.MinScore || cfg.failClosed > policy.MaxScore {
		return nil, fmt.Errorf("core: fail-closed score %v outside [%v, %v]",
			cfg.failClosed, policy.MinScore, policy.MaxScore)
	}

	issuer, err := puzzle.NewIssuer(cfg.key,
		puzzle.WithIssuerNow(cfg.now),
		puzzle.WithTTL(cfg.ttl),
		puzzle.WithIssuerMaxDifficulty(cfg.maxDiff),
	)
	if err != nil {
		return nil, fmt.Errorf("core: build issuer: %w", err)
	}
	verifierOpts := []puzzle.VerifierOption{
		puzzle.WithVerifierNow(cfg.now),
		puzzle.WithClockSkew(cfg.clockSkew),
	}
	if cfg.replaySize > 0 {
		verifierOpts = append(verifierOpts,
			puzzle.WithReplayCache(puzzle.NewReplayCache(cfg.replaySize, cfg.now)))
	}
	verifier, err := puzzle.NewVerifier(cfg.key, verifierOpts...)
	if err != nil {
		return nil, fmt.Errorf("core: build verifier: %w", err)
	}

	f := &Framework{
		scorer:          cfg.scorer,
		pol:             cfg.pol,
		source:          cfg.source,
		tracker:         cfg.tracker,
		issuer:          issuer,
		verifier:        verifier,
		now:             cfg.now,
		hooks:           cfg.hooks,
		failClosedScore: cfg.failClosed,
		bypassBelow:     cfg.bypassBelow,
	}
	f.cIssued = f.stats.Counter("issued")
	f.cVerified = f.stats.Counter("verified")
	f.cRejected = f.stats.Counter("rejected")
	f.cBypassed = f.stats.Counter("bypassed")
	f.cScoreErrs = f.stats.Counter("score_errors")

	if vs, ok := cfg.scorer.(features.VectorScorer); ok {
		if vsrc, ok := cfg.source.(features.VectorSource); ok {
			if sch := vs.Schema(); sch != nil {
				f.schema, f.vecScorer, f.vecSource = sch, vs, vsrc
				f.vecPool.New = func() any {
					v := make([]float64, sch.Len())
					return &v
				}
			}
		}
	}
	return f, nil
}

// Decide runs steps 2–4 of the protocol for one request: score the
// client's features, map the score to a difficulty, and issue a bound
// challenge.
func (f *Framework) Decide(req RequestContext) (Decision, error) {
	if req.IP == "" {
		return Decision{}, errors.New("core: request without client IP")
	}
	dec := Decision{IP: req.IP}

	score, err := f.score(req.IP)
	if err != nil {
		// Fail closed: an unscorable client is treated as configured,
		// default maximally suspicious. The error is preserved on the
		// decision for observability.
		dec.ScoreErr = err
		score = f.failClosedScore
		f.cScoreErrs.Inc()
	}
	dec.Score = score

	if f.bypassBelow >= 0 && score < f.bypassBelow {
		dec.Bypassed = true
		f.cBypassed.Inc()
		f.fire(dec)
		return dec, nil
	}

	dec.Difficulty = f.pol.Difficulty(score)
	ch, err := f.issuer.Issue(req.IP, dec.Difficulty)
	if err != nil {
		return Decision{}, fmt.Errorf("core: issue challenge: %w", err)
	}
	dec.Challenge = ch
	f.cIssued.Inc()
	f.fire(dec)
	return dec, nil
}

// score runs the AI model over the client's attributes, preferring the
// interned vector fast path (no map, no allocations) and falling back to
// the map-based Source/Scorer pair when the fast path is unavailable or a
// source could not cover the full schema — the map path then reports
// exactly which attribute was missing, and Decide fails closed.
func (f *Framework) score(ip string) (float64, error) {
	if f.schema != nil {
		vp := f.vecPool.Get().(*[]float64)
		v := *vp
		clear(v)
		if mask := f.vecSource.AttributesVector(v, f.schema, ip, f.now()); mask == f.schema.FullMask() {
			score, err := f.vecScorer.ScoreVector(v)
			f.vecPool.Put(vp)
			return score, err
		}
		f.vecPool.Put(vp)
	}
	return f.scorer.Score(f.source.Attributes(ip, f.now()))
}

// Verify runs steps 5–6: check the solution presented by binding. A nil
// return means the caller should serve the resource.
func (f *Framework) Verify(sol puzzle.Solution, binding string) error {
	if err := f.verifier.Verify(sol, binding); err != nil {
		f.cRejected.Inc()
		return err
	}
	f.cVerified.Inc()
	return nil
}

// Observe feeds one request into the attached behavior tracker (a no-op
// without one). Call it for every request, including ones that fail
// verification — failures are behavioral signal.
func (f *Framework) Observe(req features.RequestInfo) error {
	if f.tracker == nil {
		return nil
	}
	return f.tracker.Observe(req)
}

// PolicyName reports the active policy's name for logs and tables.
func (f *Framework) PolicyName() string { return f.pol.Name() }

// Stats returns a snapshot of the framework's counters: issued, verified,
// rejected, bypassed, score_errors.
func (f *Framework) Stats() map[string]float64 { return f.stats.Snapshot() }

// fire invokes hooks synchronously.
func (f *Framework) fire(dec Decision) {
	for _, h := range f.hooks {
		h(dec)
	}
}
