// Package core implements the paper's central contribution: the
// policy-driven, AI-assisted PoW framework that wires the five modular
// components together — an AI model producing a reputation score, a policy
// mapping score to difficulty, a puzzle generator, a puzzle verifier, and
// the traffic feature source feeding the model.
//
// The request path follows Figure 1 of the paper:
//
//	(1) a client request arrives              → Decide(RequestContext)
//	(2) the AI model scores its features      → Scorer.Score(Source.Attributes(ip))
//	(3) the policy maps score to difficulty   → Policy.Difficulty(score)
//	(4) the generator issues the puzzle       → Issuer.Issue(ip, d)
//	(5,6) the solved puzzle is verified       → Verify(solution, ip)
//	(7) the caller serves the resource.
//
// Every component is injected, satisfying the paper's modularity claim:
// swap the scorer (DAbR, kNN, behavioral), the policy (Policies 1–3, DSL
// rules, adaptive wrappers), or the feature source without touching the
// pipeline.
//
// # Runtime reconfiguration
//
// The swappable configuration — scorer, policy, source, fail-closed score,
// bypass threshold — lives in an immutable snapshot behind an atomic
// pointer. Decide loads the snapshot once per request; Swap (and the
// SwapPolicy/SwapScorer conveniences) installs a fresh snapshot RCU-style,
// so an operator can retune the defense mid-attack without a restart and
// without adding a single lock to the hot path. Long-lived shared state —
// the behavior tracker, issuer/verifier (and with them the HMAC key, TTL,
// difficulty cap, and replay cache), clock, hooks, and counters — persists
// across swaps; changing those requires a new Framework.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aipow/internal/features"
	"aipow/internal/metrics"
	"aipow/internal/obs"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

// Scorer is the AI-model seam: anything that maps attribute vectors to a
// reputation score in [0, 10] (higher = less trustworthy). reputation.Model
// and reputation.KNN satisfy it.
type Scorer interface {
	Score(attrs map[string]float64) (float64, error)
}

// RequestContext identifies one incoming request.
type RequestContext struct {
	// IP is the client identity; it becomes the challenge binding.
	IP string
}

// Decision is the outcome of the scoring-and-policy pipeline for one
// request.
type Decision struct {
	// IP echoes the request.
	IP string

	// Score is the reputation score used (after fail-closed substitution,
	// if the scorer errored).
	Score float64

	// Confidence is the scorer's calibrated certainty in Score, in [0, 1].
	// It is populated (below 1) only when the active policy consumes
	// verdicts (policy.ConsumesConfidence) and the scorer produces them —
	// a verdict nobody reads is not computed. Scorers without a verdict
	// path, plain-policy deployments, and fail-closed substitutions all
	// report 1: the score is enforced at face value, exactly the
	// pre-verdict behavior.
	Confidence float64

	// ScoreErr records a scorer failure. When non-nil, Score is the
	// configured fail-closed score, not a model output.
	ScoreErr error

	// Bypassed reports that the request was let through without a puzzle
	// (score under the bypass threshold). Challenge is zero in that case.
	Bypassed bool

	// Difficulty is the assigned puzzle difficulty (0 when bypassed).
	Difficulty int

	// Challenge is the issued puzzle (zero when bypassed).
	Challenge puzzle.Challenge
}

// Hook observes decisions, for logging and experiment accounting.
type Hook func(Decision)

// snapshot is the swappable half of a Framework's configuration, immutable
// once published. Decide performs exactly one atomic load to read the
// whole set, so a swap can never be observed torn — a request runs either
// entirely on the old configuration or entirely on the new one.
type snapshot struct {
	scorer Scorer
	pol    policy.Policy
	source features.Source

	failClosedScore float64
	bypassBelow     float64 // < 0 disables bypass

	// Vector fast path, wired when both the scorer and the source support
	// interned vectors (features.VectorScorer / features.VectorSource).
	// When schema is nil the snapshot uses the map-based compatibility
	// path. The scratch pool belongs to the snapshot because its vector
	// length is schema-dependent.
	schema    *features.Schema
	vecScorer features.VectorScorer
	vecSource features.VectorSource
	vecPool   *sync.Pool // *[]float64, len == schema.Len()

	// Verdict wiring, resolved once per snapshot so Decide pays no
	// per-request type assertions: verdictScorer is non-nil only when the
	// vector scorer carries confidence AND the policy (confPol) consumes
	// it — a verdict nobody reads would cost every plain deployment the
	// confidence computation for nothing. Either side missing degrades to
	// the plain score path at an implied confidence of 1.
	verdictScorer features.VerdictScorer
	confPol       policy.ConfidenceAware

	// Batch wiring: vecBatch is the source's whole-batch vector fill
	// (features.VectorBatchSource), resolved once per snapshot so
	// DecideBatch pays no per-batch type assertion. Nil when the source
	// only supports per-IP fills; DecideBatch then scores per item.
	vecBatch features.VectorBatchSource

	// trace is the sampled decision-trace ring, nil when tracing is off.
	// It lives in the snapshot so the `observe trace(...)` spec line
	// hot-swaps it exactly like a policy: one snapshot store, in-flight
	// requests finish on the ring they loaded, and the unsampled hot path
	// pays only the nil-check it already pays for every snapshot field.
	trace *obs.TraceRing

	// creditIdx is the schema index of the live solve-credit attribute
	// (features.AttrSolveCredit), -1 when the schema does not carry it.
	// Sampled traces read the client's redemption credit through it.
	creditIdx int
}

// Framework is the assembled pipeline. Construct with New; all methods are
// safe for concurrent use, including Swap against concurrent
// Decide/Verify.
type Framework struct {
	snap atomic.Pointer[snapshot]

	// swapMu serializes writers of snap; readers never take it.
	swapMu sync.Mutex

	tracker  *features.Tracker
	issuer   *puzzle.Issuer
	verifier *puzzle.Verifier
	now      func() time.Time
	hooks    []Hook

	// closers run during Close (WithCloser): subsystems tied to this
	// framework's lifecycle, e.g. a cluster node's exchange loop.
	closers []func() error

	stats metrics.Registry

	// Hot-path counters, pre-resolved once at New time so Decide/Verify
	// never touch the registry's map or lock per request.
	cIssued    *metrics.Counter
	cVerified  *metrics.Counter
	cRejected  *metrics.Counter
	cBypassed  *metrics.Counter
	cScoreErrs *metrics.Counter
	cSwaps     *metrics.Counter

	// lat are the always-on serving-path latency histograms (milliseconds),
	// one per stage (see latStageNames). Atomic and allocation-free, so
	// they ride the hot path unconditionally; they are exported through
	// LatencySnapshots/LatencyExpositionInto, deliberately not through
	// StatsInto — stats snapshots feed deterministic simulation reports,
	// and wall-clock latency is not deterministic.
	lat [latStages]*metrics.AtomicHistogram

	// traceRung mirrors the feedback plane's current escalation level into
	// sampled trace records (SetTraceRung).
	traceRung atomic.Int32

	// events receives evidence-plane defense events (flush stalls); nil
	// drops them.
	events obs.Sink

	// Per-difficulty cumulative profiles feeding the feedback signal
	// plane: diffIssued[d] counts challenges issued at difficulty d and
	// diffVerified[d] counts solutions verified at d. Fixed atomic arrays,
	// so recording costs the hot path one atomic add and zero allocations.
	diffIssued   [puzzle.MaxDifficulty + 1]atomic.Uint64
	diffVerified [puzzle.MaxDifficulty + 1]atomic.Uint64

	// Evidence write-back buffering (WithEvidenceBuffer): when wbSize ≥ 2
	// the tracker write paths — Observe, Verify's evidence, and
	// RecordVerifyEvidence — append to the tracker's per-shard buffers
	// instead of taking the shard lock inline, and a background loop
	// flushes every wbInterval (a full shard buffer flushes itself
	// inline, so wbSize bounds the lag in events and wbInterval bounds it
	// in time). Close stops the loop and drains; closed flips the
	// buffered paths back to synchronous so a Framework that outlives its
	// Close — an in-flight request during a control-plane rebuild —
	// cannot strand events in a buffer nobody will flush.
	wbSize     int
	wbInterval time.Duration
	closed     atomic.Bool
	closeOnce  sync.Once
	flushStop  chan struct{}
	flushDone  chan struct{}

	// coarseNow (unix nanoseconds) is the buffered configuration's cached
	// clock, refreshed by the flush loop each tick. With buffering on, the
	// serving paths' clock reads (scoring decay, verifier freshness,
	// evidence timestamps) come from here — one atomic load instead of a
	// system clock read — with staleness bounded by the flush interval the
	// buffer already accepts, orders of magnitude under both the
	// verifier's skew tolerance and every tracker horizon. Disabled (falls
	// back to the real clock) without buffering and after Close.
	coarseNow atomic.Int64
}

// config collects the options New applies.
type config struct {
	key         []byte
	backend     puzzle.Backend
	scorer      Scorer
	pol         policy.Policy
	source      features.Source
	tracker     *features.Tracker
	now         func() time.Time
	ttl         time.Duration
	maxDiff     int
	replaySize  int
	authSlots   int
	hooks       []Hook
	failClosed  float64
	bypassBelow float64
	clockSkew   time.Duration
	wbSize      int
	wbInterval  time.Duration
	tags        puzzle.TagExchange
	closers     []func() error
	trace       *obs.TraceRing
	events      obs.Sink
}

// Option customizes the framework.
type Option func(*config)

// WithKey sets the HMAC key shared by issuer and verifier. Required,
// minimum 16 bytes.
func WithKey(key []byte) Option { return func(c *config) { c.key = key } }

// WithPuzzleBackend selects the puzzle algorithm the framework's issuer
// and verifier run (default puzzle.Hashcash(), the paper's CPU-bound
// partial-preimage puzzle and the pre-backend Version1 wire format). Like
// the key and TTL, the backend is owned by the issuer/verifier pair and
// is not hot-swappable: changing it requires a new Framework, which the
// control plane's Gatekeeper does automatically on a `puzzle` line change.
func WithPuzzleBackend(b puzzle.Backend) Option {
	return func(c *config) { c.backend = b }
}

// WithScorer sets the AI model. Required.
func WithScorer(s Scorer) Option { return func(c *config) { c.scorer = s } }

// WithPolicy sets the score→difficulty policy. Required.
func WithPolicy(p policy.Policy) Option { return func(c *config) { c.pol = p } }

// WithSource sets the attribute source consulted per request. Required.
func WithSource(s features.Source) Option { return func(c *config) { c.source = s } }

// WithTracker attaches a behavior tracker; Observe forwards to it. The
// tracker is typically also wrapped into the Source via features.Combined.
func WithTracker(t *features.Tracker) Option { return func(c *config) { c.tracker = t } }

// WithClock injects the time source (default time.Now). Experiments pass
// the simulator's virtual clock.
func WithClock(now func() time.Time) Option { return func(c *config) { c.now = now } }

// WithTTL sets challenge lifetime (default puzzle.DefaultTTL).
func WithTTL(ttl time.Duration) Option { return func(c *config) { c.ttl = ttl } }

// WithMaxDifficulty caps what the issuer will sign (default 32).
func WithMaxDifficulty(d int) Option { return func(c *config) { c.maxDiff = d } }

// WithReplayCacheSize bounds the single-use seed cache (default 1<<16).
// Zero disables replay protection entirely — only sensible in benchmarks.
func WithReplayCacheSize(n int) Option { return func(c *config) { c.replaySize = n } }

// WithAuthCacheSlots sizes the issuer/verifier authenticated-challenge
// cache (default 2048 slots; rounded up to a power of two and clamped to
// [64, 1<<22]). Size toward ≥ 10× the expected number of challenges
// outstanding (issued but not yet redeemed) at any instant — a slot
// collision before redemption only costs the redeeming request the full
// HMAC recomputation, never correctness. Zero keeps the default.
func WithAuthCacheSlots(n int) Option { return func(c *config) { c.authSlots = n } }

// WithHook registers a decision observer. Hooks run synchronously on the
// Decide path and must be fast.
func WithHook(h Hook) Option { return func(c *config) { c.hooks = append(c.hooks, h) } }

// WithFailClosedScore sets the score assumed when the scorer errors
// (default 10, the most suspicious). Fail-open (0) is possible but
// explicitly a policy decision.
func WithFailClosedScore(s float64) Option { return func(c *config) { c.failClosed = s } }

// WithBypassBelow lets requests scoring strictly under threshold through
// without any puzzle. The paper always issues a puzzle (cost “increases as
// the client's reputation score worsens” from a non-zero floor); bypass is
// an extension for sites that cannot tolerate any latency on trusted
// traffic. Negative disables (the default).
func WithBypassBelow(threshold float64) Option {
	return func(c *config) { c.bypassBelow = threshold }
}

// WithClockSkew sets issuer/verifier skew tolerance (default 2 s).
func WithClockSkew(d time.Duration) Option { return func(c *config) { c.clockSkew = d } }

// WithEvidenceBuffer routes the framework's tracker writes — Observe,
// Verify's evidence write-back, RecordVerifyEvidence — through the
// tracker's per-shard write-back buffers: the hot path appends an event
// (capturing its timestamp, so the applied state is bit-identical to a
// synchronous write) and a background loop folds buffered events into the
// tracker every interval. A shard's buffer also flushes itself inline at
// size events, so visibility lags by at most size events and roughly one
// interval. Callers must Close the framework to stop the flush loop and
// drain. Requires a tracker; size ≥ 2 and interval > 0.
//
// This takes the shard lock off the per-request write path — the half-life
// and window math tolerate the sub-millisecond staleness (see the bounded-
// staleness tests) — and is the recommended production configuration
// together with features.WithSummaryStaleness on the tracker.
func WithEvidenceBuffer(size int, interval time.Duration) Option {
	return func(c *config) { c.wbSize, c.wbInterval = size, interval }
}

// WithTagExchange wires a fleet-wide redeemed-tag view (the cluster
// plane's replay suppression) into the framework's verifier: solutions
// whose challenge tag any fleet member already redeemed fail closed with
// puzzle.ErrReplayed, and every local redemption is published back for
// propagation. Nil (the default) keeps verification purely local — a
// single-node framework pays nothing for the seam.
func WithTagExchange(x puzzle.TagExchange) Option {
	return func(c *config) { c.tags = x }
}

// WithCloser registers fn to run during Framework.Close, after the
// evidence flush loop has stopped and drained. The control plane uses it
// to tie subsystems serving this framework — the cluster exchange loop —
// to the framework's lifecycle, so Gatekeeper.Close and pipeline rebuilds
// stop them without knowing what they are. Closers run in registration
// order; Close reports the first error.
func WithCloser(fn func() error) Option {
	return func(c *config) {
		if fn != nil {
			c.closers = append(c.closers, fn)
		}
	}
}

// buildSnapshot validates the swappable configuration and assembles an
// immutable snapshot from it, wiring the vector fast path when both sides
// support it.
func buildSnapshot(scorer Scorer, pol policy.Policy, source features.Source, failClosed, bypassBelow float64) (*snapshot, error) {
	switch {
	case scorer == nil:
		return nil, errors.New("core: a Scorer is required (WithScorer)")
	case pol == nil:
		return nil, errors.New("core: a Policy is required (WithPolicy)")
	case source == nil:
		return nil, errors.New("core: a feature Source is required (WithSource)")
	}
	if failClosed < policy.MinScore || failClosed > policy.MaxScore {
		return nil, fmt.Errorf("core: fail-closed score %v outside [%v, %v]",
			failClosed, policy.MinScore, policy.MaxScore)
	}
	s := &snapshot{
		scorer:          scorer,
		pol:             pol,
		source:          source,
		failClosedScore: failClosed,
		bypassBelow:     bypassBelow,
	}
	if vs, ok := scorer.(features.VectorScorer); ok {
		if vsrc, ok := source.(features.VectorSource); ok {
			if sch := vs.Schema(); sch != nil {
				s.schema, s.vecScorer, s.vecSource = sch, vs, vsrc
				s.vecPool = &sync.Pool{New: func() any {
					v := make([]float64, sch.Len())
					return &v
				}}
			}
		}
	}
	s.confPol, _ = pol.(policy.ConfidenceAware)
	if s.vecScorer != nil && policy.ConsumesConfidence(pol) {
		s.verdictScorer, _ = s.vecScorer.(features.VerdictScorer)
	}
	s.creditIdx = -1
	if s.schema != nil {
		s.vecBatch, _ = s.vecSource.(features.VectorBatchSource)
		if idx, ok := s.schema.Index(features.AttrSolveCredit); ok {
			s.creditIdx = idx
		}
	}
	return s, nil
}

// New assembles a Framework, validating that all required components are
// present and mutually consistent.
func New(opts ...Option) (*Framework, error) {
	cfg := config{
		now:         time.Now,
		ttl:         puzzle.DefaultTTL,
		maxDiff:     32,
		replaySize:  1 << 16,
		failClosed:  policy.MaxScore,
		bypassBelow: -1,
		clockSkew:   2 * time.Second,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	snap, err := buildSnapshot(cfg.scorer, cfg.pol, cfg.source, cfg.failClosed, cfg.bypassBelow)
	if err != nil {
		return nil, err
	}
	snap.trace = cfg.trace
	if cfg.key == nil {
		return nil, errors.New("core: an HMAC key is required (WithKey)")
	}
	if cfg.wbSize != 0 || cfg.wbInterval != 0 {
		switch {
		case cfg.tracker == nil:
			return nil, errors.New("core: evidence buffer requires a tracker (WithTracker)")
		case cfg.wbSize < 2:
			return nil, fmt.Errorf("core: evidence buffer size %d below minimum 2", cfg.wbSize)
		case cfg.wbInterval <= 0:
			return nil, fmt.Errorf("core: non-positive evidence flush interval %v", cfg.wbInterval)
		}
	}

	// Issuer and verifier live in one process here, so they share an
	// AuthCache: the verifier authenticates challenges this issuer produced
	// (or that it has itself already HMAC-checked) by byte equality instead
	// of recomputing the HMAC. Misses fall back to the full check, so the
	// cache changes verification cost, never outcomes.
	authCache := puzzle.NewAuthCache()
	if cfg.authSlots > 0 {
		authCache = puzzle.NewAuthCacheSize(cfg.authSlots)
	}
	issuerOpts := []puzzle.IssuerOption{
		puzzle.WithIssuerNow(cfg.now),
		puzzle.WithTTL(cfg.ttl),
		puzzle.WithIssuerMaxDifficulty(cfg.maxDiff),
		puzzle.WithIssuerAuthCache(authCache),
	}
	verifierOpts := []puzzle.VerifierOption{
		puzzle.WithVerifierNow(cfg.now),
		puzzle.WithClockSkew(cfg.clockSkew),
		puzzle.WithVerifierAuthCache(authCache),
	}
	if cfg.backend != nil {
		issuerOpts = append(issuerOpts, puzzle.WithIssuerBackend(cfg.backend))
		verifierOpts = append(verifierOpts, puzzle.WithVerifierBackend(cfg.backend))
	}
	issuer, err := puzzle.NewIssuer(cfg.key, issuerOpts...)
	if err != nil {
		return nil, fmt.Errorf("core: build issuer: %w", err)
	}
	if cfg.replaySize > 0 {
		verifierOpts = append(verifierOpts,
			puzzle.WithReplayCache(puzzle.NewReplayCache(cfg.replaySize, cfg.now)))
	}
	if cfg.tags != nil {
		verifierOpts = append(verifierOpts, puzzle.WithTagExchange(cfg.tags))
	}
	verifier, err := puzzle.NewVerifier(cfg.key, verifierOpts...)
	if err != nil {
		return nil, fmt.Errorf("core: build verifier: %w", err)
	}

	f := &Framework{
		tracker:  cfg.tracker,
		issuer:   issuer,
		verifier: verifier,
		now:      cfg.now,
		hooks:    cfg.hooks,
		closers:  cfg.closers,
		events:   cfg.events,
	}
	for i := range f.lat {
		f.lat[i] = metrics.NewAtomicLatencyHistogram()
	}
	f.snap.Store(snap)
	f.cIssued = f.stats.Counter("issued")
	f.cVerified = f.stats.Counter("verified")
	f.cRejected = f.stats.Counter("rejected")
	f.cBypassed = f.stats.Counter("bypassed")
	f.cScoreErrs = f.stats.Counter("score_errors")
	f.cSwaps = f.stats.Counter("swaps")
	if cfg.wbSize > 0 {
		f.wbSize, f.wbInterval = cfg.wbSize, cfg.wbInterval
		f.coarseNow.Store(f.now().UnixNano())
		f.flushStop = make(chan struct{})
		f.flushDone = make(chan struct{})
		go f.flushLoop()
	}
	return f, nil
}

// flushLoop periodically drains the tracker's write-back buffers — so
// evidence captured on a quiet shard (too few events to trigger the inline
// size flush) still becomes visible within about one interval — and
// refreshes the coarse clock.
func (f *Framework) flushLoop() {
	defer close(f.flushDone)
	t := time.NewTicker(f.wbInterval)
	defer t.Stop()
	for {
		select {
		case <-f.flushStop:
			return
		case <-t.C:
			start := f.now()
			f.coarseNow.Store(start.UnixNano())
			f.tracker.FlushWriteBack()
			// A drain that overruns its own interval means the buffers are
			// refilling faster than they empty — the write-back lag bound
			// no longer holds. That is a defense-plane state worth an event.
			if f.events != nil {
				if el := f.now().Sub(start); el > f.wbInterval {
					f.events(obs.Event{
						At:    start,
						Kind:  obs.EventFlushStall,
						Value: float64(el) / float64(time.Millisecond),
					})
				}
			}
		}
	}
}

// hotNow is the serving paths' clock: the coarse cached reading while
// buffering is active, the real clock otherwise. Challenge issuance always
// uses the real clock (the issuer owns its own reading); everything
// downstream of scoring and verification tolerates interval-bounded
// staleness by construction.
func (f *Framework) hotNow() time.Time {
	if f.wbSize > 0 && !f.closed.Load() {
		return time.Unix(0, f.coarseNow.Load())
	}
	return f.now()
}

// Close stops the evidence flush loop and drains the tracker's write-back
// buffers. Idempotent, always nil. Frameworks built without
// WithEvidenceBuffer have nothing to stop, but closing them is still
// correct — the control plane closes every pipeline it replaces without
// caring how it was configured. After Close the buffered write paths
// degrade to synchronous tracker writes, so a request racing a
// control-plane rebuild cannot strand its evidence in a buffer nobody will
// flush (an event appended concurrently with the final drain may wait for
// the shard's next inline size-triggered flush; it is never lost).
// Registered closers (WithCloser — e.g. a cluster node's exchange loop)
// run after the drain; Close reports the first closer error.
func (f *Framework) Close() error {
	var err error
	f.closeOnce.Do(func() {
		f.closed.Store(true)
		if f.flushStop != nil {
			close(f.flushStop)
			<-f.flushDone
		}
		if f.tracker != nil {
			f.tracker.FlushWriteBack()
		}
		for _, fn := range f.closers {
			if cerr := fn(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// buffered reports whether tracker writes should go through the write-back
// buffers right now.
func (f *Framework) buffered() bool { return f.wbSize > 0 && !f.closed.Load() }

// recordVerify routes one piece of verification evidence into the tracker:
// through the write-back buffer when enabled, synchronously otherwise.
func (f *Framework) recordVerify(ip string, difficulty int, ok bool, at time.Time) {
	if f.tracker == nil || ip == "" {
		return
	}
	if f.buffered() {
		f.tracker.RecordVerifyBuffered(ip, difficulty, ok, at, f.wbSize)
		return
	}
	f.tracker.RecordVerify(ip, difficulty, ok, at)
}

// SwapOption describes one change to the swappable configuration; pass a
// set of them to Swap. Fields not mentioned keep their current values.
type SwapOption func(*swapConfig)

// swapConfig accumulates a Swap's changes against the current snapshot.
// The set flags distinguish "replace with nil" (rejected by validation)
// from "keep current".
type swapConfig struct {
	scorer      Scorer
	scorerSet   bool
	pol         policy.Policy
	polSet      bool
	source      features.Source
	sourceSet   bool
	failClosed  *float64
	bypassBelow *float64
	trace       *obs.TraceRing
	traceSet    bool
}

// SetScorer replaces the AI model.
func SetScorer(s Scorer) SwapOption {
	return func(c *swapConfig) { c.scorer, c.scorerSet = s, true }
}

// SetPolicy replaces the score→difficulty policy.
func SetPolicy(p policy.Policy) SwapOption {
	return func(c *swapConfig) { c.pol, c.polSet = p, true }
}

// SetSource replaces the per-request attribute source.
func SetSource(s features.Source) SwapOption {
	return func(c *swapConfig) { c.source, c.sourceSet = s, true }
}

// SetFailClosedScore replaces the score assumed on scorer failure.
func SetFailClosedScore(v float64) SwapOption {
	return func(c *swapConfig) { c.failClosed = &v }
}

// SetBypassBelow replaces the bypass threshold (negative disables bypass).
func SetBypassBelow(v float64) SwapOption {
	return func(c *swapConfig) { c.bypassBelow = &v }
}

// Swap atomically replaces the framework's swappable configuration —
// scorer, policy, source, fail-closed score, bypass threshold — with a new
// immutable snapshot built from the current one plus the given changes.
// Requests in flight finish on the snapshot they loaded; requests arriving
// after Swap returns see the new one. The tracker, issuer/verifier (key,
// TTL, max difficulty, replay cache), clock, hooks, and counters are
// shared long-lived state and persist across swaps.
//
// A failed Swap (nil component, fail-closed score out of range) leaves the
// current configuration untouched.
func (f *Framework) Swap(changes ...SwapOption) error {
	if len(changes) == 0 {
		return errors.New("core: swap without changes")
	}
	f.swapMu.Lock()
	defer f.swapMu.Unlock()
	cur := f.snap.Load()
	cfg := swapConfig{}
	for _, change := range changes {
		change(&cfg)
	}
	scorer, pol, source := cur.scorer, cur.pol, cur.source
	failClosed, bypassBelow := cur.failClosedScore, cur.bypassBelow
	if cfg.scorerSet {
		scorer = cfg.scorer
	}
	if cfg.polSet {
		pol = cfg.pol
	}
	if cfg.sourceSet {
		source = cfg.source
	}
	if cfg.failClosed != nil {
		failClosed = *cfg.failClosed
	}
	if cfg.bypassBelow != nil {
		bypassBelow = *cfg.bypassBelow
	}
	next, err := buildSnapshot(scorer, pol, source, failClosed, bypassBelow)
	if err != nil {
		return fmt.Errorf("core: swap rejected: %w", err)
	}
	// Reuse the current scratch pool when the schema is unchanged: warm
	// *[]float64 buffers stay warm across policy-only swaps.
	if next.schema != nil && next.schema == cur.schema {
		next.vecPool = cur.vecPool
	}
	// The trace ring persists across unrelated swaps; SetTrace replaces it.
	next.trace = cur.trace
	if cfg.traceSet {
		next.trace = cfg.trace
	}
	f.snap.Store(next)
	f.cSwaps.Inc()
	return nil
}

// SwapPolicy atomically replaces just the policy — the paper's headline
// operation: switching policy1 → policy2 mid-attack without redeploying.
func (f *Framework) SwapPolicy(p policy.Policy) error { return f.Swap(SetPolicy(p)) }

// SwapScorer atomically replaces just the AI model (e.g. installing a
// freshly retrained reputation model). Vector fast-path wiring is rebuilt
// against the new scorer's schema.
func (f *Framework) SwapScorer(s Scorer) error { return f.Swap(SetScorer(s)) }

// Decide runs steps 2–4 of the protocol for one request: score the
// client's features, map the score to a difficulty, and issue a bound
// challenge. The whole decision runs on one configuration snapshot loaded
// at entry, so a concurrent Swap is never observed torn.
func (f *Framework) Decide(req RequestContext) (Decision, error) {
	if req.IP == "" {
		return Decision{}, errors.New("core: request without client IP")
	}
	// The latency histograms time with the real clock, not hotNow: the
	// coarse cached clock would quantize every duration to the flush
	// interval, and the simulation's virtual clock would make latency a
	// function of scenario script rather than machine.
	t0 := time.Now()
	snap := f.snap.Load()
	dec := Decision{IP: req.IP}

	score, conf, err := snap.score(req.IP, f.hotNow())
	if err != nil {
		// Fail closed: an unscorable client is treated as configured,
		// default maximally suspicious — at full confidence, so a
		// confidence-shaped policy cannot soften the fail-closed price.
		// The error is preserved on the decision for observability.
		dec.ScoreErr = err
		score, conf = snap.failClosedScore, 1
		f.cScoreErrs.Inc()
	}
	dec.Score, dec.Confidence = score, conf

	if snap.bypassBelow >= 0 && score < snap.bypassBelow {
		dec.Bypassed = true
		f.cBypassed.Inc()
		t1 := time.Now()
		f.lat[latStageDecide].ObserveDuration(t1.Sub(t0))
		if snap.trace != nil && snap.trace.Sampled() {
			f.traceDecide(snap, &dec, t0, t1, t1)
		}
		f.fire(dec)
		return dec, nil
	}

	if snap.confPol != nil {
		dec.Difficulty = snap.confPol.ConfidentDifficulty(score, conf)
	} else {
		dec.Difficulty = snap.pol.Difficulty(score)
	}
	t1 := time.Now()
	ch, err := f.issuer.Issue(req.IP, dec.Difficulty)
	if err != nil {
		return Decision{}, fmt.Errorf("core: issue challenge: %w", err)
	}
	dec.Challenge = ch
	f.cIssued.Inc()
	f.diffIssued[dec.Difficulty].Add(1) // issuer validated the range
	t2 := time.Now()
	f.lat[latStageDecide].ObserveDuration(t2.Sub(t0))
	f.lat[latStageIssue].ObserveDuration(t2.Sub(t1))
	if snap.trace != nil && snap.trace.Sampled() {
		f.traceDecide(snap, &dec, t0, t1, t2)
	}
	f.fire(dec)
	return dec, nil
}

// score runs the AI model over the client's attributes, preferring the
// interned vector fast path (no map, no allocations) and falling back to
// the map-based Source/Scorer pair when the fast path is unavailable or a
// source could not cover the full schema — the map path then reports
// exactly which attribute was missing, and Decide fails closed. Scorers
// with a verdict path additionally report their calibrated confidence;
// everything else scores at confidence 1 (enforce at face value).
func (s *snapshot) score(ip string, now time.Time) (float64, float64, error) {
	if s.schema != nil {
		vp := s.vecPool.Get().(*[]float64)
		v := *vp
		clear(v)
		if mask := s.vecSource.AttributesVector(v, s.schema, ip, now); mask == s.schema.FullMask() {
			if s.verdictScorer != nil {
				ver, err := s.verdictScorer.VerdictVector(v)
				s.vecPool.Put(vp)
				return ver.Score, ver.Confidence, err
			}
			score, err := s.vecScorer.ScoreVector(v)
			s.vecPool.Put(vp)
			return score, 1, err
		}
		s.vecPool.Put(vp)
	}
	score, err := s.scorer.Score(s.source.Attributes(ip, now))
	return score, 1, err
}

// Verify runs steps 5–6: check the solution presented by binding. A nil
// return means the caller should serve the resource.
//
// Verification outcomes are also behavioral *evidence*: a successful
// solve is written back into the attached tracker as solve credit (the
// redemption feed for reputation.Decay — a misscored client that keeps
// paying earns its way out of the false-positive tail), and a failure
// extends the IP's fail streak (which cancels redemption). Both writes
// are allocation-free for tracked IPs; without a tracker Verify behaves
// exactly as before.
func (f *Framework) Verify(sol puzzle.Solution, binding string) error {
	t0 := time.Now()
	// One clock read serves both the cryptographic freshness checks and the
	// evidence timestamp — the second time.Now this path used to pay was
	// pure evidence-side overhead.
	now := f.hotNow()
	err := f.verifier.VerifyAt(&sol, binding, now)
	if err != nil {
		f.cRejected.Inc()
		f.recordVerify(binding, 0, false, now)
	} else {
		f.cVerified.Inc()
		d := sol.Challenge.Difficulty
		if d >= 0 && d < len(f.diffVerified) {
			f.diffVerified[d].Add(1)
		}
		f.recordVerify(binding, d, true, now)
	}
	el := time.Since(t0)
	f.lat[latStageVerify].ObserveDuration(el)
	if t := f.snap.Load().trace; t != nil && t.Sampled() {
		t.RecordVerify(now, obs.HashClient(binding), puzzle.TraceOutcome(err),
			int32(sol.Challenge.Difficulty), f.traceRung.Load(), el.Nanoseconds())
	}
	return err
}

// RecordVerifyEvidence feeds one externally-adjudicated verification
// outcome into the attached tracker, exactly as Verify itself would (a
// no-op without a tracker). It exists for hosts that model or offload
// verification — the simulation engine's modeled solves use it so the
// redemption path sees the same evidence stream a real deployment's
// Verify calls produce.
func (f *Framework) RecordVerifyEvidence(ip string, difficulty int, ok bool) {
	if f.tracker == nil {
		return
	}
	if !ok {
		difficulty = 0
	}
	f.recordVerify(ip, difficulty, ok, f.hotNow())
}

// DifficultyProfileInto copies the cumulative per-difficulty counters into
// issued and verified (index = difficulty, up to puzzle.MaxDifficulty);
// shorter destination slices receive a prefix. The feedback signal plane
// polls this once per controller tick to derive windowed difficulty
// distributions and the hard-solve false-positive proxy.
func (f *Framework) DifficultyProfileInto(issued, verified []uint64) {
	for d := 0; d < len(f.diffIssued) && d < len(issued); d++ {
		issued[d] = f.diffIssued[d].Load()
	}
	for d := 0; d < len(f.diffVerified) && d < len(verified); d++ {
		verified[d] = f.diffVerified[d].Load()
	}
}

// Observe feeds one request into the attached behavior tracker (a no-op
// without one). Call it for every request, including ones that fail
// verification — failures are behavioral signal.
func (f *Framework) Observe(req features.RequestInfo) error {
	if f.tracker == nil {
		return nil
	}
	if f.buffered() {
		return f.tracker.ObserveBuffered(req, f.wbSize)
	}
	return f.tracker.Observe(req)
}

// PolicyName reports the active policy's name for logs and tables.
func (f *Framework) PolicyName() string { return f.snap.Load().pol.Name() }

// Swaps reports how many configuration swaps have been installed — a
// cheap generation counter the control plane uses to detect out-of-band
// Swap calls on a spec-managed framework.
func (f *Framework) Swaps() uint64 { return f.cSwaps.Value() }

// Stats returns a snapshot of the framework's counters: issued, verified,
// rejected, bypassed, score_errors, swaps.
func (f *Framework) Stats() map[string]float64 {
	out := make(map[string]float64, 6)
	f.StatsInto(out)
	return out
}

// StatsInto adds the framework's counter values into dst, overwriting
// same-named keys. Callers polling stats (a server's /stats endpoint, the
// simulation reporter) reuse one map across calls instead of allocating a
// fresh one per poll.
func (f *Framework) StatsInto(dst map[string]float64) { f.stats.SnapshotInto(dst) }

// StatsPrefixInto is StatsInto with every key prefixed (e.g.
// "web.issued"), for pollers aggregating several frameworks into one map
// without an intermediate map per framework.
func (f *Framework) StatsPrefixInto(prefix string, dst map[string]float64) {
	f.stats.SnapshotPrefixInto(prefix, dst)
}

// fire invokes hooks synchronously.
func (f *Framework) fire(dec Decision) {
	for _, h := range f.hooks {
		h(dec)
	}
}
