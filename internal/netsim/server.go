package netsim

import (
	"fmt"
	"time"
)

// Job is one unit of server work (issuing a challenge, verifying a
// solution, serving a response).
type Job struct {
	// Service is how long the job occupies the server.
	Service time.Duration

	// Done runs when the job completes, at the virtual completion time.
	Done func()
}

// SimServer is a single FIFO queue with one service unit — the simplest
// server model that still exhibits the queueing collapse a DDoS causes.
// Experiment E4 protects (or fails to protect) this queue with the
// framework's policies.
type SimServer struct {
	loop     *EventLoop
	queue    []Job
	busy     bool
	maxQueue int

	// accounting
	busyTime  time.Duration
	started   time.Time
	completed uint64
	dropped   uint64
	peakQueue int
}

// NewSimServer returns a server on the given loop. maxQueue bounds the
// backlog; jobs arriving to a full queue are dropped (the overload signal).
// maxQueue < 1 means unbounded.
func NewSimServer(loop *EventLoop, maxQueue int) (*SimServer, error) {
	if loop == nil {
		return nil, fmt.Errorf("netsim: server requires an event loop")
	}
	return &SimServer{loop: loop, maxQueue: maxQueue, started: loop.Now()}, nil
}

// Enqueue submits a job. It reports false if the queue was full and the
// job was dropped (Done is not called for dropped jobs).
func (s *SimServer) Enqueue(j Job) bool {
	if j.Service < 0 {
		j.Service = 0
	}
	if s.maxQueue > 0 && len(s.queue) >= s.maxQueue {
		s.dropped++
		return false
	}
	s.queue = append(s.queue, j)
	if len(s.queue) > s.peakQueue {
		s.peakQueue = len(s.queue)
	}
	if !s.busy {
		s.startNext()
	}
	return true
}

// startNext pops the queue head and schedules its completion.
func (s *SimServer) startNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	s.busyTime += j.Service
	// Completion runs the job callback and then pulls the next job.
	if err := s.loop.After(j.Service, func() {
		s.completed++
		if j.Done != nil {
			j.Done()
		}
		s.startNext()
	}); err != nil {
		// After only fails on nil fn or past deadline; neither is possible
		// here, so this is a programming error worth crashing on.
		panic(fmt.Sprintf("netsim: scheduling job completion: %v", err))
	}
}

// QueueLen reports the current backlog (excluding the job in service).
func (s *SimServer) QueueLen() int { return len(s.queue) }

// PeakQueue reports the maximum backlog observed.
func (s *SimServer) PeakQueue() int { return s.peakQueue }

// Completed reports the number of finished jobs.
func (s *SimServer) Completed() uint64 { return s.completed }

// Dropped reports the number of jobs rejected by the full queue.
func (s *SimServer) Dropped() uint64 { return s.dropped }

// Utilization reports the fraction of elapsed virtual time the server has
// been busy, in [0, 1] (it can exceed 1 transiently if busyTime includes a
// scheduled-but-unfinished job; callers sample it after Run completes).
func (s *SimServer) Utilization() float64 {
	elapsed := s.loop.Now().Sub(s.started)
	if elapsed <= 0 {
		return 0
	}
	u := float64(s.busyTime) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
