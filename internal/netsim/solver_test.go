package netsim

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

func TestSimSolverValidate(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := (SimSolver{HashRate: rate}).Validate(); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
	if err := (SimSolver{HashRate: 1000}).Validate(); err != nil {
		t.Errorf("valid rate rejected: %v", err)
	}
}

// The geometric sampler must match its analytic mean and median. This is
// the statistical heart of the Figure 2 reproduction, so test it tightly.
func TestSimSolverAttemptsDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	s := SimSolver{HashRate: 1}
	for _, d := range []int{1, 4, 8, 12} {
		const n = 20000
		var sum float64
		samples := make([]float64, n)
		for i := 0; i < n; i++ {
			a := s.Attempts(d, rng)
			if a < 1 {
				t.Fatalf("d=%d: attempts %v < 1", d, a)
			}
			samples[i] = a
			sum += a
		}
		mean := sum / n
		wantMean := ExpectedAttempts(d)
		if rel := math.Abs(mean-wantMean) / wantMean; rel > 0.05 {
			t.Errorf("d=%d: mean attempts %v, want %v (rel err %.3f)", d, mean, wantMean, rel)
		}
	}
}

func TestMedianAttempts(t *testing.T) {
	// Geometric(1/2) median is 1; for large d the median → ln2·2^d.
	if got := MedianAttempts(1); got != 1 {
		t.Errorf("MedianAttempts(1) = %v, want 1", got)
	}
	want := math.Ln2 * math.Exp2(15)
	if got := MedianAttempts(15); math.Abs(got-want)/want > 0.01 {
		t.Errorf("MedianAttempts(15) = %v, want ≈ %v", got, want)
	}
}

func TestSimSolverSolveTimeScalesWithRate(t *testing.T) {
	rng1 := rand.New(rand.NewPCG(3, 4))
	rng2 := rand.New(rand.NewPCG(3, 4)) // identical stream
	slow := SimSolver{HashRate: 1000}
	fast := SimSolver{HashRate: 10000}
	for i := 0; i < 100; i++ {
		ts := slow.SolveTime(8, rng1)
		tf := fast.SolveTime(8, rng2)
		// Same attempt draw, 10× rate → 10× faster.
		ratio := float64(ts) / float64(tf)
		if math.Abs(ratio-10) > 0.01 {
			t.Fatalf("solve-time ratio = %v, want 10", ratio)
		}
	}
}

func TestSimSolverSolveTimeSaturates(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	s := SimSolver{HashRate: 1e-300}
	if got := s.SolveTime(64, rng); got != time.Duration(math.MaxInt64) {
		t.Fatalf("SolveTime = %v, want saturation at MaxInt64", got)
	}
}

// Property: attempts are always ≥ 1 and finite for every difficulty in the
// protocol range.
func TestSimSolverAttemptsAlwaysPositive(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	s := SimSolver{HashRate: 1}
	for d := 1; d <= 64; d++ {
		for i := 0; i < 50; i++ {
			a := s.Attempts(d, rng)
			if a < 1 || math.IsInf(a, 0) || math.IsNaN(a) {
				t.Fatalf("d=%d: bad attempts %v", d, a)
			}
		}
	}
}
