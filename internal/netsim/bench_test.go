package netsim

import (
	"math/rand/v2"
	"testing"
	"time"
)

func BenchmarkRunTrial(b *testing.B) {
	cfg := TrialConfig{
		Link:       Link{OneWay: 7750 * time.Microsecond},
		Solver:     SimSolver{HashRate: 27000},
		IssueTime:  100 * time.Microsecond,
		VerifyTime: 100 * time.Microsecond,
	}
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrial(cfg, 10, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventLoopThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := NewEventLoop(Start())
		for j := 0; j < 1000; j++ {
			if err := l.After(time.Duration(j)*time.Millisecond, func() {}); err != nil {
				b.Fatal(err)
			}
		}
		if n := l.Run(); n != 1000 {
			b.Fatalf("ran %d events", n)
		}
	}
}

func BenchmarkSolverAttempts(b *testing.B) {
	s := SimSolver{HashRate: 27000}
	rng := rand.New(rand.NewPCG(3, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Attempts(15, rng)
	}
}
